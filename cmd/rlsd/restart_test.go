package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// bootDaemon starts run() in-process and returns the base URL and the
// exit channel.
func bootDaemon(t *testing.T, svc *service.Service, cfg daemonConfig) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(svc, cfg, ready, log.New(io.Discard, "", 0))
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil
	}
}

func sigterm(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit within 60s of SIGTERM")
	}
}

// TestRestartRestoresTenants is the durability end-to-end: a daemon with
// -state-dir is populated, terminated, and rebooted; the second boot
// hosts the same tenants with identical state, and an SSE subscriber
// against a restored tenant sees the consistent snapshot-then-frames
// stream.
func TestRestartRestoresTenants(t *testing.T) {
	dir := t.TempDir()
	cfg := daemonConfig{addr: "127.0.0.1:0", drainTimeout: 30 * time.Second, stateDir: dir}

	svc1 := service.New(service.Config{StateDir: dir})
	base, done := bootDaemon(t, svc1, cfg)

	ids := make([]string, 0, 4)
	for i, engine := range [...]string{"direct", "jump", "sharded", "shardedjump"} {
		body := fmt.Sprintf(`{"bins": 32, "balls": 96, "seed": %d, "engine": %q}`, i+1, engine)
		resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, info.ID)
		resp, err = http.Post(base+"/v1/sessions/"+info.ID+"/events", "application/json",
			strings.NewReader(`{"events": [{"op": "run", "for": 1.5}, {"op": "add"}, {"op": "remove"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	before := make(map[string]map[string]any)
	for _, id := range ids {
		before[id] = getSessionJSON(t, base, id, 3)
	}
	sigterm(t, done)

	// Reboot from the same state directory.
	svc2 := service.New(service.Config{StateDir: dir})
	base2, done2 := bootDaemon(t, svc2, cfg)

	if n := svc2.Metrics().SessionsRestored.Load(); n != int64(len(ids)) {
		t.Fatalf("second boot restored %d sessions, want %d", n, len(ids))
	}
	for _, id := range ids {
		after := getSessionJSON(t, base2, id, 0)
		for _, k := range []string{"time", "balls", "disc", "moves", "activations", "config"} {
			if fmt.Sprint(before[id][k]) != fmt.Sprint(after[k]) {
				t.Errorf("tenant %s %s changed across restart: %v -> %v", id, k, before[id][k], after[k])
			}
		}
	}

	// SSE on a restored tenant: the first event is a consistent snapshot
	// frame matching the restored state, then frames follow applied
	// batches.
	stream, err := http.Get(base2 + "/v1/sessions/" + ids[0] + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	frames := make(chan map[string]any, 8)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var frame map[string]any
				if json.Unmarshal([]byte(data), &frame) == nil {
					frames <- frame
				}
			}
		}
		close(frames)
	}()
	snap := nextFrame(t, frames)
	for _, k := range []string{"time", "balls", "moves", "activations"} {
		if fmt.Sprint(snap[k]) != fmt.Sprint(before[ids[0]][k]) {
			t.Errorf("SSE snapshot %s = %v, want restored %v", k, snap[k], before[ids[0]][k])
		}
	}
	resp, err := http.Post(base2+"/v1/sessions/"+ids[0]+"/events", "application/json",
		strings.NewReader(`{"events": [{"op": "add"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	frame := nextFrame(t, frames)
	if got, want := fmt.Sprint(frame["balls"]), fmt.Sprint(int(snap["balls"].(float64))+1); got != want {
		t.Errorf("post-restore SSE frame balls = %v, want %v", got, want)
	}

	sigterm(t, done2)
}

func nextFrame(t *testing.T, frames chan map[string]any) map[string]any {
	t.Helper()
	select {
	case f, ok := <-frames:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return f
	case <-time.After(10 * time.Second):
		t.Fatal("no SSE frame within 10s")
		return nil
	}
}

// getSessionJSON fetches a session info body, first waiting for its
// applied counter to reach minApplied.
func getSessionJSON(t *testing.T, base, id string, minApplied float64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			resp.Body.Close()
			t.Fatalf("GET %s: status %d", id, resp.StatusCode)
		}
		var info map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		applied, _ := info["applied"].(float64)
		if applied >= minApplied {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s applied %v, want %v", id, applied, minApplied)
		}
		time.Sleep(time.Millisecond)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSIGTERMDrain boots the daemon in-process, loads it with sessions
// and event batches, delivers a real SIGTERM, and verifies the graceful
// drain contract: run returns nil, every accepted event was applied, and
// nothing errored.
func TestSIGTERMDrain(t *testing.T) {
	svc := service.New(service.Config{})
	cfg := daemonConfig{addr: "127.0.0.1:0", drainTimeout: 30 * time.Second}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(svc, cfg, ready, log.New(io.Discard, "", 0))
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	}

	const sessions, batches = 8, 5
	for i := 0; i < sessions; i++ {
		body := fmt.Sprintf(`{"bins": 32, "balls": 128, "seed": %d, "engine": %q}`,
			i, [...]string{"direct", "jump", "sharded", "shardedjump"}[i%4])
		resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 201 {
			t.Fatalf("create: status %d", resp.StatusCode)
		}
		var info struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for j := 0; j < batches; j++ {
			resp, err := http.Post(base+"/v1/sessions/"+info.ID+"/events", "application/json",
				strings.NewReader(`{"events": [{"op": "add"}, {"op": "remove"}, {"op": "run", "for": 0.01}]}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 202 {
				t.Fatalf("events: status %d", resp.StatusCode)
			}
		}
	}
	// Hold an SSE stream open across the shutdown: Drain must not hang on
	// a live subscriber, and the daemon must close the stream to exit.
	stream, err := http.Get(base + "/v1/sessions/s-1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit within 60s of SIGTERM")
	}

	m := svc.Metrics()
	acc, app := m.EventsAccepted.Load(), m.EventsApplied.Load()
	if want := int64(sessions * batches * 3); acc != want {
		t.Errorf("accepted %d events, want %d", acc, want)
	}
	if acc != app {
		t.Errorf("accepted %d != applied %d — SIGTERM drain dropped events", acc, app)
	}
	if errs := m.ApplyErrors.Load(); errs != 0 {
		t.Errorf("%d apply errors", errs)
	}
	if _, err := io.ReadAll(stream.Body); err == nil {
		// EOF (nil error) is the expected clean close of the SSE stream.
		_ = err
	}
}

// Command rlsd serves RLS load-balancing sessions as a multi-tenant
// daemon: an HTTP/JSON control plane creates and churns sessions, an SSE
// telemetry plane streams their convergence, and /metrics exposes the
// fleet in Prometheus text format.
//
// Examples:
//
//	rlsd -addr :8080
//	rlsd -addr :8080 -max-sessions 10000 -rate 200 -burst 400
//	curl -d '{"bins": 64, "balls": 640, "engine": "jump"}' localhost:8080/v1/sessions
//	curl -N localhost:8080/v1/sessions/s-1/stream
//
// On SIGINT/SIGTERM the daemon stops admitting work, applies every
// already-accepted event, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

// daemonConfig collects the flag values so run is testable without a
// process boundary.
type daemonConfig struct {
	addr         string
	maxSessions  int
	maxBins      int
	maxBatch     int
	queueDepth   int
	rate         float64
	burst        float64
	drainTimeout time.Duration
	stateDir     string
	snapInterval time.Duration
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 4096, "maximum live sessions (503 beyond)")
	flag.IntVar(&cfg.maxBins, "max-bins", 1<<20, "maximum bins per session")
	flag.IntVar(&cfg.maxBatch, "max-batch", 4096, "maximum events per POST batch")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "per-session event queue depth (429 when full)")
	flag.Float64Var(&cfg.rate, "rate", 1000, "per-session event admission rate, events/sec (0 = unlimited)")
	flag.Float64Var(&cfg.burst, "burst", 0, "per-session admission burst (0 = 2x rate)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "max time to flush queued events on shutdown")
	flag.StringVar(&cfg.stateDir, "state-dir", "", "tenant snapshot directory: restore on boot, snapshot on shutdown (empty = no durability)")
	flag.DurationVar(&cfg.snapInterval, "snapshot-interval", 30*time.Second, "periodic tenant snapshot interval with -state-dir (0 = shutdown-only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"rlsd hosts RLS balancing sessions behind an HTTP/JSON control plane\n"+
				"with SSE telemetry and Prometheus metrics.\n\n"+
				"Usage: rlsd [flags]   (see cmd/rlsd/README.md for the API reference)\n\n"+
				"Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	svc := service.New(service.Config{
		MaxSessions: cfg.maxSessions,
		MaxBins:     cfg.maxBins,
		MaxBatch:    cfg.maxBatch,
		QueueDepth:  cfg.queueDepth,
		EventRate:   cfg.rate,
		EventBurst:  cfg.burst,
		StateDir:    cfg.stateDir,
	})
	if err := run(svc, cfg, nil, logger); err != nil {
		logger.Fatalf("rlsd: %v", err)
	}
}

// run serves svc on cfg.addr until SIGINT/SIGTERM, then drains: the
// service stops admitting sessions and events (503), every queued event
// is applied, SSE streams are closed, and the listener shuts down. If
// ready is non-nil it receives the bound address once listening (the
// shutdown test dials it).
func run(svc *service.Service, cfg daemonConfig, ready chan<- string, logger *log.Logger) error {
	if cfg.stateDir != "" {
		n, err := svc.RestoreSnapshots(cfg.stateDir)
		if err != nil {
			logger.Printf("rlsd: restore from %s: %v", cfg.stateDir, err)
		}
		logger.Printf("rlsd: restored %d sessions from %s", n, cfg.stateDir)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// Canceling baseCtx on shutdown propagates into request contexts,
	// ending otherwise-unbounded SSE streams so Shutdown can complete.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Handler:     svc.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("rlsd: listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	// Periodic tenant snapshots bound how much history a crash (as
	// opposed to a clean SIGTERM) can lose.
	if cfg.stateDir != "" && cfg.snapInterval > 0 {
		ticker := time.NewTicker(cfg.snapInterval)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if n, err := svc.SaveSnapshots(cfg.stateDir); err != nil {
					logger.Printf("rlsd: periodic snapshot (%d saved): %v", n, err)
				}
			}
		}()
	}

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case sig := <-sigc:
		logger.Printf("rlsd: received %v; draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drainErr := svc.Drain(ctx)
	m := svc.Metrics()
	logger.Printf("rlsd: drained (%d/%d events applied, %d sessions live)",
		m.EventsApplied.Load(), m.EventsAccepted.Load(), m.SessionsLive.Load())
	if cfg.stateDir != "" {
		// The appliers have finished, so these snapshots capture every
		// accepted event; the next boot resumes byte-identically.
		n, err := svc.SaveSnapshots(cfg.stateDir)
		if err != nil {
			logger.Printf("rlsd: shutdown snapshot: %v", err)
			if drainErr == nil {
				drainErr = err
			}
		}
		logger.Printf("rlsd: saved %d session snapshots to %s", n, cfg.stateDir)
	}

	cancelBase() // end SSE streams
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
		if drainErr == nil {
			drainErr = err
		}
	}
	<-errc // Serve has returned http.ErrServerClosed
	return drainErr
}

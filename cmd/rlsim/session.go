package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	rls "repro"
)

// sessionFlags collects the durability flags that switch rlsim onto the
// session-driven run path (snapshots and trace archives live on
// rls.Session, not the one-shot Runner).
type sessionFlags struct {
	resume    string // boot from this snapshot instead of a fresh session
	snapshot  string // write the final state here
	traceout  string // stream a binary trace archive here
	snapEvery int    // embed a snapshot every K trace records (0 = initial only)
}

func (sf sessionFlags) active() bool {
	return sf.resume != "" || sf.snapshot != "" || sf.traceout != ""
}

// runSession is the durable twin of run: it drives an rls.Session so the
// state can be resumed from and snapshotted to disk. Placements, speed
// profiles, and disc= targets are Runner-only features and are rejected
// here; balls enter via AddBallRandom (the session equivalent of random
// placement).
func runSession(sf sessionFlags, n, m int, seed uint64, placement, target, topology, gsampler, speeds, engine string, shards int, strict bool, plot bool) error {
	if speeds != "" {
		return fmt.Errorf("-speeds is not supported with -resume/-snapshot/-traceout (sessions have no speed-aware engine)")
	}
	if placement != "all-in-one" && placement != "random" {
		return fmt.Errorf("-placement %s is not supported with -resume/-snapshot/-traceout (sessions place balls uniformly at random)", placement)
	}

	var sess *rls.Session
	if sf.resume != "" {
		f, err := os.Open(sf.resume)
		if err != nil {
			return err
		}
		sess, err = rls.ResumeSession(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume %s: %w", sf.resume, err)
		}
		fmt.Printf("resumed from %s: n=%d m=%d engine=%s topology=%s time=%.4f\n",
			sf.resume, sess.N(), sess.M(), sess.Mode(), sess.TopologyName(), sess.Time())
	} else {
		opts := []rls.SessionOption{}
		switch engine {
		case "direct":
		case "jump":
			opts = append(opts, rls.WithSessionEngineMode(rls.JumpEngine))
		case "sharded":
			opts = append(opts, rls.WithSessionEngineMode(rls.ShardedEngine))
		case "shardedjump":
			opts = append(opts, rls.WithSessionEngineMode(rls.ShardedJumpEngine))
		default:
			return fmt.Errorf("unknown engine mode %q", engine)
		}
		if shards != 0 {
			opts = append(opts, rls.WithSessionShards(shards))
		}
		if strict {
			opts = append(opts, rls.WithSessionStrictTieRule())
		}
		topo, topoActive, err := parseTopology(topology, n, seed)
		if err != nil {
			return err
		}
		if topoActive {
			opts = append(opts, rls.WithSessionTopology(topo))
		}
		gs, err := parseGraphSampler(gsampler)
		if err != nil {
			return err
		}
		if gs != rls.GraphSamplerAuto {
			// NewSession panics on an unsupported combination, so gate it
			// here where a flag error is the right surface.
			if engine != "jump" || !topoActive {
				return fmt.Errorf("-graphsampler %s needs -engine jump and a graph -topology", gs)
			}
			opts = append(opts, rls.WithSessionGraphSampler(gs))
		}
		sess = rls.NewSession(n, seed, opts...)
		for i := 0; i < m; i++ {
			sess.AddBallRandom()
		}
	}

	var tw *rls.TraceWriter
	if sf.traceout != "" {
		f, err := os.Create(sf.traceout)
		if err != nil {
			return err
		}
		defer f.Close()
		tw, err = sess.NewTraceWriter(f, sf.snapEvery)
		if err != nil {
			return err
		}
	}
	point := func() error {
		if tw == nil {
			return nil
		}
		return tw.Point()
	}

	switch {
	case target == "perfect":
		// Chunked budgets give the trace archive its sampling grid; one
		// point per chunk until the session reports perfect balance.
		const chunk = 10_000
		for {
			reached, err := sess.RunUntilPerfect(chunk)
			if err != nil {
				return err
			}
			if err := point(); err != nil {
				return err
			}
			if reached {
				break
			}
		}
	case strings.HasPrefix(target, "time="):
		x, err := strconv.ParseFloat(strings.TrimPrefix(target, "time="), 64)
		if err != nil {
			return fmt.Errorf("bad target %q: %v", target, err)
		}
		const slices = 50
		for i := 0; i < slices; i++ {
			if err := sess.RunFor(x / slices); err != nil {
				return err
			}
			if err := point(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("target %q is not supported with -resume/-snapshot/-traceout (want perfect or time=X)", target)
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return err
		}
	}

	st := sess.Stats()
	fmt.Printf("\ntime=%.4f activations=%d moves=%d balls=%d final-disc=%.3f\n",
		st.Time, st.Activations, st.Moves, st.Balls, st.Disc)

	if sf.snapshot != "" {
		f, err := os.Create(sf.snapshot)
		if err != nil {
			return err
		}
		if err := sess.Snapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s (resume with rlsim -resume %s, inspect with rlsdump)\n", sf.snapshot, sf.snapshot)
	}
	return nil
}

package main

import "testing"

func TestRunAllPlacements(t *testing.T) {
	for _, p := range []string{"all-in-one", "random", "two-choice", "spread", "delta-pair"} {
		if err := run(8, 32, 1, p, "perfect", "complete", "auto", "", "direct", 0, false, 0, false, false); err != nil {
			t.Errorf("placement %s: %v", p, err)
		}
	}
}

func TestRunTargets(t *testing.T) {
	cases := []string{"perfect", "disc=2", "time=0.5"}
	for _, target := range cases {
		if err := run(8, 32, 1, "all-in-one", target, "complete", "auto", "", "direct", 0, false, 0, false, false); err != nil {
			t.Errorf("target %s: %v", target, err)
		}
	}
}

func TestRunTopologies(t *testing.T) {
	for _, topo := range []string{"complete", "ring", "torus", "hypercube"} {
		if err := run(16, 64, 1, "all-in-one", "perfect", topo, "auto", "", "direct", 0, false, 0, false, false); err != nil {
			t.Errorf("topology %s: %v", topo, err)
		}
	}
}

func TestRunSpeedProfiles(t *testing.T) {
	for _, sp := range []string{"", "uniform", "bimodal", "powerlaw"} {
		if err := run(8, 64, 1, "all-in-one", "perfect", "complete", "auto", sp, "direct", 0, false, 0, false, false); err != nil {
			t.Errorf("speeds %s: %v", sp, err)
		}
	}
}

func TestRunStrictAndTrace(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "auto", "", "direct", 0, true, 10, true, false); err != nil {
		t.Error(err)
	}
}

func TestRunCSVTrace(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "auto", "", "direct", 0, false, 10, false, true); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name                                        string
		placement, target, topology, speeds, engine string
	}{
		{"bad placement", "nope", "perfect", "complete", "", "direct"},
		{"bad target", "random", "nope", "complete", "", "direct"},
		{"bad target value", "random", "disc=x", "complete", "", "direct"},
		{"bad topology", "random", "perfect", "nope", "", "direct"},
		{"bad speeds", "random", "perfect", "complete", "nope", "direct"},
		{"bad engine", "random", "perfect", "complete", "", "nope"},
		{"jump+speeds", "random", "perfect", "complete", "uniform", "jump"},
	}
	for _, c := range cases {
		if err := run(8, 32, 1, c.placement, c.target, c.topology, "auto", c.speeds, c.engine, 0, false, 0, false, false); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// strict + topology is rejected in every engine mode (the run helper
	// threads strict as its own bool, so it gets its own case).
	if err := run(8, 32, 1, "random", "perfect", "ring", "auto", "", "direct", 0, true, 0, false, false); err == nil {
		t.Error("strict+topology: accepted")
	}
}

func TestRunJumpEngine(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "auto", "", "jump", 0, false, 0, false, false); err != nil {
		t.Error(err)
	}
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "auto", "", "jump", 0, false, 10, false, true); err != nil {
		t.Errorf("jump trace: %v", err)
	}
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "auto", "", "jump", 0, true, 0, false, false); err != nil {
		t.Errorf("jump strict: %v", err)
	}
	for _, topo := range []string{"ring", "torus", "hypercube", "expander", "random-4-regular"} {
		if err := run(16, 64, 1, "all-in-one", "perfect", topo, "auto", "", "jump", 0, false, 0, false, false); err != nil {
			t.Errorf("jump %s: %v", topo, err)
		}
	}
}

func TestRunGraphSamplerFlag(t *testing.T) {
	// Both forced modes run on a graph jump engine; everything else
	// rejects a non-auto sampler.
	for _, gs := range []string{"auto", "exact", "rejection"} {
		for _, topo := range []string{"ring", "expander", "random-6-regular"} {
			if err := run(16, 64, 1, "all-in-one", "perfect", topo, gs, "", "jump", 0, false, 0, false, false); err != nil {
				t.Errorf("jump %s sampler=%s: %v", topo, gs, err)
			}
		}
	}
	if err := run(16, 64, 1, "all-in-one", "perfect", "ring", "nope", "", "jump", 0, false, 0, false, false); err == nil {
		t.Error("bad sampler name: accepted")
	}
	if err := run(16, 64, 1, "all-in-one", "perfect", "complete", "rejection", "", "jump", 0, false, 0, false, false); err == nil {
		t.Error("sampler without topology: accepted")
	}
	if err := run(16, 64, 1, "all-in-one", "perfect", "ring", "rejection", "", "direct", 0, false, 0, false, false); err == nil {
		t.Error("sampler on the direct engine: accepted")
	}
	for _, topo := range []string{"random-0-regular", "random--3-regular", "random-x-regular", "random-16-regular"} {
		// d = 16 does not fit n = 16; the rest fail the flag parse.
		if err := run(16, 64, 1, "all-in-one", "perfect", topo, "auto", "", "jump", 0, false, 0, false, false); err == nil {
			t.Errorf("%s: accepted", topo)
		}
	}
}

func TestRunShardedEngine(t *testing.T) {
	for _, p := range []int{0, 1, 2} {
		if err := run(8, 64, 1, "random", "perfect", "complete", "auto", "", "sharded", p, false, 0, false, false); err != nil {
			t.Errorf("shards=%d: %v", p, err)
		}
	}
	if err := run(8, 64, 1, "random", "time=1", "complete", "auto", "", "sharded", 2, false, 20, false, true); err != nil {
		t.Errorf("sharded trace: %v", err)
	}
}

func TestRunShardedJumpEngine(t *testing.T) {
	for _, p := range []int{0, 1, 2} {
		if err := run(8, 64, 1, "random", "perfect", "complete", "auto", "", "shardedjump", p, false, 0, false, false); err != nil {
			t.Errorf("shards=%d: %v", p, err)
		}
	}
	if err := run(8, 64, 1, "random", "time=1", "complete", "auto", "", "shardedjump", 2, false, 20, false, true); err != nil {
		t.Errorf("shardedjump trace: %v", err)
	}
}

func TestRunShardedRejectsBadCombos(t *testing.T) {
	cases := map[string]func() error{
		"sharded+topology": func() error {
			return run(16, 64, 1, "random", "perfect", "ring", "auto", "", "sharded", 2, false, 0, false, false)
		},
		"sharded+strict": func() error {
			return run(16, 64, 1, "random", "perfect", "complete", "auto", "", "sharded", 2, true, 0, false, false)
		},
		"shards without sharded engine": func() error {
			return run(16, 64, 1, "random", "perfect", "complete", "auto", "", "direct", 2, false, 0, false, false)
		},
		"shardedjump+strict": func() error {
			return run(16, 64, 1, "random", "perfect", "complete", "auto", "", "shardedjump", 2, true, 0, false, false)
		},
	}
	for name, fn := range cases {
		if err := fn(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

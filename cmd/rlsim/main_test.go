package main

import "testing"

func TestRunAllPlacements(t *testing.T) {
	for _, p := range []string{"all-in-one", "random", "two-choice", "spread", "delta-pair"} {
		if err := run(8, 32, 1, p, "perfect", "complete", "", "direct", false, 0, false, false); err != nil {
			t.Errorf("placement %s: %v", p, err)
		}
	}
}

func TestRunTargets(t *testing.T) {
	cases := []string{"perfect", "disc=2", "time=0.5"}
	for _, target := range cases {
		if err := run(8, 32, 1, "all-in-one", target, "complete", "", "direct", false, 0, false, false); err != nil {
			t.Errorf("target %s: %v", target, err)
		}
	}
}

func TestRunTopologies(t *testing.T) {
	for _, topo := range []string{"complete", "ring", "torus", "hypercube"} {
		if err := run(16, 64, 1, "all-in-one", "perfect", topo, "", "direct", false, 0, false, false); err != nil {
			t.Errorf("topology %s: %v", topo, err)
		}
	}
}

func TestRunSpeedProfiles(t *testing.T) {
	for _, sp := range []string{"", "uniform", "bimodal", "powerlaw"} {
		if err := run(8, 64, 1, "all-in-one", "perfect", "complete", sp, "direct", false, 0, false, false); err != nil {
			t.Errorf("speeds %s: %v", sp, err)
		}
	}
}

func TestRunStrictAndTrace(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "", "direct", true, 10, true, false); err != nil {
		t.Error(err)
	}
}

func TestRunCSVTrace(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "", "direct", false, 10, false, true); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name                                        string
		placement, target, topology, speeds, engine string
	}{
		{"bad placement", "nope", "perfect", "complete", "", "direct"},
		{"bad target", "random", "nope", "complete", "", "direct"},
		{"bad target value", "random", "disc=x", "complete", "", "direct"},
		{"bad topology", "random", "perfect", "nope", "", "direct"},
		{"bad speeds", "random", "perfect", "complete", "nope", "direct"},
		{"bad engine", "random", "perfect", "complete", "", "nope"},
		{"jump+topology", "random", "perfect", "ring", "", "jump"},
	}
	for _, c := range cases {
		if err := run(8, 32, 1, c.placement, c.target, c.topology, c.speeds, c.engine, false, 0, false, false); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRunJumpEngine(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "", "jump", false, 0, false, false); err != nil {
		t.Error(err)
	}
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "", "jump", false, 10, false, true); err != nil {
		t.Errorf("jump trace: %v", err)
	}
}

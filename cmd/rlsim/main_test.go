package main

import "testing"

func TestRunAllPlacements(t *testing.T) {
	for _, p := range []string{"all-in-one", "random", "two-choice", "spread", "delta-pair"} {
		if err := run(8, 32, 1, p, "perfect", "complete", "", false, 0, false, false); err != nil {
			t.Errorf("placement %s: %v", p, err)
		}
	}
}

func TestRunTargets(t *testing.T) {
	cases := []string{"perfect", "disc=2", "time=0.5"}
	for _, target := range cases {
		if err := run(8, 32, 1, "all-in-one", target, "complete", "", false, 0, false, false); err != nil {
			t.Errorf("target %s: %v", target, err)
		}
	}
}

func TestRunTopologies(t *testing.T) {
	for _, topo := range []string{"complete", "ring", "torus", "hypercube"} {
		if err := run(16, 64, 1, "all-in-one", "perfect", topo, "", false, 0, false, false); err != nil {
			t.Errorf("topology %s: %v", topo, err)
		}
	}
}

func TestRunSpeedProfiles(t *testing.T) {
	for _, sp := range []string{"", "uniform", "bimodal", "powerlaw"} {
		if err := run(8, 64, 1, "all-in-one", "perfect", "complete", sp, false, 0, false, false); err != nil {
			t.Errorf("speeds %s: %v", sp, err)
		}
	}
}

func TestRunStrictAndTrace(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "", true, 10, true, false); err != nil {
		t.Error(err)
	}
}

func TestRunCSVTrace(t *testing.T) {
	if err := run(8, 32, 1, "all-in-one", "perfect", "complete", "", false, 10, false, true); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name                                string
		placement, target, topology, speeds string
	}{
		{"bad placement", "nope", "perfect", "complete", ""},
		{"bad target", "random", "nope", "complete", ""},
		{"bad target value", "random", "disc=x", "complete", ""},
		{"bad topology", "random", "perfect", "nope", ""},
		{"bad speeds", "random", "perfect", "complete", "nope"},
	}
	for _, c := range cases {
		if err := run(8, 32, 1, c.placement, c.target, c.topology, c.speeds, false, 0, false, false); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Command rlsim runs a single RLS simulation and prints a summary, an
// optional trajectory, and an ASCII rendering of the final configuration.
//
// Examples:
//
//	rlsim -n 64 -m 640
//	rlsim -n 64 -m 640 -placement random -trace 500
//	rlsim -n 64 -m 512 -topology ring
//	rlsim -n 16 -m 160 -speeds bimodal
//	rlsim -n 32 -m 320 -strict -target disc=2
//	rlsim -n 4096 -m 4096 -engine jump
//	rlsim -n 4096 -m 4096 -engine jump -strict
//	rlsim -n 4096 -m 4096 -engine jump -topology torus
//	rlsim -n 4096 -m 8192 -engine jump -topology expander
//	rlsim -n 4096 -m 16384 -engine jump -topology random-16-regular -graphsampler rejection
//	rlsim -n 65536 -m 65536 -placement random -engine sharded -shards 4 -target time=8
//	rlsim -n 4096 -m 16384 -placement random -engine shardedjump -shards 4
//	rlsim -n 4096 -m 4096 -engine jump -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	rls "repro"
	"repro/internal/asciiplot"
)

func main() {
	var (
		n         = flag.Int("n", 32, "number of bins")
		m         = flag.Int("m", 320, "number of balls")
		seed      = flag.Uint64("seed", 1, "random seed")
		placement = flag.String("placement", "all-in-one", "initial placement: all-in-one|random|two-choice|spread|delta-pair")
		target    = flag.String("target", "perfect", "stop target: perfect | disc=X | time=X")
		topology  = flag.String("topology", "complete", "topology: complete|ring|torus|hypercube|expander|random-<d>-regular")
		gsampler  = flag.String("graphsampler", "auto", "jump-engine graph sampler: auto|exact|rejection (needs -engine jump and a graph -topology)")
		speeds    = flag.String("speeds", "", "bin speed profile: uniform|bimodal|powerlaw (empty = unit speeds)")
		strict    = flag.Bool("strict", false, "use the strict (>) tie rule of [12]/[11]")
		engine    = flag.String("engine", "direct", "engine mode: direct (per-activation) | jump (rejection-free) | sharded (parallel) | shardedjump (parallel rejection-free)")
		shards    = flag.Int("shards", 0, "sharded engine worker count P (0 = default); only with -engine sharded|shardedjump")
		trace     = flag.Int64("trace", 0, "print a trace point every K activations (0 = off)")
		plot      = flag.Bool("plot", true, "render initial/final configurations as ASCII bars")
		csv       = flag.Bool("csv", false, "emit the trace as CSV instead of a table (implies -trace)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprof   = flag.String("memprofile", "", "write a heap profile after the run to this file (go tool pprof)")

		sf sessionFlags
	)
	flag.StringVar(&sf.resume, "resume", "", "resume from a snapshot file instead of starting fresh (-n/-m/-seed/engine flags then come from the artifact)")
	flag.StringVar(&sf.snapshot, "snapshot", "", "write a snapshot of the final state to this file")
	flag.StringVar(&sf.traceout, "traceout", "", "stream a binary trace archive of the run to this file (decode with rlsdump)")
	flag.IntVar(&sf.snapEvery, "snapevery", 0, "embed a full snapshot every K trace records in -traceout (0 = initial only)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"rlsim runs one RLS simulation and prints a summary, an optional\n"+
				"trajectory, and an ASCII rendering of the configurations.\n\n"+
				"Usage: rlsim [flags]   (see cmd/README.md for the full tour)\n\n"+
				"Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *csv && *trace <= 0 {
		*trace = 100
	}
	err := withProfiles(*cpuprof, *memprof, func() error {
		if sf.active() {
			return runSession(sf, *n, *m, *seed, *placement, *target, *topology, *gsampler, *speeds, *engine, *shards, *strict, *plot && !*csv)
		}
		return run(*n, *m, *seed, *placement, *target, *topology, *gsampler, *speeds, *engine, *shards, *strict, *trace, *plot && !*csv, *csv)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlsim: %v\n", err)
		os.Exit(1)
	}
}

// withProfiles wraps f with optional pprof collection: the CPU profile
// covers exactly the run, and the heap profile snapshots live allocations
// after it (post-GC, so the engine's retained structures dominate, not
// garbage). Profiles are flushed before this returns — os.Exit in main
// happens after — so hot-loop work can be profiled without editing code:
//
//	go tool pprof cpu.pprof
func withProfiles(cpuprof, memprof string, f func() error) error {
	if cpuprof != "" {
		cf, err := os.Create(cpuprof)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := f(); err != nil {
		return err
	}
	if memprof != "" {
		mf, err := os.Create(memprof)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
	}
	return nil
}

// parseTopology maps the -topology flag onto an rls.Topology. The ring,
// torus, hypercube, and expander adapt their shape to n the way the
// library constructors expect; "random-<d>-regular" builds its adjacency
// deterministically from the run seed, so a fixed (seed, n, d) triple
// reproduces the same graph. active reports whether the choice restricts
// sampling at all (false for "complete").
func parseTopology(topology string, n int, seed uint64) (t rls.Topology, active bool, err error) {
	switch topology {
	case "complete":
		return rls.CompleteTopology(), false, nil
	case "ring":
		return rls.RingTopology(), true, nil
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		return rls.TorusTopology(side), true, nil
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		return rls.HypercubeTopology(dim), true, nil
	case "expander":
		return rls.ExpanderTopology(), true, nil
	}
	if d, ok := parseRandomRegular(topology); ok {
		return rls.RandomRegularTopology(d, seed), true, nil
	}
	return rls.Topology{}, false, fmt.Errorf("unknown topology %q", topology)
}

// parseRandomRegular recognizes "random-<d>-regular" and returns d.
func parseRandomRegular(s string) (int, bool) {
	if !strings.HasPrefix(s, "random-") || !strings.HasSuffix(s, "-regular") {
		return 0, false
	}
	d, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(s, "random-"), "-regular"))
	if err != nil || d < 1 {
		return 0, false
	}
	return d, true
}

// parseGraphSampler maps the -graphsampler flag onto the library enum.
func parseGraphSampler(s string) (rls.GraphSampler, error) {
	switch s {
	case "auto":
		return rls.GraphSamplerAuto, nil
	case "exact":
		return rls.GraphSamplerExact, nil
	case "rejection":
		return rls.GraphSamplerRejection, nil
	}
	return 0, fmt.Errorf("unknown graph sampler %q (want auto|exact|rejection)", s)
}

func run(n, m int, seed uint64, placement, target, topology, gsampler, speeds, engine string, shards int, strict bool, trace int64, plot, csv bool) error {
	opts := []rls.Option{rls.WithSeed(seed)}

	switch engine {
	case "direct":
	case "jump":
		opts = append(opts, rls.WithEngineMode(rls.JumpEngine))
	case "sharded":
		opts = append(opts, rls.WithEngineMode(rls.ShardedEngine))
		if shards != 0 {
			opts = append(opts, rls.WithShards(shards))
		}
	case "shardedjump":
		opts = append(opts, rls.WithEngineMode(rls.ShardedJumpEngine))
		if shards != 0 {
			opts = append(opts, rls.WithShards(shards))
		}
	default:
		return fmt.Errorf("unknown engine mode %q", engine)
	}
	if shards != 0 && engine != "sharded" && engine != "shardedjump" {
		return fmt.Errorf("-shards requires -engine sharded or shardedjump")
	}

	switch placement {
	case "all-in-one":
		opts = append(opts, rls.WithPlacement(rls.AllInOne()))
	case "random":
		opts = append(opts, rls.WithPlacement(rls.Random()))
	case "two-choice":
		opts = append(opts, rls.WithPlacement(rls.TwoChoice()))
	case "spread":
		opts = append(opts, rls.WithPlacement(rls.Spread()))
	case "delta-pair":
		opts = append(opts, rls.WithPlacement(rls.DeltaPair(1)))
	default:
		return fmt.Errorf("unknown placement %q", placement)
	}

	switch {
	case target == "perfect":
		opts = append(opts, rls.WithTarget(rls.UntilPerfect()))
	case strings.HasPrefix(target, "disc="):
		x, err := strconv.ParseFloat(strings.TrimPrefix(target, "disc="), 64)
		if err != nil {
			return fmt.Errorf("bad target %q: %v", target, err)
		}
		opts = append(opts, rls.WithTarget(rls.UntilBalanced(x)))
	case strings.HasPrefix(target, "time="):
		x, err := strconv.ParseFloat(strings.TrimPrefix(target, "time="), 64)
		if err != nil {
			return fmt.Errorf("bad target %q: %v", target, err)
		}
		opts = append(opts, rls.WithTarget(rls.UntilTime(x)))
	default:
		return fmt.Errorf("unknown target %q", target)
	}

	topo, topoActive, err := parseTopology(topology, n, seed)
	if err != nil {
		return err
	}
	if topoActive {
		opts = append(opts, rls.WithTopology(topo))
	}
	gs, err := parseGraphSampler(gsampler)
	if err != nil {
		return err
	}
	if gs != rls.GraphSamplerAuto {
		// The Runner validates the combination (jump engine + graph
		// topology) and returns its own error otherwise.
		opts = append(opts, rls.WithGraphSampler(gs))
	}

	switch speeds {
	case "":
	case "uniform":
		opts = append(opts, rls.WithSpeeds(uniformSpeeds(n)))
	case "bimodal":
		s := uniformSpeeds(n)
		for i := 0; i < n/4; i++ {
			s[i] = 4
		}
		opts = append(opts, rls.WithSpeeds(s))
	case "powerlaw":
		s := make([]float64, n)
		for i := range s {
			s[i] = 1 / math.Sqrt(float64(i+1))
		}
		opts = append(opts, rls.WithSpeeds(s))
	default:
		return fmt.Errorf("unknown speed profile %q", speeds)
	}

	if strict {
		opts = append(opts, rls.WithStrictTieRule())
	}

	runner := rls.New(n, m, opts...)
	if !csv {
		fmt.Printf("RLS: n=%d m=%d ∅=%.2f placement=%s target=%s topology=%s seed=%d\n",
			n, m, float64(m)/float64(n), placement, target, topology, seed)
		fmt.Printf("Theorem 1 predictor ln(n)+n²/m = %.3f, w.h.p. shape = %.3f\n",
			rls.ExpectedBalanceTime(n, m), rls.WHPBalanceTime(n, m))
	}

	if trace > 0 {
		res, tr, err := runner.RunTraced(trace)
		if err != nil {
			return err
		}
		if csv {
			fmt.Println("time,activations,disc,min_load,max_load")
			for _, p := range tr {
				fmt.Printf("%g,%d,%g,%d,%d\n", p.Time, p.Activations, p.Disc, p.MinLoad, p.MaxLoad)
			}
			return nil
		}
		fmt.Printf("%-12s %-12s %-10s %-6s %-6s\n", "time", "activations", "disc", "min", "max")
		for _, p := range tr {
			fmt.Printf("%-12.4f %-12d %-10.3f %-6d %-6d\n", p.Time, p.Activations, p.Disc, p.MinLoad, p.MaxLoad)
		}
		report(res, plot)
		return nil
	}
	res, err := runner.Run()
	if err != nil {
		return err
	}
	report(res, plot)
	return nil
}

func report(res rls.Result, plot bool) {
	fmt.Printf("\nreached=%v time=%.4f activations=%d moves=%d final-disc=%.3f\n",
		res.Reached, res.Time, res.Activations, res.Moves, res.Disc)
	fmt.Printf("phase crossings: log-balanced=%.4f 1-balanced=%.4f perfect=%.4f\n",
		res.Phases.LogBalanced, res.Phases.OneBalanced, res.Phases.Perfect)
	if plot && len(res.Final) <= 72 {
		sum := 0
		for _, l := range res.Final {
			sum += l
		}
		avg := float64(sum) / float64(len(res.Final))
		fmt.Println()
		asciiplot.Bars(os.Stdout, "final configuration", res.Final, avg, "average load")
	}
}

func uniformSpeeds(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

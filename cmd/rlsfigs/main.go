// Command rlsfigs regenerates the paper's illustration figures (1–3) as
// ASCII renderings driven by the same code paths the tests verify, plus
// the reproduction's measurement figures (M1: balancing time vs n; M2: a
// discrepancy-vs-time trajectory with the three phases marked).
//
// Examples:
//
//	rlsfigs            # everything
//	rlsfigs -fig 1     # Figure 1 only
//	rlsfigs -fig M1
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	rls "repro"
	"repro/internal/asciiplot"
	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "which figure: 1|2|3|M1|M2|all")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.StringVar(&fromTrace, "fromtrace", "", "plot figure M2 from a trace archive (rlsim -traceout) instead of re-simulating")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"rlsfigs regenerates the paper's illustration figures (1-3) and the\n"+
				"reproduction's measurement figures (M1, M2) as ASCII renderings.\n\n"+
				"Usage: rlsfigs [flags]   (see cmd/README.md for the full tour)\n\n"+
				"Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	figs := map[string]func(uint64){
		"1":  figure1,
		"2":  figure2,
		"3":  figure3,
		"M1": figureM1,
		"M2": figureM2,
	}
	if *fig == "all" {
		for _, id := range []string{"1", "2", "3", "M1", "M2"} {
			figs[id](*seed)
			fmt.Println()
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "rlsfigs: unknown figure %q\n", *fig)
		os.Exit(1)
	}
	f(*seed)
}

// figure1 reproduces Figure 1: a staircase configuration with the move
// classification (RLS / neutral "both" / destructive) summarized per
// example pair.
func figure1(uint64) {
	v := loadvec.Vector{7, 6, 6, 5, 4, 4, 3, 2, 2, 2, 1, 1, 1, 1, 1, 0}
	asciiplot.Bars(os.Stdout, "Figure 1 — RLS moves versus destructive moves (staircase configuration)",
		v, v.Avg(), "average load ∅")
	fmt.Println()
	examples := []struct {
		src, dst int
	}{
		{0, 15}, // 7 → 0, big downhill: RLS only
		{0, 1},  // 7 → 6, off by one: neutral (both)
		{2, 3},  // 6 → 5, off by one: neutral (both)
		{1, 2},  // 6 → 6, equal loads: destructive
		{10, 0}, // 1 → 7, uphill: destructive
	}
	fmt.Println("example moves (src→dst: kind):")
	for _, e := range examples {
		fmt.Printf("  bin %2d (load %d) → bin %2d (load %d): %s\n",
			e.src+1, v[e.src], e.dst+1, v[e.dst], core.Classify(v, e.src, e.dst))
	}
	fmt.Println("rule (§4): protocol move iff ℓ_src ≥ ℓ_dst+1; destructive iff ℓ_src ≤ ℓ_dst+1;")
	fmt.Println("the overlap ℓ_src = ℓ_dst+1 is a neutral move (both).")
}

// figure2 reproduces Figure 2: the Lemma 2 coupling. It shows ℓ and the
// close configuration ℓ′ (one destructive move apart), performs coupled
// steps, and reports that closeness held.
func figure2(seed uint64) {
	l := loadvec.Vector{6, 5, 5, 4, 3, 3, 2, 2}.SortedDesc()
	lp, err := core.DestructiveMoveOnSorted(l, 6, 3) // iR=7th fullest → iL=4th
	if err != nil {
		panic(err)
	}
	asciiplot.Bars(os.Stdout, "Figure 2 — configuration ℓ = ℓ^(k)(t−1)", l, l.Avg(), "∅")
	fmt.Println()
	asciiplot.Bars(os.Stdout, "Figure 2 — configuration ℓ′ = ℓ^(k+1)(t−1) (one destructive move from ℓ)", lp, lp.Avg(), "∅")
	fmt.Println()
	r := rng.New(seed)
	const steps = 2000
	a, b, err := core.CoupledRun(l, lp, steps, r)
	if err != nil {
		fmt.Printf("COUPLING VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("coupled both processes for %d steps: closeness held at every step;\n", steps)
	fmt.Printf("final disc(ℓ)=%.2f ≤ disc(ℓ′)=%.2f  (Lemma 2's majorization)\n", a.Disc(), b.Disc())
}

// figure3 reproduces Figure 3: the Lemma 13 reshaping — an x-balanced
// configuration reordered into the half-spread worst case, with moves
// only heavy→light.
func figure3(seed uint64) {
	n, x := 16, 2
	avg := 4
	m := n * avg
	r := rng.New(seed)
	// An arbitrary x-balanced configuration.
	arbitrary := loadvec.Vector{6, 5, 4, 4, 3, 2, 4, 5, 3, 4, 4, 6, 2, 4, 5, 3}
	asciiplot.Bars(os.Stdout, "Figure 3 (left) — an x-balanced configuration (x=2)", arbitrary, float64(avg), "∅")
	fmt.Println()
	reshaped := loadvec.HalfSpread(x).Generate(n, m, r)
	asciiplot.Bars(os.Stdout, "Figure 3 (right) — reshaped by destructive moves: heavy half at ∅+x, light half at ∅−x",
		reshaped, float64(avg), "∅")
	fmt.Printf("\nLemma 13: after one epoch of length ln((∅+x)/(∅−x)) = %.3f the\n",
		core.Lemma13EpochLength(float64(avg), float64(x)))
	fmt.Printf("discrepancy drops to ≤ 2√(x·ln n) = %.2f w.h.p. (ignoring light-bin moves,\n",
		core.Lemma13Shrink(float64(x), n))
	fmt.Println("heavy↔heavy moves, and making heavy→light moves unconditional — all via Lemma 2).")
}

// figureM1 plots the measurement headline: mean balancing time vs n for
// two regimes, against the Theorem 1 predictor.
func figureM1(seed uint64) {
	fmt.Println("Figure M1 — measured E[T] vs n (log-log), worst-case start")
	const reps = 10
	for _, regime := range []struct {
		name string
		m    func(int) int
	}{
		{"m = n", func(n int) int { return n }},
		{"m = n·ln n", func(n int) int { return n * int(math.Ceil(math.Log(float64(n)))) }},
	} {
		ns := []int{32, 64, 128, 256, 512}
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		for _, n := range ns {
			m := regime.m(n)
			var s stats.Summary
			for i := 0; i < reps; i++ {
				res, err := rls.New(n, m, rls.WithSeed(seed+uint64(1000*n+i)), rls.WithFenwickEngine()).Run()
				if err != nil {
					panic(err)
				}
				s.Add(res.Time)
			}
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean())
		}
		fmt.Printf("\nregime %s: measured mean T (predictor ln n + n²/m in brackets)\n", regime.name)
		for i, n := range ns {
			fmt.Printf("  n=%-5d E[T]=%-8.3f [%.3f]\n", n, ys[i], rls.ExpectedBalanceTime(n, regime.m(n)))
		}
		asciiplot.Series(os.Stdout, "measured E[T] vs n", xs, ys, 48, 10, true, true)
	}
}

// fromTrace, when set by -fromtrace, redirects figure M2 onto a
// recorded trace archive instead of a fresh simulation.
var fromTrace string

// figureM2 plots one trajectory's discrepancy over time with the phase
// boundaries marked. With -fromtrace it replots a recorded archive —
// the trajectory that actually ran — rather than re-simulating.
func figureM2(seed uint64) {
	if fromTrace != "" {
		figureM2FromTrace(fromTrace)
		return
	}
	fmt.Println("Figure M2 — disc(ℓ(t)) along one run (n=64, m=2048, worst-case start)")
	res, trace, err := rls.New(64, 2048, rls.WithSeed(seed)).RunTraced(200)
	if err != nil {
		panic(err)
	}
	xs := make([]float64, len(trace))
	ys := make([]float64, len(trace))
	for i, p := range trace {
		xs[i] = p.Time + 1e-3 // avoid log(0)
		ys[i] = p.Disc + 1e-3
	}
	asciiplot.Series(os.Stdout, "disc vs time (log-log)", xs, ys, 60, 12, true, true)
	fmt.Printf("phase crossings: disc≤96·ln n at t=%.3f; disc≤1 at t=%.3f; perfect at t=%.3f\n",
		res.Phases.LogBalanced, res.Phases.OneBalanced, res.Phases.Perfect)
	fmt.Printf("total: time=%.3f activations=%d moves=%d\n", res.Time, res.Activations, res.Moves)
}

// figureM2FromTrace renders the M2 trajectory from a recorded trace
// archive (rlsim -traceout): the points are the run's own samples, no
// re-simulation involved.
func figureM2FromTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlsfigs: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := rls.OpenTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlsfigs: %s: %v\n", path, err)
		os.Exit(1)
	}
	meta := tr.Meta()
	fmt.Printf("Figure M2 — disc(ℓ(t)) from trace archive %s (n=%d, engine=%s, topology=%s)\n",
		path, meta.Bins, meta.Mode, meta.Topology)
	var xs, ys []float64
	var last *rls.TraceRecord
	for {
		item, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlsfigs: %s: %v\n", path, err)
			os.Exit(1)
		}
		if item.Record == nil {
			continue // embedded snapshot seek point
		}
		xs = append(xs, item.Record.Time+1e-3)
		ys = append(ys, item.Record.Disc+1e-3)
		last = item.Record
	}
	if last == nil {
		fmt.Fprintf(os.Stderr, "rlsfigs: %s holds no records\n", path)
		os.Exit(1)
	}
	asciiplot.Series(os.Stdout, "disc vs time (log-log)", xs, ys, 60, 12, true, true)
	fmt.Printf("total: time=%.3f activations=%d moves=%d balls=%d final-disc=%.3f\n",
		last.Time, last.Activations, last.Moves, last.Balls, last.Disc)
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rls "repro"
)

func writeArtifacts(t *testing.T) (snapPath, tracePath string) {
	t.Helper()
	dir := t.TempDir()
	s := rls.NewSession(16, 3, rls.WithSessionEngineMode(rls.JumpEngine))
	for i := 0; i < 48; i++ {
		s.AddBallRandom()
	}

	var trace bytes.Buffer
	tw, err := s.NewTraceWriter(&trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.RunFor(0.5); err != nil {
			t.Fatal(err)
		}
		if err := tw.Point(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := s.SnapshotWithNote(&snap, []byte(`{"id":"s-1"}`)); err != nil {
		t.Fatal(err)
	}
	snapPath = filepath.Join(dir, "s-1.snap")
	tracePath = filepath.Join(dir, "run.trace")
	if err := os.WriteFile(snapPath, snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, trace.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return snapPath, tracePath
}

func TestDumpSnapshot(t *testing.T) {
	snapPath, _ := writeArtifacts(t)

	var out bytes.Buffer
	if err := dump(snapPath, "json", &out); err != nil {
		t.Fatal(err)
	}
	var d snapshotDump
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Kind != "snapshot" || d.Engine != "jump" || d.Bins != 16 || d.Balls != 48 {
		t.Fatalf("snapshot dump %+v", d)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, d.Note); err != nil {
		t.Fatal(err)
	}
	if len(d.Loads) != 16 || compact.String() != `{"id":"s-1"}` {
		t.Fatalf("snapshot dump loads/note: %+v", d)
	}

	out.Reset()
	if err := dump(snapPath, "csv", &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "bin,load" || len(lines) != 17 {
		t.Fatalf("snapshot csv: %d lines, header %q", len(lines), lines[0])
	}
}

func TestDumpTrace(t *testing.T) {
	_, tracePath := writeArtifacts(t)

	var out bytes.Buffer
	if err := dump(tracePath, "json", &out); err != nil {
		t.Fatal(err)
	}
	var d traceDump
	if err := json.Unmarshal(out.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Kind != "trace" || d.Meta.Mode.String() != "jump" || len(d.Records) != 5 {
		t.Fatalf("trace dump %+v", d)
	}
	if d.Snapshots != 3 { // initial + after records 2 and 4
		t.Fatalf("trace dump snapshots %d, want 3", d.Snapshots)
	}

	out.Reset()
	if err := dump(tracePath, "csv", &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// header + 5 records + 3 snapshot markers
	if len(lines) != 9 || !strings.HasPrefix(lines[1], "snapshot,") {
		t.Fatalf("trace csv:\n%s", out.String())
	}
}

func TestDumpRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dump(path, "json", &bytes.Buffer{}); err == nil {
		t.Fatal("garbage dumped without error")
	}
}

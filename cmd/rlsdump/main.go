// Command rlsdump decodes the repo's binary persistence artifacts —
// session snapshots (.snap, written by rlsd and rlsim) and trace
// archives (written by rlsim -traceout) — into JSON or CSV for
// inspection and plotting. The artifact kind is auto-detected from the
// magic bytes.
//
// Examples:
//
//	rlsdump state/s-1.snap                  # snapshot -> JSON
//	rlsdump -format csv state/s-1.snap      # bin,load rows
//	rlsdump run.trace                       # trace -> JSON
//	rlsdump -format csv run.trace           # one row per record
package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	rls "repro"
	"repro/internal/persist"
)

func main() {
	format := flag.String("format", "json", "output format: json or csv")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"rlsdump decodes snapshot and trace artifacts to JSON or CSV.\n\n"+
				"Usage: rlsdump [-format json|csv] FILE\n\n"+
				"Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 || (*format != "json" && *format != "csv") {
		flag.Usage()
		os.Exit(2)
	}
	if err := dump(flag.Arg(0), *format, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rlsdump: %v\n", err)
		os.Exit(1)
	}
}

func dump(path, format string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch {
	case bytes.HasPrefix(raw, []byte(persist.MagicSnapshot)):
		return dumpSnapshot(raw, format, w)
	case bytes.HasPrefix(raw, []byte(persist.MagicTrace)):
		return dumpTrace(raw, format, w)
	}
	return fmt.Errorf("%s: %w (neither a snapshot nor a trace archive)", path, persist.ErrBadMagic)
}

// snapshotDump is the JSON view of a decoded snapshot.
type snapshotDump struct {
	Kind     string           `json:"kind"`
	Engine   string           `json:"engine"`
	Bins     int              `json:"bins"`
	Balls    int              `json:"balls"`
	Shards   int              `json:"shards,omitempty"`
	Strict   bool             `json:"strict,omitempty"`
	Topology string           `json:"topology"`
	Note     json.RawMessage  `json:"note,omitempty"`
	Stats    rls.SessionStats `json:"stats"`
	Loads    []int            `json:"loads"`
}

func dumpSnapshot(raw []byte, format string, w io.Writer) error {
	s, note, err := rls.ResumeSessionWithNote(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if format == "csv" {
		cw := csv.NewWriter(w)
		_ = cw.Write([]string{"bin", "load"})
		for bin, load := range s.Loads() {
			_ = cw.Write([]string{strconv.Itoa(bin), strconv.Itoa(load)})
		}
		cw.Flush()
		return cw.Error()
	}
	out := snapshotDump{
		Kind:     "snapshot",
		Engine:   s.Mode().String(),
		Bins:     s.N(),
		Balls:    s.M(),
		Shards:   s.Shards(),
		Strict:   s.Strict(),
		Topology: s.TopologyName(),
		Stats:    s.Stats(),
		Loads:    s.Loads(),
	}
	if json.Valid(note) {
		out.Note = note
	} else if len(note) > 0 {
		out.Note, _ = json.Marshal(string(note))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// traceDump is the JSON view of a trace archive.
type traceDump struct {
	Kind      string            `json:"kind"`
	Meta      rls.TraceMeta     `json:"meta"`
	Records   []traceRecordDump `json:"records"`
	Snapshots int               `json:"snapshots"`
}

type traceRecordDump struct {
	Kind        string  `json:"kind"`
	Bin         int     `json:"bin"`
	Time        float64 `json:"time"`
	Activations int64   `json:"activations"`
	Moves       int64   `json:"moves"`
	Balls       int     `json:"balls"`
	Disc        float64 `json:"disc"`
}

func dumpTrace(raw []byte, format string, w io.Writer) error {
	tr, err := rls.OpenTrace(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	var cw *csv.Writer
	if format == "csv" {
		cw = csv.NewWriter(w)
		_ = cw.Write([]string{"kind", "bin", "time", "activations", "moves", "balls", "disc"})
	}
	out := traceDump{Kind: "trace", Meta: tr.Meta(), Records: []traceRecordDump{}}
	for {
		item, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if item.Snapshot != nil {
			out.Snapshots++
			if cw != nil {
				// A marker row keeps the seek points visible in the CSV
				// stream without widening the schema.
				_ = cw.Write([]string{"snapshot", "", "", "", "", "", ""})
			}
			continue
		}
		r := item.Record
		if cw != nil {
			_ = cw.Write([]string{
				r.Kind,
				strconv.Itoa(r.Bin),
				strconv.FormatFloat(r.Time, 'g', -1, 64),
				strconv.FormatInt(r.Activations, 10),
				strconv.FormatInt(r.Moves, 10),
				strconv.Itoa(r.Balls),
				strconv.FormatFloat(r.Disc, 'g', -1, 64),
			})
			continue
		}
		out.Records = append(out.Records, traceRecordDump{
			Kind: r.Kind, Bin: r.Bin, Time: r.Time,
			Activations: r.Activations, Moves: r.Moves, Balls: r.Balls, Disc: r.Disc,
		})
	}
	if cw != nil {
		cw.Flush()
		return cw.Error()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Command rlsweep regenerates the reproduction's experiment tables — one
// per figure/claim of the paper plus the engine-equivalence gates, as
// registered in internal/harness (-list enumerates them) — and, with
// -scaling, the multi-core scaling study for the parallel engines.
//
// Examples:
//
//	rlsweep -list
//	rlsweep -exp T1
//	rlsweep -exp all -scale full -format csv
//	rlsweep -scaling -scalingjson scaling.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale  = flag.String("scale", "quick", "quick | full")
		format = flag.String("format", "text", "text | csv")
		seed   = flag.Uint64("seed", 1, "root seed")
		list   = flag.Bool("list", false, "list registered experiments and exit")
		outdir = flag.String("outdir", "", "also write each table as <outdir>/<ID>.csv")

		scaling     = flag.Bool("scaling", false, "run the parallel-engine scaling study instead of experiments")
		scalingN    = flag.Int("scalingn", 0, "scaling: dense workload size (bins = balls; 0 = default 1<<15)")
		scalingReps = flag.Int("scalingreps", 0, "scaling: timing repetitions per cell (0 = default 3)")
		scalingMaxP = flag.Int("scalingmaxp", 0, "scaling: largest shard count swept (0 = GOMAXPROCS)")
		scalingJSON = flag.String("scalingjson", "", "scaling: also write the cells as a BENCH-style json array")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"rlsweep regenerates the experiment tables — one per figure/claim of\n"+
				"the paper plus the engine-equivalence gates (-list enumerates them).\n\n"+
				"Usage: rlsweep [flags]   (see cmd/README.md for the full tour)\n\n"+
				"Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *scaling {
		cfg := harness.ScalingConfig{
			N: *scalingN, Reps: *scalingReps, MaxP: *scalingMaxP, Seed: *seed,
		}
		start := time.Now()
		points := harness.RunScaling(cfg)
		tb := harness.ScalingTable(points, cfg)
		switch *format {
		case "csv":
			tb.RenderCSV(os.Stdout)
		default:
			tb.Render(os.Stdout)
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
		}
		if *scalingJSON != "" {
			if err := writeScalingJSON(*scalingJSON, points); err != nil {
				fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-5s %-55s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	var sc harness.Scale
	switch *scale {
	case "quick":
		sc = harness.Quick
	case "full":
		sc = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "rlsweep: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	var experiments []harness.Experiment
	if *exp == "all" {
		experiments = harness.All()
	} else {
		e, ok := harness.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rlsweep: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		experiments = []harness.Experiment{e}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := harness.RunConfig{Seed: *seed, Scale: sc}
	for i, e := range experiments {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tb := e.Run(cfg)
		switch *format {
		case "csv":
			tb.RenderCSV(os.Stdout)
		default:
			fmt.Printf("# %s — claim: %s\n", e.PaperRef, e.Claim)
			tb.Render(os.Stdout)
			fmt.Printf("(%s scale, %v)\n", *scale, time.Since(start).Round(time.Millisecond))
		}
		if *outdir != "" {
			if err := writeCSV(filepath.Join(*outdir, e.ID+".csv"), tb); err != nil {
				fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeScalingJSON emits the scaling cells in the BENCH_PR*.json shape —
// a flat array opening with a header object — so the bench scripts can
// merge and diff them like any other benchmark entries. NumCPU and
// GOMAXPROCS are recorded in the header: speedup curves are meaningless
// without knowing the hardware parallelism they ran on.
func writeScalingJSON(path string, points []harness.ScalingPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "[\n  {\"suite\": \"scaling\", \"cores\": %d, \"gomaxprocs\": %d}",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	for _, pt := range points {
		fmt.Fprintf(f, ",\n  {\"name\": %q, \"ns_per_op\": %.0f, \"speedup\": %.4f}",
			pt.Name(), pt.NsPerOp, pt.Speedup)
	}
	fmt.Fprintln(f, "\n]")
	return f.Close()
}

func writeCSV(path string, tb *harness.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tb.RenderCSV(f)
	return f.Close()
}

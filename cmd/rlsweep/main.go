// Command rlsweep regenerates the reproduction's experiment tables — one
// per figure/claim of the paper plus the engine-equivalence gates, as
// registered in internal/harness (-list enumerates them) — and, with
// -scaling, the multi-core scaling study for the parallel engines.
//
// Examples:
//
//	rlsweep -list
//	rlsweep -exp T1
//	rlsweep -exp all -scale full -format csv
//	rlsweep -scaling -scalingjson scaling.json
//	rlsweep -serviceload -slsessions 1000 -slrate 50 -slduration 30 -sljson service.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/serviceload"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (see -list) or 'all'")
		scale  = flag.String("scale", "quick", "quick | full")
		format = flag.String("format", "text", "text | csv")
		seed   = flag.Uint64("seed", 1, "root seed")
		list   = flag.Bool("list", false, "list registered experiments and exit")
		outdir = flag.String("outdir", "", "also write each table as <outdir>/<ID>.csv")

		scaling     = flag.Bool("scaling", false, "run the parallel-engine scaling study instead of experiments")
		scalingN    = flag.Int("scalingn", 0, "scaling: dense workload size (bins = balls; 0 = default 1<<15)")
		scalingReps = flag.Int("scalingreps", 0, "scaling: timing repetitions per cell (0 = default 3)")
		scalingMaxP = flag.Int("scalingmaxp", 0, "scaling: largest shard count swept (0 = GOMAXPROCS)")
		scalingJSON = flag.String("scalingjson", "", "scaling: also write the cells as a BENCH-style json array")

		svcLoad    = flag.Bool("serviceload", false, "run the multi-tenant service load study instead of experiments")
		slSessions = flag.Int("slsessions", 0, "serviceload: concurrent tenant sessions (0 = default 64)")
		slRate     = flag.Float64("slrate", 0, "serviceload: target events/sec per session (0 = default 50)")
		slDuration = flag.Float64("slduration", 0, "serviceload: generator duration in seconds (0 = default 2)")
		slBins     = flag.Int("slbins", 0, "serviceload: bins per session (0 = default 64)")
		slBatch    = flag.Int("slbatch", 0, "serviceload: events per POST batch (0 = default 11)")
		slJSON     = flag.String("sljson", "", "serviceload: also write the cells as a BENCH-style json array")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"rlsweep regenerates the experiment tables — one per figure/claim of\n"+
				"the paper plus the engine-equivalence gates (-list enumerates them).\n\n"+
				"Usage: rlsweep [flags]   (see cmd/README.md for the full tour)\n\n"+
				"Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *scaling {
		cfg := harness.ScalingConfig{
			N: *scalingN, Reps: *scalingReps, MaxP: *scalingMaxP, Seed: *seed,
		}
		start := time.Now()
		points := harness.RunScaling(cfg)
		tb := harness.ScalingTable(points, cfg)
		switch *format {
		case "csv":
			tb.RenderCSV(os.Stdout)
		default:
			tb.Render(os.Stdout)
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
		}
		if *scalingJSON != "" {
			if err := writeScalingJSON(*scalingJSON, points); err != nil {
				fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *svcLoad {
		cfg := serviceload.Config{
			Sessions:     *slSessions,
			EventsPerSec: *slRate,
			Duration:     time.Duration(*slDuration * float64(time.Second)),
			Bins:         *slBins,
			BatchSize:    *slBatch,
			Seed:         *seed,
		}
		start := time.Now()
		res, err := serviceload.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlsweep: serviceload: %v\n", err)
			os.Exit(1)
		}
		tb := serviceload.Table(res, cfg)
		switch *format {
		case "csv":
			tb.RenderCSV(os.Stdout)
		default:
			tb.Render(os.Stdout)
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
		}
		if *slJSON != "" {
			if err := writeServiceLoadJSON(*slJSON, res, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-5s %-55s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	var sc harness.Scale
	switch *scale {
	case "quick":
		sc = harness.Quick
	case "full":
		sc = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "rlsweep: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	var experiments []harness.Experiment
	if *exp == "all" {
		experiments = harness.All()
	} else {
		e, ok := harness.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "rlsweep: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		experiments = []harness.Experiment{e}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := harness.RunConfig{Seed: *seed, Scale: sc}
	for i, e := range experiments {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tb := e.Run(cfg)
		switch *format {
		case "csv":
			tb.RenderCSV(os.Stdout)
		default:
			fmt.Printf("# %s — claim: %s\n", e.PaperRef, e.Claim)
			tb.Render(os.Stdout)
			fmt.Printf("(%s scale, %v)\n", *scale, time.Since(start).Round(time.Millisecond))
		}
		if *outdir != "" {
			if err := writeCSV(filepath.Join(*outdir, e.ID+".csv"), tb); err != nil {
				fmt.Fprintf(os.Stderr, "rlsweep: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeScalingJSON emits the scaling cells in the BENCH_PR*.json shape —
// a flat array opening with a header object — so the bench scripts can
// merge and diff them like any other benchmark entries. NumCPU and
// GOMAXPROCS are recorded in the header: speedup curves are meaningless
// without knowing the hardware parallelism they ran on.
func writeScalingJSON(path string, points []harness.ScalingPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "[\n  {\"suite\": \"scaling\", \"cores\": %d, \"gomaxprocs\": %d}",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	for _, pt := range points {
		fmt.Fprintf(f, ",\n  {\"name\": %q, \"ns_per_op\": %.0f, \"speedup\": %.4f}",
			pt.Name(), pt.NsPerOp, pt.Speedup)
	}
	fmt.Fprintln(f, "\n]")
	return f.Close()
}

// writeServiceLoadJSON emits the service load cells in the BENCH_PR*.json
// shape. The header records the study's size so a p99 cell is never read
// without knowing the offered load behind it; the throughput cell carries
// the combined error count the zero-loss gate checks.
func writeServiceLoadJSON(path string, res serviceload.Result, cfg serviceload.Config) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "[\n  {\"suite\": \"serviceload\", \"cores\": %d, \"gomaxprocs\": %d, \"sessions\": %d, \"accepted\": %d}",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), res.Sessions, res.Accepted)
	for _, pt := range res.Points() {
		fmt.Fprintf(f, ",\n  {\"name\": %q, \"ns_per_op\": %.0f", pt.Name, pt.NsPerOp)
		if pt.Name == "ServiceLoad/throughput" {
			fmt.Fprintf(f, ", \"events_per_sec\": %.0f, \"errors\": %d", pt.EventsPerSec, pt.Errors)
		}
		fmt.Fprintf(f, "}")
	}
	fmt.Fprintln(f, "\n]")
	return f.Close()
}

func writeCSV(path string, tb *harness.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tb.RenderCSV(f)
	return f.Close()
}

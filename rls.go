package rls

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/hetero"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Placement chooses the initial configuration of balls in bins.
type Placement struct {
	gen loadvec.Generator
}

// AllInOne places every ball in bin 0 — the paper's worst case.
func AllInOne() Placement { return Placement{loadvec.AllInOne()} }

// Random throws each ball into a uniformly random bin (one-choice).
func Random() Placement { return Placement{loadvec.OneChoice()} }

// TwoChoice places each ball greedily in the lesser loaded of two uniform
// samples (Greedy[2]).
func TwoChoice() Placement { return Placement{loadvec.TwoChoice()} }

// Spread places balls as evenly as possible (a perfectly balanced start).
func Spread() Placement { return Placement{loadvec.Balanced()} }

// DeltaPair starts balanced except one bin at ∅+delta and one at
// ∅−delta; DeltaPair(1) is the paper's Ω(n²/m) lower-bound instance.
func DeltaPair(delta int) Placement { return Placement{loadvec.DeltaPair(delta)} }

// FromLoads uses the given explicit load vector (copied).
func FromLoads(loads []int) Placement {
	return Placement{loadvec.FromVector(loadvec.Vector(loads).Clone())}
}

// targetKind identifies which stop condition a Target expresses, so
// option plumbing can dispatch on it without comparing description
// strings.
type targetKind int

const (
	targetPerfect targetKind = iota
	targetBalanced
	targetTime
)

// Target is a stop condition for a run. The kind plus its numeric
// argument fully describe the condition, so every engine mode — including
// the sharded engine, whose stop conditions read the folded global view
// rather than a *sim.Engine — can reconstruct it.
type Target struct {
	kind targetKind
	arg  float64 // threshold for targetBalanced, horizon for targetTime
	stop func(e *sim.Engine) bool
	desc string
}

// String returns a stable description of the target ("perfect",
// "disc<=x", "t=x") for logs.
func (t Target) String() string { return t.desc }

// UntilPerfect stops at perfect balance (disc < 1) — the paper's T.
func UntilPerfect() Target {
	return Target{kind: targetPerfect, stop: sim.UntilPerfect(), desc: "perfect"}
}

// UntilBalanced stops at disc ≤ x.
func UntilBalanced(x float64) Target {
	return Target{kind: targetBalanced, arg: x, stop: sim.UntilBalanced(x), desc: fmt.Sprintf("disc<=%g", x)}
}

// UntilTime stops at continuous time t.
func UntilTime(t float64) Target {
	return Target{kind: targetTime, arg: t, stop: sim.UntilTime(t), desc: fmt.Sprintf("t=%g", t)}
}

// Topology restricts destination sampling to a graph neighborhood
// (§7 extension). The zero value means the complete topology of §3.
type Topology struct {
	g graphs.Graph
	// Random-regular topologies are a factory, not a graph: the adjacency
	// needs the runner's n, so resolveGraph builds it from (d, seed) at
	// engine-construction time (deterministically — snapshots persist the
	// pair and rebuild the same graph on resume).
	rrD    int
	rrSeed uint64
}

// active reports whether the topology restricts sampling at all (i.e. is
// not the complete topology).
func (t Topology) active() bool { return t.g != nil || t.rrD > 0 }

// CompleteTopology is the paper's original setting (sample any bin).
func CompleteTopology() Topology { return Topology{} }

// RingTopology samples among the two ring neighbors.
func RingTopology() Topology { return Topology{g: graphs.Ring{}} }

// TorusTopology samples among the four torus neighbors; the runner's bin
// count must be side².
func TorusTopology(side int) Topology { return Topology{g: graphs.Torus2D{Side: side}} }

// HypercubeTopology samples among the hypercube neighbors; the runner's
// bin count must be 2^dim.
func HypercubeTopology(dim int) Topology { return Topology{g: graphs.Hypercube{Dim: dim}} }

// ExpanderTopology samples among the eight Margulis–Gabber–Galil expander
// neighbors; the runner's bin count must be a perfect square (the side
// adapts to √n). Constant spectral gap at any size — the catalogue's
// fast-mixing family.
func ExpanderTopology() Topology { return Topology{g: graphs.Expander{}} }

// RandomRegularTopology samples among the d neighbor slots of a random
// d-regular multigraph built deterministically from seed (the pairing
// model with switching repair; construction randomness is a dedicated
// stream, independent of the run's WithSeed stream). n·d must be even
// and 1 ≤ d < n. With d above sim.GraphSamplerThreshold the jump
// engine's auto mode switches to the rejection-within-blocks sampler —
// the dense regime this family exists to exercise.
func RandomRegularTopology(d int, seed uint64) Topology {
	return Topology{rrD: d, rrSeed: seed}
}

// EngineMode selects how a run is simulated.
type EngineMode int

const (
	// DirectEngine simulates every ball activation: an Exp(m) gap, a
	// uniform ball, a uniform destination, and the protocol's accept test.
	// Near balance almost every activation is a rejected null move, so a
	// run costs O(activations). This is the default and supports every
	// option (strict rule, topologies, speeds, samplers).
	DirectEngine EngineMode = iota
	// JumpEngine simulates only the embedded jump chain of productive
	// moves: activations advance geometrically, time by the matching
	// Gamma(k, m) gap, and the move is sampled exactly from the live move
	// weight (see internal/sim.NewJumpEngine). The balancing-time law is
	// identical to DirectEngine (experiments A4/A7/A8 KS-test it); cost
	// drops from O(activations) to O(moves·log Δ). Three rule/topology
	// variants compose: plain and strict tie rules on the complete
	// topology (the move weight shifts from C(v−1) to C(v−2) eligible
	// destinations), and the plain rule on any regular graph topology
	// (per-source admissible-slot counts, O(Δ²+Δ·log n) per move — built
	// for bounded degree). Strict+topology and bin speeds remain
	// DirectEngine-only; per-activation traces coarsen to per-move blocks.
	JumpEngine
	// ShardedEngine partitions the bins into WithShards contiguous ranges
	// simulated by concurrent goroutine workers, each with its own
	// configuration, sampler, and deterministic RNG stream; cross-shard
	// moves drain through bounded queues at epoch barriers and the global
	// stop conditions read a per-barrier reconciliation of the shard
	// histograms (see internal/sim.NewSharded). It targets the dense
	// regime (m ≫ n, many productive moves) the other modes leave
	// single-threaded; experiment A5 KS-validates the balancing-time law
	// against DirectEngine. Plain RLS on the complete topology only; stop
	// conditions and traces coarsen to epoch granularity for P > 1, while
	// P = 1 reproduces the direct engine byte-for-byte.
	ShardedEngine
	// ShardedJumpEngine composes the two accelerations: WithShards
	// goroutine workers as in ShardedEngine, but each shard maintains a
	// level index over its bins — its local move weight plus an external
	// weight against the stale cross-shard snapshot — and skips its null
	// activations in geometric blocks as in JumpEngine, classifying each
	// eventful activation as a local move (applied immediately) or a
	// cross-shard proposal (queued for the barrier). Epochs adapt to the
	// folded global move weight, shrinking relative to the activation
	// scale as the move rate drops and flooring at per-move-batch epochs,
	// so one run covers the dense regime (parallel wins) and the end-game
	// (jump wins) without picking a mode per regime (see
	// internal/sim.NewShardedJump). Experiment A6 KS-validates the
	// balancing-time law against DirectEngine; P = 1 is byte-identical to
	// JumpEngine. Plain RLS on the complete topology only; granularity is
	// epoch barriers for P > 1, jump steps for P = 1, and time-targeted
	// runs stop exactly at the horizon (never past it).
	ShardedJumpEngine
)

// String returns "direct", "jump", "sharded", or "shardedjump".
func (m EngineMode) String() string {
	switch m {
	case JumpEngine:
		return "jump"
	case ShardedEngine:
		return "sharded"
	case ShardedJumpEngine:
		return "shardedjump"
	}
	return "direct"
}

// GraphSampler selects how the jump engine maintains the move weight on
// a graph topology. It never changes the balancing law — only which
// bookkeeping pays for it (see internal/sim's GraphSamplerMode).
type GraphSampler int

const (
	// GraphSamplerAuto (the default) picks exact for degree ≤
	// sim.GraphSamplerThreshold(n) and rejection above — a pure function
	// of (Δ_G, n), so fixed-seed runs reproduce and snapshots resume onto
	// the same sampler.
	GraphSamplerAuto GraphSampler = iota
	// GraphSamplerExact forces the per-source admissible index: every
	// simulated event is a real move, O(Δ_G²+Δ_G·log n) per move.
	GraphSamplerExact
	// GraphSamplerRejection forces rejection-within-blocks against the
	// lazy bound Ŵ_G ≥ W_G: expected Ŵ_G/W_G events per move at
	// O(Δ_G·log n) each — the dense-degree trade.
	GraphSamplerRejection
)

// String returns "auto", "exact", or "rejection".
func (gs GraphSampler) String() string { return sim.GraphSamplerMode(gs).String() }

// simMode converts to the sim-layer enum (same numbering by definition).
func (gs GraphSampler) simMode() sim.GraphSamplerMode { return sim.GraphSamplerMode(gs) }

// Option configures a Runner.
type Option func(*Runner)

// WithSeed fixes the random seed (default 1).
func WithSeed(seed uint64) Option { return func(r *Runner) { r.seed = seed } }

// WithPlacement sets the initial configuration (default AllInOne).
func WithPlacement(p Placement) Option { return func(r *Runner) { r.placement = p } }

// WithTarget sets the stop condition (default UntilPerfect).
func WithTarget(t Target) Option { return func(r *Runner) { r.target = t } }

// WithStrictTieRule switches to the [12]/[11] variant that forbids
// neutral moves (move only if the destination is smaller by ≥ 2). The
// paper's §3 remark: same balancing-time law. Supported by DirectEngine
// and JumpEngine (not on a topology, not by the sharded modes).
func WithStrictTieRule() Option { return func(r *Runner) { r.strict = true } }

// WithTopology restricts destination sampling to a graph (§7).
// Supported by DirectEngine (any graph) and JumpEngine (regular graphs,
// plain tie rule); the sharded modes reject it.
func WithTopology(t Topology) Option { return func(r *Runner) { r.topology = t } }

// WithGraphSampler overrides the jump engine's graph sampler choice
// (default GraphSamplerAuto). It composes only with WithEngineMode(
// JumpEngine) plus a topology; every other mode rejects a non-auto
// value. The law is unchanged either way — the differential tests and
// the A8 gate hold both samplers to the direct engine's distribution.
func WithGraphSampler(gs GraphSampler) Option {
	return func(r *Runner) { r.graphSampler = gs }
}

// WithSpeeds gives bin i speed speeds[i] and switches to the §7
// speed-aware rule (move iff the experienced load ℓ/s strictly improves).
// The run then stops at a Nash state when the target is UntilPerfect.
func WithSpeeds(speeds []float64) Option {
	return func(r *Runner) { r.speeds = append([]float64(nil), speeds...) }
}

// WithFenwickEngine selects the O(n)-memory load-proportional sampler
// instead of the explicit ball table (identical law; better for m ≫ n).
func WithFenwickEngine() Option { return func(r *Runner) { r.fenwick = true } }

// WithEngineMode selects the execution mode (default DirectEngine). The
// JumpEngine is rejection-free: same law, O(moves) instead of
// O(activations); it covers the plain and strict tie rules on the
// complete topology and the plain rule on regular graph topologies.
func WithEngineMode(m EngineMode) Option { return func(r *Runner) { r.mode = m } }

// WithShards sets the sharded engines' worker count P (default
// sim.DefaultShards; clamped to the bin count); it composes with
// ShardedEngine and ShardedJumpEngine. The shard count is part of the
// random-stream layout, so fixed-seed runs reproduce only for the same P.
func WithShards(p int) Option { return func(r *Runner) { r.shards = p } }

// WithShardEpoch sets the sharded engines' epoch length in continuous
// time. Smaller epochs track the sequential process more closely —
// cross-shard moves and stop checks land at barriers — while larger ones
// amortize the barrier; the A5/A6 experiments run fine epochs, the dense
// benchmark coarse ones. The default (0 = auto) is a fixed
// activations-per-shard epoch for ShardedEngine and the adaptive policy
// for ShardedJumpEngine: epochs shrink with the folded global move
// weight as the run thins out, floored at per-move-batch epochs.
func WithShardEpoch(dt float64) Option { return func(r *Runner) { r.shardEpoch = dt } }

// WithActivationBudget caps the number of activations (default 10^9).
func WithActivationBudget(k int64) Option { return func(r *Runner) { r.budget = k } }

// Runner executes RLS runs for one (n, m, options) setting.
type Runner struct {
	n, m         int
	seed         uint64
	placement    Placement
	target       Target
	strict       bool
	topology     Topology
	graphSampler GraphSampler
	speeds       []float64
	fenwick      bool
	mode         EngineMode
	shards       int
	shardEpoch   float64
	budget       int64
}

// New creates a Runner for n bins and m balls. It panics unless n ≥ 1 and
// m ≥ 1.
func New(n, m int, opts ...Option) *Runner {
	if n < 1 || m < 1 {
		panic("rls: need at least one bin and one ball")
	}
	r := &Runner{
		n:         n,
		m:         m,
		seed:      1,
		placement: AllInOne(),
		target:    UntilPerfect(),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Result reports a completed run.
type Result struct {
	// Time is the continuous time at which the target was reached.
	Time float64
	// Activations counts ball activations (clock rings); Moves counts
	// successful relocations.
	Activations, Moves int64
	// Reached reports whether the target was met within the budget.
	Reached bool
	// Final is the final load vector.
	Final []int
	// Disc is the final discrepancy max_i |ℓ_i − m/n|.
	Disc float64
	// Phases records when the run crossed the paper's phase boundaries
	// (§6); negative entries were never crossed.
	Phases PhaseTimes
}

// PhaseTimes mirrors the §6 analysis boundaries; see core.PhaseTimes.
type PhaseTimes struct {
	// LogBalanced is the first time disc ≤ 96 ln n (Phase 1 target).
	LogBalanced float64
	// OneBalanced is the first time disc ≤ 1 (Phase 2 target).
	OneBalanced float64
	// Perfect is the first time disc < 1 (Phase 3 target / Theorem 1 T).
	Perfect float64
}

// TracePoint is one sampled point of a trajectory.
type TracePoint struct {
	Time        float64
	Activations int64
	Disc        float64
	MinLoad     int
	MaxLoad     int
}

// resolveGraph concretizes a Topology against a bin count: the ring and
// expander adapt their vertex count to n (the expander needs square n),
// the torus and hypercube must match it exactly, and random-regular
// builds its adjacency from (d, seed). Both the direct mover and the
// graph jump engine resolve through here, so mismatches produce the same
// errors in every mode.
func resolveGraph(t Topology, n int) (graphs.Graph, error) {
	if t.rrD > 0 {
		if t.rrD >= n {
			return nil, fmt.Errorf("rls: random-regular degree %d does not fit n=%d", t.rrD, n)
		}
		g, err := graphs.NewRandomRegularSeed(n, t.rrD, t.rrSeed)
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	g := t.g
	switch tt := g.(type) {
	case graphs.Ring:
		g = graphs.Ring{Vertices: n} // the ring adapts to the runner's n
	case graphs.Torus2D:
		if tt.Side*tt.Side != n {
			return nil, fmt.Errorf("rls: torus side %d does not match n=%d", tt.Side, n)
		}
	case graphs.Hypercube:
		if 1<<tt.Dim != n {
			return nil, fmt.Errorf("rls: hypercube dim %d does not match n=%d", tt.Dim, n)
		}
	case graphs.Expander:
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("rls: the expander needs a square bin count, n=%d is not", n)
		}
		g = graphs.Expander{Side: side} // the expander adapts to the runner's n
	}
	return g, nil
}

// mover picks the decision rule implied by the options.
func (r *Runner) mover() (sim.Mover, error) {
	if r.speeds != nil {
		if len(r.speeds) != r.n {
			return nil, fmt.Errorf("rls: %d speeds for %d bins", len(r.speeds), r.n)
		}
		if r.topology.active() {
			return nil, fmt.Errorf("rls: speeds and topology cannot be combined yet")
		}
		return hetero.NewSpeedRLS(r.speeds)
	}
	if r.topology.active() {
		if r.strict {
			return nil, fmt.Errorf("rls: strict tie rule on a topology is not supported")
		}
		g, err := resolveGraph(r.topology, r.n)
		if err != nil {
			return nil, err
		}
		return graphs.GraphRLS{G: g}, nil
	}
	if r.strict {
		return core.StrictRLS{}, nil
	}
	return core.RLS{}, nil
}

// shardedEngine builds the sharded or sharded-jump engine, rejecting the
// options neither supports (the sharded modes remain plain-rule,
// complete-topology only; see the EngineMode docs).
func (r *Runner) shardedEngine() (*sim.Sharded, error) {
	if r.strict || r.topology.active() || r.speeds != nil {
		return nil, fmt.Errorf("rls: the %s engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two", r.mode)
	}
	if r.graphSampler != GraphSamplerAuto {
		return nil, fmt.Errorf("rls: WithGraphSampler needs the jump engine on a graph topology")
	}
	if r.fenwick {
		return nil, fmt.Errorf("rls: the %s engine owns per-shard ball lists; drop WithFenwickEngine", r.mode)
	}
	if r.shards < 0 {
		return nil, fmt.Errorf("rls: %d shards", r.shards)
	}
	if r.shardEpoch < 0 {
		return nil, fmt.Errorf("rls: negative shard epoch %g", r.shardEpoch)
	}
	stream := rng.New(r.seed)
	v := r.placement.gen.Generate(r.n, r.m, stream)
	if r.mode == ShardedJumpEngine {
		e := sim.NewShardedJump(v, r.shards, r.shardEpoch, stream)
		if r.target.kind == targetTime {
			e.SetHorizon(r.target.arg)
		}
		return e, nil
	}
	return sim.NewSharded(v, r.shards, r.shardEpoch, stream), nil
}

// shardedStop reconstructs the configured Target over the sharded
// engine's folded global view, dispatching on the target kind.
func (r *Runner) shardedStop() sim.ShardedStop {
	switch r.target.kind {
	case targetBalanced:
		return sim.ShardedUntilBalanced(r.target.arg)
	case targetTime:
		return sim.ShardedUntilTime(r.target.arg)
	default:
		return sim.ShardedUntilPerfect()
	}
}

// attachShardedPhases hooks phase-crossing tracking into the sharded
// engine's PostCheck: with P > 1 crossings are observed at epoch
// barriers (the mode's granularity), with P = 1 at every activation —
// matching the direct engine's move-exact times.
func (r *Runner) attachShardedPhases(e *sim.Sharded) *PhaseTimes {
	ph := &PhaseTimes{LogBalanced: -1, OneBalanced: -1, Perfect: -1}
	logTarget := core.LogBalancedTarget(r.n)
	observe := func(s *sim.Sharded) {
		disc := s.Disc()
		now := s.Time()
		if ph.LogBalanced < 0 && disc <= logTarget {
			ph.LogBalanced = now
		}
		if ph.OneBalanced < 0 && disc <= 1 {
			ph.OneBalanced = now
		}
		if ph.Perfect < 0 && s.IsPerfect() {
			ph.Perfect = now
		}
	}
	e.PostCheck = observe
	observe(e) // the initial configuration may already satisfy targets
	return ph
}

func (r *Runner) shardedResult(res sim.Result, ph *PhaseTimes) Result {
	return Result{
		Time:        res.Time,
		Activations: res.Activations,
		Moves:       res.Moves,
		Reached:     res.Stopped,
		Final:       res.Final,
		Disc:        res.Final.Disc(),
		Phases:      *ph,
	}
}

// engine builds the configured engine and tracker.
func (r *Runner) engine() (*sim.Engine, *core.PhaseTracker, error) {
	if r.mode == JumpEngine {
		if r.speeds != nil {
			return nil, nil, fmt.Errorf("rls: the jump engine does not support bin speeds; use DirectEngine")
		}
		if r.fenwick {
			return nil, nil, fmt.Errorf("rls: the jump engine has no activation sampler; drop WithFenwickEngine")
		}
		if r.strict && r.topology.active() {
			return nil, nil, fmt.Errorf("rls: strict tie rule on a topology is not supported")
		}
		if r.graphSampler != GraphSamplerAuto && !r.topology.active() {
			return nil, nil, fmt.Errorf("rls: WithGraphSampler needs the jump engine on a graph topology")
		}
		stream := rng.New(r.seed)
		v := r.placement.gen.Generate(r.n, r.m, stream)
		var e *sim.Engine
		switch {
		case r.topology.active():
			g, err := resolveGraph(r.topology, r.n)
			if err != nil {
				return nil, nil, err
			}
			if _, ok := graphs.RegularDegree(g); !ok {
				return nil, nil, fmt.Errorf("rls: the jump engine needs a regular topology, %s is not", g.Name())
			}
			e = sim.NewGraphJumpEngineMode(v, g, r.graphSampler.simMode(), stream)
		case r.strict:
			e = sim.NewStrictJumpEngine(v, stream)
		default:
			e = sim.NewJumpEngine(v, stream)
		}
		if r.target.kind == targetTime {
			// Clamp the final geometric block at the horizon so time-targeted
			// jump runs stop at exactly the target instead of overshooting by
			// up to a whole block. All three jump variants condition the clamp
			// on their exact accepted-event rate.
			e.SetHorizon(r.target.arg)
		}
		return e, core.NewPhaseTracker(e), nil
	}
	if r.graphSampler != GraphSamplerAuto {
		return nil, nil, fmt.Errorf("rls: WithGraphSampler needs the jump engine on a graph topology")
	}
	mover, err := r.mover()
	if err != nil {
		return nil, nil, err
	}
	stream := rng.New(r.seed)
	v := r.placement.gen.Generate(r.n, r.m, stream)
	var sampler sim.ActivationSampler
	if r.fenwick {
		sampler = sim.NewFenwick()
	}
	e := sim.NewEngine(v, mover, sampler, stream)
	tr := core.NewPhaseTracker(e)
	return e, tr, nil
}

// stop returns the effective stop condition, adapting UntilPerfect to the
// Nash condition when speeds are configured.
func (r *Runner) stop() func(e *sim.Engine) bool {
	if r.speeds != nil && r.target.kind == targetPerfect {
		speeds := r.speeds
		return func(e *sim.Engine) bool {
			return hetero.IsSpeedNash(e.Cfg().Loads(), speeds)
		}
	}
	return r.target.stop
}

// Run executes one run and returns its Result. Configuration errors
// (mismatched topology or speeds) are returned, not panicked.
func (r *Runner) Run() (Result, error) {
	if r.mode == ShardedEngine || r.mode == ShardedJumpEngine {
		e, err := r.shardedEngine()
		if err != nil {
			return Result{}, err
		}
		ph := r.attachShardedPhases(e)
		return r.shardedResult(e.Run(r.shardedStop(), r.budget), ph), nil
	}
	e, tr, err := r.engine()
	if err != nil {
		return Result{}, err
	}
	res := e.Run(r.stop(), r.budget)
	return r.result(res, tr), nil
}

// RunTraced is Run plus a trajectory sampled every `every` activations
// (epoch-granular for the sharded engine with P > 1).
func (r *Runner) RunTraced(every int64) (Result, []TracePoint, error) {
	if r.mode == ShardedEngine || r.mode == ShardedJumpEngine {
		e, err := r.shardedEngine()
		if err != nil {
			return Result{}, nil, err
		}
		ph := r.attachShardedPhases(e)
		res, rawTrace := e.RunTraced(r.shardedStop(), r.budget, every)
		return r.shardedResult(res, ph), toTracePoints(rawTrace), nil
	}
	e, tr, err := r.engine()
	if err != nil {
		return Result{}, nil, err
	}
	res, rawTrace := e.RunTraced(r.stop(), r.budget, every)
	return r.result(res, tr), toTracePoints(rawTrace), nil
}

// toTracePoints converts an engine trace to the public representation.
func toTracePoints(raw []sim.TracePoint) []TracePoint {
	trace := make([]TracePoint, len(raw))
	for i, p := range raw {
		trace[i] = TracePoint{
			Time:        p.Time,
			Activations: p.Activations,
			Disc:        p.Disc,
			MinLoad:     p.MinLoad,
			MaxLoad:     p.MaxLoad,
		}
	}
	return trace
}

func (r *Runner) result(res sim.Result, tr *core.PhaseTracker) Result {
	return Result{
		Time:        res.Time,
		Activations: res.Activations,
		Moves:       res.Moves,
		Reached:     res.Stopped,
		Final:       res.Final,
		Disc:        res.Final.Disc(),
		Phases: PhaseTimes{
			LogBalanced: tr.Times.LogBalanced,
			OneBalanced: tr.Times.OneBalanced,
			Perfect:     tr.Times.Perfect,
		},
	}
}

// Disc returns the discrepancy max_i |ℓ_i − m/n| of a load vector.
func Disc(loads []int) float64 { return loadvec.Vector(loads).Disc() }

// IsPerfect reports perfect balance (disc < 1).
func IsPerfect(loads []int) bool { return loadvec.Vector(loads).IsPerfect() }

// ExpectedBalanceTime returns the Theorem 1 quantity ln(n) + n²/m, which
// is Θ(E[T]) for RLS from any initial configuration.
func ExpectedBalanceTime(n, m int) float64 { return core.Theorem1Expectation(n, m) }

// WHPBalanceTime returns ln(n)·(1 + n²/m), the Theorem 1 w.h.p. bound
// shape.
func WHPBalanceTime(n, m int) float64 { return core.Theorem1WHP(n, m) }

// HarmonicLowerBound returns H_m − H_⌊m/n⌋, the §4 lower bound on E[T]
// from the single-bin start.
func HarmonicLowerBound(n, m int) float64 { return core.LowerBoundAllInOne(n, m) }

// PairLowerBound returns n/(∅+1), the exact expected balancing time of
// the ±1 lower-bound instance.
func PairLowerBound(n, m int) float64 { return core.LowerBoundDeltaPair(n, m) }

// MaxLatency returns the maximum load (the KP-model social cost of the
// configuration under unit weights).
func MaxLatency(loads []int) int {
	_, max := loadvec.Vector(loads).MinMax()
	return max
}

// NashGap returns how far a configuration is from a pure Nash equilibrium
// of the unit-weight KP-game: the number of bin pairs' worth of
// improving moves, measured as max(0, max ℓ − min ℓ − 1) (0 iff no ball
// can strictly improve, i.e. the configuration is perfectly balanced or
// off by neutral moves only).
func NashGap(loads []int) int {
	min, max := loadvec.Vector(loads).MinMax()
	gap := max - min - 1
	if gap < 0 {
		return 0
	}
	return gap
}

package rls

// golden_test.go pins the direct engine's fixed-seed outputs byte-for-byte.
// The jump-engine refactor must not perturb the direct path: neither the
// order nor the number of RNG draws, nor any statistic of the run. The
// expected values below were generated at the pre-refactor tree and must
// never be regenerated casually — a mismatch means the direct engine's
// behaviour changed.

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// goldenHash condenses a load vector into a stable 64-bit fingerprint.
func goldenHash(loads []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range loads {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// goldenTime renders a float64 exactly (IEEE bits in hex) so comparisons
// are byte-identical, not approximate.
func goldenTime(t float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(t))
}

func TestGoldenDirectRuns(t *testing.T) {
	cases := []struct {
		name    string
		run     func() (Result, error)
		time    string
		acts    int64
		moves   int64
		loadSum uint64
	}{
		{
			name: "ball-list/n=32,m=256,seed=42",
			run: func() (Result, error) {
				return New(32, 256, WithSeed(42)).Run()
			},
			time:    "4021f9e4f9c8857d",
			acts:    2297,
			moves:   602,
			loadSum: 0x79c21ec9e9d0c725,
		},
		{
			name: "fenwick/n=64,m=64,seed=7",
			run: func() (Result, error) {
				return New(64, 64, WithSeed(7), WithFenwickEngine()).Run()
			},
			time:    "403139c351c247a1",
			acts:    1103,
			moves:   270,
			loadSum: 0x4ba8ea86dae40725,
		},
		{
			name: "strict/n=16,m=512,seed=3",
			run: func() (Result, error) {
				return New(16, 512, WithSeed(3), WithStrictTieRule()).Run()
			},
			time:    "40109ac468d8b5c7",
			acts:    2185,
			moves:   591,
			loadSum: 0x03fe746a4dfccb25,
		},
		{
			name: "random-placement/n=128,m=1024,seed=11",
			run: func() (Result, error) {
				return New(128, 1024, WithSeed(11), WithPlacement(Random())).Run()
			},
			time:    "403a106b57bfbd53",
			acts:    26794,
			moves:   1122,
			loadSum: 0xc09bdb5e923cb325,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Fatal("did not reach target")
			}
			if got := goldenTime(res.Time); got != c.time {
				t.Errorf("time bits = %s, want %s (t=%v)", got, c.time, res.Time)
			}
			if res.Activations != c.acts {
				t.Errorf("activations = %d, want %d", res.Activations, c.acts)
			}
			if res.Moves != c.moves {
				t.Errorf("moves = %d, want %d", res.Moves, c.moves)
			}
			if got := goldenHash(res.Final); got != c.loadSum {
				t.Errorf("final loads hash = %#x, want %#x", got, c.loadSum)
			}
		})
	}
}

// TestGoldenJumpVariants pins the strict-jump and graph-jump engines'
// fixed-seed outputs. These guard the PR 6 machinery — the tie-gap level
// index and the per-source admissible structure — the same way the direct
// goldens guard the activation path: a mismatch means the variant's draw
// order or weight bookkeeping changed.
func TestGoldenJumpVariants(t *testing.T) {
	cases := []struct {
		name    string
		run     func() (Result, error)
		time    string
		acts    int64
		moves   int64
		loadSum uint64
	}{
		{
			name: "strict-jump/n=32,m=256,seed=42",
			run: func() (Result, error) {
				return New(32, 256, WithSeed(42), WithEngineMode(JumpEngine), WithStrictTieRule()).Run()
			},
			time:    "4015e9b7bd5e9fda",
			acts:    1386,
			moves:   320,
			loadSum: 0x79c21ec9e9d0c725,
		},
		{
			name: "ring-jump/n=32,m=64,seed=5",
			run: func() (Result, error) {
				return New(32, 64, WithSeed(5), WithEngineMode(JumpEngine), WithTopology(RingTopology())).Run()
			},
			time:    "40560fa688bf11ca",
			acts:    5656,
			moves:   1530,
			loadSum: 0x40789c74d104fb25,
		},
		{
			name: "torus-jump/n=16,m=64,seed=13",
			run: func() (Result, error) {
				return New(16, 64, WithSeed(13), WithEngineMode(JumpEngine), WithTopology(TorusTopology(4))).Run()
			},
			time:    "401d39e96da10165",
			acts:    428,
			moves:   168,
			loadSum: 0x0b0c357ea927a925,
		},
		{
			name: "hypercube-jump/n=32,m=128,seed=9",
			run: func() (Result, error) {
				return New(32, 128, WithSeed(9), WithEngineMode(JumpEngine), WithTopology(HypercubeTopology(5))).Run()
			},
			time:    "4030bb506d17982d",
			acts:    2124,
			moves:   522,
			loadSum: 0x072f1a1fb8392f25,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Fatal("did not reach target")
			}
			if got := goldenTime(res.Time); got != c.time {
				t.Errorf("time bits = %s, want %s (t=%v)", got, c.time, res.Time)
			}
			if res.Activations != c.acts {
				t.Errorf("activations = %d, want %d", res.Activations, c.acts)
			}
			if res.Moves != c.moves {
				t.Errorf("moves = %d, want %d", res.Moves, c.moves)
			}
			if got := goldenHash(res.Final); got != c.loadSum {
				t.Errorf("final loads hash = %#x, want %#x", got, c.loadSum)
			}
		})
	}
}

// TestGoldenSessionChurn pins a direct-mode session interleaving churn with
// protocol execution: the full AddBall/RemoveBall/RandomBin/Run pipeline.
func TestGoldenSessionChurn(t *testing.T) {
	s := NewSession(16, 99)
	for i := 0; i < 128; i++ {
		s.AddBallRandom()
	}
	if ok, err := s.RunUntilPerfect(1_000_000); err != nil || !ok {
		t.Fatalf("initial balance failed: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := s.AddBall(i % 16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveRandomBall(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(0.25); err != nil {
			t.Fatal(err)
		}
	}
	const (
		wantTime  = "402e33c43bc4414a"
		wantActs  = int64(1904)
		wantMoves = int64(429)
		wantHash  = uint64(0x0fbf28e4e8bb0185)
	)
	if got := goldenTime(s.Time()); got != wantTime {
		t.Errorf("time bits = %s, want %s (t=%v)", got, wantTime, s.Time())
	}
	if s.Activations() != wantActs {
		t.Errorf("activations = %d, want %d", s.Activations(), wantActs)
	}
	if s.Moves() != wantMoves {
		t.Errorf("moves = %d, want %d", s.Moves(), wantMoves)
	}
	if got := goldenHash(s.Loads()); got != wantHash {
		t.Errorf("loads hash = %#x, want %#x", got, wantHash)
	}
}

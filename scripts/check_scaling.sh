#!/usr/bin/env bash
# check_scaling.sh asserts a speedup floor on one cell of a scaling-study
# JSON file (rlsweep -scaling -scalingjson, or the Scaling* entries bench.sh
# merges into BENCH_PR*.json). CI uses it as the multi-core regression
# gate: on the 4-vCPU hosted runners, dense sharded-P4 must at least beat
# sharded-P1 — if that floor breaks, the parallel engine has stopped
# paying for its own barriers.
#
# Usage: scripts/check_scaling.sh <file.json> <entry-name> <min-speedup>
#   e.g. scripts/check_scaling.sh scaling.json ScalingDense/sharded/P4 1.0
set -euo pipefail
cd "$(dirname "$0")/.."

file=${1:?usage: check_scaling.sh <file.json> <entry-name> <min-speedup>}
name=${2:?missing entry name}
min=${3:?missing minimum speedup}

speedup=$(grep -o "\"name\": *\"$name\"[^}]*" "$file" |
  sed -n 's/.*"speedup": *\([0-9.eE+-]*\).*/\1/p' | head -n 1)
if [ -z "$speedup" ]; then
  echo "check_scaling.sh: no entry \"$name\" with a speedup field in $file" >&2
  exit 1
fi
if ! awk -v s="$speedup" -v m="$min" 'BEGIN { exit !(s + 0 > m + 0) }'; then
  echo "check_scaling.sh: $name speedup ${speedup}x <= required ${min}x in $file" >&2
  exit 1
fi
echo "$name speedup ${speedup}x > ${min}x"

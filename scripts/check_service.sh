#!/usr/bin/env bash
# check_service.sh gates the multi-tenant service load study (rlsweep
# -serviceload -sljson, or the ServiceLoad* entries bench.sh merges into
# BENCH_PR*.json). CI uses it as the serving regression gate: the daemon
# must sustain the offered load with ZERO dropped or errored events, and
# the event→apply p99 scraped from its own /metrics must stay under the
# ceiling — if either breaks, a tenant queue, the rate limiter, or the
# applier loop has regressed.
#
# Usage: scripts/check_service.sh <file.json> <max-p99-ms>
#   e.g. scripts/check_service.sh service.json 250
set -euo pipefail
cd "$(dirname "$0")/.."

file=${1:?usage: check_service.sh <file.json> <max-p99-ms>}
maxp99=${2:?missing max p99 in milliseconds}

field() { # field <entry-name> <key>
  grep -o "\"name\": *\"$1\"[^}]*" "$file" |
    sed -n "s/.*\"$2\": *\([0-9.eE+-]*\).*/\1/p" | head -n 1
}

errors=$(field "ServiceLoad/throughput" errors)
if [ -z "$errors" ]; then
  echo "check_service.sh: no ServiceLoad/throughput entry with an errors field in $file" >&2
  exit 1
fi
if [ "$errors" != 0 ]; then
  echo "check_service.sh: $errors dropped/errored events in $file (gate requires 0)" >&2
  exit 1
fi

p99ns=$(field "ServiceLoad/apply/p99" ns_per_op)
if [ -z "$p99ns" ]; then
  echo "check_service.sh: no ServiceLoad/apply/p99 entry in $file" >&2
  exit 1
fi
if ! awk -v ns="$p99ns" -v ms="$maxp99" 'BEGIN { exit !(ns / 1e6 < ms + 0) }'; then
  echo "check_service.sh: apply p99 $(awk -v ns="$p99ns" 'BEGIN { printf "%.2f", ns / 1e6 }')ms >= ceiling ${maxp99}ms in $file" >&2
  exit 1
fi
echo "serviceload: 0 dropped/errored events, apply p99 $(awk -v ns="$p99ns" 'BEGIN { printf "%.2f", ns / 1e6 }')ms < ${maxp99}ms"

#!/usr/bin/env bash
# check_graphdense.sh asserts the PR 10 hybrid-sampler floor on a bench
# JSON file (bench.sh output): on the dense random-regular end-game
# (BenchmarkGraphDense), the rejection-within-blocks jump engine must be
# at least <min-ratio> times faster than the direct engine by ns/op. If
# that floor breaks, the hybrid has stopped paying for its bookkeeping
# and dense graph runs would be better off on the per-activation path.
#
# Usage: scripts/check_graphdense.sh <file.json> [min-ratio]
#   e.g. scripts/check_graphdense.sh /tmp/bench-smoke.json 5.0
set -euo pipefail
cd "$(dirname "$0")/.."

file=${1:?usage: check_graphdense.sh <file.json> [min-ratio]}
min=${2:-5.0}

ns_of() {
  grep -o "\"name\": *\"$1\"[^}]*" "$file" |
    sed -n 's/.*"ns_per_op": *\([0-9.eE+-]*\).*/\1/p' | head -n 1
}

direct=$(ns_of 'BenchmarkGraphDense/random-16-regular/direct')
hybrid=$(ns_of 'BenchmarkGraphDense/random-16-regular/jump-hybrid')
if [ -z "$direct" ] || [ -z "$hybrid" ]; then
  echo "check_graphdense.sh: missing BenchmarkGraphDense direct/jump-hybrid entries in $file" >&2
  exit 1
fi
ratio=$(awk -v d="$direct" -v h="$hybrid" 'BEGIN { printf "%.2f", d / h }')
if ! awk -v d="$direct" -v h="$hybrid" -v m="$min" 'BEGIN { exit !(d / h >= m + 0) }'; then
  echo "check_graphdense.sh: hybrid/direct speedup ${ratio}x < required ${min}x in $file" >&2
  exit 1
fi
echo "dense graph end-game: hybrid is ${ratio}x faster than direct (>= ${min}x)"

#!/usr/bin/env bash
# compare_bench.sh diffs the latest two tracked BENCH_PR*.json files on
# their shared benchmark names and prints per-name ns/op deltas, so the
# perf trajectory across PRs is visible at a glance (wired into CI as a
# non-gating step: numbers from different machines are indicative, not a
# pass/fail signal — the JSON headers record the core counts).
#
# Usage: scripts/compare_bench.sh [old.json new.json]
#   (defaults to the two highest-numbered BENCH_PR*.json in the repo;
#    exits 0 with a note when fewer than two exist)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -eq 2 ]; then
  old=$1 new=$2
else
  # Order by PR number, numerically — a lexicographic `ls | sort` would
  # put BENCH_PR10.json before BENCH_PR2.json and diff the wrong pair.
  mapfile -t tracked < <(
    for f in BENCH_PR*.json; do
      [ -e "$f" ] || continue
      n=${f#BENCH_PR}
      n=${n%.json}
      case $n in *[!0-9]* | '') continue ;; esac
      printf '%s\t%s\n' "$n" "$f"
    done | sort -n | cut -f2
  )
  if [ "${#tracked[@]}" -lt 2 ]; then
    echo "compare_bench.sh: fewer than two BENCH_PR*.json files; nothing to compare"
    exit 0
  fi
  old=${tracked[-2]} new=${tracked[-1]}
fi

# Pull (name, ns_per_op) pairs out of one results file. The JSON is the
# flat one-object-per-line shape bench.sh emits, so grep/sed suffice.
pairs() {
  grep -o '"name": *"[^"]*"[^}]*' "$1" |
    sed -n 's/.*"name": *"\([^"]*\)".*"ns_per_op": *\([0-9.eE+-]*\).*/\1 \2/p' |
    sort
}

join <(pairs "$old") <(pairs "$new") | awk -v old="$old" -v new="$new" '
BEGIN {
  printf "%-60s %14s %14s %9s\n", "benchmark (" old " -> " new ")", "old ns/op", "new ns/op", "delta"
}
{
  delta = ($2 > 0) ? ($3 - $2) / $2 * 100 : 0
  printf "%-60s %14.0f %14.0f %+8.1f%%\n", $1, $2, $3, delta
  shared++
}
END {
  if (shared == 0) { print "no shared benchmark names" }
  else { printf "%d shared benchmarks (negative delta = faster)\n", shared }
}'

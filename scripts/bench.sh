#!/usr/bin/env bash
# bench.sh runs the perf-trajectory benchmark suite and writes the results
# as JSON so successive PRs can track the hot paths: whole-run balancing
# cost (BenchmarkBalanceToPerfection), the direct-vs-jump end-game
# comparisons — plain (BenchmarkEndGame), strict tie rule
# (BenchmarkStrictEndGame), ring/torus/hypercube/expander topologies
# (BenchmarkGraphEndGame), and the dense-degree graph sampler comparison
# direct vs jump-exact vs jump-hybrid (BenchmarkGraphDense, gated ≥ 5x by
# check_graphdense.sh) — live churn (BenchmarkSessionChurn), the
# direct-vs-sharded dense regime (BenchmarkShardedDense), the sharded-jump
# composition (BenchmarkShardedJumpEndGame,
# BenchmarkShardedJumpDenseToSparse), and the parallel epoch loop's
# allocation profile (BenchmarkShardedEpochSteadyState). Unless SCALING=0,
# the rlsweep -scaling study's speedup-vs-P cells are appended to the same
# file, and unless SERVICELOAD=0 so are the rlsweep -serviceload study's
# ServiceLoad* cells (event→apply p50/p99 and applied throughput of the
# multi-tenant rlsd service). The persistence layer rides along as
# BenchmarkSnapshot/BenchmarkRestore/BenchmarkTraceAppend — ns/op plus
# artifact compactness in bytes/ball. Shard ratios need as many hardware
# threads as shards — the JSON header records the core count and
# GOMAXPROCS.
#
# The default output name is derived from the tracked files: highest
# existing BENCH_PR<k>.json plus one, so recording a new PR's numbers is
# just `make bench` with no per-PR script edit.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh            # override go test -benchtime
#   SCALING=0 scripts/bench.sh               # skip the scaling study
#   SCALINGN=2048 SCALINGREPS=1 scripts/bench.sh   # shrink it (CI smoke)
#   SERVICELOAD=0 scripts/bench.sh           # skip the service load study
#   SLSESSIONS=16 SLDURATION=0.5 scripts/bench.sh  # shrink it (CI smoke)
set -euo pipefail
cd "$(dirname "$0")/.."

# Highest tracked PR number, compared numerically — `ls | sort | tail`
# would order BENCH_PR10.json before BENCH_PR2.json.
max_pr=0
for f in BENCH_PR*.json; do
  [ -e "$f" ] || continue
  n=${f#BENCH_PR}
  n=${n%.json}
  case $n in *[!0-9]* | '') continue ;; esac
  if [ "$n" -gt "$max_pr" ]; then max_pr=$n; fi
done
out=${1:-BENCH_PR$((max_pr + 1)).json}
benchtime=${BENCHTIME:-3x}
gomaxprocs=${GOMAXPROCS:-$(nproc)}
pattern='^(BenchmarkBalanceToPerfection|BenchmarkEndGame|BenchmarkStrictEndGame|BenchmarkGraphEndGame|BenchmarkGraphDense|BenchmarkSessionChurn|BenchmarkShardedDense|BenchmarkShardedJumpEndGame|BenchmarkShardedJumpDenseToSparse|BenchmarkShardedEpochSteadyState|BenchmarkSnapshot|BenchmarkRestore|BenchmarkTraceAppend)$'

raw=$(mktemp)
scaling_json=$(mktemp)
service_json=$(mktemp)
trap 'rm -f "$raw" "$scaling_json" "$service_json"' EXIT
# Fail fast and loud: a nonzero `go test -bench` (build error, panic,
# b.Fatal) must fail this script before any JSON is written, or CI would
# cat a truncated file as success.
if ! go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -timeout 30m ./... | tee "$raw"; then
  echo "bench.sh: go test -bench exited nonzero; not writing $out" >&2
  exit 1
fi
if ! grep -q '^Benchmark' "$raw"; then
  echo "bench.sh: no benchmark lines in output; not writing $out" >&2
  exit 1
fi

# The scaling study's cells ride in the same file (names Scaling*). The
# default sweep caps at P=4 so the recorded names stay identical across
# dev boxes and CI runners regardless of their core counts.
: > "$scaling_json"
if [ "${SCALING:-1}" != 0 ]; then
  go run ./cmd/rlsweep -scaling \
    ${SCALINGN:+-scalingn "$SCALINGN"} \
    ${SCALINGREPS:+-scalingreps "$SCALINGREPS"} \
    -scalingmaxp "${SCALINGMAXP:-4}" \
    -scalingjson "$scaling_json"
fi

# The service load study's cells ride along too (names ServiceLoad*); the
# default size is a smoke-scale run — CI's service job records the full
# 1000x50 study separately and gates it with check_service.sh.
: > "$service_json"
if [ "${SERVICELOAD:-1}" != 0 ]; then
  go run ./cmd/rlsweep -serviceload \
    ${SLSESSIONS:+-slsessions "$SLSESSIONS"} \
    ${SLRATE:+-slrate "$SLRATE"} \
    ${SLDURATION:+-slduration "$SLDURATION"} \
    ${SLBINS:+-slbins "$SLBINS"} \
    -sljson "$service_json"
fi

awk -v benchtime="$benchtime" -v cores="$(nproc)" -v gomaxprocs="$gomaxprocs" \
  -v scaling="$scaling_json" -v serviceload="$service_json" '
BEGIN {
  print "["
  printf "  {\"suite\": \"rls-perf\", \"benchtime\": \"%s\", \"cores\": %s, \"gomaxprocs\": %s}", benchtime, cores, gomaxprocs
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  printf ",\n  {\"name\": \"%s\", \"iters\": %s", name, $2
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/\//, "_per_", unit)
    gsub(/[^A-Za-z0-9_]/, "_", unit)
    printf ", \"%s\": %s", unit, $i
  }
  printf "}"
}
END {
  while ((getline line < scaling) > 0) {
    if (line ~ /"name"/) {
      sub(/,[ \t]*$/, "", line)
      sub(/^[ \t]+/, "", line)
      printf ",\n  %s", line
    }
  }
  while ((getline line < serviceload) > 0) {
    if (line ~ /"name"/) {
      sub(/,[ \t]*$/, "", line)
      sub(/^[ \t]+/, "", line)
      printf ",\n  %s", line
    }
  }
  print "\n]"
}
' "$raw" > "$out"

echo "wrote $out"

#!/usr/bin/env bash
# bench.sh runs the perf-trajectory benchmark suite and writes the results
# as JSON (default BENCH_PR2.json) so successive PRs can track the hot
# paths: whole-run balancing cost (BenchmarkBalanceToPerfection), the
# direct-vs-jump end-game comparison (BenchmarkEndGame), and live churn
# (BenchmarkSessionChurn).
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh   # override go test -benchtime
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_PR2.json}
benchtime=${BENCHTIME:-3x}
pattern='^(BenchmarkBalanceToPerfection|BenchmarkEndGame|BenchmarkSessionChurn)$'

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -timeout 30m . | tee "$raw"

awk -v benchtime="$benchtime" '
BEGIN {
  print "["
  printf "  {\"suite\": \"rls-perf\", \"benchtime\": \"%s\"}", benchtime
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  printf ",\n  {\"name\": \"%s\", \"iters\": %s", name, $2
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/\//, "_per_", unit)
    gsub(/[^A-Za-z0-9_]/, "_", unit)
    printf ", \"%s\": %s", unit, $i
  }
  printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"

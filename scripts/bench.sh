#!/usr/bin/env bash
# bench.sh runs the perf-trajectory benchmark suite and writes the results
# as JSON (default BENCH_PR6.json) so successive PRs can track the hot
# paths: whole-run balancing cost (BenchmarkBalanceToPerfection), the
# direct-vs-jump end-game comparisons — plain (BenchmarkEndGame), strict
# tie rule (BenchmarkStrictEndGame), and ring/torus/hypercube topologies
# (BenchmarkGraphEndGame) — live churn (BenchmarkSessionChurn), the
# direct-vs-sharded dense regime (BenchmarkShardedDense), and the
# sharded-jump composition — end-game scaffolding price
# (BenchmarkShardedJumpEndGame) and the adaptive-epoch dense→sparse run
# (BenchmarkShardedJumpDenseToSparse). Shard ratios need as many hardware
# threads as shards — the JSON header records the core count.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh   # override go test -benchtime
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_PR6.json}
benchtime=${BENCHTIME:-3x}
pattern='^(BenchmarkBalanceToPerfection|BenchmarkEndGame|BenchmarkStrictEndGame|BenchmarkGraphEndGame|BenchmarkSessionChurn|BenchmarkShardedDense|BenchmarkShardedJumpEndGame|BenchmarkShardedJumpDenseToSparse)$'

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# Fail fast and loud: a nonzero `go test -bench` (build error, panic,
# b.Fatal) must fail this script before any JSON is written, or CI would
# cat a truncated file as success.
if ! go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -timeout 30m . | tee "$raw"; then
  echo "bench.sh: go test -bench exited nonzero; not writing $out" >&2
  exit 1
fi
if ! grep -q '^Benchmark' "$raw"; then
  echo "bench.sh: no benchmark lines in output; not writing $out" >&2
  exit 1
fi

awk -v benchtime="$benchtime" -v cores="$(nproc)" '
BEGIN {
  print "["
  printf "  {\"suite\": \"rls-perf\", \"benchtime\": \"%s\", \"cores\": %s}", benchtime, cores
}
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  printf ",\n  {\"name\": \"%s\", \"iters\": %s", name, $2
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/\//, "_per_", unit)
    gsub(/[^A-Za-z0-9_]/, "_", unit)
    printf ", \"%s\": %s", unit, $i
  }
  printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"

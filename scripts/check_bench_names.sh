#!/usr/bin/env bash
# check_bench_names.sh guards the tracked perf trajectory: every benchmark
# name recorded in the newest tracked BENCH_PR*.json (scaling cells
# included) must still appear in the union of the given fresh smoke files.
# A benchmark that is deleted or renamed would otherwise silently fall out
# of the trajectory while CI stays green.
#
# Usage: scripts/check_bench_names.sh [-t tracked.json] <smoke.json>...
#   (tracked defaults to the highest-numbered BENCH_PR*.json, compared
#    numerically so BENCH_PR10.json outranks BENCH_PR2.json)
set -euo pipefail
cd "$(dirname "$0")/.."

tracked=""
while getopts t: opt; do
  case $opt in
    t) tracked=$OPTARG ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))
[ $# -ge 1 ] || {
  echo "usage: check_bench_names.sh [-t tracked.json] <smoke.json>..." >&2
  exit 2
}

if [ -z "$tracked" ]; then
  max_pr=-1
  for f in BENCH_PR*.json; do
    [ -e "$f" ] || continue
    n=${f#BENCH_PR}
    n=${n%.json}
    case $n in *[!0-9]* | '') continue ;; esac
    if [ "$n" -gt "$max_pr" ]; then
      max_pr=$n
      tracked=$f
    fi
  done
  [ -n "$tracked" ] || {
    echo "check_bench_names.sh: no tracked BENCH_PR*.json found" >&2
    exit 1
  }
fi

names() {
  grep -oh '"name": *"[^"]*"' "$@" | sed 's/.*: *"//; s/"$//' | sort -u
}

tracked_names=$(names "$tracked")
smoke_names=$(names "$@")
if [ -z "$tracked_names" ]; then
  echo "check_bench_names.sh: no benchmark names in $tracked" >&2
  exit 1
fi

missing=$(comm -23 <(printf '%s\n' "$tracked_names") <(printf '%s\n' "$smoke_names"))
if [ -n "$missing" ]; then
  echo "check_bench_names.sh: benchmarks tracked in $tracked missing from $*:" >&2
  printf '%s\n' "$missing" >&2
  exit 1
fi
echo "all $(printf '%s\n' "$tracked_names" | wc -l) tracked benchmark names present in $*"

#!/usr/bin/env bash
# check_bench_names.sh guards the tracked perf trajectory: every benchmark
# name recorded in the newest tracked BENCH_PR*.json must still appear in
# a fresh smoke run's JSON. A benchmark that is deleted or renamed would
# otherwise silently fall out of the trajectory while CI stays green.
#
# Usage: scripts/check_bench_names.sh <smoke.json> [tracked.json]
#   (tracked defaults to the highest-numbered BENCH_PR*.json in the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=${1:?usage: check_bench_names.sh <smoke.json> [tracked.json]}
tracked=${2:-$(ls BENCH_PR*.json | sort -V | tail -n 1)}

names() {
  grep -o '"name": *"[^"]*"' "$1" | sed 's/.*: *"//; s/"$//' | sort -u
}

tracked_names=$(names "$tracked")
smoke_names=$(names "$smoke")
if [ -z "$tracked_names" ]; then
  echo "check_bench_names.sh: no benchmark names in $tracked" >&2
  exit 1
fi

missing=$(comm -23 <(printf '%s\n' "$tracked_names") <(printf '%s\n' "$smoke_names"))
if [ -n "$missing" ]; then
  echo "check_bench_names.sh: benchmarks tracked in $tracked missing from $smoke:" >&2
  printf '%s\n' "$missing" >&2
  exit 1
fi
echo "all $(printf '%s\n' "$tracked_names" | wc -l) tracked benchmark names present in $smoke"

#!/usr/bin/env bash
# check_links.sh gates the documentation front door: every relative
# markdown link in the given files (default: the curated docs set) must
# point at a file or directory that exists in the repo. External links
# (http/https/mailto) and pure in-page anchors are skipped; a `path#anchor`
# link is checked for the path part only. A doc that drifts out of sync
# with a rename would otherwise rot silently while CI stays green.
#
# Usage: scripts/check_links.sh [file.md ...]
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md ROADMAP.md cmd/README.md cmd/rlsd/README.md internal/service/README.md internal/persist/README.md)
fi

fail=0
for f in "${files[@]}"; do
  if [ ! -f "$f" ]; then
    echo "check_links.sh: doc $f does not exist" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$f")
  # Inline markdown links: [text](target) or [text](target "title"),
  # with fenced code blocks filtered out first (a `](...)` inside one is
  # not a link). Reference-style definitions ([id]: target) are rare
  # here and external; inline covers our docs.
  while IFS= read -r target; do
    target=${target%% \"*} # strip an optional "title"
    target=${target%% \'*}
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "check_links.sh: $f links to missing $path" >&2
      fail=1
    fi
  done < <(awk '/^(```|~~~)/ { fence = !fence; next } !fence' "$f" \
    | grep -o '](\([^)]*\))' | sed 's/^](//; s/)$//' || true)
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "all relative links resolve in: ${files[*]}"

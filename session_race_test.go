package rls_test

import (
	"sync"
	"testing"

	rls "repro"
)

// TestSessionConcurrentCallers pins the Session concurrency contract
// (session.go, "Concurrency"): parallel goroutines interleaving churn
// (AddBall/RemoveBall/AddBallRandom/RemoveRandomBall), protocol runs
// (RunFor/RunUntilPerfect), and stats reads (Loads/Disc/M/Time/Moves/
// Stats) on one Session must be data-race free and keep the engine state
// consistent, in all four engine modes. Run under -race (the CI race job
// does) this is the gate that makes cmd/rlsd's one-applier-plus-many-
// readers tenant model sound.
func TestSessionConcurrentCallers(t *testing.T) {
	modes := []rls.EngineMode{
		rls.DirectEngine, rls.JumpEngine, rls.ShardedEngine, rls.ShardedJumpEngine,
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			const (
				bins  = 32
				iters = 60
			)
			s := rls.NewSession(bins, 11, rls.WithSessionEngineMode(mode))
			// Seed enough balls that removers rarely race the population to
			// zero; RemoveRandomBall reports (not panics) when they do.
			for i := 0; i < 8*bins; i++ {
				s.AddBallRandom()
			}

			var wg sync.WaitGroup
			start := make(chan struct{})
			spawn := func(f func()) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					f()
				}()
			}

			// Two churners: one targeted, one random, paired add+remove so the
			// population stays near its seed size.
			spawn(func() {
				for i := 0; i < iters; i++ {
					if err := s.AddBall(i % bins); err != nil {
						t.Error(err)
						return
					}
					if _, err := s.RemoveRandomBall(); err != nil {
						t.Error(err)
						return
					}
				}
			})
			spawn(func() {
				for i := 0; i < iters; i++ {
					bin := s.AddBallRandom()
					if err := s.RemoveBall(bin); err != nil {
						t.Error(err)
						return
					}
				}
			})
			// A runner advancing protocol time in short slices, plus one
			// whole-run call — both hold the lock for their full stretch.
			spawn(func() {
				for i := 0; i < iters/4; i++ {
					if err := s.RunFor(0.01); err != nil {
						t.Error(err)
						return
					}
				}
				if _, err := s.RunUntilPerfect(0); err != nil {
					t.Error(err)
				}
			})
			// Readers: single-counter methods and the atomic Stats snapshot.
			spawn(func() {
				for i := 0; i < iters; i++ {
					if got := len(s.Loads()); got != bins {
						t.Errorf("Loads len %d, want %d", got, bins)
						return
					}
					_ = s.Disc()
					_ = s.Time()
					_ = s.Activations()
					_ = s.Moves()
					if s.M() < 0 {
						t.Error("negative ball count")
						return
					}
				}
			})
			spawn(func() {
				for i := 0; i < iters; i++ {
					st := s.Stats()
					if st.Balls < 0 || st.Moves < 0 || st.Time < 0 {
						t.Errorf("inconsistent stats snapshot %+v", st)
						return
					}
				}
			})

			close(start)
			wg.Wait()

			// The interleavings above are add/remove-paired, so the final
			// population must equal the seeded one, and the load vector must
			// sum to it.
			if got, want := s.M(), 8*bins; got != want {
				t.Errorf("final M = %d, want %d", got, want)
			}
			sum := 0
			for _, l := range s.Loads() {
				sum += l
			}
			if sum != s.M() {
				t.Errorf("loads sum %d != M %d", sum, s.M())
			}
		})
	}
}

package rls

import (
	"math"
	"testing"
)

// TestShardedJumpSingleShardByteIdenticalToJump pins the P = 1 degenerate
// case of the sharded jump engine to the jump engine: same root RNG
// stream, same draw order (geometric blocks, Erlang gaps, move-pair
// samples), same per-step stop granularity, same horizon clamping — the
// fixed-seed output must match bit for bit across placements and target
// kinds.
func TestShardedJumpSingleShardByteIdenticalToJump(t *testing.T) {
	testEnginePairByteIdentical(t,
		[]Option{WithEngineMode(JumpEngine)},
		[]Option{WithEngineMode(ShardedJumpEngine), WithShards(1)})
}

// TestShardedJumpSingleShardTracedMatchesJump extends the byte-identity
// to traced runs: with P = 1 trace points land at the same activations.
func TestShardedJumpSingleShardTracedMatchesJump(t *testing.T) {
	jres, jtr, err := New(24, 192, WithSeed(13), WithEngineMode(JumpEngine)).RunTraced(40)
	if err != nil {
		t.Fatal(err)
	}
	sres, str, err := New(24, 192, WithSeed(13), WithEngineMode(ShardedJumpEngine), WithShards(1)).RunTraced(40)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "traced", jres, sres)
	if len(jtr) != len(str) {
		t.Fatalf("trace lengths %d != %d", len(jtr), len(str))
	}
	for i := range jtr {
		if jtr[i].Time != str[i].Time || jtr[i].Activations != str[i].Activations ||
			jtr[i].Disc != str[i].Disc || jtr[i].MinLoad != str[i].MinLoad ||
			jtr[i].MaxLoad != str[i].MaxLoad {
			t.Fatalf("trace point %d: %+v != %+v", i, jtr[i], str[i])
		}
	}
}

func TestShardedJumpRunnerBalances(t *testing.T) {
	res, err := New(64, 512, WithSeed(5), WithEngineMode(ShardedJumpEngine), WithShards(4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if res.Disc >= 1 {
		t.Fatalf("final disc = %g", res.Disc)
	}
	if res.Moves >= res.Activations {
		t.Fatalf("moves %d not below activations %d", res.Moves, res.Activations)
	}
	// Stop conditions fire at barriers, where the phase observer also
	// runs: the perfect crossing must coincide with the stop time.
	if res.Phases.Perfect != res.Time {
		t.Errorf("perfect phase time %g != stop time %g", res.Phases.Perfect, res.Time)
	}
}

func TestShardedJumpEngineModeString(t *testing.T) {
	if ShardedJumpEngine.String() != "shardedjump" {
		t.Fatalf("mode string: %q", ShardedJumpEngine)
	}
}

// TestJumpTimeTargetNeverOvershoots is the acceptance gate for the
// jump-mode time-target fix: across modes and seeds, WithTarget(UntilTime)
// runs must never report a final time past the horizon — they land on it
// exactly, where the direct engine documents a one-activation overshoot.
func TestJumpTimeTargetNeverOvershoots(t *testing.T) {
	const horizon = 2.75
	for _, mode := range []EngineMode{JumpEngine, ShardedJumpEngine} {
		for seed := uint64(1); seed <= 25; seed++ {
			res, err := New(32, 320, WithSeed(seed), WithEngineMode(mode),
				WithTarget(UntilTime(horizon))).Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Fatalf("%s seed %d: did not reach the horizon", mode, seed)
			}
			if res.Time > horizon {
				t.Fatalf("%s seed %d: time %v past the horizon %v", mode, seed, res.Time, horizon)
			}
			if res.Time != horizon {
				t.Errorf("%s seed %d: time %v, want exactly %v", mode, seed, res.Time, horizon)
			}
		}
	}
}

// TestJumpTimeTargetAgreesWithDirect is the public-API half of the
// regression test: at a fixed horizon the direct and jump runners must
// agree on mean activations and moves, while only the direct one may end
// past the horizon.
func TestJumpTimeTargetAgreesWithDirect(t *testing.T) {
	const horizon, reps = 2.0, 200
	var directActs, jumpActs float64
	for seed := uint64(1); seed <= reps; seed++ {
		dres, err := New(16, 64, WithSeed(seed), WithTarget(UntilTime(horizon))).Run()
		if err != nil {
			t.Fatal(err)
		}
		if dres.Time < horizon {
			t.Fatalf("direct seed %d stopped early at %v", seed, dres.Time)
		}
		directActs += float64(dres.Activations)
		jres, err := New(16, 64, WithSeed(seed+1000), WithEngineMode(JumpEngine),
			WithTarget(UntilTime(horizon))).Run()
		if err != nil {
			t.Fatal(err)
		}
		if jres.Time != horizon {
			t.Fatalf("jump seed %d: time %v, want exactly %v", seed, jres.Time, horizon)
		}
		jumpActs += float64(jres.Activations)
	}
	if ratio := jumpActs / directActs; math.Abs(ratio-1) > 0.10 {
		t.Errorf("activation ratio jump/direct = %g, want ≈ 1", ratio)
	}
}

// TestSessionShardedJumpMode drives the full churn surface in
// sharded-jump mode: joins and leaves hash into the owning shard's level
// index, and RunFor's horizon lands the session clock exactly.
func TestSessionShardedJumpMode(t *testing.T) {
	s := NewSession(16, 42, WithSessionEngineMode(ShardedJumpEngine), WithSessionShards(4))
	if s.Mode() != ShardedJumpEngine {
		t.Fatal("mode not recorded")
	}
	for i := 0; i < 160; i++ {
		s.AddBallRandom()
	}
	ok, err := s.RunUntilPerfect(10_000_000)
	if err != nil || !ok {
		t.Fatalf("balance failed: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AddBall(i % 16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveRandomBall(); err != nil {
			t.Fatal(err)
		}
		before := s.Time()
		if err := s.RunFor(0.5); err != nil {
			t.Fatal(err)
		}
		if got := s.Time(); got != before+0.5 {
			t.Fatalf("RunFor landed at %v, want exactly %v", got, before+0.5)
		}
	}
	if s.M() != 160 {
		t.Fatalf("m = %d after balanced churn", s.M())
	}
	if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
		t.Fatalf("rebalance failed: %v", err)
	}
	if s.Disc() >= 1 {
		t.Fatalf("disc = %g", s.Disc())
	}
}

// TestSessionShardedJumpSingleShardMatchesJump extends the P = 1
// byte-identity through the session surface: identical churn histories
// must leave identical engines.
func TestSessionShardedJumpSingleShardMatchesJump(t *testing.T) {
	drive := func(s *Session) {
		for i := 0; i < 96; i++ {
			s.AddBallRandom()
		}
		if ok, err := s.RunUntilPerfect(1_000_000); err != nil || !ok {
			t.Fatalf("balance failed: %v", err)
		}
		for i := 0; i < 30; i++ {
			if err := s.AddBall(i % 12); err != nil {
				t.Fatal(err)
			}
			if _, err := s.RemoveRandomBall(); err != nil {
				t.Fatal(err)
			}
			if err := s.RunFor(0.25); err != nil {
				t.Fatal(err)
			}
		}
	}
	j := NewSession(12, 77, WithSessionEngineMode(JumpEngine))
	drive(j)
	sh := NewSession(12, 77, WithSessionEngineMode(ShardedJumpEngine), WithSessionShards(1))
	drive(sh)
	if math.Float64bits(j.Time()) != math.Float64bits(sh.Time()) {
		t.Errorf("time %v != %v", j.Time(), sh.Time())
	}
	if j.Activations() != sh.Activations() || j.Moves() != sh.Moves() {
		t.Errorf("counters (%d,%d) != (%d,%d)", j.Activations(), j.Moves(), sh.Activations(), sh.Moves())
	}
	jl, sl := j.Loads(), sh.Loads()
	for i := range jl {
		if jl[i] != sl[i] {
			t.Fatalf("loads differ at bin %d", i)
		}
	}
}

package rls

import "testing"

func TestOpenSystemFacade(t *testing.T) {
	sys, err := NewOpenSystem(16, 0.6, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Observe(200, 2000)
	if st.MeanJobsPerServer <= 0 {
		t.Error("no jobs under load")
	}
	if st.MeanMaxQueue < st.MeanJobsPerServer {
		t.Error("max queue below per-server mean")
	}
	if st.FracPerfect < 0 || st.FracPerfect > 1 {
		t.Errorf("FracPerfect = %g", st.FracPerfect)
	}
	qs := sys.Queues()
	if len(qs) != 16 {
		t.Fatalf("queue vector has %d entries", len(qs))
	}
	sum := 0
	for _, q := range qs {
		if q < 0 {
			t.Fatal("negative queue")
		}
		sum += q
	}
	if sum != sys.Jobs() {
		t.Fatalf("queues sum %d != jobs %d", sum, sys.Jobs())
	}
}

func TestOpenSystemRejectsUnstable(t *testing.T) {
	if _, err := NewOpenSystem(16, 1.5, 1, 1, 5); err == nil {
		t.Fatal("unstable system accepted")
	}
}

func TestOpenSystemMigrationHelps(t *testing.T) {
	plain, err := NewOpenSystem(32, 0.8, 1, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	migr, err := NewOpenSystem(32, 0.8, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	stPlain := plain.Observe(1000, 8000)
	stMigr := migr.Observe(1000, 8000)
	if stMigr.MeanMaxQueue >= stPlain.MeanMaxQueue {
		t.Fatalf("migration did not reduce max queue: %g vs %g",
			stMigr.MeanMaxQueue, stPlain.MeanMaxQueue)
	}
}

func TestMM1Helpers(t *testing.T) {
	if MM1MeanJobs(0.5) != 1 {
		t.Error("MM1MeanJobs wrong")
	}
	if MM1MaxQueueScale(64, 0.5) != 6 {
		t.Error("MM1MaxQueueScale wrong")
	}
}

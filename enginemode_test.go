package rls

import (
	"testing"

	"repro/internal/stats"
)

func TestJumpRunnerBalances(t *testing.T) {
	res, err := New(64, 256, WithSeed(5), WithEngineMode(JumpEngine)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if res.Disc >= 1 {
		t.Fatalf("final disc = %g", res.Disc)
	}
	if res.Moves >= res.Activations {
		t.Fatalf("moves %d not below activations %d", res.Moves, res.Activations)
	}
	// Phase times are recorded at moves in both modes; the perfect-balance
	// crossing must equal the run's stop time.
	if res.Phases.Perfect != res.Time {
		t.Errorf("perfect phase time %g != stop time %g", res.Phases.Perfect, res.Time)
	}
}

// TestOptionValidationErrorMessages table-tests every rejection branch of
// the engine builders — one case per branch per restricted mode, pinned
// to the exact message so option plumbing can't silently reroute or
// reword an error.
func TestOptionValidationErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		r    *Runner
		want string
	}{
		// Strict ties and regular topologies are jump-legal since PR 6; what
		// remains rejected is speeds, strict-on-a-topology, irregular
		// graphs, and the sampler override.
		{"jump+strict+topology", New(16, 64, WithEngineMode(JumpEngine), WithStrictTieRule(), WithTopology(RingTopology())),
			"rls: strict tie rule on a topology is not supported"},
		{"jump+speeds", New(16, 64, WithEngineMode(JumpEngine), WithSpeeds(make([]float64, 16))),
			"rls: the jump engine does not support bin speeds; use DirectEngine"},
		{"jump+torus mismatch", New(16, 64, WithEngineMode(JumpEngine), WithTopology(TorusTopology(3))),
			"rls: torus side 3 does not match n=16"},
		{"jump+fenwick", New(16, 64, WithEngineMode(JumpEngine), WithFenwickEngine()),
			"rls: the jump engine has no activation sampler; drop WithFenwickEngine"},

		{"sharded+strict", New(16, 64, WithEngineMode(ShardedEngine), WithStrictTieRule()),
			"rls: the sharded engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two"},
		{"sharded+topology", New(16, 64, WithEngineMode(ShardedEngine), WithTopology(RingTopology())),
			"rls: the sharded engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two"},
		{"sharded+speeds", New(16, 64, WithEngineMode(ShardedEngine), WithSpeeds(make([]float64, 16))),
			"rls: the sharded engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two"},
		{"sharded+fenwick", New(16, 64, WithEngineMode(ShardedEngine), WithFenwickEngine()),
			"rls: the sharded engine owns per-shard ball lists; drop WithFenwickEngine"},
		{"sharded+negative shards", New(16, 64, WithEngineMode(ShardedEngine), WithShards(-2)),
			"rls: -2 shards"},
		{"sharded+negative epoch", New(16, 64, WithEngineMode(ShardedEngine), WithShardEpoch(-1)),
			"rls: negative shard epoch -1"},

		{"shardedjump+strict", New(16, 64, WithEngineMode(ShardedJumpEngine), WithStrictTieRule()),
			"rls: the shardedjump engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two"},
		{"shardedjump+topology", New(16, 64, WithEngineMode(ShardedJumpEngine), WithTopology(RingTopology())),
			"rls: the shardedjump engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two"},
		{"shardedjump+speeds", New(16, 64, WithEngineMode(ShardedJumpEngine), WithSpeeds(make([]float64, 16))),
			"rls: the shardedjump engine supports neither the strict tie rule, nor topologies, nor bin speeds; DirectEngine supports all three, JumpEngine the first two"},
		{"shardedjump+fenwick", New(16, 64, WithEngineMode(ShardedJumpEngine), WithFenwickEngine()),
			"rls: the shardedjump engine owns per-shard ball lists; drop WithFenwickEngine"},
		{"shardedjump+negative shards", New(16, 64, WithEngineMode(ShardedJumpEngine), WithShards(-2)),
			"rls: -2 shards"},
		{"shardedjump+negative epoch", New(16, 64, WithEngineMode(ShardedJumpEngine), WithShardEpoch(-1)),
			"rls: negative shard epoch -1"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := c.r.Run()
			if err == nil {
				t.Fatal("did not error")
			}
			if err.Error() != c.want {
				t.Errorf("error %q, want %q", err, c.want)
			}
			// RunTraced shares the builders and must reject identically.
			if _, _, terr := c.r.RunTraced(10); terr == nil || terr.Error() != c.want {
				t.Errorf("RunTraced error %v, want %q", terr, c.want)
			}
		})
	}
}

// TestJumpAcceptsStrictAndTopology pins the PR 6 legalization: the
// strict tie rule and regular graph topologies now run in jump mode
// (they used to be rejection branches in the table above) and balance.
func TestJumpAcceptsStrictAndTopology(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"strict", []Option{WithStrictTieRule()}},
		{"ring", []Option{WithTopology(RingTopology())}},
		{"torus", []Option{WithTopology(TorusTopology(4))}},
		{"hypercube", []Option{WithTopology(HypercubeTopology(4))}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opts := append([]Option{WithSeed(7), WithEngineMode(JumpEngine)}, c.opts...)
			res, err := New(16, 64, opts...).Run()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Fatal("did not balance")
			}
			if res.Disc >= 1 {
				t.Fatalf("final disc = %g", res.Disc)
			}
			if res.Moves >= res.Activations {
				t.Fatalf("moves %d not below activations %d", res.Moves, res.Activations)
			}
			// RunTraced shares the builders: same legality, and the trace
			// still closes on the run's final state.
			res2, trace, err := New(16, 64, opts...).RunTraced(50)
			if err != nil {
				t.Fatal(err)
			}
			if last := trace[len(trace)-1]; last.Activations != res2.Activations {
				t.Errorf("final trace point at %d activations, run ended at %d", last.Activations, res2.Activations)
			}
		})
	}
}

// TestSessionStrictAndTopologyModes drives churn through the new session
// options in both direct and jump modes.
func TestSessionStrictAndTopologyModes(t *testing.T) {
	for _, mode := range []EngineMode{DirectEngine, JumpEngine} {
		for _, c := range []struct {
			name string
			opts []SessionOption
		}{
			{"strict", []SessionOption{WithSessionStrictTieRule()}},
			{"ring", []SessionOption{WithSessionTopology(RingTopology())}},
			{"hypercube", []SessionOption{WithSessionTopology(HypercubeTopology(4))}},
		} {
			c := c
			t.Run(mode.String()+"/"+c.name, func(t *testing.T) {
				opts := append([]SessionOption{WithSessionEngineMode(mode)}, c.opts...)
				s := NewSession(16, 11, opts...)
				for i := 0; i < 96; i++ {
					s.AddBallRandom()
				}
				if ok, err := s.RunUntilPerfect(50_000_000); err != nil || !ok {
					t.Fatalf("balance failed: %v", err)
				}
				for i := 0; i < 24; i++ {
					if err := s.AddBall(i % 16); err != nil {
						t.Fatal(err)
					}
					if _, err := s.RemoveRandomBall(); err != nil {
						t.Fatal(err)
					}
					if err := s.RunFor(0.25); err != nil {
						t.Fatal(err)
					}
				}
				if ok, err := s.RunUntilPerfect(50_000_000); err != nil || !ok {
					t.Fatalf("rebalance failed: %v", err)
				}
				if s.Disc() >= 1 {
					t.Fatalf("disc = %g", s.Disc())
				}
			})
		}
	}
}

// TestSessionOptionPanics pins the session constructors' rejection style
// for the combinations that stay unsupported.
func TestSessionOptionPanics(t *testing.T) {
	expectPanic := func(name, want string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("did not panic")
				}
				if msg, ok := r.(string); !ok || msg != want {
					t.Fatalf("panic %v, want %q", r, want)
				}
			}()
			f()
		})
	}
	expectPanic("strict+topology", "rls: strict tie rule on a topology is not supported", func() {
		NewSession(16, 1, WithSessionStrictTieRule(), WithSessionTopology(RingTopology()))
	})
	expectPanic("sharded+strict", "rls: sharded sessions support only plain RLS on the complete topology", func() {
		NewSession(16, 1, WithSessionEngineMode(ShardedEngine), WithSessionStrictTieRule())
	})
	expectPanic("shardedjump+topology", "rls: sharded sessions support only plain RLS on the complete topology", func() {
		NewSession(16, 1, WithSessionEngineMode(ShardedJumpEngine), WithSessionTopology(RingTopology()))
	})
	expectPanic("jump+torus mismatch", "rls: torus side 3 does not match n=16", func() {
		NewSession(16, 1, WithSessionEngineMode(JumpEngine), WithSessionTopology(TorusTopology(3)))
	})
}

func TestJumpRunnerTraced(t *testing.T) {
	res, trace, err := New(16, 128, WithSeed(19), WithEngineMode(JumpEngine)).RunTraced(25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Activations <= trace[i-1].Activations {
			t.Fatal("trace activations not strictly increasing")
		}
		if trace[i].Time < trace[i-1].Time {
			t.Fatal("trace time not monotone")
		}
	}
	if last := trace[len(trace)-1]; last.Activations != res.Activations {
		t.Errorf("final trace point at %d activations, run ended at %d", last.Activations, res.Activations)
	}
}

func TestEngineModeString(t *testing.T) {
	if DirectEngine.String() != "direct" || JumpEngine.String() != "jump" {
		t.Fatalf("mode strings: %q, %q", DirectEngine, JumpEngine)
	}
}

// TestSessionJumpMode drives the full churn surface in jump mode.
func TestSessionJumpMode(t *testing.T) {
	s := NewSession(16, 42, WithSessionEngineMode(JumpEngine))
	if s.Mode() != JumpEngine {
		t.Fatal("mode not recorded")
	}
	for i := 0; i < 160; i++ {
		s.AddBallRandom()
	}
	ok, err := s.RunUntilPerfect(1_000_000)
	if err != nil || !ok {
		t.Fatalf("balance failed: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AddBall(i % 16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveRandomBall(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if s.M() != 160 {
		t.Fatalf("m = %d after balanced churn", s.M())
	}
	if ok, err := s.RunUntilPerfect(1_000_000); err != nil || !ok {
		t.Fatalf("rebalance failed: %v", err)
	}
	if s.Disc() >= 1 {
		t.Fatalf("disc = %g", s.Disc())
	}
}

// TestSessionModesAgreeInLaw compares the two modes' rebalance times
// after identical churn histories across many seeds.
func TestSessionModesAgreeInLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	run := func(mode EngineMode, seed uint64) float64 {
		s := NewSession(8, seed, WithSessionEngineMode(mode))
		for i := 0; i < 64; i++ {
			s.AddBallRandom()
		}
		if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
			t.Fatalf("balance failed: %v", err)
		}
		start := s.Time()
		for i := 0; i < 8; i++ {
			s.AddBall(0)
		}
		if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
			t.Fatalf("rebalance failed: %v", err)
		}
		return s.Time() - start
	}
	const reps = 300
	direct := make([]float64, reps)
	jump := make([]float64, reps)
	for i := 0; i < reps; i++ {
		direct[i] = run(DirectEngine, uint64(i)+1)
		jump[i] = run(JumpEngine, uint64(i)+100003)
	}
	if same, d := stats.SameDistribution(direct, jump, 0.001); !same {
		t.Errorf("rebalance-time KS D = %g rejects same law", d)
	}
}

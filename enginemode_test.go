package rls

import (
	"testing"

	"repro/internal/stats"
)

func TestJumpRunnerBalances(t *testing.T) {
	res, err := New(64, 256, WithSeed(5), WithEngineMode(JumpEngine)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if res.Disc >= 1 {
		t.Fatalf("final disc = %g", res.Disc)
	}
	if res.Moves >= res.Activations {
		t.Fatalf("moves %d not below activations %d", res.Moves, res.Activations)
	}
	// Phase times are recorded at moves in both modes; the perfect-balance
	// crossing must equal the run's stop time.
	if res.Phases.Perfect != res.Time {
		t.Errorf("perfect phase time %g != stop time %g", res.Phases.Perfect, res.Time)
	}
}

func TestJumpRunnerRejectsIncompatibleOptions(t *testing.T) {
	cases := map[string]*Runner{
		"strict":   New(16, 64, WithEngineMode(JumpEngine), WithStrictTieRule()),
		"topology": New(16, 64, WithEngineMode(JumpEngine), WithTopology(RingTopology())),
		"speeds":   New(16, 64, WithEngineMode(JumpEngine), WithSpeeds(make([]float64, 16))),
		"fenwick":  New(16, 64, WithEngineMode(JumpEngine), WithFenwickEngine()),
	}
	for name, r := range cases {
		if _, err := r.Run(); err == nil {
			t.Errorf("%s + jump engine did not error", name)
		}
	}
}

func TestJumpRunnerTraced(t *testing.T) {
	res, trace, err := New(16, 128, WithSeed(19), WithEngineMode(JumpEngine)).RunTraced(25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Activations <= trace[i-1].Activations {
			t.Fatal("trace activations not strictly increasing")
		}
		if trace[i].Time < trace[i-1].Time {
			t.Fatal("trace time not monotone")
		}
	}
	if last := trace[len(trace)-1]; last.Activations != res.Activations {
		t.Errorf("final trace point at %d activations, run ended at %d", last.Activations, res.Activations)
	}
}

func TestEngineModeString(t *testing.T) {
	if DirectEngine.String() != "direct" || JumpEngine.String() != "jump" {
		t.Fatalf("mode strings: %q, %q", DirectEngine, JumpEngine)
	}
}

// TestSessionJumpMode drives the full churn surface in jump mode.
func TestSessionJumpMode(t *testing.T) {
	s := NewSession(16, 42, WithSessionEngineMode(JumpEngine))
	if s.Mode() != JumpEngine {
		t.Fatal("mode not recorded")
	}
	for i := 0; i < 160; i++ {
		s.AddBallRandom()
	}
	ok, err := s.RunUntilPerfect(1_000_000)
	if err != nil || !ok {
		t.Fatalf("balance failed: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AddBall(i % 16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveRandomBall(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if s.M() != 160 {
		t.Fatalf("m = %d after balanced churn", s.M())
	}
	if ok, err := s.RunUntilPerfect(1_000_000); err != nil || !ok {
		t.Fatalf("rebalance failed: %v", err)
	}
	if s.Disc() >= 1 {
		t.Fatalf("disc = %g", s.Disc())
	}
}

// TestSessionModesAgreeInLaw compares the two modes' rebalance times
// after identical churn histories across many seeds.
func TestSessionModesAgreeInLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	run := func(mode EngineMode, seed uint64) float64 {
		s := NewSession(8, seed, WithSessionEngineMode(mode))
		for i := 0; i < 64; i++ {
			s.AddBallRandom()
		}
		if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
			t.Fatalf("balance failed: %v", err)
		}
		start := s.Time()
		for i := 0; i < 8; i++ {
			s.AddBall(0)
		}
		if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
			t.Fatalf("rebalance failed: %v", err)
		}
		return s.Time() - start
	}
	const reps = 300
	direct := make([]float64, reps)
	jump := make([]float64, reps)
	for i := 0; i < reps; i++ {
		direct[i] = run(DirectEngine, uint64(i)+1)
		jump[i] = run(JumpEngine, uint64(i)+100003)
	}
	if same, d := stats.SameDistribution(direct, jump, 0.001); !same {
		t.Errorf("rebalance-time KS D = %g rejects same law", d)
	}
}

package rls

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Ball conservation and non-negativity must survive arbitrary interleaved
// churn and execution sequences.
func TestSessionChurnConservationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(12)
		s := NewSession(n, seed)
		expected := 0
		for op := 0; op < 60; op++ {
			switch r.Intn(4) {
			case 0: // join at random bin
				s.AddBallRandom()
				expected++
			case 1: // join at fixed hotspot
				if err := s.AddBall(0); err != nil {
					return false
				}
				expected++
			case 2: // leave, when possible
				if expected > 0 {
					if _, err := s.RemoveRandomBall(); err != nil {
						return false
					}
					expected--
				}
			case 3: // run a stretch of protocol time
				if expected > 0 {
					if err := s.RunFor(0.2); err != nil {
						return false
					}
				}
			}
			if s.M() != expected {
				t.Logf("seed %d: M=%d expected=%d", seed, s.M(), expected)
				return false
			}
			for _, l := range s.Loads() {
				if l < 0 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// After any churn history, a sufficiently long run restores perfect
// balance — RLS's self-stabilization from arbitrary configurations.
func TestSessionAlwaysRebalancesProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		s := NewSession(n, seed)
		m := n + r.Intn(5*n)
		for i := 0; i < m; i++ {
			s.AddBall(r.Intn(n))
		}
		ok, err := s.RunUntilPerfect(20_000_000)
		if err != nil || !ok {
			return false
		}
		return s.Disc() < 1
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// The facade's Run must agree with the underlying invariants: final load
// vectors have m balls, non-negative loads, and disc consistent with the
// reported value.
func TestRunResultConsistencyProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(16)
		m := 1 + r.Intn(128)
		res, err := New(n, m, WithSeed(seed), WithPlacement(Random())).Run()
		if err != nil {
			return false
		}
		sum := 0
		for _, l := range res.Final {
			if l < 0 {
				return false
			}
			sum += l
		}
		if sum != m {
			return false
		}
		return res.Disc == Disc(res.Final) && res.Reached == IsPerfect(res.Final)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

package rls

// bench_test.go exposes every experiment registered in internal/harness
// as a testing.B benchmark: `go test -bench=ExpT1` regenerates Theorem 1's
// sweep, `-bench=Exp` regenerates everything. Each iteration runs the
// full Quick-scale experiment; set RLS_BENCH_PRINT=1 to print the
// resulting tables to stderr (cmd/rlsweep prints them with more control).
//
// Micro-benchmarks for the protocol itself (per-activation cost across
// regimes) follow at the bottom.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// benchExperiment runs one registered experiment per b iteration and
// reports the row count so regressions in sweep coverage are visible.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		tb := e.Run(harness.RunConfig{Seed: uint64(i) + 1, Scale: harness.Quick})
		rows = len(tb.Rows)
		if i == 0 && os.Getenv("RLS_BENCH_PRINT") != "" {
			tb.Render(os.Stderr)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkExpF1(b *testing.B)   { benchExperiment(b, "F1") }
func BenchmarkExpF2(b *testing.B)   { benchExperiment(b, "F2") }
func BenchmarkExpF3(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkExpT1(b *testing.B)   { benchExperiment(b, "T1") }
func BenchmarkExpT2(b *testing.B)   { benchExperiment(b, "T2") }
func BenchmarkExpLB1(b *testing.B)  { benchExperiment(b, "LB1") }
func BenchmarkExpLB2(b *testing.B)  { benchExperiment(b, "LB2") }
func BenchmarkExpDML(b *testing.B)  { benchExperiment(b, "DML") }
func BenchmarkExpP1(b *testing.B)   { benchExperiment(b, "P1") }
func BenchmarkExpP2(b *testing.B)   { benchExperiment(b, "P2") }
func BenchmarkExpP3(b *testing.B)   { benchExperiment(b, "P3") }
func BenchmarkExpL8(b *testing.B)   { benchExperiment(b, "L8") }
func BenchmarkExpL9(b *testing.B)   { benchExperiment(b, "L9") }
func BenchmarkExpL16(b *testing.B)  { benchExperiment(b, "L16") }
func BenchmarkExpCMP1(b *testing.B) { benchExperiment(b, "CMP1") }
func BenchmarkExpCMP2(b *testing.B) { benchExperiment(b, "CMP2") }
func BenchmarkExpCMP3(b *testing.B) { benchExperiment(b, "CMP3") }
func BenchmarkExpX1(b *testing.B)   { benchExperiment(b, "X1") }
func BenchmarkExpX2(b *testing.B)   { benchExperiment(b, "X2") }
func BenchmarkExpX3(b *testing.B)   { benchExperiment(b, "X3") }
func BenchmarkExpA1(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkExpA2(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkExpA3(b *testing.B)   { benchExperiment(b, "A3") }
func BenchmarkExpA4(b *testing.B)   { benchExperiment(b, "A4") }
func BenchmarkExpA5(b *testing.B)   { benchExperiment(b, "A5") }
func BenchmarkExpA6(b *testing.B)   { benchExperiment(b, "A6") }
func BenchmarkExpA7(b *testing.B)   { benchExperiment(b, "A7") }
func BenchmarkExpA8(b *testing.B)   { benchExperiment(b, "A8") }
func BenchmarkExpO1(b *testing.B)   { benchExperiment(b, "O1") }

// BenchmarkBalanceToPerfection measures whole-run cost of the public API
// across (n, m) regimes; the per-activation metric is the engine's
// throughput figure.
func BenchmarkBalanceToPerfection(b *testing.B) {
	cases := []struct {
		name string
		n, m int
	}{
		{"n=256,m=256", 256, 256},
		{"n=256,m=4096", 256, 4096},
		{"n=1024,m=1024", 1024, 1024},
		{"n=64,m=65536", 64, 65536},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var totalActs int64
			for i := 0; i < b.N; i++ {
				res, err := New(c.n, c.m, WithSeed(uint64(i)+1)).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reached {
					b.Fatal("did not balance")
				}
				totalActs += res.Activations
			}
			b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
		})
	}
}

// BenchmarkEndGame measures whole UntilPerfect runs at n = m from the
// all-in-one start — the regime the ISSUE's jump engine targets: the
// direct engine spends ~m·n/W activations per move near balance, the
// jump engine exactly one Step. The jump/direct wall-clock ratio is the
// headline speedup tracked in BENCH_PR2.json.
func BenchmarkEndGame(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		for _, mode := range []EngineMode{DirectEngine, JumpEngine} {
			b.Run(fmt.Sprintf("n=m=%d/%s", n, mode), func(b *testing.B) {
				var totalActs, totalMoves int64
				for i := 0; i < b.N; i++ {
					res, err := New(n, n, WithSeed(uint64(i)+1), WithEngineMode(mode)).Run()
					if err != nil {
						b.Fatal(err)
					}
					if !res.Reached {
						b.Fatal("did not balance")
					}
					totalActs += res.Activations
					totalMoves += res.Moves
				}
				b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
				b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
			})
		}
	}
}

// BenchmarkStrictEndGame is BenchmarkEndGame under the strict tie rule:
// n = m from the all-in-one start, run to perfection (W' = 0 ⟺ perfect),
// strict-direct vs strict-jump. The strict rule rejects neutral moves on
// top of uphill ones, so the direct engine wastes even more activations
// per move than plain RLS in the end-game; the jump engine simulates the
// same chain in O(moves) regardless. The jump/direct wall-clock ratio is
// a PR 6 headline number tracked in BENCH_PR6.json.
func BenchmarkStrictEndGame(b *testing.B) {
	const n = 4096
	for _, mode := range []EngineMode{DirectEngine, JumpEngine} {
		b.Run(fmt.Sprintf("n=m=%d/%s", n, mode), func(b *testing.B) {
			var totalActs, totalMoves int64
			for i := 0; i < b.N; i++ {
				res, err := New(n, n, WithSeed(uint64(i)+1), WithStrictTieRule(), WithEngineMode(mode)).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reached {
					b.Fatal("did not balance")
				}
				totalActs += res.Activations
				totalMoves += res.Moves
			}
			b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
			b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
		})
	}
}

// BenchmarkGraphEndGame measures the graph end-game at n = m = 4096 on
// ring, torus, and hypercube: a near-balanced start with one overloaded
// bin at 0 and one hole a graph distance away, run to perfection. The
// excess ball must diffuse to the hole along the graph; with k = 1 bins
// below average the direct engine burns ~Δ·n/W_G ≈ n activations per
// move while the jump engine pays O(Δ² + Δ·log n) — this is the regime
// where graph runs used to fall back to the direct engine and end-games
// dominated wall-clock. The jump/direct wall-clock ratio per topology is
// a PR 6 headline number tracked in BENCH_PR6.json.
func BenchmarkGraphEndGame(b *testing.B) {
	const n = 4096
	// One ball high at bin 0, one hole at a fixed graph distance: ring
	// distance 8 (E[moves] ≈ d·(n−d) by gambler's ruin — distance kept
	// short so the direct leg stays tractable), torus (8,8), hypercube
	// antipode (distance 12).
	topos := []struct {
		name string
		t    Topology
		hole int
	}{
		{"ring", RingTopology(), 8},
		{"torus", TorusTopology(64), 8*64 + 8},
		{"hypercube", HypercubeTopology(12), n - 1},
		// The MGG expander (Δ = 8, constant spectral gap): the hole sits at
		// the same grid point as the torus case, but the O(1) mixing time
		// makes the diffusion leg far shorter than the torus walk.
		{"expander", ExpanderTopology(), 8*64 + 8},
	}
	for _, tp := range topos {
		loads := make([]int, n)
		for i := range loads {
			loads[i] = 1
		}
		loads[0] = 2
		loads[tp.hole] = 0
		for _, mode := range []EngineMode{DirectEngine, JumpEngine} {
			b.Run(fmt.Sprintf("%s/%s", tp.name, mode), func(b *testing.B) {
				var totalActs, totalMoves int64
				for i := 0; i < b.N; i++ {
					res, err := New(n, n,
						WithSeed(uint64(i)+1),
						WithPlacement(FromLoads(loads)),
						WithTopology(tp.t),
						WithEngineMode(mode),
						WithActivationBudget(100_000_000_000),
					).Run()
					if err != nil {
						b.Fatal(err)
					}
					if !res.Reached {
						b.Fatal("did not balance")
					}
					totalActs += res.Activations
					totalMoves += res.Moves
				}
				b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
				b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
			})
		}
	}
}

// BenchmarkGraphDense measures the dense-degree graph end-game the
// hybrid sampler exists for: n = m = 4096 on a random 16-regular
// multigraph (degree above the auto threshold of 13), one excess ball
// diffusing to one hole. Per move the direct engine burns ~m·Δ/W_G
// activations, the exact index pays O(Δ² + Δ·log n) bookkeeping, and the
// rejection hybrid O(Δ·log n) with an O(1) expected retry factor once
// its lazy bounds tighten — so the ordering direct ≪ jump-exact <
// jump-hybrid is the PR 10 headline tracked in BENCH_PR10.json, and CI
// gates hybrid ≥ 5× direct via scripts/check_graphdense.sh.
func BenchmarkGraphDense(b *testing.B) {
	// 64 excess/hole pairs instead of one: the run length is a sum of ~64
	// annihilation walks, concentrated enough for a single-iteration CI
	// smoke to gate a wall-clock ratio on. The base load of 4 (m = 4n)
	// deepens the null-move desert the direct engine must cross —
	// activations per move scale with m·Δ/W_G — while the jump arms' cost
	// tracks moves and degree only.
	const n, d, k, base = 4096, 16, 64, 4
	topo := RandomRegularTopology(d, 7)
	loads := make([]int, n)
	for i := range loads {
		loads[i] = base
	}
	for i := 0; i < k; i++ {
		loads[i*(n/k)] = base + 1
		loads[i*(n/k)+n/(2*k)] = base - 1
	}
	arms := []struct {
		name string
		opts []Option
	}{
		{"direct", []Option{WithEngineMode(DirectEngine)}},
		{"jump-exact", []Option{WithEngineMode(JumpEngine), WithGraphSampler(GraphSamplerExact)}},
		{"jump-hybrid", []Option{WithEngineMode(JumpEngine), WithGraphSampler(GraphSamplerRejection)}},
	}
	for _, arm := range arms {
		b.Run(fmt.Sprintf("random-%d-regular/%s", d, arm.name), func(b *testing.B) {
			var totalActs, totalMoves int64
			for i := 0; i < b.N; i++ {
				res, err := New(n, base*n,
					append([]Option{
						WithSeed(uint64(i) + 1),
						WithPlacement(FromLoads(loads)),
						WithTopology(topo),
						WithActivationBudget(100_000_000_000),
					}, arm.opts...)...,
				).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reached {
					b.Fatal("did not balance")
				}
				totalActs += res.Activations
				totalMoves += res.Moves
			}
			b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
			b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
		})
	}
}

// BenchmarkShardedDense measures the dense regime (every bin busy, a
// large share of activations productive) the sharded engine targets:
// n = m = 1<<16 from a one-choice start over a fixed horizon of protocol
// time, direct vs sharded with P = 4 workers. The sharded/direct
// wall-clock ratio is the headline speedup tracked in BENCH_PR3.json —
// it needs ≥ P hardware threads to materialize (the JSON records
// GOMAXPROCS alongside the numbers). The coarse explicit epoch amortizes
// the barrier; the A5 experiment covers the law-fidelity end with fine
// epochs.
func BenchmarkShardedDense(b *testing.B) {
	const n, m = 1 << 16, 1 << 16
	const horizon = 8.0
	configs := []struct {
		name string
		opts []Option
	}{
		{"direct", nil},
		{"sharded-P4", []Option{WithEngineMode(ShardedEngine), WithShards(4), WithShardEpoch(0.125)}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			var totalActs, totalMoves int64
			for i := 0; i < b.N; i++ {
				opts := append([]Option{
					WithSeed(uint64(i) + 1),
					WithPlacement(Random()),
					WithTarget(UntilTime(horizon)),
				}, c.opts...)
				res, err := New(n, m, opts...).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reached {
					b.Fatal("did not reach the time horizon")
				}
				totalActs += res.Activations
				totalMoves += res.Moves
			}
			b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
			b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
		})
	}
}

// BenchmarkShardedJumpEndGame measures whole UntilPerfect runs at n = m
// from the all-in-one start — BenchmarkEndGame's regime — for the jump
// engine vs the sharded jump engine at P = 4 with adaptive epochs. Near
// balance both skip the same null blocks and the epoch policy floors at
// ~one event per barrier, so the sharded variant's extra cost is pure
// barrier reconciliation — since PR 5 incremental (dirty-bin journals in
// O(changed·Δ) per barrier, not an O(n) stale refresh + table rebuild).
// Two sizes pin the scaling: the ns/move gap between shardedjump and jump
// must stay roughly flat as n quadruples, where the old full rebuild grew
// it linearly. BENCH_PR5.json records both next to the core count.
func BenchmarkShardedJumpEndGame(b *testing.B) {
	for _, n := range []int{2048, 8192} {
		for _, c := range []struct {
			name string
			opts []Option
		}{
			{"jump", []Option{WithEngineMode(JumpEngine)}},
			{"shardedjump-P4", []Option{WithEngineMode(ShardedJumpEngine), WithShards(4)}},
		} {
			b.Run(fmt.Sprintf("n=m=%d/%s", n, c.name), func(b *testing.B) {
				var totalActs, totalMoves int64
				for i := 0; i < b.N; i++ {
					opts := append([]Option{WithSeed(uint64(i) + 1)}, c.opts...)
					res, err := New(n, n, opts...).Run()
					if err != nil {
						b.Fatal(err)
					}
					if !res.Reached {
						b.Fatal("did not balance")
					}
					totalActs += res.Activations
					totalMoves += res.Moves
				}
				b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
				b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalMoves), "ns/move")
			})
		}
	}
}

// BenchmarkShardedJumpDenseToSparse measures a whole dense→sparse run —
// one-choice start at m = 4n, UntilPerfect — across the engines that
// claim (part of) it: the sharded engine owns the dense phase but burns
// per-activation work in the long converged tail, the jump engine owns
// the tail but is single-threaded, and the sharded jump engine's
// adaptive epochs are meant to cover both in one run. Shards need ≥ P
// hardware threads to pay off, as recorded in BENCH_PR4.json.
func BenchmarkShardedJumpDenseToSparse(b *testing.B) {
	const n, m = 1024, 4096
	for _, c := range []struct {
		name string
		opts []Option
	}{
		{"sharded-P4", []Option{WithEngineMode(ShardedEngine), WithShards(4)}},
		{"jump", []Option{WithEngineMode(JumpEngine)}},
		{"shardedjump-P4", []Option{WithEngineMode(ShardedJumpEngine), WithShards(4)}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var totalActs, totalMoves int64
			for i := 0; i < b.N; i++ {
				opts := append([]Option{
					WithSeed(uint64(i) + 1),
					WithPlacement(Random()),
				}, c.opts...)
				res, err := New(n, m, opts...).Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reached {
					b.Fatal("did not balance")
				}
				totalActs += res.Activations
				totalMoves += res.Moves
			}
			b.ReportMetric(float64(totalActs)/float64(b.N), "activations/run")
			b.ReportMetric(float64(totalMoves)/float64(b.N), "moves/run")
		})
	}
}

// BenchmarkSessionChurnCycle measures a join/leave/rebalance churn cycle
// through the Session API.
func BenchmarkSessionChurnCycle(b *testing.B) {
	s := NewSession(64, 7)
	for i := 0; i < 512; i++ {
		s.AddBallRandom()
	}
	if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RemoveRandomBall(); err != nil {
			b.Fatal(err)
		}
		s.AddBall(0)
		if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
			b.Fatal("rebalance failed")
		}
	}
}

// BenchmarkSessionChurn measures interleaved churn+balance on a live
// session at m ≫ n: each iteration is one join, one leave, and a short
// stretch of protocol time, all absorbed by the persistent engine with no
// rebuild. Compare with BenchmarkSessionChurnRebuild, the seed's O(m)
// rebuild-per-event strategy.
func BenchmarkSessionChurn(b *testing.B) {
	const n, m = 1024, 100_000
	s := NewSession(n, 7)
	for i := 0; i < m; i++ {
		s.AddBallRandom()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AddBall(i % n); err != nil {
			b.Fatal(err)
		}
		if _, err := s.RemoveRandomBall(); err != nil {
			b.Fatal(err)
		}
		if err := s.RunFor(0.0001); err != nil { // ≈ m·d = 10 activations
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionChurnRebuild replays the pre-churn-native strategy on
// the same workload: every churn event snapshots the load vector and
// rebuilds the engine (Config + sampler) from scratch before running.
func BenchmarkSessionChurnRebuild(b *testing.B) {
	const n, m = 1024, 100_000
	r := rng.New(7)
	v := make(loadvec.Vector, n)
	for i := 0; i < m; i++ {
		v[r.Intn(n)]++
	}
	e := sim.NewEngine(v, core.RLS{}, sim.NewBallList(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Join: invalidate, mutate the snapshot, rebuild.
		loads := e.Cfg().Snapshot()
		loads[i%n]++
		e = sim.NewEngine(loads, core.RLS{}, sim.NewBallList(), r)
		// Leave: same dance for the second churn event.
		loads = e.Cfg().Snapshot()
		k := r.Intn(loads.Balls())
		for bin, l := range loads {
			if k < l {
				loads[bin]--
				break
			}
			k -= l
		}
		e = sim.NewEngine(loads, core.RLS{}, sim.NewBallList(), r)
		e.Run(sim.UntilTime(e.Time()+0.0001), 0)
	}
}

// BenchmarkExpectedBalanceTimePredictors covers the closed-form side.
func BenchmarkExpectedBalanceTimePredictors(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		n := 2 + i%4096
		sink += ExpectedBalanceTime(n, 4*n) + WHPBalanceTime(n, 4*n) + HarmonicLowerBound(n, 4*n)
	}
	_ = sink
}

// TestBenchmarkIDsMatchRegistry pins the Benchmark list to the registry:
// adding an experiment without a bench (or vice versa) fails here.
func TestBenchmarkIDsMatchRegistry(t *testing.T) {
	want := map[string]bool{}
	for _, id := range harness.IDs() {
		want[id] = true
	}
	// The list above, kept in sync by hand.
	have := []string{
		"F1", "F2", "F3", "T1", "T2", "LB1", "LB2", "DML",
		"P1", "P2", "P3", "L8", "L9", "L16", "CMP1", "CMP2", "CMP3",
		"X1", "X2", "X3", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "O1",
	}
	if len(have) != len(want) {
		t.Fatalf("bench list has %d, registry %d", len(have), len(want))
	}
	for _, id := range have {
		if !want[id] {
			t.Errorf("bench for unknown experiment %s", id)
		}
	}
}

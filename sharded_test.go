package rls

import (
	"math"
	"testing"
)

// sameResult requires two runs to be indistinguishable down to the IEEE
// bits of the stop time — the "byte-identical" bar the golden tests set
// for refactors of the direct path.
func sameResult(t *testing.T, name string, a, b Result) {
	t.Helper()
	if math.Float64bits(a.Time) != math.Float64bits(b.Time) {
		t.Errorf("%s: time %v != %v", name, a.Time, b.Time)
	}
	if a.Activations != b.Activations || a.Moves != b.Moves {
		t.Errorf("%s: counters (%d,%d) != (%d,%d)", name,
			a.Activations, a.Moves, b.Activations, b.Moves)
	}
	if len(a.Final) != len(b.Final) {
		t.Fatalf("%s: final length %d != %d", name, len(a.Final), len(b.Final))
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Errorf("%s: final loads differ at bin %d: %d != %d", name, i, a.Final[i], b.Final[i])
			break
		}
	}
	if math.Float64bits(a.Phases.LogBalanced) != math.Float64bits(b.Phases.LogBalanced) ||
		math.Float64bits(a.Phases.OneBalanced) != math.Float64bits(b.Phases.OneBalanced) ||
		math.Float64bits(a.Phases.Perfect) != math.Float64bits(b.Phases.Perfect) {
		t.Errorf("%s: phases %+v != %+v", name, a.Phases, b.Phases)
	}
}

// TestShardedSingleShardByteIdenticalToDirect pins the P = 1 degenerate
// case of the sharded engine to the direct engine: same RNG stream, same
// draw order, same per-activation stop granularity — the fixed-seed
// output must match bit for bit across placements and target kinds (the
// shared grid in enginepair_test.go).
func TestShardedSingleShardByteIdenticalToDirect(t *testing.T) {
	testEnginePairByteIdentical(t, nil,
		[]Option{WithEngineMode(ShardedEngine), WithShards(1)})
}

// TestShardedSingleShardTracedMatchesDirect extends the byte-identity to
// traced runs: with P = 1 trace points land at the same activations.
func TestShardedSingleShardTracedMatchesDirect(t *testing.T) {
	dres, dtr, err := New(24, 192, WithSeed(13)).RunTraced(40)
	if err != nil {
		t.Fatal(err)
	}
	sres, str, err := New(24, 192, WithSeed(13), WithEngineMode(ShardedEngine), WithShards(1)).RunTraced(40)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "traced", dres, sres)
	if len(dtr) != len(str) {
		t.Fatalf("trace lengths %d != %d", len(dtr), len(str))
	}
	for i := range dtr {
		if dtr[i] != str[i] {
			t.Fatalf("trace point %d: %+v != %+v", i, dtr[i], str[i])
		}
	}
}

func TestShardedRunnerBalances(t *testing.T) {
	res, err := New(64, 512, WithSeed(5), WithEngineMode(ShardedEngine), WithShards(4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if res.Disc >= 1 {
		t.Fatalf("final disc = %g", res.Disc)
	}
	// Stop conditions fire at barriers, where the phase observer also
	// runs: the perfect crossing must coincide with the stop time.
	if res.Phases.Perfect != res.Time {
		t.Errorf("perfect phase time %g != stop time %g", res.Phases.Perfect, res.Time)
	}
}

// Option-rejection coverage for the sharded engines lives in
// TestOptionValidationErrorMessages (enginemode_test.go), which pins the
// exact error messages per mode.

func TestShardedEngineModeString(t *testing.T) {
	if ShardedEngine.String() != "sharded" {
		t.Fatalf("mode string: %q", ShardedEngine)
	}
}

// TestSessionShardedMode drives the full churn surface in sharded mode:
// joins and leaves hash into the owning shard with no rebuild.
func TestSessionShardedMode(t *testing.T) {
	s := NewSession(16, 42, WithSessionEngineMode(ShardedEngine), WithSessionShards(4))
	if s.Mode() != ShardedEngine {
		t.Fatal("mode not recorded")
	}
	for i := 0; i < 160; i++ {
		s.AddBallRandom()
	}
	ok, err := s.RunUntilPerfect(10_000_000)
	if err != nil || !ok {
		t.Fatalf("balance failed: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AddBall(i % 16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveRandomBall(); err != nil {
			t.Fatal(err)
		}
		if err := s.RunFor(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if s.M() != 160 {
		t.Fatalf("m = %d after balanced churn", s.M())
	}
	if ok, err := s.RunUntilPerfect(10_000_000); err != nil || !ok {
		t.Fatalf("rebalance failed: %v", err)
	}
	if s.Disc() >= 1 {
		t.Fatalf("disc = %g", s.Disc())
	}
}

// TestSessionShardedSingleShardMatchesDirect extends the P = 1
// byte-identity through the session surface: identical churn histories
// must leave identical engines.
func TestSessionShardedSingleShardMatchesDirect(t *testing.T) {
	drive := func(s *Session) {
		for i := 0; i < 96; i++ {
			s.AddBallRandom()
		}
		if ok, err := s.RunUntilPerfect(1_000_000); err != nil || !ok {
			t.Fatalf("balance failed: %v", err)
		}
		for i := 0; i < 30; i++ {
			if err := s.AddBall(i % 12); err != nil {
				t.Fatal(err)
			}
			if _, err := s.RemoveRandomBall(); err != nil {
				t.Fatal(err)
			}
			if err := s.RunFor(0.25); err != nil {
				t.Fatal(err)
			}
		}
	}
	d := NewSession(12, 77)
	drive(d)
	sh := NewSession(12, 77, WithSessionEngineMode(ShardedEngine), WithSessionShards(1))
	drive(sh)
	if math.Float64bits(d.Time()) != math.Float64bits(sh.Time()) {
		t.Errorf("time %v != %v", d.Time(), sh.Time())
	}
	if d.Activations() != sh.Activations() || d.Moves() != sh.Moves() {
		t.Errorf("counters (%d,%d) != (%d,%d)", d.Activations(), d.Moves(), sh.Activations(), sh.Moves())
	}
	dl, sl := d.Loads(), sh.Loads()
	for i := range dl {
		if dl[i] != sl[i] {
			t.Fatalf("loads differ at bin %d", i)
		}
	}
}

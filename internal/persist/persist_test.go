package persist

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// TestEncDecRoundTrip drives every primitive through an encode/decode
// cycle in one payload.
func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(0)
	e.U64(math.MaxUint64)
	e.I64(-1)
	e.I64(math.MinInt64)
	e.Int(42)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Bytes8([]byte("hello"))
	e.Bytes8(nil)
	e.Ints([]int{3, -7, 0})
	e.I32s([]int32{1, -2, math.MaxInt32})
	e.I64s([]int64{math.MinInt64, 9})
	e.Bools([]bool{true, false, true})

	d := NewDec(e.Bytes())
	if got := d.U64(); got != 0 {
		t.Fatalf("U64: %d", got)
	}
	if got := d.U64(); got != math.MaxUint64 {
		t.Fatalf("U64 max: %d", got)
	}
	if got := d.I64(); got != -1 {
		t.Fatalf("I64: %d", got)
	}
	if got := d.I64(); got != math.MinInt64 {
		t.Fatalf("I64 min: %d", got)
	}
	if got := d.Int(); got != 42 {
		t.Fatalf("Int: %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64: %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 -inf: %v", got)
	}
	if got := d.Bytes8(); string(got) != "hello" {
		t.Fatalf("Bytes8: %q", got)
	}
	if got := d.Bytes8(); len(got) != 0 {
		t.Fatalf("Bytes8 nil: %q", got)
	}
	wantInts := []int{3, -7, 0}
	for i, v := range d.Ints() {
		if v != wantInts[i] {
			t.Fatalf("Ints[%d]: %d", i, v)
		}
	}
	wantI32s := []int32{1, -2, math.MaxInt32}
	for i, v := range d.I32s() {
		if v != wantI32s[i] {
			t.Fatalf("I32s[%d]: %d", i, v)
		}
	}
	wantI64s := []int64{math.MinInt64, 9}
	for i, v := range d.I64s() {
		if v != wantI64s[i] {
			t.Fatalf("I64s[%d]: %d", i, v)
		}
	}
	wantBools := []bool{true, false, true}
	for i, v := range d.Bools() {
		if v != wantBools[i] {
			t.Fatalf("Bools[%d]: %v", i, v)
		}
	}
	if d.Err() != nil {
		t.Fatalf("clean round trip erred: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

// TestDecSticky: after the first failure every read returns zero values
// and the original error survives.
func TestDecSticky(t *testing.T) {
	d := NewDec([]byte{0x02}) // Bool wants 0 or 1
	if d.Bool() {
		t.Fatal("bad bool decoded true")
	}
	first := d.Err()
	if first == nil {
		t.Fatal("bad bool did not fail")
	}
	if got := d.U64(); got != 0 {
		t.Fatalf("post-error U64: %d", got)
	}
	if d.Err() != first {
		t.Fatalf("error was overwritten: %v", d.Err())
	}
}

// TestDecBoundsCorruptLengths: slice lengths beyond the remaining
// payload are rejected without allocating.
func TestDecBoundsCorruptLengths(t *testing.T) {
	var e Enc
	e.U64(1 << 40) // an absurd element count
	for _, read := range []func(d *Dec){
		func(d *Dec) { d.Ints() },
		func(d *Dec) { d.I32s() },
		func(d *Dec) { d.I64s() },
		func(d *Dec) { d.Bools() },
		func(d *Dec) { d.Bytes8() },
	} {
		d := NewDec(e.Bytes())
		read(d)
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("oversized length decoded: %v", d.Err())
		}
	}
}

// TestSectionFrameRoundTrip: header, sections, CRC framing, end marker.
func TestSectionFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, MagicSnapshot); err != nil {
		t.Fatal(err)
	}
	if err := WriteSection(&buf, 1, []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSection(&buf, 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteSection(&buf, KindEnd, nil); err != nil {
		t.Fatal(err)
	}

	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	if err := ReadHeader(br, MagicSnapshot); err != nil {
		t.Fatal(err)
	}
	sr := NewSectionReader(br)
	kind, payload, err := sr.Next()
	if err != nil || kind != 1 || string(payload) != "payload-one" {
		t.Fatalf("section 1: kind=%d payload=%q err=%v", kind, payload, err)
	}
	kind, payload, err = sr.Next()
	if err != nil || kind != 7 || len(payload) != 0 {
		t.Fatalf("section 7: kind=%d payload=%q err=%v", kind, payload, err)
	}
	kind, _, err = sr.Next()
	if err != nil || kind != KindEnd {
		t.Fatalf("end: kind=%d err=%v", kind, err)
	}
	if _, _, err = sr.Next(); err != io.EOF {
		t.Fatalf("past end: %v", err)
	}
}

// TestSectionCRC: a payload bit flip is a checksum error; a CRC bit flip
// likewise.
func TestSectionCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSection(&buf, 3, []byte("sensitive")); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{2, buf.Len() - 1} { // inside payload; inside CRC
		mut := append([]byte(nil), buf.Bytes()...)
		mut[off] ^= 0x10
		sr := NewSectionReader(bufio.NewReader(bytes.NewReader(mut)))
		if _, _, err := sr.Next(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: %v, want ErrChecksum", off, err)
		}
	}
}

// TestSectionTruncation: cuts inside a section are ErrTruncated; a cut
// at a section boundary is clean io.EOF (the crash-tail contract).
func TestSectionTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSection(&buf, 3, []byte("sensitive")); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < buf.Len(); cut++ {
		sr := NewSectionReader(bufio.NewReader(bytes.NewReader(buf.Bytes()[:cut])))
		if _, _, err := sr.Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: %v, want ErrTruncated", cut, err)
		}
	}
	sr := NewSectionReader(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if _, _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sr.Next(); err != io.EOF {
		t.Fatalf("boundary cut: %v, want io.EOF", err)
	}
}

// TestReadHeaderErrors: wrong magic (including the other artifact kind)
// and version skew are typed.
func TestReadHeaderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, MagicTrace); err != nil {
		t.Fatal(err)
	}
	err := ReadHeader(bufio.NewReader(bytes.NewReader(buf.Bytes())), MagicSnapshot)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("trace-as-snapshot: %v", err)
	}

	err = ReadHeader(bufio.NewReader(bytes.NewReader([]byte("JUNKJUNK"))), MagicSnapshot)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage magic: %v", err)
	}

	var skew Enc
	skew.U64(Version + 3)
	raw := append([]byte(MagicSnapshot), skew.Bytes()...)
	err = ReadHeader(bufio.NewReader(bytes.NewReader(raw)), MagicSnapshot)
	var verr *VersionError
	if !errors.As(err, &verr) || verr.Got != Version+3 || verr.Want != Version {
		t.Fatalf("version skew: %v", err)
	}
}

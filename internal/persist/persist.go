// Package persist is the binary codec under every durable artifact in
// this repository: engine snapshots (full session state, resumable
// byte-identically) and trace archives (streamed trajectory records
// with embedded snapshots as seek points). The format is deliberately
// small:
//
//	artifact := magic[4] version:uvarint section* end-section
//	section  := kind:uvarint len:uvarint payload[len] crc32(payload):4 LE
//
// Payloads are varint-packed little-endian scalar streams built with
// Enc and read back with Dec. Every artifact terminates with an
// explicit End section (kind 0, empty payload), so a truncated file is
// distinguishable from a complete one; every section carries an IEEE
// CRC32 of its payload, so corruption is detected before any decoder
// interprets bytes. Decoders return typed errors (ErrTruncated,
// ErrChecksum, ErrBadMagic, ErrCorrupt, *VersionError) and never
// panic, including on adversarial input — FuzzDecodeSnapshot in the
// root package leans on that.
//
// The codec carries no type information beyond section kinds: each
// layer (loadvec, sim, the root rls package) owns the encoding of its
// unexported state and documents its own payload layout. What makes
// the round trip byte-identical is a layering rule, not the wire
// format: state whose in-memory order evolved under simulation
// (per-level bin lists, sampler slots, heap order, RNG words) is
// serialized verbatim, while state that is a pure function of it
// (Fenwick trees, position indices, derived stats) is rebuilt
// deterministically on decode.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the current artifact format version; decoders reject
// anything else with a *VersionError. Version 2 extended the session
// meta section with a topology seed and a graph-sampler mode (PR 10);
// version-1 artifacts are rejected rather than misread.
const Version = 2

// Artifact magics: the first four bytes of every file.
const (
	MagicSnapshot = "RLSS"
	MagicTrace    = "RLST"
)

// KindEnd terminates every artifact; layers number their own sections
// from 1.
const KindEnd = 0

// maxSection bounds a single section payload; anything larger is
// corrupt by construction (a full n = 10⁷ sharded snapshot is ~100 MB).
const maxSection = 1 << 31

// Typed decode errors. Wrapped errors carry context; match with
// errors.Is / errors.As.
var (
	// ErrBadMagic: the artifact does not start with a known magic.
	ErrBadMagic = errors.New("persist: unrecognized artifact magic")
	// ErrTruncated: the input ended mid-header, mid-section, or before
	// the End section.
	ErrTruncated = errors.New("persist: truncated artifact")
	// ErrChecksum: a section's CRC32 does not match its payload.
	ErrChecksum = errors.New("persist: section checksum mismatch")
	// ErrCorrupt: structurally invalid contents (impossible lengths,
	// inconsistent state, unknown enum values).
	ErrCorrupt = errors.New("persist: corrupt artifact")
)

// VersionError reports an artifact written by a different format
// version.
type VersionError struct {
	Got, Want uint64
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("persist: artifact version %d (decoder speaks %d)", e.Got, e.Want)
}

// Corruptf wraps ErrCorrupt with context.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// WriteHeader writes an artifact header (magic + version).
func WriteHeader(w io.Writer, magic string) error {
	var buf [4 + binary.MaxVarintLen64]byte
	copy(buf[:4], magic)
	n := binary.PutUvarint(buf[4:], Version)
	_, err := w.Write(buf[:4+n])
	return err
}

// ReadMagic consumes and returns the 4-byte artifact magic, validating
// it against the known kinds. rlsdump uses it to dispatch.
func ReadMagic(r io.Reader) (string, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return "", fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	s := string(m[:])
	if s != MagicSnapshot && s != MagicTrace {
		return "", fmt.Errorf("%w: %q", ErrBadMagic, s)
	}
	return s, nil
}

// ReadHeader consumes and validates a header, requiring the given
// magic. A byte-oriented reader should be used for what follows;
// SectionReader wraps one itself.
func ReadHeader(br *bufio.Reader, magic string) error {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrTruncated, err)
	}
	if got := string(m[:]); got != magic {
		if got == MagicSnapshot || got == MagicTrace {
			return fmt.Errorf("%w: got %s artifact, want %s", ErrBadMagic, got, magic)
		}
		return fmt.Errorf("%w: %q", ErrBadMagic, got)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("%w: reading version: %v", ErrTruncated, err)
	}
	if v != Version {
		return &VersionError{Got: v, Want: Version}
	}
	return nil
}

// WriteSection frames one payload: kind, length, bytes, CRC32.
func WriteSection(w io.Writer, kind uint64, payload []byte) error {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], kind)
	n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// SectionReader iterates the sections of one artifact after its header.
type SectionReader struct {
	br *bufio.Reader
}

// NewSectionReader wraps r; use the same reader ReadHeader consumed
// from (or pass the SectionReader's Reader to ReadHeader first).
func NewSectionReader(br *bufio.Reader) *SectionReader {
	return &SectionReader{br: br}
}

// Next returns the next section. Clean EOF at a section boundary
// returns io.EOF (trace archives cut off by a crash end this way after
// their last complete section); EOF anywhere inside a section returns
// ErrTruncated; a CRC mismatch returns ErrChecksum.
func (sr *SectionReader) Next() (kind uint64, payload []byte, err error) {
	kind, err = binary.ReadUvarint(sr.br)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: section kind: %v", ErrTruncated, err)
	}
	length, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: section length: %v", ErrTruncated, err)
	}
	if length > maxSection {
		return 0, nil, Corruptf("section of %d bytes exceeds the format bound", length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(sr.br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: section payload: %v", ErrTruncated, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(sr.br, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: section checksum: %v", ErrTruncated, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return 0, nil, fmt.Errorf("%w: kind %d: computed %08x, stored %08x", ErrChecksum, kind, got, want)
	}
	return kind, payload, nil
}

// Enc builds a varint-packed payload. The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Reset empties the buffer, keeping capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a zigzag-coded signed varint.
func (e *Enc) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends 8 little-endian bytes of the IEEE 754 representation —
// bit-exact, which the byte-identical resume contract requires.
func (e *Enc) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bytes8 appends a length-prefixed byte string.
func (e *Enc) Bytes8(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Ints appends a length-prefixed slice of signed varints.
func (e *Enc) Ints(s []int) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.I64(int64(v))
	}
}

// I32s appends a length-prefixed slice of signed varints.
func (e *Enc) I32s(s []int32) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.I64(int64(v))
	}
}

// I64s appends a length-prefixed slice of signed varints.
func (e *Enc) I64s(s []int64) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.I64(v)
	}
}

// Bools appends a length-prefixed slice of single bytes.
func (e *Enc) Bools(s []bool) {
	e.U64(uint64(len(s)))
	for _, v := range s {
		e.Bool(v)
	}
}

// Dec reads a payload written by Enc. Errors are sticky: after the
// first malformed read every subsequent call returns zero values and
// Err() reports the failure, so decoders can read a whole structure
// and check once. All slice lengths are validated against the bytes
// actually remaining (every element costs at least one byte), so
// corrupt lengths cannot trigger huge allocations.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a payload.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining reports the unread byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Fail marks the decoder failed with a corruption error; layer decoders
// use it for semantic validation failures.
func (d *Dec) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = Corruptf(format, args...)
	}
}

func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// U64 reads an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(Corruptf("bad uvarint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

// I64 reads a zigzag-coded signed varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(Corruptf("bad varint at offset %d", d.off))
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed varint as an int, failing on 32-bit overflow.
func (d *Dec) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail(Corruptf("int value %d overflows", v))
		return 0
	}
	return int(v)
}

// Bool reads one byte, requiring 0 or 1.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail(Corruptf("bool past end at offset %d", d.off))
		return false
	}
	b := d.buf[d.off]
	if b > 1 {
		d.fail(Corruptf("bad bool byte %d at offset %d", b, d.off))
		return false
	}
	d.off++
	return b == 1
}

// F64 reads 8 little-endian IEEE 754 bytes.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(Corruptf("float past end at offset %d", d.off))
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// sliceLen reads and bounds a slice length: every encoded element
// occupies at least one byte, so a valid length never exceeds the
// remaining payload — the check that keeps corrupt lengths from
// triggering gigabyte allocations.
func (d *Dec) sliceLen() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()) {
		d.fail(Corruptf("slice length %d exceeds %d remaining bytes", n, d.Remaining()))
		return 0
	}
	return int(n)
}

// Bytes8 reads a length-prefixed byte string (nil when empty).
func (d *Dec) Bytes8() []byte {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

// Ints reads a length-prefixed []int (nil when empty).
func (d *Dec) Ints() []int {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int, n)
	for i := range s {
		s[i] = d.Int()
	}
	return s
}

// I32s reads a length-prefixed []int32 (nil when empty).
func (d *Dec) I32s() []int32 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		v := d.I64()
		if int64(int32(v)) != v {
			d.Fail("int32 value %d overflows", v)
			return nil
		}
		s[i] = int32(v)
	}
	return s
}

// I64s reads a length-prefixed []int64 (nil when empty).
func (d *Dec) I64s() []int64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = d.I64()
	}
	return s
}

// Bools reads a length-prefixed []bool (nil when empty).
func (d *Dec) Bools() []bool {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]bool, n)
	for i := range s {
		s[i] = d.Bool()
	}
	return s
}

package sim

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// A Mover is a sequential protocol's decision rule: given the current
// configuration and the bin of the activated ball, it samples whatever
// candidates it needs from r and decides where (if anywhere) the ball
// goes. RLS is the canonical Mover; the paper's §3 remark variant and the
// graph-restricted extension are others.
type Mover interface {
	// Decide returns the destination bin and whether the ball moves.
	// If move is false, dst is ignored.
	Decide(cfg *loadvec.Config, src int, r *rng.RNG) (dst int, move bool)
	// Name identifies the protocol.
	Name() string
}

// Engine drives one continuous-time run. In the direct mode it repeatedly
// advances time by an Exp(m) gap, activates a uniformly random ball, and
// applies the Mover's decision; in jump mode (NewJumpEngine) it advances
// one whole block of null activations plus the move that ends it per
// Step. Adversaries (Lemma 2) may inject extra moves through ForceMove
// from a PostMove hook.
type Engine struct {
	cfg     *loadvec.Config
	sampler ActivationSampler // nil in jump mode
	gaps    GapSampler        // non-nil when the sampler owns event timing
	mover   Mover
	r       *rng.RNG
	jump    bool         // rejection-free jump-chain mode (see jump.go)
	gidx    graphSampler // jump mode on a graph topology: exact index or rejection hybrid (jumpgraph.go, jumpgraphhybrid.go)

	time        float64
	activations int64
	moves       int64
	forced      int64

	// horizon, when positive, is the continuous-time target of the current
	// run. Only jump mode consults it: stepJump clamps the geometric block
	// that would land past the horizon, so time-targeted jump runs stop at
	// exactly the horizon instead of overshooting by up to a whole block
	// (~m·n/W activations near balance). Direct mode keeps its
	// per-activation granularity and ignores it.
	horizon float64

	// PostMove, if non-nil, runs after every protocol move with the move's
	// endpoints. It may call ForceMove; Lemma 2's adversary lives here.
	PostMove func(e *Engine, src, dst int)
}

// NewEngine builds an engine over a copy of the initial configuration.
// If sampler is nil a BallList sampler is used.
func NewEngine(initial loadvec.Vector, mover Mover, sampler ActivationSampler, r *rng.RNG) *Engine {
	if r == nil {
		panic("sim: NewEngine with nil RNG")
	}
	if mover == nil {
		panic("sim: NewEngine with nil mover")
	}
	if sampler == nil {
		sampler = NewBallList()
	}
	sampler.Reset(initial)
	e := &Engine{
		cfg:     loadvec.NewConfig(initial),
		sampler: sampler,
		mover:   mover,
		r:       r,
	}
	if gs, ok := sampler.(GapSampler); ok {
		e.gaps = gs
	}
	return e
}

// Cfg exposes the live configuration (read-only use expected; mutate only
// through ForceMove so the sampler stays in sync).
func (e *Engine) Cfg() *loadvec.Config { return e.cfg }

// Time returns the elapsed continuous time.
func (e *Engine) Time() float64 { return e.time }

// Activations returns the number of ball activations so far.
func (e *Engine) Activations() int64 { return e.activations }

// Moves returns the number of protocol moves so far.
func (e *Engine) Moves() int64 { return e.moves }

// ForcedMoves returns the number of adversarial moves injected so far.
func (e *Engine) ForcedMoves() int64 { return e.forced }

// RNG returns the engine's random stream (adversaries may share it).
func (e *Engine) RNG() *rng.RNG { return e.r }

// SetHorizon declares the continuous-time target of the next run (0
// clears it). Jump mode clamps its final geometric block there — the move
// that would land beyond the horizon is not applied, the null activations
// before it are tallied in one conditioned Poisson draw, and the clock
// lands on the horizon exactly — so UntilTime runs never report a time
// past the target. Callers driving a persistent engine (Session) must
// clear the horizon before non-time-targeted runs.
func (e *Engine) SetHorizon(t float64) { e.horizon = t }

// Step performs one activation (direct mode) or one jump-chain block
// (jump mode) and returns whether a ball moved.
// Timing: samplers that own event timing (GapSampler, i.e. the literal
// per-ball-clock EventHeap) supply the inter-activation gap; otherwise
// the engine draws Exp(m) — the superposition of m rate-1 clocks.
func (e *Engine) Step() bool {
	if e.jump {
		return e.stepJump()
	}
	if e.gaps != nil {
		e.time += e.gaps.NextGap(e.r)
	} else {
		e.time += e.r.Exp(float64(e.cfg.M()))
	}
	src := e.sampler.Sample(e.r)
	dst, move := e.mover.Decide(e.cfg, src, e.r)
	e.activations++
	if !move || dst == src {
		return false
	}
	e.cfg.Move(src, dst)
	e.sampler.MoveBall(src, dst)
	e.moves++
	if e.PostMove != nil {
		e.PostMove(e, src, dst)
	}
	return true
}

// AddBall inserts one ball into bin (a dynamic arrival), keeping the
// configuration and the sampler in lockstep. The activation rate adjusts
// automatically: Step reads the live m for its Exp(m) gap, and GapSampler
// implementations schedule the newcomer's own clock. Cost is O(1) for
// BallList, O(log n) for Fenwick, O(log m) for EventHeap — never an O(m)
// rebuild.
func (e *Engine) AddBall(bin int) {
	e.cfg.AddBall(bin)
	if e.sampler != nil {
		e.sampler.AddBall(bin)
	}
	if e.gidx != nil {
		e.gidx.update(e.cfg, bin)
	}
}

// RemoveBall removes one ball from bin (a dynamic departure), keeping the
// configuration and the sampler in lockstep. Balls being identical, any
// resident of bin may be the one to leave. It panics if the bin is empty.
func (e *Engine) RemoveBall(bin int) {
	e.cfg.RemoveBall(bin)
	if e.sampler != nil {
		e.sampler.RemoveBall(bin)
	}
	if e.gidx != nil {
		e.gidx.update(e.cfg, bin)
	}
}

// RandomBin returns the bin of a uniformly random ball without advancing
// the run — the draw session churn uses to pick a departure target. Both
// modes consume one draw from the engine's RNG stream.
func (e *Engine) RandomBin() int {
	if e.jump {
		return e.cfg.SampleBallBin(e.r)
	}
	return e.sampler.Sample(e.r)
}

// ForceMove applies a move outside the protocol (adversarial/destructive),
// keeping the sampler in sync. It does not advance time: the DML adversary
// acts instantaneously after protocol moves.
func (e *Engine) ForceMove(src, dst int) {
	e.cfg.Move(src, dst)
	if e.sampler != nil {
		e.sampler.MoveBall(src, dst)
	}
	if e.gidx != nil {
		e.gidx.update(e.cfg, src, dst)
	}
	e.forced++
}

// Result summarizes a completed run.
type Result struct {
	// Time is the continuous time at which the run stopped.
	Time float64
	// Activations and Moves count ball activations and successful moves.
	Activations, Moves int64
	// ForcedMoves counts adversarial moves.
	ForcedMoves int64
	// Stopped reports whether the stop condition was met (as opposed to
	// exhausting the activation budget).
	Stopped bool
	// Final is the final load vector.
	Final loadvec.Vector
}

func (res Result) String() string {
	return fmt.Sprintf("Result{t=%.3f acts=%d moves=%d stopped=%v}",
		res.Time, res.Activations, res.Moves, res.Stopped)
}

// DefaultActivationBudget is the generous per-run activation cap applied
// when a caller passes a non-positive budget; runs that long indicate a
// bug or a degenerate parameterization.
const DefaultActivationBudget = 1_000_000_000

// Run advances the engine until stop returns true or maxActivations is
// exhausted (pass maxActivations <= 0 for DefaultActivationBudget).
func (e *Engine) Run(stop StopCond, maxActivations int64) Result {
	if maxActivations <= 0 {
		maxActivations = DefaultActivationBudget
	}
	stopped := stop(e)
	for !stopped && e.activations < maxActivations {
		e.Step()
		stopped = stop(e)
	}
	return Result{
		Time:        e.time,
		Activations: e.activations,
		Moves:       e.moves,
		ForcedMoves: e.forced,
		Stopped:     stopped,
		Final:       e.cfg.Snapshot(),
	}
}

// TracePoint is one sample of a run's trajectory.
type TracePoint struct {
	Time        float64
	Activations int64
	Disc        float64
	Overloaded  float64
	MinLoad     int
	MaxLoad     int
}

// RunTraced behaves like Run but also samples the trajectory every
// `every` activations (and at the initial and final states). Jump-mode
// steps advance the activation counter by whole blocks, so there a point
// is recorded at the first step on or past each `every` boundary.
func (e *Engine) RunTraced(stop StopCond, maxActivations, every int64) (Result, []TracePoint) {
	if every <= 0 {
		every = 1
	}
	if maxActivations <= 0 {
		maxActivations = DefaultActivationBudget
	}
	var trace []TracePoint
	record := func() {
		trace = append(trace, TracePoint{
			Time:        e.time,
			Activations: e.activations,
			Disc:        e.cfg.Disc(),
			Overloaded:  e.cfg.OverloadedBalls(),
			MinLoad:     e.cfg.Min(),
			MaxLoad:     e.cfg.Max(),
		})
	}
	record()
	nextRecord := e.activations + every
	stopped := stop(e)
	for !stopped && e.activations < maxActivations {
		e.Step()
		if e.activations >= nextRecord {
			record()
			nextRecord = (e.activations/every + 1) * every
		}
		stopped = stop(e)
	}
	// Close the trace with the final state unless the last boundary point
	// already captured it (the activation counter only moves in Step, so
	// equal counters mean an identical state — no duplicate point).
	if trace[len(trace)-1].Activations != e.activations {
		record()
	}
	return Result{
		Time:        e.time,
		Activations: e.activations,
		Moves:       e.moves,
		ForcedMoves: e.forced,
		Stopped:     stopped,
		Final:       e.cfg.Snapshot(),
	}, trace
}

package sim

import (
	"math"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestJumpEngineReachesPerfection(t *testing.T) {
	v := loadvec.AllInOne().Generate(16, 256, nil)
	e := NewJumpEngine(v, rng.New(3))
	res := e.Run(UntilPerfect(), 0)
	if !res.Stopped {
		t.Fatal("did not balance")
	}
	if !res.Final.IsPerfect() {
		t.Fatalf("final not perfect: %v", res.Final)
	}
	if res.Moves >= res.Activations {
		t.Fatalf("moves %d should be well below activations %d", res.Moves, res.Activations)
	}
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestJumpEngineEveryStepMoves is the rejection-free property: away from
// the flat configuration every Step must end in exactly one move.
func TestJumpEngineEveryStepMoves(t *testing.T) {
	v := loadvec.AllInOne().Generate(8, 64, nil)
	e := NewJumpEngine(v, rng.New(11))
	for !e.Cfg().IsPerfect() {
		moves := e.Moves()
		if !e.Step() {
			t.Fatalf("null Step with W = %d", e.Cfg().MoveWeight())
		}
		if e.Moves() != moves+1 {
			t.Fatalf("Step made %d moves", e.Moves()-moves)
		}
	}
}

// TestJumpEngineFlatAdvancesTime pins the W = 0 fallback: a flat
// configuration has no productive move, yet time-targeted runs must not
// spin forever.
func TestJumpEngineFlatAdvancesTime(t *testing.T) {
	e := NewJumpEngine(loadvec.Vector{2, 2, 2, 2}, rng.New(5))
	res := e.Run(UntilTime(1.5), 0)
	if !res.Stopped {
		t.Fatal("did not reach the time target")
	}
	if res.Moves != 0 {
		t.Fatalf("flat run made %d moves", res.Moves)
	}
	if res.Activations == 0 {
		t.Fatal("no activations ticked")
	}
}

// TestJumpEngineHorizonClampsExactly pins the time-target fix: with a
// horizon set, the block whose move would land past it is truncated, the
// clock lands bit-exactly on the horizon, and no move past the horizon is
// applied — where the unclamped engine overshoots by up to a whole
// geometric block (~m·n/W activations near balance).
func TestJumpEngineHorizonClampsExactly(t *testing.T) {
	const horizon = 4.0
	for seed := uint64(1); seed <= 20; seed++ {
		e := NewJumpEngine(loadvec.AllInOne().Generate(16, 128, nil), rng.New(seed))
		e.SetHorizon(horizon)
		res := e.Run(UntilTime(horizon), 0)
		if !res.Stopped {
			t.Fatalf("seed %d: did not reach the horizon", seed)
		}
		if res.Time != horizon {
			t.Fatalf("seed %d: time %v, want exactly %v", seed, res.Time, horizon)
		}
		if res.Activations == 0 {
			t.Fatalf("seed %d: no activations ticked", seed)
		}
		if err := e.Cfg().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJumpEngineFlatHorizon pins the W = 0 branch under a horizon: a flat
// configuration jumps straight to the horizon, tallying the null
// activations in one Poisson draw.
func TestJumpEngineFlatHorizon(t *testing.T) {
	e := NewJumpEngine(loadvec.Vector{3, 3, 3, 3}, rng.New(5))
	e.SetHorizon(3)
	res := e.Run(UntilTime(3), 0)
	if !res.Stopped || res.Time != 3 {
		t.Fatalf("stopped=%v time=%v, want exactly 3", res.Stopped, res.Time)
	}
	if res.Moves != 0 {
		t.Fatalf("flat run made %d moves", res.Moves)
	}
	if res.Activations == 0 {
		t.Fatal("no activations ticked (mean m·T = 36)")
	}
}

// TestJumpHorizonMatchesDirectLaw is the regression gate for the
// truncated final block: at a fixed horizon the direct and jump engines
// must agree on the law of the activation and move counts (the truncated
// Poisson tally is exact by thinning), while their reported times bracket
// the horizon from opposite sides by construction.
func TestJumpHorizonMatchesDirectLaw(t *testing.T) {
	const n, m, horizon, reps = 16, 64, 3.0, 400
	root := rng.New(1702)
	var directActs, jumpActs, directMoves, jumpMoves float64
	for i := 0; i < reps; i++ {
		r := root.Split()
		res := NewEngine(loadvec.AllInOne().Generate(n, m, nil), rlsRule{}, nil, r).
			Run(UntilTime(horizon), 0)
		if res.Time < horizon {
			t.Fatalf("direct stopped early at %v", res.Time)
		}
		directActs += float64(res.Activations)
		directMoves += float64(res.Moves)

		r2 := root.Split()
		e := NewJumpEngine(loadvec.AllInOne().Generate(n, m, nil), r2)
		e.SetHorizon(horizon)
		res2 := e.Run(UntilTime(horizon), 0)
		if res2.Time != horizon {
			t.Fatalf("jump time %v, want exactly %v", res2.Time, horizon)
		}
		jumpActs += float64(res2.Activations)
		jumpMoves += float64(res2.Moves)
	}
	if ratio := jumpActs / directActs; math.Abs(ratio-1) > 0.10 {
		t.Errorf("activation ratio jump/direct = %g, want ≈ 1", ratio)
	}
	if ratio := jumpMoves / directMoves; math.Abs(ratio-1) > 0.10 {
		t.Errorf("move ratio jump/direct = %g, want ≈ 1", ratio)
	}
}

// TestJumpEngineChurn interleaves churn with jump execution and checks
// the level index stays exact.
func TestJumpEngineChurn(t *testing.T) {
	e := NewJumpEngine(loadvec.Vector{8, 0, 0, 0}, rng.New(21))
	r := rng.New(22)
	for i := 0; i < 400; i++ {
		switch r.Intn(3) {
		case 0:
			e.AddBall(r.Intn(4))
		case 1:
			if e.Cfg().M() > 1 {
				e.RemoveBall(e.RandomBin())
			}
		case 2:
			e.Step()
		}
	}
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Cfg().M() <= 0 {
		t.Fatal("lost all balls")
	}
}

// TestJumpEngineForceMoveAndHook checks the adversary surface: PostMove
// fires once per move and ForceMove keeps the index consistent.
func TestJumpEngineForceMoveAndHook(t *testing.T) {
	v := loadvec.AllInOne().Generate(8, 128, nil)
	e := NewJumpEngine(v, rng.New(9))
	calls := 0
	e.PostMove = func(e *Engine, src, dst int) {
		calls++
		// Undo every fourth move adversarially (a destructive move).
		if calls%4 == 0 && e.Cfg().Load(dst) > 0 {
			e.ForceMove(dst, src)
		}
	}
	e.Run(UntilPerfect(), 200_000)
	if int64(calls) != e.Moves() {
		t.Fatalf("hook ran %d times for %d moves", calls, e.Moves())
	}
	if e.ForcedMoves() == 0 {
		t.Fatal("adversary never acted")
	}
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestJumpMatchesDirectLaw is the law-equivalence gate at unit scale: the
// balancing-time samples of the two engines must pass a two-sample KS
// test, and the mean activation counts must agree (the geometric blocks
// count exactly the skipped nulls). Experiment A4 runs the full-size
// version.
func TestJumpMatchesDirectLaw(t *testing.T) {
	const n, m, reps = 16, 64, 400
	root := rng.New(1701)
	var directT, jumpT []float64
	var directActs, jumpActs float64
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		e := NewEngine(v, rlsRule{}, nil, r)
		res := e.Run(UntilPerfect(), 0)
		directT = append(directT, res.Time)
		directActs += float64(res.Activations)

		r2 := root.Split()
		e2 := NewJumpEngine(loadvec.AllInOne().Generate(n, m, nil), r2)
		res2 := e2.Run(UntilPerfect(), 0)
		jumpT = append(jumpT, res2.Time)
		jumpActs += float64(res2.Activations)
	}
	same, d := stats.SameDistribution(directT, jumpT, 0.001)
	if !same {
		t.Errorf("balancing-time KS D = %g rejects the same-law hypothesis", d)
	}
	// Activation counts have the same mean; allow 10% at this sample size.
	if ratio := jumpActs / directActs; math.Abs(ratio-1) > 0.10 {
		t.Errorf("activation ratio jump/direct = %g, want ≈ 1", ratio)
	}
}

func TestFenwickLoadSinglePass(t *testing.T) {
	f := NewFenwick()
	v := loadvec.Vector{3, 0, 7, 1, 0, 0, 5, 2, 9, 4, 0, 1, 6}
	f.Reset(v)
	for i, want := range v {
		if got := f.Load(i); got != want {
			t.Errorf("Load(%d) = %d, want %d", i, got, want)
		}
		if got := f.prefix(i+1) - f.prefix(i); got != want {
			t.Errorf("prefix diff at %d = %d, want %d", i, got, want)
		}
	}
}

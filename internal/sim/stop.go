package sim

// A StopCond inspects the engine state and reports whether the run should
// stop. Conditions are checked after every activation (and once before
// the first).
type StopCond func(e *Engine) bool

// UntilPerfect stops at perfect balance (disc < 1), the paper's balancing
// time T.
func UntilPerfect() StopCond {
	return func(e *Engine) bool { return e.Cfg().IsPerfect() }
}

// UntilBalanced stops once the configuration is x-balanced (disc ≤ x);
// the phase experiments use it with x = O(ln n) and x = 1.
func UntilBalanced(x float64) StopCond {
	return func(e *Engine) bool { return e.Cfg().IsBalanced(x) }
}

// UntilOverloadedAtMost stops when the number of overloaded balls A drops
// to at most a (Lemma 15's subphase boundary).
func UntilOverloadedAtMost(a float64) StopCond {
	return func(e *Engine) bool { return e.Cfg().OverloadedBalls() <= a }
}

// UntilTime stops once continuous time reaches t.
func UntilTime(t float64) StopCond {
	return func(e *Engine) bool { return e.Time() >= t }
}

// UntilActivations stops after the given number of activations.
func UntilActivations(k int64) StopCond {
	return func(e *Engine) bool { return e.Activations() >= k }
}

// Any stops when any of the given conditions holds.
func Any(conds ...StopCond) StopCond {
	return func(e *Engine) bool {
		for _, c := range conds {
			if c(e) {
				return true
			}
		}
		return false
	}
}

// All stops when all of the given conditions hold simultaneously.
func All(conds ...StopCond) StopCond {
	return func(e *Engine) bool {
		for _, c := range conds {
			if !c(e) {
				return false
			}
		}
		return true
	}
}

// Never never stops on its own; combine with an activation budget.
func Never() StopCond {
	return func(*Engine) bool { return false }
}

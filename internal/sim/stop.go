package sim

// A StopCond inspects the engine state and reports whether the run should
// stop. It is always checked once before the first step; how often it is
// checked afterwards depends on the engine mode (rls.EngineMode):
//
//   - direct: after every activation — the finest granularity, and the
//     only mode where activation-exact conditions are meaningful;
//   - jump (NewJumpEngine): after every jump-chain step, i.e. one whole
//     geometric block of null activations plus the move closing it.
//     Configuration conditions (UntilPerfect, UntilBalanced) see exactly
//     the move-time law; time or activation targets may overshoot by one
//     block — except UntilTime runs with Engine.SetHorizon set, whose
//     final block is clamped exactly at the horizon;
//   - sharded and sharded jump (Sharded, which takes a ShardedStop rather
//     than a StopCond): at epoch barriers for P > 1, after every
//     activation (P = 1 plain) or every jump step (P = 1 jump).
type StopCond func(e *Engine) bool

// UntilPerfect stops at perfect balance (disc < 1), the paper's balancing
// time T.
func UntilPerfect() StopCond {
	return func(e *Engine) bool { return e.Cfg().IsPerfect() }
}

// UntilBalanced stops once the configuration is x-balanced (disc ≤ x);
// the phase experiments use it with x = O(ln n) and x = 1.
func UntilBalanced(x float64) StopCond {
	return func(e *Engine) bool { return e.Cfg().IsBalanced(x) }
}

// UntilOverloadedAtMost stops when the number of overloaded balls A drops
// to at most a (Lemma 15's subphase boundary).
func UntilOverloadedAtMost(a float64) StopCond {
	return func(e *Engine) bool { return e.Cfg().OverloadedBalls() <= a }
}

// UntilTime stops once continuous time reaches t.
func UntilTime(t float64) StopCond {
	return func(e *Engine) bool { return e.Time() >= t }
}

// UntilActivations stops after the given number of activations.
func UntilActivations(k int64) StopCond {
	return func(e *Engine) bool { return e.Activations() >= k }
}

// Any stops when any of the given conditions holds.
func Any(conds ...StopCond) StopCond {
	return func(e *Engine) bool {
		for _, c := range conds {
			if c(e) {
				return true
			}
		}
		return false
	}
}

// All stops when all of the given conditions hold simultaneously.
func All(conds ...StopCond) StopCond {
	return func(e *Engine) bool {
		for _, c := range conds {
			if !c(e) {
				return false
			}
		}
		return true
	}
}

// Never never stops on its own; combine with an activation budget.
func Never() StopCond {
	return func(*Engine) bool { return false }
}

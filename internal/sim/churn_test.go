package sim

// Churn agreement tests: interleaving AddBall/RemoveBall/Step on a live
// engine must keep the sampler's view of the loads identical to the
// Config's, and the Config's incremental statistics identical to a
// freshly built one — for all three samplers.

import (
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// binLoader is the per-bin load accessor every sampler exposes for tests.
type binLoader interface {
	Load(i int) int
}

func churnSamplers() []ActivationSampler {
	return []ActivationSampler{NewBallList(), NewFenwick(), NewEventHeap()}
}

// randNonEmptyBin returns a uniformly random non-empty bin of cfg, or -1
// when the configuration holds no balls.
func randNonEmptyBin(cfg *loadvec.Config, r *rng.RNG) int {
	if cfg.M() == 0 {
		return -1
	}
	for {
		if bin := r.Intn(cfg.N()); cfg.Load(bin) > 0 {
			return bin
		}
	}
}

func TestEngineChurnSamplerAgreementProperty(t *testing.T) {
	for _, mk := range []func() ActivationSampler{
		func() ActivationSampler { return NewBallList() },
		func() ActivationSampler { return NewFenwick() },
		func() ActivationSampler { return NewEventHeap() },
	} {
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			err := quick.Check(func(seed uint64) bool {
				script := rng.New(seed) // drives the churn schedule
				n := 2 + script.Intn(10)
				v := make(loadvec.Vector, n)
				for i := range v {
					v[i] = script.Intn(5)
				}
				if v.Balls() == 0 {
					v[0] = 1
				}
				e := NewEngine(v, rlsRule{}, mk(), rng.New(seed+1))
				for op := 0; op < 150; op++ {
					switch script.Intn(4) {
					case 0:
						e.AddBall(script.Intn(n))
					case 1:
						if e.Cfg().M() > 1 { // keep the engine steppable
							e.RemoveBall(randNonEmptyBin(e.Cfg(), script))
						}
					default: // step twice as often as each churn kind
						e.Step()
					}
					if err := e.Cfg().Validate(); err != nil {
						t.Logf("seed %d op %d: %v", seed, op, err)
						return false
					}
					bl := e.sampler.(binLoader)
					for i := 0; i < n; i++ {
						if bl.Load(i) != e.Cfg().Load(i) {
							t.Logf("seed %d op %d: bin %d sampler=%d cfg=%d",
								seed, op, i, bl.Load(i), e.Cfg().Load(i))
							return false
						}
					}
				}
				return true
			}, &quick.Config{MaxCount: 40})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Churn before the first activation must work for all samplers (the
// event heap defers clock scheduling until it first sees an RNG).
func TestEngineChurnBeforeFirstStep(t *testing.T) {
	for _, s := range churnSamplers() {
		v := loadvec.Vector{2, 0, 1}
		e := NewEngine(v, rlsRule{}, s, rng.New(11))
		e.AddBall(1)
		e.AddBall(1)
		e.RemoveBall(0)
		if e.Cfg().M() != 4 {
			t.Fatalf("%s: m = %d, want 4", s.Name(), e.Cfg().M())
		}
		res := e.Run(UntilPerfect(), 100000)
		if !res.Stopped {
			t.Fatalf("%s: did not balance after pre-run churn", s.Name())
		}
		if res.Final.Balls() != 4 {
			t.Fatalf("%s: ball conservation violated: %v", s.Name(), res.Final)
		}
	}
}

// Removing the last resident of a bin via churn must panic like the other
// empty-bin abuses.
func TestSamplerRemoveBallEmptyPanics(t *testing.T) {
	for _, s := range churnSamplers() {
		func() {
			s.Reset(loadvec.Vector{0, 3})
			defer func() {
				if recover() == nil {
					t.Errorf("%s: RemoveBall from empty bin did not panic", s.Name())
				}
			}()
			s.RemoveBall(0)
		}()
	}
}

// A long alternating churn+run soak at m >> n: the engine absorbs every
// event incrementally and stays internally consistent.
func TestEngineChurnSoak(t *testing.T) {
	const n, m = 64, 4096
	r := rng.New(3)
	v := loadvec.OneChoice().Generate(n, m, r)
	e := NewEngine(v, rlsRule{}, NewBallList(), rng.New(4))
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			e.AddBall(r.Intn(n))
			e.RemoveBall(randNonEmptyBin(e.Cfg(), r))
		}
		for i := 0; i < 200; i++ {
			e.Step()
		}
	}
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Cfg().M() != m {
		t.Fatalf("m drifted to %d", e.Cfg().M())
	}
}

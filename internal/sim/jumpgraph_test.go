package sim

import (
	"math"
	"testing"

	"repro/internal/graphs"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// scratchGraphWeight recomputes W_G = Σ_i load(i)·|admissible slots of i|
// from the raw loads, the definition graphIndex must track.
func scratchGraphWeight(v loadvec.Vector, g Topology) int64 {
	var w int64
	for i, li := range v {
		a := 0
		for k := 0; k < g.Degree(i); k++ {
			if v[g.Neighbor(i, k)] <= li-1 {
				a++
			}
		}
		w += int64(li) * int64(a)
	}
	return w
}

// TestGraphIndexMatchesScratch drives the index through random moves and
// churn on several regular topologies, validating the total and each
// per-bin admissible count against a from-scratch recompute.
func TestGraphIndexMatchesScratch(t *testing.T) {
	r := rng.New(555)
	topos := []Topology{
		graphs.Ring{Vertices: 16},
		graphs.Torus2D{Side: 4},
		graphs.Hypercube{Dim: 4},
	}
	rr, err := graphs.NewRandomRegular(16, 3, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, rr) // the pairing model keeps multi-edges
	for _, g := range topos {
		n := g.N()
		v := make(loadvec.Vector, n)
		for i := range v {
			v[i] = r.Intn(5)
		}
		if v.Balls() == 0 {
			v[0] = 1
		}
		cfg := loadvec.NewConfig(v)
		gx := newGraphIndex(cfg, g)
		check := func(step int) {
			loads := cfg.Snapshot()
			if got, want := gx.total, scratchGraphWeight(loads, g); got != want {
				t.Fatalf("step %d: W_G = %d, want %d (loads %v)", step, got, want, loads)
			}
			for i := 0; i < n; i++ {
				a := 0
				for k := 0; k < g.Degree(i); k++ {
					if loads[g.Neighbor(i, k)] <= loads[i]-1 {
						a++
					}
				}
				if int(gx.adm[i]) != a {
					t.Fatalf("step %d: adm[%d] = %d, want %d", step, i, gx.adm[i], a)
				}
			}
		}
		check(-1)
		for step := 0; step < 400; step++ {
			switch r.Intn(4) {
			case 0: // graph-legal move
				src := r.Intn(n)
				if gx.adm[src] > 0 && cfg.Load(src) > 0 {
					dst := g.Neighbor(src, r.Intn(g.Degree(src)))
					if cfg.Load(dst) <= cfg.Load(src)-1 {
						cfg.Move(src, dst)
						gx.update(cfg, src, dst)
					}
				}
			case 1: // destructive move
				src, dst := r.Intn(n), r.Intn(n)
				if src != dst && cfg.Load(src) > 0 {
					cfg.Move(src, dst)
					gx.update(cfg, src, dst)
				}
			case 2:
				bin := r.Intn(n)
				cfg.AddBall(bin)
				gx.update(cfg, bin)
			case 3:
				if bin := r.Intn(n); cfg.Load(bin) > 0 && cfg.M() > 1 {
					cfg.RemoveBall(bin)
					gx.update(cfg, bin)
				}
			}
			if step%23 == 0 {
				check(step)
			}
		}
		check(400)
	}
}

// TestGraphIndexSampleLaw checks both validity (every sampled pair is a
// legal graph move) and the exact law: pair (i, j) must appear with
// probability load(i)·s_ij/W_G where s_ij is the number of parallel
// slots of i pointing at j — the multigraph-exact law of GraphRLS.
func TestGraphIndexSampleLaw(t *testing.T) {
	g := graphs.Ring{Vertices: 5}
	v := loadvec.Vector{4, 1, 2, 0, 3}
	cfg := loadvec.NewConfig(v)
	gx := newGraphIndex(cfg, g)
	W := float64(gx.total)
	if int64(W) != scratchGraphWeight(v, g) {
		t.Fatalf("W_G = %g, want %d", W, scratchGraphWeight(v, g))
	}
	r := rng.New(31)
	const draws = 200000
	counts := map[[2]int]int{}
	for i := 0; i < draws; i++ {
		src, dst := gx.sample(cfg, r)
		if v[dst] > v[src]-1 {
			t.Fatalf("illegal pair (%d,%d): loads %d,%d", src, dst, v[src], v[dst])
		}
		counts[[2]int{src, dst}]++
	}
	for i := range v {
		for j := range v {
			slots := 0
			for k := 0; k < g.Degree(i); k++ {
				if g.Neighbor(i, k) == j && v[j] <= v[i]-1 {
					slots++
				}
			}
			want := float64(v[i]) * float64(slots) / W * draws
			got := float64(counts[[2]int{i, j}])
			if want == 0 {
				if got != 0 {
					t.Errorf("pair (%d,%d): %g draws, want 0", i, j, got)
				}
				continue
			}
			if sigma := math.Sqrt(want); math.Abs(got-want) > 5*sigma+1 {
				t.Errorf("pair (%d,%d): %g draws, want %g ± %g", i, j, got, want, 5*sigma)
			}
		}
	}
}

// TestGraphJumpEngineBalances runs the graph jump engine to perfection on
// each catalogue topology from the worst-case start and cross-checks the
// invariants shared with the direct engine.
func TestGraphJumpEngineBalances(t *testing.T) {
	topos := []Topology{
		graphs.Ring{Vertices: 16},
		graphs.Torus2D{Side: 4},
		graphs.Hypercube{Dim: 4},
	}
	for _, g := range topos {
		v := make(loadvec.Vector, g.N())
		v[0] = 64
		e := NewGraphJumpEngine(v, g, rng.New(2))
		res := e.Run(UntilPerfect(), 0)
		if !res.Stopped {
			t.Fatalf("%T: did not balance", g)
		}
		if !res.Final.IsPerfect() {
			t.Fatalf("%T: final %v not perfect", g, res.Final)
		}
		if res.Moves >= res.Activations {
			t.Fatalf("%T: moves %d not below activations %d", g, res.Moves, res.Activations)
		}
		if res.Time <= 0 {
			t.Fatalf("%T: time %g", g, res.Time)
		}
	}
}

// TestStrictJumpEngineBalances runs the strict jump engine to perfection
// and checks every move it makes is strict-legal via a PostMove probe.
func TestStrictJumpEngineBalances(t *testing.T) {
	v := make(loadvec.Vector, 16)
	v[0] = 64
	e := NewStrictJumpEngine(v, rng.New(3))
	e.PostMove = func(e *Engine, src, dst int) {
		// After the move, src lost one ball and dst gained one, so the
		// strict precondition pre(src) ≥ pre(dst)+2 reads post(src) ≥
		// post(dst).
		if e.Cfg().Load(src) < e.Cfg().Load(dst) {
			t.Fatalf("non-strict move %d→%d", src, dst)
		}
	}
	res := e.Run(UntilPerfect(), 0)
	if !res.Stopped || !res.Final.IsPerfect() {
		t.Fatalf("did not balance: %v", res)
	}
}

// TestGraphJumpHorizonClamp pins the horizon behaviour shared with the
// plain jump engine: a time-targeted run lands exactly on the horizon.
func TestGraphJumpHorizonClamp(t *testing.T) {
	v := make(loadvec.Vector, 16)
	v[0] = 64
	e := NewGraphJumpEngine(v, graphs.Ring{Vertices: 16}, rng.New(4))
	const h = 0.75
	e.SetHorizon(h)
	res := e.Run(UntilTime(h), 0)
	if res.Time != h {
		t.Fatalf("stopped at t=%g, want exactly %g", res.Time, h)
	}
}

// TestGraphJumpChurn exercises AddBall/RemoveBall/ForceMove keeping the
// graph index in sync (validated against scratch after each event).
func TestGraphJumpChurn(t *testing.T) {
	g := graphs.Hypercube{Dim: 3}
	v := make(loadvec.Vector, 8)
	v[0] = 24
	e := NewGraphJumpEngine(v, g, rng.New(6))
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		switch r.Intn(3) {
		case 0:
			e.AddBall(r.Intn(8))
		case 1:
			if bin := e.RandomBin(); e.Cfg().M() > 1 {
				e.RemoveBall(bin)
			}
		case 2:
			src, dst := r.Intn(8), r.Intn(8)
			if src != dst && e.Cfg().Load(src) > 0 {
				e.ForceMove(src, dst)
			}
		}
		e.Step()
		if got, want := e.gidx.weight(), scratchGraphWeight(e.Cfg().Snapshot(), g); got != want {
			t.Fatalf("event %d: W_G = %d, want %d", i, got, want)
		}
	}
}

// TestGraphJumpEnginePanics pins the constructor's rejection branches.
func TestGraphJumpEnginePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil rng", func() {
		NewGraphJumpEngine(make(loadvec.Vector, 4), graphs.Ring{Vertices: 4}, nil)
	})
	expectPanic("nil topology", func() {
		NewGraphJumpEngine(make(loadvec.Vector, 4), nil, rng.New(1))
	})
	expectPanic("size mismatch", func() {
		NewGraphJumpEngine(make(loadvec.Vector, 4), graphs.Ring{Vertices: 8}, rng.New(1))
	})
	expectPanic("strict nil rng", func() {
		NewStrictJumpEngine(make(loadvec.Vector, 4), nil)
	})
}

package sim

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// NewJumpEngine builds a rejection-free engine for plain RLS on the
// complete topology: instead of simulating every activation (almost all
// of which are rejected null moves near balance), it simulates only the
// *embedded jump chain* of productive moves — the object the paper's
// analysis is actually phrased over (Theorem 1, Lemmas 15–16).
//
// Each Step advances the run by one whole block of activations ending in
// a move:
//
//   - with W = Σ_v v·count[v]·C(v−1) the live move weight maintained by
//     the Config's level index, the probability that one activation moves
//     is p = W/(m·n), so the block length is Geometric(p);
//   - the elapsed time over k activations is the sum of k Exp(m) gaps,
//     i.e. a Gamma(k, m) (Erlang) variate, drawn in O(1);
//   - the productive (src, dst) pair is sampled exactly from the jump
//     chain's law: src level ∝ v·count[v]·C(v−1), dst level ∝ count[w]
//     for w ≤ v−1, uniform bins within each level.
//
// The induced law on (time, activations, configuration) at every *move*
// is identical to the direct engine's; only the per-activation trajectory
// between moves is not materialized. Stop conditions that depend solely
// on the configuration (UntilPerfect, UntilBalanced) therefore see
// exactly the same balancing-time distribution — experiment A4 KS-tests
// this — while time- or activation-count conditions are checked at move
// granularity and may overshoot by one block.
//
// Cost: O(log Δ) per move instead of O(1) per activation — near balance,
// where the direct engine wastes ~m·n/W activations per move, this is
// the difference between O(moves) and O(activations) for a whole run.
//
// Churn (AddBall/RemoveBall), ForceMove, and PostMove hooks work as in
// the direct engine; there is no activation sampler because no individual
// activation is ever drawn.
func NewJumpEngine(initial loadvec.Vector, r *rng.RNG) *Engine {
	if r == nil {
		panic("sim: NewJumpEngine with nil RNG")
	}
	cfg := loadvec.NewConfig(initial)
	cfg.EnableLevelIndex()
	return &Engine{cfg: cfg, r: r, jump: true}
}

// NewStrictJumpEngine builds a rejection-free engine for strict-tie RLS
// on the complete topology: a ball moves only if the destination is at
// least two below its source (§7's ">" rule, after [11, 12]). The block
// structure is identical to NewJumpEngine; only the move weight changes
// to W' = Σ_v v·count[v]·C(v−2) — the strict level index shifts the
// eligible-destination prefix by one level, and pair sampling and churn
// updates shift with it. W' = 0 exactly when max−min ≤ 1, i.e. at
// perfect balance, so UntilPerfect never stalls on a flat-weight state.
// Experiment A7 KS-tests the balancing-time law against the strict
// direct engine.
func NewStrictJumpEngine(initial loadvec.Vector, r *rng.RNG) *Engine {
	if r == nil {
		panic("sim: NewStrictJumpEngine with nil RNG")
	}
	cfg := loadvec.NewConfig(initial)
	cfg.EnableStrictLevelIndex()
	return &Engine{cfg: cfg, r: r, jump: true}
}

// Jump reports whether the engine runs in rejection-free jump mode.
func (e *Engine) Jump() bool { return e.jump }

// stepJump performs one jump-chain transition: a geometric block of null
// activations, its Erlang time gap, and the move that ends it. When no
// productive move exists (W = 0: all loads equal under the plain rule,
// max−min ≤ 1 under the strict rule, all neighbor pairs level on a
// graph) it falls back to a single null activation so time-targeted runs
// still advance.
//
// With a horizon set (SetHorizon), a block whose closing move would land
// beyond it is truncated exactly: the number of activations in the
// remaining window, conditioned on no move occurring there, is
// Poisson(m·(1−p)·(T−t)) by thinning — the null stream is a Poisson
// process of rate m·(1−p) independent of the move stream — and the clock
// lands on T itself. The drawn (k, gap) pair is discarded wholesale; by
// memorylessness the process after T restarts fresh, so continuing runs
// (Session) see the exact law.
func (e *Engine) stepJump() bool {
	m := float64(e.cfg.M())
	// The move weight and the per-activation denominator depend on the
	// variant: on the complete topology an activation proposes one of n
	// bins (p = W/(m·n), W from the level index, plain or strict gap); on
	// a Δ-regular graph it proposes one of Δ neighbor slots
	// (p = W_G/(m·Δ), W_G from the graph index).
	var w int64
	var denom float64
	if e.gidx != nil {
		w = e.gidx.weight()
		denom = float64(e.gidx.degree())
	} else {
		w = e.cfg.MoveWeight()
		denom = float64(e.cfg.N())
	}
	h := e.horizon
	if w == 0 {
		if h > 0 && e.time < h {
			// Flat configuration: every activation up to the horizon is null.
			// Tally them in one Poisson draw and land exactly on the horizon.
			e.activations += e.r.Poisson(m * (h - e.time))
			e.time = h
			return false
		}
		e.time += e.r.Exp(m)
		e.activations++
		return false
	}
	p := float64(w) / (m * denom)
	k := e.r.Geometric(p)
	gap := e.r.Erlang(k, m)
	if h > 0 && e.time < h && e.time+gap > h {
		e.activations += e.r.Poisson(m * (1 - p) * (h - e.time))
		e.time = h
		return false
	}
	e.time += gap
	e.activations += k
	var src, dst int
	if e.gidx != nil {
		var ok bool
		src, dst, ok = e.gidx.event(e.cfg, e.r)
		if !ok {
			// A rejection sampler's flagged activation drew an inadmissible
			// slot: the block's clock and activation advance stand (the flag
			// stream, not the move stream, has rate w/(m·Δ)), but the
			// activation is null — no move, and the sampler has already
			// tightened its bound for the sampled source.
			return false
		}
	} else {
		src, dst = e.cfg.SampleMovePair(e.r)
	}
	e.cfg.Move(src, dst)
	if e.gidx != nil {
		e.gidx.update(e.cfg, src, dst)
	}
	e.moves++
	if e.PostMove != nil {
		e.PostMove(e, src, dst)
	}
	return true
}

package sim

import (
	"math/bits"

	"repro/internal/fenwick"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// This file is the dense-degree half of the graph jump engine: a
// rejection-within-blocks sampler that replaces the exact admissible
// index (jumpgraph.go) when Δ_G is large. Both implementations sit behind
// graphSampler, and jump.go's block loop is written against that
// interface alone.

// graphSampler is the move-weight structure behind the graph jump engine.
// Two implementations exist: graphIndex keeps the exact move weight W_G
// (every eventful activation is a move), graphHybrid keeps an upper bound
// Ŵ_G ≥ W_G (an eventful activation may still be null). jump.go only
// needs the weight for block sizing, the degree for the per-activation
// denominator, and the two state-change entry points.
type graphSampler interface {
	// topology returns the graph the sampler was built over (shape, used
	// by persist to rebuild after a restore).
	topology() Topology
	// weight returns the current block-ending weight: W_G exactly, or the
	// bound Ŵ_G. Zero means no activation needs to be materialized.
	weight() int64
	// degree returns the uniform degree Δ.
	degree() int
	// event resolves one eventful activation, drawn with probability
	// weight()/(m·Δ) per activation: the (src, dst) move it produces, or
	// ok=false when a rejection sampler's flagged activation turned out
	// inadmissible (a real null — the caller has already advanced time
	// and the activation counter; no move happens). The caller guarantees
	// weight() > 0 and, on ok=true, must apply the move and then call
	// update(cfg, src, dst).
	event(cfg *loadvec.Config, r *rng.RNG) (src, dst int, ok bool)
	// update refreshes the sampler after the loads of the given bins
	// changed (a move's endpoints, or one churn bin).
	update(cfg *loadvec.Config, bins ...int)
}

// GraphSamplerMode selects which graphSampler a graph jump engine uses.
// The choice changes the constants, never the law: A8 KS-gates both
// against the direct engine, and the differential harness cross-checks
// them against each other on every bounded-degree topology.
type GraphSamplerMode int

const (
	// GraphSamplerAuto picks exact for Δ_G ≤ GraphSamplerThreshold(n) and
	// rejection above it — a pure function of (Δ_G, n), so fixed-seed runs
	// reproduce exactly and snapshots resume onto the same sampler.
	GraphSamplerAuto GraphSamplerMode = iota
	// GraphSamplerExact forces the per-source admissible index.
	GraphSamplerExact
	// GraphSamplerRejection forces rejection-within-blocks.
	GraphSamplerRejection
)

// String implements fmt.Stringer ("auto", "exact", "rejection").
func (m GraphSamplerMode) String() string {
	switch m {
	case GraphSamplerExact:
		return "exact"
	case GraphSamplerRejection:
		return "rejection"
	default:
		return "auto"
	}
}

// GraphSamplerThreshold is the auto-mode cutoff: exact up to
// max(8, ⌈log₂ n⌉+1) so every bounded-degree family in the catalogue —
// ring (2), torus (4), expander (8), hypercube (log₂ n) — keeps the
// exact index and its byte-identical goldens, while random d-regular
// graphs with superconstant d go to rejection. The crossover tracks the
// cost split: exact pays O(Δ²) per move, rejection O(Δ·log n) — equal
// ground near Δ ≈ log n.
func GraphSamplerThreshold(n int) int {
	t := bits.Len(uint(n))
	if t < 8 {
		t = 8
	}
	return t
}

// ResolveGraphSampler collapses a mode to the concrete sampler choice
// for a Δ-regular topology on n bins. Exposed so tests and tooling can
// pin what auto selects without constructing an engine.
func ResolveGraphSampler(mode GraphSamplerMode, deg, n int) GraphSamplerMode {
	if mode == GraphSamplerExact || mode == GraphSamplerRejection {
		return mode
	}
	if deg <= GraphSamplerThreshold(n) {
		return GraphSamplerExact
	}
	return GraphSamplerRejection
}

// graphHybrid is the rejection-within-blocks sampler. Instead of the
// exact admissible count adm[i] it maintains a lazy per-source upper
// bound admUB[i] with the invariant
//
//	adm(i) ≤ admUB[i] ≤ Δ,
//
// and a bin-indexed Fenwick tree over ŵ_i = load(i)·admUB[i], whose
// total Ŵ_G ≥ W_G upper-bounds the move weight. Blocks are sized
// Geometric(p̂) with p̂ = Ŵ_G/(m·Δ): by thinning, flag each activation
// (uniform ball in bin i, uniform slot t of Δ) with probability
// admUB[i]/Δ — the flagged stream has exactly rate p̂ per activation and
// the true move stream is a subset of it. An eventful activation then
// draws a source ∝ load·admUB and a uniform flag-slot index
// u ∈ [0, admUB); one O(Δ) scan of the source's slots computes the exact
// adm and accepts iff u < adm, in which case u indexes a uniform
// admissible slot — the accepted law is (src, slot) ∝ load·[admissible],
// identical to graphIndex, and the acceptance odds are adm/admUB, i.e.
// expected Ŵ_G/W_G flagged events per move. A rejection is a real null
// activation, and it pays for itself: the scan's exact count tightens
// admUB[src] ← adm(src), so sources that keep rejecting stop being
// flagged — the lazy refresh that keeps the end-game (where W_G → 0 but
// stale bounds linger) from degenerating.
//
// Soundness of the bound under load changes, maintained by update:
//
//   - bin b's own load changed: recompute admUB[b] = adm(b) exactly (one
//     O(Δ) scan — both growth and shrinkage of adm(b) are possible);
//   - load(b) decreased: each neighbor j gains at most one admissible
//     slot per (j→b) edge, so bump admUB[j] by the incident multiplicity
//     (capped at Δ) — no scan of j needed;
//   - load(b) increased: neighbors only lose admissible slots; their
//     bounds stay valid untouched.
//
// A move or churn event therefore costs O(Δ·log n) (Δ Fenwick point
// updates) against the exact index's O(Δ² + Δ·log n) — the win that
// matters when Δ is superconstant. Detecting the direction needs the
// previous loads, so the sampler mirrors them (derived state: rebuilt,
// never serialized; admUB is history-dependent and ships verbatim).
type graphHybrid struct {
	g     Topology
	deg   int
	loads []int32       // mirror of cfg loads, for change-direction detection
	admUB []int32       // lazy admissible upper bound per bin
	wval  []int64       // current ŵ_i = load(i)·admUB[i]
	wt    *fenwick.Tree // Fenwick over wval
	total int64         // Ŵ_G
}

// newGraphHybrid builds the sampler with exact initial bounds
// (admUB = adm), the tightest start; bounds loosen only as updates bump
// neighbors and tighten again on rejection.
func newGraphHybrid(cfg *loadvec.Config, g Topology) *graphHybrid {
	n := cfg.N()
	gh := &graphHybrid{
		g:     g,
		deg:   regularTopologyDegree(cfg, g),
		loads: make([]int32, n),
		admUB: make([]int32, n),
		wval:  make([]int64, n),
		wt:    fenwick.New(n),
	}
	for i := 0; i < n; i++ {
		gh.loads[i] = int32(cfg.Load(i))
		gh.setUB(i, gh.exactAdm(cfg, i))
	}
	return gh
}

// exactAdm scans bin i's slots against the live loads.
func (gh *graphHybrid) exactAdm(cfg *loadvec.Config, i int) int32 {
	li := cfg.Load(i)
	a := int32(0)
	for k := 0; k < gh.deg; k++ {
		if cfg.Load(gh.g.Neighbor(i, k)) <= li-1 {
			a++
		}
	}
	return a
}

// setUB installs a new upper bound for bin i and applies the ŵ_i weight
// difference as a Fenwick point update, using the mirrored load.
func (gh *graphHybrid) setUB(i int, ub int32) {
	if ub > int32(gh.deg) {
		ub = int32(gh.deg)
	}
	gh.admUB[i] = ub
	w := int64(gh.loads[i]) * int64(ub)
	if d := w - gh.wval[i]; d != 0 {
		gh.wt.Add(i, d)
		gh.wval[i] = w
		gh.total += d
	}
}

func (gh *graphHybrid) topology() Topology { return gh.g }
func (gh *graphHybrid) weight() int64      { return gh.total }
func (gh *graphHybrid) degree() int        { return gh.deg }

// event resolves one flagged activation: source ∝ load·admUB, flag-slot
// index u uniform over [0, admUB), accepted iff u < adm with the u-th
// admissible slot as destination. The caller guarantees total > 0.
func (gh *graphHybrid) event(cfg *loadvec.Config, r *rng.RNG) (int, int, bool) {
	i, rem := gh.wt.Find(r.Int63n(gh.total))
	// rem is uniform over [0, load(i)·admUB[i]); folding out the ball
	// multiplicity leaves a uniform flag-slot index.
	u := int32(rem % int64(gh.admUB[i]))
	li := cfg.Load(i)
	a := int32(0)
	dst := -1
	for k := 0; k < gh.deg; k++ {
		nb := gh.g.Neighbor(i, k)
		if cfg.Load(nb) <= li-1 {
			if a == u {
				dst = nb
			}
			a++
		}
	}
	if dst >= 0 {
		return i, dst, true
	}
	// Rejected (u ≥ adm): a real null activation. The scan's exact count
	// is free — tighten the bound so this source stops over-flagging.
	gh.setUB(i, a)
	return i, -1, false
}

// update refreshes the sampler after the given bins' loads changed; see
// the type comment for the soundness argument.
func (gh *graphHybrid) update(cfg *loadvec.Config, bins ...int) {
	for _, b := range bins {
		nl := int32(cfg.Load(b))
		decreased := nl < gh.loads[b]
		gh.loads[b] = nl
		gh.setUB(b, gh.exactAdm(cfg, b))
		if decreased {
			for k := 0; k < gh.deg; k++ {
				nb := gh.g.Neighbor(b, k)
				if nb != b && gh.admUB[nb] < int32(gh.deg) {
					gh.setUB(nb, gh.admUB[nb]+1)
				}
			}
		}
	}
}

// regularTopologyDegree validates that g covers exactly the
// configuration's bins and is regular with degree ≥ 1, panicking
// otherwise — regularity is what makes the per-activation event
// probability a single ratio weight/(m·Δ).
func regularTopologyDegree(cfg *loadvec.Config, g Topology) int {
	n := cfg.N()
	if g.N() != n {
		panic("sim: graph jump engine needs a topology over exactly the configuration's bins")
	}
	deg := g.Degree(0)
	if deg < 1 {
		panic("sim: graph jump engine needs a regular topology with degree >= 1")
	}
	for i := 1; i < n; i++ {
		if g.Degree(i) != deg {
			panic("sim: graph jump engine needs a regular topology")
		}
	}
	return deg
}

// NewGraphJumpEngineMode builds a graph jump engine with an explicit
// sampler mode; NewGraphJumpEngine is this with GraphSamplerAuto. The
// resolved choice (ResolveGraphSampler) decides between the exact
// admissible index and the rejection-within-blocks sampler; either way
// the engine simulates the same embedded jump chain, so the balancing
// law matches the direct engine's — only the cost model differs.
func NewGraphJumpEngineMode(initial loadvec.Vector, g Topology, mode GraphSamplerMode, r *rng.RNG) *Engine {
	if r == nil {
		panic("sim: NewGraphJumpEngine with nil RNG")
	}
	if g == nil {
		panic("sim: NewGraphJumpEngine with nil topology")
	}
	cfg := loadvec.NewConfig(initial)
	// The level index serves RandomBin (session churn) and stays the
	// uniform-ball sampler; the graph sampler owns the move weight.
	cfg.EnableLevelIndex()
	e := &Engine{cfg: cfg, r: r, jump: true}
	deg := regularTopologyDegree(cfg, g)
	if ResolveGraphSampler(mode, deg, cfg.N()) == GraphSamplerRejection {
		e.gidx = newGraphHybrid(cfg, g)
	} else {
		e.gidx = newGraphIndex(cfg, g)
	}
	return e
}

package sim

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// skewedVector concentrates m balls on the first `hot` bins of n, the
// shape that makes a static contiguous partition maximally unfair: the
// first shard owns nearly all the event mass.
func skewedVector(n, m, hot int, r *rng.RNG) loadvec.Vector {
	v := make(loadvec.Vector, n)
	for i := 0; i < m; i++ {
		v[r.Intn(hot)]++
	}
	return v
}

// checkAgainstRebuild asserts, at a barrier, that every piece of
// shard-local state — Config histograms, samplers or level indexes, the
// stale snapshot, and the external census — is identical to a from-scratch
// rebuild from the live loads under the live cuts. This is the
// repartition analogue of TestShardedJumpIncrementalReconciliation: if
// migration mislays a bin, a ball, a bucket position, or an external
// prefix, some rebuilt quantity disagrees.
func checkAgainstRebuild(t *testing.T, s *Sharded, barriers int) {
	t.Helper()
	live := s.Snapshot()
	cuts := s.Cuts()
	if err := loadvec.ValidateCuts(cuts, s.N()); err != nil {
		t.Fatalf("barrier %d: %v", barriers, err)
	}
	for i, sh := range s.shards {
		if sh.lo != cuts[i] || sh.hi != cuts[i+1] {
			t.Fatalf("barrier %d shard %d: range [%d,%d) vs cuts %v", barriers, i, sh.lo, sh.hi, cuts)
		}
		fresh := loadvec.NewConfig(live[sh.lo:sh.hi])
		if sh.cfg.M() != fresh.M() || sh.cfg.Min() != fresh.Min() || sh.cfg.Max() != fresh.Max() {
			t.Fatalf("barrier %d shard %d: stats (%d,%d,%d) vs rebuild (%d,%d,%d)",
				barriers, i, sh.cfg.M(), sh.cfg.Min(), sh.cfg.Max(), fresh.M(), fresh.Min(), fresh.Max())
		}
		for l := 0; l < sh.hi-sh.lo; l++ {
			if sh.cfg.Load(l) != fresh.Load(l) {
				t.Fatalf("barrier %d shard %d bin %d: load %d vs rebuild %d",
					barriers, i, l, sh.cfg.Load(l), fresh.Load(l))
			}
			if sh.smp != nil && sh.smp.Load(l) != sh.cfg.Load(l) {
				t.Fatalf("barrier %d shard %d bin %d: sampler %d vs config %d",
					barriers, i, l, sh.smp.Load(l), sh.cfg.Load(l))
			}
		}
		if err := sh.cfg.Validate(); err != nil {
			t.Fatalf("barrier %d shard %d: %v", barriers, i, err)
		}
		if s.jump {
			fresh.EnableLevelIndex()
			if sh.cfg.MoveWeight() != fresh.MoveWeight() {
				t.Fatalf("barrier %d shard %d: W %d vs rebuild %d",
					barriers, i, sh.cfg.MoveWeight(), fresh.MoveWeight())
			}
		}
	}
	for bin := range live {
		if s.stale[bin] != live[bin] {
			t.Fatalf("barrier %d: stale[%d] = %d, live %d", barriers, bin, s.stale[bin], live[bin])
		}
	}
	if s.jump && s.ext != nil {
		if err := s.ext.Validate(s.stale); err != nil {
			t.Fatalf("barrier %d: %v", barriers, err)
		}
		freshExt := loadvec.NewStaleIndexCuts(s.stale, cuts)
		for _, sh := range s.shards {
			for w := -1; w <= s.ext.Levels()+1; w++ {
				if got, want := s.ext.External(sh.id, w), freshExt.External(sh.id, w); got != want {
					t.Fatalf("barrier %d shard %d: External(%d) = %d, rebuild says %d",
						barriers, sh.id, w, got, want)
				}
			}
		}
	}
}

// TestRepartitionPropertyPlain interleaves epochs, churn, and repartition
// barriers on the plain sharded engine from a skewed start, asserting at
// every barrier that migrated state equals a from-scratch rebuild — and
// that repartitioning actually fired, so the property is not vacuous.
func TestRepartitionPropertyPlain(t *testing.T) {
	const n, m, p = 48, 400, 4
	r := rng.New(17)
	s := NewSharded(skewedVector(n, m, 6, r), p, 0.02, r)

	barriers := 0
	s.PostCheck = func(s *Sharded) {
		barriers++
		checkAgainstRebuild(t, s, barriers)
	}
	churn := rng.New(71)
	for round := 0; round < 30; round++ {
		for i := 0; i < 4; i++ {
			s.AddBall(churn.Intn(6)) // keep re-skewing toward the hot range
			if s.M() > 1 {
				s.RemoveBall(s.RandomBin())
			}
		}
		end := s.Time() + 0.2
		s.Run(ShardedUntilTime(end), 0)
	}
	if barriers < 50 {
		t.Fatalf("only %d barriers checked", barriers)
	}
	if s.Repartitions() == 0 {
		t.Fatal("skewed run never repartitioned — the property test is vacuous")
	}
}

// TestRepartitionPropertyJump is the jump-mode variant: migration must
// additionally rebuild level indexes, dirty journals, and the external
// census consistently.
func TestRepartitionPropertyJump(t *testing.T) {
	const n, m, p = 48, 400, 4
	r := rng.New(29)
	s := NewShardedJump(skewedVector(n, m, 6, r), p, 0.02, r)

	barriers := 0
	s.PostCheck = func(s *Sharded) {
		if s.ext == nil {
			return
		}
		barriers++
		checkAgainstRebuild(t, s, barriers)
	}
	churn := rng.New(72)
	for round := 0; round < 30; round++ {
		for i := 0; i < 4; i++ {
			s.AddBall(churn.Intn(6))
			if s.M() > 1 {
				s.RemoveBall(s.RandomBin())
			}
		}
		end := s.Time() + 0.2
		s.SetHorizon(end)
		s.Run(ShardedUntilTime(end), 0)
		s.SetHorizon(0)
	}
	if barriers < 50 {
		t.Fatalf("only %d barriers checked", barriers)
	}
	if s.Repartitions() == 0 {
		t.Fatal("skewed run never repartitioned — the property test is vacuous")
	}
}

// TestRepartitionDeterministic pins the acceptance invariant: a fixed
// (seed, P) reproduces a repartitioned run exactly — same trajectory,
// same cuts, same repartition count.
func TestRepartitionDeterministic(t *testing.T) {
	for _, jump := range []bool{false, true} {
		mk := func() *Sharded {
			// Fixed fine epochs: plenty of barriers before balance, so the
			// skewed start reliably trips the repartition trigger.
			r := rng.New(55)
			v := skewedVector(64, 600, 8, r)
			if jump {
				return NewShardedJump(v, 4, 0.02, r)
			}
			return NewSharded(v, 4, 0.02, r)
		}
		a, b := mk(), mk()
		ra := a.Run(ShardedUntilPerfect(), 20_000_000)
		rb := b.Run(ShardedUntilPerfect(), 20_000_000)
		if ra.Time != rb.Time || ra.Activations != rb.Activations || ra.Moves != rb.Moves {
			t.Fatalf("jump=%v: runs diverged: %+v vs %+v", jump, ra, rb)
		}
		for i := range ra.Final {
			if ra.Final[i] != rb.Final[i] {
				t.Fatalf("jump=%v: final vectors diverge at bin %d", jump, i)
			}
		}
		if a.Repartitions() != b.Repartitions() {
			t.Fatalf("jump=%v: repartition counts diverge: %d vs %d",
				jump, a.Repartitions(), b.Repartitions())
		}
		ca, cb := a.Cuts(), b.Cuts()
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("jump=%v: cuts diverge: %v vs %v", jump, ca, cb)
			}
		}
		if a.Repartitions() == 0 {
			t.Fatalf("jump=%v: skewed run never repartitioned — determinism untested", jump)
		}
	}
}

// TestRepartitionDisabled pins the opt-out: with the policy off the cuts
// stay canonical for the whole run.
func TestRepartitionDisabled(t *testing.T) {
	r := rng.New(13)
	s := NewSharded(skewedVector(48, 400, 6, r), 4, 0, r)
	s.SetRepartition(false)
	s.Run(ShardedUntilPerfect(), 20_000_000)
	if s.Repartitions() != 0 {
		t.Fatalf("disabled policy repartitioned %d times", s.Repartitions())
	}
	want := loadvec.Cuts(48, 4)
	got := s.Cuts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cuts moved with the policy disabled: %v", got)
		}
	}
}

// TestShardedEpochSteadyStateAllocFree asserts tentpole (c): after warmup
// (worker pool running, outboxes grown, scratch sized), epochs allocate
// nothing. A long Run pays only its fixed setup — pool spawn, result
// assembly — so total allocations stay bounded by a small constant
// regardless of the epoch count; per-epoch allocations would show up as
// hundreds here. Repartitioning is disabled: a migration is a deliberate
// O(n) policy event (it rebuilds the moved shards), not part of the epoch
// loop under test.
func TestShardedEpochSteadyStateAllocFree(t *testing.T) {
	for _, jump := range []bool{false, true} {
		r := rng.New(3)
		v := loadvec.OneChoice().Generate(256, 4096, r)
		var s *Sharded
		if jump {
			s = NewShardedJump(v, 4, 0.01, r)
		} else {
			s = NewSharded(v, 4, 0.01, r)
		}
		s.SetRepartition(false)
		s.Run(ShardedUntilTime(0.5), 0) // warmup: grow outboxes, build census
		start := s.Time()
		allocs := testing.AllocsPerRun(1, func() {
			end := s.Time() + 2.0
			s.Run(ShardedUntilTime(end), 0)
		})
		epochs := (s.Time() - start) / s.dt
		// Fixed per-Run setup (pool, channels, Result/Snapshot) is ~20
		// allocations; 200 epochs at even one alloc each would blow past it.
		if allocs > 60 {
			t.Fatalf("jump=%v: %0.f allocations over a ~%0.f-epoch run — the epoch loop is allocating",
				jump, allocs, epochs)
		}
	}
}

// BenchmarkShardedEpochSteadyState measures the parallel epoch loop in
// isolation — the worker pool is started once and each iteration is
// exactly one epoch plus its barrier — so allocs/op is the tracked
// 0-allocation assertion of the batched hot loop and ns/op is the epoch
// floor (dispatch, batched draws, barrier phases, reconcile).
// Repartitioning is off for the same reason as in the alloc test: a
// migration is a policy event, not epoch-loop cost.
func BenchmarkShardedEpochSteadyState(b *testing.B) {
	for _, mode := range []string{"plain", "jump"} {
		b.Run(mode, func(b *testing.B) {
			r := rng.New(3)
			v := loadvec.OneChoice().Generate(256, 4096, r)
			var s *Sharded
			if mode == "jump" {
				s = NewShardedJump(v, 4, 0.01, r)
			} else {
				s = NewSharded(v, 4, 0.01, r)
			}
			s.SetRepartition(false)
			s.Run(ShardedUntilTime(0.5), 0) // warmup: scratch grown, census built
			s.startWorkers()
			defer s.stopWorkers()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.runEpochParallel()
			}
		})
	}
}

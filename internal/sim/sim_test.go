package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/stats"
)

// rlsRule is a local copy of the RLS decision rule for engine tests (the
// real protocol lives in internal/core; sim must not depend on it).
type rlsRule struct{}

func (rlsRule) Decide(cfg *loadvec.Config, src int, r *rng.RNG) (int, bool) {
	dst := r.Intn(cfg.N())
	return dst, cfg.Load(src) >= cfg.Load(dst)+1
}
func (rlsRule) Name() string { return "rls-test" }

// neverMove is a protocol that never moves, for time-accounting tests.
type neverMove struct{}

func (neverMove) Decide(*loadvec.Config, int, *rng.RNG) (int, bool) { return 0, false }
func (neverMove) Name() string                                      { return "never" }

func samplers() []ActivationSampler {
	return []ActivationSampler{NewBallList(), NewFenwick()}
}

func TestSamplerLoadsMatchVector(t *testing.T) {
	v := loadvec.Vector{3, 0, 5, 1}
	for _, s := range samplers() {
		s.Reset(v)
		for i, want := range v {
			var got int
			switch ss := s.(type) {
			case *BallList:
				got = ss.Load(i)
			case *Fenwick:
				got = ss.Load(i)
			}
			if got != want {
				t.Errorf("%s: bin %d load = %d, want %d", s.Name(), i, got, want)
			}
		}
	}
}

func TestSamplerFrequenciesProportionalToLoad(t *testing.T) {
	v := loadvec.Vector{1, 0, 3, 6} // m = 10
	r := rng.New(42)
	const draws = 100000
	for _, s := range samplers() {
		s.Reset(v)
		counts := make([]int, len(v))
		for i := 0; i < draws; i++ {
			counts[s.Sample(r)]++
		}
		for i, load := range v {
			want := float64(draws) * float64(load) / 10
			se := math.Sqrt(want + 1)
			if math.Abs(float64(counts[i])-want) > 6*se {
				t.Errorf("%s: bin %d sampled %d times, want ~%g", s.Name(), i, counts[i], want)
			}
		}
	}
}

func TestSamplerMoveBall(t *testing.T) {
	for _, s := range samplers() {
		s.Reset(loadvec.Vector{2, 0})
		s.MoveBall(0, 1)
		s.MoveBall(0, 1)
		var l0, l1 int
		switch ss := s.(type) {
		case *BallList:
			l0, l1 = ss.Load(0), ss.Load(1)
		case *Fenwick:
			l0, l1 = ss.Load(0), ss.Load(1)
		}
		if l0 != 0 || l1 != 2 {
			t.Errorf("%s: loads after moves = (%d,%d), want (0,2)", s.Name(), l0, l1)
		}
	}
}

func TestBallListMoveFromEmptyPanics(t *testing.T) {
	s := NewBallList()
	s.Reset(loadvec.Vector{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.MoveBall(0, 1)
}

func TestFenwickMatchesNaivePrefixSums(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		v := make(loadvec.Vector, n)
		for i := range v {
			v[i] = r.Intn(8)
		}
		if v.Balls() == 0 {
			v[0] = 1
		}
		f := NewFenwick()
		f.Reset(v)
		// Random moves, then compare all per-bin loads.
		for step := 0; step < 50; step++ {
			src := r.Intn(n)
			if v[src] == 0 {
				continue
			}
			dst := r.Intn(n)
			if dst == src {
				continue
			}
			v[src]--
			v[dst]++
			f.MoveBall(src, dst)
		}
		for i := range v {
			if f.Load(i) != v[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFenwickSampleExhaustive(t *testing.T) {
	// With every ball enumerated by its uniform index, Fenwick descend
	// must return each bin exactly load-many times. Exercise via a
	// deterministic sweep: temporarily emulate by checking distribution
	// counts exactly through prefix arithmetic.
	v := loadvec.Vector{2, 0, 1, 4}
	f := NewFenwick()
	f.Reset(v)
	// prefix boundaries: bin0 covers k∈{0,1}, bin2 covers {2}, bin3 {3..6}.
	// We can't inject k directly, so instead check Load and total.
	total := 0
	for i := range v {
		total += f.Load(i)
	}
	if total != v.Balls() {
		t.Fatalf("total = %d, want %d", total, v.Balls())
	}
}

func TestEngineTimeAccounting(t *testing.T) {
	// With m balls, time after k activations is a sum of k Exp(m) gaps:
	// mean k/m.
	const m = 50
	const k = 20000
	v := loadvec.Vector{m}
	e := NewEngine(v, neverMove{}, nil, rng.New(7))
	res := e.Run(UntilActivations(k), 2*k)
	if res.Activations != k {
		t.Fatalf("activations = %d", res.Activations)
	}
	want := float64(k) / m
	if math.Abs(res.Time-want) > 0.05*want {
		t.Errorf("time = %g, want ~%g", res.Time, want)
	}
	if res.Moves != 0 {
		t.Errorf("neverMove made %d moves", res.Moves)
	}
}

func TestEngineReachesPerfectBalance(t *testing.T) {
	for _, s := range samplers() {
		v := loadvec.AllInOne().Generate(16, 64, nil)
		e := NewEngine(v, rlsRule{}, s, rng.New(3))
		res := e.Run(UntilPerfect(), 1_000_000)
		if !res.Stopped {
			t.Fatalf("%s: did not reach perfect balance", s.Name())
		}
		if !res.Final.IsPerfect() {
			t.Fatalf("%s: final not perfect: %v", s.Name(), res.Final)
		}
		if res.Final.Balls() != 64 {
			t.Fatalf("%s: ball conservation violated", s.Name())
		}
	}
}

func TestEngineBallConservationUnderRun(t *testing.T) {
	v := loadvec.OneChoice().Generate(32, 200, rng.New(1))
	e := NewEngine(v, rlsRule{}, nil, rng.New(2))
	e.Run(UntilActivations(5000), 0)
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Cfg().M() != 200 {
		t.Fatalf("m = %d", e.Cfg().M())
	}
}

func TestEngineSamplerStaysInSync(t *testing.T) {
	v := loadvec.OneChoice().Generate(16, 100, rng.New(1))
	bl := NewBallList()
	e := NewEngine(v, rlsRule{}, bl, rng.New(2))
	for i := 0; i < 2000; i++ {
		e.Step()
	}
	for i := 0; i < e.Cfg().N(); i++ {
		if bl.Load(i) != e.Cfg().Load(i) {
			t.Fatalf("bin %d: sampler %d vs config %d", i, bl.Load(i), e.Cfg().Load(i))
		}
	}
}

func TestForceMoveKeepsSync(t *testing.T) {
	for _, s := range samplers() {
		v := loadvec.Vector{4, 4, 4}
		e := NewEngine(v, rlsRule{}, s, rng.New(9))
		e.ForceMove(1, 0) // destructive: stack upward
		e.ForceMove(2, 0)
		if e.Cfg().Load(0) != 6 {
			t.Fatalf("%s: load 0 = %d", s.Name(), e.Cfg().Load(0))
		}
		if e.ForcedMoves() != 2 {
			t.Fatalf("forced = %d", e.ForcedMoves())
		}
		// Run on and confirm no panic / desync.
		res := e.Run(UntilPerfect(), 100000)
		if !res.Stopped {
			t.Fatalf("%s: did not rebalance after forced moves", s.Name())
		}
	}
}

func TestPostMoveHookRuns(t *testing.T) {
	v := loadvec.AllInOne().Generate(8, 32, nil)
	e := NewEngine(v, rlsRule{}, nil, rng.New(4))
	calls := 0
	e.PostMove = func(_ *Engine, src, dst int) {
		calls++
		if src == dst {
			t.Error("hook got src == dst")
		}
	}
	e.Run(UntilPerfect(), 100000)
	if int64(calls) != e.Moves() {
		t.Fatalf("hook ran %d times for %d moves", calls, e.Moves())
	}
}

func TestRunTraced(t *testing.T) {
	v := loadvec.AllInOne().Generate(8, 64, nil)
	e := NewEngine(v, rlsRule{}, nil, rng.New(5))
	res, trace := e.RunTraced(UntilPerfect(), 100000, 10)
	if !res.Stopped {
		t.Fatal("did not stop")
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	if trace[0].Disc != 56 { // all-in-one: disc = m - m/n = 64 - 8
		t.Errorf("initial disc = %g, want 56", trace[0].Disc)
	}
	last := trace[len(trace)-1]
	if last.Disc >= 1 {
		t.Errorf("final disc = %g, want < 1", last.Disc)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Activations < trace[i-1].Activations {
			t.Fatal("trace activations not monotone")
		}
		if trace[i].Time < trace[i-1].Time {
			t.Fatal("trace time not monotone")
		}
	}
}

func TestStopConds(t *testing.T) {
	v := loadvec.Vector{10, 0}
	e := NewEngine(v, neverMove{}, nil, rng.New(6))
	if UntilPerfect()(e) {
		t.Error("UntilPerfect on disc 5")
	}
	if !UntilBalanced(5)(e) {
		t.Error("UntilBalanced(5) should hold at disc 5")
	}
	if UntilBalanced(4.9)(e) {
		t.Error("UntilBalanced(4.9) should not hold at disc 5")
	}
	if !UntilOverloadedAtMost(5)(e) || UntilOverloadedAtMost(4.9)(e) {
		t.Error("UntilOverloadedAtMost wrong")
	}
	if UntilTime(1)(e) {
		t.Error("UntilTime(1) at t=0")
	}
	if !UntilActivations(0)(e) {
		t.Error("UntilActivations(0) at start")
	}
	if !Any(Never(), UntilBalanced(5))(e) {
		t.Error("Any failed")
	}
	if All(Never(), UntilBalanced(5))(e) {
		t.Error("All failed")
	}
	if Never()(e) {
		t.Error("Never stopped")
	}
}

func TestRunRespectsActivationBudget(t *testing.T) {
	v := loadvec.Vector{10, 0}
	e := NewEngine(v, neverMove{}, nil, rng.New(8))
	res := e.Run(UntilPerfect(), 100)
	if res.Stopped {
		t.Error("neverMove cannot reach balance")
	}
	if res.Activations != 100 {
		t.Errorf("activations = %d, want 100", res.Activations)
	}
}

// Cross-validation (experiment A1 in miniature): both samplers produce
// statistically indistinguishable balancing times.
func TestSamplersAgreeDistributionally(t *testing.T) {
	const n, m, reps = 32, 128, 60
	collect := func(s func() ActivationSampler, seed uint64) []float64 {
		root := rng.New(seed)
		out := make([]float64, reps)
		for i := 0; i < reps; i++ {
			r := root.Split()
			v := loadvec.AllInOne().Generate(n, m, nil)
			e := NewEngine(v, rlsRule{}, s(), r)
			res := e.Run(UntilPerfect(), 10_000_000)
			out[i] = res.Time
		}
		return out
	}
	a := collect(func() ActivationSampler { return NewBallList() }, 100)
	b := collect(func() ActivationSampler { return NewFenwick() }, 200)
	var sa, sb stats.Summary
	sa.AddAll(a)
	sb.AddAll(b)
	// Means must agree within combined CI (generous 3x).
	diff := math.Abs(sa.Mean() - sb.Mean())
	tol := 3 * (sa.CI95() + sb.CI95())
	if diff > tol {
		t.Fatalf("sampler means differ: %v vs %v (diff %g > tol %g)", sa.Mean(), sb.Mean(), diff, tol)
	}
}

func TestNewEnginePanics(t *testing.T) {
	v := loadvec.Vector{1}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil RNG accepted")
			}
		}()
		NewEngine(v, rlsRule{}, nil, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil mover accepted")
			}
		}()
		NewEngine(v, nil, nil, rng.New(1))
	}()
}

func BenchmarkEngineStepBallList(b *testing.B) {
	benchEngineStep(b, NewBallList())
}

func BenchmarkEngineStepFenwick(b *testing.B) {
	benchEngineStep(b, NewFenwick())
}

func benchEngineStep(b *testing.B, s ActivationSampler) {
	v := loadvec.OneChoice().Generate(1024, 8192, rng.New(1))
	e := NewEngine(v, rlsRule{}, s, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

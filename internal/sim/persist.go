package sim

import (
	"fmt"

	"repro/internal/fenwick"
	"repro/internal/loadvec"
	"repro/internal/persist"
	"repro/internal/rng"
)

// This file is sim's half of the snapshot codec: the three activation
// samplers, the sequential Engine (all four protocol shapes: direct,
// jump, strict jump, graph jump), and the Sharded engine with its
// cross-shard census and repartition policy state.
//
// DecodeState methods decode *into* an engine of the matching shape —
// the root package's ResumeSession rebuilds the shape from the snapshot
// header (mode, shards, strict, topology) and then overwrites the
// engine's state, so movers, topologies, and worker pools never need to
// be serialized. Everything whose order evolved under simulation
// (sampler slots, heap order, level lists, RNG words) ships verbatim;
// everything derivable (Fenwick trees, graph index, folded stats) is
// rebuilt through the same code paths the live engine uses.

// Sampler type tags, written ahead of the sampler payload so a decode
// into an engine of the wrong shape fails loudly instead of misreading.
const (
	samplerNone = iota
	samplerBallList
	samplerFenwick
	samplerEventHeap
)

// Graph-sampler type tags (graph jump engines only), written ahead of
// the graph payload for the same loud-mismatch property. The exact index
// is a pure function of loads + topology and carries no payload; the
// rejection hybrid's lazy bounds admUB are history-dependent (they
// remember which sources were refreshed), so they ship verbatim — a
// resumed run must flag the same sources the uninterrupted run would.
const (
	graphNone = iota
	graphExact
	graphRejection
)

func encodeRNG(e *persist.Enc, r *rng.RNG) {
	st := r.State()
	for _, w := range st {
		e.U64(w)
	}
}

func decodeRNG(d *persist.Dec, r *rng.RNG) {
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	if d.Err() == nil {
		r.Restore(st)
	}
}

// encodeState writes the ball table verbatim: the dense id → bin and
// id → slot maps are the sampler's entire state, and the per-bin slot
// lists are their inverse.
func (b *BallList) encodeState(e *persist.Enc) {
	e.I32s(b.ballBin)
	e.I32s(b.pos)
}

// decodeState restores the table in place, rebuilding the per-bin lists
// from the verbatim position map and validating the bijection against
// the configuration's loads.
func (b *BallList) decodeState(d *persist.Dec, cfg *loadvec.Config) error {
	ballBin := d.I32s()
	pos := d.I32s()
	if d.Err() != nil {
		return d.Err()
	}
	n := cfg.N()
	if len(ballBin) != cfg.M() || len(pos) != len(ballBin) {
		return persist.Corruptf("ball list of %d/%d entries for %d balls", len(ballBin), len(pos), cfg.M())
	}
	bins := make([][]int32, n)
	for i := range bins {
		lst := make([]int32, cfg.Load(i))
		for j := range lst {
			lst[j] = -1
		}
		bins[i] = lst
	}
	for id, bin := range ballBin {
		if bin < 0 || int(bin) >= n {
			return persist.Corruptf("ball %d in bin %d of %d", id, bin, n)
		}
		p := pos[id]
		if p < 0 || int(p) >= len(bins[bin]) || bins[bin][p] != -1 {
			return persist.Corruptf("ball %d at invalid or duplicate slot %d of bin %d", id, p, bin)
		}
		bins[bin][p] = int32(id)
	}
	b.ballBin = ballBin
	b.pos = pos
	b.bins = bins
	return nil
}

// encodeState writes the tree's leaves; a Fenwick array is a pure
// function of them, so From(leaves) round-trips bit-exactly.
func (f *Fenwick) encodeState(e *persist.Enc) {
	e.Int(f.n)
	e.Int(f.m)
	e.I64s(f.t.Leaves())
}

func (f *Fenwick) decodeState(d *persist.Dec, cfg *loadvec.Config) error {
	n := d.Int()
	m := d.Int()
	leaves := d.I64s()
	if d.Err() != nil {
		return d.Err()
	}
	if n != cfg.N() || m != cfg.M() || len(leaves) != n {
		return persist.Corruptf("fenwick sampler shape %d/%d against config %d/%d", n, len(leaves), cfg.N(), cfg.M())
	}
	for i, v := range leaves {
		if v != int64(cfg.Load(i)) {
			return persist.Corruptf("fenwick sampler load %d at bin %d, config has %d", v, i, cfg.Load(i))
		}
	}
	f.n = n
	f.m = m
	f.t = fenwick.From(leaves)
	return nil
}

// encodeState writes the event heap verbatim, lazy clocks included: the
// heap slice in its array order (a valid heap stays a valid heap), the
// ball tables, the dead set, the sampler clock, the last-activated
// hint, and whether the initial rings have been seeded yet.
func (h *EventHeap) encodeState(e *persist.Enc) {
	e.I32s(h.ballBin)
	e.U64(uint64(len(h.bins)))
	for _, lst := range h.bins {
		e.I32s(lst)
	}
	e.Bools(h.dead)
	e.F64(h.now)
	e.Int(int(h.last))
	e.Bool(h.r != nil)
	e.U64(uint64(len(h.events)))
	for _, ev := range h.events {
		e.F64(ev.time)
		e.Int(int(ev.ball))
	}
}

// decodeState restores the heap in place. r becomes the heap's clock
// source iff the snapshot was taken after lazy seeding; otherwise the
// restored heap seeds itself on first use exactly like a fresh one.
func (h *EventHeap) decodeState(d *persist.Dec, cfg *loadvec.Config, r *rng.RNG) error {
	ballBin := d.I32s()
	nbins := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if nbins != cfg.N() {
		return persist.Corruptf("event heap over %d bins, config has %d", nbins, cfg.N())
	}
	bins := make([][]int32, nbins)
	for i := range bins {
		bins[i] = d.I32s()
	}
	dead := d.Bools()
	now := d.F64()
	last := d.Int()
	seeded := d.Bool()
	nev := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if len(dead) != len(ballBin) {
		return persist.Corruptf("event heap with %d balls but %d dead flags", len(ballBin), len(dead))
	}
	if len(ballBin) > 0 && (last < 0 || last >= len(ballBin)) {
		return persist.Corruptf("event heap last-ball hint %d of %d", last, len(ballBin))
	}
	live := 0
	seen := make([]bool, len(ballBin))
	for bin, lst := range bins {
		if len(lst) != cfg.Load(bin) {
			return persist.Corruptf("event heap holds %d balls in bin %d, config has %d", len(lst), bin, cfg.Load(bin))
		}
		for _, id := range lst {
			if id < 0 || int(id) >= len(ballBin) || seen[id] || dead[id] || int(ballBin[id]) != bin {
				return persist.Corruptf("event heap bin %d holds invalid ball %d", bin, id)
			}
			seen[id] = true
			live++
		}
	}
	if nev < 0 || nev > d.Remaining() {
		return persist.Corruptf("event heap with %d pending events in %d bytes", nev, d.Remaining())
	}
	events := make(eventQueue, nev)
	for i := range events {
		t := d.F64()
		ball := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if ball < 0 || ball >= len(ballBin) {
			return persist.Corruptf("event %d rings unknown ball %d", i, ball)
		}
		if i > 0 && t < events[(i-1)/2].time {
			return persist.Corruptf("event slice is not a heap at index %d", i)
		}
		events[i] = event{time: t, ball: int32(ball)}
	}
	if d.Err() != nil {
		return d.Err()
	}
	h.ballBin = ballBin
	h.bins = bins
	h.dead = dead
	h.now = now
	h.last = int32(last)
	h.events = events
	if seeded {
		h.r = r
	} else {
		h.r = nil
	}
	return nil
}

// EncodeState appends the engine's full state: configuration (+ level
// index), sampler, RNG words, clocks, and counters. The mover, graph
// topology, and PostMove hook are shape, not state — the decoder's
// engine supplies them.
func (e *Engine) EncodeState(enc *persist.Enc) {
	e.cfg.EncodeState(enc)
	switch s := e.sampler.(type) {
	case nil:
		enc.Int(samplerNone)
	case *BallList:
		enc.Int(samplerBallList)
		s.encodeState(enc)
	case *Fenwick:
		enc.Int(samplerFenwick)
		s.encodeState(enc)
	case *EventHeap:
		enc.Int(samplerEventHeap)
		s.encodeState(enc)
	default:
		panic(fmt.Sprintf("sim: sampler %s has no snapshot codec", e.sampler.Name()))
	}
	switch gx := e.gidx.(type) {
	case nil:
		enc.Int(graphNone)
	case *graphIndex:
		enc.Int(graphExact)
	case *graphHybrid:
		enc.Int(graphRejection)
		enc.I32s(gx.admUB)
	default:
		panic("sim: graph sampler has no snapshot codec")
	}
	encodeRNG(enc, e.r)
	enc.F64(e.time)
	enc.I64(e.activations)
	enc.I64(e.moves)
	enc.I64(e.forced)
	enc.F64(e.horizon)
}

// DecodeState restores a snapshot into an engine of the same shape
// (same mover, tie rule, topology, and sampler type), built by the
// caller. On any error the engine is left unmodified.
func (e *Engine) DecodeState(d *persist.Dec) error {
	cfg, err := loadvec.DecodeConfigState(d)
	if err != nil {
		return err
	}
	if cfg.N() != e.cfg.N() {
		return persist.Corruptf("snapshot over %d bins, engine has %d", cfg.N(), e.cfg.N())
	}
	if cfg.LevelIndexed() != e.cfg.LevelIndexed() ||
		(cfg.LevelIndexed() && cfg.TieGap() != e.cfg.TieGap()) {
		return persist.Corruptf("snapshot level-index shape does not match the engine")
	}
	tag := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	switch s := e.sampler.(type) {
	case nil:
		if tag != samplerNone {
			return persist.Corruptf("snapshot carries sampler tag %d, engine has none", tag)
		}
	case *BallList:
		if tag != samplerBallList {
			return persist.Corruptf("snapshot sampler tag %d, engine wants ball-list", tag)
		}
		if err := s.decodeState(d, cfg); err != nil {
			return err
		}
	case *Fenwick:
		if tag != samplerFenwick {
			return persist.Corruptf("snapshot sampler tag %d, engine wants fenwick", tag)
		}
		if err := s.decodeState(d, cfg); err != nil {
			return err
		}
	case *EventHeap:
		if tag != samplerEventHeap {
			return persist.Corruptf("snapshot sampler tag %d, engine wants event-heap", tag)
		}
		if err := s.decodeState(d, cfg, e.r); err != nil {
			return err
		}
	default:
		return persist.Corruptf("engine sampler %s has no snapshot codec", e.sampler.Name())
	}
	gtag := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	var admUB []int32
	switch e.gidx.(type) {
	case nil:
		if gtag != graphNone {
			return persist.Corruptf("snapshot carries graph sampler tag %d, engine has none", gtag)
		}
	case *graphIndex:
		if gtag != graphExact {
			return persist.Corruptf("snapshot graph sampler tag %d, engine wants exact", gtag)
		}
	case *graphHybrid:
		if gtag != graphRejection {
			return persist.Corruptf("snapshot graph sampler tag %d, engine wants rejection", gtag)
		}
		admUB = d.I32s()
	}
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	time := d.F64()
	acts := d.I64()
	moves := d.I64()
	forced := d.I64()
	horizon := d.F64()
	if d.Err() != nil {
		return d.Err()
	}
	// Rebuild the graph sampler over the restored configuration before
	// committing anything, so a corrupt payload leaves the engine intact.
	var gidx graphSampler
	switch gx := e.gidx.(type) {
	case *graphIndex:
		// The exact index is a deterministic function of the loads and the
		// topology; rebuild it outright.
		gidx = newGraphIndex(cfg, gx.g)
	case *graphHybrid:
		// The loads and topology are rebuilt; the lazy bounds are the
		// verbatim payload, validated against the invariant
		// adm(i) ≤ admUB[i] ≤ Δ they must satisfy.
		nh := newGraphHybrid(cfg, gx.g)
		if len(admUB) != cfg.N() {
			return persist.Corruptf("graph sampler bounds over %d bins, config has %d", len(admUB), cfg.N())
		}
		for i, ub := range admUB {
			if ub > int32(nh.deg) {
				return persist.Corruptf("graph sampler bound %d at bin %d exceeds degree %d", ub, i, nh.deg)
			}
			if ub < nh.admUB[i] { // fresh build has admUB = exact adm
				return persist.Corruptf("graph sampler bound %d at bin %d below the admissible count %d", ub, i, nh.admUB[i])
			}
		}
		for i, ub := range admUB {
			nh.setUB(i, ub)
		}
		gidx = nh
	}
	e.cfg = cfg
	e.gidx = gidx
	e.r.Restore(st)
	e.time, e.activations, e.moves, e.forced, e.horizon = time, acts, moves, forced, horizon
	return nil
}

// EncodeState appends the sharded engine's state at an epoch barrier:
// partition cuts, every shard's private engine state, the stale
// snapshot and (jump, P > 1) the external census, the repartition
// policy counters, and the folded clocks. Between Runs the transient
// machinery — outboxes, dirty journals, worker pool, epoch sizing — is
// structurally empty, so none of it is serialized.
func (s *Sharded) EncodeState(enc *persist.Enc) {
	enc.Int(s.n)
	enc.Int(s.p)
	enc.Bool(s.jump)
	enc.F64(s.epoch0)
	enc.Ints(s.cuts)
	encodeRNG(enc, s.root)
	enc.Ints(s.stale)
	enc.F64(s.time)
	enc.I64(s.acts)
	enc.I64(s.moves)
	enc.I64(s.crossProposed)
	enc.I64(s.crossApplied)
	enc.F64(s.horizon)
	enc.Bool(s.repartEnabled)
	enc.Int(s.repartWait)
	enc.Int(s.repartBackoff)
	enc.I64(s.repartitions)
	enc.Bool(s.ext != nil)
	if s.ext != nil {
		s.ext.EncodeState(enc)
	}
	for _, sh := range s.shards {
		enc.Int(sh.lo)
		enc.Int(sh.hi)
		encodeRNG(enc, sh.r)
		enc.F64(sh.t)
		enc.I64(sh.acts)
		enc.I64(sh.moves)
		enc.I64(sh.proposed)
		enc.I64(sh.landed)
		sh.cfg.EncodeState(enc)
		if !s.jump {
			sh.smp.encodeState(enc)
		}
	}
}

// DecodeState restores a snapshot into a sharded engine constructed
// with the same n, P, and mode. The restored cuts may differ from the
// constructor's (repartitioning moves them); shard ranges, scratch, and
// the external prefix closures are rebuilt accordingly, exactly as
// migrate does after a live repartition.
func (s *Sharded) DecodeState(d *persist.Dec) error {
	n := d.Int()
	p := d.Int()
	jump := d.Bool()
	epoch0 := d.F64()
	cuts := d.Ints()
	if d.Err() != nil {
		return d.Err()
	}
	if n != s.n || p != s.p || jump != s.jump {
		return persist.Corruptf("snapshot shape %d bins × %d shards (jump=%v), engine is %d × %d (jump=%v)",
			n, p, jump, s.n, s.p, s.jump)
	}
	if err := loadvec.ValidateCuts(cuts, n); err != nil {
		return persist.Corruptf("snapshot cuts: %v", err)
	}
	if len(cuts) != p+1 {
		return persist.Corruptf("snapshot has %d cuts for %d shards", len(cuts), p)
	}
	decodeRNG(d, s.root)
	stale := d.Ints()
	time := d.F64()
	acts := d.I64()
	moves := d.I64()
	crossProposed := d.I64()
	crossApplied := d.I64()
	horizon := d.F64()
	repartEnabled := d.Bool()
	repartWait := d.Int()
	repartBackoff := d.Int()
	repartitions := d.I64()
	hasExt := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if len(stale) != n {
		return persist.Corruptf("stale snapshot of %d bins, engine has %d", len(stale), n)
	}
	for i, l := range stale {
		if l < 0 {
			return persist.Corruptf("stale snapshot with negative load %d at bin %d", l, i)
		}
	}
	if repartBackoff < repartCheckBase || repartBackoff > repartCheckMax || repartWait < 0 {
		return persist.Corruptf("repartition counters wait=%d backoff=%d out of range", repartWait, repartBackoff)
	}
	var ext *loadvec.StaleIndex
	if hasExt {
		if !jump || p == 1 {
			return persist.Corruptf("external census present outside jump mode with P > 1")
		}
		var err error
		if ext, err = loadvec.DecodeStaleIndex(d); err != nil {
			return err
		}
		extCuts := ext.Cuts()
		if len(extCuts) != len(cuts) {
			return persist.Corruptf("census partition differs from the engine cuts")
		}
		for i := range cuts {
			if extCuts[i] != cuts[i] {
				return persist.Corruptf("census cut %d is %d, engine cut is %d", i, extCuts[i], cuts[i])
			}
		}
	}
	shCfg := make([]*loadvec.Config, p)
	type shardState struct {
		rngState                      [4]uint64
		t                             float64
		acts, moves, proposed, landed int64
	}
	states := make([]shardState, p)
	for i := 0; i < p; i++ {
		lo := d.Int()
		hi := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if lo != cuts[i] || hi != cuts[i+1] {
			return persist.Corruptf("shard %d range [%d,%d) disagrees with cuts [%d,%d)", i, lo, hi, cuts[i], cuts[i+1])
		}
		for j := range states[i].rngState {
			states[i].rngState[j] = d.U64()
		}
		states[i].t = d.F64()
		states[i].acts = d.I64()
		states[i].moves = d.I64()
		states[i].proposed = d.I64()
		states[i].landed = d.I64()
		cfg, err := loadvec.DecodeConfigState(d)
		if err != nil {
			return err
		}
		if cfg.N() != hi-lo {
			return persist.Corruptf("shard %d config over %d bins for range [%d,%d)", i, cfg.N(), lo, hi)
		}
		if jump {
			if !cfg.LevelIndexed() || cfg.TieGap() != 1 {
				return persist.Corruptf("shard %d config is not plain level-indexed in jump mode", i)
			}
		} else if cfg.LevelIndexed() {
			return persist.Corruptf("shard %d config carries a level index in plain mode", i)
		}
		shCfg[i] = cfg
		if !jump {
			if err := s.shards[i].smp.decodeState(d, cfg); err != nil {
				return err
			}
		}
	}
	if d.Err() != nil {
		return d.Err()
	}

	// All payload bytes validated — commit.
	s.epoch0 = epoch0
	copy(s.cuts, cuts)
	s.stale = stale
	s.time, s.acts, s.moves = time, acts, moves
	s.crossProposed, s.crossApplied = crossProposed, crossApplied
	s.horizon = horizon
	s.repartEnabled, s.repartWait, s.repartBackoff, s.repartitions = repartEnabled, repartWait, repartBackoff, repartitions
	s.ext = ext
	for i, sh := range s.shards {
		sh.lo, sh.hi = cuts[i], cuts[i+1]
		sh.r.Restore(states[i].rngState)
		sh.t = states[i].t
		sh.acts, sh.moves = states[i].acts, states[i].moves
		sh.proposed, sh.landed = states[i].proposed, states[i].landed
		sh.cfg = shCfg[i]
		s.cfgs[i] = shCfg[i]
		sh.out = sh.out[:0]
		if s.jump && s.p > 1 {
			sh.dirty = sh.dirty[:0]
			sh.dirtyMark = make([]bool, sh.hi-sh.lo)
		}
	}
	if s.ext != nil {
		for _, sh := range s.shards {
			id := sh.id
			sh.cfg.SetExternalPrefix(func(w int) int64 { return s.ext.External(id, w) })
		}
	}
	s.refold()
	return nil
}

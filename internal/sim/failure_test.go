package sim

// Failure-injection tests: the engine must fail loudly (panic with a
// traceable message) when a protocol misbehaves, rather than silently
// corrupting state, and must stay consistent after recoverable abuse.

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// brokenMover returns destinations outside [0, n).
type brokenMover struct{ dst int }

func (b brokenMover) Decide(*loadvec.Config, int, *rng.RNG) (int, bool) { return b.dst, true }
func (b brokenMover) Name() string                                      { return "broken" }

func TestEngineSurvivesOrPanicsOnOutOfRangeMover(t *testing.T) {
	// A mover returning an out-of-range destination must panic (index out
	// of range in the config) — never silently continue.
	v := loadvec.Vector{4, 4}
	e := NewEngine(v, brokenMover{dst: 99}, nil, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("engine accepted an out-of-range destination")
		}
	}()
	for i := 0; i < 10; i++ {
		e.Step()
	}
}

// emptySourceMover tries to move balls it does not have by lying about
// the decision after the engine already sampled a legitimate source.
// The engine samples sources itself, so the only way to trigger an
// empty-bin move is ForceMove abuse.
func TestForceMoveFromEmptyPanics(t *testing.T) {
	v := loadvec.Vector{0, 4}
	e := NewEngine(v, rlsRule{}, nil, rng.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("ForceMove from empty bin accepted")
		}
	}()
	e.ForceMove(0, 1)
}

func TestForceMoveSelfLoopPanics(t *testing.T) {
	v := loadvec.Vector{4, 4}
	e := NewEngine(v, rlsRule{}, nil, rng.New(3))
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop ForceMove accepted")
		}
	}()
	e.ForceMove(1, 1)
}

// selfMover always proposes the ball's own bin; RLS semantics say this
// can never succeed, and the engine must simply record failed
// activations forever without state change.
type selfMover struct{}

func (selfMover) Decide(_ *loadvec.Config, src int, _ *rng.RNG) (int, bool) { return src, true }
func (selfMover) Name() string                                              { return "self" }

func TestEngineIgnoresSelfMoves(t *testing.T) {
	v := loadvec.Vector{5, 3}
	e := NewEngine(v, selfMover{}, nil, rng.New(4))
	res := e.Run(UntilActivations(1000), 0)
	if res.Moves != 0 {
		t.Fatalf("self-moves recorded as moves: %d", res.Moves)
	}
	if !res.Final.Equal(v) {
		t.Fatal("state changed under self-moves")
	}
}

// A PostMove hook that panics must propagate (no silent swallowing).
func TestPostMovePanicPropagates(t *testing.T) {
	v := loadvec.AllInOne().Generate(4, 16, nil)
	e := NewEngine(v, rlsRule{}, nil, rng.New(5))
	e.PostMove = func(*Engine, int, int) { panic("hook failure") }
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("hook panic swallowed")
		}
	}()
	for i := 0; i < 1000; i++ {
		e.Step()
	}
}

// Samplers must reject Reset-free use in a way that fails fast.
func TestSamplerUseBeforeResetPanics(t *testing.T) {
	for _, s := range []ActivationSampler{NewBallList(), NewFenwick(), NewEventHeap()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Sample before Reset did not panic", s.Name())
				}
			}()
			s.Sample(rng.New(6))
		}()
	}
}

// After an engine exhausts its activation budget mid-flight, its state
// must still validate and be resumable.
func TestEngineResumableAfterBudget(t *testing.T) {
	v := loadvec.AllInOne().Generate(16, 128, nil)
	e := NewEngine(v, rlsRule{}, nil, rng.New(7))
	res1 := e.Run(UntilPerfect(), 50)
	if res1.Stopped {
		t.Fatal("50 activations cannot finish this instance")
	}
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	res2 := e.Run(UntilPerfect(), 10_000_000)
	if !res2.Stopped {
		t.Fatal("resumed run did not finish")
	}
	if res2.Activations < res1.Activations {
		t.Fatal("activation counter went backwards")
	}
}

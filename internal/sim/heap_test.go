package sim

import (
	"math"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestEventHeapLoadsMatchVector(t *testing.T) {
	v := loadvec.Vector{3, 0, 5, 1}
	h := NewEventHeap()
	h.Reset(v)
	for i, want := range v {
		if got := h.Load(i); got != want {
			t.Errorf("bin %d load = %d, want %d", i, got, want)
		}
	}
}

func TestEventHeapSampleFrequencies(t *testing.T) {
	// Over a long horizon each ball is activated at rate 1, so bin
	// activation frequencies are proportional to load.
	v := loadvec.Vector{1, 0, 3, 6}
	h := NewEventHeap()
	h.Reset(v)
	r := rng.New(9)
	const draws = 60000
	counts := make([]int, len(v))
	for i := 0; i < draws; i++ {
		h.NextGap(r)
		counts[h.Sample(r)]++
	}
	for i, load := range v {
		want := float64(draws) * float64(load) / 10
		se := math.Sqrt(want + 1)
		if math.Abs(float64(counts[i])-want) > 6*se {
			t.Errorf("bin %d sampled %d times, want ~%g", i, counts[i], want)
		}
	}
}

func TestEventHeapTimeIsPoissonLike(t *testing.T) {
	// With m balls, the number of activations in [0, T] is Poisson(mT):
	// mean mT, variance mT. Check the mean via total time after k draws.
	const m = 25
	v := loadvec.Vector{m}
	h := NewEventHeap()
	h.Reset(v)
	r := rng.New(10)
	const k = 40000
	total := 0.0
	for i := 0; i < k; i++ {
		total += h.NextGap(r)
		h.Sample(r)
	}
	want := float64(k) / m
	if math.Abs(total-want) > 0.05*want {
		t.Fatalf("time after %d rings = %g, want ~%g", k, total, want)
	}
}

func TestEventHeapMovesActivatedBall(t *testing.T) {
	// After Sample returns bin b, MoveBall(b, dst) must relocate the
	// activated ball: its subsequent activations come from dst.
	v := loadvec.Vector{1, 0}
	h := NewEventHeap()
	h.Reset(v)
	r := rng.New(11)
	h.NextGap(r)
	if src := h.Sample(r); src != 0 {
		t.Fatalf("sampled bin %d, want 0", src)
	}
	h.MoveBall(0, 1)
	if h.Load(0) != 0 || h.Load(1) != 1 {
		t.Fatal("ball did not move")
	}
	h.NextGap(r)
	if src := h.Sample(r); src != 1 {
		t.Fatalf("after move, sampled bin %d, want 1", src)
	}
}

func TestEventHeapAdversarialMove(t *testing.T) {
	// Moving from a bin that is not the last-activated ball's home must
	// still work (ForceMove path).
	v := loadvec.Vector{2, 2, 0}
	h := NewEventHeap()
	h.Reset(v)
	r := rng.New(12)
	h.NextGap(r)
	h.Sample(r)
	// Move from whichever bin was NOT sampled.
	h.MoveBall(1, 2)
	h.MoveBall(0, 2)
	if h.Load(2) != 2 {
		t.Fatalf("loads after forced moves: %d/%d/%d", h.Load(0), h.Load(1), h.Load(2))
	}
}

func TestEventHeapEngineBalances(t *testing.T) {
	v := loadvec.AllInOne().Generate(16, 64, nil)
	e := NewEngine(v, rlsRule{}, NewEventHeap(), rng.New(13))
	res := e.Run(UntilPerfect(), 1_000_000)
	if !res.Stopped {
		t.Fatal("event-heap engine did not balance")
	}
	if res.Final.Balls() != 64 {
		t.Fatal("ball conservation violated")
	}
}

// A3 in miniature: the literal per-ball-clock engine and the
// superposition engine produce the same balancing-time law (two-sample
// KS test at generous significance).
func TestEventHeapMatchesSuperpositionLaw(t *testing.T) {
	const n, m, reps = 24, 96, 120
	collect := func(mk func() ActivationSampler, seed uint64) []float64 {
		root := rng.New(seed)
		out := make([]float64, reps)
		for i := 0; i < reps; i++ {
			r := root.Split()
			v := loadvec.AllInOne().Generate(n, m, nil)
			e := NewEngine(v, rlsRule{}, mk(), r)
			out[i] = e.Run(UntilPerfect(), 10_000_000).Time
		}
		return out
	}
	a := collect(func() ActivationSampler { return NewEventHeap() }, 300)
	b := collect(func() ActivationSampler { return NewBallList() }, 400)
	ok, d := stats.SameDistribution(a, b, 0.001)
	if !ok {
		t.Fatalf("balancing-time laws differ: KS D = %g (crit %g)",
			d, stats.KSCritical(reps, reps, 0.001))
	}
}

func TestEventHeapForceMoveThroughEngine(t *testing.T) {
	v := loadvec.Vector{4, 4, 4}
	e := NewEngine(v, rlsRule{}, NewEventHeap(), rng.New(14))
	e.ForceMove(1, 0)
	e.ForceMove(2, 0)
	if e.Cfg().Load(0) != 6 {
		t.Fatalf("load 0 = %d", e.Cfg().Load(0))
	}
	res := e.Run(UntilPerfect(), 1_000_000)
	if !res.Stopped {
		t.Fatal("did not rebalance after forced moves")
	}
}

package sim

import (
	"container/heap"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// EventHeap is the literal implementation of the §3 model: every ball
// owns an exponential rate-1 clock, and activations are delivered in the
// order the clocks actually ring, via a binary min-heap of (ball, next
// ring time) events. The superposition property says this is equivalent
// in law to the Exp(m)-gap + uniform-ball engine (samplers BallList and
// Fenwick); ablation A3 verifies the equivalence empirically.
//
// EventHeap also implements GapSampler: the engine takes its time
// increments from the heap instead of drawing Exp(m) gaps.
// Churn is supported natively: AddBall schedules the newcomer's first
// ring lazily (on insertion when an RNG is known, else at seed time), and
// RemoveBall cancels a ball's clock lazily — the departed ball is only
// marked dead, and its pending event is discarded when it reaches the top
// of the heap. Ball ids are therefore never reused; a session with heavy
// sustained churn grows the dead set and should prefer BallList/Fenwick.
type EventHeap struct {
	ballBin []int32   // ball -> bin
	bins    [][]int32 // bin -> ball ids (unordered, for adversarial moves)
	dead    []bool    // ball -> departed (its events are skipped lazily)
	events  eventQueue
	now     float64
	last    int32 // last activated ball
	r       *rng.RNG
}

// GapSampler is implemented by ActivationSamplers that own the event
// timing themselves (the engine otherwise draws Exp(m) gaps).
type GapSampler interface {
	// NextGap returns the time from the previous activation to the next.
	NextGap(r *rng.RNG) float64
}

type event struct {
	time float64
	ball int32
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].time < q[j].time }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewEventHeap returns an empty event-heap sampler; call Reset before
// use.
func NewEventHeap() *EventHeap { return &EventHeap{} }

// Reset implements ActivationSampler. Each ball's first ring is drawn
// fresh from Exp(1), matching mutually independent rate-1 clocks started
// at time zero.
func (h *EventHeap) Reset(v loadvec.Vector) {
	m := v.Balls()
	h.ballBin = make([]int32, 0, m)
	h.bins = make([][]int32, len(v))
	h.dead = make([]bool, 0, m)
	h.events = make(eventQueue, 0, m)
	h.now = 0
	// Initial ring times need randomness, which Reset does not receive;
	// they are scheduled lazily by seed() on the first NextGap/Sample.
	h.r = nil
	id := int32(0)
	for bin, load := range v {
		lst := make([]int32, 0, load)
		for j := 0; j < load; j++ {
			h.ballBin = append(h.ballBin, int32(bin))
			h.dead = append(h.dead, false)
			lst = append(lst, id)
			id++
		}
		h.bins[bin] = lst
	}
}

// seed lazily schedules every live ball's first ring once an RNG is
// available. Rings are drawn at now + Exp(1), so balls added before the
// first activation get clocks started at the current instant.
func (h *EventHeap) seed(r *rng.RNG) {
	if len(h.events) > 0 || len(h.ballBin) == 0 {
		return
	}
	h.r = r
	for ball := range h.ballBin {
		if h.dead[ball] {
			continue
		}
		h.events = append(h.events, event{time: h.now + r.Exp(1), ball: int32(ball)})
	}
	heap.Init(&h.events)
}

// discardDead pops cancelled clocks off the top of the heap (lazy
// deletion of removed balls).
func (h *EventHeap) discardDead() {
	for len(h.events) > 0 && h.dead[h.events[0].ball] {
		heap.Pop(&h.events)
	}
}

// NextGap implements GapSampler: time until the earliest live clock rings.
func (h *EventHeap) NextGap(r *rng.RNG) float64 {
	h.seed(r)
	h.discardDead()
	gap := h.events[0].time - h.now
	if gap < 0 {
		gap = 0
	}
	return gap
}

// Sample implements ActivationSampler: pops the earliest live ring,
// advances the sampler clock, reschedules that ball's next ring at
// +Exp(1), and returns the ball's bin.
func (h *EventHeap) Sample(r *rng.RNG) int {
	h.seed(r)
	h.discardDead()
	e := h.events[0]
	h.now = e.time
	h.last = e.ball
	h.events[0].time = h.now + r.Exp(1)
	heap.Fix(&h.events, 0)
	return int(h.ballBin[e.ball])
}

// MoveBall implements ActivationSampler. The protocol's mover relocates
// the just-activated ball; adversarial ForceMove may relocate any ball in
// src, so if the last activated ball is not there, an arbitrary resident
// moves instead (balls are identical).
func (h *EventHeap) MoveBall(src, dst int) {
	ball := h.last
	if len(h.ballBin) == 0 {
		panic("sim: MoveBall before Reset")
	}
	if int(h.ballBin[ball]) != src || h.dead[ball] {
		lst := h.bins[src]
		if len(lst) == 0 {
			panic("sim: MoveBall from empty bin")
		}
		ball = lst[len(lst)-1]
	}
	h.removeFromBin(ball, src)
	h.bins[dst] = append(h.bins[dst], ball)
	h.ballBin[ball] = int32(dst)
}

func (h *EventHeap) removeFromBin(ball int32, bin int) {
	lst := h.bins[bin]
	for i, id := range lst {
		if id == ball {
			lst[i] = lst[len(lst)-1]
			h.bins[bin] = lst[:len(lst)-1]
			return
		}
	}
	panic("sim: ball not found in its bin")
}

// AddBall implements ActivationSampler: the newcomer's clock starts at
// the current instant, its first ring at now + Exp(1) — an O(log m) heap
// push. Before the heap is seeded (no RNG seen yet) the scheduling is
// deferred to seed.
func (h *EventHeap) AddBall(bin int) {
	id := int32(len(h.ballBin))
	h.ballBin = append(h.ballBin, int32(bin))
	h.dead = append(h.dead, false)
	h.bins[bin] = append(h.bins[bin], id)
	if h.r != nil {
		heap.Push(&h.events, event{time: h.now + h.r.Exp(1), ball: id})
	}
}

// RemoveBall implements ActivationSampler: an arbitrary ball departs from
// bin in O(1); its pending clock event is cancelled lazily (discarded
// when it surfaces at the top of the heap).
func (h *EventHeap) RemoveBall(bin int) {
	lst := h.bins[bin]
	if len(lst) == 0 {
		panic("sim: RemoveBall from empty bin")
	}
	ball := lst[len(lst)-1]
	h.bins[bin] = lst[:len(lst)-1]
	h.dead[ball] = true
}

// Name implements ActivationSampler.
func (h *EventHeap) Name() string { return "event-heap" }

// Load returns the number of balls in bin i (for tests).
func (h *EventHeap) Load(i int) int { return len(h.bins[i]) }

package sim

import (
	"sync"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Sharded is the goroutine-parallel engine for plain RLS on the complete
// topology, built for the dense regime (m ≫ n, many productive moves)
// where the direct engine's per-activation work dominates and the jump
// engine has nothing to skip.
//
// The n bins are partitioned into P contiguous ranges — shard i owns
// [cuts[i], cuts[i+1]), initially the near-equal PartitionRange boundaries
// and re-balanced at epoch barriers (see "Repartitioning" below). Each
// shard owns its range as its own loadvec.Config plus BallList sampler and
// draws from its own deterministic RNG stream (split from the root seed),
// so a fixed (seed, P) pair reproduces the run exactly regardless of
// scheduling. The m rate-1 ball clocks superpose into independent
// per-shard Poisson streams of rate m_s, so shards simulate disjoint
// slices of the same continuous-time process with no shared state:
//
//   - epochs: time is cut into epochs of length dt. Within an epoch every
//     shard draws its activation count K ~ Poisson(m_s·dt) in one block —
//     the count of a rate-m_s Poisson stream over the window, with the
//     per-activation Exp gaps integrated out — and runs the K activations
//     locally with batched uniform draws (rng.FillIntn into flat scratch
//     arrays, the dense-phase analogue of the jump engine's geometric
//     block draws). A move whose sampled destination lands in the same
//     shard is decided and applied immediately, exactly as in the direct
//     engine;
//   - cross-shard moves: a destination owned by another shard cannot be
//     read mid-epoch without a race, so the activation becomes a
//     *proposal* appended to the shard's private outbox slice,
//     pre-filtered against a stale (last-reconciliation) snapshot of the
//     global loads. Outboxes are drained at the epoch barrier in three
//     deterministic parallel phases: sources re-validate against their
//     live loads and detach the ball, destinations re-check the RLS rule
//     against their live loads and land or refuse it, and refused balls
//     are restored at their source — every applied move satisfies
//     ℓ_src ≥ ℓ_dst + 1 at application time, so the §3 monotonicity of
//     min/max/disc is preserved;
//   - reconciliation: at each barrier the per-shard histograms are folded
//     into a global loadvec.FoldedStats snapshot (min/max/m in O(P)) that
//     serves the stop conditions — MaxLoad, Discrepancy and the rls.Target
//     kinds — and the stale load snapshot used by the proposal filter is
//     refreshed.
//
// Epoch workers are a persistent pool: Run spawns one goroutine per shard
// and dispatches each epoch and barrier phase as a small message over a
// per-shard channel, so the steady-state epoch loop performs no
// allocations at all — no goroutine spawns, no closure captures, no
// channel-of-proposals resizing — which the allocation benchmarks assert.
//
// Granularity: with P > 1 stop conditions, traces, and the activation
// budget are checked at epoch barriers only, so runs may overshoot a
// target by up to one epoch — the sharded analogue of the jump engine's
// per-move blocks. With P = 1 there is no concurrency to protect: the
// single shard executes the direct engine's exact per-activation loop on
// the root RNG stream (same draws, same stop granularity), making the
// fixed-seed output byte-identical to NewEngine's — the equivalence tests
// pin this.
//
// Churn (AddBall/RemoveBall) maps the bin to its owning shard in
// O(log P) and updates that shard's Config and sampler in place, so the
// Session churn path stays O(1)-ish per event as in the other engine
// modes.
//
// # Repartitioning (repartition.go)
//
// A static contiguous partition load-imbalances as mass drains toward few
// bins: the shard owning the hot range does nearly all the work while its
// peers spin on empty epochs. At epoch barriers the engine therefore
// re-balances the range boundaries work-stealing-style: when the folded
// per-shard event weights (W_s+X_s for jump shards, ball mass m_s for
// plain shards) report one shard carrying more than 1.5x its fair share,
// new cuts are computed from per-bin weights (loadvec.BalancedCuts) and
// the boundary bins migrate — the affected shards' Configs, samplers,
// level indexes, and dirty journals are rebuilt over their new ranges and
// the stale census is reconstructed under the new cuts. Every decision is
// a pure function of the folded barrier state, taken single-threaded
// between epochs, so fixed (seed, P) still reproduces the run exactly;
// P = 1 never repartitions, keeping the byte-identical equivalence.
// Declined checks (the imbalance is intrinsic, e.g. one overloaded bin)
// back off exponentially so end-game per-move barriers are not taxed with
// O(n) scans.
//
// # Jump mode (NewShardedJump)
//
// The sharded *jump* engine composes this parallel structure with the
// jump engine's rejection-free blocks, covering the dense and end-game
// regimes in one run. Each shard's Config carries a level index
// maintaining its local move weight W_s = Σ_v v·count_s[v]·C_s(v−1), and
// additionally an external weight X_s = Σ_v v·count_s[v]·S_s(v−1) where
// S_s(w) counts the bins of *other* shards with stale-snapshot load ≤ w —
// exactly the population the cross-shard proposal filter admits. A
// uniform activation is eventful (a local productive move, or a proposal
// passing the stale filter) with probability (W_s+X_s)/(m_s·n), so each
// shard skips its null activations in Geometric blocks with Erlang time
// gaps, just like the jump engine, and classifies each event as local
// (apply immediately, weight W_s) or cross-shard (append the proposal,
// weight X_s). Blocks crossing the epoch horizon are truncated exactly —
// the nulls in the remaining window are a thinned Poisson draw and the
// clock lands on the horizon — so jump shards meet every barrier on the
// dot, and time-targeted runs (SetHorizon) never overshoot.
//
// Barrier reconciliation is incremental: each shard journals the bins it
// mutates (epoch moves, barrier detach/land/restore), and the barrier
// replays the journals as deltas against the stale snapshot and the
// external census — one loadvec.StaleIndex.Move plus an
// ExternalPrefixUpdated window per peer shard per changed bin,
// O(changed·P·Δ) total, i.e. O(changed·Δ) at the small constant shard
// counts in play — instead of recopying the snapshot and rebuilding
// every table in O(n + P·Δ). A coarse dense epoch that dirties ≳ n/4 bins
// falls back to the from-scratch rebuild (cheaper at that density);
// end-game per-move epochs never do, which is what keeps the per-move
// barrier cost independent of n (BenchmarkShardedJumpEndGame measures it
// at two sizes).
//
// Epochs adapt: in auto mode the epoch length starts at the dense
// activation-sized epoch and shrinks proportionally to the folded global
// move weight (FoldedStats.W, reconciled at each barrier) as the move
// rate drops, clamped in event units (jumpEventsPerEpochFloor and
// max(jumpEventsPerEpochCap, n/P)) — so a run slides from coarse
// parallel epochs (dense: parallel wins) to per-move epochs (end-game:
// the jump skipping wins) without the caller picking a mode per regime.
// With P = 1 the single shard executes the jump engine's exact step
// loop on the root stream, making fixed-seed output byte-identical to
// NewJumpEngine's.
type Sharded struct {
	n, p   int
	epoch0 float64 // configured epoch length (0 = auto-sized per Run)
	dt     float64 // epoch length for the current Run
	jump   bool    // rejection-free jump shards (NewShardedJump)

	// horizon, when positive, is the continuous-time target of the current
	// run; only jump mode consults it (epoch ends clamp there, so the run
	// stops at exactly the horizon). Plain sharded keeps its documented
	// epoch-overshoot semantics and byte-pinned draw sequence.
	horizon float64
	w0      int64 // largest folded move weight seen this Run (adaptive anchor)

	// cuts are the live partition boundaries: shard i owns global bins
	// [cuts[i], cuts[i+1]). Initially loadvec.Cuts(n, p); repartitioning
	// moves them at barriers (repartition.go).
	cuts   []int
	shards []*shard
	cfgs   []*loadvec.Config // shard Configs (refold scratch; repartition swaps entries)
	root   *rng.RNG
	stale  []int // global loads as of the last reconciliation (filter only)

	// ext is the jump mode's external-destination census (P > 1 only): the
	// global bins bucketed by stale level and owning shard, with Fenwick
	// prefix counts so each shard's S_s(w) prefix — the population its
	// level index maintains X_s against — is an O(log Δ) query. Built once
	// (lazily, at the first jump Run), then maintained *incrementally*: at
	// each barrier the per-shard dirty-bin journals are applied as
	// bin-level deltas — O(changed·P·Δ) total, one census move plus a
	// Δ-bounded window refresh per peer shard per changed bin — instead
	// of rebuilding the tables and recopying the snapshot in O(n + P·Δ):
	// the difference between end-game per-move barriers costing O(n) per
	// move and O(P·Δ).
	ext *loadvec.StaleIndex

	// inline, set per epoch in jump mode, runs the epoch and barrier
	// phases on the calling goroutine: an end-game epoch holds ~one event,
	// so there is no parallelism to exploit and even the pool's channel
	// round-trips would dominate the barrier. Draw sequences are per-shard
	// streams either way, so the output is bit-identical to the parallel
	// schedule.
	inline bool

	// Persistent worker pool (P > 1, spawned once per Run): each epoch and
	// barrier phase is dispatched as a phase id over per-shard channels —
	// no per-phase goroutines, no closures, zero steady-state allocations.
	work     []chan uint8
	phaseWG  sync.WaitGroup // one phase's completion
	poolWG   sync.WaitGroup // pool teardown
	epochEnd float64        // the running epoch's horizon (set before dispatch)

	// Repartition policy state (repartition.go).
	repartEnabled bool
	repartWait    int // barriers until the next O(n) repartition scan is allowed
	repartBackoff int // current decline backoff, doubling up to repartBackoffMax
	repartitions  int64
	binWeights    []int64 // scratch: per-bin event weights for cut placement
	histScratch   []int64 // scratch: global level histogram (jump weights)

	// Folded global view (refreshed at each barrier and churn event).
	stats loadvec.FoldedStats
	time  float64
	acts  int64
	moves int64

	crossProposed int64
	crossApplied  int64

	// PostCheck, if non-nil, runs at every point where the global state is
	// refreshed and stop conditions are evaluated: each epoch barrier, or
	// each activation when P = 1. Phase tracking hooks in here.
	PostCheck func(*Sharded)
}

// shard is one worker's private slice of the system: the bins [lo, hi),
// their Config and sampler, a deterministic RNG stream, a local clock,
// and the outbox slice for cross-shard move proposals.
type shard struct {
	id     int
	lo, hi int
	cfg    *loadvec.Config
	smp    *BallList
	r      *rng.RNG

	t        float64
	acts     int64
	moves    int64 // intra-shard protocol moves
	proposed int64
	landed   int64 // cross-shard moves applied at this shard (cumulative)

	// out is the epoch's cross-shard proposal outbox. Only the owning
	// shard appends during an epoch and only it drains at the barrier
	// (detach phase), so a plain slice — reset to [:0], grown once —
	// replaces the bounded channel the engine used to pay a send/recv
	// plus periodic reallocation for.
	out []proposal

	// Batched-draw scratch (plain mode, P > 1): per-chunk uniform ball
	// ids and destination bins, filled by rng.FillIntn.
	idxBuf, dstBuf []int32

	// Dirty journal (jump mode, P > 1): the local bins whose live load may
	// have drifted from the stale snapshot since the last reconciliation.
	// Every cfg mutation — epoch moves, barrier detach/land/restore — is
	// recorded by its owning shard (mark), deduplicated through dirtyMark,
	// and the journals are drained in shard order at the barrier
	// (reconcileStale), which keeps the replay deterministic.
	dirty     []int32
	dirtyMark []bool

	// Barrier scratch, indexed by peer shard id. inbox[s] is written by
	// shard s in the detach phase and read by this shard in the land
	// phase; reject[s] is written by this shard in the land phase and
	// read by shard s in the restore phase — each slot has exactly one
	// owner per phase, with the phase barriers ordering the handover.
	inbox  [][]handoff
	reject [][]int32
}

// mark journals a local bin as dirty: its live load may now differ from
// the stale snapshot, so the barrier must reconcile it. A no-op outside
// jump mode (dirtyMark is nil) and for bins already journaled. Only the
// shard's own goroutine calls it — every cfg mutation is made by the
// owning shard, in epochs and in all three barrier phases — so the journal
// needs no synchronization.
func (sh *shard) mark(local int) {
	if sh.dirtyMark == nil || sh.dirtyMark[local] {
		return
	}
	sh.dirtyMark[local] = true
	sh.dirty = append(sh.dirty, int32(local))
}

// proposal is a cross-shard move candidate: global source and destination
// bins, queued by the source shard during an epoch.
type proposal struct{ src, dst int32 }

// handoff is a proposal whose source side has been applied: the ball left
// srcGlobal (whose load was srcLoad at detachment) and asks to land at the
// destination shard's local bin dstLocal.
type handoff struct {
	srcGlobal, dstLocal, srcLoad int32
}

// ShardedStop is a stop condition over the sharded engine's folded global
// state, evaluated at epoch barriers (every activation when P = 1).
type ShardedStop func(*Sharded) bool

// ShardedUntilPerfect stops at global perfect balance (disc < 1).
func ShardedUntilPerfect() ShardedStop {
	return func(s *Sharded) bool { return s.IsPerfect() }
}

// ShardedUntilBalanced stops once the global configuration is x-balanced.
func ShardedUntilBalanced(x float64) ShardedStop {
	return func(s *Sharded) bool { return s.Disc() <= x }
}

// ShardedUntilTime stops once continuous time reaches t.
func ShardedUntilTime(t float64) ShardedStop {
	return func(s *Sharded) bool { return s.Time() >= t }
}

// DefaultShards is the shard count used when a caller passes 0: a small
// constant rather than GOMAXPROCS so that fixed-seed runs reproduce across
// machines.
const DefaultShards = 4

// shardedActsPerEpoch sizes auto epochs: dt is chosen so each shard
// expects about this many activations between barriers — fine enough to
// track the process closely, coarse enough to amortize the barrier.
const shardedActsPerEpoch = 256

// shardBatch is the chunk size of the plain shard epoch's batched uniform
// draws: large enough to amortize the per-call RNG state round-trip, small
// enough to stay in L1.
const shardBatch = 512

// jumpEventsPerEpochFloor floors the adaptive jump epoch: dt never
// shrinks below the length holding one expected event globally, so
// end-game barriers each settle about one jump step — the jump engine's
// own granularity. Coarser floors measurably inflate end-game balancing
// times: every deferred cross-shard move waits out the rest of its
// epoch, and near balance the critical (rare) moves dominate the clock.
const jumpEventsPerEpochFloor = 1

// jumpEventsPerEpochCap bounds the adaptive epoch from above, in
// events: no barrier defers more than ~max(cap, n/P) events of
// cross-shard mixing, which keeps the dense-phase dynamics close to the
// sequential process at every system size.
const jumpEventsPerEpochCap = 4

// NewSharded builds a sharded engine over a copy of the initial
// configuration with the given shard count (0 means DefaultShards) and
// epoch length (0 means auto: sized per Run so each shard expects
// shardedActsPerEpoch activations per epoch). The root RNG seeds the
// per-shard streams via deterministic splitting; with shards == 1 the
// root stream is used directly so the run is byte-identical to the direct
// engine's. It panics on a nil RNG or a shard count above the bin count.
func NewSharded(initial loadvec.Vector, shards int, epoch float64, root *rng.RNG) *Sharded {
	return newSharded(initial, shards, epoch, root, false)
}

// NewShardedJump builds the sharded jump engine: the epoch/barrier
// structure of NewSharded with rejection-free jump shards (see the
// "Jump mode" section of the Sharded doc). An epoch of 0 selects the
// adaptive policy — epochs shrink with the folded move rate from the
// dense activation-sized epoch down to the one-expected-event floor. With
// shards == 1 fixed-seed output is byte-identical to NewJumpEngine's.
func NewShardedJump(initial loadvec.Vector, shards int, epoch float64, root *rng.RNG) *Sharded {
	return newSharded(initial, shards, epoch, root, true)
}

func newSharded(initial loadvec.Vector, shards int, epoch float64, root *rng.RNG, jump bool) *Sharded {
	if root == nil {
		panic("sim: NewSharded with nil RNG")
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards > len(initial) {
		shards = len(initial)
	}
	if shards < 1 || epoch < 0 {
		panic("sim: NewSharded with invalid shards or epoch")
	}
	n := len(initial)
	s := &Sharded{
		n:             n,
		p:             shards,
		epoch0:        epoch,
		jump:          jump,
		root:          root,
		cuts:          loadvec.Cuts(n, shards),
		stale:         append([]int(nil), initial...),
		repartEnabled: true,
		repartBackoff: repartCheckBase,
	}
	parts := loadvec.Partition(initial, shards)
	s.cfgs = make([]*loadvec.Config, shards)
	s.shards = make([]*shard, shards)
	for i, part := range parts {
		r := root
		if shards > 1 {
			r = root.Split()
		}
		sh := &shard{
			id: i, lo: s.cuts[i], hi: s.cuts[i+1],
			cfg:    loadvec.NewConfig(part),
			r:      r,
			inbox:  make([][]handoff, shards),
			reject: make([][]int32, shards),
		}
		if jump {
			// Jump shards sample through the level index; no per-ball table.
			sh.cfg.EnableLevelIndex()
			if shards > 1 {
				sh.dirtyMark = make([]bool, sh.hi-sh.lo)
			}
		} else {
			sh.smp = NewBallList()
			sh.smp.Reset(part)
			if shards > 1 {
				sh.idxBuf = make([]int32, shardBatch)
				sh.dstBuf = make([]int32, shardBatch)
			}
		}
		s.cfgs[i] = sh.cfg
		s.shards[i] = sh
	}
	s.stats = loadvec.FoldStats(s.cfgs...)
	return s
}

// Jump reports whether the engine runs rejection-free jump shards.
func (s *Sharded) Jump() bool { return s.jump }

// SetHorizon declares the continuous-time target of the next run (0
// clears it). Only jump mode consults it: epoch ends clamp at the
// horizon and jump shards truncate their final blocks there exactly, so
// time-targeted sharded-jump runs never report Time() > horizon. Plain
// sharded ignores it, keeping its epoch-overshoot semantics (and its
// byte-pinned P = 1 equivalence with the direct engine). Callers driving
// a persistent engine (Session) must clear it before other runs.
func (s *Sharded) SetHorizon(t float64) { s.horizon = t }

// N returns the number of bins.
func (s *Sharded) N() int { return s.n }

// Shards returns the shard count P.
func (s *Sharded) Shards() int { return s.p }

// Stats returns the folded global view: live with P = 1, as of the last
// barrier otherwise.
func (s *Sharded) Stats() loadvec.FoldedStats {
	if s.p == 1 {
		c := s.shards[0].cfg
		return loadvec.FoldedStats{N: s.n, M: c.M(), Min: c.Min(), Max: c.Max()}
	}
	return s.stats
}

// M returns the global ball count.
func (s *Sharded) M() int { return s.Stats().M }

// Min returns the global minimum load.
func (s *Sharded) Min() int { return s.Stats().Min }

// Max returns the global maximum load.
func (s *Sharded) Max() int { return s.Stats().Max }

// Disc returns the global discrepancy.
func (s *Sharded) Disc() float64 { return s.Stats().Disc() }

// IsPerfect reports global perfect balance (disc < 1).
func (s *Sharded) IsPerfect() bool { return s.Stats().IsPerfect() }

// Time returns the elapsed continuous time (the furthest shard clock).
func (s *Sharded) Time() float64 {
	if s.p == 1 {
		return s.shards[0].t
	}
	return s.time
}

// Activations returns the total ball activations across all shards.
func (s *Sharded) Activations() int64 {
	if s.p == 1 {
		return s.shards[0].acts
	}
	return s.acts
}

// Moves returns the total protocol moves (intra-shard plus applied
// cross-shard).
func (s *Sharded) Moves() int64 {
	if s.p == 1 {
		return s.shards[0].moves
	}
	return s.moves
}

// CrossProposed returns how many cross-shard move proposals were queued.
func (s *Sharded) CrossProposed() int64 {
	if s.p == 1 {
		return 0
	}
	return s.crossProposed
}

// CrossApplied returns how many cross-shard moves were applied at
// barriers.
func (s *Sharded) CrossApplied() int64 { return s.crossApplied }

// ShardRange returns the global bin range [lo, hi) owned by shard i under
// the live partition (repartitioning moves the boundaries at barriers).
func (s *Sharded) ShardRange(i int) (lo, hi int) {
	return s.cuts[i], s.cuts[i+1]
}

// Cuts returns a copy of the live partition boundary vector: shard i owns
// [Cuts()[i], Cuts()[i+1]).
func (s *Sharded) Cuts() []int { return append([]int(nil), s.cuts...) }

// owner returns the shard owning a global bin in O(log P).
func (s *Sharded) owner(bin int) int { return loadvec.CutsOwner(s.cuts, bin) }

// Load returns the live load of a global bin in O(log P) via the owning
// shard (always current: shard state only changes inside Run).
func (s *Sharded) Load(bin int) int {
	sh := s.shards[s.owner(bin)]
	return sh.cfg.Load(bin - sh.lo)
}

// Snapshot returns a copy of the global load vector (shard ranges
// concatenated in bin order).
func (s *Sharded) Snapshot() loadvec.Vector {
	v := make(loadvec.Vector, 0, s.n)
	for _, sh := range s.shards {
		v = append(v, sh.cfg.Loads()...)
	}
	return v
}

// GlobalConfig folds the shard states into a fresh global Config — the
// full-histogram reconciliation. Stop conditions only need the O(P)
// FoldedStats, so this O(n) fold is for callers that want every tracked
// statistic (tests, reporting).
func (s *Sharded) GlobalConfig() *loadvec.Config {
	return loadvec.NewConfig(s.Snapshot())
}

// AddBall inserts one ball into the given global bin (dynamic arrival),
// updating the owning shard's Config and sampler in place — O(1) plus the
// O(P) stats refold, never a rebuild.
func (s *Sharded) AddBall(bin int) {
	sh := s.shards[s.owner(bin)]
	sh.cfg.AddBall(bin - sh.lo)
	if sh.smp != nil {
		sh.smp.AddBall(bin - sh.lo)
	}
	o := s.stale[bin]
	s.stale[bin] = o + 1
	s.staleMoved(sh.id, bin, o, o+1)
	s.refold()
}

// RemoveBall removes one ball from the given global bin (dynamic
// departure). It panics if the bin is empty.
func (s *Sharded) RemoveBall(bin int) {
	sh := s.shards[s.owner(bin)]
	sh.cfg.RemoveBall(bin - sh.lo)
	if sh.smp != nil {
		sh.smp.RemoveBall(bin - sh.lo)
	}
	if o := s.stale[bin]; o > 0 {
		s.stale[bin] = o - 1
		s.staleMoved(sh.id, bin, o, o-1)
	}
	s.refold()
}

// staleMoved propagates one bin's stale-level change (from → to, already
// written to s.stale by the caller) into the jump mode's external tables:
// the census moves the bin between level buckets in O(P + log Δ), and
// every *other* shard's level index refreshes its external weights on
// exactly the window the change dirtied — ext(w) moved only for
// w ∈ [min, max−1], so x[v] = v·count[v]·ext(v−1) moved only for
// v ∈ [min+1, max]. The owning shard's prefix is untouched: its own bin
// cancels out of the gcnt−own difference. A no-op until the census exists
// (first jump Run builds it).
func (s *Sharded) staleMoved(owner, bin, from, to int) {
	if s.ext == nil {
		return
	}
	s.ext.Move(bin, from, to)
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, peer := range s.shards {
		if peer.id != owner {
			peer.cfg.ExternalPrefixUpdated(lo, hi-1)
		}
	}
}

// RandomBin returns the bin of a uniformly random ball without advancing
// the run: shards are sampled proportionally to their ball mass, then a
// uniform resident ball within the shard. Draws come from the root
// stream; with P = 1 the single draw matches the direct engine's.
func (s *Sharded) RandomBin() int {
	if s.p == 1 {
		if s.jump {
			return s.shards[0].cfg.SampleBallBin(s.root)
		}
		return s.shards[0].smp.Sample(s.root)
	}
	k := s.root.Int63n(int64(s.Stats().M))
	for _, sh := range s.shards {
		if m := int64(sh.cfg.M()); k < m {
			if s.jump {
				return sh.lo + sh.cfg.SampleBallBin(s.root)
			}
			return sh.lo + sh.smp.Sample(s.root)
		} else {
			k -= m
		}
	}
	panic("sim: RandomBin fold out of range")
}

// refold refreshes the folded global stats from the shard Configs (O(P),
// allocation-free: the cfgs slice is reused; repartitioning swaps entries
// in place).
func (s *Sharded) refold() {
	s.stats = loadvec.FoldStats(s.cfgs...)
}

// Run advances the engine until stop returns true or maxActivations is
// exhausted (pass maxActivations <= 0 for DefaultActivationBudget). With
// P > 1 both are checked at epoch barriers, so the run may overshoot by
// up to one epoch.
func (s *Sharded) Run(stop ShardedStop, maxActivations int64) Result {
	res, _ := s.run(stop, maxActivations, 0, false)
	return res
}

// RunTraced behaves like Run but also samples the trajectory every
// `every` activations, at barrier granularity for P > 1 (a point is
// recorded at the first barrier on or past each boundary) and at
// activation granularity for P = 1 — mirroring Engine.RunTraced.
func (s *Sharded) RunTraced(stop ShardedStop, maxActivations, every int64) (Result, []TracePoint) {
	if every <= 0 {
		every = 1
	}
	return s.run(stop, maxActivations, every, true)
}

func (s *Sharded) run(stop ShardedStop, maxActivations, every int64, traced bool) (Result, []TracePoint) {
	if maxActivations <= 0 {
		maxActivations = DefaultActivationBudget
	}
	if s.jump && s.p > 1 {
		if s.ext == nil {
			// First jump Run: build the external census from scratch. From
			// here on churn (staleMoved) and barriers (reconcileStale) keep it
			// current incrementally, so later Runs start with live tables.
			s.rebuildExternal()
		}
		s.refold()
	}
	s.w0 = 0
	s.sizeEpoch()
	if s.p > 1 {
		s.startWorkers()
		defer s.stopWorkers()
	}

	var trace []TracePoint
	var nextRecord int64
	record := func() {
		st := s.Stats()
		trace = append(trace, TracePoint{
			Time:        s.Time(),
			Activations: s.Activations(),
			Disc:        st.Disc(),
			MinLoad:     st.Min,
			MaxLoad:     st.Max,
		})
	}
	check := func() bool {
		if traced && s.Activations() >= nextRecord {
			record()
			nextRecord = (s.Activations()/every + 1) * every
		}
		if s.PostCheck != nil {
			s.PostCheck(s)
		}
		return stop(s)
	}
	if traced {
		record()
		nextRecord = s.Activations() + every
	}

	stopped := stop(s)
	for !stopped && s.Activations() < maxActivations {
		if s.p == 1 {
			if s.jump {
				stopped = s.runEpochSingleJump(maxActivations, check)
			} else {
				stopped = s.runEpochSingle(maxActivations, check)
			}
		} else {
			s.runEpochParallel()
			stopped = check()
		}
	}
	if traced && trace[len(trace)-1].Activations != s.Activations() {
		record()
	}
	return Result{
		Time:        s.Time(),
		Activations: s.Activations(),
		Moves:       s.Moves(),
		Stopped:     stopped,
		Final:       s.Snapshot(),
	}, trace
}

// sizeEpoch resolves the epoch length for this Run (auto mode reads the
// live ball count). Parallel jump runs re-size adaptively at every
// barrier instead.
func (s *Sharded) sizeEpoch() {
	if s.jump && s.p > 1 {
		s.sizeEpochJump()
		return
	}
	s.dt = s.epoch0
	if s.dt <= 0 {
		m := s.Stats().M
		if m < 1 {
			m = 1
		}
		s.dt = float64(shardedActsPerEpoch) * float64(s.p) / float64(m)
	}
}

// sizeEpochJump implements the adaptive epoch policy for parallel jump
// runs in auto mode (an explicit WithShardEpoch length is honored as-is).
// The epoch starts from the dense activation-sized length and shrinks
// proportionally to the folded global move weight W (FoldedStats.W,
// refreshed at every barrier) as the move rate drops — tracking the
// process ever more finely through the dense→sparse transition. Both ends
// are clamped in *event* units (expected events per epoch ≈ dt·W/n):
// at least jumpEventsPerEpochFloor so end-game barriers each settle
// about one jump step — the jump engine's own granularity — and at
// most max(jumpEventsPerEpochCap, n/P) so no barrier ever defers more
// than ~one event per owned bin of cross-shard mixing, which keeps the
// balancing dynamics close to the sequential process at every scale.
func (s *Sharded) sizeEpochJump() {
	if s.epoch0 > 0 {
		s.dt = s.epoch0
		return
	}
	m := s.stats.M
	if m < 1 {
		m = 1
	}
	dense := float64(shardedActsPerEpoch) * float64(s.p) / float64(m)
	w := s.stats.W
	if w > s.w0 {
		s.w0 = w // anchor: the largest folded weight seen this Run
	}
	if w <= 0 {
		s.dt = dense
		return
	}
	dt := dense * float64(w) / float64(s.w0)
	perEvent := float64(s.n) / float64(w) // epoch holding one expected event
	if floor := jumpEventsPerEpochFloor * perEvent; dt < floor {
		dt = floor
	}
	capEvents := jumpEventsPerEpochCap
	if perShard := s.n / s.p; perShard > capEvents {
		capEvents = perShard
	}
	if cap := float64(capEvents) * perEvent; dt > cap {
		dt = cap
	}
	s.dt = dt
}

// runEpochSingleJump is the P = 1 degenerate path of the sharded jump
// engine: the jump engine's exact step loop (same RNG draws from the root
// stream, same horizon clamping, stop checked after every step — keep the
// branch structure in sync with Engine.stepJump) chunked by one epoch of
// simulated time.
func (s *Sharded) runEpochSingleJump(maxActivations int64, check func() bool) bool {
	sh := s.shards[0]
	if sh.cfg.M() == 0 {
		sh.t += s.dt
		return check()
	}
	end := sh.t + s.dt
	for sh.t < end && sh.acts < maxActivations {
		m := float64(sh.cfg.M())
		w := sh.cfg.MoveWeight()
		h := s.horizon
		if w == 0 {
			if h > 0 && sh.t < h {
				sh.acts += sh.r.Poisson(m * (h - sh.t))
				sh.t = h
			} else {
				sh.t += sh.r.Exp(m)
				sh.acts++
			}
			if check() {
				return true
			}
			continue
		}
		p := float64(w) / (m * float64(s.n))
		k := sh.r.Geometric(p)
		gap := sh.r.Erlang(k, m)
		if h > 0 && sh.t < h && sh.t+gap > h {
			sh.acts += sh.r.Poisson(m * (1 - p) * (h - sh.t))
			sh.t = h
		} else {
			sh.t += gap
			sh.acts += k
			src, dst := sh.cfg.SampleMovePair(sh.r)
			sh.cfg.Move(src, dst)
			sh.moves++
		}
		if check() {
			return true
		}
	}
	return false
}

// runEpochSingle is the P = 1 degenerate path: the direct engine's exact
// per-activation loop (same RNG draws from the root stream, stop checked
// after every activation) bounded by one epoch of simulated time.
func (s *Sharded) runEpochSingle(maxActivations int64, check func() bool) bool {
	sh := s.shards[0]
	m := sh.cfg.M()
	if m == 0 {
		sh.t += s.dt
		return check()
	}
	fm := float64(m)
	end := sh.t + s.dt
	for sh.t < end && sh.acts < maxActivations {
		sh.t += sh.r.Exp(fm)
		sh.acts++
		src := sh.smp.Sample(sh.r)
		dst := sh.r.Intn(s.n)
		if dst != src && sh.cfg.Load(src) >= sh.cfg.Load(dst)+1 {
			sh.cfg.Move(src, dst)
			sh.smp.MoveBall(src, dst)
			sh.moves++
		}
		if check() {
			return true
		}
	}
	return false
}

// Worker-pool phase ids: one epoch phase plus the three barrier phases,
// dispatched over per-shard channels to the persistent workers.
const (
	phaseEpoch uint8 = iota
	phaseDetach
	phaseLand
	phaseRestore
)

// runPhase executes one phase for one shard (on a pool worker, or on the
// coordinator when inline/P = 1).
func (s *Sharded) runPhase(ph uint8, sh *shard) {
	switch ph {
	case phaseEpoch:
		if s.jump {
			s.runShardEpochJump(sh, s.epochEnd)
		} else {
			s.runShardEpoch(sh, s.epochEnd)
		}
	case phaseDetach:
		s.detachPhase(sh)
	case phaseLand:
		s.landPhase(sh)
	case phaseRestore:
		s.restorePhase(sh)
	}
}

// runPhases runs one phase across all shards, concurrently via the worker
// pool for P > 1 (inline on the coordinator when there is nothing to
// parallelize). Coordinator writes made before the dispatch are visible
// to the workers through the channel sends, and worker writes are visible
// to the coordinator through the WaitGroup — the only synchronization the
// epoch loop performs, none of which allocates.
func (s *Sharded) runPhases(ph uint8) {
	if s.p == 1 || s.inline || s.work == nil {
		for _, sh := range s.shards {
			s.runPhase(ph, sh)
		}
		return
	}
	s.phaseWG.Add(s.p)
	for _, w := range s.work {
		w <- ph
	}
	s.phaseWG.Wait()
}

// startWorkers spawns the persistent worker pool: one goroutine per shard
// for the duration of the Run, each draining phase ids from its own
// channel. Spawning once per Run instead of 4P goroutines per epoch is
// what makes the steady-state epoch loop allocation-free.
func (s *Sharded) startWorkers() {
	s.work = make([]chan uint8, s.p)
	for i, sh := range s.shards {
		ch := make(chan uint8, 1)
		s.work[i] = ch
		s.poolWG.Add(1)
		go func(sh *shard, ch chan uint8) {
			defer s.poolWG.Done()
			for ph := range ch {
				s.runPhase(ph, sh)
				s.phaseWG.Done()
			}
		}(sh, ch)
	}
}

// stopWorkers tears the pool down at the end of a Run, so an abandoned
// engine leaks no goroutines.
func (s *Sharded) stopWorkers() {
	for _, ch := range s.work {
		close(ch)
	}
	s.poolWG.Wait()
	s.work = nil
}

// runEpochParallel runs one epoch concurrently across the shards and
// drains the cross-shard outboxes at the barrier. Jump epochs re-size
// adaptively first and clamp the epoch horizon at the run horizon, so a
// time-targeted run's final barrier lands exactly on the target.
func (s *Sharded) runEpochParallel() {
	if s.jump {
		s.sizeEpochJump()
		end := s.time + s.dt
		if s.horizon > 0 && s.horizon > s.time && end > s.horizon {
			end = s.horizon
		}
		// Below ~one event per worker the epoch has nothing to parallelize;
		// run it (and its barrier) inline instead of paying 4P channel
		// round-trips per settled move.
		s.inline = s.dt*float64(s.stats.W) < 4*float64(s.p)*float64(s.n)
		s.epochEnd = end
		s.runPhases(phaseEpoch)
		s.barrier()
		s.inline = false
		return
	}
	s.epochEnd = s.time + s.dt
	s.runPhases(phaseEpoch)
	s.barrier()
}

// runShardEpoch advances one plain shard to the epoch horizon in one
// batched block. The shard's activation count over the window is
// K ~ Poisson(m_s·dt) — the count of its rate-m_s Poisson stream with the
// Exp gaps integrated out, the same law the per-gap loop simulated — and
// the K activations draw their uniform ball ids and destination bins in
// flat chunks (rng.FillIntn into per-shard scratch), resolved against the
// live ball table at event time. Local moves apply immediately;
// cross-shard candidates that pass the stale-load filter append to the
// outbox slice for the barrier. Nothing here allocates in steady state:
// the scratch arrays are fixed and the outbox is reset to [:0] each
// barrier.
func (s *Sharded) runShardEpoch(sh *shard, end float64) {
	m := sh.cfg.M()
	if m == 0 {
		sh.t = end
		return
	}
	k := sh.r.Poisson(float64(m) * (end - sh.t))
	sh.t = end
	sh.acts += k
	for k > 0 {
		b := shardBatch
		if int64(b) > k {
			b = int(k)
		}
		k -= int64(b)
		ids, dsts := sh.idxBuf[:b], sh.dstBuf[:b]
		sh.r.FillIntn(m, ids)
		sh.r.FillIntn(s.n, dsts)
		for j := 0; j < b; j++ {
			src := sh.smp.Bin(int(ids[j]))
			dst := int(dsts[j])
			if dst >= sh.lo && dst < sh.hi {
				l := dst - sh.lo
				if l != src && sh.cfg.Load(src) >= sh.cfg.Load(l)+1 {
					sh.cfg.Move(src, l)
					sh.smp.MoveBall(src, l)
					sh.moves++
				}
			} else if sh.cfg.Load(src) >= s.stale[dst]+1 {
				sh.out = append(sh.out, proposal{int32(sh.lo + src), int32(dst)})
				sh.proposed++
			}
		}
	}
}

// runShardEpochJump advances one jump shard to the epoch horizon in
// rejection-free blocks: with W = the shard's local move weight and
// X = its external weight against the frozen stale snapshot, an
// activation is eventful with probability (W+X)/(m_s·n), so the block
// length is Geometric of that and the time gap Erlang. The closing event
// is a local move with odds W : X — applied immediately, exactly as in
// runShardEpoch — or a cross-shard proposal already known to pass the
// stale filter, appended to the outbox for the barrier. A block that
// would cross the horizon is truncated exactly (the nulls in the
// remaining window are a thinned Poisson draw, the clock lands on the
// horizon), so jump shards meet every barrier on the dot.
func (s *Sharded) runShardEpochJump(sh *shard, end float64) {
	m := sh.cfg.M()
	if m == 0 {
		if sh.t < end {
			sh.t = end
		}
		return
	}
	fm := float64(m)
	for sh.t < end {
		w := sh.cfg.MoveWeight()
		x := sh.cfg.ExternalMoveWeight()
		ew := w + x
		if ew == 0 {
			// No eventful activation exists: everything to the horizon is null.
			sh.acts += sh.r.Poisson(fm * (end - sh.t))
			sh.t = end
			return
		}
		p := float64(ew) / (fm * float64(s.n))
		k := sh.r.Geometric(p)
		gap := sh.r.Erlang(k, fm)
		if sh.t+gap > end {
			sh.acts += sh.r.Poisson(fm * (1 - p) * (end - sh.t))
			sh.t = end
			return
		}
		sh.t += gap
		sh.acts += k
		if sh.r.Int63n(ew) < w {
			src, dst := sh.cfg.SampleMovePair(sh.r)
			sh.cfg.Move(src, dst)
			sh.moves++
			sh.mark(src)
			sh.mark(dst)
		} else {
			src, j := sh.cfg.SampleExternalMove(sh.r)
			dst := s.ext.ExternalBinAt(sh.id, sh.cfg.Load(src)-1, j)
			sh.out = append(sh.out, proposal{int32(sh.lo + src), int32(dst)})
			sh.proposed++
		}
	}
}

// rebuildExternal builds the jump mode's external census from the stale
// snapshot from scratch under the live cuts — O(n + P·Δ) — and installs
// each shard's external prefix on its level index (a full X_s recompute
// per shard). This is the reference reconciliation: it runs at the first
// jump Run, as the dense-phase fallback of reconcileStale, and after a
// repartition (the external populations change with the boundaries);
// end-game barriers take the incremental path instead.
func (s *Sharded) rebuildExternal() {
	s.ext = loadvec.NewStaleIndexCuts(s.stale, s.cuts)
	for _, sh := range s.shards {
		id := sh.id
		// The closure reads through s.ext, so replacing the census on a later
		// rebuild keeps every installed prefix current automatically.
		sh.cfg.SetExternalPrefix(func(w int) int64 { return s.ext.External(id, w) })
	}
}

// reconcileThreshold is the dirty-bin fraction above which the barrier
// falls back to the from-scratch rebuild: with ~n/4 bins changed the
// incremental replay's per-bin Fenwick work costs more than one O(n + P·Δ)
// scan. Dense-phase coarse epochs hit the fallback, end-game per-move
// epochs (a handful of dirty bins) never do.
const reconcileThreshold = 4

// reconcileStale brings the stale snapshot and the external census back in
// sync with the live loads at a barrier, incrementally: the per-shard
// dirty-bin journals are drained in shard order (deterministic replay) and
// each genuinely changed bin costs one census move plus an
// ExternalPrefixUpdated window per peer shard — O(changed·P·Δ) total,
// versus the O(n + P·Δ) full rebuild every barrier used to pay, which at
// end-game per-move epochs meant O(n) per move. Bins that round-tripped inside the barrier
// (detached then restored, or moved and moved back) reconcile to a no-op.
func (s *Sharded) reconcileStale() {
	dirty := 0
	for _, sh := range s.shards {
		dirty += len(sh.dirty)
	}
	if s.ext == nil || dirty*reconcileThreshold >= s.n {
		for _, sh := range s.shards {
			for _, lb := range sh.dirty {
				sh.dirtyMark[lb] = false
			}
			sh.dirty = sh.dirty[:0]
			copy(s.stale[sh.lo:sh.hi], sh.cfg.Loads())
		}
		s.rebuildExternal()
		return
	}
	for _, sh := range s.shards {
		for _, lb := range sh.dirty {
			sh.dirtyMark[lb] = false
			g := sh.lo + int(lb)
			l := sh.cfg.Load(int(lb))
			if o := s.stale[g]; o != l {
				s.stale[g] = l
				s.staleMoved(sh.id, g, o, l)
			}
		}
		sh.dirty = sh.dirty[:0]
	}
}

// detachPhase is the barrier's source side: drain the shard's own outbox
// in send order, re-validate against the live source load (it may have
// changed since the proposal) and the stale destination filter, detach
// the ball and hand it to the destination shard's inbox slot.
func (s *Sharded) detachPhase(sh *shard) {
	for _, p := range sh.out {
		src := int(p.src) - sh.lo
		ld := sh.cfg.Load(src)
		if ld >= 1 && ld >= s.stale[p.dst]+1 {
			sh.cfg.RemoveBall(src)
			if sh.smp != nil {
				sh.smp.RemoveBall(src)
			}
			sh.mark(src)
			dst := s.shards[s.owner(int(p.dst))]
			dst.inbox[sh.id] = append(dst.inbox[sh.id],
				handoff{p.src, p.dst - int32(dst.lo), int32(ld)})
		}
	}
	sh.out = sh.out[:0]
}

// landPhase is the barrier's destination side: walk inboxes in
// source-shard order and re-check the RLS rule against the live
// destination load, so every landed move satisfies ℓ_src ≥ ℓ_dst + 1 at
// application time and the §3 monotonicity of min/max/disc survives
// sharding.
func (s *Sharded) landPhase(sh *shard) {
	for from := 0; from < s.p; from++ {
		for _, h := range sh.inbox[from] {
			dst := int(h.dstLocal)
			if int(h.srcLoad) >= sh.cfg.Load(dst)+1 {
				sh.cfg.AddBall(dst)
				if sh.smp != nil {
					sh.smp.AddBall(dst)
				}
				sh.mark(dst)
				sh.landed++
			} else {
				sh.reject[from] = append(sh.reject[from], h.srcGlobal)
			}
		}
		sh.inbox[from] = sh.inbox[from][:0]
	}
}

// restorePhase restores refused balls at their source (no observable
// state ever saw them gone: all three phases are inside one barrier),
// then refreshes this shard's slice of the stale snapshot. Jump mode
// defers the refresh to reconcileStale, which replays only the journaled
// dirty bins instead of recopying the whole range.
func (s *Sharded) restorePhase(sh *shard) {
	for _, peer := range s.shards {
		for _, g := range peer.reject[sh.id] {
			l := int(g) - sh.lo
			sh.cfg.AddBall(l)
			if sh.smp != nil {
				sh.smp.AddBall(l)
			}
			sh.mark(l)
		}
		peer.reject[sh.id] = peer.reject[sh.id][:0]
	}
	if !s.jump {
		copy(s.stale[sh.lo:sh.hi], sh.cfg.Loads())
	}
}

// barrier drains the proposal outboxes in three deterministic parallel
// phases (each phase runs once per shard over disjoint state, with the
// phase barriers ordering the handovers), then reconciles the folded
// global stats and the stale snapshot, and lets the repartition policy
// re-balance the shard ranges.
func (s *Sharded) barrier() {
	s.runPhases(phaseDetach)
	s.runPhases(phaseLand)
	s.runPhases(phaseRestore)

	// Reconcile: fold counters and histogram extremes into the global view.
	var acts, moves, proposed, landed int64
	maxT := s.time
	for _, sh := range s.shards {
		acts += sh.acts
		moves += sh.moves
		proposed += sh.proposed
		landed += sh.landed
		if sh.t > maxT {
			maxT = sh.t
		}
	}
	s.acts = acts
	s.crossApplied = landed
	s.moves = moves + landed
	s.crossProposed = proposed
	s.time = maxT
	if s.jump {
		// The live loads just moved: reconcile the stale snapshot and the
		// external census from the dirty journals before refolding, so
		// FoldedStats.W (the adaptive epoch signal) is current.
		s.reconcileStale()
	}
	s.refold()
	s.maybeRepartition()
}

// Validate cross-checks every shard's tracked statistics and the folded
// global view; tests call it after randomized runs and churn.
func (s *Sharded) Validate() error {
	for _, sh := range s.shards {
		if err := sh.cfg.Validate(); err != nil {
			return err
		}
	}
	return nil
}

package sim

import (
	"sync"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Sharded is the goroutine-parallel engine for plain RLS on the complete
// topology, built for the dense regime (m ≫ n, many productive moves)
// where the direct engine's per-activation work dominates and the jump
// engine has nothing to skip.
//
// The n bins are partitioned into P contiguous ranges. Each shard owns a
// range as its own loadvec.Config plus BallList sampler and draws from its
// own deterministic RNG stream (split from the root seed), so a fixed
// (seed, P) pair reproduces the run exactly regardless of scheduling. The
// m rate-1 ball clocks superpose into independent per-shard Poisson
// streams of rate m_s, so shards simulate disjoint slices of the same
// continuous-time process with no shared state:
//
//   - epochs: time is cut into epochs of length dt. Within an epoch every
//     shard advances its own clock by Exp(m_s) gaps and runs its
//     activations locally — a move whose sampled destination lands in the
//     same shard is decided and applied immediately, exactly as in the
//     direct engine;
//   - cross-shard moves: a destination owned by another shard cannot be
//     read mid-epoch without a race, so the activation becomes a
//     *proposal* routed through the shard's bounded channel queue,
//     pre-filtered against a stale (last-reconciliation) snapshot of the
//     global loads. Queues are drained at the epoch barrier in three
//     deterministic parallel phases: sources re-validate against their
//     live loads and detach the ball, destinations re-check the RLS rule
//     against their live loads and land or refuse it, and refused balls
//     are restored at their source — every applied move satisfies
//     ℓ_src ≥ ℓ_dst + 1 at application time, so the §3 monotonicity of
//     min/max/disc is preserved;
//   - reconciliation: at each barrier the per-shard histograms are folded
//     into a global loadvec.FoldedStats snapshot (min/max/m in O(P)) that
//     serves the stop conditions — MaxLoad, Discrepancy and the rls.Target
//     kinds — and the stale load snapshot used by the proposal filter is
//     refreshed.
//
// Granularity: with P > 1 stop conditions, traces, and the activation
// budget are checked at epoch barriers only, so runs may overshoot a
// target by up to one epoch — the sharded analogue of the jump engine's
// per-move blocks. With P = 1 there is no concurrency to protect: the
// single shard executes the direct engine's exact per-activation loop on
// the root RNG stream (same draws, same stop granularity), making the
// fixed-seed output byte-identical to NewEngine's — the equivalence tests
// pin this.
//
// Churn (AddBall/RemoveBall) hashes the bin to its owning shard in O(1)
// and updates that shard's Config and sampler in place, so the Session
// churn path stays O(1) per event as in the other engine modes.
type Sharded struct {
	n, p   int
	epoch0 float64 // configured epoch length (0 = auto-sized per Run)
	dt     float64 // epoch length for the current Run

	shards []*shard
	cfgs   []*loadvec.Config // shard Configs, fixed at construction (refold scratch)
	root   *rng.RNG
	stale  []int // global loads as of the last reconciliation (filter only)

	// Folded global view (refreshed at each barrier and churn event).
	stats loadvec.FoldedStats
	time  float64
	acts  int64
	moves int64

	crossProposed int64
	crossApplied  int64

	// PostCheck, if non-nil, runs at every point where the global state is
	// refreshed and stop conditions are evaluated: each epoch barrier, or
	// each activation when P = 1. Phase tracking hooks in here.
	PostCheck func(*Sharded)
}

// shard is one worker's private slice of the system: the bins [lo, hi),
// their Config and sampler, a deterministic RNG stream, a local clock,
// and the bounded outbox for cross-shard move proposals.
type shard struct {
	id     int
	lo, hi int
	cfg    *loadvec.Config
	smp    *BallList
	r      *rng.RNG

	t        float64
	acts     int64
	moves    int64 // intra-shard protocol moves
	proposed int64

	out chan proposal

	// Barrier scratch, indexed by peer shard id. inbox[s] is written by
	// shard s in phase A and read by this shard in phase B; reject[s] is
	// written by this shard in phase B and read by shard s in phase C —
	// each slot has exactly one owner per phase, with the barrier
	// WaitGroups ordering the handover.
	inbox  [][]handoff
	reject [][]int32
}

// proposal is a cross-shard move candidate: global source and destination
// bins, queued by the source shard during an epoch.
type proposal struct{ src, dst int32 }

// handoff is a proposal whose source side has been applied: the ball left
// srcGlobal (whose load was srcLoad at detachment) and asks to land at the
// destination shard's local bin dstLocal.
type handoff struct {
	srcGlobal, dstLocal, srcLoad int32
}

// ShardedStop is a stop condition over the sharded engine's folded global
// state, evaluated at epoch barriers (every activation when P = 1).
type ShardedStop func(*Sharded) bool

// ShardedUntilPerfect stops at global perfect balance (disc < 1).
func ShardedUntilPerfect() ShardedStop {
	return func(s *Sharded) bool { return s.IsPerfect() }
}

// ShardedUntilBalanced stops once the global configuration is x-balanced.
func ShardedUntilBalanced(x float64) ShardedStop {
	return func(s *Sharded) bool { return s.Disc() <= x }
}

// ShardedUntilTime stops once continuous time reaches t.
func ShardedUntilTime(t float64) ShardedStop {
	return func(s *Sharded) bool { return s.Time() >= t }
}

// DefaultShards is the shard count used when a caller passes 0: a small
// constant rather than GOMAXPROCS so that fixed-seed runs reproduce across
// machines.
const DefaultShards = 4

// shardedActsPerEpoch sizes auto epochs: dt is chosen so each shard
// expects about this many activations between barriers — fine enough to
// track the process closely, coarse enough to amortize the barrier.
const shardedActsPerEpoch = 256

// NewSharded builds a sharded engine over a copy of the initial
// configuration with the given shard count (0 means DefaultShards) and
// epoch length (0 means auto: sized per Run so each shard expects
// shardedActsPerEpoch activations per epoch). The root RNG seeds the
// per-shard streams via deterministic splitting; with shards == 1 the
// root stream is used directly so the run is byte-identical to the direct
// engine's. It panics on a nil RNG or a shard count above the bin count.
func NewSharded(initial loadvec.Vector, shards int, epoch float64, root *rng.RNG) *Sharded {
	if root == nil {
		panic("sim: NewSharded with nil RNG")
	}
	if shards == 0 {
		shards = DefaultShards
	}
	if shards > len(initial) {
		shards = len(initial)
	}
	if shards < 1 || epoch < 0 {
		panic("sim: NewSharded with invalid shards or epoch")
	}
	n := len(initial)
	s := &Sharded{
		n:      n,
		p:      shards,
		epoch0: epoch,
		root:   root,
		stale:  append([]int(nil), initial...),
	}
	parts := loadvec.Partition(initial, shards)
	s.cfgs = make([]*loadvec.Config, shards)
	s.shards = make([]*shard, shards)
	for i, part := range parts {
		lo, hi := loadvec.PartitionRange(n, shards, i)
		r := root
		if shards > 1 {
			r = root.Split()
		}
		smp := NewBallList()
		smp.Reset(part)
		sh := &shard{
			id: i, lo: lo, hi: hi,
			cfg:    loadvec.NewConfig(part),
			smp:    smp,
			r:      r,
			inbox:  make([][]handoff, shards),
			reject: make([][]int32, shards),
		}
		s.cfgs[i] = sh.cfg
		s.shards[i] = sh
	}
	s.stats = loadvec.FoldStats(s.cfgs...)
	return s
}

// N returns the number of bins.
func (s *Sharded) N() int { return s.n }

// Shards returns the shard count P.
func (s *Sharded) Shards() int { return s.p }

// Stats returns the folded global view: live with P = 1, as of the last
// barrier otherwise.
func (s *Sharded) Stats() loadvec.FoldedStats {
	if s.p == 1 {
		c := s.shards[0].cfg
		return loadvec.FoldedStats{N: s.n, M: c.M(), Min: c.Min(), Max: c.Max()}
	}
	return s.stats
}

// M returns the global ball count.
func (s *Sharded) M() int { return s.Stats().M }

// Min returns the global minimum load.
func (s *Sharded) Min() int { return s.Stats().Min }

// Max returns the global maximum load.
func (s *Sharded) Max() int { return s.Stats().Max }

// Disc returns the global discrepancy.
func (s *Sharded) Disc() float64 { return s.Stats().Disc() }

// IsPerfect reports global perfect balance (disc < 1).
func (s *Sharded) IsPerfect() bool { return s.Stats().IsPerfect() }

// Time returns the elapsed continuous time (the furthest shard clock).
func (s *Sharded) Time() float64 {
	if s.p == 1 {
		return s.shards[0].t
	}
	return s.time
}

// Activations returns the total ball activations across all shards.
func (s *Sharded) Activations() int64 {
	if s.p == 1 {
		return s.shards[0].acts
	}
	return s.acts
}

// Moves returns the total protocol moves (intra-shard plus applied
// cross-shard).
func (s *Sharded) Moves() int64 {
	if s.p == 1 {
		return s.shards[0].moves
	}
	return s.moves
}

// CrossProposed returns how many cross-shard move proposals were queued.
func (s *Sharded) CrossProposed() int64 {
	if s.p == 1 {
		return 0
	}
	return s.crossProposed
}

// CrossApplied returns how many cross-shard moves were applied at
// barriers.
func (s *Sharded) CrossApplied() int64 { return s.crossApplied }

// ShardRange returns the global bin range [lo, hi) owned by shard i.
func (s *Sharded) ShardRange(i int) (lo, hi int) {
	return loadvec.PartitionRange(s.n, s.p, i)
}

// owner returns the shard owning a global bin in O(1).
func (s *Sharded) owner(bin int) int { return loadvec.PartitionOwner(s.n, s.p, bin) }

// Load returns the live load of a global bin in O(1) via the owning
// shard (always current: shard state only changes inside Run).
func (s *Sharded) Load(bin int) int {
	sh := s.shards[s.owner(bin)]
	return sh.cfg.Load(bin - sh.lo)
}

// Snapshot returns a copy of the global load vector (shard ranges
// concatenated in bin order).
func (s *Sharded) Snapshot() loadvec.Vector {
	v := make(loadvec.Vector, 0, s.n)
	for _, sh := range s.shards {
		v = append(v, sh.cfg.Loads()...)
	}
	return v
}

// GlobalConfig folds the shard states into a fresh global Config — the
// full-histogram reconciliation. Stop conditions only need the O(P)
// FoldedStats, so this O(n) fold is for callers that want every tracked
// statistic (tests, reporting).
func (s *Sharded) GlobalConfig() *loadvec.Config {
	return loadvec.NewConfig(s.Snapshot())
}

// AddBall inserts one ball into the given global bin (dynamic arrival),
// updating the owning shard's Config and sampler in place — O(1) plus the
// O(P) stats refold, never a rebuild.
func (s *Sharded) AddBall(bin int) {
	sh := s.shards[s.owner(bin)]
	sh.cfg.AddBall(bin - sh.lo)
	sh.smp.AddBall(bin - sh.lo)
	s.stale[bin]++
	s.refold()
}

// RemoveBall removes one ball from the given global bin (dynamic
// departure). It panics if the bin is empty.
func (s *Sharded) RemoveBall(bin int) {
	sh := s.shards[s.owner(bin)]
	sh.cfg.RemoveBall(bin - sh.lo)
	sh.smp.RemoveBall(bin - sh.lo)
	if s.stale[bin] > 0 {
		s.stale[bin]--
	}
	s.refold()
}

// RandomBin returns the bin of a uniformly random ball without advancing
// the run: shards are sampled proportionally to their ball mass, then a
// uniform resident ball within the shard. Draws come from the root
// stream; with P = 1 the single draw matches the direct engine's.
func (s *Sharded) RandomBin() int {
	if s.p == 1 {
		return s.shards[0].smp.Sample(s.root)
	}
	k := s.root.Int63n(int64(s.Stats().M))
	for _, sh := range s.shards {
		if m := int64(sh.cfg.M()); k < m {
			return sh.lo + sh.smp.Sample(s.root)
		} else {
			k -= m
		}
	}
	panic("sim: RandomBin fold out of range")
}

// refold refreshes the folded global stats from the shard Configs (O(P),
// allocation-free: the Config pointers are fixed at construction).
func (s *Sharded) refold() {
	s.stats = loadvec.FoldStats(s.cfgs...)
}

// Run advances the engine until stop returns true or maxActivations is
// exhausted (pass maxActivations <= 0 for DefaultActivationBudget). With
// P > 1 both are checked at epoch barriers, so the run may overshoot by
// up to one epoch.
func (s *Sharded) Run(stop ShardedStop, maxActivations int64) Result {
	res, _ := s.run(stop, maxActivations, 0, false)
	return res
}

// RunTraced behaves like Run but also samples the trajectory every
// `every` activations, at barrier granularity for P > 1 (a point is
// recorded at the first barrier on or past each boundary) and at
// activation granularity for P = 1 — mirroring Engine.RunTraced.
func (s *Sharded) RunTraced(stop ShardedStop, maxActivations, every int64) (Result, []TracePoint) {
	if every <= 0 {
		every = 1
	}
	return s.run(stop, maxActivations, every, true)
}

func (s *Sharded) run(stop ShardedStop, maxActivations, every int64, traced bool) (Result, []TracePoint) {
	if maxActivations <= 0 {
		maxActivations = DefaultActivationBudget
	}
	s.sizeEpoch()

	var trace []TracePoint
	var nextRecord int64
	record := func() {
		st := s.Stats()
		trace = append(trace, TracePoint{
			Time:        s.Time(),
			Activations: s.Activations(),
			Disc:        st.Disc(),
			MinLoad:     st.Min,
			MaxLoad:     st.Max,
		})
	}
	check := func() bool {
		if traced && s.Activations() >= nextRecord {
			record()
			nextRecord = (s.Activations()/every + 1) * every
		}
		if s.PostCheck != nil {
			s.PostCheck(s)
		}
		return stop(s)
	}
	if traced {
		record()
		nextRecord = s.Activations() + every
	}

	stopped := stop(s)
	for !stopped && s.Activations() < maxActivations {
		if s.p == 1 {
			stopped = s.runEpochSingle(maxActivations, check)
		} else {
			s.runEpochParallel()
			stopped = check()
		}
	}
	if traced && trace[len(trace)-1].Activations != s.Activations() {
		record()
	}
	return Result{
		Time:        s.Time(),
		Activations: s.Activations(),
		Moves:       s.Moves(),
		Stopped:     stopped,
		Final:       s.Snapshot(),
	}, trace
}

// sizeEpoch resolves the epoch length for this Run (auto mode reads the
// live ball count).
func (s *Sharded) sizeEpoch() {
	s.dt = s.epoch0
	if s.dt <= 0 {
		m := s.Stats().M
		if m < 1 {
			m = 1
		}
		s.dt = float64(shardedActsPerEpoch) * float64(s.p) / float64(m)
	}
}

// sizeQueues grows each shard's bounded proposal queue to 4x the epoch's
// expected activation count, re-read from the shard's *live* ball count
// every epoch: cross-shard moves and churn migrate ball mass between
// shards, and a queue sized from a stale count would cap a now-heavy
// shard's epoch budget far below its activation rate, silently stalling
// its clock behind the others. Queues are empty between barriers, so
// replacing the channel is safe.
func (s *Sharded) sizeQueues() {
	for _, sh := range s.shards {
		want := 4*int(s.dt*float64(sh.cfg.M())) + 64
		if sh.out == nil || cap(sh.out) < want {
			sh.out = make(chan proposal, want)
		}
	}
}

// runEpochSingle is the P = 1 degenerate path: the direct engine's exact
// per-activation loop (same RNG draws from the root stream, stop checked
// after every activation) bounded by one epoch of simulated time.
func (s *Sharded) runEpochSingle(maxActivations int64, check func() bool) bool {
	sh := s.shards[0]
	m := sh.cfg.M()
	if m == 0 {
		sh.t += s.dt
		return check()
	}
	fm := float64(m)
	end := sh.t + s.dt
	for sh.t < end && sh.acts < maxActivations {
		sh.t += sh.r.Exp(fm)
		sh.acts++
		src := sh.smp.Sample(sh.r)
		dst := sh.r.Intn(s.n)
		if dst != src && sh.cfg.Load(src) >= sh.cfg.Load(dst)+1 {
			sh.cfg.Move(src, dst)
			sh.smp.MoveBall(src, dst)
			sh.moves++
		}
		if check() {
			return true
		}
	}
	return false
}

// runEpochParallel runs one epoch concurrently across the shards and
// drains the cross-shard queues at the barrier.
func (s *Sharded) runEpochParallel() {
	s.sizeQueues()
	end := s.time + s.dt
	s.parallel(func(sh *shard) { sh.runEpoch(end, s.n, s.stale) })
	s.barrier()
}

// runEpoch advances one shard to the epoch horizon: local moves apply
// immediately; cross-shard candidates that pass the stale-load filter are
// queued for the barrier. The only other exit is a full queue — checked
// before each activation, so a send can never block — which just barriers
// the shard early at its current clock: the exponential gaps are
// memoryless, so an early barrier refines the shard's epoch granularity
// without changing the process law, and the shard resumes from its own
// clock next epoch (also how a lagging shard catches up to the horizon).
func (sh *shard) runEpoch(end float64, n int, stale []int) {
	m := sh.cfg.M()
	if m == 0 {
		if sh.t < end {
			sh.t = end
		}
		return
	}
	fm := float64(m)
	budget := cap(sh.out)
	for sent := 0; sh.t < end && sent < budget; {
		sh.t += sh.r.Exp(fm)
		sh.acts++
		src := sh.smp.Sample(sh.r)
		dst := sh.r.Intn(n)
		if dst >= sh.lo && dst < sh.hi {
			l := dst - sh.lo
			if l != src && sh.cfg.Load(src) >= sh.cfg.Load(l)+1 {
				sh.cfg.Move(src, l)
				sh.smp.MoveBall(src, l)
				sh.moves++
			}
		} else if sh.cfg.Load(src) >= stale[dst]+1 {
			sh.out <- proposal{int32(sh.lo + src), int32(dst)}
			sh.proposed++
			sent++
		}
	}
}

// barrier drains the proposal queues in three deterministic parallel
// phases (each phase runs one goroutine per shard over disjoint state,
// with WaitGroup edges ordering the handovers), then reconciles the
// folded global stats and the stale snapshot.
func (s *Sharded) barrier() {
	// Phase A — source side: drain the shard's own queue in send order,
	// re-validate against the live source load (it may have changed since
	// the proposal) and the stale destination filter, detach the ball and
	// hand it to the destination shard.
	s.parallel(func(sh *shard) {
		for {
			select {
			case p := <-sh.out:
				src := int(p.src) - sh.lo
				ld := sh.cfg.Load(src)
				if ld >= 1 && ld >= s.stale[p.dst]+1 {
					sh.cfg.RemoveBall(src)
					sh.smp.RemoveBall(src)
					dst := s.shards[s.owner(int(p.dst))]
					dst.inbox[sh.id] = append(dst.inbox[sh.id],
						handoff{p.src, p.dst - int32(dst.lo), int32(ld)})
				}
			default:
				return
			}
		}
	})
	// Phase B — destination side: walk inboxes in source-shard order and
	// re-check the RLS rule against the live destination load, so every
	// landed move satisfies ℓ_src ≥ ℓ_dst + 1 at application time and the
	// §3 monotonicity of min/max/disc survives sharding.
	applied := make([]int64, s.p)
	s.parallel(func(sh *shard) {
		for from := 0; from < s.p; from++ {
			for _, h := range sh.inbox[from] {
				dst := int(h.dstLocal)
				if int(h.srcLoad) >= sh.cfg.Load(dst)+1 {
					sh.cfg.AddBall(dst)
					sh.smp.AddBall(dst)
					applied[sh.id]++
				} else {
					sh.reject[from] = append(sh.reject[from], h.srcGlobal)
				}
			}
			sh.inbox[from] = sh.inbox[from][:0]
		}
	})
	// Phase C — restore refused balls at their source (no observable
	// state ever saw them gone: all three phases are inside one barrier),
	// then refresh this shard's slice of the stale snapshot.
	s.parallel(func(sh *shard) {
		for _, peer := range s.shards {
			for _, g := range peer.reject[sh.id] {
				l := int(g) - sh.lo
				sh.cfg.AddBall(l)
				sh.smp.AddBall(l)
			}
			peer.reject[sh.id] = peer.reject[sh.id][:0]
		}
		copy(s.stale[sh.lo:sh.hi], sh.cfg.Loads())
	})

	// Reconcile: fold counters and histogram extremes into the global view.
	var acts, moves, proposed int64
	maxT := s.time
	for _, sh := range s.shards {
		acts += sh.acts
		moves += sh.moves
		proposed += sh.proposed
		if sh.t > maxT {
			maxT = sh.t
		}
	}
	for _, a := range applied {
		s.crossApplied += a
	}
	s.acts = acts
	s.moves = moves + s.crossApplied
	s.crossProposed = proposed
	s.time = maxT
	s.refold()
}

// parallel runs fn once per shard, concurrently for P > 1.
func (s *Sharded) parallel(fn func(sh *shard)) {
	if s.p == 1 {
		fn(s.shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(s.p)
	for _, sh := range s.shards {
		go func(sh *shard) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	wg.Wait()
}

// Validate cross-checks every shard's tracked statistics and the folded
// global view; tests call it after randomized runs and churn.
func (s *Sharded) Validate() error {
	for _, sh := range s.shards {
		if err := sh.cfg.Validate(); err != nil {
			return err
		}
	}
	return nil
}

package sim

import (
	"math"
	"testing"

	"repro/internal/graphs"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// TestResolveGraphSampler pins the auto-mode choice: exact at or below
// the degree threshold, rejection above, and explicit overrides always
// honored. The concrete thresholds are load-bearing — every topology the
// byte-identical goldens cover must resolve to exact, or the goldens
// would silently start exercising a different sampler.
func TestResolveGraphSampler(t *testing.T) {
	for _, c := range []struct {
		n, want int
	}{{16, 8}, {256, 9}, {4096, 13}, {65536, 17}} {
		if got := GraphSamplerThreshold(c.n); got != c.want {
			t.Errorf("GraphSamplerThreshold(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// The golden-pinned families: ring (2), torus (4), expander (8), and
	// hypercube (log₂ n) all stay exact under auto at any catalogue size.
	for _, c := range []struct {
		name   string
		deg, n int
	}{
		{"ring", 2, 4096},
		{"torus", 4, 4096},
		{"expander", 8, 4096},
		{"hypercube-12", 12, 4096},
		{"hypercube-16", 16, 65536},
	} {
		if got := ResolveGraphSampler(GraphSamplerAuto, c.deg, c.n); got != GraphSamplerExact {
			t.Errorf("auto on %s (Δ=%d, n=%d) resolved to %v, want exact", c.name, c.deg, c.n, got)
		}
	}
	// Superconstant degree flips to rejection.
	for _, c := range []struct {
		deg, n int
	}{{9, 16}, {14, 4096}, {64, 4096}, {18, 65536}} {
		if got := ResolveGraphSampler(GraphSamplerAuto, c.deg, c.n); got != GraphSamplerRejection {
			t.Errorf("auto on Δ=%d, n=%d resolved to %v, want rejection", c.deg, c.n, got)
		}
	}
	// Explicit modes are never second-guessed.
	if got := ResolveGraphSampler(GraphSamplerExact, 1000, 16); got != GraphSamplerExact {
		t.Errorf("explicit exact resolved to %v", got)
	}
	if got := ResolveGraphSampler(GraphSamplerRejection, 2, 4096); got != GraphSamplerRejection {
		t.Errorf("explicit rejection resolved to %v", got)
	}
	// And the engine constructor follows the resolution.
	v := make(loadvec.Vector, 16)
	v[0] = 16
	if _, ok := NewGraphJumpEngine(v, graphs.Ring{Vertices: 16}, rng.New(1)).gidx.(*graphIndex); !ok {
		t.Error("auto engine on a ring did not build the exact index")
	}
	e := NewGraphJumpEngineMode(v, graphs.Ring{Vertices: 16}, GraphSamplerRejection, rng.New(1))
	if _, ok := e.gidx.(*graphHybrid); !ok {
		t.Error("rejection-mode engine did not build the hybrid sampler")
	}
}

// checkHybridInvariants validates the sampler's full state against the
// live loads: mirrored loads, the soundness invariant adm ≤ admUB ≤ Δ,
// and the Fenwick weights ŵ_i = load·admUB summing to the total.
func checkHybridInvariants(t *testing.T, gh *graphHybrid, cfg *loadvec.Config, step int) {
	t.Helper()
	var total int64
	for i := 0; i < cfg.N(); i++ {
		if int(gh.loads[i]) != cfg.Load(i) {
			t.Fatalf("step %d: load mirror[%d] = %d, config has %d", step, i, gh.loads[i], cfg.Load(i))
		}
		adm := gh.exactAdm(cfg, i)
		if gh.admUB[i] < adm || gh.admUB[i] > int32(gh.deg) {
			t.Fatalf("step %d: admUB[%d] = %d outside [adm=%d, Δ=%d]", step, i, gh.admUB[i], adm, gh.deg)
		}
		if want := int64(cfg.Load(i)) * int64(gh.admUB[i]); gh.wval[i] != want {
			t.Fatalf("step %d: ŵ[%d] = %d, want %d", step, i, gh.wval[i], want)
		}
		total += gh.wval[i]
	}
	if gh.total != total {
		t.Fatalf("step %d: Ŵ_G = %d, want %d", step, gh.total, total)
	}
}

// TestGraphHybridSoundBound drives the hybrid through the same
// move/churn/event mix the exact-index test uses and validates the
// soundness invariant throughout: the lazy bound never dips below the
// exact admissible count (which would skew the law), never exceeds the
// degree, and the Fenwick total tracks Σ load·admUB exactly. Events are
// included because rejections are the one place bounds tighten.
func TestGraphHybridSoundBound(t *testing.T) {
	r := rng.New(909)
	topos := []Topology{
		graphs.Ring{Vertices: 16},
		graphs.Expander{Side: 4},
		graphs.Hypercube{Dim: 4},
	}
	rr, err := graphs.NewRandomRegularSeed(16, 6, 44)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, rr)
	for _, g := range topos {
		n := g.N()
		v := make(loadvec.Vector, n)
		for i := range v {
			v[i] = r.Intn(5)
		}
		if v.Balls() == 0 {
			v[0] = 1
		}
		cfg := loadvec.NewConfig(v)
		gh := newGraphHybrid(cfg, g)
		checkHybridInvariants(t, gh, cfg, -1)
		for step := 0; step < 500; step++ {
			switch r.Intn(5) {
			case 0: // sampled event: a protocol move or a bound-tightening rejection
				if gh.total > 0 {
					if src, dst, ok := gh.event(cfg, r); ok {
						cfg.Move(src, dst)
						gh.update(cfg, src, dst)
					}
				}
			case 1: // destructive move
				src, dst := r.Intn(n), r.Intn(n)
				if src != dst && cfg.Load(src) > 0 {
					cfg.Move(src, dst)
					gh.update(cfg, src, dst)
				}
			case 2:
				bin := r.Intn(n)
				cfg.AddBall(bin)
				gh.update(cfg, bin)
			case 3:
				if bin := r.Intn(n); cfg.Load(bin) > 0 && cfg.M() > 1 {
					cfg.RemoveBall(bin)
					gh.update(cfg, bin)
				}
			case 4: // quiet step: invariants must hold between ops too
			}
			if step%17 == 0 {
				checkHybridInvariants(t, gh, cfg, step)
			}
		}
		checkHybridInvariants(t, gh, cfg, 500)
	}
}

// TestGraphHybridEventLaw checks the accepted-event law on a fixed
// configuration: conditioned on acceptance, pair (i, j) must appear with
// probability load(i)·s_ij/W_G (s_ij = parallel-slot multiplicity) —
// identical to the exact index — and the acceptance rate must match
// W_G/Ŵ_G. The bounds are first loosened to the trivial Δ so the
// rejection path actually runs; every rejection draw is undone before
// the next trial so the bound stays put and the per-trial law is fixed.
func TestGraphHybridEventLaw(t *testing.T) {
	g := graphs.Ring{Vertices: 5}
	v := loadvec.Vector{4, 1, 2, 0, 3}
	cfg := loadvec.NewConfig(v)
	gh := newGraphHybrid(cfg, g)
	for i := 0; i < cfg.N(); i++ {
		gh.setUB(i, int32(gh.deg)) // loosen: Ŵ_G = Σ load·Δ = 2m
	}
	W := float64(scratchGraphWeight(v, g))
	What := float64(gh.total)
	if What != float64(2*v.Balls()) {
		t.Fatalf("loosened Ŵ_G = %g, want %d", What, 2*v.Balls())
	}
	r := rng.New(77)
	const trials = 300000
	counts := map[[2]int]int{}
	accepted := 0
	for trial := 0; trial < trials; trial++ {
		src, dst, ok := gh.event(cfg, r)
		if !ok {
			// A rejection tightened admUB[src]; restore the loose bound so
			// every trial draws from the same fixed law.
			gh.setUB(src, int32(gh.deg))
			continue
		}
		if cfg.Load(dst) > cfg.Load(src)-1 {
			t.Fatalf("inadmissible accepted move %d→%d", src, dst)
		}
		counts[[2]int{src, dst}]++
		accepted++
	}
	if got, want := float64(accepted)/trials, W/What; math.Abs(got-want) > 0.01 {
		t.Fatalf("acceptance rate %g, want W/Ŵ = %g", got, want)
	}
	for pair, c := range counts {
		i, j := pair[0], pair[1]
		s := 0
		for k := 0; k < g.Degree(i); k++ {
			if g.Neighbor(i, k) == j {
				s++
			}
		}
		want := float64(v[i]) * float64(s) / W
		got := float64(c) / float64(accepted)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("pair %v: frequency %g, want %g", pair, got, want)
		}
	}
}

// TestGraphHybridBalancesDense runs the hybrid on a genuinely dense
// random-regular graph (Δ = 32 on n = 128, above threshold so auto picks
// it) from the all-in-one start to perfection — the workload the sampler
// exists for — and sanity-checks the result shape.
func TestGraphHybridBalancesDense(t *testing.T) {
	g, err := graphs.NewRandomRegularSeed(128, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := make(loadvec.Vector, 128)
	v[0] = 512
	e := NewGraphJumpEngine(v, g, rng.New(21))
	if _, ok := e.gidx.(*graphHybrid); !ok {
		t.Fatal("auto did not pick the hybrid for Δ=32, n=128")
	}
	res := e.Run(UntilPerfect(), 50_000_000)
	if !res.Stopped {
		t.Fatalf("dense hybrid run did not balance: %v", res)
	}
	if res.Final.Disc() != 0 {
		t.Fatalf("final discrepancy %g", res.Final.Disc())
	}
	if res.Moves < 500 || res.Activations < res.Moves {
		t.Fatalf("implausible counters: %v", res)
	}
}

// TestGraphHybridChurnWeight exercises the engine-level churn hooks
// (AddBall/RemoveBall/ForceMove) on a hybrid engine and validates the
// bound invariant after each, mirroring the exact index's churn test.
func TestGraphHybridChurnWeight(t *testing.T) {
	g := graphs.Expander{Side: 4}
	v := make(loadvec.Vector, 16)
	v[0] = 48
	e := NewGraphJumpEngineMode(v, g, GraphSamplerRejection, rng.New(6))
	gh := e.gidx.(*graphHybrid)
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		switch r.Intn(3) {
		case 0:
			e.AddBall(r.Intn(16))
		case 1:
			if bin := e.RandomBin(); e.Cfg().M() > 1 {
				e.RemoveBall(bin)
			}
		case 2:
			src, dst := r.Intn(16), r.Intn(16)
			if src != dst && e.Cfg().Load(src) > 0 {
				e.ForceMove(src, dst)
			}
		}
		e.Step()
		if i%11 == 0 {
			checkHybridInvariants(t, gh, e.Cfg(), i)
		}
	}
	checkHybridInvariants(t, gh, e.Cfg(), 300)
}

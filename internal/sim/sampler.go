// Package sim provides the continuous-time simulation engine on which the
// paper's process runs.
//
// Each of the m balls carries an independent exponential clock of rate 1
// (§3). The superposition of m such clocks is a Poisson process of rate m
// whose next ring belongs to a uniformly random ball, so the engine
// advances time by Exp(m) per activation and asks an ActivationSampler for
// the bin of the activated ball. Two interchangeable samplers are
// provided:
//
//   - BallList keeps an explicit ball→bin table (O(m) memory, O(1) per
//     activation). Sampling a uniform ball and reading its bin is exactly
//     the definition of the process.
//   - Fenwick keeps only per-bin loads in a Fenwick tree (O(n) memory,
//     O(log n) per activation) and samples a bin with probability
//     proportional to its load. Because balls are identical, this induces
//     the same law on load vectors.
//
// The two implementations cross-validate each other (experiment A1).
//
// Both samplers serve the *direct* engine, which materializes every
// activation. NewJumpEngine (jump.go) is the rejection-free alternative:
// it needs no activation sampler at all because it simulates only the
// embedded jump chain of productive moves, with null-activation blocks
// skipped geometrically (experiment A4 cross-validates the two modes).
package sim

import (
	"repro/internal/fenwick"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// ActivationSampler produces the source bin of each ball activation and
// mirrors ball movements so that subsequent activations see the updated
// configuration.
type ActivationSampler interface {
	// Reset initializes the sampler from a load vector.
	Reset(v loadvec.Vector)
	// Sample returns the bin of the next activated ball.
	Sample(r *rng.RNG) int
	// MoveBall records that one ball moved from bin src to bin dst.
	// Balls being identical, the sampler may move any ball residing in src.
	MoveBall(src, dst int)
	// AddBall records a new ball arriving in bin (dynamic churn).
	AddBall(bin int)
	// RemoveBall records a ball departing from bin (dynamic churn). Balls
	// being identical, the sampler may remove any ball residing in bin; it
	// panics if the bin is empty.
	RemoveBall(bin int)
	// Name identifies the sampler in benchmarks and logs.
	Name() string
}

// BallList is the direct implementation: an indexed multiset of balls.
// Every operation — sampling, moves, and churn — is O(1): ball ids are
// kept dense by swap-deleting the departing ball with the highest id, and
// pos tracks each ball's slot within its bin list so the relabelling
// needs no scan.
type BallList struct {
	ballBin []int32   // ball id -> bin
	pos     []int32   // ball id -> index within bins[ballBin[id]]
	bins    [][]int32 // bin -> ball ids (unordered)
}

// NewBallList returns an empty ball-list sampler; call Reset before use.
func NewBallList() *BallList { return &BallList{} }

// Reset implements ActivationSampler.
func (b *BallList) Reset(v loadvec.Vector) {
	m := v.Balls()
	b.ballBin = make([]int32, 0, m)
	b.pos = make([]int32, 0, m)
	b.bins = make([][]int32, len(v))
	id := int32(0)
	for bin, load := range v {
		lst := make([]int32, 0, load)
		for j := 0; j < load; j++ {
			b.ballBin = append(b.ballBin, int32(bin))
			b.pos = append(b.pos, int32(j))
			lst = append(lst, id)
			id++
		}
		b.bins[bin] = lst
	}
}

// Sample implements ActivationSampler: a uniformly random ball's bin.
func (b *BallList) Sample(r *rng.RNG) int {
	return int(b.ballBin[r.Intn(len(b.ballBin))])
}

// RandomBin returns a uniformly random ball's bin without any other state
// change — the same draw as Sample, exposed for callers (Session churn)
// that pick a departure target rather than an activation.
func (b *BallList) RandomBin(r *rng.RNG) int {
	return b.Sample(r)
}

// MoveBall implements ActivationSampler, moving an arbitrary ball out of
// src in O(1) (the last one in src's list).
func (b *BallList) MoveBall(src, dst int) {
	lst := b.bins[src]
	if len(lst) == 0 {
		panic("sim: MoveBall from empty bin")
	}
	ball := lst[len(lst)-1]
	b.bins[src] = lst[:len(lst)-1]
	b.pos[ball] = int32(len(b.bins[dst]))
	b.bins[dst] = append(b.bins[dst], ball)
	b.ballBin[ball] = int32(dst)
}

// AddBall implements ActivationSampler: the new ball takes the next dense
// id, in O(1).
func (b *BallList) AddBall(bin int) {
	id := int32(len(b.ballBin))
	b.ballBin = append(b.ballBin, int32(bin))
	b.pos = append(b.pos, int32(len(b.bins[bin])))
	b.bins[bin] = append(b.bins[bin], id)
}

// RemoveBall implements ActivationSampler: an arbitrary ball leaves bin in
// O(1). The highest ball id is relabelled into the departing slot so ids
// stay dense and Sample remains a single array index.
func (b *BallList) RemoveBall(bin int) {
	lst := b.bins[bin]
	if len(lst) == 0 {
		panic("sim: RemoveBall from empty bin")
	}
	gone := lst[len(lst)-1]
	b.bins[bin] = lst[:len(lst)-1]
	last := int32(len(b.ballBin) - 1)
	if gone != last {
		b.ballBin[gone] = b.ballBin[last]
		b.pos[gone] = b.pos[last]
		b.bins[b.ballBin[last]][b.pos[last]] = gone
	}
	b.ballBin = b.ballBin[:last]
	b.pos = b.pos[:last]
}

// Bin returns the bin of ball id — the read half of Sample, exposed so the
// sharded epoch loop can batch its uniform ball-id draws into a flat array
// (rng.FillIntn) and resolve each id against the live table at event time.
func (b *BallList) Bin(id int) int { return int(b.ballBin[id]) }

// Name implements ActivationSampler.
func (b *BallList) Name() string { return "ball-list" }

// Load returns the number of balls the sampler believes are in bin i
// (used by tests to check consistency with the Config).
func (b *BallList) Load(i int) int { return len(b.bins[i]) }

// Fenwick samples bins with probability proportional to load using a
// shared fenwick.Tree over the load vector.
type Fenwick struct {
	t *fenwick.Tree // bin loads
	n int
	m int
}

// NewFenwick returns an empty Fenwick sampler; call Reset before use.
func NewFenwick() *Fenwick { return &Fenwick{} }

// Reset implements ActivationSampler.
func (f *Fenwick) Reset(v loadvec.Vector) {
	f.n = len(v)
	f.m = v.Balls()
	vals := make([]int64, f.n)
	for i, load := range v {
		vals[i] = int64(load)
	}
	f.t = fenwick.From(vals)
}

// prefix returns the sum of loads of bins 1..pos (1-based); tests use it
// to cross-check Load.
func (f *Fenwick) prefix(pos int) int { return int(f.t.Prefix(pos - 1)) }

// Sample implements ActivationSampler: draws k uniform in [0, m) and
// returns the bin holding the (k+1)-th ball in bin order, via the
// standard Fenwick binary descend.
func (f *Fenwick) Sample(r *rng.RNG) int {
	k := r.Intn(f.m)
	bin, _ := f.t.Find(int64(k))
	return bin
}

// MoveBall implements ActivationSampler.
func (f *Fenwick) MoveBall(src, dst int) {
	f.t.Add(src, -1)
	f.t.Add(dst, +1)
}

// AddBall implements ActivationSampler: one point update, O(log n).
func (f *Fenwick) AddBall(bin int) {
	f.t.Add(bin, +1)
	f.m++
}

// RemoveBall implements ActivationSampler: one point update, O(log n).
func (f *Fenwick) RemoveBall(bin int) {
	if f.Load(bin) == 0 {
		panic("sim: RemoveBall from empty bin")
	}
	f.t.Add(bin, -1)
	f.m--
}

// Name implements ActivationSampler.
func (f *Fenwick) Name() string { return "fenwick" }

// Load returns the load of bin i according to the tree with a single
// O(log n) traversal (fenwick.Tree's Value descend).
func (f *Fenwick) Load(i int) int { return int(f.t.Value(i)) }

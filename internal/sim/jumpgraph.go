package sim

import (
	"repro/internal/fenwick"
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Topology is the neighborhood view the graph jump engine needs: bins are
// vertices and a ball in bin i samples its destination uniformly among
// i's neighbor slots. It is the structural subset of graphs.Graph that
// sim consumes, declared locally so the engine package does not depend on
// the topology catalogue.
type Topology interface {
	// N returns the number of vertices (bins).
	N() int
	// Degree returns the number of neighbor slots of vertex i.
	Degree(i int) int
	// Neighbor returns the k-th neighbor of vertex i, 0 ≤ k < Degree(i).
	Neighbor(i, k int) int
}

// graphIndex is the per-source admissible structure behind the graph
// jump engine. For a Δ-regular topology it maintains, per bin i,
//
//	adm[i] = #{slots k : load(Neighbor(i,k)) ≤ load(i) − 1}
//
// and a bin-indexed Fenwick tree over the weights w_i = load(i)·adm[i],
// whose total is the graph move weight
//
//	W_G = Σ_i load(i)·adm[i].
//
// One activation picks a uniform ball (bin ∝ load) and a uniform slot,
// so the per-activation move probability is exactly W_G/(m·Δ) and the
// conditional law of the move is (src, slot) ∝ load(src)·[admissible] —
// the embedded jump chain of GraphRLS, sampled with no rejection.
//
// Counting neighbor *slots* rather than distinct neighbors makes the law
// match GraphRLS exactly even on multigraphs (a parallel edge doubles a
// destination's probability in both) and makes self-loops harmless (a
// self-slot is never admissible).
//
// A load change at bin b can flip the admissibility of b's own slots and
// of the slot pointing back at b from each neighbor, so an update
// recomputes the (≤ 1+Δ)-bin neighborhood by scan: O(Δ²) comparisons
// plus O(Δ·log n) tree updates per move or churn event. That is the
// bounded-degree trade: exact weights and zero rejections for ring,
// torus, hypercube, and friends; dense graphs (Δ ~ n) want the
// level-bound rejection scheme instead (see ROADMAP).
type graphIndex struct {
	g     Topology
	deg   int           // uniform degree Δ
	adm   []int32       // admissible slot count per bin
	wval  []int64       // current w_i = load(i)·adm[i]
	wt    *fenwick.Tree // Fenwick over wval
	total int64         // W_G

	// Scratch for update's neighborhood dedup (epoch stamping, no alloc).
	stamp   []int64
	epoch   int64
	touched []int32
}

// newGraphIndex builds the structure for the configuration's current
// state. It panics unless the topology covers exactly the configuration's
// bins and is regular with degree ≥ 1 — regularity is what makes the
// per-activation move probability a single ratio W_G/(m·Δ).
func newGraphIndex(cfg *loadvec.Config, g Topology) *graphIndex {
	n := cfg.N()
	deg := regularTopologyDegree(cfg, g)
	gx := &graphIndex{
		g:       g,
		deg:     deg,
		adm:     make([]int32, n),
		wval:    make([]int64, n),
		wt:      fenwick.New(n),
		stamp:   make([]int64, n),
		touched: make([]int32, 0, 2*(deg+1)),
	}
	for i := 0; i < n; i++ {
		gx.recompute(cfg, i)
	}
	return gx
}

// recompute rescans bin i's slots against the live loads and applies the
// weight difference as a point update.
func (gx *graphIndex) recompute(cfg *loadvec.Config, i int) {
	li := cfg.Load(i)
	a := 0
	for k := 0; k < gx.deg; k++ {
		if cfg.Load(gx.g.Neighbor(i, k)) <= li-1 {
			a++
		}
	}
	gx.adm[i] = int32(a)
	w := int64(li) * int64(a)
	if d := w - gx.wval[i]; d != 0 {
		gx.wt.Add(i, d)
		gx.wval[i] = w
		gx.total += d
	}
}

// update refreshes the structure after the loads of the given bins
// changed (a move's endpoints, or one churn bin): each changed bin and
// its full neighborhood are recomputed once, deduplicated by epoch stamp.
func (gx *graphIndex) update(cfg *loadvec.Config, bins ...int) {
	gx.epoch++
	touched := gx.touched[:0]
	add := func(i int) {
		if gx.stamp[i] != gx.epoch {
			gx.stamp[i] = gx.epoch
			touched = append(touched, int32(i))
		}
	}
	for _, b := range bins {
		add(b)
		for k := 0; k < gx.deg; k++ {
			add(gx.g.Neighbor(b, k))
		}
	}
	for _, i := range touched {
		gx.recompute(cfg, int(i))
	}
	gx.touched = touched[:0]
}

func (gx *graphIndex) topology() Topology { return gx.g }
func (gx *graphIndex) weight() int64      { return gx.total }
func (gx *graphIndex) degree() int        { return gx.deg }

// event implements graphSampler: the exact index never rejects, so every
// eventful activation is the move sample itself.
func (gx *graphIndex) event(cfg *loadvec.Config, r *rng.RNG) (src, dst int, ok bool) {
	src, dst = gx.sample(cfg, r)
	return src, dst, true
}

// sample draws one jump-chain move: src with probability ∝
// load(src)·adm[src], then a uniform admissible slot of src. The caller
// guarantees total > 0.
func (gx *graphIndex) sample(cfg *loadvec.Config, r *rng.RNG) (src, dst int) {
	i, rem := gx.wt.Find(r.Int63n(gx.total))
	// rem is uniform over [0, load(i)·adm[i]); folding out the ball
	// multiplicity leaves a uniform admissible-slot index.
	j := int(rem % int64(gx.adm[i]))
	li := cfg.Load(i)
	for k := 0; k < gx.deg; k++ {
		nb := gx.g.Neighbor(i, k)
		if cfg.Load(nb) <= li-1 {
			if j == 0 {
				return i, nb
			}
			j--
		}
	}
	panic("sim: graph index admissible count out of sync")
}

// NewGraphJumpEngine builds a rejection-free engine for plain RLS
// restricted to a regular graph topology (the §7 extension simulated by
// graphs.GraphRLS): a ball in bin i samples a uniform neighbor slot and
// moves iff the neighbor's load is lower. Like NewJumpEngine it simulates
// only the embedded jump chain — Geometric(w/(m·Δ)) null blocks, Erlang
// time gaps — where w is either the exact move weight
// W_G = Σ_i load(i)·adm[i] maintained by per-source admissible-slot
// counts (graphIndex: O(Δ²+Δ·log n) per move, every event a real move)
// or, above the auto degree threshold, the lazy bound Ŵ_G ≥ W_G of the
// rejection-within-blocks sampler (graphHybrid: O(Δ·log n) per move,
// expected Ŵ_G/W_G events per move). SetHorizon's thinned-Poisson clamp
// conditions on the same w, so time-targeted runs stay exact in both.
//
// This constructor is NewGraphJumpEngineMode with GraphSamplerAuto: ring,
// torus, hypercube, and the expander keep the exact index (and their
// byte-identical goldens); random d-regular graphs with
// d > GraphSamplerThreshold(n) get the hybrid. The balancing-time law is
// identical to the direct engine's either way (experiment A8 KS-tests
// it). The topology must be regular; multigraph slots (parallel edges,
// self-loops) are handled exactly.
func NewGraphJumpEngine(initial loadvec.Vector, g Topology, r *rng.RNG) *Engine {
	return NewGraphJumpEngineMode(initial, g, GraphSamplerAuto, r)
}

package sim

import "repro/internal/loadvec"

// Dynamic shard repartitioning: work-stealing for the contiguous-range
// partition.
//
// A static partition load-imbalances as the process concentrates its work:
// in the end-game almost every eventful activation involves the few
// overloaded bins, so the shard owning that range does nearly all the
// simulation while its peers burn barriers on empty epochs. The policy
// here re-balances the range boundaries at epoch barriers:
//
//   - Trigger (O(P), every barrier): fold the per-shard event weights —
//     W_s + X_s for jump shards (the local and external eventful-move
//     mass the level index already maintains), ball mass m_s for plain
//     shards (every activation costs the same there). If the heaviest
//     shard carries more than repartRatioNum/repartRatioDen (3/2) of the
//     fair share, the partition is a candidate for re-cutting.
//   - Placement (O(n + Δ), gated): per-bin weights are derived from the
//     stale snapshot — which equals the live loads at every barrier — and
//     handed to loadvec.BalancedCuts: ℓ_i + 1 for plain shards (ball mass
//     = activation mass, plus one so empty stretches still spread), and
//     ℓ_i·H(ℓ_i−1) + 1 for jump shards, where H(w) counts the bins at
//     level ≤ w globally: the global eventful weight Σ_s (W_s + X_s)
//     decomposes per source bin as exactly w_i = ℓ_i·#{j : ℓ_j ≤ ℓ_i−1},
//     independent of where the cuts fall, so balancing these per-bin
//     weights balances the shards' event rates under *any* cuts.
//   - Hysteresis: a declined scan — the cuts come back unchanged, or the
//     new heaviest share is not materially lighter (improvement gate
//     7/8) — means the imbalance is intrinsic (e.g. the end-game's one
//     overloaded bin, whose weight no contiguous cut can split), so the
//     next scan backs off exponentially, repartCheckBase doubling up to
//     repartCheckMax barriers. End-game per-move barriers therefore pay
//     the O(P) trigger only, not an O(n) scan per move. Any barrier that
//     observes the trigger balanced again re-arms the backoff.
//   - Migration: shards whose range changed rebuild their Config (and
//     level index, sampler, dirty-journal mark) from the stale snapshot —
//     legitimate precisely because stale == live at barriers — and jump
//     mode rebuilds the external census under the new cuts
//     (rebuildExternal), which reinstalls every shard's external prefix.
//
// Determinism: the trigger reads folded barrier state, the placement is a
// pure function of (stale snapshot, P), and migration happens on the
// coordinator between epochs — no RNG draws, no scheduling dependence —
// so a fixed (seed, P) reproduces a repartitioned run exactly. P = 1
// never triggers (there is nothing to re-cut), preserving the
// byte-identical equivalence with the direct and jump engines.
const (
	repartCheckBase = 8    // initial decline backoff, in barriers
	repartCheckMax  = 1024 // backoff ceiling
	repartRatioNum  = 3    // trigger when maxShare > 3/2 · fair share
	repartRatioDen  = 2
	// Improvement gate: accept new cuts only if the heaviest share drops
	// below 7/8 of the current one — otherwise the imbalance is intrinsic
	// and re-cutting would only thrash migrations.
	repartGainNum = 7
	repartGainDen = 8
)

// SetRepartition enables or disables barrier repartitioning (enabled by
// default for P > 1). Tests pin static-partition behavior by disabling it.
func (s *Sharded) SetRepartition(on bool) { s.repartEnabled = on }

// Repartitions returns how many times the engine has re-cut the shard
// ranges.
func (s *Sharded) Repartitions() int64 { return s.repartitions }

// shardWeight is the trigger's per-shard work estimate: eventful-move
// weight for jump shards, ball mass (= activation mass) for plain shards.
func (s *Sharded) shardWeight(sh *shard) int64 {
	if s.jump {
		return sh.cfg.MoveWeight() + sh.cfg.ExternalMoveWeight()
	}
	return int64(sh.cfg.M())
}

// maybeRepartition runs at the tail of every barrier: the O(P) trigger
// always, the O(n) placement scan only when triggered and not backing
// off. See the package comment above for the policy.
func (s *Sharded) maybeRepartition() {
	if !s.repartEnabled || s.p == 1 {
		return
	}
	var total, maxw int64
	for _, sh := range s.shards {
		w := s.shardWeight(sh)
		total += w
		if w > maxw {
			maxw = w
		}
	}
	if total == 0 || maxw*int64(repartRatioDen*s.p) <= int64(repartRatioNum)*total {
		// Balanced: re-arm the backoff so a future imbalance scans promptly.
		s.repartBackoff = repartCheckBase
		s.repartWait = 0
		return
	}
	if s.repartWait > 0 {
		s.repartWait--
		return
	}
	if s.repartition() {
		s.repartBackoff = repartCheckBase
		s.repartWait = repartCheckBase // let the new cuts settle
	} else {
		s.repartWait = s.repartBackoff
		if s.repartBackoff < repartCheckMax {
			s.repartBackoff *= 2
		}
	}
}

// repartition computes balanced cuts from the per-bin weights and
// migrates if they are both different and materially better. Reports
// whether a migration happened.
func (s *Sharded) repartition() bool {
	if s.binWeights == nil {
		s.binWeights = make([]int64, s.n)
	}
	w := s.binWeights
	if s.jump {
		// H(v) = #{bins at stale level ≤ v} via a level histogram turned
		// prefix-sum in place; then w_i = ℓ_i·H(ℓ_i−1) + 1.
		maxLevel := 0
		for _, l := range s.stale {
			if l > maxLevel {
				maxLevel = l
			}
		}
		if cap(s.histScratch) <= maxLevel {
			s.histScratch = make([]int64, maxLevel+1)
		}
		hist := s.histScratch[:maxLevel+1]
		for i := range hist {
			hist[i] = 0
		}
		for _, l := range s.stale {
			hist[l]++
		}
		for v := 1; v <= maxLevel; v++ {
			hist[v] += hist[v-1]
		}
		for i, l := range s.stale {
			if l == 0 {
				w[i] = 1
			} else {
				w[i] = int64(l)*hist[l-1] + 1
			}
		}
	} else {
		for i, l := range s.stale {
			w[i] = int64(l) + 1
		}
	}
	cuts := loadvec.BalancedCuts(w, s.p)
	same := true
	for i := range cuts {
		if cuts[i] != s.cuts[i] {
			same = false
			break
		}
	}
	if same {
		return false
	}
	if partMax(w, cuts)*repartGainDen > partMax(w, s.cuts)*repartGainNum {
		return false
	}
	s.migrate(cuts)
	return true
}

// partMax returns the heaviest part's weight share under the given cuts.
func partMax(w []int64, cuts []int) int64 {
	var max int64
	for i := 0; i+1 < len(cuts); i++ {
		var sum int64
		for _, x := range w[cuts[i]:cuts[i+1]] {
			sum += x
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// migrate installs new cuts: every shard whose range moved rebuilds its
// Config, sampler/level index, and dirty-journal mark from the stale
// snapshot (== live loads at this barrier); jump mode then rebuilds the
// external census under the new boundaries. Runs on the coordinator with
// all journals drained (reconcileStale precedes it in the barrier), so
// nothing references the old ranges afterwards.
func (s *Sharded) migrate(cuts []int) {
	for i, sh := range s.shards {
		lo, hi := cuts[i], cuts[i+1]
		if lo == sh.lo && hi == sh.hi {
			continue
		}
		part := loadvec.Vector(s.stale[lo:hi])
		sh.lo, sh.hi = lo, hi
		sh.cfg = loadvec.NewConfig(part)
		if s.jump {
			sh.cfg.EnableLevelIndex()
			sh.dirtyMark = make([]bool, hi-lo)
			sh.dirty = sh.dirty[:0]
		} else {
			sh.smp.Reset(part)
		}
		s.cfgs[i] = sh.cfg
	}
	copy(s.cuts, cuts)
	if s.jump {
		s.rebuildExternal() // new boundaries → new external populations
	}
	s.refold()
	s.repartitions++
}

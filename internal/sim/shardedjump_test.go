package sim

import (
	"math"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/stats"
)

func shardedJumpFrom(n, m, p int, epoch float64, seed uint64) *Sharded {
	r := rng.New(seed)
	v := loadvec.OneChoice().Generate(n, m, r)
	return NewShardedJump(v, p, epoch, r)
}

func TestShardedJumpBalances(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for _, epoch := range []float64{0, 0.05} {
			s := shardedJumpFrom(64, 512, p, epoch, 9)
			res := s.Run(ShardedUntilPerfect(), 50_000_000)
			if !res.Stopped {
				t.Fatalf("P=%d epoch=%g did not balance", p, epoch)
			}
			if d := loadvec.Vector(res.Final).Disc(); d >= 1 {
				t.Fatalf("P=%d epoch=%g final disc %g", p, epoch, d)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("P=%d epoch=%g: %v", p, epoch, err)
			}
			if res.Final.Balls() != 512 {
				t.Fatalf("P=%d lost balls: %d", p, res.Final.Balls())
			}
			if res.Moves >= res.Activations {
				t.Fatalf("P=%d moves %d not below activations %d", p, res.Moves, res.Activations)
			}
		}
	}
}

// TestShardedJumpDeterministic pins reproducibility: fixed (seed, P)
// reproduces the run bit for bit regardless of goroutine scheduling.
func TestShardedJumpDeterministic(t *testing.T) {
	run := func() Result {
		return shardedJumpFrom(48, 480, 4, 0, 1234).Run(ShardedUntilPerfect(), 0)
	}
	a, b := run(), run()
	if math.Float64bits(a.Time) != math.Float64bits(b.Time) ||
		a.Activations != b.Activations || a.Moves != b.Moves {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatalf("final loads diverged at bin %d", i)
		}
	}
}

// TestShardedJumpSingleShardMatchesJumpEngine is the engine-level half of
// the P = 1 byte-equivalence pin: the degenerate sharded jump engine must
// consume the root stream exactly as NewJumpEngine does, including the
// horizon-clamped final block of a time-targeted run.
func TestShardedJumpSingleShardMatchesJumpEngine(t *testing.T) {
	cases := []struct {
		name    string
		horizon float64
		stop    func() (StopCond, ShardedStop)
	}{
		{"perfect", 0, func() (StopCond, ShardedStop) { return UntilPerfect(), ShardedUntilPerfect() }},
		{"time", 2.5, func() (StopCond, ShardedStop) { return UntilTime(2.5), ShardedUntilTime(2.5) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mk := func() loadvec.Vector { return loadvec.AllInOne().Generate(32, 256, nil) }
			je := NewJumpEngine(mk(), rng.New(77))
			se := NewShardedJump(mk(), 1, 0, rng.New(77))
			if c.horizon > 0 {
				je.SetHorizon(c.horizon)
				se.SetHorizon(c.horizon)
			}
			jStop, sStop := c.stop()
			jres := je.Run(jStop, 0)
			sres := se.Run(sStop, 0)
			if math.Float64bits(jres.Time) != math.Float64bits(sres.Time) {
				t.Errorf("time %v != %v", jres.Time, sres.Time)
			}
			if jres.Activations != sres.Activations || jres.Moves != sres.Moves {
				t.Errorf("counters (%d,%d) != (%d,%d)",
					jres.Activations, jres.Moves, sres.Activations, sres.Moves)
			}
			for i := range jres.Final {
				if jres.Final[i] != sres.Final[i] {
					t.Fatalf("final loads differ at bin %d", i)
				}
			}
		})
	}
}

// TestShardedJumpMatchesDirectLaw is the law-equivalence gate at unit
// scale with fine epochs; experiment A6 runs the full-size version.
func TestShardedJumpMatchesDirectLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	const n, m, p, reps = 24, 192, 4, 300
	root := rng.New(4242)
	var directT, shardedT []float64
	var directActs, shardedActs float64
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		res := NewEngine(v, rlsRule{}, nil, r).Run(UntilPerfect(), 0)
		directT = append(directT, res.Time)
		directActs += float64(res.Activations)

		r2 := root.Split()
		e := NewShardedJump(loadvec.AllInOne().Generate(n, m, nil), p, float64(p)/float64(m), r2)
		res2 := e.Run(ShardedUntilPerfect(), 0)
		shardedT = append(shardedT, res2.Time)
		shardedActs += float64(res2.Activations)
	}
	if same, d := stats.SameDistribution(directT, shardedT, 0.001); !same {
		t.Errorf("balancing-time KS D = %g rejects the same-law hypothesis", d)
	}
	// The geometric blocks and truncated-epoch Poisson draws must tally the
	// skipped nulls faithfully.
	if ratio := shardedActs / directActs; math.Abs(ratio-1) > 0.10 {
		t.Errorf("activation ratio shardedjump/direct = %g, want ≈ 1", ratio)
	}
}

// TestShardedJumpTimeTargetExact pins the horizon semantics for P > 1:
// every jump shard truncates its final block at the clamped epoch end, so
// the run's reported time is the horizon itself, never past it.
func TestShardedJumpTimeTargetExact(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		const horizon = 3.25
		s := shardedJumpFrom(32, 320, p, 0, 11)
		s.SetHorizon(horizon)
		res := s.Run(ShardedUntilTime(horizon), 0)
		if !res.Stopped {
			t.Fatalf("P=%d did not reach the horizon", p)
		}
		if res.Time != horizon {
			t.Fatalf("P=%d time %v, want exactly %v", p, res.Time, horizon)
		}
		if res.Activations == 0 {
			t.Fatalf("P=%d no activations ticked", p)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

// TestShardedJumpChurn interleaves churn with jump-sharded execution and
// checks every shard's level index stays exact.
func TestShardedJumpChurn(t *testing.T) {
	s := shardedJumpFrom(16, 160, 4, 0, 21)
	r := rng.New(22)
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			switch r.Intn(3) {
			case 0:
				s.AddBall(r.Intn(16))
			case 1:
				if s.M() > 1 {
					s.RemoveBall(s.RandomBin())
				}
			case 2:
				s.AddBall(r.Intn(16))
				s.RemoveBall(s.RandomBin())
			}
		}
		s.SetHorizon(s.Time() + 0.25)
		s.Run(ShardedUntilTime(s.Time()+0.25), 0)
		s.SetHorizon(0)
		if err := s.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if s.M() <= 0 {
		t.Fatal("lost all balls")
	}
}

// TestShardedJumpExternalTables cross-checks the barrier-maintained
// external census against a brute-force recount of the stale snapshot,
// and the sampled-index → bin mapping against the exact external
// population — after a run whose barriers maintained the census
// incrementally, not just after a fresh build.
func TestShardedJumpExternalTables(t *testing.T) {
	s := shardedJumpFrom(33, 220, 4, 0, 5)
	// A short run populates non-trivial stale state; its end-game barriers
	// reconcile the census through the dirty-bin journals.
	s.Run(ShardedUntilBalanced(2), 0)
	for _, sh := range s.shards {
		maxStale := 0
		for _, l := range s.stale {
			if l > maxStale {
				maxStale = l
			}
		}
		for w := 0; w <= maxStale; w++ {
			var want int64
			external := map[int]bool{}
			for bin, l := range s.stale {
				if (bin < sh.lo || bin >= sh.hi) && l <= w {
					want++
					external[bin] = true
				}
			}
			if got := s.ext.External(sh.id, w); got != want {
				t.Fatalf("shard %d External(%d) = %d, want %d", sh.id, w, got, want)
			}
			// Every index below the prefix must map onto a distinct external
			// bin with stale load ≤ w.
			seen := map[int]bool{}
			for j := int64(0); j < want; j++ {
				bin := s.ext.ExternalBinAt(sh.id, w, j)
				if !external[bin] {
					t.Fatalf("shard %d ExternalBinAt(%d, %d) = %d: not external with stale ≤ %d",
						sh.id, w, j, bin, w)
				}
				if seen[bin] {
					t.Fatalf("shard %d ExternalBinAt(%d, ·) repeated bin %d", sh.id, w, bin)
				}
				seen[bin] = true
			}
		}
	}
}

package sim

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

func shardedFrom(n, m, p int, epoch float64, seed uint64) *Sharded {
	r := rng.New(seed)
	v := loadvec.OneChoice().Generate(n, m, r)
	return NewSharded(v, p, epoch, r)
}

func TestShardedBalances(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		s := shardedFrom(64, 512, p, 0, 9)
		res := s.Run(ShardedUntilPerfect(), 50_000_000)
		if !res.Stopped {
			t.Fatalf("P=%d did not balance", p)
		}
		if d := loadvec.Vector(res.Final).Disc(); d >= 1 {
			t.Fatalf("P=%d final disc %g", p, d)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if res.Final.Balls() != 512 {
			t.Fatalf("P=%d lost balls: %d", p, res.Final.Balls())
		}
	}
}

// Fixed seed and shard count must reproduce the run exactly, regardless
// of goroutine scheduling: the whole point of per-shard RNG streams and
// deterministic barrier draining.
func TestShardedDeterministic(t *testing.T) {
	run := func() Result {
		s := shardedFrom(48, 480, 4, 0.05, 1234)
		return s.Run(ShardedUntilPerfect(), 50_000_000)
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Activations != b.Activations || a.Moves != b.Moves {
		t.Fatalf("nondeterministic counters: %+v vs %+v", a, b)
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatalf("nondeterministic final loads at bin %d", i)
		}
	}
}

func TestShardedFoldedStatsMatchGlobal(t *testing.T) {
	s := shardedFrom(40, 400, 5, 0, 3)
	s.Run(ShardedUntilBalanced(2), 10_000_000)
	g := s.GlobalConfig()
	st := s.Stats()
	if st.Min != g.Min() || st.Max != g.Max() || st.M != g.M() || st.N != g.N() {
		t.Fatalf("folded stats %+v != global config %v", st, g)
	}
}

func TestShardedCrossMovesFlow(t *testing.T) {
	// All balls start in shard 0's range; balancing requires cross-shard
	// moves, so the queue must both propose and apply.
	r := rng.New(21)
	v := loadvec.AllInOne().Generate(32, 320, r)
	s := NewSharded(v, 4, 0.02, r)
	res := s.Run(ShardedUntilPerfect(), 50_000_000)
	if !res.Stopped {
		t.Fatal("did not balance")
	}
	if s.CrossApplied() == 0 || s.CrossProposed() < s.CrossApplied() {
		t.Fatalf("cross-move accounting: proposed=%d applied=%d",
			s.CrossProposed(), s.CrossApplied())
	}
	if res.Moves < s.CrossApplied() {
		t.Fatalf("moves %d below applied cross moves %d", res.Moves, s.CrossApplied())
	}
}

func TestShardedChurn(t *testing.T) {
	s := shardedFrom(24, 120, 3, 0, 8)
	for i := 0; i < 60; i++ {
		s.AddBall(i % 24)
		s.RemoveBall(s.RandomBin())
	}
	if s.M() != 120 {
		t.Fatalf("m = %d after balanced churn", s.M())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res := s.Run(ShardedUntilPerfect(), 50_000_000)
	if !res.Stopped || res.Final.Balls() != 120 {
		t.Fatalf("rebalance after churn: %+v", res)
	}
}

func TestShardedTimeTarget(t *testing.T) {
	s := shardedFrom(16, 160, 4, 0, 5)
	res := s.Run(ShardedUntilTime(3.0), 0)
	if !res.Stopped || res.Time < 3.0 {
		t.Fatalf("time target: %+v", res)
	}
	// Overshoot is at most about one epoch plus one activation gap.
	if res.Time > 3.0+10*s.dt {
		t.Fatalf("time overshoot too large: %g (dt=%g)", res.Time, s.dt)
	}
}

func TestShardedTraced(t *testing.T) {
	s := shardedFrom(16, 128, 2, 0, 19)
	res, trace := s.RunTraced(ShardedUntilPerfect(), 10_000_000, 50)
	if !res.Stopped {
		t.Fatal("did not balance")
	}
	if len(trace) < 2 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Activations <= trace[i-1].Activations {
			t.Fatal("trace activations not strictly increasing")
		}
		if trace[i].Time < trace[i-1].Time {
			t.Fatal("trace time not monotone")
		}
	}
	if last := trace[len(trace)-1]; last.Activations != res.Activations {
		t.Errorf("final trace point at %d activations, run ended at %d",
			last.Activations, res.Activations)
	}
}

// Sharding must preserve the §3 monotonicity: every applied move — local
// or barrier-drained — satisfies the RLS rule at application time, so the
// max load never increases and the min never decreases across a run.
func TestShardedMonotoneExtremes(t *testing.T) {
	s := shardedFrom(32, 640, 4, 0.05, 77)
	prevMin, prevMax := s.Min(), s.Max()
	violations := 0
	s.PostCheck = func(s *Sharded) {
		if s.Min() < prevMin || s.Max() > prevMax {
			violations++
		}
		prevMin, prevMax = s.Min(), s.Max()
	}
	s.Run(ShardedUntilPerfect(), 50_000_000)
	if violations != 0 {
		t.Fatalf("%d extreme-load monotonicity violations", violations)
	}
}

// Regression: an imbalanced start (all balls in shard 0) must not
// permanently throttle the shards that start light. The per-epoch queue
// budget is re-sized from each shard's live ball count, so shards that
// gain mass mid-run keep pace and every shard clock reaches the stop
// horizon — a stale budget left them silently lagging while Time()
// (the max clock) claimed completion.
func TestShardedImbalancedStartKeepsShardClocksInSync(t *testing.T) {
	r := rng.New(3)
	v := loadvec.AllInOne().Generate(1024, 8192, r)
	s := NewSharded(v, 4, 0, r)
	const horizon = 4.0
	res := s.Run(ShardedUntilTime(horizon), 0)
	for i, sh := range s.shards {
		if sh.t < horizon {
			t.Errorf("shard %d clock %.3f lags the stop horizon %.1f", i, sh.t, horizon)
		}
	}
	// Activation total must match the Poisson law: E = m·T = 32768 with
	// sd ≈ 181; a lagging shard under-simulates by thousands.
	if res.Activations < 31500 || res.Activations > 34000 {
		t.Errorf("activations %d far from m·T = 32768", res.Activations)
	}
}

func TestShardedShardCountClamped(t *testing.T) {
	r := rng.New(1)
	v := loadvec.OneChoice().Generate(3, 30, r)
	s := NewSharded(v, 8, 0, r) // more shards than bins: clamp to n
	if s.Shards() != 3 {
		t.Fatalf("shards = %d, want clamp to 3", s.Shards())
	}
	if res := s.Run(ShardedUntilPerfect(), 10_000_000); !res.Stopped {
		t.Fatal("did not balance")
	}
}

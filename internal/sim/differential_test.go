package sim

import (
	"testing"

	"repro/internal/graphs"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/testutil"
)

// The differential harness instantiated at the sim layer for the graph
// sampler pair. The claims, per testutil's taxonomy:
//
//   - auto ≡ exact below the degree threshold, byte for byte — the two
//     constructions are the same sampler, so every draw, move, and clock
//     must coincide (this doubles as the threshold regression at engine
//     granularity: if auto ever resolved differently, move sequences
//     would diverge on the first event);
//   - exact vs forced-rejection agree in law — the hybrid consumes
//     randomness differently (flagged nulls burn draws), so only the
//     balancing-time distribution is comparable.

// graphArm builds a fingerprint arm: a fresh engine over the topology in
// the given sampler mode, all-in-one start, run to perfection with the
// move sequence recorded.
func graphArm(g Topology, m int, mode GraphSamplerMode) testutil.Arm {
	return func(seed uint64) testutil.Fingerprint {
		v := make(loadvec.Vector, g.N())
		v[0] = m
		e := NewGraphJumpEngineMode(v, g, mode, rng.New(seed))
		var moves [][2]int
		e.PostMove = func(_ *Engine, src, dst int) {
			moves = append(moves, [2]int{src, dst})
		}
		res := e.Run(UntilPerfect(), 100_000_000)
		final := make([]int, len(res.Final))
		copy(final, res.Final)
		return testutil.Fingerprint{
			Time:        res.Time,
			Activations: res.Activations,
			Moves:       res.Moves,
			Final:       final,
			MoveSeq:     moves,
		}
	}
}

// catalogueTopologies is the bounded-degree set where both sampler paths
// exist and auto must pick exact.
func catalogueTopologies() []Topology {
	return []Topology{
		graphs.Ring{Vertices: 16},
		graphs.Torus2D{Side: 4},
		graphs.Hypercube{Dim: 4},
		graphs.Expander{Side: 4},
	}
}

func topoName(g Topology) string {
	if n, ok := g.(interface{ Name() string }); ok {
		return n.Name()
	}
	return "topology"
}

func TestGraphSamplerAutoByteIdenticalToExact(t *testing.T) {
	for _, g := range catalogueTopologies() {
		testutil.ByteIdentical(t, "auto-vs-exact/"+topoName(g),
			[]uint64{1, 42, 0xA11CE},
			graphArm(g, 4*g.N(), GraphSamplerAuto),
			graphArm(g, 4*g.N(), GraphSamplerExact))
	}
}

func TestGraphSamplerExactVsRejectionSameLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("law comparison needs replications")
	}
	// Forcing rejection on bounded-degree topologies is exactly where the
	// hybrid's bounds are loosest relative to W_G — the hardest regime
	// for the coupling to be wrong quietly, and the one place both
	// samplers run on identical graphs. α = 0.001 like the other
	// always-on law gates (A8 runs the dense families at α = 0.01).
	for _, g := range catalogueTopologies() {
		testutil.SameLaw(t, "exact-vs-rejection/"+topoName(g),
			0xD1FF+uint64(g.N())*131, 300, 0.001,
			graphArm(g, 2*g.N(), GraphSamplerExact),
			graphArm(g, 2*g.N(), GraphSamplerRejection))
	}
	// The dense-degree family the hybrid actually serves (auto resolves to
	// rejection here): degree above the threshold, m = 4n as in
	// BenchmarkGraphDense.
	rr, err := graphs.NewRandomRegularSeed(64, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	testutil.SameLaw(t, "exact-vs-rejection/random-16-regular",
		0xD1FF+64*131+1, 300, 0.001,
		graphArm(rr, 4*rr.N(), GraphSamplerExact),
		graphArm(rr, 4*rr.N(), GraphSamplerRejection))
}

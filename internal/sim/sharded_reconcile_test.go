package sim

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// TestShardedJumpIncrementalReconciliation is the incremental-vs-full
// reconciliation property test: it interleaves protocol moves (epochs),
// churn (AddBall/RemoveBall between runs), and barriers, and at *every*
// barrier asserts that the delta-maintained state — the stale snapshot,
// the StaleIndex census buckets and prefix trees, and each shard level
// index's external weights — is identical to what a from-scratch
// rebuildExternal would produce. Fine fixed epochs keep barriers frequent
// with only a handful of dirty bins each (the incremental path); the
// post-churn bursts near the dense start cross the reconcileThreshold
// fallback, so both reconciliation paths are exercised.
func TestShardedJumpIncrementalReconciliation(t *testing.T) {
	const n, m, p = 48, 330, 4
	r := rng.New(123)
	v := loadvec.OneChoice().Generate(n, m, r)
	s := NewShardedJump(v, p, 0.02, r)

	barriers := 0
	s.PostCheck = func(s *Sharded) {
		if s.ext == nil {
			return
		}
		barriers++
		// The snapshot must equal the live loads bin for bin: reconcileStale
		// replayed every journaled change (and nothing else drifted).
		live := s.Snapshot()
		for bin := range live {
			if s.stale[bin] != live[bin] {
				t.Fatalf("barrier %d: stale[%d] = %d, live %d", barriers, bin, s.stale[bin], live[bin])
			}
		}
		// The census's buckets, positions, and count trees must validate
		// against the snapshot.
		if err := s.ext.Validate(s.stale); err != nil {
			t.Fatalf("barrier %d: %v", barriers, err)
		}
		// Delta-maintained external prefixes must equal a from-scratch
		// rebuild of the census under the live cuts (repartitioning may
		// have moved them), for every shard at every level.
		fresh := loadvec.NewStaleIndexCuts(s.stale, s.Cuts())
		for _, sh := range s.shards {
			for w := -1; w <= s.ext.Levels()+1; w++ {
				if got, want := s.ext.External(sh.id, w), fresh.External(sh.id, w); got != want {
					t.Fatalf("barrier %d shard %d: External(%d) = %d, rebuild says %d",
						barriers, sh.id, w, got, want)
				}
			}
			// Each shard's ExternalPrefixUpdated-refreshed weights (the xw
			// tree behind X_s) must match the live prefix: Validate recomputes
			// every x[v] from extP from scratch.
			if err := sh.cfg.Validate(); err != nil {
				t.Fatalf("barrier %d shard %d: %v", barriers, sh.id, err)
			}
		}
	}

	churn := rng.New(321)
	for round := 0; round < 40; round++ {
		for i := 0; i < 6; i++ {
			switch churn.Intn(3) {
			case 0:
				s.AddBall(churn.Intn(n))
			case 1:
				if s.M() > 1 {
					s.RemoveBall(s.RandomBin())
				}
			default:
				s.AddBall(churn.Intn(n))
				if s.M() > 1 {
					s.RemoveBall(s.RandomBin())
				}
			}
		}
		end := s.Time() + 0.3
		s.SetHorizon(end)
		s.Run(ShardedUntilTime(end), 0)
		s.SetHorizon(0)
	}
	if barriers < 100 {
		t.Fatalf("only %d barriers checked — the property never ran", barriers)
	}
}

// TestShardedJumpReconcileJournalsDrain pins the journal bookkeeping:
// after a run every dirty journal is empty and every mark cleared, so
// state cannot leak between runs or accumulate across a session.
func TestShardedJumpReconcileJournalsDrain(t *testing.T) {
	s := shardedJumpFrom(40, 320, 4, 0, 17)
	s.Run(ShardedUntilPerfect(), 0)
	for _, sh := range s.shards {
		if len(sh.dirty) != 0 {
			t.Fatalf("shard %d: %d journal entries left after the final barrier", sh.id, len(sh.dirty))
		}
		for lb, marked := range sh.dirtyMark {
			if marked {
				t.Fatalf("shard %d: bin %d still marked dirty", sh.id, lb)
			}
		}
	}
	if err := s.ext.Validate(s.stale); err != nil {
		t.Fatal(err)
	}
}

// Package asciiplot renders the paper's illustration figures and the
// harness's measurement series as plain-text graphics, keeping the whole
// reproduction dependency-free. Bars renders load configurations in the
// style of Figures 1 and 3; Series renders x/y measurement curves.
package asciiplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bars renders a load configuration as a vertical bar chart, one column
// per bin, with an optional horizontal marker line (e.g. the average
// load), in the style of the paper's Figures 1 and 3.
func Bars(w io.Writer, title string, loads []int, marker float64, markerLabel string) {
	fmt.Fprintf(w, "%s\n", title)
	if len(loads) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	max := loads[0]
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	if marker > float64(max) {
		max = int(math.Ceil(marker))
	}
	if max == 0 {
		max = 1
	}
	markerRow := -1
	if marker > 0 {
		markerRow = int(math.Round(marker))
	}
	for level := max; level >= 1; level-- {
		var b strings.Builder
		if level == markerRow {
			fmt.Fprintf(&b, "%3d ~", level)
		} else {
			fmt.Fprintf(&b, "%3d |", level)
		}
		for _, l := range loads {
			if l >= level {
				b.WriteString(" █")
			} else if level == markerRow {
				b.WriteString(" ~")
			} else {
				b.WriteString("  ")
			}
		}
		if level == markerRow && markerLabel != "" {
			fmt.Fprintf(&b, "  <- %s", markerLabel)
		}
		fmt.Fprintln(w, b.String())
	}
	var axis strings.Builder
	axis.WriteString("    +")
	for range loads {
		axis.WriteString("--")
	}
	fmt.Fprintln(w, axis.String())
	var ids strings.Builder
	ids.WriteString("     ")
	for i := range loads {
		ids.WriteString(fmt.Sprintf("%d", (i+1)%10))
		ids.WriteString(" ")
	}
	fmt.Fprintf(w, "%s (bin ID mod 10)\n", strings.TrimRight(ids.String(), " "))
}

// Series renders an x/y curve on a width×height character grid with
// log-log support, for the measurement figures (e.g. E[T] vs n).
func Series(w io.Writer, title string, xs, ys []float64, width, height int, logX, logY bool) {
	fmt.Fprintf(w, "%s\n", title)
	if len(xs) != len(ys) || len(xs) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	tx := func(x float64) float64 {
		if logX {
			return math.Log(x)
		}
		return x
	}
	ty := func(y float64) float64 {
		if logY {
			return math.Log(y)
		}
		return y
	}
	minX, maxX := tx(xs[0]), tx(xs[0])
	minY, maxY := ty(ys[0]), ty(ys[0])
	for i := range xs {
		minX = math.Min(minX, tx(xs[i]))
		maxX = math.Max(maxX, tx(xs[i]))
		minY = math.Min(minY, ty(ys[i]))
		maxY = math.Max(maxY, ty(ys[i]))
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		col := int(math.Round((tx(xs[i]) - minX) / (maxX - minX) * float64(width-1)))
		row := int(math.Round((ty(ys[i]) - minY) / (maxY - minY) * float64(height-1)))
		grid[height-1-row][col] = '*'
	}
	for r, line := range grid {
		label := ""
		if r == 0 {
			label = fmt.Sprintf(" %.3g", ys[argmaxT(ys, ty)])
		}
		if r == height-1 {
			label = fmt.Sprintf(" %.3g", ys[argminT(ys, ty)])
		}
		fmt.Fprintf(w, "|%s|%s\n", string(line), label)
	}
	fmt.Fprintf(w, " x: [%.3g, %.3g]", xs[argminT(xs, tx)], xs[argmaxT(xs, tx)])
	if logX || logY {
		fmt.Fprintf(w, "  (log axes: x=%v y=%v)", logX, logY)
	}
	fmt.Fprintln(w)
}

func argminT(v []float64, t func(float64) float64) int {
	best := 0
	for i := range v {
		if t(v[i]) < t(v[best]) {
			best = i
		}
	}
	return best
}

func argmaxT(v []float64, t func(float64) float64) int {
	best := 0
	for i := range v {
		if t(v[i]) > t(v[best]) {
			best = i
		}
	}
	return best
}

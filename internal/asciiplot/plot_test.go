package asciiplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "demo", []int{3, 1, 0, 2}, 1.5, "avg")
	out := buf.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	// Height 3 bars + axis + ids + title: at least 6 lines.
	if len(lines) < 6 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	if !strings.Contains(out, "█") {
		t.Error("no bars drawn")
	}
	if !strings.Contains(out, "avg") {
		t.Error("marker label missing")
	}
	// The level-3 row must contain exactly one block (bin 0 only).
	for _, l := range lines {
		if strings.HasPrefix(l, "  3") {
			if strings.Count(l, "█") != 1 {
				t.Errorf("level-3 row wrong: %q", l)
			}
		}
		if strings.HasPrefix(l, "  1") {
			if strings.Count(l, "█") != 3 {
				t.Errorf("level-1 row wrong: %q", l)
			}
		}
	}
}

func TestBarsEmpty(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "empty", nil, 0, "")
	if !strings.Contains(buf.String(), "(empty)") {
		t.Error("empty case not handled")
	}
}

func TestBarsAllZero(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "zeros", []int{0, 0}, 0, "")
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestBarsMarkerAboveMax(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "m", []int{1, 1}, 5, "target")
	if !strings.Contains(buf.String(), "target") {
		t.Error("marker above max not rendered")
	}
}

func TestSeriesBasic(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "curve", []float64{1, 2, 3, 4}, []float64{1, 4, 9, 16}, 20, 8, false, false)
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
	if !strings.Contains(out, "x: [1, 4]") {
		t.Errorf("x range missing: %s", out)
	}
	if !strings.Contains(out, "16") || !strings.Contains(out, " 1") {
		t.Error("y extremes missing")
	}
}

func TestSeriesLogAxes(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "loglog", []float64{1, 10, 100}, []float64{2, 20, 200}, 30, 6, true, true)
	out := buf.String()
	if !strings.Contains(out, "log axes") {
		t.Error("log axes note missing")
	}
	// On log-log a power law is a straight line: the three points should
	// occupy three distinct columns (coarse structural check).
	if strings.Count(out, "*") != 3 {
		t.Errorf("want 3 points, got %d", strings.Count(out, "*"))
	}
}

func TestSeriesDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "flat", []float64{1, 2}, []float64{5, 5}, 10, 4, false, false)
	if buf.Len() == 0 {
		t.Error("no output for flat series")
	}
	var buf2 bytes.Buffer
	Series(&buf2, "bad", []float64{1}, []float64{1, 2}, 10, 4, false, false)
	if !strings.Contains(buf2.String(), "(no data)") {
		t.Error("mismatched input not handled")
	}
}

func TestSeriesClampsTinyDimensions(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "tiny", []float64{1, 2}, []float64{1, 2}, 1, 1, false, false)
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

package opensys

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	ok := Params{N: 8, Lambda: 0.5, Mu: 1, Beta: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{N: 1, Lambda: 0.5, Mu: 1},           // too few servers
		{N: 8, Lambda: 0, Mu: 1},             // zero arrivals
		{N: 8, Lambda: 0.5, Mu: 0},           // zero service
		{N: 8, Lambda: 0.5, Mu: 1, Beta: -1}, // negative migration
		{N: 8, Lambda: 1.2, Mu: 1},           // unstable
		{N: 8, Lambda: 1, Mu: 1},             // critically loaded
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestSystemConservation(t *testing.T) {
	r := rng.New(1)
	s, err := New(Params{N: 16, Lambda: 0.7, Mu: 1, Beta: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		s.Step()
		// Jobs must equal arrivals − departures and the load sum.
		if int64(s.Jobs()) != s.Arrivals-s.Departures {
			t.Fatalf("job accounting broken at step %d", i)
		}
	}
	sum := 0
	minL, maxL := math.MaxInt, 0
	for _, l := range s.Loads() {
		sum += l
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if sum != s.Jobs() {
		t.Fatalf("loads sum %d != jobs %d", sum, s.Jobs())
	}
	if minL != int(math.Min(float64(minL), float64(s.min))) || s.min != minL || s.max != maxL {
		t.Fatalf("min/max tracking: cached (%d,%d) vs true (%d,%d)", s.min, s.max, minL, maxL)
	}
}

func TestSystemTimeAdvances(t *testing.T) {
	r := rng.New(2)
	s, _ := New(Params{N: 8, Lambda: 0.5, Mu: 1, Beta: 0}, r)
	for i := 0; i < 1000; i++ {
		before := s.Time()
		s.Step()
		if s.Time() <= before {
			t.Fatal("time did not advance")
		}
	}
}

func TestBetaZeroMatchesMM1MeanJobs(t *testing.T) {
	// Without migration the system is n independent M/M/1 queues:
	// time-averaged jobs per server ≈ ρ/(1−ρ).
	r := rng.New(3)
	rho := 0.6
	p := Params{N: 32, Lambda: rho, Mu: 1, Beta: 0}
	s, _ := New(p, r)
	st := s.Run(2000, 30000)
	perServer := st.MeanJobs / float64(p.N)
	want := MM1MeanJobs(rho)
	if math.Abs(perServer-want) > 0.12*want {
		t.Fatalf("mean jobs/server = %g, want ~%g", perServer, want)
	}
}

func TestMigrationDoesNotIncreaseMeanJobs(t *testing.T) {
	// Migration moves jobs between servers but does not create or
	// destroy them, and service capacity is only ever *better* utilized
	// (fewer idle servers while work queues elsewhere — approaching the
	// pooled M/M/n system), so mean jobs with β=1 must not exceed the
	// β=0 value by more than noise.
	r0 := rng.New(4)
	r1 := rng.New(5)
	rho := 0.7
	s0, _ := New(Params{N: 32, Lambda: rho, Mu: 1, Beta: 0}, r0)
	s1, _ := New(Params{N: 32, Lambda: rho, Mu: 1, Beta: 1}, r1)
	st0 := s0.Run(2000, 20000)
	st1 := s1.Run(2000, 20000)
	if st1.MeanJobs > st0.MeanJobs*1.1 {
		t.Fatalf("migration increased mean jobs: %g vs %g", st1.MeanJobs, st0.MeanJobs)
	}
}

func TestMigrationReducesMaxQueueAndDisc(t *testing.T) {
	// The headline open-system effect: RLS migration collapses the
	// log_{1/ρ}(n) max-queue profile toward the mean.
	rho := 0.8
	n := 64
	s0, _ := New(Params{N: n, Lambda: rho, Mu: 1, Beta: 0}, rng.New(6))
	s1, _ := New(Params{N: n, Lambda: rho, Mu: 1, Beta: 1}, rng.New(7))
	st0 := s0.Run(3000, 20000)
	st1 := s1.Run(3000, 20000)
	if st1.MeanMax >= st0.MeanMax {
		t.Fatalf("migration did not reduce mean max queue: %g vs %g", st1.MeanMax, st0.MeanMax)
	}
	if st1.MeanDisc >= st0.MeanDisc {
		t.Fatalf("migration did not reduce mean disc: %g vs %g", st1.MeanDisc, st0.MeanDisc)
	}
	// And the no-migration max should be in the right ballpark of the
	// extreme-value scale (within a factor ~3 either way).
	scale := MM1MaxQueueScale(n, rho)
	if st0.MeanMax < scale/3 || st0.MeanMax > 3*scale+5 {
		t.Fatalf("β=0 mean max %g far from the log_{1/ρ} n scale %g", st0.MeanMax, scale)
	}
}

func TestStatsWindowAccounting(t *testing.T) {
	r := rng.New(8)
	s, _ := New(Params{N: 8, Lambda: 0.5, Mu: 1, Beta: 1}, r)
	st := s.Run(100, 500)
	if st.Window < 500 {
		t.Fatalf("window = %g, want >= 500", st.Window)
	}
	if st.FracPerfect < 0 || st.FracPerfect > 1 {
		t.Fatalf("FracPerfect = %g outside [0,1]", st.FracPerfect)
	}
	if st.MeanJobs <= 0 {
		t.Fatal("mean jobs should be positive under load")
	}
}

func TestMM1Formulas(t *testing.T) {
	if math.Abs(MM1MeanJobs(0.5)-1) > 1e-12 {
		t.Error("MM1MeanJobs(0.5) != 1")
	}
	// log_{2}(64) = 6 at rho = 0.5.
	if math.Abs(MM1MaxQueueScale(64, 0.5)-6) > 1e-12 {
		t.Error("MM1MaxQueueScale wrong")
	}
}

func TestHighMigrationRateKeepsPerfectBalanceMostOfTheTime(t *testing.T) {
	// With a fast migration clock relative to arrivals, the system stays
	// perfectly balanced for a substantial fraction of time.
	s, _ := New(Params{N: 16, Lambda: 0.5, Mu: 1, Beta: 20}, rng.New(9))
	st := s.Run(500, 5000)
	if st.FracPerfect < 0.5 {
		t.Fatalf("fast migration kept perfect balance only %.0f%% of the time", 100*st.FracPerfect)
	}
}

// Package opensys implements the *open-system* variant of RLS studied by
// Ganesh, Lilienthal, Manjunath, Proutiere and Simatos [11] ("Load
// balancing via random local search in closed and open systems"), the
// paper this reproduction's headline result improves upon in the closed
// setting. In the open system:
//
//   - jobs (balls) arrive as a Poisson process of rate λ·n and join a
//     uniformly random server (bin);
//   - each server completes one job at rate μ while non-empty (n M/M/1
//     queues; stability requires ρ = λ/μ < 1);
//   - while waiting, each job carries an RLS migration clock of rate β:
//     on a ring it samples a uniform server and migrates iff the
//     destination queue is strictly shorter (the §3 rule).
//
// With β = 0 the system is n independent M/M/1 queues whose maximum
// stationary queue grows like log_{1/ρ} n; with β > 0 RLS migration
// keeps the configuration near-balanced. Experiment O1 measures exactly
// that contrast.
package opensys

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Params configures an open system.
type Params struct {
	// N is the number of servers.
	N int
	// Lambda is the per-server arrival rate (system arrival rate λ·N).
	Lambda float64
	// Mu is the per-server service rate.
	Mu float64
	// Beta is the per-job RLS migration clock rate (0 disables
	// migration; 1 matches the paper's rate-1 clocks).
	Beta float64
}

// Validate checks parameter sanity including stability.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("opensys: need at least 2 servers")
	}
	if p.Lambda <= 0 || p.Mu <= 0 {
		return fmt.Errorf("opensys: rates must be positive")
	}
	if p.Beta < 0 {
		return fmt.Errorf("opensys: negative migration rate")
	}
	if p.Lambda >= p.Mu {
		return fmt.Errorf("opensys: unstable system (λ=%g ≥ μ=%g)", p.Lambda, p.Mu)
	}
	return nil
}

// System is a running open system. It maintains queue lengths, a Fenwick
// tree for load-proportional migration sampling, a dynamic set of busy
// servers for service sampling, and a load histogram with min/max for
// O(1) discrepancy tracking — all under arrivals, departures and
// migrations (each a ±1 change).
type System struct {
	p     Params
	r     *rng.RNG
	loads []int
	jobs  int // total jobs in system

	tree []int // Fenwick over loads (1-based)

	busy    []int // list of non-empty servers
	busyPos []int // server -> index in busy, or -1

	count    []int // histogram: count[v] = #servers with queue length v
	min, max int

	time float64
	// Event counters.
	Arrivals, Departures, Migrations, FailedMigrations int64
}

// New creates an empty open system.
func New(p Params, r *rng.RNG) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		p:       p,
		r:       r,
		loads:   make([]int, p.N),
		tree:    make([]int, p.N+1),
		busyPos: make([]int, p.N),
		count:   make([]int, 4),
	}
	for i := range s.busyPos {
		s.busyPos[i] = -1
	}
	s.count[0] = p.N
	return s, nil
}

// Time returns the elapsed continuous time.
func (s *System) Time() float64 { return s.time }

// Jobs returns the number of jobs currently in the system.
func (s *System) Jobs() int { return s.jobs }

// Loads returns a copy of the queue-length vector.
func (s *System) Loads() []int { return append([]int(nil), s.loads...) }

// MaxQueue returns the current maximum queue length.
func (s *System) MaxQueue() int { return s.max }

// Disc returns the discrepancy max_i |ℓ_i − jobs/n|.
func (s *System) Disc() float64 {
	avg := float64(s.jobs) / float64(s.p.N)
	return math.Max(float64(s.max)-avg, avg-float64(s.min))
}

// fenwick helpers.
func (s *System) treeAdd(server, delta int) {
	for pos := server + 1; pos <= s.p.N; pos += pos & (-pos) {
		s.tree[pos] += delta
	}
}

// sampleJobServer returns the server of a uniformly random job.
func (s *System) sampleJobServer() int {
	k := s.r.Intn(s.jobs)
	pos := 0
	step := 1
	for step<<1 <= s.p.N {
		step <<= 1
	}
	for ; step > 0; step >>= 1 {
		next := pos + step
		if next <= s.p.N && s.tree[next] <= k {
			pos = next
			k -= s.tree[next]
		}
	}
	return pos
}

// adjust moves server v's queue by ±1 and maintains every structure.
func (s *System) adjust(server, delta int) {
	v := s.loads[server]
	w := v + delta
	if w < 0 {
		panic("opensys: negative queue")
	}
	s.loads[server] = w
	s.treeAdd(server, delta)
	s.jobs += delta
	// Busy set.
	if v == 0 && w > 0 {
		s.busyPos[server] = len(s.busy)
		s.busy = append(s.busy, server)
	} else if v > 0 && w == 0 {
		idx := s.busyPos[server]
		last := s.busy[len(s.busy)-1]
		s.busy[idx] = last
		s.busyPos[last] = idx
		s.busy = s.busy[:len(s.busy)-1]
		s.busyPos[server] = -1
	}
	// Histogram.
	for w+1 >= len(s.count) {
		s.count = append(s.count, 0)
	}
	s.count[v]--
	s.count[w]++
	// Min/max: queue lengths move by ±1, so each extreme moves by at
	// most one step, except that emptying/filling can strand them; walk
	// them back to the nearest occupied level (amortized O(1)).
	if w < s.min {
		s.min = w
	}
	if w > s.max {
		s.max = w
	}
	for s.count[s.min] == 0 {
		s.min++
	}
	for s.max > 0 && s.count[s.max] == 0 {
		s.max--
	}
}

// Step advances to the next event (arrival, service completion, or
// migration attempt) and processes it.
func (s *System) Step() {
	arrRate := s.p.Lambda * float64(s.p.N)
	svcRate := s.p.Mu * float64(len(s.busy))
	migRate := s.p.Beta * float64(s.jobs)
	total := arrRate + svcRate + migRate
	s.time += s.r.Exp(total)
	u := s.r.Float64() * total
	switch {
	case u < arrRate:
		s.adjust(s.r.Intn(s.p.N), +1)
		s.Arrivals++
	case u < arrRate+svcRate:
		server := s.busy[s.r.Intn(len(s.busy))]
		s.adjust(server, -1)
		s.Departures++
	default:
		src := s.sampleJobServer()
		dst := s.r.Intn(s.p.N)
		if dst != src && s.loads[src] >= s.loads[dst]+1 {
			s.adjust(src, -1)
			s.adjust(dst, +1)
			s.Migrations++
		} else {
			s.FailedMigrations++
		}
	}
}

// Stats are time-averaged observables over an observation window.
type Stats struct {
	// MeanJobs is the time-averaged number of jobs in the system
	// (Little's law predicts N·ρ/(1−ρ) for β=0).
	MeanJobs float64
	// MeanMax is the time-averaged maximum queue length.
	MeanMax float64
	// MeanDisc is the time-averaged discrepancy.
	MeanDisc float64
	// FracPerfect is the fraction of time the configuration was
	// perfectly balanced (max−min ≤ 1).
	FracPerfect float64
	// Window is the observation duration.
	Window float64
}

// Run advances the system for `warmup` time units, then observes for
// `window` time units and returns time-averaged statistics.
func (s *System) Run(warmup, window float64) Stats {
	for s.time < warmup {
		s.Step()
	}
	start := s.time
	var st Stats
	prev := s.time
	for s.time < start+window {
		dt := 0.0
		// Observables are piecewise constant between events; weight the
		// *pre-event* state by the inter-event gap.
		jobs := float64(s.jobs)
		maxQ := float64(s.max)
		disc := s.Disc()
		perfect := s.max-s.min <= 1
		s.Step()
		dt = s.time - prev
		prev = s.time
		st.MeanJobs += jobs * dt
		st.MeanMax += maxQ * dt
		st.MeanDisc += disc * dt
		if perfect {
			st.FracPerfect += dt
		}
	}
	st.Window = s.time - start
	if st.Window > 0 {
		st.MeanJobs /= st.Window
		st.MeanMax /= st.Window
		st.MeanDisc /= st.Window
		st.FracPerfect /= st.Window
	}
	return st
}

// MM1MeanJobs returns the M/M/1 stationary mean number of jobs per
// server, ρ/(1−ρ) — the β = 0 prediction per server by independence.
func MM1MeanJobs(rho float64) float64 { return rho / (1 - rho) }

// MM1MaxQueueScale returns log_{1/ρ}(n), the leading-order stationary
// maximum queue length across n independent M/M/1 queues (the β = 0
// baseline the migration experiment contrasts against).
func MM1MaxQueueScale(n int, rho float64) float64 {
	return math.Log(float64(n)) / math.Log(1/rho)
}

package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	rls "repro"
)

// httpError pairs a message with the exact status the wire contract
// promises (cmd/rlsd/README.md documents the full table; the handler
// tests pin it).
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

// sessionConfig is the POST /v1/sessions body. Engine, topology, strict,
// and shards map onto the rls.WithSession* options; Balls seeds the
// session with that many uniformly placed balls (deterministic in Seed).
// Speeds is accepted syntactically but rejected with 400: sessions have
// no speed-aware engine (use the library Runner's WithSpeeds).
type sessionConfig struct {
	Bins     int       `json:"bins"`
	Balls    int       `json:"balls,omitempty"`
	Seed     uint64    `json:"seed,omitempty"`
	Engine   string    `json:"engine,omitempty"`
	Shards   int       `json:"shards,omitempty"`
	Strict   bool      `json:"strict,omitempty"`
	Topology string    `json:"topology,omitempty"`
	Speeds   []float64 `json:"speeds,omitempty"`
}

// sessionInfo is the GET /v1/sessions[/{id}] body: the echoed config plus
// the live telemetry snapshot and queue depth.
type sessionInfo struct {
	ID         string        `json:"id"`
	Config     sessionConfig `json:"config"`
	QueueDepth int64         `json:"queue_depth"`
	Accepted   int64         `json:"accepted"`
	telemetry
}

// normalize validates a sessionConfig against the service limits and the
// engine-mode composition matrix, returning the canonicalized config and
// its session options. Every rejection is a 400 with a message naming
// the offending field — the handler table tests pin these.
func (s *Service) normalize(cfg sessionConfig) (sessionConfig, []rls.SessionOption, *httpError) {
	bad := func(format string, args ...any) (sessionConfig, []rls.SessionOption, *httpError) {
		return sessionConfig{}, nil, &httpError{status: 400, msg: fmt.Sprintf(format, args...)}
	}
	if cfg.Bins < 1 {
		return bad("bins must be >= 1 (got %d)", cfg.Bins)
	}
	if cfg.Bins > s.cfg.MaxBins {
		return bad("bins %d exceeds the per-session limit %d", cfg.Bins, s.cfg.MaxBins)
	}
	if cfg.Balls < 0 {
		return bad("balls must be >= 0 (got %d)", cfg.Balls)
	}
	if len(cfg.Speeds) > 0 {
		return bad("sessions do not support bin speeds; use the library Runner with WithSpeeds")
	}

	var opts []rls.SessionOption
	switch cfg.Engine {
	case "", "direct":
		cfg.Engine = "direct"
	case "jump":
		opts = append(opts, rls.WithSessionEngineMode(rls.JumpEngine))
	case "sharded":
		opts = append(opts, rls.WithSessionEngineMode(rls.ShardedEngine))
	case "shardedjump":
		opts = append(opts, rls.WithSessionEngineMode(rls.ShardedJumpEngine))
	default:
		return bad("unknown engine %q (want direct|jump|sharded|shardedjump)", cfg.Engine)
	}
	sharded := cfg.Engine == "sharded" || cfg.Engine == "shardedjump"
	if cfg.Shards < 0 {
		return bad("shards must be >= 0 (got %d)", cfg.Shards)
	}
	if cfg.Shards > 0 && !sharded {
		return bad("shards requires engine sharded or shardedjump")
	}
	if cfg.Shards > 0 {
		opts = append(opts, rls.WithSessionShards(cfg.Shards))
	}

	if cfg.Strict && cfg.Topology != "" && cfg.Topology != "complete" {
		return bad("strict tie rule on a topology is not supported")
	}
	if sharded && (cfg.Strict || (cfg.Topology != "" && cfg.Topology != "complete")) {
		return bad("the %s engine supports only plain RLS on the complete topology", cfg.Engine)
	}
	if cfg.Strict {
		opts = append(opts, rls.WithSessionStrictTieRule())
	}
	switch cfg.Topology {
	case "", "complete":
		cfg.Topology = ""
	case "ring":
		opts = append(opts, rls.WithSessionTopology(rls.RingTopology()))
	case "torus":
		side := int(math.Round(math.Sqrt(float64(cfg.Bins))))
		if side*side != cfg.Bins {
			return bad("torus topology needs a square bin count (got %d)", cfg.Bins)
		}
		opts = append(opts, rls.WithSessionTopology(rls.TorusTopology(side)))
	case "hypercube":
		dim := 0
		for 1<<dim < cfg.Bins {
			dim++
		}
		if 1<<dim != cfg.Bins {
			return bad("hypercube topology needs a power-of-two bin count (got %d)", cfg.Bins)
		}
		opts = append(opts, rls.WithSessionTopology(rls.HypercubeTopology(dim)))
	default:
		return bad("unknown topology %q (want complete|ring|torus|hypercube)", cfg.Topology)
	}
	return cfg, opts, nil
}

// validateEvents checks a batch at the door so the applier's switch is
// total and bin indices never reach the Session out of range.
func (s *Service) validateEvents(t *tenant, events []event) *httpError {
	if len(events) == 0 {
		return &httpError{status: 400, msg: "events must be non-empty"}
	}
	if len(events) > s.cfg.MaxBatch {
		return &httpError{status: 400, msg: fmt.Sprintf("batch of %d events exceeds the limit %d", len(events), s.cfg.MaxBatch)}
	}
	for i, ev := range events {
		switch ev.Op {
		case "add", "remove":
			if ev.Bin != nil && (*ev.Bin < 0 || *ev.Bin >= t.cfg.Bins) {
				return &httpError{status: 400, msg: fmt.Sprintf("events[%d]: bin %d out of range [0,%d)", i, *ev.Bin, t.cfg.Bins)}
			}
		case "run":
			if !(ev.For > 0) || math.IsInf(ev.For, 0) {
				return &httpError{status: 400, msg: fmt.Sprintf("events[%d]: run needs a positive finite \"for\" duration", i)}
			}
		case "run_to_perfect":
			if ev.Budget < 0 {
				return &httpError{status: 400, msg: fmt.Sprintf("events[%d]: budget must be >= 0", i)}
			}
		default:
			return &httpError{status: 400, msg: fmt.Sprintf("events[%d]: unknown op %q (want add|remove|run|run_to_perfect)", i, ev.Op)}
		}
	}
	return nil
}

// Handler mounts the control, telemetry, and metrics planes on a fresh
// mux. Routes and status codes are documented in cmd/rlsd/README.md.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, herr *httpError) {
	if herr.retryAfter > 0 {
		secs := int(math.Ceil(herr.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, herr.status, map[string]string{"error": herr.msg})
}

// decodeStrict decodes one JSON body, rejecting unknown fields and
// trailing garbage — config typos fail loudly instead of silently
// defaulting.
func decodeStrict(r *http.Request, v any) *httpError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &httpError{status: 400, msg: "malformed request body: " + err.Error()}
	}
	if dec.More() {
		return &httpError{status: 400, msg: "malformed request body: trailing data"}
	}
	return nil
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var cfg sessionConfig
	if herr := decodeStrict(r, &cfg); herr != nil {
		writeError(w, herr)
		return
	}
	t, herr := s.createSession(cfg)
	if herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

func (t *tenant) info() sessionInfo {
	return sessionInfo{
		ID:         t.id,
		Config:     t.cfg,
		QueueDepth: t.queued.Load(),
		Accepted:   t.accepted.Load(),
		telemetry:  t.telemetrySnapshot(),
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	tenants := s.snapshotTenants()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].id < tenants[j].id })
	infos := make([]sessionInfo, len(tenants))
	for i, t := range tenants {
		infos[i] = t.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos, "count": len(infos)})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(r.PathValue("id"))
	if t == nil {
		writeError(w, &httpError{status: 404, msg: fmt.Sprintf("unknown session %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.deleteSession(r.PathValue("id")) {
		writeError(w, &httpError{status: 404, msg: fmt.Sprintf("unknown session %q", r.PathValue("id"))})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(r.PathValue("id"))
	if t == nil {
		writeError(w, &httpError{status: 404, msg: fmt.Sprintf("unknown session %q", r.PathValue("id"))})
		return
	}
	var req struct {
		Events []event `json:"events"`
	}
	if herr := decodeStrict(r, &req); herr != nil {
		writeError(w, herr)
		return
	}
	if herr := s.validateEvents(t, req.Events); herr != nil {
		writeError(w, herr)
		return
	}
	if herr := s.enqueue(t, req.Events); herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"queued":      len(req.Events),
		"queue_depth": t.queued.Load(),
	})
}

// handleStream is the SSE telemetry plane: one snapshot frame on
// subscribe, then one frame per applied batch, until the client leaves or
// the session is deleted.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	t := s.lookup(r.PathValue("id"))
	if t == nil {
		writeError(w, &httpError{status: 404, msg: fmt.Sprintf("unknown session %q", r.PathValue("id"))})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &httpError{status: 500, msg: "streaming unsupported by this connection"})
		return
	}
	ch, cancel := t.broker.subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	write := func(frame []byte) bool {
		if _, err := fmt.Fprintf(w, "event: telemetry\ndata: %s\n\n", frame); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	// The subscribe-then-snapshot order guarantees no gap: any batch
	// applied after the snapshot is also delivered as a frame.
	if !write(t.telemetryFrame()) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return // session deleted
			}
			if !write(frame) {
				return
			}
		}
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Render(w)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rls "repro"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Service) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	return srv, svc
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func createSession(t *testing.T, srv *httptest.Server, body string) string {
	t.Helper()
	resp := post(t, srv.URL+"/v1/sessions", body)
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("create: status %d, body %s", resp.StatusCode, b)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode create response: %v", err)
	}
	return info.ID
}

// waitApplied polls until the session's applied counter reaches want (the
// data plane is async: 202 means queued, not applied).
func waitApplied(t *testing.T, srv *httptest.Server, id string, want int64) sessionInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info sessionInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Applied >= want {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s applied %d, want %d", id, info.Applied, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHandlerTable pins the wire contract's exact status codes for the
// malformed-config, unknown-session, and over-limit paths — the table
// cmd/rlsd/README.md documents.
func TestHandlerTable(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxSessions: 4, MaxBins: 1 << 12, MaxBatch: 8})
	id := createSession(t, srv, `{"bins": 16, "balls": 32}`)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"malformed json", "POST", "/v1/sessions", `{"bins": `, 400},
		{"unknown field", "POST", "/v1/sessions", `{"bins": 8, "bogus": 1}`, 400},
		{"trailing data", "POST", "/v1/sessions", `{"bins": 8} {}`, 400},
		{"missing bins", "POST", "/v1/sessions", `{}`, 400},
		{"zero bins", "POST", "/v1/sessions", `{"bins": 0}`, 400},
		{"bins over limit", "POST", "/v1/sessions", `{"bins": 8192}`, 400},
		{"negative balls", "POST", "/v1/sessions", `{"bins": 8, "balls": -1}`, 400},
		{"unknown engine", "POST", "/v1/sessions", `{"bins": 8, "engine": "warp"}`, 400},
		{"speeds unsupported", "POST", "/v1/sessions", `{"bins": 8, "speeds": [1, 2]}`, 400},
		{"shards without sharded engine", "POST", "/v1/sessions", `{"bins": 8, "shards": 2}`, 400},
		{"negative shards", "POST", "/v1/sessions", `{"bins": 8, "engine": "sharded", "shards": -1}`, 400},
		{"strict on topology", "POST", "/v1/sessions", `{"bins": 8, "strict": true, "topology": "ring"}`, 400},
		{"sharded strict", "POST", "/v1/sessions", `{"bins": 8, "engine": "sharded", "strict": true}`, 400},
		{"shardedjump topology", "POST", "/v1/sessions", `{"bins": 8, "engine": "shardedjump", "topology": "ring"}`, 400},
		{"torus non-square", "POST", "/v1/sessions", `{"bins": 8, "topology": "torus"}`, 400},
		{"hypercube non-power", "POST", "/v1/sessions", `{"bins": 12, "topology": "hypercube"}`, 400},
		{"unknown topology", "POST", "/v1/sessions", `{"bins": 8, "topology": "petersen"}`, 400},

		{"get unknown session", "GET", "/v1/sessions/s-999", "", 404},
		{"delete unknown session", "DELETE", "/v1/sessions/s-999", "", 404},
		{"events unknown session", "POST", "/v1/sessions/s-999/events", `{"events": [{"op": "add"}]}`, 404},
		{"stream unknown session", "GET", "/v1/sessions/s-999/stream", "", 404},

		{"events malformed", "POST", "/v1/sessions/" + id + "/events", `{"events": [`, 400},
		{"events empty", "POST", "/v1/sessions/" + id + "/events", `{"events": []}`, 400},
		{"events unknown op", "POST", "/v1/sessions/" + id + "/events", `{"events": [{"op": "teleport"}]}`, 400},
		{"events bin out of range", "POST", "/v1/sessions/" + id + "/events", `{"events": [{"op": "add", "bin": 16}]}`, 400},
		{"events negative bin", "POST", "/v1/sessions/" + id + "/events", `{"events": [{"op": "remove", "bin": -1}]}`, 400},
		{"events run without duration", "POST", "/v1/sessions/" + id + "/events", `{"events": [{"op": "run"}]}`, 400},
		{"events negative budget", "POST", "/v1/sessions/" + id + "/events", `{"events": [{"op": "run_to_perfect", "budget": -1}]}`, 400},
		{"events batch too large", "POST", "/v1/sessions/" + id + "/events",
			`{"events": [` + strings.Repeat(`{"op": "add"},`, 8) + `{"op": "add"}]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if tc.status >= 400 && !bytes.Contains(body, []byte("error")) {
				t.Errorf("error body missing message: %s", body)
			}
		})
	}
}

// TestCreateAllEngineModes exercises the config→option mapping for every
// cell the session layer supports, including topologies and strict ties.
func TestCreateAllEngineModes(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	for _, body := range []string{
		`{"bins": 16, "balls": 64}`,
		`{"bins": 16, "balls": 64, "engine": "jump"}`,
		`{"bins": 16, "balls": 64, "engine": "jump", "strict": true}`,
		`{"bins": 16, "balls": 64, "engine": "jump", "topology": "ring"}`,
		`{"bins": 16, "balls": 64, "engine": "jump", "topology": "torus"}`,
		`{"bins": 16, "balls": 64, "engine": "jump", "topology": "hypercube"}`,
		`{"bins": 16, "balls": 64, "engine": "sharded", "shards": 2}`,
		`{"bins": 16, "balls": 64, "engine": "shardedjump", "shards": 2}`,
	} {
		id := createSession(t, srv, body)
		resp := post(t, srv.URL+"/v1/sessions/"+id+"/events",
			`{"events": [{"op": "add"}, {"op": "remove"}, {"op": "run", "for": 0.05}, {"op": "run_to_perfect"}]}`)
		resp.Body.Close()
		if resp.StatusCode != 202 {
			t.Fatalf("%s: events status %d", body, resp.StatusCode)
		}
		info := waitApplied(t, srv, id, 4)
		if info.Errors != 0 {
			t.Errorf("%s: %d apply errors", body, info.Errors)
		}
		if info.Balls != 64 {
			t.Errorf("%s: balls %d, want 64", body, info.Balls)
		}
		if info.Phase != "perfect" {
			t.Errorf("%s: phase %q after run_to_perfect, want perfect", body, info.Phase)
		}
	}
}

// TestRateLimitBackpressure pins the 429 + Retry-After contract: a
// one-event bucket admits the first post and rejects the second with an
// honest retry hint.
func TestRateLimitBackpressure(t *testing.T) {
	srv, svc := newTestServer(t, Config{EventRate: 0.5, EventBurst: 1})
	id := createSession(t, srv, `{"bins": 8, "balls": 8}`)

	resp := post(t, srv.URL+"/v1/sessions/"+id+"/events", `{"events": [{"op": "add"}]}`)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("first post: status %d, want 202", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/v1/sessions/"+id+"/events", `{"events": [{"op": "add"}]}`)
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("second post: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := svc.Metrics().RejectedRate.Load(); got != 1 {
		t.Errorf("RejectedRate = %d, want 1", got)
	}
}

// TestQueueFullBackpressure fills a depth-2 queue with no applier running
// (white box: the tenant is hand-built) and checks the enqueue path's
// exact rejection.
func TestQueueFullBackpressure(t *testing.T) {
	svc := New(Config{QueueDepth: 2})
	tn := &tenant{
		id:     "s-test",
		cfg:    sessionConfig{Bins: 4},
		sess:   rls.NewSession(4, 1),
		bucket: NewBucket(0, 0),
		broker: newBroker(&svc.metrics.StreamDropped),
		queue:  make(chan batch, 2),
		done:   make(chan struct{}),
	}
	events := []event{{Op: "add"}}
	for i := 0; i < 2; i++ {
		if herr := svc.enqueue(tn, events); herr != nil {
			t.Fatalf("enqueue %d rejected: %+v", i, herr)
		}
	}
	herr := svc.enqueue(tn, events)
	if herr == nil {
		t.Fatal("full queue must reject")
	}
	if herr.status != 429 {
		t.Errorf("status %d, want 429", herr.status)
	}
	if herr.retryAfter <= 0 {
		t.Error("queue-full rejection without a retry hint")
	}
	if got := svc.metrics.RejectedQueue.Load(); got != 1 {
		t.Errorf("RejectedQueue = %d, want 1", got)
	}
}

// TestSessionCap pins the 503 on the MaxSessions limit.
func TestSessionCap(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxSessions: 1})
	createSession(t, srv, `{"bins": 8}`)
	resp := post(t, srv.URL+"/v1/sessions", `{"bins": 8}`)
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503 at the session cap", resp.StatusCode)
	}
}

// TestSSEStream subscribes to the telemetry plane, posts a churn burst,
// and checks the snapshot-then-frames contract; deleting the session must
// end the stream.
func TestSSEStream(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	id := createSession(t, srv, `{"bins": 8, "balls": 16, "seed": 3}`)

	resp, err := http.Get(srv.URL + "/v1/sessions/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	frames := make(chan telemetry, 16)
	go func() {
		defer close(frames)
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var tel telemetry
				if json.Unmarshal([]byte(data), &tel) == nil {
					frames <- tel
				}
			}
		}
	}()
	read := func(what string) telemetry {
		select {
		case tel, ok := <-frames:
			if !ok {
				t.Fatalf("stream closed waiting for %s", what)
			}
			return tel
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		panic("unreachable")
	}

	if snap := read("snapshot"); snap.Balls != 16 || snap.Applied != 0 {
		t.Fatalf("snapshot frame %+v, want 16 balls, 0 applied", snap)
	}
	post(t, srv.URL+"/v1/sessions/"+id+"/events",
		`{"events": [{"op": "add", "bin": 0}, {"op": "add", "bin": 0}, {"op": "run_to_perfect"}]}`).Body.Close()
	tel := read("batch frame")
	if tel.Applied != 3 || tel.Balls != 18 {
		t.Fatalf("batch frame %+v, want 3 applied, 18 balls", tel)
	}
	if tel.Phase != "perfect" || tel.Disc >= 1 {
		t.Fatalf("batch frame %+v, want perfect phase", tel)
	}

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 204 {
		t.Fatalf("delete status %d, want 204", dresp.StatusCode)
	}
	for {
		if _, ok := <-frames; !ok {
			break // deletion closed the broker, ending the stream
		}
	}
}

// TestDrain pins the graceful-shutdown contract: every accepted event
// applies before Drain returns, and the drained service answers 503 on
// both planes.
func TestDrain(t *testing.T) {
	srv, svc := newTestServer(t, Config{})
	var ids []string
	for i := 0; i < 4; i++ {
		id := createSession(t, srv, fmt.Sprintf(`{"bins": 16, "balls": 32, "seed": %d}`, i))
		for j := 0; j < 5; j++ {
			resp := post(t, srv.URL+"/v1/sessions/"+id+"/events",
				`{"events": [{"op": "add"}, {"op": "remove"}, {"op": "run", "for": 0.01}]}`)
			resp.Body.Close()
			if resp.StatusCode != 202 {
				t.Fatalf("events status %d", resp.StatusCode)
			}
		}
		ids = append(ids, id)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	m := svc.Metrics()
	if acc, app := m.EventsAccepted.Load(), m.EventsApplied.Load(); acc != app || acc != 4*5*3 {
		t.Errorf("accepted %d, applied %d; want both %d — drain must flush every queue", acc, app, 4*5*3)
	}
	if errs := m.ApplyErrors.Load(); errs != 0 {
		t.Errorf("%d apply errors during drain", errs)
	}

	resp := post(t, srv.URL+"/v1/sessions", `{"bins": 8}`)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("create while draining: status %d, want 503", resp.StatusCode)
	}
	resp = post(t, srv.URL+"/v1/sessions/"+ids[0]+"/events", `{"events": [{"op": "add"}]}`)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("events while draining: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 503 {
		t.Errorf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}
}

// TestDeleteDrainsBacklog: events accepted before a DELETE are applied,
// not dropped, and the tenant then answers 404.
func TestDeleteDrainsBacklog(t *testing.T) {
	srv, svc := newTestServer(t, Config{})
	id := createSession(t, srv, `{"bins": 8, "balls": 8}`)
	resp := post(t, srv.URL+"/v1/sessions/"+id+"/events",
		`{"events": [`+strings.Repeat(`{"op": "add"},`, 99)+`{"op": "add"}]}`)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 204 {
		t.Fatalf("delete status %d, want 204", dresp.StatusCode)
	}
	m := svc.Metrics()
	if acc, app := m.EventsAccepted.Load(), m.EventsApplied.Load(); acc != app {
		t.Errorf("accepted %d != applied %d after delete", acc, app)
	}
	gresp, err := http.Get(srv.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != 404 {
		t.Errorf("get after delete: status %d, want 404", gresp.StatusCode)
	}
	if live := m.SessionsLive.Load(); live != 0 {
		t.Errorf("SessionsLive = %d after delete, want 0", live)
	}
}

// TestMetricsEndpoint checks the Prometheus text rendering end to end:
// the series the README catalogues exist and the counters agree with the
// observed traffic.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	id := createSession(t, srv, `{"bins": 8, "balls": 8, "engine": "jump"}`)
	post(t, srv.URL+"/v1/sessions/"+id+"/events",
		`{"events": [{"op": "add"}, {"op": "run_to_perfect"}]}`).Body.Close()
	waitApplied(t, srv, id, 2)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"rlsd_sessions_live 1",
		"rlsd_sessions_created_total 1",
		"rlsd_events_accepted_total 2",
		"rlsd_events_applied_total 2",
		"rlsd_event_apply_errors_total 0",
		`rlsd_events_rejected_total{reason="rate"} 0`,
		`rlsd_moves_total{mode="jump"}`,
		`rlsd_apply_latency_seconds_bucket{le="+Inf"} 1`,
		"rlsd_apply_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The jump tenant executed run_to_perfect from a skewed start, so its
	// per-mode move counter must have advanced.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `rlsd_moves_total{mode="jump"}`) {
			var moves int64
			if _, err := fmt.Sscanf(line, `rlsd_moves_total{mode="jump"} %d`, &moves); err != nil || moves <= 0 {
				t.Errorf("jump move counter %q, want > 0", line)
			}
		}
	}
}

// TestConcurrentPlanes hammers one tenant from parallel writers and
// readers — the race job turns this into the service-layer analogue of
// the Session contract test.
func TestConcurrentPlanes(t *testing.T) {
	srv, svc := newTestServer(t, Config{EventRate: 1e6, EventBurst: 1e6})
	id := createSession(t, srv, `{"bins": 16, "balls": 64}`)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp := post(t, srv.URL+"/v1/sessions/"+id+"/events",
					`{"events": [{"op": "add"}, {"op": "remove"}, {"op": "run", "for": 0.001}]}`)
				resp.Body.Close()
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(srv.URL + "/v1/sessions/" + id)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if acc, app := m.EventsAccepted.Load(), m.EventsApplied.Load(); acc != app {
		t.Errorf("accepted %d != applied %d", acc, app)
	}
	if errs := m.ApplyErrors.Load(); errs != 0 {
		t.Errorf("%d apply errors", errs)
	}
}

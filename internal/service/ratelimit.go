package service

import (
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: Rate tokens refill per second up
// to a Burst capacity, and each admitted event spends one token. Every
// tenant owns one bucket, so a single hot tenant saturates its own quota
// — never the daemon's applier capacity or its neighbours' throughput.
//
// The bucket refills lazily on Take (no background goroutine): elapsed
// wall-clock since the previous call converts to tokens at Rate. A Take
// that cannot be satisfied rejects immediately — callers surface the
// returned retry hint as an HTTP Retry-After — rather than queueing, so
// backpressure stays visible to the client instead of hiding in the
// server.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for deterministic tests
}

// NewBucket returns a full bucket refilling at rate tokens/sec with the
// given capacity. A non-positive rate or burst disables limiting (every
// Take succeeds) — the daemon's -rate 0 escape hatch.
func NewBucket(rate, burst float64) *Bucket {
	return newBucketAt(rate, burst, time.Now)
}

func newBucketAt(rate, burst float64, now func() time.Time) *Bucket {
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Take spends n tokens if available and reports success; on failure it
// returns how long the caller should wait before the deficit refills.
// Requests larger than the whole burst can never succeed — those are
// rejected with the time to refill from empty, and the caller should
// split the batch.
func (b *Bucket) Take(n float64) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 || b.burst <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	if n > b.burst {
		deficit = b.burst // unfillable; hint one full refill
	}
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSaveRestoreSnapshots: a second service booted from the first one's
// state directory hosts the same tenants with the same ids, configs, and
// engine state, and keeps issuing fresh ids past the restored ones.
func TestSaveRestoreSnapshots(t *testing.T) {
	dir := t.TempDir()
	srv, svc := newTestServer(t, Config{StateDir: dir})

	id1 := createSession(t, srv, `{"bins": 16, "balls": 64, "seed": 7}`)
	id2 := createSession(t, srv, `{"bins": 32, "balls": 32, "seed": 9, "engine": "shardedjump", "shards": 3}`)
	post(t, srv.URL+"/v1/sessions/"+id1+"/events", `{"events":[{"op":"run","for":2.5},{"op":"add"}]}`).Body.Close()
	post(t, srv.URL+"/v1/sessions/"+id2+"/events", `{"events":[{"op":"run","for":1.0},{"op":"remove"}]}`).Body.Close()
	before1 := waitApplied(t, srv, id1, 2)
	before2 := waitApplied(t, srv, id2, 2)

	n, err := svc.SaveSnapshots(dir)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if n != 2 {
		t.Fatalf("saved %d tenants, want 2", n)
	}

	srv2, svc2 := newTestServer(t, Config{StateDir: dir})
	m, err := svc2.RestoreSnapshots(dir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if m != 2 {
		t.Fatalf("restored %d tenants, want 2", m)
	}
	if got := svc2.Metrics().SessionsRestored.Load(); got != 2 {
		t.Fatalf("restored metric %d, want 2", got)
	}

	for id, before := range map[string]sessionInfo{id1: before1, id2: before2} {
		resp, err := http.Get(srv2.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var after sessionInfo
		if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("restored tenant %s: status %d", id, resp.StatusCode)
		}
		if ca, cb := fmt.Sprintf("%+v", after.Config), fmt.Sprintf("%+v", before.Config); ca != cb {
			t.Fatalf("tenant %s config changed across restart:\n%s\n%s", id, ca, cb)
		}
		if after.Time != before.Time || after.Balls != before.Balls ||
			after.Moves != before.Moves || after.Activations != before.Activations ||
			after.Disc != before.Disc {
			t.Fatalf("tenant %s state changed across restart:\nbefore %+v\nafter  %+v", id, before.telemetry, after.telemetry)
		}
	}

	// A restored tenant keeps serving events.
	post(t, srv2.URL+"/v1/sessions/"+id1+"/events", `{"events":[{"op":"add"},{"op":"run","for":0.5}]}`).Body.Close()
	waitApplied(t, srv2, id1, 2)

	// Fresh ids start past the restored ones.
	id3 := createSession(t, srv2, `{"bins": 8}`)
	if id3 == id1 || id3 == id2 {
		t.Fatalf("fresh id %q collides with a restored tenant", id3)
	}
}

// TestDeleteRemovesSnapshot: DELETE on a durable service leaves no
// snapshot file behind to resurrect on the next boot.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, svc := newTestServer(t, Config{StateDir: dir})
	id := createSession(t, srv, `{"bins": 8, "balls": 8}`)
	if _, err := svc.SaveSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapshotPath(dir, id)); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(snapshotPath(dir, id)); !os.IsNotExist(err) {
		t.Fatalf("snapshot file survived the DELETE: %v", err)
	}
	if n, err := svc.RestoreSnapshots(dir); n != 0 || err != nil {
		t.Fatalf("orphan restore: %d tenants, err %v", n, err)
	}
}

// TestRestoreSkipsCorrupt: one mangled file loses only its own tenant.
func TestRestoreSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	srv, svc := newTestServer(t, Config{StateDir: dir})
	createSession(t, srv, `{"bins": 8, "balls": 8}`)
	createSession(t, srv, `{"bins": 8, "balls": 8, "engine": "jump"}`)
	if _, err := svc.SaveSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "s-1.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, svc2 := newTestServer(t, Config{StateDir: dir})
	n, err := svc2.RestoreSnapshots(dir)
	if n != 1 {
		t.Fatalf("restored %d tenants, want 1", n)
	}
	if err == nil {
		t.Fatal("corrupt snapshot restored without error")
	}
}

// TestRestoreMissingDirIsEmptyBoot: first boot with a fresh state dir.
func TestRestoreMissingDirIsEmptyBoot(t *testing.T) {
	svc := New(Config{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	n, err := svc.RestoreSnapshots(filepath.Join(t.TempDir(), "absent"))
	if n != 0 || err != nil {
		t.Fatalf("missing dir: %d tenants, err %v", n, err)
	}
}

// Package service is the multi-tenant serving layer behind cmd/rlsd: a
// session manager hosting thousands of concurrent rls.Session tenants,
// an HTTP/JSON control plane (create/churn/delete), an SSE telemetry
// plane, per-tenant token-bucket rate limiting, bounded event queues
// with 429 + Retry-After backpressure, graceful drain, and a
// Prometheus-text /metrics endpoint.
//
// The tenancy model is one applier goroutine per session: handlers
// validate and enqueue event batches, the tenant's worker applies them
// in order against its Session and publishes a telemetry frame per
// batch. Concurrent stats reads (GET, SSE snapshots) hit the same
// Session directly — safe by the Session concurrency contract — so
// reads never queue behind writes. internal/service/README.md documents
// the architecture; cmd/rlsd/README.md the wire API.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	rls "repro"
)

// Config sizes the service's admission control. The zero value gets
// production-shaped defaults from withDefaults; cmd/rlsd exposes each
// knob as a flag.
type Config struct {
	// MaxSessions caps live tenants; creates beyond it get 503.
	// Default 4096.
	MaxSessions int
	// MaxBins caps a single tenant's bin count (engine state is O(bins)).
	// Default 1<<20.
	MaxBins int
	// MaxBatch caps events per POST body. Default 4096.
	MaxBatch int
	// QueueDepth is each tenant's bounded event-batch queue; a full queue
	// answers 429 + Retry-After. Default 256 batches.
	QueueDepth int
	// EventRate and EventBurst parameterize each tenant's token bucket in
	// events/sec; 0 rate disables limiting. Defaults 1000 and 2·rate.
	EventRate  float64
	EventBurst float64
	// StateDir, when non-empty, is where tenant snapshots live: DELETE
	// removes the departing tenant's snapshot file, and cmd/rlsd points
	// SaveSnapshots/RestoreSnapshots here. Empty means no durability.
	StateDir string

	// now is the test clock hook; nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	if c.MaxBins == 0 {
		c.MaxBins = 1 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4096
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.EventRate == 0 {
		c.EventRate = 1000
	}
	if c.EventBurst == 0 {
		c.EventBurst = 2 * c.EventRate
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Service hosts the tenant map. Create with New, mount Handler, and on
// shutdown call Drain to stop intake and let every queued event apply.
type Service struct {
	cfg     Config
	metrics Metrics

	mu       sync.Mutex
	tenants  map[string]*tenant
	nextID   uint64
	draining bool
	workers  sync.WaitGroup
}

// New returns a Service with the given limits (zero-value fields take
// defaults).
func New(cfg Config) *Service {
	return &Service{cfg: cfg.withDefaults(), tenants: make(map[string]*tenant)}
}

// Metrics exposes the live counters — the same state /metrics renders —
// for in-process callers (tests, the load harness's zero-loss check).
func (s *Service) Metrics() *Metrics { return &s.metrics }

// Draining reports whether Drain has begun (intake is closed).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// event is one wire event; see cmd/rlsd/README.md for the schema. Bin is
// a pointer so "absent" (pick a random bin) is distinguishable from 0.
type event struct {
	Op     string  `json:"op"`
	Bin    *int    `json:"bin,omitempty"`
	For    float64 `json:"for,omitempty"`
	Budget int64   `json:"budget,omitempty"`
}

// batch is one accepted POST body, stamped at enqueue so the worker can
// observe the event→apply latency.
type batch struct {
	events   []event
	enqueued time.Time
}

// tenant binds one rls.Session to its queue, limiter, telemetry broker,
// and applier goroutine.
type tenant struct {
	id   string
	cfg  sessionConfig // normalized creation config, echoed by GET
	mode rls.EngineMode
	sess *rls.Session

	bucket *Bucket
	broker *broker
	queue  chan batch

	qmu    sync.Mutex // guards closed + sends into queue
	closed bool

	accepted    atomic.Int64
	applied     atomic.Int64
	applyErrors atomic.Int64
	queued      atomic.Int64 // batches currently in the queue

	lastMoves int64         // worker-only: per-mode move-throughput delta base
	done      chan struct{} // closed when the worker exits
}

// createSession validates cfg, builds the Session, and starts its
// applier. The *httpError return carries the exact status the control
// plane answers with (400 config, 503 capacity/drain).
func (s *Service) createSession(cfg sessionConfig) (*tenant, *httpError) {
	norm, opts, herr := s.normalize(cfg)
	if herr != nil {
		return nil, herr
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.RejectedDrain.Add(1)
		return nil, &httpError{status: 503, msg: "service is draining"}
	}
	if len(s.tenants) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return nil, &httpError{status: 503, msg: fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions)}
	}
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	// Reserve the slot before the (possibly slow) engine construction so
	// the lock never covers simulation work.
	s.tenants[id] = nil
	s.mu.Unlock()

	sess, err := buildSession(norm, opts)
	if err != nil {
		s.mu.Lock()
		delete(s.tenants, id)
		s.mu.Unlock()
		return nil, &httpError{status: 400, msg: err.Error()}
	}
	for i := 0; i < norm.Balls; i++ {
		sess.AddBallRandom()
	}

	t := &tenant{
		id:     id,
		cfg:    norm,
		mode:   modeOf(norm.Engine),
		sess:   sess,
		bucket: newBucketAt(s.cfg.EventRate, s.cfg.EventBurst, s.cfg.now),
		broker: newBroker(&s.metrics.StreamDropped),
		queue:  make(chan batch, s.cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	s.tenants[id] = t
	s.mu.Unlock()

	s.metrics.SessionsCreated.Add(1)
	s.metrics.SessionsLive.Add(1)
	s.workers.Add(1)
	go t.worker(&s.metrics, &s.workers)
	return t, nil
}

// buildSession maps the normalized config onto the rls.WithSession*
// options. NewSession panics on invalid combinations by design; the
// recover converts any residue the normalize checks missed into a 400
// instead of killing the daemon.
func buildSession(cfg sessionConfig, opts []rls.SessionOption) (sess *rls.Session, err error) {
	defer func() {
		if r := recover(); r != nil {
			sess, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return rls.NewSession(cfg.Bins, cfg.Seed, opts...), nil
}

// lookup returns the tenant or nil (a reserved-but-unbuilt slot reads as
// absent).
func (s *Service) lookup(id string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[id]
}

// snapshotTenants returns the live tenants in insertion-id order-free
// map iteration; callers sort if they need stable output.
func (s *Service) snapshotTenants() []*tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// enqueue admits one validated batch into the tenant's queue, spending
// len(events) rate-limit tokens first. Rejections carry the exact HTTP
// status and a Retry-After hint.
func (s *Service) enqueue(t *tenant, events []event) *httpError {
	if s.Draining() {
		s.metrics.RejectedDrain.Add(1)
		return &httpError{status: 503, msg: "service is draining"}
	}
	if ok, retry := t.bucket.Take(float64(len(events))); !ok {
		s.metrics.RejectedRate.Add(1)
		return &httpError{status: 429, msg: "rate limit exceeded", retryAfter: retry}
	}
	b := batch{events: events, enqueued: s.cfg.now()}
	t.qmu.Lock()
	defer t.qmu.Unlock()
	if t.closed {
		return &httpError{status: 404, msg: fmt.Sprintf("session %s is gone", t.id)}
	}
	select {
	case t.queue <- b:
		t.queued.Add(1)
		t.accepted.Add(int64(len(events)))
		s.metrics.EventsAccepted.Add(int64(len(events)))
		return nil
	default:
		s.metrics.RejectedQueue.Add(1)
		// The queue drains at the bucket's admission rate at worst; one
		// batch-interval is an honest refill hint.
		retry := time.Second
		if s.cfg.EventRate > 0 {
			retry = time.Duration(float64(len(events)) / s.cfg.EventRate * float64(time.Second))
		}
		return &httpError{status: 429, msg: "event queue full", retryAfter: retry}
	}
}

// deleteSession tears a tenant down: close its queue, wait for the
// applier to drain what was already accepted, close the telemetry
// broker. Events accepted before the DELETE are applied, not dropped —
// same contract as the whole-service drain.
func (s *Service) deleteSession(id string) bool {
	s.mu.Lock()
	t := s.tenants[id]
	if t == nil {
		s.mu.Unlock()
		return false
	}
	delete(s.tenants, id)
	s.mu.Unlock()

	t.closeQueue()
	<-t.done
	t.broker.close()
	removeSnapshot(s.cfg.StateDir, id)
	s.metrics.SessionsDeleted.Add(1)
	s.metrics.SessionsLive.Add(-1)
	return true
}

// Drain gracefully shuts the data plane down: intake closes (new
// sessions and events answer 503), every tenant queue is closed, and
// Drain blocks until all appliers finish their accepted backlog or ctx
// expires. The SIGTERM path in cmd/rlsd calls this before the HTTP
// server's Shutdown, so in-flight work completes and clients see clean
// rejections rather than connection resets.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		if t != nil {
			tenants = append(tenants, t)
		}
	}
	s.mu.Unlock()

	for _, t := range tenants {
		t.closeQueue()
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		var pending int64
		for _, t := range tenants {
			pending += t.queued.Load()
		}
		return fmt.Errorf("service: drain timed out with %d batches pending", pending)
	}
	for _, t := range tenants {
		t.broker.close()
	}
	return nil
}

// closeQueue stops intake for this tenant; idempotent.
func (t *tenant) closeQueue() {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	if !t.closed {
		t.closed = true
		close(t.queue)
	}
}

// worker is the tenant's applier goroutine: batches apply in accepted
// order, each followed by one latency observation, one per-mode move
// accounting delta, and one telemetry frame. It exits when the queue is
// closed and drained (DELETE or service drain).
func (t *tenant) worker(m *Metrics, wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(t.done)
	for b := range t.queue {
		for _, ev := range b.events {
			if err := t.apply(ev); err != nil {
				t.applyErrors.Add(1)
				m.ApplyErrors.Add(1)
			}
		}
		t.queued.Add(-1)
		t.applied.Add(int64(len(b.events)))
		m.EventsApplied.Add(int64(len(b.events)))
		m.Apply.Observe(time.Since(b.enqueued))
		moves := t.sess.Moves()
		m.MovesByMode[t.mode].Add(moves - t.lastMoves)
		t.lastMoves = moves
		t.broker.publish(t.telemetryFrame())
	}
}

// apply executes one event against the Session. Ops were validated at
// POST time, so the switch is total; per-event failures (removing from
// an empty session, running with no balls) are runtime conditions the
// caller counts, not programming errors.
func (t *tenant) apply(ev event) error {
	switch ev.Op {
	case "add":
		if ev.Bin == nil {
			t.sess.AddBallRandom()
			return nil
		}
		return t.sess.AddBall(*ev.Bin)
	case "remove":
		if ev.Bin == nil {
			_, err := t.sess.RemoveRandomBall()
			return err
		}
		return t.sess.RemoveBall(*ev.Bin)
	case "run":
		return t.sess.RunFor(ev.For)
	case "run_to_perfect":
		_, err := t.sess.RunUntilPerfect(ev.Budget)
		return err
	}
	return fmt.Errorf("service: unvalidated op %q", ev.Op)
}

// telemetry is one SSE frame / stats body: the load-and-discrepancy view
// of the tenant plus its apply counters.
type telemetry struct {
	SessionID   string  `json:"session_id"`
	Time        float64 `json:"time"`
	Balls       int     `json:"balls"`
	Disc        float64 `json:"disc"`
	MinLoad     int     `json:"min_load"`
	MaxLoad     int     `json:"max_load"`
	Moves       int64   `json:"moves"`
	Activations int64   `json:"activations"`
	Phase       string  `json:"phase"`
	Applied     int64   `json:"applied"`
	Errors      int64   `json:"errors"`
}

func (t *tenant) telemetrySnapshot() telemetry {
	st := t.sess.Stats()
	min, max := 0, 0
	for i, l := range t.sess.Loads() {
		if i == 0 || l < min {
			min = l
		}
		if i == 0 || l > max {
			max = l
		}
	}
	return telemetry{
		SessionID:   t.id,
		Time:        st.Time,
		Balls:       st.Balls,
		Disc:        st.Disc,
		MinLoad:     min,
		MaxLoad:     max,
		Moves:       st.Moves,
		Activations: st.Activations,
		Phase:       phaseOf(st.Balls, t.cfg.Bins, st.Disc),
		Applied:     t.applied.Load(),
		Errors:      t.applyErrors.Load(),
	}
}

func (t *tenant) telemetryFrame() []byte {
	frame, err := json.Marshal(t.telemetrySnapshot())
	if err != nil { // a struct of scalars cannot fail to marshal
		panic(err)
	}
	return frame
}

// phaseOf classifies the discrepancy against the paper's §6 phase
// boundaries: perfect (disc < 1), one-balanced (≤ 1), log-balanced
// (≤ 96 ln n), else unbalanced; an empty session is its own phase.
func phaseOf(balls, bins int, disc float64) string {
	switch {
	case balls == 0:
		return "empty"
	case disc < 1:
		return "perfect"
	case disc <= 1:
		return "one-balanced"
	case disc <= 96*math.Log(float64(bins)):
		return "log-balanced"
	}
	return "unbalanced"
}

// modeOf maps the validated wire name back to the EngineMode; normalize
// guarantees the name is canonical.
func modeOf(engine string) rls.EngineMode {
	switch engine {
	case "jump":
		return rls.JumpEngine
	case "sharded":
		return rls.ShardedEngine
	case "shardedjump":
		return rls.ShardedJumpEngine
	}
	return rls.DirectEngine
}

package service

import (
	"testing"
	"time"
)

// TestBucketDeterministic drives the token bucket on an injected clock:
// spend-to-empty, rejection with an honest retry hint, refill at rate,
// and the burst cap.
func TestBucketDeterministic(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBucketAt(10, 20, clock) // 10 tokens/sec, capacity 20

	if ok, _ := b.Take(20); !ok {
		t.Fatal("full bucket must admit its whole burst")
	}
	ok, retry := b.Take(5)
	if ok {
		t.Fatal("empty bucket must reject")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retry hint %v, want %v (5 tokens at 10/sec)", retry, want)
	}

	now = now.Add(time.Second) // refills 10
	if ok, _ := b.Take(10); !ok {
		t.Fatal("1s at rate 10 must refill 10 tokens")
	}
	if ok, _ := b.Take(1); ok {
		t.Fatal("bucket must be empty again")
	}

	now = now.Add(time.Hour) // refill clamps at burst
	if ok, _ := b.Take(21); ok {
		t.Fatal("a take above burst can never succeed")
	}
	if ok, _ := b.Take(20); !ok {
		t.Fatal("burst cap worth of tokens must be available")
	}
}

// TestBucketUnlimited pins the -rate 0 escape hatch.
func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0)
	for i := 0; i < 3; i++ {
		if ok, retry := b.Take(1e9); !ok || retry != 0 {
			t.Fatalf("disabled bucket rejected (retry %v)", retry)
		}
	}
}

// TestHistogramQuantile sanity-checks the bucket-interpolated quantiles
// the p99 gate depends on.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", q)
	}
	for i := 0; i < 99; i++ {
		h.Observe(200 * time.Microsecond) // bucket (0.0001, 0.00025]
	}
	h.Observe(2 * time.Second) // bucket (1, 2.5]
	if p50 := h.Quantile(0.50); p50 > 250*time.Microsecond {
		t.Errorf("p50 = %v, want within the 250µs bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 200*time.Microsecond || p99 > 250*time.Microsecond {
		t.Errorf("p99 = %v, want within the 250µs bucket (99/100 samples below)", p99)
	}
	if p100 := h.Quantile(1); p100 < time.Second {
		t.Errorf("p100 = %v, want in the seconds bucket", p100)
	}
}

package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's observability surface, rendered in the
// Prometheus text exposition format by Render (the /metrics endpoint).
// It is hand-rolled — counters and gauges are plain atomics, the
// histogram a fixed-bucket atomic array — because the repo takes no
// dependencies; the output is scrape-compatible with any Prometheus
// collector and is what the ServiceLoad harness parses for its p50/p99
// cells.
type Metrics struct {
	// Control-plane counters/gauges.
	SessionsLive     atomic.Int64 // gauge: tenants currently hosted
	SessionsCreated  atomic.Int64
	SessionsDeleted  atomic.Int64
	SessionsRestored atomic.Int64 // tenants resurrected from snapshots at boot

	// Data-plane counters. Accepted counts events admitted past the rate
	// limiter into a tenant queue; Applied counts events the tenant worker
	// executed; ApplyErrors counts events whose execution failed (e.g. a
	// remove on an empty session). RejectedRate/Queue/Drain partition the
	// 429/503 rejections by cause.
	EventsAccepted atomic.Int64
	EventsApplied  atomic.Int64
	ApplyErrors    atomic.Int64
	RejectedRate   atomic.Int64
	RejectedQueue  atomic.Int64
	RejectedDrain  atomic.Int64

	// StreamDropped counts telemetry frames dropped on slow SSE
	// subscribers (the broker never blocks the applier on a reader).
	StreamDropped atomic.Int64

	// MovesByMode tracks protocol-move throughput per engine mode,
	// indexed by rls.EngineMode (direct, jump, sharded, shardedjump).
	MovesByMode [4]atomic.Int64

	// Apply is the event→apply latency histogram: enqueue (server accept)
	// to applied-by-worker, observed once per batch.
	Apply Histogram
}

// applyBuckets are the histogram's upper bounds in seconds: a coarse
// exponential grid from 100µs to 5s. The p99 gate in CI reads these, so
// the grid must straddle the ceiling it enforces.
var applyBuckets = [numApplyBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

const numApplyBuckets = 15

// Histogram is a fixed-bucket latency histogram with atomic counts;
// bucket i counts observations ≤ applyBuckets[i], the last slot is +Inf.
type Histogram struct {
	counts [numApplyBuckets + 1]atomic.Int64
	sumNs  atomic.Int64
	count  atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(applyBuckets) && s > applyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Quantile returns the q-quantile (0 < q ≤ 1) estimated from the bucket
// counts: the upper bound of the bucket containing the q-th sample,
// linearly interpolated within it. Zero samples yield 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum int64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			if i < len(applyBuckets) {
				lower = applyBuckets[i]
			}
			continue
		}
		if float64(cum+c) >= target {
			upper := 2 * applyBuckets[len(applyBuckets)-1] // +Inf stand-in
			if i < len(applyBuckets) {
				upper = applyBuckets[i]
			}
			frac := (target - float64(cum)) / float64(c)
			return time.Duration((lower + (upper-lower)*frac) * float64(time.Second))
		}
		cum += c
		if i < len(applyBuckets) {
			lower = applyBuckets[i]
		}
	}
	return time.Duration(2 * applyBuckets[len(applyBuckets)-1] * float64(time.Second))
}

// Render writes every series in the Prometheus text format. The metric
// catalogue is documented in cmd/rlsd/README.md — keep the two in sync.
func (m *Metrics) Render(w io.Writer) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("rlsd_sessions_live", "Tenant sessions currently hosted.", m.SessionsLive.Load())
	counter("rlsd_sessions_created_total", "Sessions created over the daemon lifetime.", m.SessionsCreated.Load())
	counter("rlsd_sessions_deleted_total", "Sessions deleted over the daemon lifetime.", m.SessionsDeleted.Load())
	counter("rlsd_sessions_restored_total", "Sessions restored from snapshots at boot.", m.SessionsRestored.Load())
	counter("rlsd_events_accepted_total", "Events admitted into tenant queues.", m.EventsAccepted.Load())
	counter("rlsd_events_applied_total", "Events applied by tenant workers.", m.EventsApplied.Load())
	counter("rlsd_event_apply_errors_total", "Events whose application failed.", m.ApplyErrors.Load())

	fmt.Fprintf(w, "# HELP rlsd_events_rejected_total Events rejected before enqueue, by cause.\n")
	fmt.Fprintf(w, "# TYPE rlsd_events_rejected_total counter\n")
	fmt.Fprintf(w, "rlsd_events_rejected_total{reason=\"rate\"} %d\n", m.RejectedRate.Load())
	fmt.Fprintf(w, "rlsd_events_rejected_total{reason=\"queue\"} %d\n", m.RejectedQueue.Load())
	fmt.Fprintf(w, "rlsd_events_rejected_total{reason=\"drain\"} %d\n", m.RejectedDrain.Load())

	counter("rlsd_stream_dropped_total", "Telemetry frames dropped on slow SSE subscribers.", m.StreamDropped.Load())

	fmt.Fprintf(w, "# HELP rlsd_moves_total Protocol moves executed, by engine mode.\n")
	fmt.Fprintf(w, "# TYPE rlsd_moves_total counter\n")
	for mode, name := range [...]string{"direct", "jump", "sharded", "shardedjump"} {
		fmt.Fprintf(w, "rlsd_moves_total{mode=%q} %d\n", name, m.MovesByMode[mode].Load())
	}

	fmt.Fprintf(w, "# HELP rlsd_apply_latency_seconds Event batch enqueue-to-applied latency.\n")
	fmt.Fprintf(w, "# TYPE rlsd_apply_latency_seconds histogram\n")
	var cum int64
	for i, le := range applyBuckets {
		cum += m.Apply.counts[i].Load()
		fmt.Fprintf(w, "rlsd_apply_latency_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += m.Apply.counts[len(applyBuckets)].Load()
	fmt.Fprintf(w, "rlsd_apply_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "rlsd_apply_latency_seconds_sum %g\n", float64(m.Apply.sumNs.Load())/1e9)
	fmt.Fprintf(w, "rlsd_apply_latency_seconds_count %d\n", cum)
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	rls "repro"
)

// Tenant durability: each tenant serializes to one snapshot artifact
// (rls.SnapshotWithNote) in the state directory, named <id>.snap, with
// the tenant's identity and normalized creation config carried in the
// artifact note — the file is self-describing, no side-car index. Files
// are written to a temp name and renamed into place, so a crash during
// a save leaves the previous snapshot intact. On boot, RestoreSnapshots
// resurrects every tenant with its id, config, and byte-exact engine
// state; a restored session continues exactly where the saved one
// stopped (the snapshot layer's resume contract).

// tenantNote is the JSON payload stored in each snapshot's note field.
type tenantNote struct {
	ID     string        `json:"id"`
	Config sessionConfig `json:"config"`
}

// snapshotPath names a tenant's snapshot file inside dir.
func snapshotPath(dir, id string) string {
	return filepath.Join(dir, id+".snap")
}

// SaveSnapshots writes one snapshot file per live tenant into dir
// (created if absent), returning how many were saved. Individual
// failures don't abort the sweep; they come back joined. Safe to call
// while tenants are serving — each snapshot is taken under the
// session's lock, between events — though the drain path calls it after
// the appliers have finished, so shutdown snapshots capture the full
// accepted backlog.
func (s *Service) SaveSnapshots(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tenants := s.snapshotTenants()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].id < tenants[j].id })
	saved := 0
	var errs []error
	for _, t := range tenants {
		if err := t.saveSnapshot(dir); err != nil {
			errs = append(errs, fmt.Errorf("tenant %s: %w", t.id, err))
			continue
		}
		saved++
	}
	return saved, errors.Join(errs...)
}

func (t *tenant) saveSnapshot(dir string) error {
	note, err := json.Marshal(tenantNote{ID: t.id, Config: t.cfg})
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := t.sess.SnapshotWithNote(f, note); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, snapshotPath(dir, t.id))
}

// RestoreSnapshots loads every *.snap file in dir and resurrects its
// tenant — same id, same config, byte-exact engine state — returning
// how many came back. A missing directory restores nothing. Corrupt or
// unreadable files are skipped (their tenants are lost, the rest still
// boot) and reported joined.
func (s *Service) RestoreSnapshots(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	restored := 0
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".snap") || strings.HasPrefix(name, ".") {
			continue
		}
		if err := s.restoreSnapshot(filepath.Join(dir, name)); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		restored++
	}
	return restored, errors.Join(errs...)
}

func (s *Service) restoreSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sess, noteRaw, err := rls.ResumeSessionWithNote(f)
	if err != nil {
		return err
	}
	var note tenantNote
	if err := json.Unmarshal(noteRaw, &note); err != nil {
		return fmt.Errorf("tenant note: %w", err)
	}
	if note.ID == "" {
		return fmt.Errorf("tenant note has no id")
	}

	t := &tenant{
		id:     note.ID,
		cfg:    note.Config,
		mode:   modeOf(note.Config.Engine),
		sess:   sess,
		bucket: newBucketAt(s.cfg.EventRate, s.cfg.EventBurst, s.cfg.now),
		broker: newBroker(&s.metrics.StreamDropped),
		queue:  make(chan batch, s.cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	// A restored session has already moved; seed the worker's
	// move-throughput delta base so restored history isn't recounted.
	t.lastMoves = sess.Moves()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service is draining")
	}
	if len(s.tenants) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return fmt.Errorf("session limit %d reached", s.cfg.MaxSessions)
	}
	if _, exists := s.tenants[note.ID]; exists {
		s.mu.Unlock()
		return fmt.Errorf("tenant %s already live", note.ID)
	}
	s.tenants[note.ID] = t
	// Keep fresh ids ahead of every restored "s-<n>" so a restart never
	// reissues a restored tenant's id to a new session.
	if n, ok := numericSuffix(note.ID); ok && n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()

	s.metrics.SessionsRestored.Add(1)
	s.metrics.SessionsLive.Add(1)
	s.workers.Add(1)
	go t.worker(&s.metrics, &s.workers)
	return nil
}

// numericSuffix extracts n from the service's "s-<n>" id scheme;
// operator-renamed snapshot files with other id shapes restore fine but
// don't advance the counter.
func numericSuffix(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "s-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// removeSnapshot deletes a departed tenant's snapshot file so DELETE
// leaves no orphan to resurrect on the next boot.
func removeSnapshot(dir, id string) {
	if dir == "" {
		return
	}
	_ = os.Remove(snapshotPath(dir, id))
}

package service

import (
	"sync"
	"sync/atomic"
)

// subscriberBuffer is each SSE subscriber's frame buffer. Publishing
// never blocks the tenant's applier goroutine: a subscriber whose buffer
// is full loses the frame (counted in rlsd_stream_dropped_total) and
// keeps receiving from the next one — telemetry is a sampled view, not a
// durable log, so freshness beats completeness.
const subscriberBuffer = 16

// broker fans one tenant's telemetry frames out to its SSE subscribers.
// Frames are pre-encoded JSON; the broker neither inspects nor re-encodes
// them.
type broker struct {
	dropped *atomic.Int64
	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	closed  bool
}

func newBroker(dropped *atomic.Int64) *broker {
	return &broker{dropped: dropped, subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new subscriber and returns its frame channel plus
// a cancel function (safe to call after close). Subscribing to a closed
// broker — the tenant was deleted — returns an already-closed channel, so
// the handler unblocks immediately.
func (b *broker) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, subscriberBuffer)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
}

// publish delivers one frame to every subscriber, dropping (and counting)
// on full buffers instead of blocking the applier.
func (b *broker) publish(frame []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- frame:
		default:
			b.dropped.Add(1)
		}
	}
}

// close ends every subscription: subscriber channels are closed, so their
// stream handlers return, and future subscribes get closed channels.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}

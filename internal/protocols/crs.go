package protocols

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// CRS implements the Czumaj–Riley–Scheideler "perfectly balanced
// allocation" local-search protocol ([9], as summarized in §2 of the
// paper):
//
//	Initially each ball picks two alternative bins and is placed in one
//	of them. In each step a pair of bins (b1, b2) is chosen uniformly at
//	random. If there is a ball in b1 whose alternative bin is b2, this
//	ball is placed in the least loaded bin among b1 and b2.
//
// [9] show that when balls are placed initially via the power of two
// choices, perfect balance is reached within n^O(1) steps (hidden
// exponent ≥ 4). The CMP1 experiment contrasts this with RLS's O(n²)
// activations from the same initial placement. Note the structural
// restriction this protocol carries: a ball may only ever sit in one of
// its two alternatives, whereas RLS balls may go anywhere.
type CRS struct {
	n     int
	alt   [][2]int32 // ball -> its two alternative bins
	cur   []int32    // ball -> index (0/1) of the alternative it occupies
	bins  [][]int32  // bin -> ball ids residing there
	loads loadvec.Vector
	steps int64
}

// NewCRS creates a CRS instance with m balls over n bins. Each ball draws
// two independent uniform alternatives and is placed greedily in the
// lesser loaded one at arrival time (the two-choice placement that [9]'s
// main result assumes).
func NewCRS(n, m int, r *rng.RNG) *CRS {
	c := &CRS{
		n:     n,
		alt:   make([][2]int32, m),
		cur:   make([]int32, m),
		bins:  make([][]int32, n),
		loads: make(loadvec.Vector, n),
	}
	for b := 0; b < m; b++ {
		a0 := int32(r.Intn(n))
		a1 := int32(r.Intn(n))
		c.alt[b] = [2]int32{a0, a1}
		pick := 0
		if c.loads[a1] < c.loads[a0] {
			pick = 1
		}
		c.cur[b] = int32(pick)
		bin := c.alt[b][pick]
		c.bins[bin] = append(c.bins[bin], int32(b))
		c.loads[bin]++
	}
	return c
}

// Loads returns the current load vector (shared; do not modify).
func (c *CRS) Loads() loadvec.Vector { return c.loads }

// Steps returns the number of pair-draw steps executed.
func (c *CRS) Steps() int64 { return c.steps }

// Step performs one protocol step: draw a uniform bin pair (b1, b2) and,
// if some ball residing in b1 has b2 as its other alternative, move it to
// the lesser loaded of the two (ties stay put, matching "least loaded
// among b1 and b2" with b1 preferred on equality so the move is never
// strictly harmful). Returns whether a ball relocated.
func (c *CRS) Step(r *rng.RNG) bool {
	b1 := int32(r.Intn(c.n))
	b2 := int32(r.Intn(c.n))
	if b1 == b2 {
		return false
	}
	// Find a ball in b1 whose other alternative is b2.
	for _, ball := range c.bins[b1] {
		other := c.alt[ball][1-c.cur[ball]]
		if other != b2 {
			continue
		}
		if c.loads[b2] < c.loads[b1] {
			c.relocate(ball, b1, b2)
			c.steps++
			return true
		}
		break
	}
	c.steps++
	return false
}

// relocate moves ball from bin src to bin dst, flipping its current
// alternative.
func (c *CRS) relocate(ball, src, dst int32) {
	lst := c.bins[src]
	for i, id := range lst {
		if id == ball {
			lst[i] = lst[len(lst)-1]
			c.bins[src] = lst[:len(lst)-1]
			break
		}
	}
	c.bins[dst] = append(c.bins[dst], ball)
	c.loads[src]--
	c.loads[dst]++
	c.cur[ball] = 1 - c.cur[ball]
}

// RunUntilPerfect steps the protocol until perfect balance or the step
// budget is exhausted; it returns the steps taken and whether balance was
// reached. Note that, unlike RLS, CRS may be *unable* to reach perfect
// balance from some configurations (its balls are confined to their two
// alternatives), so a budget is mandatory.
func (c *CRS) RunUntilPerfect(r *rng.RNG, maxSteps int64) (int64, bool) {
	start := c.steps
	for c.steps-start < maxSteps {
		if c.loads.IsPerfect() {
			return c.steps - start, true
		}
		c.Step(r)
	}
	return c.steps - start, c.loads.IsPerfect()
}

// Name identifies the protocol.
func (c *CRS) Name() string { return "crs" }

// Validate checks internal consistency (loads vs ball lists).
func (c *CRS) Validate() error {
	fresh := make(loadvec.Vector, c.n)
	for bin, lst := range c.bins {
		fresh[bin] = len(lst)
	}
	if !fresh.Equal(c.loads) {
		return errMismatch
	}
	return nil
}

var errMismatch = loadvecError("protocols: CRS loads out of sync with ball lists")

type loadvecError string

func (e loadvecError) Error() string { return string(e) }

package protocols

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// EvenDarMansour is the class-2 selfish rerouting baseline with global
// knowledge ([10], as summarized in §2: "consider selfish load balancing
// protocols with global knowledge (e.g., the average load). This allows
// them to reach perfect balance in expected O(ln ln m + ln n) steps").
//
// Faithful-variant note (recorded in DESIGN.md): we implement their
// identical-machines rule in the form commonly stated for unit tasks —
// in each round, every ball in a bin with load above ⌈∅⌉ is "excess"
// (each bin keeps ⌈∅⌉ residents); each excess ball independently
// migrates, with probability 1/2, to a bin sampled uniformly from the
// bins that were below ⌈∅⌉ at the round start. The probability 1/2
// damping is what prevents the simultaneous-move overshoot oscillation
// the paper's §2 discussion warns about.
type EvenDarMansour struct{}

// Round implements RoundProtocol.
func (EvenDarMansour) Round(cfg *loadvec.Config, r *rng.RNG) {
	n := cfg.N()
	ceilAvg := (cfg.M() + n - 1) / n
	// Snapshot round-start classification.
	var under []int
	for i := 0; i < n; i++ {
		if cfg.Load(i) < ceilAvg {
			under = append(under, i)
		}
	}
	if len(under) == 0 {
		return
	}
	start := cfg.Snapshot()
	for i := 0; i < n; i++ {
		excess := start[i] - ceilAvg
		for b := 0; b < excess; b++ {
			if !r.Bernoulli(0.5) {
				continue
			}
			dst := under[r.Intn(len(under))]
			if dst != i {
				cfg.Move(i, dst)
			}
		}
	}
}

// Name implements RoundProtocol.
func (EvenDarMansour) Name() string { return "even-dar-mansour" }

// DistributedSelfish is the class-2 baseline without global knowledge
// ([4], §2: "balls move to a randomly sampled bin with a probability
// depending on the load difference", expected balancing time
// O(ln ln m + n⁴)). The migration rule from [4]: each ball on bin i
// samples a uniform bin j; if ℓ_j < ℓ_i (loads at round start) it
// migrates with probability 1 − ℓ_j/ℓ_i. All balls act simultaneously.
type DistributedSelfish struct{}

// Round implements RoundProtocol.
func (DistributedSelfish) Round(cfg *loadvec.Config, r *rng.RNG) {
	n := cfg.N()
	start := cfg.Snapshot()
	for i := 0; i < n; i++ {
		for b := 0; b < start[i]; b++ {
			j := r.Intn(n)
			li, lj := start[i], start[j]
			if lj >= li || j == i {
				continue
			}
			if r.Bernoulli(1 - float64(lj)/float64(li)) {
				cfg.Move(i, j)
			}
		}
	}
}

// Name implements RoundProtocol.
func (DistributedSelfish) Name() string { return "distributed-selfish" }

// Threshold is the class-3 baseline ([1], §2: "each ball has a threshold
// and moves with a certain probability to a random bin whenever its
// experienced load is above that threshold"). With threshold
// T = Factor·∅ it balances to within a constant multiplicative factor in
// O(ln m) rounds but — unlike RLS — cannot reach perfect balance, because
// below the threshold no ball has any incentive to move (experiment
// CMP3 demonstrates exactly this gap).
type Threshold struct {
	// Factor scales the average load to form the threshold (> 1;
	// [1]'s constant-factor guarantee corresponds to a constant factor
	// like 2).
	Factor float64
	// MoveProb is the per-ball migration probability when above
	// threshold (1/2 in the classical statement).
	MoveProb float64
}

// Round implements RoundProtocol.
func (t Threshold) Round(cfg *loadvec.Config, r *rng.RNG) {
	n := cfg.N()
	thresh := t.Factor * cfg.Avg()
	start := cfg.Snapshot()
	for i := 0; i < n; i++ {
		if float64(start[i]) <= thresh {
			continue
		}
		for b := 0; b < start[i]; b++ {
			if !r.Bernoulli(t.MoveProb) {
				continue
			}
			j := r.Intn(n)
			if j != i {
				cfg.Move(i, j)
			}
		}
	}
}

// Name implements RoundProtocol.
func (t Threshold) Name() string { return "threshold" }

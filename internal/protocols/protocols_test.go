package protocols

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

func TestCRSInitialPlacementIsTwoChoice(t *testing.T) {
	r := rng.New(1)
	c := NewCRS(64, 64, r)
	if c.Loads().Balls() != 64 {
		t.Fatalf("balls = %d", c.Loads().Balls())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two-choice placement at m = n keeps the max load very small
	// (O(ln ln n)); anything ≥ 6 would be far outside that regime.
	_, max := c.Loads().MinMax()
	if max >= 6 {
		t.Errorf("two-choice max load = %d, implausibly high", max)
	}
}

func TestCRSStepMovesOnlyToLesserLoaded(t *testing.T) {
	r := rng.New(2)
	c := NewCRS(16, 32, r)
	for i := 0; i < 20000; i++ {
		before := c.Loads().Clone()
		moved := c.Step(r)
		if moved {
			// Find the move: exactly two bins changed by ±1, and the
			// destination must have been strictly less loaded.
			var src, dst = -1, -1
			for b := range before {
				switch c.Loads()[b] - before[b] {
				case -1:
					src = b
				case 1:
					dst = b
				}
			}
			if src < 0 || dst < 0 {
				t.Fatal("move did not change exactly two bins")
			}
			if before[dst] >= before[src] {
				t.Fatalf("CRS moved uphill: %d(%d) -> %d(%d)", src, before[src], dst, before[dst])
			}
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCRSBallConservationOverRun(t *testing.T) {
	r := rng.New(3)
	c := NewCRS(32, 32, r)
	c.RunUntilPerfect(r, 200000)
	if c.Loads().Balls() != 32 {
		t.Fatal("ball count changed")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCRSReachesPerfectBalanceWhenFeasible(t *testing.T) {
	// CRS balls are confined to their two alternatives, so perfect
	// balance requires the two-choice multigraph to admit an equitable
	// orientation. At m = n (average load 1) that almost never exists —
	// a structural limitation RLS does not share (see CMP1) — so we test
	// at average load 8, where it exists w.h.p., and require most runs to
	// finish within the polynomial budget.
	reached := 0
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed)
		c := NewCRS(16, 128, r)
		_, ok := c.RunUntilPerfect(r, 2_000_000)
		if ok {
			reached++
		}
	}
	if reached < 7 {
		t.Fatalf("CRS reached balance in only %d/10 runs", reached)
	}
}

func TestCRSCannotAlwaysReachPerfectBalanceAtUnitDensity(t *testing.T) {
	// The flip side of the above: at m = n, most two-choice graphs have
	// tree components (more bins than balls locally), making all-loads-1
	// unreachable. Verify the limitation is real: across seeds, at least
	// one run fails even with a generous budget.
	failures := 0
	for seed := uint64(0); seed < 6; seed++ {
		r := rng.New(seed)
		c := NewCRS(16, 16, r)
		if _, ok := c.RunUntilPerfect(r, 500_000); !ok {
			failures++
		}
	}
	if failures == 0 {
		t.Skip("all unit-density runs balanced (possible but unlikely); nothing to assert")
	}
}

func TestRunRoundsStopsImmediately(t *testing.T) {
	cfg := loadvec.NewConfig(loadvec.Vector{2, 2})
	rounds, ok := RunRounds(EvenDarMansour{}, cfg, rng.New(1), Perfect, 100)
	if rounds != 0 || !ok {
		t.Fatalf("rounds=%d ok=%v", rounds, ok)
	}
}

func TestEvenDarMansourBalances(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		r := rng.New(seed)
		v := loadvec.AllInOne().Generate(16, 160, r)
		cfg := loadvec.NewConfig(v)
		rounds, ok := RunRounds(EvenDarMansour{}, cfg, r, Perfect, 10000)
		if !ok {
			t.Fatalf("seed %d: not balanced after %d rounds (disc %g)", seed, rounds, cfg.Disc())
		}
		if cfg.M() != 160 {
			t.Fatal("ball count changed")
		}
	}
}

func TestEvenDarMansourFastWithGlobalKnowledge(t *testing.T) {
	// O(ln ln m + ln n) rounds: from a heavily skewed start at n=64,
	// m=4096, balance should arrive within a few dozen rounds.
	r := rng.New(9)
	v := loadvec.AllInOne().Generate(64, 4096, r)
	cfg := loadvec.NewConfig(v)
	rounds, ok := RunRounds(EvenDarMansour{}, cfg, r, Perfect, 2000)
	if !ok {
		t.Fatal("did not balance")
	}
	if rounds > 200 {
		t.Errorf("took %d rounds, want fast convergence", rounds)
	}
}

func TestDistributedSelfishBalances(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		r := rng.New(seed)
		v := loadvec.OneChoice().Generate(8, 400, r)
		cfg := loadvec.NewConfig(v)
		_, ok := RunRounds(DistributedSelfish{}, cfg, r, Perfect, 200000)
		if !ok {
			t.Fatalf("seed %d: not balanced (disc %g)", seed, cfg.Disc())
		}
	}
}

func TestDistributedSelfishConservation(t *testing.T) {
	r := rng.New(4)
	cfg := loadvec.NewConfig(loadvec.OneChoice().Generate(16, 320, r))
	for round := 0; round < 50; round++ {
		DistributedSelfish{}.Round(cfg, r)
	}
	if cfg.M() != 320 || cfg.Loads().Balls() != 320 {
		t.Fatal("ball count changed")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdReachesConstantFactorButNotPerfect(t *testing.T) {
	r := rng.New(5)
	v := loadvec.AllInOne().Generate(32, 3200, r) // avg 100
	cfg := loadvec.NewConfig(v)
	p := Threshold{Factor: 2, MoveProb: 0.5}
	rounds, ok := RunRounds(p, cfg, r, BalancedWithin(cfg.Avg()), 10000)
	if !ok {
		t.Fatalf("threshold protocol did not reach factor-2 balance (disc %g)", cfg.Disc())
	}
	if rounds > 500 {
		t.Errorf("took %d rounds to constant factor", rounds)
	}
	// Below the threshold the protocol freezes: the CMP3 claim. From a
	// sub-threshold but imperfect configuration, no round changes
	// anything.
	frozen := loadvec.NewConfig(loadvec.Vector{150, 50, 100, 100}) // avg 100, all ≤ 2·avg
	before := frozen.Snapshot()
	for round := 0; round < 50; round++ {
		p.Round(frozen, r)
	}
	if !frozen.Snapshot().Equal(before) {
		t.Fatal("threshold protocol moved below its threshold")
	}
	if frozen.IsPerfect() {
		t.Fatal("test setup should be imperfect")
	}
}

func TestThresholdNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []RoundProtocol{EvenDarMansour{}, DistributedSelfish{}, Threshold{Factor: 2, MoveProb: 0.5}} {
		if p.Name() == "" || names[p.Name()] {
			t.Fatalf("bad name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

func TestRunRoundsBudget(t *testing.T) {
	cfg := loadvec.NewConfig(loadvec.Vector{150, 50, 100, 100})
	p := Threshold{Factor: 2, MoveProb: 0.5}
	rounds, ok := RunRounds(p, cfg, rng.New(6), Perfect, 25)
	if ok {
		t.Fatal("frozen threshold protocol cannot reach perfection")
	}
	if rounds != 25 {
		t.Fatalf("rounds = %d, want 25", rounds)
	}
}

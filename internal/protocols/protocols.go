// Package protocols implements the baseline load-balancing protocols that
// §2 of the paper compares RLS against:
//
//   - the Czumaj–Riley–Scheideler local-search protocol [9] (class 1),
//   - selfish rerouting with global knowledge, after Even-Dar and
//     Mansour [10] (class 2),
//   - distributed selfish balancing without global knowledge, after
//     Berenbrink et al. [4] (class 2), and
//   - threshold load balancing, after Ackermann et al. [1] (class 3).
//
// The selfish and threshold protocols are *synchronous*: in each round
// every ball acts simultaneously on the loads observed at the round
// start. The paper (§2) notes one such round corresponds to one time unit
// of RLS, in which m balls are activated in expectation; the CMP
// experiments use that correspondence.
package protocols

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// RoundProtocol is a synchronous protocol advancing in global rounds.
type RoundProtocol interface {
	// Round executes one synchronous round, mutating cfg.
	Round(cfg *loadvec.Config, r *rng.RNG)
	// Name identifies the protocol.
	Name() string
}

// RunRounds drives a synchronous protocol until stop returns true or
// maxRounds elapse, returning the number of rounds executed and whether
// the stop condition was met.
func RunRounds(p RoundProtocol, cfg *loadvec.Config, r *rng.RNG, stop func(*loadvec.Config) bool, maxRounds int) (int, bool) {
	if stop(cfg) {
		return 0, true
	}
	for round := 1; round <= maxRounds; round++ {
		p.Round(cfg, r)
		if stop(cfg) {
			return round, true
		}
	}
	return maxRounds, false
}

// Perfect is a stop condition for RunRounds: disc < 1.
func Perfect(cfg *loadvec.Config) bool { return cfg.IsPerfect() }

// BalancedWithin returns a stop condition: disc ≤ x.
func BalancedWithin(x float64) func(*loadvec.Config) bool {
	return func(cfg *loadvec.Config) bool { return cfg.IsBalanced(x) }
}

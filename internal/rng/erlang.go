package rng

import "math"

// erlangSumCutoff is the shape below which Erlang sums exponentials
// directly. The direct sum costs k logarithms; Marsaglia–Tsang costs a
// couple of normals and logs regardless of shape, so the crossover sits at
// a small constant.
const erlangSumCutoff = 16

// Erlang returns a Gamma(k, rate) variate for integer shape k ≥ 1 — the
// law of the sum of k independent Exp(rate) gaps. The jump engine uses it
// to advance continuous time over a geometrically distributed block of
// null activations in O(1) instead of drawing the k gaps one by one.
//
// Both paths are exact samplers: small shapes sum inverse-transform
// exponentials, large shapes use the Marsaglia–Tsang rejection method
// (exact for shape ≥ 1). It panics unless k ≥ 1 and rate > 0.
func (r *RNG) Erlang(k int64, rate float64) float64 {
	if k < 1 {
		panic("rng: Erlang with shape < 1")
	}
	if rate <= 0 {
		panic("rng: Erlang with non-positive rate")
	}
	if k <= erlangSumCutoff {
		s := 0.0
		for i := int64(0); i < k; i++ {
			s -= math.Log(r.Float64Open())
		}
		return s / rate
	}
	return r.gammaMT(float64(k)) / rate
}

// gammaMT samples Gamma(shape, 1) for shape ≥ 1 with the Marsaglia–Tsang
// (2000) squeeze method: x ~ N(0,1), v = (1+cx)³, accept when
// ln U < x²/2 + d − dv + d·ln v with d = shape − 1/3, c = 1/√(9d).
// The squeeze accepts ~98% of proposals without the logarithm.
func (r *RNG) gammaMT(shape float64) float64 {
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1.0 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

package rng

import "testing"

// TestFillIntnMatchesIntn pins the batched API's contract: FillIntn
// consumes exactly the draws the same number of Intn calls would, so the
// sharded engine can batch its hot loop without changing any trajectory.
func TestFillIntnMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 16, 1<<31 - 1} {
		a, b := New(42), New(42)
		got := make([]int32, 257)
		a.FillIntn(n, got)
		for i, g := range got {
			if want := b.Intn(n); int(g) != want {
				t.Fatalf("n=%d draw %d: FillIntn %d, Intn %d", n, i, g, want)
			}
		}
		// The generator state advanced identically: later draws agree too.
		for i := 0; i < 16; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("n=%d post-batch draw %d diverged: %d vs %d", n, i, x, y)
			}
		}
	}
}

// TestFillIntnInterleaved checks state continuity across mixed batched and
// scalar calls — the engine interleaves FillIntn chunks with scalar draws
// at epoch boundaries.
func TestFillIntnInterleaved(t *testing.T) {
	a, b := New(7), New(7)
	buf := make([]int32, 31)
	for round := 0; round < 8; round++ {
		n := 3 + round*17
		a.FillIntn(n, buf)
		for i := range buf {
			if want := b.Intn(n); int(buf[i]) != want {
				t.Fatalf("round %d draw %d: %d vs %d", round, i, buf[i], want)
			}
		}
		if x, y := a.Int63n(int64(n)), b.Int63n(int64(n)); x != y {
			t.Fatalf("round %d scalar draw diverged", round)
		}
	}
}

func TestFillIntnPanics(t *testing.T) {
	for _, n := range []int{0, -1, 1 << 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FillIntn(%d) did not panic", n)
				}
			}()
			New(1).FillIntn(n, make([]int32, 4))
		}()
	}
}

// BenchmarkFillIntn quantifies the batching win over the scalar path.
func BenchmarkFillIntn(b *testing.B) {
	r := New(9)
	dst := make([]int32, 512)
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.FillIntn(1000, dst)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = int32(r.Intn(1000))
			}
		}
	})
}

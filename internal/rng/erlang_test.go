package rng

import (
	"math"
	"sort"
	"testing"
)

func TestErlangMoments(t *testing.T) {
	r := New(17)
	cases := []struct {
		k    int64
		rate float64
	}{
		{1, 1}, {2, 0.5}, {16, 3}, {17, 1}, {100, 2}, {10000, 0.1},
	}
	const draws = 50000
	for _, c := range cases {
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			x := r.Erlang(c.k, c.rate)
			if x <= 0 {
				t.Fatalf("Erlang(%d,%g) = %g not positive", c.k, c.rate, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		wantMean := float64(c.k) / c.rate
		wantVar := float64(c.k) / (c.rate * c.rate)
		// Standard error of the sample mean is sqrt(var/draws); allow 5σ.
		if tol := 5 * math.Sqrt(wantVar/draws); math.Abs(mean-wantMean) > tol {
			t.Errorf("Erlang(%d,%g): mean %g, want %g ± %g", c.k, c.rate, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("Erlang(%d,%g): variance %g, want %g", c.k, c.rate, variance, wantVar)
		}
	}
}

// TestErlangPathsAgree cross-validates the Marsaglia–Tsang path against
// ground truth (an explicit sum of exponentials) with a two-sample KS test
// at a shape just past the cutoff.
func TestErlangPathsAgree(t *testing.T) {
	const k, rate = erlangSumCutoff + 4, 2.0
	const draws = 20000
	r := New(41)
	mt := make([]float64, draws)
	direct := make([]float64, draws)
	for i := range mt {
		mt[i] = r.Erlang(k, rate) // k > cutoff: Marsaglia–Tsang path
		s := 0.0
		for j := 0; j < k; j++ {
			s += r.Exp(rate)
		}
		direct[i] = s
	}
	sort.Float64s(mt)
	sort.Float64s(direct)
	var d float64
	i, j := 0, 0
	for i < draws && j < draws {
		if mt[i] <= direct[j] {
			i++
		} else {
			j++
		}
		if diff := math.Abs(float64(i)-float64(j)) / draws; diff > d {
			d = diff
		}
	}
	// Critical value at alpha = 0.001 for two equal samples:
	// sqrt(-ln(alpha/2)/2) * sqrt(2/draws).
	crit := math.Sqrt(-math.Log(0.0005)/2) * math.Sqrt(2.0/draws)
	if d > crit {
		t.Errorf("KS D = %g > %g: MT path disagrees with sum of exponentials", d, crit)
	}
}

func TestErlangPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero shape":    func() { New(1).Erlang(0, 1) },
		"negative rate": func() { New(1).Erlang(3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

package rng

import "math/bits"

// Batched draw primitives for the sharded engine's hot loop: filling a
// flat array in one call keeps the generator state in registers for the
// whole run of draws and hoists the bound-specific rejection threshold
// out of the loop, where the per-call Intn path re-derives it on every
// rejection. The draw sequence is bit-identical to the equivalent loop of
// Int63n calls — batching changes cost, never the stream — which the
// determinism tests pin.

// FillIntn fills dst with independent uniform draws from [0, n), consuming
// exactly the random bits the same number of Intn(n) calls would. It
// panics if n <= 0 or n does not fit in an int32.
func (r *RNG) FillIntn(n int, dst []int32) {
	if n <= 0 {
		panic("rng: FillIntn with non-positive n")
	}
	if n > 1<<31-1 {
		panic("rng: FillIntn bound exceeds int32")
	}
	un := uint64(n)
	thresh := (-un) % un // accept iff lo >= thresh; Int63n's lazy test agrees
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		for {
			x := rotl(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			hi, lo := bits.Mul64(x, un)
			if lo >= thresh {
				dst[i] = int32(hi)
				break
			}
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collided on %d of 1000 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(99).Split()
	b := New(99).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %g", i, c, want)
		}
	}
}

func TestInt63nMatchesIntn(t *testing.T) {
	// Intn delegates to Int63n; both must consume identical random bits so
	// existing fixed-seed runs stay byte-identical.
	a, b := New(23), New(23)
	for i := 0; i < 10000; i++ {
		n := 1 + i%1000
		if x, y := a.Intn(n), b.Int63n(int64(n)); int64(x) != y {
			t.Fatalf("draw %d: Intn(%d)=%d, Int63n=%d", i, n, x, y)
		}
	}
}

func TestInt63nLargeRange(t *testing.T) {
	r := New(31)
	const n = int64(1) << 52 // move weights reach m·n, far beyond int32
	for i := 0; i < 10000; i++ {
		if x := r.Int63n(n); x < 0 || x >= n {
			t.Fatalf("Int63n(%d) = %d out of range", n, x)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(6)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestExpMeanAndVariance(t *testing.T) {
	r := New(8)
	for _, lambda := range []float64{0.5, 1, 3, 10} {
		const draws = 100000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			x := r.Exp(lambda)
			if x < 0 {
				t.Fatalf("Exp(%g) negative", lambda)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / draws
		variance := sumsq/draws - mean*mean
		if math.Abs(mean-1/lambda) > 4/lambda/math.Sqrt(draws)*3 {
			t.Errorf("Exp(%g) mean = %g, want %g", lambda, mean, 1/lambda)
		}
		if math.Abs(variance-1/(lambda*lambda)) > 0.1/(lambda*lambda) {
			t.Errorf("Exp(%g) var = %g, want %g", lambda, variance, 1/(lambda*lambda))
		}
	}
}

func TestExpMemorylessTail(t *testing.T) {
	// P(X > 1/lambda) should be e^{-1}.
	r := New(9)
	const draws = 100000
	lambda := 2.0
	count := 0
	for i := 0; i < draws; i++ {
		if r.Exp(lambda) > 1/lambda {
			count++
		}
	}
	got := float64(count) / draws
	want := math.Exp(-1)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(Exp > mean) = %g, want %g", got, want)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(10)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 1.0} {
		const draws = 50000
		var sum int64
		for i := 0; i < draws; i++ {
			g := r.Geometric(p)
			if g < 1 {
				t.Fatalf("Geometric(%g) = %d < 1", p, g)
			}
			sum += g
		}
		mean := float64(sum) / draws
		want := 1 / p
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%g) mean = %g, want %g", p, mean, want)
		}
	}
}

func TestGeometricMatchesExactPMF(t *testing.T) {
	r := New(12)
	p := 0.3
	const draws = 200000
	counts := map[int64]int{}
	for i := 0; i < draws; i++ {
		counts[r.Geometric(p)]++
	}
	for k := int64(1); k <= 5; k++ {
		want := math.Pow(1-p, float64(k-1)) * p
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(G=%d) = %g, want %g", k, got, want)
		}
	}
}

// TestGeometricTinyPSaturates pins the overflow fix: for p so small that
// the inverse transform exceeds the int64 range, the draw must saturate at
// MaxInt64 (a huge block) rather than wrap through the platform-defined
// float-to-int conversion to MinInt64 and be clamped to 1 (the opposite
// extreme).
func TestGeometricTinyPSaturates(t *testing.T) {
	r := New(15)
	for i := 0; i < 1000; i++ {
		if g := r.Geometric(1e-300); g != math.MaxInt64 {
			t.Fatalf("Geometric(1e-300) = %d, want MaxInt64", g)
		}
	}
	// A tiny-but-representable mean must come out huge and positive, in the
	// right ballpark (mean 1/p = 1e12; individual draws spread widely).
	var max int64
	for i := 0; i < 1000; i++ {
		g := r.Geometric(1e-12)
		if g < 1 {
			t.Fatalf("Geometric(1e-12) = %d < 1", g)
		}
		if g > max {
			max = g
		}
	}
	if max < 1e11 {
		t.Errorf("1000 draws of Geometric(1e-12) peaked at %d, want ≫ 1e11", max)
	}
}

// TestBinomialTinyP exercises the geometric-skip path with a saturated
// gap: it must terminate and return 0 successes instead of overflowing
// its position counter.
func TestBinomialTinyP(t *testing.T) {
	r := New(16)
	for i := 0; i < 100; i++ {
		if v := r.Binomial(1000, 1e-300); v != 0 {
			t.Fatalf("Bin(1000, 1e-300) = %d, want 0", v)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(13)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Errorf("Bin(0, .5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Errorf("Bin(10, 0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Errorf("Bin(10, 1) = %d", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(14)
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.5},    // tiny, geometric-skip path
		{100, 0.05},  // small mean path
		{1000, 0.3},  // BTRS path
		{5000, 0.77}, // BTRS via flipped p
	}
	for _, c := range cases {
		const draws = 40000
		var sum, sumsq float64
		for i := 0; i < draws; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Bin(%d,%g) = %d out of range", c.n, c.p, v)
			}
			f := float64(v)
			sum += f
			sumsq += f * f
		}
		mean := sum / draws
		variance := sumsq/draws - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := float64(c.n) * c.p * (1 - c.p)
		seMean := math.Sqrt(wantVar / draws)
		if math.Abs(mean-wantMean) > 5*seMean {
			t.Errorf("Bin(%d,%g) mean = %g, want %g (±%g)", c.n, c.p, mean, wantMean, 5*seMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("Bin(%d,%g) var = %g, want %g", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialSmallPMF(t *testing.T) {
	// Compare against exact PMF for n=6, p=0.4.
	r := New(15)
	const n = 6
	p := 0.4
	const draws = 300000
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[r.Binomial(n, p)]++
	}
	choose := []float64{1, 6, 15, 20, 15, 6, 1}
	for k := 0; k <= n; k++ {
		want := choose[k] * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
		got := float64(counts[k]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(Bin=%d) = %g, want %g", k, got, want)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(16)
	for _, mean := range []float64{0.5, 5, 50, 500} {
		const draws = 40000
		var sum, sumsq float64
		for i := 0; i < draws; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%g) negative", mean)
			}
			sum += v
			sumsq += v * v
		}
		gotMean := sum / draws
		gotVar := sumsq/draws - gotMean*gotMean
		se := math.Sqrt(mean / draws)
		if math.Abs(gotMean-mean) > 6*se {
			t.Errorf("Poisson(%g) mean = %g", mean, gotMean)
		}
		if math.Abs(gotVar-mean) > 0.1*mean {
			t.Errorf("Poisson(%g) var = %g", mean, gotVar)
		}
	}
}

func TestZipfSupport(t *testing.T) {
	r := New(17)
	z := NewZipf(50, 1.1)
	for i := 0; i < 10000; i++ {
		v := z.Draw(r)
		if v < 1 || v > 50 {
			t.Fatalf("Zipf draw %d out of [1,50]", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With s=2 the first element should carry ~ 1/zeta(2) limited to n=100
	// of the mass; check it dominates element 2 by roughly 4x.
	r := New(18)
	z := NewZipf(100, 2)
	const draws = 100000
	counts := make([]int, 101)
	for i := 0; i < draws; i++ {
		counts[z.Draw(r)]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("count(1)/count(2) = %g, want ~4", ratio)
	}
}

func TestZipfExactCDF(t *testing.T) {
	z := NewZipf(4, 1)
	// weights 1, 1/2, 1/3, 1/4; total 25/12
	total := 1.0 + 0.5 + 1.0/3 + 0.25
	want := []float64{1 / total, 1.5 / total, (1.5 + 1.0/3) / total, 1}
	for i, w := range want {
		if math.Abs(z.cum[i]-w) > 1e-12 {
			t.Errorf("cum[%d] = %g, want %g", i, z.cum[i], w)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	err := quick.Check(func(seed uint64) bool {
		rr := New(seed)
		n := 1 + rr.Intn(200)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	r := New(20)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		p := r.Perm(n)
		counts[p[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("P(first=%d) count %d, want ~%g", i, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(21)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const draws = 100000
	count := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			count++
		}
	}
	got := float64(count) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %g", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(22)
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal var = %g", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1024)
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1000)
	}
	_ = sink
}

func BenchmarkBinomialLarge(b *testing.B) {
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = r.Binomial(100000, 0.3)
	}
	_ = sink
}

package rng

import "math"

// Exp returns an exponential variate with rate lambda (mean 1/lambda),
// sampled by inverse transform. It panics if lambda <= 0.
//
// The paper's process is driven entirely by exponential clocks: each of the
// m balls rings at rate 1, so the superposition rings at rate m and the
// engine draws Exp(m) inter-activation gaps.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / lambda
}

// Geometric returns a geometric variate with success probability p,
// counting the number of trials up to and including the first success
// (support {1, 2, ...}, mean 1/p). It panics unless 0 < p <= 1.
//
// Sampling uses the inverse transform ceil(ln U / ln(1-p)), which is exact
// and O(1) regardless of p. For tiny p the transform can exceed the int64
// range; the result saturates at math.MaxInt64 rather than relying on
// Go's platform-defined out-of-range float-to-int conversion (which on
// amd64 yields MinInt64 — the opposite extreme of the correct huge block).
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64Open()
	gf := math.Ceil(math.Log(u) / math.Log1p(-p))
	if gf >= math.MaxInt64 {
		return math.MaxInt64
	}
	g := int64(gf)
	if g < 1 {
		g = 1
	}
	return g
}

// Binomial returns a Bin(n, p) variate.
//
// For small n·min(p,1-p) it uses the exact geometric-skip method (expected
// O(np) work); for large means it uses inversion by counting exponential
// arrivals is too slow, so it falls back to an exact BTRS-style rejection
// sampler. Both paths are exact samplers of the binomial law.
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	flipped := false
	if p > 0.5 {
		p = 1 - p
		flipped = true
	}
	var k int64
	if float64(n)*p < 30 {
		k = r.binomialGeomSkip(n, p)
	} else {
		k = r.binomialBTRS(n, p)
	}
	if flipped {
		k = n - k
	}
	return k
}

// binomialGeomSkip counts successes by jumping between them with geometric
// gaps. Expected work is O(np + 1). The gap is compared against the
// remaining trials before being added so a saturated Geometric draw
// (tiny p) terminates instead of overflowing pos.
func (r *RNG) binomialGeomSkip(n int64, p float64) int64 {
	var count, pos int64
	for {
		g := r.Geometric(p)
		if g > n-pos {
			return count
		}
		pos += g
		count++
	}
}

// binomialBTRS is the transformed-rejection sampler of Hörmann (1993),
// exact for np >= 10 and p <= 0.5. Constants follow the BTRS variant.
func (r *RNG) binomialBTRS(n int64, p float64) int64 {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	mode := int64(math.Floor((nf + 1) * p))
	h := lgammaInt(mode+1) + lgammaInt(n-mode+1)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		k := int64(kf)
		if us >= 0.07 && v <= vr {
			return k
		}
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgammaInt(k+1)-lgammaInt(n-k+1)+float64(k-mode)*lpq {
			return k
		}
	}
}

// lgammaInt returns ln(Γ(x)) = ln((x-1)!) for positive integer arguments.
func lgammaInt(x int64) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// product method for small means and the PTRS transformed-rejection
// sampler for large means. Both are exact.
func (r *RNG) Poisson(mean float64) int64 {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	return r.poissonPTRS(mean)
}

// poissonPTRS is Hörmann's transformed-rejection Poisson sampler, exact for
// mean >= 10.
func (r *RNG) poissonPTRS(mu float64) int64 {
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	lmu := math.Log(mu)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + mu + 0.43)
		if kf < 0 {
			continue
		}
		k := int64(kf)
		if us >= 0.07 && v <= vr {
			return k
		}
		if us < 0.013 && v > us {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		if lhs <= -mu+kf*lmu-lgammaInt(k+1) {
			return k
		}
	}
}

// Zipf samples from a Zipf law on [1, n] with P(k) proportional to 1/k^s.
// It precomputes the cumulative weights once and samples by binary search,
// which is exact and O(log n) per draw. Used by the workload generators
// for skewed initial placements.
type Zipf struct {
	cum []float64 // cum[k-1] = normalized CDF at k
}

// NewZipf builds a Zipf sampler over {1, ..., n} with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("rng: NewZipf with n < 1")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// Draw returns the next Zipf variate in [1, n].
func (z *Zipf) Draw(r *RNG) int64 {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}

// Package rng provides a fast, splittable pseudo-random number generator
// and the distribution samplers used throughout the simulator.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that any 64-bit seed yields a well-mixed initial state.
// Streams can be split deterministically with Split, which gives every
// replication of an experiment its own independent-looking stream while
// keeping the whole experiment reproducible from a single root seed.
//
// Only integer and float64 uniforms live in this file; derived
// distributions (exponential, geometric, binomial, ...) are in dist.go.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is not usable; create
// instances with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is the
// recommended seeding procedure for xoshiro generators: consecutive outputs
// are well distributed even for adversarial seeds such as 0.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro256** must not start in the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's full 4-word xoshiro256** state. Restoring
// it with Restore reproduces the stream exactly from this point; split
// streams carry no extra position — each Split spawns an independent RNG
// whose own State captures it completely.
func (r *RNG) State() [4]uint64 { return [4]uint64{r.s0, r.s1, r.s2, r.s3} }

// Restore overwrites the generator state with a value previously obtained
// from State. The all-zero state (never produced by New or the xoshiro
// step) is mapped onto the same non-zero guard state New uses, so a
// restored generator can never wedge.
func (r *RNG) Restore(s [4]uint64) {
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new, deterministically seeded generator from r, advancing
// r. Streams produced by successive Split calls are seeded with distinct
// xoshiro outputs re-expanded through splitmix64, which in practice gives
// non-overlapping, uncorrelated streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Int63n(int64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0. The full
// 64-bit range of the level-index move weights (up to m·n) goes through
// here; Intn shares the same draw, so both consume identical random bits.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	un := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, un)
		}
	}
	return int64(hi)
}

// Int63 returns a uniform non-negative int64 (63 random bits).
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero,
// suitable for inverse-CDF sampling that takes a logarithm.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher–Yates shuffle to n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

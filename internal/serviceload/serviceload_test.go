package serviceload

import (
	"testing"
	"time"
)

// TestLoadSmoke runs a miniature load study — the same code path
// CI's service job runs at 1000x50 — and checks the zero-loss invariant
// plus the /metrics-scraped quantiles.
func TestLoadSmoke(t *testing.T) {
	cfg := Config{
		Sessions:     8,
		EventsPerSec: 100,
		Duration:     300 * time.Millisecond,
		Bins:         32,
		BatchSize:    5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("load study accepted zero events")
	}
	if res.Applied != res.Accepted {
		t.Errorf("applied %d != accepted %d", res.Applied, res.Accepted)
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Errorf("errors=%d rejected=%d, want zero loss", res.Errors, res.Rejected)
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Errorf("implausible quantiles p50=%v p99=%v", res.P50, res.P99)
	}
	pts := res.Points()
	want := []string{"ServiceLoad/apply/p50", "ServiceLoad/apply/p99", "ServiceLoad/throughput"}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i, pt := range pts {
		if pt.Name != want[i] {
			t.Errorf("point %d name %q, want %q", i, pt.Name, want[i])
		}
	}
}

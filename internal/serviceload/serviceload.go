package serviceload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// The service load study: N concurrent tenants each streaming E events/sec
// of churn through the real HTTP control plane (internal/service behind an
// httptest server — full JSON decode, rate-limit, queue, applier, metrics
// path; only the TCP listener is loopback). It answers the serving
// question ROADMAP item 2 poses: can one daemon host thousands of live
// RLS sessions with bounded event→apply latency and zero loss?
//
// The gates CI enforces via scripts/check_service.sh:
//
//   - zero dropped or errored events: accepted == applied, apply errors 0,
//     and no 429/503 rejections (each batch pairs adds with removes, adds
//     first, over a pre-seeded population, so every event is applicable);
//   - an event→apply p99 ceiling, read from the daemon's own /metrics
//     histogram — the harness scrapes and parses the Prometheus text
//     rather than peeking at internals, so the exposition format is
//     exercised end to end.

// Config parameterizes RunServiceLoad.
type Config struct {
	// Sessions is the tenant count; engine modes round-robin over
	// direct/jump/sharded/shardedjump. Defaults to 64.
	Sessions int
	// EventsPerSec is each tenant's target churn rate. Defaults to 50.
	EventsPerSec float64
	// Duration is how long the generators post. Defaults to 2s.
	Duration time.Duration
	// Bins is each tenant's bin count (balls start at 2*Bins). Defaults
	// to 64.
	Bins int
	// BatchSize is the events per POST (rounded up to an odd 2k+1: k adds,
	// k removes, one short run). Defaults to 11.
	BatchSize int
	// Seed fixes the per-tenant session seeds. Defaults to 1.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.EventsPerSec <= 0 {
		c.EventsPerSec = 50
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Bins <= 0 {
		c.Bins = 64
	}
	if c.BatchSize < 3 {
		c.BatchSize = 11
	}
	return c
}

// Result is the study's outcome plus the latency quantiles
// parsed from the daemon's /metrics exposition.
type Result struct {
	Sessions   int
	Accepted   int64
	Applied    int64
	Errors     int64         // apply errors (must be 0)
	Rejected   int64         // 429/503 event rejections (must be 0)
	Elapsed    time.Duration // post start to fully drained
	Throughput float64       // applied events/sec over Elapsed
	P50, P99   time.Duration // event→apply latency from /metrics
}

// Points returns the result as BENCH-style cells. Names are stable
// regardless of the study's size parameters so check_bench_names.sh can
// track them across PRs.
func (r Result) Points() []Point {
	return []Point{
		{Name: "ServiceLoad/apply/p50", NsPerOp: float64(r.P50)},
		{Name: "ServiceLoad/apply/p99", NsPerOp: float64(r.P99)},
		{Name: "ServiceLoad/throughput", NsPerOp: safeNsPerEvent(r),
			EventsPerSec: r.Throughput, Errors: r.Errors + r.Rejected},
	}
}

func safeNsPerEvent(r Result) float64 {
	if r.Applied == 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Applied)
}

// Point is one recorded cell of the study.
type Point struct {
	Name         string
	NsPerOp      float64
	EventsPerSec float64
	Errors       int64
}

// RunServiceLoad hosts a service in-process, drives it over real HTTP,
// waits for the backlog to drain, and scrapes /metrics for the verdict.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	// Admission headroom: the study gates on zero rejections, so the
	// per-tenant bucket runs at 4x the offered rate (the generators pace
	// themselves; the bucket is exercised, not saturated).
	svc := service.New(service.Config{
		MaxSessions: cfg.Sessions,
		EventRate:   4 * cfg.EventsPerSec,
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * cfg.Sessions,
		MaxIdleConnsPerHost: 4 * cfg.Sessions,
	}}
	defer client.CloseIdleConnections()

	modes := [...]string{"direct", "jump", "sharded", "shardedjump"}
	ids := make([]string, cfg.Sessions)
	for i := range ids {
		body := fmt.Sprintf(`{"bins": %d, "balls": %d, "seed": %d, "engine": %q}`,
			cfg.Bins, 2*cfg.Bins, cfg.Seed+uint64(i), modes[i%len(modes)])
		resp, err := client.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			return Result{}, err
		}
		var info struct {
			ID string `json:"id"`
		}
		err = jsonDecode(resp, &info)
		if err != nil {
			return Result{}, fmt.Errorf("create session %d: %w", i, err)
		}
		ids[i] = info.ID
	}

	k := (cfg.BatchSize - 1) / 2
	var b strings.Builder
	b.WriteString(`{"events": [`)
	for i := 0; i < k; i++ {
		b.WriteString(`{"op": "add"}, `)
	}
	for i := 0; i < k; i++ {
		b.WriteString(`{"op": "remove"}, `)
	}
	b.WriteString(`{"op": "run", "for": 0.002}]}`)
	batchBody := b.String()
	perBatch := 2*k + 1
	interval := time.Duration(float64(perBatch) / cfg.EventsPerSec * float64(time.Second))

	var postErrs atomic.Int64
	var badStatus atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			// Stagger generator phases across one interval so 1000 tenants
			// don't synchronize their POSTs.
			time.Sleep(interval * time.Duration(i) / time.Duration(len(ids)))
			deadline := start.Add(cfg.Duration)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(srv.URL+"/v1/sessions/"+id+"/events",
					"application/json", strings.NewReader(batchBody))
				if err != nil {
					postErrs.Add(1)
				} else {
					if resp.StatusCode != 202 {
						badStatus.Add(1)
					}
					drainBody(resp)
				}
				if rest := interval - time.Since(t0); rest > 0 {
					time.Sleep(rest)
				}
			}
		}(i, id)
	}
	wg.Wait()
	if n := postErrs.Load(); n > 0 {
		return Result{}, fmt.Errorf("%d transport errors posting events", n)
	}

	// Drain: wait until every accepted event is applied.
	m := svc.Metrics()
	drainDeadline := time.Now().Add(30 * time.Second)
	for m.EventsApplied.Load() < m.EventsAccepted.Load() {
		if time.Now().After(drainDeadline) {
			return Result{}, fmt.Errorf("backlog did not drain: %d/%d applied",
				m.EventsApplied.Load(), m.EventsAccepted.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	p50, p99, err := scrapeApplyQuantiles(client, srv.URL)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Sessions: cfg.Sessions,
		Accepted: m.EventsAccepted.Load(),
		Applied:  m.EventsApplied.Load(),
		Errors:   m.ApplyErrors.Load(),
		Rejected: m.RejectedRate.Load() + m.RejectedQueue.Load() + m.RejectedDrain.Load() + badStatus.Load(),
		Elapsed:  elapsed,
		P50:      p50,
		P99:      p99,
	}
	res.Throughput = float64(res.Applied) / elapsed.Seconds()
	return res, nil
}

// scrapeApplyQuantiles GETs /metrics and recovers p50/p99 from the
// rlsd_apply_latency_seconds histogram by the usual Prometheus bucket
// interpolation.
func scrapeApplyQuantiles(client *http.Client, base string) (p50, p99 time.Duration, err error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	type bucket struct {
		le  float64
		cum int64
	}
	var buckets []bucket
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, `rlsd_apply_latency_seconds_bucket{le="`)
		if !ok {
			continue
		}
		leStr, cntStr, ok := strings.Cut(rest, `"} `)
		if !ok {
			return 0, 0, fmt.Errorf("malformed histogram line %q", line)
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				return 0, 0, fmt.Errorf("bad bucket bound in %q: %w", line, err)
			}
		}
		cum, err := strconv.ParseInt(cntStr, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad bucket count in %q: %w", line, err)
		}
		buckets = append(buckets, bucket{le, cum})
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if len(buckets) == 0 {
		return 0, 0, fmt.Errorf("no rlsd_apply_latency_seconds buckets in /metrics")
	}
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, 0, fmt.Errorf("empty apply-latency histogram (no batches applied?)")
	}
	quantile := func(q float64) time.Duration {
		target := q * float64(total)
		lower, prevCum := 0.0, int64(0)
		for _, b := range buckets {
			if float64(b.cum) >= target && b.cum > prevCum {
				upper := b.le
				if math.IsInf(upper, 1) {
					upper = 2 * lower
				}
				frac := (target - float64(prevCum)) / float64(b.cum-prevCum)
				return time.Duration((lower + (upper-lower)*frac) * float64(time.Second))
			}
			prevCum = b.cum
			if !math.IsInf(b.le, 1) {
				lower = b.le
			}
		}
		return time.Duration(lower * float64(time.Second))
	}
	return quantile(0.50), quantile(0.99), nil
}

func jsonDecode(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func drainBody(resp *http.Response) {
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// ServiceLoadTable renders the study for the text output.
func Table(res Result, cfg Config) *harness.Table {
	cfg = cfg.withDefaults()
	tb := harness.NewTable("SVC", "multi-tenant service load",
		"sessions", "accepted", "applied", "errors", "rejected", "ev/s", "p50", "p99")
	tb.Addf(res.Sessions, res.Accepted, res.Applied, res.Errors, res.Rejected,
		fmt.Sprintf("%.0f", res.Throughput),
		res.P50.Round(time.Microsecond).String(),
		res.P99.Round(time.Microsecond).String())
	tb.Note("%d sessions x %.0f ev/s for %v, bins=%d batch=%d seed=%d; NumCPU=%d GOMAXPROCS=%d",
		cfg.Sessions, cfg.EventsPerSec, cfg.Duration, cfg.Bins, cfg.BatchSize, cfg.Seed,
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	tb.Note("p50/p99 are event batch enqueue-to-applied latencies scraped from /metrics")
	return tb
}

package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Fatalf("D = %g on identical samples", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("D = %g on disjoint samples, want 1", d)
	}
}

func TestKSStatisticHandComputed(t *testing.T) {
	// a = {1, 3}, b = {2, 4}: after x=1 F_a=.5, F_b=0 → D ≥ .5; that is
	// also the max.
	a := []float64{1, 3}
	b := []float64{2, 4}
	if d := KSStatistic(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("D = %g, want 0.5", d)
	}
}

func TestKSStatisticSymmetric(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 100)
	b := make([]float64, 150)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range b {
		b[i] = r.Exp(1)
	}
	if math.Abs(KSStatistic(a, b)-KSStatistic(b, a)) > 1e-12 {
		t.Fatal("KS statistic not symmetric")
	}
}

func TestKSPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KSStatistic(nil, []float64{1})
}

func TestSameDistributionAcceptsSameLaw(t *testing.T) {
	r := rng.New(2)
	const n = 1500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Exp(2)
		b[i] = r.Exp(2)
	}
	ok, d := SameDistribution(a, b, 0.001)
	if !ok {
		t.Fatalf("same law rejected: D = %g > crit %g", d, KSCritical(n, n, 0.001))
	}
}

func TestSameDistributionRejectsDifferentLaw(t *testing.T) {
	r := rng.New(3)
	const n = 1500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Exp(1)
		b[i] = r.Exp(2) // half the mean
	}
	if ok, d := SameDistribution(a, b, 0.01); ok {
		t.Fatalf("different laws accepted: D = %g", d)
	}
}

func TestKSCriticalShrinks(t *testing.T) {
	if KSCritical(10000, 10000, 0.05) >= KSCritical(100, 100, 0.05) {
		t.Fatal("critical value should shrink with n")
	}
	// Known constant: c(0.05) ≈ 1.358; crit for equal n: c·sqrt(2/n).
	got := KSCritical(200, 200, 0.05)
	want := 1.3581 * math.Sqrt(2.0/200)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("crit = %g, want ~%g", got, want)
	}
}

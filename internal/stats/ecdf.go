package stats

import "sort"

// ECDF is an empirical cumulative distribution function over a finite
// sample. It supports point evaluation and the one-sided dominance
// comparison used to validate the Destructive Majorization Lemma.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied, then sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P(X <= x) under the empirical measure.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	idx := sort.SearchFloat64s(e.sorted, x)
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Values returns the sorted sample (shared slice; do not modify).
func (e *ECDF) Values() []float64 { return e.sorted }

// DominanceReport describes how close sample B comes to stochastically
// dominating sample A.
type DominanceReport struct {
	// MaxViolation is max over x of F_B(x) - F_A(x). If B truly dominates A
	// (B >= A stochastically), F_B <= F_A pointwise, so violations are <= 0
	// up to sampling noise.
	MaxViolation float64
	// At is a location achieving MaxViolation.
	At float64
}

// Dominates reports whether sample b stochastically dominates sample a
// within a noise tolerance eps: it checks F_b(x) <= F_a(x) + eps at every
// sample point. Exact dominance corresponds to eps = 0; Monte-Carlo
// validation should pass an eps of a few standard errors
// (~ sqrt(ln(n)/n) for a Dvoretzky–Kiefer–Wolfowitz style band).
func Dominates(a, b []float64, eps float64) (bool, DominanceReport) {
	fa := NewECDF(a)
	fb := NewECDF(b)
	rep := DominanceReport{MaxViolation: 0}
	check := func(x float64) {
		v := fb.At(x) - fa.At(x)
		if v > rep.MaxViolation {
			rep.MaxViolation = v
			rep.At = x
		}
	}
	for _, x := range fa.sorted {
		check(x)
	}
	for _, x := range fb.sorted {
		check(x)
	}
	return rep.MaxViolation <= eps, rep
}

// DKWEps returns the half-width of a Dvoretzky–Kiefer–Wolfowitz confidence
// band at level alpha for a sample of size n: sqrt(ln(2/alpha) / (2n)).
// Comparing two ECDFs, the sum of both bands bounds the sampling noise in
// a dominance check.
func DKWEps(n int, alpha float64) float64 {
	if n <= 0 {
		return 1
	}
	return sqrt(ln(2/alpha) / (2 * float64(n)))
}

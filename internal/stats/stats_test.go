package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("zero Summary not empty")
	}
	s.AddAll([]float64{1, 2, 3, 4, 5})
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %g", s.Mean())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Errorf("Var = %g, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(7)
	if s.Mean() != 7 || s.Var() != 0 || s.Min() != 7 || s.Max() != 7 {
		t.Fatalf("single observation summary wrong: %+v", s)
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.AddAll([]float64{-3, -1, -2})
	if s.Mean() != -2 {
		t.Errorf("Mean = %g", s.Mean())
	}
	if s.Min() != -3 || s.Max() != -1 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			s.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-naiveVar) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCI95ShrinksWithN(t *testing.T) {
	r := rng.New(1)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %g vs %g", large.CI95(), small.CI95())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Error("Quantile modified its input")
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(0) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF misbehaves")
	}
}

func TestDominatesIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ok, rep := Dominates(xs, xs, 0)
	if !ok || rep.MaxViolation != 0 {
		t.Fatalf("identical samples should dominate trivially: %+v", rep)
	}
}

func TestDominatesShifted(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 6} // b = a + 1, so b dominates a
	if ok, rep := Dominates(a, b, 0); !ok {
		t.Fatalf("shifted sample should dominate: %+v", rep)
	}
	// And a does NOT dominate b.
	if ok, _ := Dominates(b, a, 0); ok {
		t.Fatal("reverse dominance should fail")
	}
}

func TestDominatesDetectsViolation(t *testing.T) {
	a := []float64{10, 10, 10}
	b := []float64{1, 20, 20}
	ok, rep := Dominates(a, b, 0)
	if ok {
		t.Fatal("expected violation")
	}
	if rep.MaxViolation < 1.0/3-1e-12 {
		t.Errorf("violation magnitude %g, want >= 1/3", rep.MaxViolation)
	}
}

func TestDominatesWithNoise(t *testing.T) {
	// Two samples from the same distribution should dominate each other
	// within a DKW band at reasonable alpha.
	r := rng.New(42)
	const n = 2000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Exp(1)
		b[i] = r.Exp(1)
	}
	eps := 2 * DKWEps(n, 0.001)
	if ok, rep := Dominates(a, b, eps); !ok {
		t.Fatalf("same-law samples flagged as non-dominating: %+v (eps=%g)", rep, eps)
	}
	if ok, rep := Dominates(b, a, eps); !ok {
		t.Fatalf("same-law samples flagged as non-dominating (swapped): %+v", rep)
	}
}

func TestDKWEps(t *testing.T) {
	if e := DKWEps(0, 0.05); e != 1 {
		t.Errorf("DKWEps(0) = %g", e)
	}
	e1 := DKWEps(100, 0.05)
	e2 := DKWEps(10000, 0.05)
	if e2 >= e1 {
		t.Error("DKW band must shrink with n")
	}
	want := math.Sqrt(math.Log(2/0.05) / 200)
	if math.Abs(e1-want) > 1e-12 {
		t.Errorf("DKWEps(100, .05) = %g, want %g", e1, want)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %g, want 1", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 5 - 0.5*xs[i] + r.NormFloat64()
	}
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope+0.5) > 0.01 {
		t.Errorf("slope = %g, want ~-0.5", f.Slope)
	}
	if f.R2 < 0.9 {
		t.Errorf("R2 = %g too low", f.R2)
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	xs := []float64{10, 20, 40, 80, 160}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	f := PowerFit(xs, ys)
	if math.Abs(f.Slope-1.5) > 1e-9 {
		t.Fatalf("exponent = %g, want 1.5", f.Slope)
	}
	if math.Abs(math.Exp(f.Intercept)-3) > 1e-9 {
		t.Fatalf("constant = %g, want 3", math.Exp(f.Intercept))
	}
}

func TestPowerFitPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PowerFit([]float64{1, 0}, []float64{1, 1})
}

func TestRatioSpread(t *testing.T) {
	xs := []float64{1, 2, 4}
	ys := []float64{2, 6, 8}
	lo, hi := RatioSpread(xs, ys)
	if lo != 2 || hi != 3 {
		t.Fatalf("spread = (%g, %g), want (2, 3)", lo, hi)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

package stats

import "math"

// internal aliases so ecdf.go reads cleanly without importing math there.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }

// LinFit holds an ordinary-least-squares line y = Intercept + Slope*x.
type LinFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// LinearFit fits y = a + b*x by least squares. It panics if the inputs
// have mismatched lengths or fewer than two points.
func LinearFit(xs, ys []float64) LinFit {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: LinearFit needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: LinearFit with degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2}
}

// PowerFit estimates the exponent p in y ~ C * x^p by regressing
// ln y on ln x. All inputs must be strictly positive.
//
// The experiments use this to check growth rates: e.g. Theorem 1 predicts
// the balancing time from a single-bin start grows like ln n for m >> n²,
// so a power fit of T against n should give an exponent near 0 while a fit
// of T against ln n gives slope ~ constant.
func PowerFit(xs, ys []float64) LinFit {
	lx := make([]float64, len(xs))
	lyy := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: PowerFit requires positive data")
		}
		lx[i] = math.Log(xs[i])
		lyy[i] = math.Log(ys[i])
	}
	return LinearFit(lx, lyy)
}

// RatioSpread returns the max/min ratio of ys[i]/xs[i]; a bounded spread
// across a sweep is the empirical signature of y = Θ(x).
func RatioSpread(xs, ys []float64) (minRatio, maxRatio float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: RatioSpread needs equal-length non-empty inputs")
	}
	minRatio = math.Inf(1)
	maxRatio = math.Inf(-1)
	for i := range xs {
		if xs[i] == 0 {
			panic("stats: RatioSpread with zero denominator")
		}
		r := ys[i] / xs[i]
		if r < minRatio {
			minRatio = r
		}
		if r > maxRatio {
			maxRatio = r
		}
	}
	return
}

// Package stats provides the statistical machinery that turns Monte-Carlo
// simulation output into the kinds of statements the paper makes:
// means with confidence intervals, tail quantiles, empirical CDFs with
// one-sided stochastic-dominance tests (for the Destructive Majorization
// Lemma), and log-log regression for estimating growth exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming moments of a sample. The zero value is an empty
// summary ready for use.
type Summary struct {
	n          int
	mean, m2   float64 // Welford running mean and sum of squared deviations
	min, max   float64
	hasExtrema bool
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// AddAll incorporates every observation in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// SE returns the standard error of the mean.
func (s *Summary) SE() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a ~95% normal-approximation confidence
// interval for the mean. For the replication counts used by the harness
// (>= 16) the normal approximation is adequate.
func (s *Summary) CI95() float64 { return 1.96 * s.SE() }

// String formats the summary as "mean ± ci95 (n=..)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Quantile returns the q-th empirical quantile (0 <= q <= 1) of xs using
// linear interpolation between order statistics. xs need not be sorted;
// it is not modified. It panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

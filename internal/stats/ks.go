package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_a(x) − F_b(x)| between the empirical CDFs of a and b.
// The ablation experiments (same-law claims A1–A3) use it to compare
// whole distributions rather than just means.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic with empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the large-sample critical value for the two-sample
// KS test at significance alpha: c(α)·sqrt((n_a+n_b)/(n_a·n_b)) with
// c(α) = sqrt(−ln(α/2)/2). Samples with KSStatistic below this are
// consistent with a common distribution at level alpha.
func KSCritical(na, nb int, alpha float64) float64 {
	if na <= 0 || nb <= 0 {
		panic("stats: KSCritical with non-positive sample size")
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(na+nb)/float64(na)/float64(nb))
}

// SameDistribution reports whether the two samples pass a two-sample KS
// test at significance alpha (true = cannot reject that they share a law).
func SameDistribution(a, b []float64, alpha float64) (bool, float64) {
	d := KSStatistic(a, b)
	return d <= KSCritical(len(a), len(b), alpha), d
}

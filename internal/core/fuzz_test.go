package core

import (
	"testing"

	"repro/internal/loadvec"
)

// FuzzCoupledStep drives the Lemma 2 coupling with fuzzer-chosen
// configurations and random choices; the closeness invariant and the
// discrepancy majorization must hold for every input the fuzzer finds.
func FuzzCoupledStep(f *testing.F) {
	f.Add([]byte{5, 3, 2, 1}, uint8(2), uint8(0), uint8(3), uint8(1))
	f.Add([]byte{9, 0, 0}, uint8(1), uint8(0), uint8(0), uint8(2))
	f.Add([]byte{4, 4, 4, 4}, uint8(3), uint8(1), uint8(7), uint8(0))
	f.Fuzz(func(t *testing.T, loads []byte, srcRank, dstRank, ballRaw, drRaw uint8) {
		if len(loads) < 2 || len(loads) > 12 {
			return
		}
		l := make(loadvec.Vector, len(loads))
		m := 0
		for i, b := range loads {
			l[i] = int(b % 16)
			m += l[i]
		}
		if m == 0 {
			return
		}
		l = l.SortedDesc()
		n := len(l)
		sr := int(srcRank) % n
		dr := int(dstRank) % n
		if sr <= dr {
			return
		}
		lp, err := DestructiveMoveOnSorted(l, sr, dr)
		if err != nil {
			return
		}
		ball := int(ballRaw) % m
		dstR := int(drRaw) % n
		nl, nlp := CoupledStep(l, lp, ball, dstR)
		if !CloseTo(nl, nlp) {
			t.Fatalf("closeness broken: l=%v lp=%v ball=%d dst=%d -> %v / %v",
				l, lp, ball, dstR, nl, nlp)
		}
		if nl.Disc() > nlp.Disc()+1e-9 {
			t.Fatalf("majorization broken: %v (%.3f) vs %v (%.3f)",
				nl, nl.Disc(), nlp, nlp.Disc())
		}
		if nl.Balls() != m || nlp.Balls() != m {
			t.Fatal("ball count changed in coupled step")
		}
	})
}

// FuzzClassifyConsistency checks the §4 classification laws on arbitrary
// configurations: protocol ∪ destructive covers all legal moves, their
// intersection is exactly the neutral moves, and a move plus its reversal
// never both qualify as (non-neutral) protocol moves.
func FuzzClassifyConsistency(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5}, uint8(0), uint8(1))
	f.Add([]byte{2, 2}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, loads []byte, srcRaw, dstRaw uint8) {
		if len(loads) < 2 || len(loads) > 16 {
			return
		}
		v := make(loadvec.Vector, len(loads))
		for i, b := range loads {
			v[i] = int(b % 32)
		}
		n := len(v)
		src := int(srcRaw) % n
		dst := int(dstRaw) % n
		kind := Classify(v, src, dst)
		if src == dst || v[src] == 0 {
			if kind != Illegal {
				t.Fatalf("illegal move classified as %v", kind)
			}
			return
		}
		if kind == Illegal {
			t.Fatal("legal move classified as illegal")
		}
		p := IsProtocolMove(v, src, dst)
		d := IsDestructiveMove(v, src, dst)
		if !p && !d {
			t.Fatalf("move %d→%d in %v neither protocol nor destructive", src, dst, v)
		}
		if (p && d) != (kind == Neutral) {
			t.Fatalf("neutral characterization broken for %d→%d in %v", src, dst, v)
		}
		// Perform the move; the reversal's classification must mirror it.
		w := v.Clone()
		w[src]--
		w[dst]++
		if p && !IsDestructiveMove(w, dst, src) {
			t.Fatal("reversal of a protocol move is not destructive")
		}
	})
}

package core

import (
	"math"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestLemma8ReductionMeanMatchesFormula(t *testing.T) {
	r := rng.New(1)
	n, m := 200, 50
	const reps = 20000
	var s stats.Summary
	for i := 0; i < reps; i++ {
		s.Add(Lemma8Reduction(n, m, r))
	}
	want := Lemma8Bound(n, m) // Σ n/(r(r−1)) = n(1−1/m)
	if math.Abs(s.Mean()-want) > 4*s.SE() {
		t.Fatalf("mean = %g ± %g, want %g", s.Mean(), s.SE(), want)
	}
	if s.Mean() >= 2*float64(n) {
		t.Fatalf("mean %g exceeds the paper's 2n bound", s.Mean())
	}
}

func TestLemma8ReductionDominatesProtocol(t *testing.T) {
	// The reduction ignores helpful moves, so by Lemma 2 its completion
	// time stochastically dominates the real protocol's balancing time.
	// Check the means with matched instance size.
	n, m := 64, 32
	const reps = 300
	root := rng.New(2)
	var red, real stats.Summary
	for i := 0; i < reps; i++ {
		red.Add(Lemma8Reduction(n, m, root.Split()))
	}
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		e := sim.NewEngine(v, RLS{}, nil, r)
		real.Add(e.Run(sim.UntilPerfect(), 10_000_000).Time)
	}
	if real.Mean() > red.Mean()+3*(red.CI95()+real.CI95()) {
		t.Fatalf("protocol (%g) slower than its upper-bound reduction (%g)", real.Mean(), red.Mean())
	}
}

func TestLemma8ReductionPanicsOnDenseCase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for m > n")
		}
	}()
	Lemma8Reduction(4, 5, rng.New(3))
}

func TestLemma9ReductionMatchesMeanVar(t *testing.T) {
	r := rng.New(4)
	n, k, rem := 128, 4, 100
	const reps = 30000
	var s stats.Summary
	for i := 0; i < reps; i++ {
		s.Add(Lemma9Reduction(n, k, rem, r))
	}
	mean, variance := Lemma9ReductionMeanVar(n, k, rem)
	if math.Abs(s.Mean()-mean) > 5*s.SE() {
		t.Fatalf("mean = %g ± %g, want %g", s.Mean(), s.SE(), mean)
	}
	if math.Abs(s.Var()-variance) > 0.15*variance {
		t.Fatalf("var = %g, want %g", s.Var(), variance)
	}
	// Paper: E[T'] < Σ 1/(n−i) ≤ O(ln n).
	hBound := Harmonic(n-1) - Harmonic(n-rem-1)
	if mean >= hBound {
		t.Fatalf("exact mean %g should be below the harmonic bound %g", mean, hBound)
	}
}

func TestLemma9ReductionEdges(t *testing.T) {
	if Lemma9Reduction(8, 2, 0, rng.New(5)) != 0 {
		t.Fatal("zero remainder should cost zero time")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rem >= n")
		}
	}()
	Lemma9Reduction(8, 2, 8, rng.New(5))
}

func TestLemma10ReductionMatchesEquations8And9(t *testing.T) {
	r := rng.New(6)
	n, m := 64, 64*32
	const reps = 20000
	var s stats.Summary
	for i := 0; i < reps; i++ {
		s.Add(Lemma10Reduction(n, m, r))
	}
	mean, variance := Lemma10ReductionMeanVar(n, m)
	if math.Abs(s.Mean()-mean) > 5*s.SE() {
		t.Fatalf("mean = %g ± %g, want %g", s.Mean(), s.SE(), mean)
	}
	if math.Abs(s.Var()-variance) > 0.2*variance {
		t.Fatalf("var = %g, want %g", s.Var(), variance)
	}
	// Equation (8): E[T'] ≤ 2 ln n; equation (9): Var = O(1/∅).
	if mean > 2*math.Log(float64(n)) {
		t.Fatalf("mean %g exceeds 2 ln n", mean)
	}
	if variance > 10.0/float64(m/n) {
		t.Fatalf("variance %g not O(1/∅)", variance)
	}
}

func TestLemma10ReductionConcentratesPerLemma4(t *testing.T) {
	// Lemma 4 bounds P(T' ≥ E+δ) ≤ exp(λ²Var/4 − λδ/2) with λ the
	// smallest rate = (∅+1)(n−1)/n. Empirical tail must respect it.
	r := rng.New(7)
	n, m := 32, 32*16
	mean, variance := Lemma10ReductionMeanVar(n, m)
	lambda := float64(m/n+1) * float64(n-1) / float64(n)
	delta := 1.0
	bound := Lemma4Tail(lambda, variance, delta)
	const reps = 50000
	count := 0
	for i := 0; i < reps; i++ {
		if Lemma10Reduction(n, m, r) >= mean+delta {
			count++
		}
	}
	if got := float64(count) / reps; got > bound {
		t.Fatalf("tail %g exceeds Lemma 4 bound %g", got, bound)
	}
}

func TestLemma15ReductionMatchesMean(t *testing.T) {
	r := rng.New(10)
	n, m, startA, c := 32, 32*64, 500, 4.0
	const reps = 10000
	var s stats.Summary
	for i := 0; i < reps; i++ {
		s.Add(Lemma15Reduction(n, m, startA, c, r))
	}
	want := Lemma15ReductionMean(n, m, startA, c)
	if math.Abs(s.Mean()-want) > 5*s.SE() {
		t.Fatalf("mean = %g ± %g, want %g", s.Mean(), s.SE(), want)
	}
	// The Lemma 15 bound: O((ln n)²/∅). With the telescoping tail
	// Σ_{a>n} a^{-2} < 1/n, the mean is below (c ln n)²/∅.
	avg := float64(m) / float64(n)
	logn := c * math.Log(float64(n))
	if want > logn*logn/avg {
		t.Fatalf("mean %g exceeds (c ln n)²/∅ = %g", want, logn*logn/avg)
	}
}

func TestLemma15ReductionEdges(t *testing.T) {
	// startA ≤ n: nothing to decay, zero time.
	if Lemma15Reduction(16, 256, 16, 4, rng.New(11)) != 0 {
		t.Fatal("startA <= n should cost zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive constant")
		}
	}()
	Lemma15Reduction(16, 256, 32, 0, rng.New(11))
}

func TestLemma17ReductionMatchesLemma17Bound(t *testing.T) {
	r := rng.New(8)
	// pairs < n so the truncated sum sits strictly below Lemma17Bound's
	// full a=1..n sum (at pairs = n they coincide exactly).
	n, m, pairs := 100, 1000, 50
	const reps = 5000
	var s stats.Summary
	for i := 0; i < reps; i++ {
		s.Add(Lemma17Reduction(n, m, pairs, r))
	}
	// Full Lemma 17 sum over a=1..n with A starting at n... here pairs:
	want := 0.0
	avg := float64(m) / float64(n)
	for a := 1; a <= pairs; a++ {
		want += float64(n) / (avg * float64(a) * float64(a))
	}
	if math.Abs(s.Mean()-want) > 5*s.SE() {
		t.Fatalf("mean = %g ± %g, want %g", s.Mean(), s.SE(), want)
	}
	if s.Mean() > Lemma17Bound(n, m) {
		t.Fatalf("mean %g exceeds Lemma 17 bound %g", s.Mean(), Lemma17Bound(n, m))
	}
}

func TestLemma17ReductionDominatesProtocolPhase3(t *testing.T) {
	// From an A-pair 1-balanced start, the reduced process's mean bounds
	// the protocol's measured Phase 3 mean from above (the reduction
	// waits for worst-case events only).
	n, avg, pairs := 64, 16, 4
	m := n * avg
	const reps = 200
	root := rng.New(9)
	var red, real stats.Summary
	for i := 0; i < reps; i++ {
		red.Add(Lemma17Reduction(n, m, pairs, root.Split()))
	}
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.ImbalancedPairs(pairs).Generate(n, m, r)
		e := sim.NewEngine(v, RLS{}, nil, r)
		real.Add(e.Run(sim.UntilPerfect(), 50_000_000).Time)
	}
	if real.Mean() > red.Mean()+3*(red.CI95()+real.CI95()) {
		t.Fatalf("protocol Phase 3 (%g) slower than the reduction bound (%g)",
			real.Mean(), red.Mean())
	}
}

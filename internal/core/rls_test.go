package core

import (
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestRLSDecideRule(t *testing.T) {
	// Force specific destinations by checking the rule over many draws:
	// from the configuration {3, 2, 1, 3}, a ball in bin 0 may move to
	// bins 1 (3≥3) and 2 (3≥2) but not 0 (self) or 3 (3≥4 false).
	cfg := loadvec.NewConfig(loadvec.Vector{3, 2, 1, 3})
	r := rng.New(1)
	allowed := map[int]bool{1: true, 2: true}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		dst, move := RLS{}.Decide(cfg, 0, r)
		if move {
			if !allowed[dst] {
				t.Fatalf("RLS moved 0→%d illegally", dst)
			}
			seen[dst] = true
		}
	}
	if !seen[1] || !seen[2] {
		t.Errorf("RLS never used destinations: seen=%v", seen)
	}
}

func TestStrictRLSForbidsNeutral(t *testing.T) {
	cfg := loadvec.NewConfig(loadvec.Vector{3, 2, 1})
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		dst, move := StrictRLS{}.Decide(cfg, 0, r)
		if move && dst == 1 {
			t.Fatal("strict RLS performed a neutral move 3→2")
		}
		if move && dst != 2 {
			t.Fatalf("strict RLS moved 0→%d", dst)
		}
	}
}

func TestRLSMoverNames(t *testing.T) {
	rlsName := RLS{}.Name()
	strictName := StrictRLS{}.Name()
	if rlsName == "" || strictName == "" || rlsName == strictName {
		t.Fatal("bad mover names")
	}
}

// §3: under RLS the discrepancy never increases, the minimum load never
// decreases, and the maximum load never increases. Property test over
// random starts and full trajectories.
func TestRLSMonotonicityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(16)
		m := 1 + r.Intn(100)
		v := loadvec.OneChoice().Generate(n, m, r)
		e := sim.NewEngine(v, RLS{}, nil, r)
		prevDisc := e.Cfg().Disc()
		prevMin, prevMax := e.Cfg().Min(), e.Cfg().Max()
		for step := 0; step < 500; step++ {
			e.Step()
			if e.Cfg().Disc() > prevDisc+1e-9 {
				t.Logf("disc increased: %g -> %g", prevDisc, e.Cfg().Disc())
				return false
			}
			if e.Cfg().Min() < prevMin || e.Cfg().Max() > prevMax {
				t.Logf("min/max violated")
				return false
			}
			prevDisc, prevMin, prevMax = e.Cfg().Disc(), e.Cfg().Min(), e.Cfg().Max()
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Perfect balance is absorbing: once disc < 1, RLS makes no further moves
// possible except neutral ones, which keep disc < 1.
func TestRLSPerfectBalanceAbsorbing(t *testing.T) {
	r := rng.New(7)
	v := loadvec.Balanced().Generate(7, 24, r) // disc < 1 with n∤m
	if !v.IsPerfect() {
		t.Fatal("setup not perfect")
	}
	e := sim.NewEngine(v, RLS{}, nil, r)
	for i := 0; i < 5000; i++ {
		e.Step()
		if !e.Cfg().IsPerfect() {
			t.Fatalf("left perfect balance at step %d: %v", i, e.Cfg().Loads())
		}
	}
}

// Both tie-rule variants balance; strict RLS cannot perform neutral moves
// but reaches perfect balance all the same (§3 remark, ablation A2).
func TestStrictAndPaperVariantsBothBalance(t *testing.T) {
	for _, mover := range []sim.Mover{RLS{}, StrictRLS{}} {
		v := loadvec.AllInOne().Generate(16, 64, nil)
		e := sim.NewEngine(v, mover, nil, rng.New(11))
		res := e.Run(sim.UntilPerfect(), 2_000_000)
		if !res.Stopped {
			t.Fatalf("%s did not balance", mover.Name())
		}
	}
}

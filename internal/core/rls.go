// Package core implements the paper's contribution: the Randomized Local
// Search (RLS) protocol of §3, the destructive-move machinery and coupling
// of the Destructive Majorization Lemma (Lemma 2, §4), the phase
// decomposition of the analysis (§6), and the closed-form bounds of
// Theorem 1 and Lemmas 3–5 as executable predictors.
package core

import (
	"repro/internal/loadvec"
	"repro/internal/rng"
)

// RLS is the paper's protocol (§3): upon activation, a ball in bin i
// samples a destination bin i′ uniformly at random and moves iff
// ℓ_i ≥ ℓ_{i′} + 1. Note the tie rule: a move between bins with loads
// (v+1, v) is permitted (it is a *neutral* move, simultaneously a valid
// protocol move and a destructive move — see Figure 1).
type RLS struct{}

// Decide implements sim.Mover.
func (RLS) Decide(cfg *loadvec.Config, src int, r *rng.RNG) (int, bool) {
	dst := r.Intn(cfg.N())
	return dst, cfg.Load(src) >= cfg.Load(dst)+1
}

// Name implements sim.Mover.
func (RLS) Name() string { return "rls" }

// StrictRLS is the [12]/[11] variant discussed in §3: movement from i to
// i′ only if ℓ_i > ℓ_{i′} + 1 (improvement by at least 2, i.e. neutral
// moves are forbidden). The paper remarks that, bins and balls being
// identical, both variants have precisely the same balancing time; the
// A2 ablation experiment checks this empirically.
type StrictRLS struct{}

// Decide implements sim.Mover.
func (StrictRLS) Decide(cfg *loadvec.Config, src int, r *rng.RNG) (int, bool) {
	dst := r.Intn(cfg.N())
	return dst, cfg.Load(src) > cfg.Load(dst)+1
}

// Name implements sim.Mover.
func (StrictRLS) Name() string { return "rls-strict" }

package core

import (
	"math"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestPhaseTrackerOrdering(t *testing.T) {
	// From an all-in-one start the phases must be crossed in order:
	// log-balanced ≤ 1-balanced ≤ perfect.
	v := loadvec.AllInOne().Generate(32, 320, nil)
	e := sim.NewEngine(v, RLS{}, nil, rng.New(1))
	tr := NewPhaseTracker(e)
	res := e.Run(sim.UntilPerfect(), 10_000_000)
	if !res.Stopped {
		t.Fatal("did not balance")
	}
	ts := tr.Times
	if ts.Perfect < 0 || ts.OneBalanced < 0 || ts.LogBalanced < 0 {
		t.Fatalf("missing crossings: %+v", ts)
	}
	if !(ts.LogBalanced <= ts.OneBalanced && ts.OneBalanced <= ts.Perfect) {
		t.Fatalf("phases out of order: %+v", ts)
	}
	if ts.OverloadedAtMostN < 0 || ts.OverloadedAtMostN > ts.OneBalanced {
		t.Fatalf("overloaded boundary out of order: %+v", ts)
	}
}

func TestPhaseTrackerMonotonicityCleanUnderRLS(t *testing.T) {
	v := loadvec.OneChoice().Generate(16, 160, rng.New(2))
	e := sim.NewEngine(v, RLS{}, nil, rng.New(3))
	tr := NewPhaseTracker(e)
	e.Run(sim.UntilPerfect(), 10_000_000)
	if tr.MonotoneViolations() != 0 {
		t.Fatalf("monotonicity violations under plain RLS: disc+%d min-%d max+%d",
			tr.DiscIncreases, tr.MinDecreases, tr.MaxIncreases)
	}
}

// Lemma 16's potential 3A − k − h never increases under RLS (n | m case).
func TestPotentialNonIncreasingUnderRLS(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := rng.New(seed)
		v := loadvec.OneChoice().Generate(16, 16*8, r)
		e := sim.NewEngine(v, RLS{}, nil, r)
		tr := NewPhaseTracker(e)
		e.Run(sim.UntilPerfect(), 10_000_000)
		if tr.PotentialIncreases != 0 {
			t.Fatalf("seed %d: potential increased %d times", seed, tr.PotentialIncreases)
		}
	}
}

func TestPhaseTrackerDetectsAdversarialViolations(t *testing.T) {
	// The concentrator adversary pushes balls back into the fullest bin,
	// so the observed (post-adversary) process violates the §3
	// monotonicity properties — the tracker must notice. The adversary is
	// attached first so the tracker observes post-adversary states.
	v := loadvec.AllInOne().Generate(8, 64, nil)
	e := sim.NewEngine(v, RLS{}, nil, rng.New(4))
	Attach(e, ConcentratorAdversary{Budget: 2})
	tr := NewPhaseTracker(e)
	e.Run(sim.UntilActivations(5000), 0)
	if tr.MonotoneViolations() == 0 {
		t.Fatal("tracker failed to notice adversarial violations")
	}
}

func TestPhaseTrackerInitialStateCounts(t *testing.T) {
	// Starting perfectly balanced: all crossing times are 0.
	v := loadvec.Balanced().Generate(8, 64, nil)
	e := sim.NewEngine(v, RLS{}, nil, rng.New(5))
	tr := NewPhaseTracker(e)
	if tr.Times.Perfect != 0 || tr.Times.OneBalanced != 0 || tr.Times.LogBalanced != 0 {
		t.Fatalf("crossings not recorded at t=0: %+v", tr.Times)
	}
}

// Lemma 17 sanity at small scale: from a 1-balanced configuration with A
// imbalanced pairs, measured mean time to perfect balance is within a
// constant factor of Σ n/(∅ A²).
func TestPhase3MatchesLemma17Shape(t *testing.T) {
	const n, avg = 32, 16
	m := n * avg
	const reps = 60
	root := rng.New(77)
	var total float64
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.ImbalancedPairs(4).Generate(n, m, r)
		e := sim.NewEngine(v, RLS{}, nil, r)
		res := e.Run(sim.UntilPerfect(), 50_000_000)
		if !res.Stopped {
			t.Fatal("phase-3 run did not finish")
		}
		total += res.Time
	}
	mean := total / reps
	// Expected: Σ_{A=1..4} n/(∅A²) ≈ (n/∅)(1 + 1/4 + 1/9 + 1/16).
	predict := 0.0
	for a := 1; a <= 4; a++ {
		predict += float64(n) / (float64(avg) * float64(a*a))
	}
	if mean < predict/6 || mean > predict*6 {
		t.Fatalf("phase-3 mean %g vs prediction %g: off by more than 6x", mean, predict)
	}
}

func TestLemma17BoundValue(t *testing.T) {
	got := Lemma17Bound(100, 1000) // n/∅ = 10
	if got < 10 || got > 10*math.Pi*math.Pi/6+1e-9 {
		t.Fatalf("Lemma17Bound = %g outside (10, 10·π²/6]", got)
	}
}

package core

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/sim"
)

// An Adversary injects destructive moves into a run, in the sense of
// Lemma 2: after each protocol move it may perform an arbitrary number of
// destructive moves (reversals of valid protocol moves). The Destructive
// Majorization Lemma states that no adversary — even one with full
// knowledge of the protocol's randomness — can make the discrepancy
// profile stochastically smaller; experiment DML validates this for the
// adversaries below.
type Adversary interface {
	// Act runs after a protocol move src→dst and may call e.ForceMove with
	// destructive moves only.
	Act(e *sim.Engine, src, dst int)
	// Name identifies the adversary.
	Name() string
}

// Attach installs the adversary on an engine, asserting (in the hook)
// that every injected move is destructive at the moment it is made.
func Attach(e *sim.Engine, adv Adversary) {
	e.PostMove = func(e *sim.Engine, src, dst int) { adv.Act(e, src, dst) }
}

// checkedForce panics unless src→dst is destructive in the current
// configuration, then performs it. All adversaries funnel through this,
// so a buggy adversary cannot silently perform *helpful* moves and
// invalidate the DML experiments.
func checkedForce(e *sim.Engine, src, dst int) {
	if !IsDestructiveMove(e.Cfg().Loads(), src, dst) {
		panic(fmt.Sprintf("core: adversary attempted non-destructive move %d→%d (loads %d→%d)",
			src, dst, e.Cfg().Load(src), e.Cfg().Load(dst)))
	}
	e.ForceMove(src, dst)
}

// RandomAdversary attempts a fixed number of uniformly random destructive
// moves after each protocol move (attempts whose sampled pair is not
// destructive are skipped).
type RandomAdversary struct {
	// Attempts is the number of candidate moves tried per protocol move.
	Attempts int
}

// Act implements Adversary.
func (a RandomAdversary) Act(e *sim.Engine, _, _ int) {
	cfg := e.Cfg()
	n := cfg.N()
	for i := 0; i < a.Attempts; i++ {
		src := e.RNG().Intn(n)
		dst := e.RNG().Intn(n)
		if src == dst || cfg.Load(src) == 0 {
			continue
		}
		if IsDestructiveMove(cfg.Loads(), src, dst) {
			checkedForce(e, src, dst)
		}
	}
}

// Name implements Adversary.
func (a RandomAdversary) Name() string { return fmt.Sprintf("random(%d)", a.Attempts) }

// ReverseAdversary undoes each protocol move with probability P. The
// reversal of a just-performed protocol move is always destructive
// (ℓ'_dst ≤ ℓ'_src + 1 holds by the move's own legality), so with P = 1
// this adversary stalls the process completely.
type ReverseAdversary struct {
	// P is the per-move reversal probability.
	P float64
}

// Act implements Adversary.
func (a ReverseAdversary) Act(e *sim.Engine, src, dst int) {
	if e.RNG().Bernoulli(a.P) {
		checkedForce(e, dst, src)
	}
}

// Name implements Adversary.
func (a ReverseAdversary) Name() string { return fmt.Sprintf("reverse(%.2g)", a.P) }

// ConcentratorAdversary moves balls toward the currently fullest bin:
// after each protocol move it relocates up to Budget balls from random
// non-empty bins into a maximum-load bin. Moving into a maximum-load bin
// is always destructive. This is the adversary implicit in the proofs of
// Lemmas 9–11, which use destructive moves to push all balls into one bin.
type ConcentratorAdversary struct {
	// Budget is the number of balls moved per protocol move.
	Budget int
}

// Act implements Adversary.
func (a ConcentratorAdversary) Act(e *sim.Engine, _, _ int) {
	cfg := e.Cfg()
	n := cfg.N()
	for i := 0; i < a.Budget; i++ {
		// Locate a max bin (scan; adversaries are not on the hot path of
		// the headline experiments).
		maxBin := 0
		for b := 1; b < n; b++ {
			if cfg.Load(b) > cfg.Load(maxBin) {
				maxBin = b
			}
		}
		src := e.RNG().Intn(n)
		if src == maxBin || cfg.Load(src) == 0 {
			continue
		}
		checkedForce(e, src, maxBin)
	}
}

// Name implements Adversary.
func (a ConcentratorAdversary) Name() string { return fmt.Sprintf("concentrate(%d)", a.Budget) }

// StackAll performs the reduction used at the start of Lemmas 8–11: it
// moves every ball into the currently fullest bin using destructive moves
// only, returning the number of moves made. Starting from any
// configuration this produces the all-in-one worst case, constructively
// demonstrating that Lemma 2 lets the analysis assume it.
func StackAll(v loadvec.Vector) (loadvec.Vector, int) {
	w := v.Clone()
	// The fullest bin stays fullest as we stack into it.
	maxBin := 0
	for i := range w {
		if w[i] > w[maxBin] {
			maxBin = i
		}
	}
	moves := 0
	for i := range w {
		if i == maxBin {
			continue
		}
		for w[i] > 0 {
			if !IsDestructiveMove(w, i, maxBin) {
				panic("core: StackAll generated a non-destructive move")
			}
			w[i]--
			w[maxBin]++
			moves++
		}
	}
	return w, moves
}

package core

// Tests operationalizing Lemmas 6 and 7 (the amplification arguments):
// balancedness classes are closed under RLS, so epochs restart cleanly
// and Markov's inequality turns expectation bounds into per-epoch success
// probabilities ≥ 1/2 — giving the w.h.p. bounds of Theorem 1.

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Lemma 6/7's "crucial observation": if ℓ(0) is d-balanced then ℓ(t) is
// d-balanced for all t (discrepancy never increases under RLS).
func TestBalancednessClosedUnderRLS(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r := rng.New(seed)
		v := loadvec.OneChoice().Generate(32, 320, r)
		d := v.Disc()
		e := sim.NewEngine(v, RLS{}, nil, r)
		for i := 0; i < 3000; i++ {
			e.Step()
			if e.Cfg().Disc() > d+1e-9 {
				t.Fatalf("seed %d: left the %g-balanced class (disc %g)", seed, d, e.Cfg().Disc())
			}
		}
	}
}

// Markov epoch argument (heart of Lemmas 6 and 7): an epoch of length
// 2·E[T] succeeds (reaches the target) with probability ≥ 1/2,
// regardless of history. Estimate E[T], then measure the one-epoch
// success frequency.
func TestMarkovEpochSuccessProbability(t *testing.T) {
	const n, m = 16, 64
	const reps = 300
	root := rng.New(99)
	// Pass 1: estimate E[T].
	total := 0.0
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		e := sim.NewEngine(v, RLS{}, nil, r)
		total += e.Run(sim.UntilPerfect(), 10_000_000).Time
	}
	meanT := total / reps
	// Pass 2: from fresh worst-case starts, count success within 2·Ê[T].
	success := 0
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		e := sim.NewEngine(v, RLS{}, nil, r)
		e.Run(sim.UntilTime(2*meanT), 10_000_000)
		if e.Cfg().IsPerfect() {
			success++
		}
	}
	// Markov: P(T > 2E[T]) ≤ 1/2 ⇒ success ≥ 1/2, minus estimation and
	// sampling noise (≤ ~0.08 at 300 reps).
	frac := float64(success) / reps
	if frac < 0.42 {
		t.Fatalf("one-epoch success %.3f < 1/2 − noise (Ê[T] = %g)", frac, meanT)
	}
}

// Lemma 6's conclusion at small scale: the probability that log2(n)
// consecutive epochs all fail is ≤ 1/n. With per-epoch failure ≤ 1/2
// and independence-after-restart, running 2·Ê[T]·log2 n should almost
// always finish.
func TestLemma6EpochChaining(t *testing.T) {
	const n, m = 16, 64
	const reps = 200
	root := rng.New(7)
	// Rough Ê[T] from a few runs.
	est := 0.0
	for i := 0; i < 50; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		e := sim.NewEngine(v, RLS{}, nil, r)
		est += e.Run(sim.UntilPerfect(), 10_000_000).Time
	}
	est /= 50
	horizon := 2 * est * 4 // log2(16) = 4 epochs
	failures := 0
	for i := 0; i < reps; i++ {
		r := root.Split()
		v := loadvec.AllInOne().Generate(n, m, nil)
		e := sim.NewEngine(v, RLS{}, nil, r)
		e.Run(sim.UntilTime(horizon), 50_000_000)
		if !e.Cfg().IsPerfect() {
			failures++
		}
	}
	// Bound is reps/n = 12.5 expected failures; allow 3x.
	if failures > 3*reps/n {
		t.Fatalf("%d/%d runs missed the 2·E[T]·log2(n) horizon (bound ~%d)", failures, reps, reps/n)
	}
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

func TestClassifyBasic(t *testing.T) {
	v := loadvec.Vector{5, 3, 4, 4, 0}
	cases := []struct {
		src, dst int
		want     MoveKind
	}{
		{0, 1, RLSMove},     // 5 -> 3: improvement by 2
		{0, 2, Neutral},     // 5 -> 4: both valid and destructive
		{2, 3, Destructive}, // 4 -> 4: equal loads
		{1, 0, Destructive}, // 3 -> 5: uphill
		{0, 4, RLSMove},     // 5 -> 0
		{4, 0, Illegal},     // empty source
		{1, 1, Illegal},     // same bin
		{-1, 0, Illegal},
		{0, 9, Illegal},
	}
	for _, c := range cases {
		if got := Classify(v, c.src, c.dst); got != c.want {
			t.Errorf("Classify(%d→%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestMoveKindString(t *testing.T) {
	for k, want := range map[MoveKind]string{
		RLSMove: "rls", Neutral: "neutral", Destructive: "destructive", Illegal: "illegal",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

// §4: "a movement is destructive if and only if it is the reversal of a
// valid protocol move". Property test of the involution.
func TestDestructiveIsReversalOfProtocolMove(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		v := make(loadvec.Vector, n)
		for i := range v {
			v[i] = r.Intn(6)
		}
		src := r.Intn(n)
		dst := r.Intn(n)
		if src == dst || v[src] == 0 {
			return true
		}
		if IsProtocolMove(v, src, dst) {
			after := v.Clone()
			after[src]--
			after[dst]++
			if !IsDestructiveMove(after, dst, src) {
				return false
			}
		}
		if IsDestructiveMove(v, src, dst) {
			after := v.Clone()
			after[src]--
			after[dst]++
			if after[dst] == 0 {
				return true // reverse source empty; reversal undefined
			}
			if !IsProtocolMove(after, dst, src) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// §4: a move is neutral iff ℓ_src = ℓ_dst + 1, and neutral moves are
// exactly the moves that are both protocol-valid and destructive
// (Figure 1's middle category).
func TestNeutralIsIntersection(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		v := make(loadvec.Vector, n)
		for i := range v {
			v[i] = r.Intn(5)
		}
		src := r.Intn(n)
		dst := r.Intn(n)
		if src == dst || v[src] == 0 {
			return true
		}
		both := IsProtocolMove(v, src, dst) && IsDestructiveMove(v, src, dst)
		return both == (Classify(v, src, dst) == Neutral)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// Figure 1 regeneration check: in the staircase configuration every
// downhill move by ≥ 2 is RLS-only, every move between loads differing by
// exactly 1 downhill is neutral, everything else (non-illegal) is
// destructive.
func TestClassifyFigure1Staircase(t *testing.T) {
	v := loadvec.Vector{7, 6, 6, 5, 4, 4, 3, 2, 2, 2, 1, 1, 1, 1, 1, 0}
	for src := range v {
		for dst := range v {
			if src == dst {
				continue
			}
			got := Classify(v, src, dst)
			var want MoveKind
			switch {
			case v[src] == 0:
				want = Illegal
			case v[src]-v[dst] >= 2:
				want = RLSMove
			case v[src]-v[dst] == 1:
				want = Neutral
			default:
				want = Destructive
			}
			if got != want {
				t.Fatalf("move %d(%d)→%d(%d): got %v want %v", src, v[src], dst, v[dst], got, want)
			}
		}
	}
}

package core

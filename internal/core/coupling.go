package core

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// This file implements the coupling at the heart of the Destructive
// Majorization Lemma (Lemma 2) as executable code. The proof couples two
// copies of RLS — P(k), in configuration ℓ, and P(k+1), in configuration
// ℓ′ obtained from ℓ by one extra destructive move — by activating the
// same ball with the same destination rank in both, and shows by a
// five-case analysis that ℓ′ remains "close to" ℓ: equal, or one
// destructive move apart. Closeness implies disc(ℓ) ≤ disc(ℓ′)
// (observation (ii)), so induction over steps yields the stochastic
// dominance of the lemma.
//
// CloseTo is the invariant checker, CoupledStep the coupled transition,
// and CoupledRun iterates it while asserting the invariant — turning the
// proof into a property test.

// CloseTo reports whether configuration lp is "close to" configuration l
// in the sense of §4: lp is obtainable from l by at most one destructive
// move, comparing configurations as multisets (RLS is ignorant of bin
// order). Note the relation is asymmetric.
func CloseTo(l, lp loadvec.Vector) bool {
	if len(l) != len(lp) {
		return false
	}
	// Multiset difference hist(lp) − hist(l).
	diff := map[int]int{}
	for _, x := range lp {
		diff[x]++
	}
	for _, x := range l {
		diff[x]--
		if diff[x] == 0 {
			delete(diff, x)
		}
	}
	if len(diff) == 0 {
		return true // equal multisets (includes the neutral-move case)
	}
	// One destructive move takes a ball from a bin at load v to a bin at
	// load w with v ≤ w + 1. Neutral moves (v = w+1) leave the multiset
	// unchanged and were handled above, so v ≤ w here and the histogram
	// delta has one of two shapes:
	//   v = w : {v: −2, v−1: +1, v+1: +1}
	//   v < w : {v: −1, v−1: +1, w: −1, w+1: +1}  (all four keys distinct)
	switch len(diff) {
	case 3:
		// Identify v as the key with delta −2.
		for v, d := range diff {
			if d == -2 {
				return diff[v-1] == 1 && diff[v+1] == 1
			}
		}
		return false
	case 4:
		var minus []int
		for x, d := range diff {
			switch d {
			case -1:
				minus = append(minus, x)
			case 1:
			default:
				return false
			}
		}
		if len(minus) != 2 {
			return false
		}
		v, w := minus[0], minus[1]
		if v > w {
			v, w = w, v
		}
		return diff[v-1] == 1 && diff[w+1] == 1
	default:
		return false
	}
}

// closePositions locates the destructive-move endpoints between two
// sorted-non-increasing configurations with CloseTo(l, lp) and l ≠ lp
// as multisets: it returns iL < iR with lp[iL] = l[iL]+1 and
// lp[iR] = l[iR]−1 and lp equal to l elsewhere. (In sorted order the
// receiving bin of a destructive move sits to the left of the giving bin.)
func closePositions(l, lp loadvec.Vector) (iL, iR int, err error) {
	iL, iR = -1, -1
	for i := range l {
		switch lp[i] - l[i] {
		case 0:
		case 1:
			if iL != -1 {
				return 0, 0, fmt.Errorf("core: two +1 positions (%d, %d)", iL, i)
			}
			iL = i
		case -1:
			if iR != -1 {
				return 0, 0, fmt.Errorf("core: two -1 positions (%d, %d)", iR, i)
			}
			iR = i
		default:
			return 0, 0, fmt.Errorf("core: position %d differs by %d", i, lp[i]-l[i])
		}
	}
	if iL == -1 || iR == -1 {
		return 0, 0, fmt.Errorf("core: configurations do not differ by one move")
	}
	if iL >= iR {
		return 0, 0, fmt.Errorf("core: destructive move goes left-to-right (iL=%d, iR=%d)", iL, iR)
	}
	return iL, iR, nil
}

// binOfBall maps a ball index to its bin under the canonical assignment
// that fills sorted bins left to right (bin 0 holds balls 0..ℓ_0−1, etc.).
func binOfBall(v loadvec.Vector, ball int) int {
	for bin, load := range v {
		if ball < load {
			return bin
		}
		ball -= load
	}
	panic("core: ball index out of range")
}

// applyRLSAt applies the RLS rule to one activation: a ball in bin src
// with sampled destination dst moves iff ℓ_src ≥ ℓ_dst + 1. The vector is
// modified in place and re-sorted by the caller.
func applyRLSAt(v loadvec.Vector, src, dst int) {
	if src != dst && v[src] >= v[dst]+1 {
		v[src]--
		v[dst]++
	}
}

// CoupledStep performs one step of the Lemma 2 coupling. l and lp must be
// sorted non-increasingly with CloseTo(l, lp). The coupled randomness is
// (ball, dstRank): the activated ball's index in [0, m) and the sampled
// destination's rank in [0, n). Both output configurations are returned
// sorted non-increasingly.
//
// Ball indexing follows the proof: balls 0..m−2 occupy the common
// configuration (ℓ with one ball removed from the giving bin iR), and
// ball m−1 is the ball on which the processes disagree — it sits in bin
// iR under P(k) and in bin iL under P(k+1).
func CoupledStep(l, lp loadvec.Vector, ball, dstRank int) (loadvec.Vector, loadvec.Vector) {
	n := len(l)
	if n != len(lp) {
		panic("core: CoupledStep with mismatched lengths")
	}
	m := l.Balls()
	if ball < 0 || ball >= m || dstRank < 0 || dstRank >= n {
		panic("core: CoupledStep with out-of-range randomness")
	}
	newL := l.Clone()
	newLP := lp.Clone()
	if l.Equal(lp) {
		// Identity coupling: same source bin, same destination.
		src := binOfBall(l, ball)
		applyRLSAt(newL, src, dstRank)
		applyRLSAt(newLP, src, dstRank)
	} else {
		iL, iR, err := closePositions(l, lp)
		if err != nil {
			panic(err)
		}
		// Common configuration c of the m−1 shared balls.
		c := l.Clone()
		c[iR]--
		var srcP, srcPP int
		if ball == m-1 {
			srcP, srcPP = iR, iL // the differing ball
		} else {
			src := binOfBall(c, ball)
			srcP, srcPP = src, src
		}
		applyRLSAt(newL, srcP, dstRank)
		applyRLSAt(newLP, srcPP, dstRank)
	}
	return newL.SortedDesc(), newLP.SortedDesc()
}

// CoupledRun iterates the coupling for the given number of steps from
// sorted configurations (l, lp), drawing the shared randomness from r.
// It returns the final pair and an error the first time the closeness
// invariant breaks (which Lemma 2 proves never happens).
func CoupledRun(l, lp loadvec.Vector, steps int, r *rng.RNG) (loadvec.Vector, loadvec.Vector, error) {
	l = l.SortedDesc()
	lp = lp.SortedDesc()
	if !CloseTo(l, lp) {
		return l, lp, fmt.Errorf("core: initial configurations not close")
	}
	m := l.Balls()
	n := len(l)
	for s := 0; s < steps; s++ {
		ball := r.Intn(m)
		dstRank := r.Intn(n)
		l, lp = CoupledStep(l, lp, ball, dstRank)
		if !CloseTo(l, lp) {
			return l, lp, fmt.Errorf("core: closeness broken at step %d: %v vs %v", s, l, lp)
		}
		if l.Disc() > lp.Disc()+1e-9 {
			return l, lp, fmt.Errorf("core: disc(ℓ)=%g > disc(ℓ′)=%g at step %d",
				l.Disc(), lp.Disc(), s)
		}
	}
	return l, lp, nil
}

// DestructiveMoveOnSorted applies one destructive move to a sorted
// configuration, moving a ball from the bin at rank srcRank to the bin at
// rank dstRank (srcRank > dstRank), and returns the re-sorted result. It
// returns an error if the move is not destructive or not feasible.
// Experiments use it to construct valid (ℓ, ℓ′) pairs.
func DestructiveMoveOnSorted(l loadvec.Vector, srcRank, dstRank int) (loadvec.Vector, error) {
	if srcRank <= dstRank {
		return nil, fmt.Errorf("core: destructive move must go right to left in sorted order")
	}
	if l[srcRank] == 0 {
		return nil, fmt.Errorf("core: source bin empty")
	}
	if !IsDestructiveMove(l, srcRank, dstRank) {
		return nil, fmt.Errorf("core: move %d→%d is not destructive", srcRank, dstRank)
	}
	w := l.Clone()
	w[srcRank]--
	w[dstRank]++
	return w.SortedDesc(), nil
}

package core

import (
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestStackAll(t *testing.T) {
	v := loadvec.Vector{3, 5, 2, 0}
	stacked, moves := StackAll(v)
	if stacked.Balls() != 10 {
		t.Fatal("ball count changed")
	}
	if stacked[1] != 10 {
		t.Fatalf("mass not in the fullest bin: %v", stacked)
	}
	if moves != 5 {
		t.Fatalf("moves = %d, want 5", moves)
	}
	// Original untouched.
	if !v.Equal(loadvec.Vector{3, 5, 2, 0}) {
		t.Fatal("StackAll modified its input")
	}
}

func TestStackAllAlreadyStacked(t *testing.T) {
	v := loadvec.Vector{0, 7, 0}
	stacked, moves := StackAll(v)
	if moves != 0 || !stacked.Equal(v) {
		t.Fatalf("stacked = %v, moves = %d", stacked, moves)
	}
}

func TestRandomAdversaryOnlyDestructive(t *testing.T) {
	// checkedForce panics on any non-destructive injection; a full run
	// exercising the adversary must complete without panic.
	v := loadvec.OneChoice().Generate(16, 64, rng.New(1))
	e := sim.NewEngine(v, RLS{}, nil, rng.New(2))
	Attach(e, RandomAdversary{Attempts: 3})
	res := e.Run(sim.UntilPerfect(), 500_000)
	if res.ForcedMoves == 0 {
		t.Error("adversary never acted")
	}
	if err := e.Cfg().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseAdversaryFullStall(t *testing.T) {
	// With P=1 every protocol move is undone: the configuration's
	// multiset never changes and perfect balance is never reached from an
	// imperfect start.
	v := loadvec.Vector{8, 0, 0, 0}
	e := sim.NewEngine(v, RLS{}, nil, rng.New(3))
	Attach(e, ReverseAdversary{P: 1})
	res := e.Run(sim.UntilPerfect(), 20_000)
	if res.Stopped {
		t.Fatal("fully reversed process reached balance")
	}
	if !res.Final.EqualAsMultiset(v) {
		t.Fatalf("multiset changed under full reversal: %v", res.Final)
	}
	if res.ForcedMoves != res.Moves {
		t.Fatalf("reversals %d != moves %d", res.ForcedMoves, res.Moves)
	}
}

func TestReverseAdversaryPartialSlowdown(t *testing.T) {
	// Mean balancing time with reversal probability 0.5 should exceed the
	// plain mean (the DML in expectation). Use matched replication counts.
	const n, m, reps = 8, 32, 40
	mean := func(p float64, seed uint64) float64 {
		root := rng.New(seed)
		total := 0.0
		for i := 0; i < reps; i++ {
			r := root.Split()
			v := loadvec.AllInOne().Generate(n, m, nil)
			e := sim.NewEngine(v, RLS{}, nil, r)
			if p > 0 {
				Attach(e, ReverseAdversary{P: p})
			}
			res := e.Run(sim.UntilPerfect(), 5_000_000)
			if !res.Stopped {
				t.Fatal("run did not finish")
			}
			total += res.Time
		}
		return total / reps
	}
	plain := mean(0, 100)
	slowed := mean(0.5, 200)
	if slowed <= plain {
		t.Fatalf("adversary sped the process up: plain %g vs adversarial %g", plain, slowed)
	}
}

func TestConcentratorAdversary(t *testing.T) {
	v := loadvec.OneChoice().Generate(8, 64, rng.New(5))
	e := sim.NewEngine(v, RLS{}, nil, rng.New(6))
	Attach(e, ConcentratorAdversary{Budget: 1})
	// Bounded run: concentrator keeps pushing mass uphill, so we only
	// check that it acts, stays destructive (no panic), and conserves
	// balls.
	res := e.Run(sim.UntilActivations(20_000), 0)
	if res.ForcedMoves == 0 {
		t.Error("concentrator never acted")
	}
	if res.Final.Balls() != 64 {
		t.Fatal("ball count changed")
	}
}

func TestAdversaryNames(t *testing.T) {
	names := map[string]bool{}
	for _, a := range []Adversary{
		RandomAdversary{Attempts: 2}, ReverseAdversary{P: 0.5}, ConcentratorAdversary{Budget: 1},
	} {
		if a.Name() == "" || names[a.Name()] {
			t.Fatalf("bad adversary name %q", a.Name())
		}
		names[a.Name()] = true
	}
}

func TestCheckedForcePanicsOnHelpfulMove(t *testing.T) {
	v := loadvec.Vector{5, 0}
	e := sim.NewEngine(v, RLS{}, nil, rng.New(7))
	defer func() {
		if recover() == nil {
			t.Fatal("helpful move accepted")
		}
	}()
	checkedForce(e, 0, 1) // 5 -> 0 is an RLS move, not destructive
}

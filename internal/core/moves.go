package core

import "repro/internal/loadvec"

// MoveKind classifies a ball movement from a source to a destination bin
// exactly as in §4 and Figure 1 of the paper.
type MoveKind int

const (
	// Illegal marks src == dst or an empty source bin.
	Illegal MoveKind = iota
	// RLSMove is a valid protocol move that is not destructive:
	// ℓ_src ≥ ℓ_dst + 2.
	RLSMove
	// Neutral is both a valid protocol move and a destructive move:
	// ℓ_src = ℓ_dst + 1.
	Neutral
	// Destructive is the reversal of a valid protocol move and not itself
	// valid: ℓ_src ≤ ℓ_dst.
	Destructive
)

// String renders the move kind.
func (k MoveKind) String() string {
	switch k {
	case RLSMove:
		return "rls"
	case Neutral:
		return "neutral"
	case Destructive:
		return "destructive"
	default:
		return "illegal"
	}
}

// Classify returns the kind of the move of one ball from src to dst in
// configuration v.
//
// Per §4: a movement from i to j is a *valid protocol move* iff
// ℓ_i ≥ ℓ_j + 1 and *destructive* iff ℓ_i ≤ ℓ_j + 1; the overlap
// ℓ_i = ℓ_j + 1 is a *neutral* move.
func Classify(v loadvec.Vector, src, dst int) MoveKind {
	if src == dst || src < 0 || dst < 0 || src >= len(v) || dst >= len(v) || v[src] == 0 {
		return Illegal
	}
	switch diff := v[src] - v[dst]; {
	case diff >= 2:
		return RLSMove
	case diff == 1:
		return Neutral
	default:
		return Destructive
	}
}

// IsProtocolMove reports whether moving a ball src→dst is permitted by RLS
// (ℓ_src ≥ ℓ_dst + 1).
func IsProtocolMove(v loadvec.Vector, src, dst int) bool {
	k := Classify(v, src, dst)
	return k == RLSMove || k == Neutral
}

// IsDestructiveMove reports whether moving a ball src→dst is destructive
// (ℓ_src ≤ ℓ_dst + 1), i.e. the reversal of a valid protocol move.
func IsDestructiveMove(v loadvec.Vector, src, dst int) bool {
	k := Classify(v, src, dst)
	return k == Destructive || k == Neutral
}

package core

import "math"

// This file provides the paper's closed-form quantities as executable
// predictors. Experiments compare measured balancing times against these,
// and the statistical tests check the samplers against the concentration
// bounds of Lemmas 3–5.

// Harmonic returns the k-th harmonic number H_k = Σ_{i=1..k} 1/i
// (H_0 = 0). For large k it switches to the asymptotic expansion
// ln k + γ + 1/(2k) − 1/(12k²), accurate to well below 1e-12 there.
func Harmonic(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k <= 256 {
		h := 0.0
		for i := 1; i <= k; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const gamma = 0.57721566490153286060651209008240243
	kf := float64(k)
	return math.Log(kf) + gamma + 1/(2*kf) - 1/(12*kf*kf)
}

// Theorem1Expectation returns ln(n) + n²/m, the quantity that Theorem 1
// proves is Θ(E[T]) — the expected time to perfect balance from any
// initial configuration.
func Theorem1Expectation(n, m int) float64 {
	return math.Log(float64(n)) + float64(n)*float64(n)/float64(m)
}

// Theorem1WHP returns ln(n) + ln(n)·n²/m, the quantity that Theorem 1
// proves bounds T with high probability.
func Theorem1WHP(n, m int) float64 {
	ln := math.Log(float64(n))
	return ln + ln*float64(n)*float64(n)/float64(m)
}

// LowerBoundAllInOne returns the §4 lower bound for the all-balls-in-one-
// bin start: at least m − ∅ balls must activate, which takes expected
// time Σ_{k=∅+1..m} 1/k = H_m − H_⌊∅⌋ = Ω(ln n).
func LowerBoundAllInOne(n, m int) float64 {
	avg := m / n
	return Harmonic(m) - Harmonic(avg)
}

// LowerBoundDeltaPair returns the §4 lower bound for the configuration
// with one bin at ∅+1 and one at ∅−1: perfect balance requires one of
// the ∅+1 balls in the overloaded bin to activate and sample the
// underloaded bin, an Exp((∅+1)/n) event with mean n/(∅+1) = Ω(n²/m).
func LowerBoundDeltaPair(n, m int) float64 {
	avg := float64(m) / float64(n)
	return float64(n) / (avg + 1)
}

// Lemma8Bound returns the Lemma 8 upper bound on E[T] for m ≤ n:
// Σ_{r=2..m} n/(r(r−1)) < 2n, the expected time for each ball to find its
// own empty bin when all balls start together.
func Lemma8Bound(n, m int) float64 {
	sum := 0.0
	for r := 2; r <= m; r++ {
		sum += float64(n) / (float64(r) * float64(r-1))
	}
	return sum
}

// Lemma17Bound returns Σ_{A=1..n} n/(∅·A²) ≤ (π²/6)·n/∅, the Lemma 17
// bound on the expected time of Phase 3 summed over the decreasing number
// A of imbalanced bin pairs.
func Lemma17Bound(n, m int) float64 {
	avg := float64(m) / float64(n)
	sum := 0.0
	for a := 1; a <= n; a++ {
		sum += float64(n) / (avg * float64(a) * float64(a))
	}
	return sum
}

// ChernoffSmallDeviation returns the Lemma 3 (Inequality (1)) bound
// 2·exp(−ε²·np/3) on P(|Bin(n,p) − np| > ε·np), valid for ε ∈ [0, 3/2].
func ChernoffSmallDeviation(np, eps float64) float64 {
	return 2 * math.Exp(-eps*eps*np/3)
}

// ChernoffLargeTail returns the Lemma 3 (Inequality (2)) bound 2^(−R) on
// P(Bin(n,p) ≥ R), valid for R ≥ 6np.
func ChernoffLargeTail(R float64) float64 {
	return math.Pow(2, -R)
}

// Lemma4Tail returns exp(λ²·Var/4 − λδ/2), the Lemma 4 bound on
// P(X ≥ E[X] + δ) for X a sum of independent exponentials with all rates
// ≥ λ and Var[X] the variance of the sum.
func Lemma4Tail(lambda, variance, delta float64) float64 {
	return math.Exp(lambda*lambda*variance/4 - lambda*delta/2)
}

// Lemma5Tail returns exp(V/(4M²) + (S + SL − tL)/(2M)), the Lemma 5 bound
// on P(Σ c_i·Y_i ≥ t) for independent Geometric(p) variables Y_i with
// coefficient bounds M = max c_i, S ≥ Σ c_i, V ≥ Σ c_i², and
// L = −ln(1−p).
func Lemma5Tail(p float64, M, S, V, t float64) float64 {
	L := -math.Log1p(-p)
	return math.Exp(V/(4*M*M) + (S+S*L-t*L)/(2*M))
}

// Lemma13Shrink returns 2·sqrt(x·ln n), the one-epoch discrepancy target
// of Lemma 13 (valid for x ≥ 4 ln n), and Lemma13EpochLength returns the
// epoch duration ln((∅+x)/(∅−x)) used there.
func Lemma13Shrink(x float64, n int) float64 {
	return 2 * math.Sqrt(x*math.Log(float64(n)))
}

// Lemma13EpochLength returns ln(∅+x) − ln(∅−x), the length of the
// Lemma 13 epoch that shrinks discrepancy from x to 2·sqrt(x ln n).
func Lemma13EpochLength(avg, x float64) float64 {
	return math.Log(avg+x) - math.Log(avg-x)
}

// Lemma12Iterations returns r = log2 log2 ∅, the number of Lemma 13
// epochs Lemma 12 chains to reach an 8·ln(n)-balanced configuration from
// a ∅/2-balanced one.
func Lemma12Iterations(avg float64) int {
	if avg < 4 {
		return 1
	}
	return int(math.Ceil(math.Log2(math.Log2(avg))))
}

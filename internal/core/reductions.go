package core

import (
	"math"

	"repro/internal/rng"
)

// This file implements the *reduced processes* that the paper's proofs
// construct via Lemma 2: simplified dynamics in which inconvenient moves
// are ignored (reversible by destructive moves) and only one kind of
// progress event is awaited. Each reduction's hitting time has an exact
// distributional characterization which the tests check against both the
// paper's formulas and the full protocol's measured behaviour.

// Lemma8Reduction simulates the reduced process from the proof of
// Lemma 8 (m ≤ n): all balls start in one bin, and we wait for each ball
// to move to its own empty bin, ignoring every other move. With r balls
// left in the stack there are ≥ r−1 empty bins among the other n−1 bins,
// and the paper waits for one of the r balls to activate and hit one of
// exactly r−1 designated empty bins: an Exp(r(r−1)/n) wait. The total is
// Σ_{r=2..m} Exp(r(r−1)/n), with mean Σ n/(r(r−1)) = n(1−1/m) < 2n.
//
// It returns the sampled total time.
func Lemma8Reduction(n, m int, r *rng.RNG) float64 {
	if m > n {
		panic("core: Lemma8Reduction requires m <= n")
	}
	total := 0.0
	for balls := m; balls >= 2; balls-- {
		rate := float64(balls) * float64(balls-1) / float64(n)
		total += r.Exp(rate)
	}
	return total
}

// Lemma9Reduction simulates the initial phase from the proof of Lemma 9
// (m = kn + r balls, all stacked in bin 1): wait for r balls to move to
// r distinct empty bins, ignoring any other move. The i-th such move
// waits Exp((kn+r−i+1)(n−i)/n): the stack still holds kn+r−i+1 balls,
// and n−i of the other bins remain designated-empty. The paper computes
// E[T′] < Σ 1/(n−i) = O(ln n) and Var[T′] = O(1) (equations (6)–(7)).
//
// It returns the sampled phase time.
func Lemma9Reduction(n, k, rem int, r *rng.RNG) float64 {
	if rem < 0 || rem >= n {
		panic("core: Lemma9Reduction remainder out of range")
	}
	total := 0.0
	for i := 1; i <= rem; i++ {
		balls := k*n + rem - i + 1
		rate := float64(balls) * float64(n-i) / float64(n)
		total += r.Exp(rate)
	}
	return total
}

// Lemma9ReductionMeanVar returns the exact mean and an upper bound on
// the variance of the Lemma 9 initial phase (equations (6) and (7)):
// E[T′] = Σ_{i=1..r} n/((kn+r−i+1)(n−i)) and
// Var[T′] = Σ (n/((kn+r−i+1)(n−i)))².
func Lemma9ReductionMeanVar(n, k, rem int) (mean, variance float64) {
	for i := 1; i <= rem; i++ {
		rate := float64(k*n+rem-i+1) * float64(n-i) / float64(n)
		mean += 1 / rate
		variance += 1 / (rate * rate)
	}
	return
}

// Lemma10Reduction simulates the emptying process from the proofs of
// Lemmas 10/11: all m balls stacked in bin 1; T′ is the time until m−∅
// balls have left for the other n−1 bins, where the i-th departure (at
// stack height i) waits Exp(i(n−1)/n). The paper computes
// E[T′] ≤ 2 ln n and Var[T′] = O(1/∅) (equations (8)–(9)).
//
// It returns the sampled T′.
func Lemma10Reduction(n, m int, r *rng.RNG) float64 {
	avg := m / n
	total := 0.0
	for i := m; i > avg; i-- {
		rate := float64(i) * float64(n-1) / float64(n)
		total += r.Exp(rate)
	}
	return total
}

// Lemma10ReductionMeanVar returns the exact mean and variance of the
// Lemma 10 emptying time: Σ_{i=∅+1..m} (n/(i(n−1)))^{1,2}.
func Lemma10ReductionMeanVar(n, m int) (mean, variance float64) {
	avg := m / n
	for i := avg + 1; i <= m; i++ {
		x := float64(n) / (float64(i) * float64(n-1))
		mean += x
		variance += x * x
	}
	return
}

// Lemma15Reduction simulates the overloaded-ball decay process from the
// proof of Lemma 15: with A overloaded balls and discrepancy ≤ c·ln n,
// there are h ≥ Ω(A/ln n) overloaded bins holding ≥ h·∅ balls, and a
// fix event (overloaded ball sampling an underloaded bin) arrives at
// rate ≥ h·∅·k/n with k ≥ Ω(A/ln n). The reduction waits for fixes at
// the proof's pessimistic rate ∅·A²/((c·ln n)²·n) until A ≤ n, so its
// duration realizes the O((ln n)²/∅) bound.
//
// It returns the sampled time to bring A overloaded balls down to n.
func Lemma15Reduction(n, m, startA int, c float64, r *rng.RNG) float64 {
	if c <= 0 {
		panic("core: Lemma15Reduction needs a positive log-constant")
	}
	avg := float64(m) / float64(n)
	logn := c * math.Log(float64(n))
	total := 0.0
	for a := startA; a > n; a-- {
		rate := avg * float64(a) * float64(a) / (logn * logn * float64(n))
		total += r.Exp(rate)
	}
	return total
}

// Lemma15ReductionMean returns the expectation of Lemma15Reduction:
// Σ_{a=n+1..A} (c·ln n)²·n/(∅·a²) ≤ (c·ln n)²/∅ · n·Σ_{a>n} a^{-2}
// = O((ln n)²/∅), the Lemma 15 bound.
func Lemma15ReductionMean(n, m, startA int, c float64) float64 {
	avg := float64(m) / float64(n)
	logn := c * math.Log(float64(n))
	mean := 0.0
	for a := startA; a > n; a-- {
		mean += logn * logn * float64(n) / (avg * float64(a) * float64(a))
	}
	return mean
}

// Lemma17Reduction simulates the Phase 3 reduced process: A imbalanced
// (+1/−1) pairs; with a pairs remaining there are > ∅·a balls that fix a
// hole with probability a/n upon activation, so the next fix waits at
// most Exp(∅a²/n) (the paper's bound; the reduction uses exactly that
// rate). Total: Σ_{a=1..A} Exp(∅a²/n), mean Σ n/(∅a²) ≤ (π²/6)n/∅.
func Lemma17Reduction(n, m, pairs int, r *rng.RNG) float64 {
	avg := float64(m) / float64(n)
	total := 0.0
	for a := pairs; a >= 1; a-- {
		rate := avg * float64(a) * float64(a) / float64(n)
		total += r.Exp(rate)
	}
	return total
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

func TestCloseToEqual(t *testing.T) {
	l := loadvec.Vector{3, 2, 1}
	if !CloseTo(l, l) {
		t.Fatal("configuration not close to itself")
	}
	// Equal as multisets (permuted) is also close.
	if !CloseTo(l, loadvec.Vector{1, 3, 2}) {
		t.Fatal("permutation not close")
	}
}

func TestCloseToSingleDestructiveMove(t *testing.T) {
	cases := []struct {
		l, lp loadvec.Vector
		want  bool
	}{
		// v = w: move between equal bins.
		{loadvec.Vector{3, 3, 2}, loadvec.Vector{4, 2, 2}, true},
		// v < w: uphill move 2 -> 3.
		{loadvec.Vector{3, 2, 2}, loadvec.Vector{4, 2, 1}, true},
		// Neutral move: multiset unchanged -> close via equality.
		{loadvec.Vector{3, 2}, loadvec.Vector{2, 3}, true},
		// An RLS (helpful) move is NOT close: 4 -> 1 in {4,1}: gives {3,2}.
		{loadvec.Vector{4, 1, 1}, loadvec.Vector{3, 2, 1}, false},
		// Two destructive moves apart: {3,3,3} -> {5,2,2}.
		{loadvec.Vector{3, 3, 3}, loadvec.Vector{5, 2, 2}, false},
		// Different ball counts.
		{loadvec.Vector{2, 2}, loadvec.Vector{2, 3}, false},
		// Different bin counts.
		{loadvec.Vector{2, 2}, loadvec.Vector{2, 2, 0}, false},
	}
	for _, c := range cases {
		if got := CloseTo(c.l, c.lp); got != c.want {
			t.Errorf("CloseTo(%v, %v) = %v, want %v", c.l, c.lp, got, c.want)
		}
	}
}

// Any configuration plus one random destructive move must be close, and
// observation (ii) of the proof must hold: disc(ℓ) ≤ disc(ℓ′).
func TestCloseToRandomDestructiveMoves(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		l := make(loadvec.Vector, n)
		for i := range l {
			l[i] = r.Intn(6)
		}
		src := r.Intn(n)
		dst := r.Intn(n)
		if src == dst || l[src] == 0 || !IsDestructiveMove(l, src, dst) {
			return true
		}
		lp := l.Clone()
		lp[src]--
		lp[dst]++
		if !CloseTo(l, lp) {
			t.Logf("not close: %v -> %v (move %d→%d)", l, lp, src, dst)
			return false
		}
		if l.Disc() > lp.Disc()+1e-9 {
			t.Logf("disc increased the wrong way: %v=%g vs %v=%g", l, l.Disc(), lp, lp.Disc())
			return false
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClosePositions(t *testing.T) {
	l := loadvec.Vector{5, 4, 3, 2}
	lp, err := DestructiveMoveOnSorted(l, 3, 1) // 2 -> 4: gives {5,5,3,1}
	if err != nil {
		t.Fatal(err)
	}
	if !lp.Equal(loadvec.Vector{5, 5, 3, 1}) {
		t.Fatalf("lp = %v", lp)
	}
	iL, iR, err := closePositions(l, lp)
	if err != nil {
		t.Fatal(err)
	}
	if iL != 1 || iR != 3 {
		t.Fatalf("positions = (%d, %d), want (1, 3)", iL, iR)
	}
}

func TestClosePositionsErrors(t *testing.T) {
	l := loadvec.Vector{3, 2, 1}
	if _, _, err := closePositions(l, l); err == nil {
		t.Error("equal configurations accepted")
	}
	if _, _, err := closePositions(l, loadvec.Vector{5, 2, 1}); err == nil {
		t.Error("+2 difference accepted")
	}
}

func TestDestructiveMoveOnSortedErrors(t *testing.T) {
	l := loadvec.Vector{5, 1, 0}
	if _, err := DestructiveMoveOnSorted(l, 0, 1); err == nil {
		t.Error("left-to-right move accepted")
	}
	if _, err := DestructiveMoveOnSorted(l, 2, 0); err == nil {
		t.Error("move from empty bin accepted")
	}
	if _, err := DestructiveMoveOnSorted(l, 1, 0); err != nil {
		t.Errorf("valid destructive move rejected: %v", err)
	}
	// In sorted order every right-to-left move between non-empty source
	// and any destination satisfies ℓ_src ≤ ℓ_dst + 1, i.e. is
	// destructive — the proof's "from Right (iR) to Left (iL)" remark.
	l2 := loadvec.Vector{5, 5, 1}
	for src := 1; src < len(l2); src++ {
		for dst := 0; dst < src; dst++ {
			if !IsDestructiveMove(l2, src, dst) {
				t.Errorf("sorted right-to-left move %d→%d not destructive", src, dst)
			}
		}
	}
}

func TestBinOfBall(t *testing.T) {
	v := loadvec.Vector{3, 0, 2}
	wants := []int{0, 0, 0, 2, 2}
	for ball, want := range wants {
		if got := binOfBall(v, ball); got != want {
			t.Errorf("binOfBall(%d) = %d, want %d", ball, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range ball accepted")
		}
	}()
	binOfBall(v, 5)
}

// Exhaustive check of the Lemma 2 inductive step on small configurations:
// for every sorted configuration of ≤ 9 balls in 4 bins, every destructive
// move creating ℓ′, and every coupled random choice (ball, dstRank), the
// step preserves closeness. This enumerates every case of the proof's
// analysis (cases 1-5 and their subcases).
func TestCoupledStepExhaustiveSmall(t *testing.T) {
	const n = 4
	var configs []loadvec.Vector
	var gen func(prefix loadvec.Vector, remaining, maxNext int)
	gen = func(prefix loadvec.Vector, remaining, maxNext int) {
		if len(prefix) == n {
			if remaining == 0 && prefix.Balls() > 0 {
				configs = append(configs, prefix.Clone())
			}
			return
		}
		for v := min(remaining, maxNext); v >= 0; v-- {
			gen(append(prefix, v), remaining-v, v)
		}
	}
	for m := 1; m <= 9; m++ {
		gen(loadvec.Vector{}, m, m)
	}
	if len(configs) < 50 {
		t.Fatalf("only %d configurations generated", len(configs))
	}
	checked := 0
	for _, l := range configs {
		m := l.Balls()
		for srcRank := 1; srcRank < n; srcRank++ {
			for dstRank := 0; dstRank < srcRank; dstRank++ {
				lp, err := DestructiveMoveOnSorted(l, srcRank, dstRank)
				if err != nil {
					continue
				}
				for ball := 0; ball < m; ball++ {
					for dr := 0; dr < n; dr++ {
						nl, nlp := CoupledStep(l, lp, ball, dr)
						if !CloseTo(nl, nlp) {
							t.Fatalf("closeness broken: l=%v lp=%v ball=%d dst=%d -> %v vs %v",
								l, lp, ball, dr, nl, nlp)
						}
						if nl.Disc() > nlp.Disc()+1e-9 {
							t.Fatalf("majorization broken: l=%v lp=%v ball=%d dst=%d -> disc %g > %g",
								l, lp, ball, dr, nl.Disc(), nlp.Disc())
						}
						checked++
					}
				}
			}
		}
	}
	if checked < 5000 {
		t.Fatalf("only %d coupled steps checked", checked)
	}
	t.Logf("verified %d coupled steps across %d configurations", checked, len(configs))
}

// Randomized multi-step coupling runs: closeness and the per-step
// discrepancy comparison hold along entire trajectories.
func TestCoupledRunProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		l := make(loadvec.Vector, n)
		for i := range l {
			l[i] = r.Intn(8)
		}
		if l.Balls() == 0 {
			l[0] = 3
		}
		l = l.SortedDesc()
		// Build lp with one random destructive move (retry a few times).
		var lp loadvec.Vector
		for tries := 0; tries < 20; tries++ {
			srcRank := 1 + r.Intn(n-1)
			dstRank := r.Intn(srcRank)
			if cand, err := DestructiveMoveOnSorted(l, srcRank, dstRank); err == nil {
				lp = cand
				break
			}
		}
		if lp == nil {
			return true // no destructive move available (e.g. all mass in bin 0)
		}
		_, _, err := CoupledRun(l, lp, 300, r)
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// The identity coupling: starting from equal configurations, both
// processes stay equal forever.
func TestCoupledRunIdentity(t *testing.T) {
	r := rng.New(5)
	l := loadvec.Vector{6, 3, 2, 1}.SortedDesc()
	a, b, err := CoupledRun(l, l.Clone(), 500, r)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("identity coupling diverged: %v vs %v", a, b)
	}
}

func TestCoupledRunRejectsNonClose(t *testing.T) {
	l := loadvec.Vector{5, 1}
	lp := loadvec.Vector{3, 3} // an RLS move away, not destructive
	if _, _, err := CoupledRun(l, lp, 10, rng.New(1)); err == nil {
		t.Fatal("non-close pair accepted")
	}
}

func TestCoupledStepPanics(t *testing.T) {
	l := loadvec.Vector{2, 1}
	for _, tc := range []struct {
		name       string
		lp         loadvec.Vector
		ball, rank int
	}{
		{"bad ball", l, 5, 0},
		{"bad rank", l, 0, 7},
		{"length mismatch", loadvec.Vector{2, 1, 0}, 0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			CoupledStep(l, tc.lp, tc.ball, tc.rank)
		}()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package core

import (
	"math"

	"repro/internal/sim"
)

// PhaseTimes records when a run first crosses each boundary of the
// paper's three-phase analysis (§6). Negative values mean the boundary
// was never reached.
type PhaseTimes struct {
	// LogBalanced is the first time disc ≤ 96·ln n — the Phase 1 target
	// (Lemmas 10 and 12 both land at O(ln n)-balancedness; 96 ln n is the
	// explicit constant of Lemma 10).
	LogBalanced float64
	// HalfAvgBalanced is the first time disc ≤ ∅/2 (Lemma 11's target,
	// only meaningful for large ∅).
	HalfAvgBalanced float64
	// OverloadedAtMostN is the first time the number of overloaded balls
	// drops to ≤ n (Lemma 15's subphase boundary).
	OverloadedAtMostN float64
	// OneBalanced is the first time disc ≤ 1 (Phase 2 target, Lemma 14).
	OneBalanced float64
	// Perfect is the first time disc < 1 (Phase 3 target, Theorem 1's T).
	Perfect float64
}

// LogBalancedTarget returns the Phase 1 discrepancy target 96·ln n (the
// explicit constant of Lemma 10). Both the direct-engine PhaseTracker and
// the sharded engine's phase observer read the threshold from here.
func LogBalancedTarget(n int) float64 { return 96 * math.Log(float64(n)) }

// PhaseTracker watches an engine run and fills in PhaseTimes. It also
// verifies, move by move, the §3 monotonicity observations (discrepancy
// never increases, the minimum load never decreases, the maximum never
// increases) and Lemma 16's claim that the potential 3A − k − h never
// increases; any violation is counted.
type PhaseTracker struct {
	Times PhaseTimes

	logTarget float64 // 96 ln n
	halfAvg   float64 // ∅/2
	n         int

	prevDisc      float64
	prevMin       int
	prevMax       int
	prevPotential float64

	// Violation counters (expected to stay zero under plain RLS).
	DiscIncreases      int
	MinDecreases       int
	MaxIncreases       int
	PotentialIncreases int
}

// NewPhaseTracker builds a tracker for an engine about to run and attaches
// itself to the engine's PostMove hook (chaining any existing hook).
func NewPhaseTracker(e *sim.Engine) *PhaseTracker {
	n := e.Cfg().N()
	t := &PhaseTracker{
		Times: PhaseTimes{
			LogBalanced:       -1,
			HalfAvgBalanced:   -1,
			OverloadedAtMostN: -1,
			OneBalanced:       -1,
			Perfect:           -1,
		},
		logTarget:     LogBalancedTarget(n),
		halfAvg:       e.Cfg().Avg() / 2,
		n:             n,
		prevDisc:      e.Cfg().Disc(),
		prevMin:       e.Cfg().Min(),
		prevMax:       e.Cfg().Max(),
		prevPotential: e.Cfg().Potential(),
	}
	t.observe(e) // the initial configuration may already satisfy targets
	prev := e.PostMove
	e.PostMove = func(e *sim.Engine, src, dst int) {
		if prev != nil {
			prev(e, src, dst)
		}
		t.observe(e)
	}
	return t
}

// observe updates crossing times and monotonicity counters from the
// current engine state. Discrepancy only changes on moves, so observing
// from the PostMove hook captures crossing times exactly.
func (t *PhaseTracker) observe(e *sim.Engine) {
	cfg := e.Cfg()
	now := e.Time()
	disc := cfg.Disc()
	if t.Times.LogBalanced < 0 && disc <= t.logTarget {
		t.Times.LogBalanced = now
	}
	if t.Times.HalfAvgBalanced < 0 && disc <= t.halfAvg {
		t.Times.HalfAvgBalanced = now
	}
	if t.Times.OverloadedAtMostN < 0 && cfg.OverloadedBalls() <= float64(t.n) {
		t.Times.OverloadedAtMostN = now
	}
	if t.Times.OneBalanced < 0 && disc <= 1 {
		t.Times.OneBalanced = now
	}
	if t.Times.Perfect < 0 && cfg.IsPerfect() {
		t.Times.Perfect = now
	}

	if disc > t.prevDisc+1e-9 {
		t.DiscIncreases++
	}
	if cfg.Min() < t.prevMin {
		t.MinDecreases++
	}
	if cfg.Max() > t.prevMax {
		t.MaxIncreases++
	}
	if cfg.Potential() > t.prevPotential+1e-9 {
		t.PotentialIncreases++
	}
	t.prevDisc = disc
	t.prevMin = cfg.Min()
	t.prevMax = cfg.Max()
	t.prevPotential = cfg.Potential()
}

// MonotoneViolations returns the total count of §3-monotonicity
// violations observed (0 under plain RLS; adversarial runs may violate
// them freely).
func (t *PhaseTracker) MonotoneViolations() int {
	return t.DiscIncreases + t.MinDecreases + t.MaxIncreases
}

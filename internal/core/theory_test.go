package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestHarmonic(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3}, {4, 1.5 + 1.0/3 + 0.25},
	}
	for _, c := range cases {
		if got := Harmonic(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("H_%d = %g, want %g", c.k, got, c.want)
		}
	}
	if Harmonic(-3) != 0 {
		t.Error("negative k should give 0")
	}
}

func TestHarmonicAsymptoticConsistency(t *testing.T) {
	// The exact sum at k=256 and the expansion at k=257 must be within
	// 1e-10 of each other's extrapolation.
	exact := 0.0
	for i := 1; i <= 257; i++ {
		exact += 1 / float64(i)
	}
	if got := Harmonic(257); math.Abs(got-exact) > 1e-10 {
		t.Fatalf("Harmonic(257) = %.15g, exact %.15g", got, exact)
	}
	// Growth ~ ln k.
	if math.Abs(Harmonic(100000)-math.Log(100000)-0.5772156649) > 1e-4 {
		t.Error("asymptotics off")
	}
}

func TestTheorem1Formulas(t *testing.T) {
	// m >> n²: the ln n term dominates.
	if v := Theorem1Expectation(100, 1000000); math.Abs(v-math.Log(100)-0.01) > 1e-12 {
		t.Errorf("Theorem1Expectation = %g", v)
	}
	// m = n: the n²/m = n term dominates.
	if v := Theorem1Expectation(100, 100); v < 100 {
		t.Errorf("Theorem1Expectation(100,100) = %g, want >= 100", v)
	}
	// WHP bound is always >= expectation bound (ln n ≥ 1 for n ≥ 3).
	for _, nm := range [][2]int{{8, 8}, {64, 4096}, {1024, 1024}} {
		if Theorem1WHP(nm[0], nm[1]) < Theorem1Expectation(nm[0], nm[1])-1e-9 {
			t.Errorf("WHP bound below expectation bound at %v", nm)
		}
	}
}

func TestLowerBoundAllInOne(t *testing.T) {
	// H_m − H_∅ with m = n: H_n − H_1 ≈ ln n − (1 − γ).
	got := LowerBoundAllInOne(1000, 1000)
	want := Harmonic(1000) - 1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g, want %g", got, want)
	}
	// Ω(ln n) for m = n·ln n as well.
	n := 1024
	m := n * 7
	if LowerBoundAllInOne(n, m) < 0.5*math.Log(float64(n))-3 {
		t.Error("lower bound should be Ω(ln n)")
	}
}

func TestLowerBoundDeltaPair(t *testing.T) {
	// n/(∅+1): exact for the ±1 configuration.
	if got := LowerBoundDeltaPair(100, 900); math.Abs(got-10) > 1e-12 {
		t.Fatalf("got %g, want 10", got)
	}
}

func TestLemma8Bound(t *testing.T) {
	// Σ_{r=2..m} n/(r(r−1)) = n·(1 − 1/m) by telescoping.
	n, m := 50, 10
	want := float64(n) * (1 - 1.0/float64(m))
	if got := Lemma8Bound(n, m); math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
	// Always < 2n as the paper states (indeed < n).
	if Lemma8Bound(100, 100) >= 200 {
		t.Error("bound exceeds 2n")
	}
}

func TestChernoffBoundsHoldEmpirically(t *testing.T) {
	// Sample Bin(n, p) and verify the Lemma 3 tail bounds hold (they are
	// upper bounds, so empirical frequencies must not exceed them beyond
	// noise).
	r := rng.New(42)
	const draws = 100000
	nTrials, p := int64(2000), 0.05 // np = 100
	np := float64(nTrials) * p
	eps := 0.5
	exceed := 0
	big := 0
	R := 6 * np
	for i := 0; i < draws; i++ {
		v := float64(r.Binomial(nTrials, p))
		if math.Abs(v-np) > eps*np {
			exceed++
		}
		if v >= R {
			big++
		}
	}
	empirical := float64(exceed) / draws
	bound := ChernoffSmallDeviation(np, eps)
	if empirical > bound+0.01 {
		t.Errorf("deviation frequency %g exceeds Chernoff bound %g", empirical, bound)
	}
	if big != 0 { // P(Bin ≥ 6np) ≤ 2^{-600}: should never happen
		t.Errorf("saw %d draws above 6np", big)
	}
}

func TestLemma4TailHoldsEmpirically(t *testing.T) {
	// X = sum of k exponentials with rate λ; check P(X ≥ E[X]+δ) against
	// the Lemma 4 bound.
	r := rng.New(43)
	const k = 20
	lambda := 2.0
	meanX := float64(k) / lambda
	varX := float64(k) / (lambda * lambda)
	delta := 8.0
	const draws = 200000
	count := 0
	for i := 0; i < draws; i++ {
		x := 0.0
		for j := 0; j < k; j++ {
			x += r.Exp(lambda)
		}
		if x >= meanX+delta {
			count++
		}
	}
	empirical := float64(count) / draws
	bound := Lemma4Tail(lambda, varX, delta)
	if empirical > bound {
		t.Errorf("empirical tail %g exceeds Lemma 4 bound %g", empirical, bound)
	}
	if bound > 1 {
		t.Logf("note: bound %g is vacuous for these parameters", bound)
	}
}

func TestLemma5TailHoldsEmpirically(t *testing.T) {
	// Σ c_i Y_i with Y_i ~ Geometric(p), c_i = 1: compare the tail at
	// t = 3·E against the Lemma 5 bound.
	r := rng.New(44)
	const k = 10
	p := 0.5
	M, S, V := 1.0, float64(k), float64(k)
	tval := 3 * float64(k) / p
	const draws = 200000
	count := 0
	for i := 0; i < draws; i++ {
		sum := 0.0
		for j := 0; j < k; j++ {
			sum += float64(r.Geometric(p))
		}
		if sum >= tval {
			count++
		}
	}
	empirical := float64(count) / draws
	bound := Lemma5Tail(p, M, S, V, tval)
	if empirical > bound {
		t.Errorf("empirical tail %g exceeds Lemma 5 bound %g", empirical, bound)
	}
}

func TestLemma13Helpers(t *testing.T) {
	n := 1024
	x := 100.0
	shrunk := Lemma13Shrink(x, n)
	want := 2 * math.Sqrt(x*math.Log(float64(n)))
	if math.Abs(shrunk-want) > 1e-12 {
		t.Fatalf("shrink = %g, want %g", shrunk, want)
	}
	// Epoch length ln((∅+x)/(∅−x)) ≤ 4x/∅ for x ≤ ∅/2 (used in the
	// Lemma 12 proof).
	avg := 250.0
	el := Lemma13EpochLength(avg, x)
	if el <= 0 || el > 4*x/avg+1e-9 {
		t.Fatalf("epoch length %g outside (0, 4x/∅]", el)
	}
}

func TestLemma12Iterations(t *testing.T) {
	if Lemma12Iterations(2) != 1 {
		t.Error("tiny average should give 1 iteration")
	}
	// log2 log2 65536 = log2 16 = 4.
	if got := Lemma12Iterations(65536); got != 4 {
		t.Errorf("iterations(65536) = %d, want 4", got)
	}
	// Monotone growth, doubly logarithmic: even for 2^64 only 6.
	if got := Lemma12Iterations(math.Pow(2, 64)); got != 6 {
		t.Errorf("iterations(2^64) = %d, want 6", got)
	}
}

func TestChernoffLargeTail(t *testing.T) {
	if got := ChernoffLargeTail(10); math.Abs(got-1.0/1024) > 1e-15 {
		t.Fatalf("2^-10 = %g", got)
	}
}

package loadvec

import (
	"testing"

	"repro/internal/rng"
)

func TestPartitionRangesTile(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for p := 1; p <= n; p++ {
			prev := 0
			for i := 0; i < p; i++ {
				lo, hi := PartitionRange(n, p, i)
				if lo != prev {
					t.Fatalf("n=%d p=%d part %d starts at %d, want %d", n, p, i, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d p=%d part %d is empty [%d,%d)", n, p, i, lo, hi)
				}
				for b := lo; b < hi; b++ {
					if got := PartitionOwner(n, p, b); got != i {
						t.Fatalf("n=%d p=%d owner(%d) = %d, want %d", n, p, b, got, i)
					}
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d p=%d ranges end at %d", n, p, prev)
			}
		}
	}
}

func TestPartitionCopiesAndConserves(t *testing.T) {
	r := rng.New(5)
	v := OneChoice().Generate(13, 200, r)
	parts := Partition(v, 4)
	total := 0
	bins := 0
	for _, part := range parts {
		bins += len(part)
		total += part.Balls()
	}
	if bins != 13 || total != 200 {
		t.Fatalf("partition covers %d bins / %d balls", bins, total)
	}
	parts[0][0]++ // copies: mutating a part must not touch the source
	if v.Balls() != 200 {
		t.Fatal("Partition aliases the source vector")
	}
}

func TestFoldStatsMatchesGlobalConfig(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		m := r.Intn(200)
		v := make(Vector, n)
		for i := 0; i < m; i++ {
			v[r.Intn(n)]++
		}
		p := 1 + r.Intn(n)
		parts := Partition(v, p)
		cfgs := make([]*Config, p)
		for i, part := range parts {
			cfgs[i] = NewConfig(part)
		}
		f := FoldStats(cfgs...)
		g := NewConfig(v)
		if f.N != g.N() || f.M != g.M() || f.Min != g.Min() || f.Max != g.Max() {
			t.Fatalf("fold (%+v) != global Config %v", f, g)
		}
		if f.Disc() != g.Disc() || f.IsPerfect() != g.IsPerfect() {
			t.Fatalf("fold disc/perfect (%g,%v) != global (%g,%v)",
				f.Disc(), f.IsPerfect(), g.Disc(), g.IsPerfect())
		}
		if f.IsBalanced(2) != g.IsBalanced(2) {
			t.Fatal("fold balancedness disagrees")
		}
	}
}

func TestFoldStatsEmptySystem(t *testing.T) {
	f := FoldStats(NewConfig(make(Vector, 4)))
	if f.Disc() != 0 || !f.IsPerfect() || f.Avg() != 0 {
		t.Fatalf("empty fold: %+v", f)
	}
}

// TestFoldStatsMoveWeight pins the W fold: level-indexed shards
// contribute their local move weight plus any installed external weight;
// unindexed shards contribute nothing.
func TestFoldStatsMoveWeight(t *testing.T) {
	a := NewConfig(Vector{3, 0, 1})
	a.EnableLevelIndex()
	b := NewConfig(Vector{2, 2})
	b.EnableLevelIndex()
	plain := NewConfig(Vector{5, 5})

	want := a.MoveWeight() + b.MoveWeight()
	if want == 0 {
		t.Fatal("degenerate fixture: zero local weight")
	}
	if got := FoldStats(a, b, plain).W; got != want {
		t.Fatalf("folded W = %d, want %d", got, want)
	}

	b.SetExternalPrefix(func(w int) int64 { return int64(w + 1) })
	want = a.MoveWeight() + b.MoveWeight() + b.ExternalMoveWeight()
	if b.ExternalMoveWeight() == 0 {
		t.Fatal("degenerate fixture: zero external weight")
	}
	if got := FoldStats(a, b, plain).W; got != want {
		t.Fatalf("folded W with external = %d, want %d", got, want)
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	// P > n must panic rather than hand out empty shards.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Partition with parts > len(v) did not panic")
			}
		}()
		Partition(Vector{1, 2, 3}, 4)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Cuts with parts > n did not panic")
			}
		}()
		Cuts(3, 4)
	}()
	// n not divisible by P: ranges tile, sizes differ by at most one.
	parts := Partition(Vector{1, 1, 1, 1, 1, 1, 1}, 3)
	sizes := []int{len(parts[0]), len(parts[1]), len(parts[2])}
	total := 0
	for _, s := range sizes {
		total += s
		if s < 7/3 || s > 7/3+1 {
			t.Fatalf("uneven split sizes %v", sizes)
		}
	}
	if total != 7 {
		t.Fatalf("split of 7 bins covers %d", total)
	}
	// P = n: every part owns exactly one bin.
	for _, part := range Partition(Vector{3, 1, 4, 1, 5}, 5) {
		if len(part) != 1 {
			t.Fatalf("P = n split gave a part of %d bins", len(part))
		}
	}
}

func TestCutsMatchPartitionRange(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for p := 1; p <= n; p++ {
			cuts := Cuts(n, p)
			if err := ValidateCuts(cuts, n); err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			for i := 0; i < p; i++ {
				lo, hi := PartitionRange(n, p, i)
				if cuts[i] != lo || cuts[i+1] != hi {
					t.Fatalf("n=%d p=%d part %d: cuts [%d,%d), PartitionRange [%d,%d)",
						n, p, i, cuts[i], cuts[i+1], lo, hi)
				}
			}
			for b := 0; b < n; b++ {
				if got, want := CutsOwner(cuts, b), PartitionOwner(n, p, b); got != want {
					t.Fatalf("n=%d p=%d CutsOwner(%d) = %d, PartitionOwner %d", n, p, b, got, want)
				}
			}
		}
	}
}

func TestValidateCutsRejectsMalformed(t *testing.T) {
	for _, bad := range [][]int{
		{},           // too short
		{0},          // too short
		{1, 5},       // does not start at 0
		{0, 4},       // does not end at n
		{0, 3, 3, 5}, // not strictly increasing
		{0, 4, 2, 5}, // decreasing
	} {
		if ValidateCuts(bad, 5) == nil {
			t.Fatalf("ValidateCuts accepted %v over 5 bins", bad)
		}
	}
	if err := ValidateCuts([]int{0, 2, 3, 5}, 5); err != nil {
		t.Fatalf("ValidateCuts rejected a valid vector: %v", err)
	}
}

func TestBalancedCutsProperties(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(60)
		p := 1 + r.Intn(n)
		w := make([]int64, n)
		for i := range w {
			if r.Intn(3) > 0 { // zero-weight stretches are common in practice
				w[i] = r.Int63n(50)
			}
		}
		cuts := BalancedCuts(w, p)
		if err := ValidateCuts(cuts, n); err != nil {
			t.Fatalf("n=%d p=%d w=%v: %v", n, p, w, err)
		}
		// Pure function: the same input reproduces the same cuts (the
		// sharded engine's determinism rests on this).
		again := BalancedCuts(w, p)
		for i := range cuts {
			if cuts[i] != again[i] {
				t.Fatalf("BalancedCuts not deterministic: %v vs %v", cuts, again)
			}
		}
	}
}

func TestBalancedCutsBalancesUniform(t *testing.T) {
	w := make([]int64, 64)
	for i := range w {
		w[i] = 10
	}
	cuts := BalancedCuts(w, 4)
	for i := 0; i < 4; i++ {
		if sz := cuts[i+1] - cuts[i]; sz != 16 {
			t.Fatalf("uniform weights split unevenly: %v", cuts)
		}
	}
}

func TestBalancedCutsSkewedWeights(t *testing.T) {
	// One dominant bin: it ends up alone-ish in a part and the remaining
	// boundaries still tile with every part non-empty.
	w := make([]int64, 16)
	w[5] = 1000
	cuts := BalancedCuts(w, 4)
	if err := ValidateCuts(cuts, 16); err != nil {
		t.Fatal(err)
	}
	owner := CutsOwner(cuts, 5)
	var heavy int64
	for _, x := range w[cuts[owner]:cuts[owner+1]] {
		heavy += x
	}
	if heavy != 1000 {
		t.Fatalf("dominant bin's part carries %d of 1000", heavy)
	}
	// All-zero weights degrade to a near-equal bin split.
	zero := make([]int64, 12)
	if err := ValidateCuts(BalancedCuts(zero, 5), 12); err != nil {
		t.Fatal(err)
	}
	// Negative weights are a caller bug.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("BalancedCuts accepted a negative weight")
			}
		}()
		BalancedCuts([]int64{1, -1}, 2)
	}()
}

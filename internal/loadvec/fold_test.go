package loadvec

import (
	"testing"

	"repro/internal/rng"
)

func TestPartitionRangesTile(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for p := 1; p <= n; p++ {
			prev := 0
			for i := 0; i < p; i++ {
				lo, hi := PartitionRange(n, p, i)
				if lo != prev {
					t.Fatalf("n=%d p=%d part %d starts at %d, want %d", n, p, i, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("n=%d p=%d part %d is empty [%d,%d)", n, p, i, lo, hi)
				}
				for b := lo; b < hi; b++ {
					if got := PartitionOwner(n, p, b); got != i {
						t.Fatalf("n=%d p=%d owner(%d) = %d, want %d", n, p, b, got, i)
					}
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d p=%d ranges end at %d", n, p, prev)
			}
		}
	}
}

func TestPartitionCopiesAndConserves(t *testing.T) {
	r := rng.New(5)
	v := OneChoice().Generate(13, 200, r)
	parts := Partition(v, 4)
	total := 0
	bins := 0
	for _, part := range parts {
		bins += len(part)
		total += part.Balls()
	}
	if bins != 13 || total != 200 {
		t.Fatalf("partition covers %d bins / %d balls", bins, total)
	}
	parts[0][0]++ // copies: mutating a part must not touch the source
	if v.Balls() != 200 {
		t.Fatal("Partition aliases the source vector")
	}
}

func TestFoldStatsMatchesGlobalConfig(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		m := r.Intn(200)
		v := make(Vector, n)
		for i := 0; i < m; i++ {
			v[r.Intn(n)]++
		}
		p := 1 + r.Intn(n)
		parts := Partition(v, p)
		cfgs := make([]*Config, p)
		for i, part := range parts {
			cfgs[i] = NewConfig(part)
		}
		f := FoldStats(cfgs...)
		g := NewConfig(v)
		if f.N != g.N() || f.M != g.M() || f.Min != g.Min() || f.Max != g.Max() {
			t.Fatalf("fold (%+v) != global Config %v", f, g)
		}
		if f.Disc() != g.Disc() || f.IsPerfect() != g.IsPerfect() {
			t.Fatalf("fold disc/perfect (%g,%v) != global (%g,%v)",
				f.Disc(), f.IsPerfect(), g.Disc(), g.IsPerfect())
		}
		if f.IsBalanced(2) != g.IsBalanced(2) {
			t.Fatal("fold balancedness disagrees")
		}
	}
}

func TestFoldStatsEmptySystem(t *testing.T) {
	f := FoldStats(NewConfig(make(Vector, 4)))
	if f.Disc() != 0 || !f.IsPerfect() || f.Avg() != 0 {
		t.Fatalf("empty fold: %+v", f)
	}
}

// TestFoldStatsMoveWeight pins the W fold: level-indexed shards
// contribute their local move weight plus any installed external weight;
// unindexed shards contribute nothing.
func TestFoldStatsMoveWeight(t *testing.T) {
	a := NewConfig(Vector{3, 0, 1})
	a.EnableLevelIndex()
	b := NewConfig(Vector{2, 2})
	b.EnableLevelIndex()
	plain := NewConfig(Vector{5, 5})

	want := a.MoveWeight() + b.MoveWeight()
	if want == 0 {
		t.Fatal("degenerate fixture: zero local weight")
	}
	if got := FoldStats(a, b, plain).W; got != want {
		t.Fatalf("folded W = %d, want %d", got, want)
	}

	b.SetExternalPrefix(func(w int) int64 { return int64(w + 1) })
	want = a.MoveWeight() + b.MoveWeight() + b.ExternalMoveWeight()
	if b.ExternalMoveWeight() == 0 {
		t.Fatal("degenerate fixture: zero external weight")
	}
	if got := FoldStats(a, b, plain).W; got != want {
		t.Fatalf("folded W with external = %d, want %d", got, want)
	}
}

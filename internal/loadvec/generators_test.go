package loadvec

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// checkGen validates the basic generator contract: n bins, m balls,
// non-negative loads.
func checkGen(t *testing.T, g Generator, n, m int) Vector {
	t.Helper()
	r := rng.New(123)
	v := g.Generate(n, m, r)
	if len(v) != n {
		t.Fatalf("%s: got %d bins, want %d", g.Name(), len(v), n)
	}
	if err := v.Validate(m); err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
	return v
}

func TestAllInOne(t *testing.T) {
	v := checkGen(t, AllInOne(), 8, 40)
	if v[0] != 40 {
		t.Errorf("bin 0 has %d", v[0])
	}
	for i := 1; i < 8; i++ {
		if v[i] != 0 {
			t.Errorf("bin %d non-empty", i)
		}
	}
}

func TestOneChoice(t *testing.T) {
	v := checkGen(t, OneChoice(), 16, 1600)
	// With 100 balls per bin expected, all bins should be within a wide
	// band; a bin at 0 would be astronomically unlikely.
	for i, x := range v {
		if x == 0 {
			t.Errorf("bin %d empty under one-choice with avg 100", i)
		}
	}
}

func TestTwoChoiceBeatsOneChoiceTypically(t *testing.T) {
	// Two-choice discrepancy should be no worse than one-choice on
	// average. Compare means over several seeds.
	var d1, d2 float64
	for seed := uint64(0); seed < 20; seed++ {
		r := rng.New(seed)
		d1 += OneChoice().Generate(256, 256, r).Disc()
		d2 += TwoChoice().Generate(256, 256, r).Disc()
	}
	if d2 >= d1 {
		t.Errorf("two-choice mean disc %g not better than one-choice %g", d2/20, d1/20)
	}
}

func TestDChoiceDegenerate(t *testing.T) {
	// d=1 must behave like one-choice (correct ball count, any spread).
	checkGen(t, DChoice(1), 8, 100)
	// Large d approaches round-robin: with d = n the placement is nearly
	// perfectly balanced.
	v := checkGen(t, DChoice(64), 64, 640)
	if v.Disc() > 1 {
		t.Errorf("Greedy[n] disc = %g, want <= 1", v.Disc())
	}
}

func TestBalanced(t *testing.T) {
	v := checkGen(t, Balanced(), 5, 12)
	if !v.IsPerfect() {
		t.Errorf("balanced not perfect: %v", v)
	}
	if v[0] != 3 || v[4] != 2 {
		t.Errorf("remainder distribution wrong: %v", v)
	}
	// Exactly divisible.
	v2 := checkGen(t, Balanced(), 4, 12)
	for _, x := range v2 {
		if x != 3 {
			t.Errorf("divisible case uneven: %v", v2)
		}
	}
}

func TestDeltaPair(t *testing.T) {
	v := checkGen(t, DeltaPair(1), 8, 32) // avg 4
	if v[0] != 5 || v[1] != 3 {
		t.Errorf("delta-pair wrong: %v", v)
	}
	if v.Disc() != 1 {
		t.Errorf("disc = %g, want 1", v.Disc())
	}
	v3 := checkGen(t, DeltaPair(3), 8, 32)
	if v3[0] != 7 || v3[1] != 1 {
		t.Errorf("delta-pair(3) wrong: %v", v3)
	}
}

func TestImbalancedPairs(t *testing.T) {
	v := checkGen(t, ImbalancedPairs(3), 10, 50) // avg 5
	if v.OverloadedBalls() != 3 {
		t.Errorf("A = %g, want 3", v.OverloadedBalls())
	}
}

func TestHalfSpread(t *testing.T) {
	v := checkGen(t, HalfSpread(2), 8, 32) // avg 4
	for i := 0; i < 4; i++ {
		if v[i] != 6 {
			t.Errorf("heavy bin %d = %d, want 6", i, v[i])
		}
	}
	for i := 4; i < 8; i++ {
		if v[i] != 2 {
			t.Errorf("light bin %d = %d, want 2", i, v[i])
		}
	}
	// Odd n leaves the middle bin at the average.
	v2 := checkGen(t, HalfSpread(1), 5, 15)
	if v2[2] != 3 {
		t.Errorf("middle bin = %d, want 3", v2[2])
	}
}

func TestZipfSkew(t *testing.T) {
	v := checkGen(t, ZipfSkew(1.5), 32, 3200)
	// Bin 0 (rank 1) should be the heaviest by a clear margin.
	for i := 5; i < 32; i++ {
		if v[i] > v[0] {
			t.Errorf("bin %d (%d) heavier than rank-1 bin (%d)", i, v[i], v[0])
			break
		}
	}
}

func TestFromVector(t *testing.T) {
	fixed := Vector{1, 2, 3}
	g := FromVector(fixed)
	v := checkGen(t, g, 3, 6)
	if !v.Equal(fixed) {
		t.Errorf("got %v", v)
	}
	v[0] = 99
	if fixed[0] != 1 {
		t.Error("FromVector returned shared memory")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched n accepted")
			}
		}()
		g.Generate(4, 6, rng.New(1))
	}()
}

func TestGeneratorNames(t *testing.T) {
	gens := []Generator{
		AllInOne(), OneChoice(), TwoChoice(), DChoice(3), Balanced(),
		DeltaPair(1), ImbalancedPairs(2), HalfSpread(1), ZipfSkew(1), FromVector(Vector{1}),
	}
	seen := map[string]bool{}
	for _, g := range gens {
		name := g.Name()
		if name == "" {
			t.Error("empty generator name")
		}
		if seen[name] {
			t.Errorf("duplicate generator name %q", name)
		}
		seen[name] = true
	}
	if !strings.Contains(DChoice(3).Name(), "3") {
		t.Error("DChoice name should mention d")
	}
}

func TestGeneratorDeterminismPerSeed(t *testing.T) {
	for _, g := range []Generator{OneChoice(), TwoChoice(), ZipfSkew(1.2)} {
		a := g.Generate(16, 64, rng.New(7))
		b := g.Generate(16, 64, rng.New(7))
		if !a.Equal(b) {
			t.Errorf("%s: same seed produced different configurations", g.Name())
		}
	}
}

package loadvec

import "testing"

// FuzzConfigMoveSequence drives a Config through an arbitrary move
// sequence decoded from fuzz bytes and cross-checks every incrementally
// tracked statistic against a from-scratch recomputation.
func FuzzConfigMoveSequence(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1}, []byte{0x01, 0x23, 0x10})
	f.Add([]byte{9, 0, 0, 0, 0}, []byte{0x01, 0x02, 0x03, 0x04})
	f.Add([]byte{2, 2, 2}, []byte{0x12, 0x21, 0x01})
	f.Fuzz(func(t *testing.T, loads []byte, moves []byte) {
		if len(loads) < 2 || len(loads) > 12 || len(moves) > 64 {
			return
		}
		v := make(Vector, len(loads))
		total := 0
		for i, b := range loads {
			v[i] = int(b % 16)
			total += v[i]
		}
		if total == 0 {
			return
		}
		c := NewConfig(v)
		n := len(v)
		for _, mv := range moves {
			src := int(mv>>4) % n
			dst := int(mv&0x0f) % n
			if src == dst || c.Load(src) == 0 {
				continue
			}
			c.Move(src, dst)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("incremental state diverged: %v", err)
		}
		if c.M() != total {
			t.Fatalf("ball count changed: %d -> %d", total, c.M())
		}
		if got, want := c.Disc(), c.Loads().Disc(); got != want {
			t.Fatalf("disc mismatch: %g vs %g", got, want)
		}
		if c.IsPerfect() != c.Loads().IsPerfect() {
			t.Fatal("IsPerfect mismatch")
		}
	})
}

// FuzzVectorStatistics checks the Vector-level identities on arbitrary
// inputs: overloaded balls = holes, disc consistency with min/max, and
// the h+r+k partition.
func FuzzVectorStatistics(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 7})
	f.Fuzz(func(t *testing.T, loads []byte) {
		if len(loads) == 0 || len(loads) > 20 {
			return
		}
		v := make(Vector, len(loads))
		for i, b := range loads {
			v[i] = int(b % 32)
		}
		if ob, h := v.OverloadedBalls(), v.Holes(); ob-h > 1e-9 || h-ob > 1e-9 {
			t.Fatalf("overloaded %g != holes %g", ob, h)
		}
		h, r, k := v.AboveBelow()
		if h+r+k != len(v) {
			t.Fatalf("h+r+k = %d != n = %d", h+r+k, len(v))
		}
		min, max := v.MinMax()
		avg := v.Avg()
		d := v.Disc()
		if d+1e-9 < float64(max)-avg || d+1e-9 < avg-float64(min) {
			t.Fatal("disc below a deviation")
		}
		if v.IsPerfect() != (d < 1) {
			t.Fatal("IsPerfect inconsistent with disc")
		}
		s := v.SortedDesc()
		if !v.EqualAsMultiset(s) {
			t.Fatal("sorting changed the multiset")
		}
	})
}

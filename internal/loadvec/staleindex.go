package loadvec

import (
	"fmt"

	"repro/internal/fenwick"
)

// StaleIndex is the census of a partitioned system's bins at their stale
// (last-reconciliation) loads, maintained so that single-bin level changes
// are cheap. The sharded jump engine (internal/sim) keeps one: every
// shard's external move weight X_s is defined against the *other* shards'
// bins at their stale-snapshot levels, and at end-game per-move epochs the
// snapshot changes by only a handful of bins per barrier — so the census
// must be updatable per bin, not rebuilt per barrier.
//
// The structure holds, for every (level v, part p), the bucket of part p's
// bins at stale level v (swap-delete lists with a position index, exactly
// like the level index's binsAt), plus Fenwick trees over the per-level
// bin counts: one global tree and one per part. Part p's external prefix
//
//	ext_p(w) = #{bins of other parts with stale level ≤ w}
//	         = gcnt.Prefix(w) − own_p.Prefix(w)
//
// is then an O(log Δ) query, Move (one bin changing level) is an
// O(P + log Δ) update, and ExternalBinAt maps a sampled uniform index over
// that population onto its concrete bin in O(P + log Δ) — no operation
// ever scans a bucket, which matters because end-game buckets hold ~n
// bins. Parts own contiguous bin ranges described by an explicit cuts
// vector (NewStaleIndexCuts) — the canonical PartitionRange boundaries by
// default (NewStaleIndex), arbitrary strictly increasing boundaries when
// the sharded engine has repartitioned.
type StaleIndex struct {
	n, parts int
	cuts     []int         // part p owns bins [cuts[p], cuts[p+1])
	levels   int           // indexed levels 0..levels-1 (doubling growth)
	at       [][]int32     // at[v*parts+p]: part p's bins at stale level v
	pos      []int32       // bin -> position within its bucket
	gcnt     *fenwick.Tree // per-level global bin count
	own      []*fenwick.Tree
}

// NewStaleIndex builds the census for the given stale snapshot under the
// canonical parts-way contiguous partition (PartitionRange boundaries). It
// panics on an empty snapshot, a negative level, or parts outside
// [1, len(stale)]. O(n + parts·Δ).
func NewStaleIndex(stale []int, parts int) *StaleIndex {
	if parts < 1 || parts > len(stale) {
		panic("loadvec: NewStaleIndex with parts outside [1, len(stale)]")
	}
	return NewStaleIndexCuts(stale, Cuts(len(stale), parts))
}

// NewStaleIndexCuts builds the census under the contiguous partition
// described by an explicit boundary vector (see Cuts/BalancedCuts): part p
// owns bins [cuts[p], cuts[p+1]). The sharded engine rebuilds its census
// through this constructor whenever repartitioning moves the boundaries.
// It panics on an empty snapshot, a negative level, or an invalid cuts
// vector. O(n + parts·Δ).
func NewStaleIndexCuts(stale []int, cuts []int) *StaleIndex {
	if len(stale) == 0 {
		panic("loadvec: NewStaleIndex with no bins")
	}
	if err := ValidateCuts(cuts, len(stale)); err != nil {
		panic(err.Error())
	}
	parts := len(cuts) - 1
	maxLevel := 0
	for bin, l := range stale {
		if l < 0 {
			panic(fmt.Sprintf("loadvec: NewStaleIndex with negative level at bin %d", bin))
		}
		if l > maxLevel {
			maxLevel = l
		}
	}
	levels := 4
	for levels <= maxLevel {
		levels *= 2
	}
	x := &StaleIndex{
		n:      len(stale),
		parts:  parts,
		cuts:   append([]int(nil), cuts...),
		levels: levels,
		at:     make([][]int32, levels*parts),
		pos:    make([]int32, len(stale)),
	}
	// Bins are scanned in ascending order, so every bucket starts sorted by
	// bin id; incremental Moves are free to break that (nothing reads it).
	for bin, l := range stale {
		b := l*parts + CutsOwner(x.cuts, bin)
		x.pos[bin] = int32(len(x.at[b]))
		x.at[b] = append(x.at[b], int32(bin))
	}
	x.rebuildCounts()
	return x
}

// rebuildCounts derives the global and per-part Fenwick trees from the
// bucket lengths alone; used on construction and level growth.
func (x *StaleIndex) rebuildCounts() {
	gv := make([]int64, x.levels)
	x.own = make([]*fenwick.Tree, x.parts)
	for p := 0; p < x.parts; p++ {
		ov := make([]int64, x.levels)
		for v := 0; v < x.levels; v++ {
			c := int64(len(x.at[v*x.parts+p]))
			ov[v] = c
			gv[v] += c
		}
		x.own[p] = fenwick.From(ov)
	}
	x.gcnt = fenwick.From(gv)
}

// grow extends the indexed level range to cover `need` (amortized O(1) per
// Move by doubling).
func (x *StaleIndex) grow(need int) {
	levels := x.levels
	for levels <= need {
		levels *= 2
	}
	at := make([][]int32, levels*x.parts)
	copy(at, x.at)
	x.at = at
	x.levels = levels
	x.rebuildCounts()
}

// Levels returns the number of indexed levels (all bins sit below it).
func (x *StaleIndex) Levels() int { return x.levels }

// Move records that bin's stale level changed from `from` to `to`,
// updating its bucket and both count trees in O(P + log Δ). The caller
// owns the snapshot itself and passes the old and new levels explicitly.
func (x *StaleIndex) Move(bin, from, to int) {
	if to >= x.levels {
		x.grow(to)
	}
	p := CutsOwner(x.cuts, bin)
	src := x.at[from*x.parts+p]
	i := x.pos[bin]
	last := src[len(src)-1]
	src[i] = last
	x.pos[last] = i
	x.at[from*x.parts+p] = src[:len(src)-1]
	dst := x.at[to*x.parts+p]
	x.pos[bin] = int32(len(dst))
	x.at[to*x.parts+p] = append(dst, int32(bin))

	x.gcnt.Add(from, -1)
	x.gcnt.Add(to, 1)
	x.own[p].Add(from, -1)
	x.own[p].Add(to, 1)
}

// External returns ext_part(w): the number of bins owned by *other* parts
// with stale level ≤ w, in O(log Δ). Arguments below 0 return 0 and
// arguments past the indexed range clamp to it (every bin sits below
// Levels), so the result is monotone in w — the contract
// Config.SetExternalPrefix requires.
func (x *StaleIndex) External(part, w int) int64 {
	if w < 0 {
		return 0
	}
	if w >= x.levels {
		w = x.levels - 1
	}
	return x.gcnt.Prefix(w) - x.own[part].Prefix(w)
}

// ExternalBinAt maps a uniform index j ∈ [0, External(part, w)) onto its
// concrete bin: the j-th bin of the external population counted by
// External(part, w), ordered by (level, owning part, bucket position). The
// level is found by a Fenwick descend over the difference of the two count
// trees, then the index walks the level's per-part buckets, skipping
// part's own.
func (x *StaleIndex) ExternalBinAt(part, w int, j int64) int {
	if w >= x.levels {
		w = x.levels - 1
	}
	u, rem := fenwick.FindDiff(x.gcnt, x.own[part], j)
	if u > w {
		panic("loadvec: ExternalBinAt index beyond the level bound")
	}
	for p := 0; p < x.parts; p++ {
		if p == part {
			continue
		}
		b := x.at[u*x.parts+p]
		if rem < int64(len(b)) {
			return int(b[rem])
		}
		rem -= int64(len(b))
	}
	panic("loadvec: ExternalBinAt index out of range")
}

// Validate cross-checks every piece of the index against a from-scratch
// recount of the given reference snapshot (the caller's live stale
// vector); the reconciliation property tests call it at every barrier.
func (x *StaleIndex) Validate(stale []int) error {
	if len(stale) != x.n {
		return fmt.Errorf("loadvec: StaleIndex over %d bins validated against %d", x.n, len(stale))
	}
	total := 0
	for v := 0; v < x.levels; v++ {
		for p := 0; p < x.parts; p++ {
			for i, bin := range x.at[v*x.parts+p] {
				if stale[bin] != v {
					return fmt.Errorf("loadvec: bin %d bucketed at level %d, snapshot says %d", bin, v, stale[bin])
				}
				if CutsOwner(x.cuts, int(bin)) != p {
					return fmt.Errorf("loadvec: bin %d bucketed under part %d", bin, p)
				}
				if x.pos[bin] != int32(i) {
					return fmt.Errorf("loadvec: bin %d pos %d, want %d", bin, x.pos[bin], i)
				}
				total++
			}
		}
	}
	if total != x.n {
		return fmt.Errorf("loadvec: buckets hold %d bins, want %d", total, x.n)
	}
	for v := 0; v < x.levels; v++ {
		var cnt int64
		for p := 0; p < x.parts; p++ {
			c := int64(len(x.at[v*x.parts+p]))
			cnt += c
			if got := x.own[p].Prefix(v) - x.own[p].Prefix(v-1); got != c {
				return fmt.Errorf("loadvec: own[%d] tree at %d = %d, want %d", p, v, got, c)
			}
		}
		if got := x.gcnt.Prefix(v) - x.gcnt.Prefix(v-1); got != cnt {
			return fmt.Errorf("loadvec: gcnt tree at %d = %d, want %d", v, got, cnt)
		}
	}
	return nil
}

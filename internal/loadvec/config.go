package loadvec

import "fmt"

// Config is a load configuration with O(1) per-move incremental tracking
// of the statistics the experiments sample constantly: min/max load
// (hence discrepancy and perfect balance), the above/at/below-average bin
// counts h/r/k, and the number of overloaded balls A.
//
// Moves change one bin by −1 and another by +1, so every tracked quantity
// can be updated by inspecting only the two touched bins. A run of n²
// activations therefore costs O(n²) total bookkeeping instead of O(n³).
//
// Config supports arbitrary moves, including the destructive moves of
// Lemma 2 (which can push loads above the initial maximum); the internal
// load histogram grows on demand.
type Config struct {
	loads Vector
	n, m  int

	count    []int // count[v] = number of bins with load v
	min, max int

	// Classification vs the average, using the exact test n·ℓ_i vs m.
	h, k int // bins strictly above / strictly below average
	// sumOver = Σ_{i: ℓ_i > ∅} ℓ_i, to derive overloaded balls without a
	// scan: A = sumOver − h·∅ (exactly (n·sumOver − h·m)/n).
	sumOver int

	// idx is the opt-in level index for the rejection-free jump engine
	// (see levelindex.go); nil unless EnableLevelIndex was called.
	idx *levelIndex
}

// NewConfig wraps a copy of the given load vector. It panics on an empty
// or negative-load vector.
func NewConfig(v Vector) *Config {
	if len(v) == 0 {
		panic("loadvec: NewConfig with empty vector")
	}
	c := &Config{
		loads: v.Clone(),
		n:     len(v),
	}
	maxLoad := 0
	for i, x := range v {
		if x < 0 {
			panic(fmt.Sprintf("loadvec: NewConfig with negative load at bin %d", i))
		}
		c.m += x
		if x > maxLoad {
			maxLoad = x
		}
	}
	c.count = make([]int, maxLoad+2)
	c.min, c.max = v[0], v[0]
	for _, x := range v {
		c.count[x]++
		if x < c.min {
			c.min = x
		}
		if x > c.max {
			c.max = x
		}
	}
	for _, x := range v {
		switch {
		case x*c.n > c.m:
			c.h++
			c.sumOver += x
		case x*c.n < c.m:
			c.k++
		}
	}
	return c
}

// N returns the number of bins.
func (c *Config) N() int { return c.n }

// M returns the number of balls.
func (c *Config) M() int { return c.m }

// Avg returns the average load ∅ = m/n.
func (c *Config) Avg() float64 { return float64(c.m) / float64(c.n) }

// Load returns the load of bin i.
func (c *Config) Load(i int) int { return c.loads[i] }

// Loads returns the internal load vector. The caller must not modify it;
// use Snapshot for a copy.
func (c *Config) Loads() Vector { return c.loads }

// Snapshot returns a copy of the current load vector.
func (c *Config) Snapshot() Vector { return c.loads.Clone() }

// Min returns the minimum load.
func (c *Config) Min() int { return c.min }

// Max returns the maximum load.
func (c *Config) Max() int { return c.max }

// Disc returns the discrepancy max(max−∅, ∅−min).
func (c *Config) Disc() float64 {
	avg := c.Avg()
	hi := float64(c.max) - avg
	lo := avg - float64(c.min)
	if hi > lo {
		return hi
	}
	return lo
}

// IsPerfect reports perfect balance (disc < 1 ⟺ max−min ≤ 1; see
// Vector.IsPerfect).
func (c *Config) IsPerfect() bool { return c.max-c.min <= 1 }

// IsBalanced reports x-balancedness.
func (c *Config) IsBalanced(x float64) bool { return c.Disc() <= x }

// AboveBelow returns (h, r, k): bins strictly above / at / strictly below
// the average.
func (c *Config) AboveBelow() (h, r, k int) {
	return c.h, c.n - c.h - c.k, c.k
}

// OverloadedBalls returns A = Σ_i max{0, ℓ_i − ∅}.
func (c *Config) OverloadedBalls() float64 {
	return float64(c.sumOver) - float64(c.h)*c.Avg()
}

// OverloadedBallsScaled returns n·A as an exact integer
// (n·Σ max{0, ℓ_i − ∅} = n·sumOver − h·m). For n | m this is n times the
// integer ball count; tests use it to avoid float comparisons.
func (c *Config) OverloadedBallsScaled() int {
	return c.n*c.sumOver - c.h*c.m
}

// Potential returns Lemma 16's potential function 3A − k − h
// (meaningful when ∅ is an integer, where A is integral).
func (c *Config) Potential() float64 {
	return 3*c.OverloadedBalls() - float64(c.k) - float64(c.h)
}

// CountAt returns the number of bins currently holding exactly load v.
func (c *Config) CountAt(v int) int {
	if v < 0 || v >= len(c.count) {
		return 0
	}
	return c.count[v]
}

// Move transfers one ball from bin src to bin dst, updating all tracked
// statistics in O(1). It panics if src has no ball or src == dst.
// Move performs no legality check — protocol rules (RLS, destructive,
// baseline) are enforced by the callers — so it can express both protocol
// moves and the adversarial destructive moves of Lemma 2.
func (c *Config) Move(src, dst int) {
	if src == dst {
		panic("loadvec: Move with src == dst")
	}
	v := c.loads[src]
	if v == 0 {
		panic("loadvec: Move from empty bin")
	}
	w := c.loads[dst]

	c.declassify(v)
	c.declassify(w)

	// Histogram and loads.
	c.count[v]--
	c.count[v-1]++
	c.loads[src] = v - 1
	if w+2 >= len(c.count) {
		c.growCount(w + 2)
	}
	c.count[w]--
	c.count[w+1]++
	c.loads[dst] = w + 1

	c.classify(v - 1)
	c.classify(w + 1)

	// Min/max maintenance. Loads move by ±1, and the bin leaving an
	// extreme level lands on the adjacent level, so each extreme moves by
	// at most one per call.
	if v-1 < c.min {
		c.min = v - 1
	} else if c.count[c.min] == 0 {
		c.min++
	}
	if w+1 > c.max {
		c.max = w + 1
	} else if c.count[c.max] == 0 {
		c.max--
	}

	if c.idx != nil {
		c.idx.transition(src, v, v-1)
		c.idx.transition(dst, w, w+1)
	}
}

// AddBall inserts one ball into bin (a dynamic arrival), updating every
// tracked statistic in O(1). Changing m shifts the average by 1/n, so
// besides the touched bin only the bins sitting exactly on the old or new
// average can change classification; their counts are read off the load
// histogram instead of rescanning the vector.
func (c *Config) AddBall(bin int) {
	v := c.loads[bin]
	// Take the touched bin out of the histogram and classification so the
	// average-crossing adjustment below covers exactly the other n−1 bins.
	c.count[v]--
	c.declassify(v)
	// m → m+1: a level w flips above→at iff w·n == m+1 and at→below iff
	// w·n == m, i.e. only when n divides m+1 resp. m.
	if (c.m+1)%c.n == 0 {
		w := (c.m + 1) / c.n
		if cnt := c.CountAt(w); cnt > 0 {
			c.h -= cnt
			c.sumOver -= w * cnt
		}
	}
	if c.m%c.n == 0 {
		c.k += c.CountAt(c.m / c.n)
	}
	c.m++
	if v+2 >= len(c.count) {
		c.growCount(v + 2)
	}
	c.count[v+1]++
	c.loads[bin] = v + 1
	c.classify(v + 1)
	if v+1 > c.max {
		c.max = v + 1
	}
	if v == c.min && c.count[v] == 0 {
		c.min = v + 1
	}
	if c.idx != nil {
		c.idx.transition(bin, v, v+1)
	}
}

// RemoveBall removes one ball from bin (a dynamic departure), updating
// every tracked statistic in O(1) by the same histogram-crossing argument
// as AddBall. It panics if the bin is empty.
func (c *Config) RemoveBall(bin int) {
	v := c.loads[bin]
	if v == 0 {
		panic("loadvec: RemoveBall from empty bin")
	}
	c.count[v]--
	c.declassify(v)
	// m → m−1: a level w flips at→above iff w·n == m and below→at iff
	// w·n == m−1.
	if c.m%c.n == 0 {
		w := c.m / c.n
		if cnt := c.CountAt(w); cnt > 0 {
			c.h += cnt
			c.sumOver += w * cnt
		}
	}
	if (c.m-1)%c.n == 0 {
		c.k -= c.CountAt((c.m - 1) / c.n)
	}
	c.m--
	c.count[v-1]++
	c.loads[bin] = v - 1
	c.classify(v - 1)
	if v-1 < c.min {
		c.min = v - 1
	}
	if v == c.max && c.count[v] == 0 {
		c.max = v - 1
	}
	if c.idx != nil {
		c.idx.transition(bin, v, v-1)
	}
}

// declassify removes one bin at load v from the h/k/sumOver accounting.
func (c *Config) declassify(v int) {
	switch {
	case v*c.n > c.m:
		c.h--
		c.sumOver -= v
	case v*c.n < c.m:
		c.k--
	}
}

// classify adds one bin at load v to the h/k/sumOver accounting.
func (c *Config) classify(v int) {
	switch {
	case v*c.n > c.m:
		c.h++
		c.sumOver += v
	case v*c.n < c.m:
		c.k++
	}
}

func (c *Config) growCount(need int) {
	newLen := 2 * len(c.count)
	if newLen <= need {
		newLen = need + 1
	}
	nc := make([]int, newLen)
	copy(nc, c.count)
	c.count = nc
}

// Validate recomputes every tracked statistic from scratch and returns an
// error if any cached value disagrees. Tests call this after randomized
// move sequences.
func (c *Config) Validate() error {
	if err := c.loads.Validate(c.m); err != nil {
		return err
	}
	fresh := NewConfig(c.loads)
	if fresh.min != c.min || fresh.max != c.max {
		return fmt.Errorf("loadvec: cached min/max (%d,%d) != fresh (%d,%d)",
			c.min, c.max, fresh.min, fresh.max)
	}
	if fresh.h != c.h || fresh.k != c.k || fresh.sumOver != c.sumOver {
		return fmt.Errorf("loadvec: cached h/k/sumOver (%d,%d,%d) != fresh (%d,%d,%d)",
			c.h, c.k, c.sumOver, fresh.h, fresh.k, fresh.sumOver)
	}
	for v := 0; v < len(c.count) || v < len(fresh.count); v++ {
		var a, b int
		if v < len(c.count) {
			a = c.count[v]
		}
		if v < len(fresh.count) {
			b = fresh.count[v]
		}
		if a != b {
			return fmt.Errorf("loadvec: histogram mismatch at load %d: %d vs %d", v, a, b)
		}
	}
	return c.validateIndex()
}

// Clone returns an independent deep copy of the configuration.
func (c *Config) Clone() *Config {
	cp := *c
	cp.loads = c.loads.Clone()
	cp.count = append([]int(nil), c.count...)
	if c.idx != nil {
		cp.idx = c.idx.clone()
	}
	return &cp
}

// String summarizes the configuration.
func (c *Config) String() string {
	return fmt.Sprintf("Config{n=%d m=%d min=%d max=%d disc=%.2f}",
		c.n, c.m, c.min, c.max, c.Disc())
}

// Package loadvec provides the load-configuration machinery shared by all
// protocols: plain load vectors with the paper's §3 statistics
// (discrepancy, balancedness, overloaded balls), an incrementally tracked
// Config that supports O(1) per-move bookkeeping, and the initial-
// configuration generators used by the experiments.
//
// Terminology follows the paper: a configuration ℓ = (ℓ_1, ..., ℓ_n) has
// average load ∅ = m/n, discrepancy disc(ℓ) = max_i |ℓ_i − ∅|, is
// x-balanced if disc(ℓ) ≤ x and perfectly balanced if disc(ℓ) < 1.
package loadvec

import (
	"fmt"
	"sort"
)

// Vector is a plain load vector: Vector[i] is the number of balls in bin i.
type Vector []int

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	return append(Vector(nil), v...)
}

// Balls returns the total number of balls m = Σ ℓ_i.
func (v Vector) Balls() int {
	m := 0
	for _, x := range v {
		m += x
	}
	return m
}

// Avg returns the average load ∅ = m/n.
func (v Vector) Avg() float64 {
	if len(v) == 0 {
		return 0
	}
	return float64(v.Balls()) / float64(len(v))
}

// MinMax returns the minimum and maximum loads. It panics on an empty
// vector.
func (v Vector) MinMax() (min, max int) {
	if len(v) == 0 {
		panic("loadvec: MinMax of empty vector")
	}
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return
}

// Disc returns the discrepancy disc(ℓ) = max_i |ℓ_i − ∅|.
func (v Vector) Disc() float64 {
	min, max := v.MinMax()
	avg := v.Avg()
	hi := float64(max) - avg
	lo := avg - float64(min)
	if hi > lo {
		return hi
	}
	return lo
}

// IsBalanced reports whether the configuration is x-balanced
// (disc(ℓ) ≤ x).
func (v Vector) IsBalanced(x float64) bool { return v.Disc() <= x }

// IsPerfect reports whether the configuration is perfectly balanced
// (disc(ℓ) < 1). For integer loads this is equivalent to max−min ≤ 1:
// max−min = 0 means all loads equal ∅ exactly, and max−min = 1 forces
// n ∤ m, in which case both occurring loads ⌊∅⌋ and ⌈∅⌉ are within
// distance < 1 of ∅.
func (v Vector) IsPerfect() bool {
	min, max := v.MinMax()
	return max-min <= 1
}

// OverloadedBalls returns Σ_i max{0, ℓ_i − ∅}, the paper's "number of
// overloaded balls" (equal to the number of holes Σ_i max{0, ∅ − ℓ_i}).
// For n | m this is an integer.
func (v Vector) OverloadedBalls() float64 {
	avg := v.Avg()
	sum := 0.0
	for _, x := range v {
		if f := float64(x) - avg; f > 0 {
			sum += f
		}
	}
	return sum
}

// Holes returns Σ_i max{0, ∅ − ℓ_i}. Always equals OverloadedBalls
// because Σ (ℓ_i − ∅) = 0.
func (v Vector) Holes() float64 {
	avg := v.Avg()
	sum := 0.0
	for _, x := range v {
		if f := avg - float64(x); f > 0 {
			sum += f
		}
	}
	return sum
}

// AboveBelow returns (h, r, k): the number of bins with load strictly
// above, exactly at, and strictly below the average. Comparisons use the
// exact rational test n·ℓ_i vs m, so fractional averages are handled
// without floating-point error. These are the quantities of Lemma 16's
// potential function 3A − k − h.
func (v Vector) AboveBelow() (h, r, k int) {
	n := len(v)
	m := v.Balls()
	for _, x := range v {
		switch {
		case x*n > m:
			h++
		case x*n < m:
			k++
		default:
			r++
		}
	}
	return
}

// SortedDesc returns a copy sorted non-increasingly, the canonical form
// used throughout the Lemma 2 coupling ("we may let both ℓ and ℓ′ be
// sorted non-increasingly").
func (v Vector) SortedDesc() Vector {
	s := v.Clone()
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return s
}

// Equal reports element-wise equality.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// EqualAsMultiset reports whether v and w have the same loads up to bin
// relabeling. RLS is ignorant of bin order, so this is the natural
// equality for configurations.
func (v Vector) EqualAsMultiset(w Vector) bool {
	return v.SortedDesc().Equal(w.SortedDesc())
}

// Validate checks structural invariants (no negative loads) and that the
// vector carries exactly wantBalls balls; it returns a descriptive error.
func (v Vector) Validate(wantBalls int) error {
	total := 0
	for i, x := range v {
		if x < 0 {
			return fmt.Errorf("loadvec: bin %d has negative load %d", i, x)
		}
		total += x
	}
	if total != wantBalls {
		return fmt.Errorf("loadvec: have %d balls, want %d", total, wantBalls)
	}
	return nil
}

// String renders the vector compactly.
func (v Vector) String() string {
	return fmt.Sprintf("%v", []int(v))
}

package loadvec

import (
	"fmt"

	"repro/internal/fenwick"
	"repro/internal/rng"
)

// levelIndex is the opt-in structure behind the rejection-free jump
// engine. It organizes the bins by load level and maintains, under the
// same single-bin level transitions that drive the histogram, everything
// the jump chain needs to sample a *productive* RLS move exactly:
//
//   - binsAt[v] lists the bins currently at load v (swap-delete, O(1)),
//     so a uniform bin within a level is one array index;
//   - cnt is a Fenwick tree over count[v], giving the prefix bin count
//     C(v) = #{bins with load ≤ v} and weighted level sampling for the
//     destination side;
//   - bal is a Fenwick tree over v·count[v] (total weight m), giving
//     load-proportional — i.e. uniform-ball — bin sampling;
//   - mvw is a Fenwick tree over the per-level move weight
//     s[v] = v·count[v]·C(v−gap), whose total W = Σ_v s[v] is exactly
//     (m·n)·P(a uniform activation is a productive move): the activated
//     ball sits at level v with probability v·count[v]/m and its uniform
//     destination accepts with probability C(v−gap)/n.
//
// gap encodes the tie rule: 1 is plain RLS (move iff ℓ_src ≥ ℓ_dst + 1,
// destinations with load ≤ v−1 are eligible), 2 is the strict rule of
// [12]/[11] (move iff ℓ_src > ℓ_dst + 1, destinations with load ≤ v−2).
//
// A level transition touches count at two adjacent levels and C at one,
// so at most three s-entries change (two for gap = 1, where the C-shift
// lands on a level whose count also changed) and every update is
// O(log Δ) in the indexed level range. The index is self-contained: it
// reads only its own lists and trees, never the Config histogram
// mid-update, so the two transitions of a Move may be applied
// sequentially.
type levelIndex struct {
	gap    int           // tie rule: eligible destinations have load ≤ v−gap
	binsAt [][]int32     // level -> bins at that level (unordered)
	pos    []int32       // bin -> position within binsAt[load]
	cnt    *fenwick.Tree // count[v]
	bal    *fenwick.Tree // v·count[v]
	mvw    *fenwick.Tree // s[v] = v·count[v]·C(v−1)
	sval   []int64       // current s[v] values (to derive Fenwick deltas)
	wTotal int64         // W = Σ_v s[v]
	size   int           // number of indexed levels (levels 0..size-1)

	// External-destination extension (SetExternalPrefix): the sharded jump
	// engine treats the bins of *other* shards, at their stale snapshot
	// loads, as an extra destination population. extP(w) counts the
	// external bins with load ≤ w; the xw tree then maintains
	// x[v] = v·count[v]·extP(v−1) — the external analogue of s[v] — under
	// the same level transitions. extP does not depend on local counts, so
	// a transition only dirties x at the two touched levels.
	extP   func(w int) int64 // nil unless an external prefix is installed
	xw     *fenwick.Tree     // x[v]
	xval   []int64           // current x[v] values
	xTotal int64             // X = Σ_v x[v]
}

// newLevelIndex builds the index for the configuration's current state
// with the given tie gap (1 = plain, 2 = strict).
func newLevelIndex(c *Config, gap int) *levelIndex {
	size := 4
	for size <= c.max+1 {
		size *= 2
	}
	x := &levelIndex{
		gap:    gap,
		binsAt: make([][]int32, size),
		pos:    make([]int32, c.n),
		sval:   make([]int64, size),
		size:   size,
	}
	for i, v := range c.loads {
		x.pos[i] = int32(len(x.binsAt[v]))
		x.binsAt[v] = append(x.binsAt[v], int32(i))
	}
	x.rebuildTrees()
	return x
}

// rebuildTrees derives all three Fenwick trees (and sval/wTotal) from the
// binsAt lists alone. Used on construction and when the level range grows.
func (x *levelIndex) rebuildTrees() {
	x.cnt = fenwick.New(x.size)
	x.bal = fenwick.New(x.size)
	x.mvw = fenwick.New(x.size)
	x.wTotal = 0
	for v, lst := range x.binsAt {
		if len(lst) == 0 {
			continue
		}
		x.cnt.Add(v, int64(len(lst)))
		if v > 0 {
			x.bal.Add(v, int64(v)*int64(len(lst)))
		}
	}
	for v := range x.sval {
		x.sval[v] = 0
		if v > 0 {
			if cn := int64(len(x.binsAt[v])); cn > 0 {
				x.sval[v] = int64(v) * cn * x.cnt.Prefix(v-x.gap)
			}
		}
		if x.sval[v] != 0 {
			x.mvw.Add(v, x.sval[v])
			x.wTotal += x.sval[v]
		}
	}
	if x.extP != nil {
		x.rebuildExternal()
	}
}

// rebuildExternal rederives the external-weight tree from the binsAt lists
// and the installed prefix; called when the prefix changes (every shard
// barrier) and when the level range grows.
func (x *levelIndex) rebuildExternal() {
	x.xw = fenwick.New(x.size)
	if len(x.xval) < x.size {
		x.xval = make([]int64, x.size)
	} else {
		for i := range x.xval {
			x.xval[i] = 0
		}
	}
	x.xTotal = 0
	for v, lst := range x.binsAt {
		if v == 0 || len(lst) == 0 {
			continue
		}
		if s := int64(v) * int64(len(lst)) * x.extP(v-1); s != 0 {
			x.xval[v] = s
			x.xw.Add(v, s)
			x.xTotal += s
		}
	}
}

// grow extends the indexed level range to cover `need` and rebuilds the
// trees from the lists (amortized O(1) per transition by doubling).
func (x *levelIndex) grow(need int) {
	size := x.size
	for size <= need {
		size *= 2
	}
	ext := make([][]int32, size-len(x.binsAt))
	x.binsAt = append(x.binsAt, ext...)
	x.sval = append(x.sval, make([]int64, size-len(x.sval))...)
	x.size = size
	x.rebuildTrees()
}

// transition records that bin moved from level `from` to level `to`
// (|from−to| = 1). It updates the lists, the count and ball-weight trees,
// and refreshes the move weight at exactly the levels whose inputs
// changed: count at from/to, and C at min(from,to) which feeds
// s[min+gap] — for gap = 1 that is s[max], already refreshed; for
// gap = 2 it is the extra level max+1.
func (x *levelIndex) transition(bin, from, to int) {
	if to >= x.size {
		x.grow(to)
	}
	lst := x.binsAt[from]
	p := x.pos[bin]
	last := lst[len(lst)-1]
	lst[p] = last
	x.pos[last] = p
	x.binsAt[from] = lst[:len(lst)-1]
	x.pos[bin] = int32(len(x.binsAt[to]))
	x.binsAt[to] = append(x.binsAt[to], int32(bin))

	x.cnt.Add(from, -1)
	x.cnt.Add(to, 1)
	if from > 0 {
		x.bal.Add(from, int64(-from))
	}
	if to > 0 {
		x.bal.Add(to, int64(to))
	}
	x.refreshWeight(from)
	x.refreshWeight(to)
	if x.gap > 1 {
		lo := from
		if to < lo {
			lo = to
		}
		// C(lo) changed; it feeds s[lo+gap], which for gap > 1 is neither
		// `from` nor `to`. Levels at or past x.size hold no bins (s = 0).
		if u := lo + x.gap; u < x.size {
			x.refreshWeight(u)
		}
	}
	if x.extP != nil {
		x.refreshExternal(from)
		x.refreshExternal(to)
	}
}

// refreshWeight recomputes s[v] = v·count[v]·C(v−gap) from the live
// trees and applies the difference as a point update.
func (x *levelIndex) refreshWeight(v int) {
	var s int64
	if v > 0 {
		if cn := int64(len(x.binsAt[v])); cn > 0 {
			s = int64(v) * cn * x.cnt.Prefix(v-x.gap)
		}
	}
	if d := s - x.sval[v]; d != 0 {
		x.mvw.Add(v, d)
		x.sval[v] = s
		x.wTotal += d
	}
}

// refreshExternal recomputes x[v] = v·count[v]·extP(v−1) and applies the
// difference as a point update; the external prefix is fixed between
// barriers, so only count changes (level transitions) can dirty x.
func (x *levelIndex) refreshExternal(v int) {
	var s int64
	if v > 0 {
		if cn := int64(len(x.binsAt[v])); cn > 0 {
			s = int64(v) * cn * x.extP(v-1)
		}
	}
	if d := s - x.xval[v]; d != 0 {
		x.xw.Add(v, d)
		x.xval[v] = s
		x.xTotal += d
	}
}

// clone returns an independent deep copy of the index.
func (x *levelIndex) clone() *levelIndex {
	cp := &levelIndex{
		gap:    x.gap,
		binsAt: make([][]int32, len(x.binsAt)),
		pos:    append([]int32(nil), x.pos...),
		cnt:    x.cnt.Clone(),
		bal:    x.bal.Clone(),
		mvw:    x.mvw.Clone(),
		sval:   append([]int64(nil), x.sval...),
		wTotal: x.wTotal,
		size:   x.size,
		extP:   x.extP, // shared: the prefix reads caller-owned snapshot state
		xval:   append([]int64(nil), x.xval...),
		xTotal: x.xTotal,
	}
	if x.xw != nil {
		cp.xw = x.xw.Clone()
	}
	for v, lst := range x.binsAt {
		if len(lst) > 0 {
			cp.binsAt[v] = append([]int32(nil), lst...)
		}
	}
	return cp
}

// EnableLevelIndex builds the level index over the current configuration
// for plain RLS (tie gap 1). Subsequent Move/AddBall/RemoveBall calls
// maintain it incrementally in O(log Δ); until enabled, Config carries no
// index and pays nothing. Enabling twice is a no-op.
func (c *Config) EnableLevelIndex() { c.enableLevelIndex(1) }

// EnableStrictLevelIndex builds the level index for the strict tie rule
// of [12]/[11] (tie gap 2): the move weight becomes
// W' = Σ_v v·count[v]·C(v−2) and SampleMovePair draws destinations with
// load ≤ v−2, matching the rule that forbids neutral moves. Everything
// else — maintenance cost, churn updates, SampleBallBin — is unchanged.
func (c *Config) EnableStrictLevelIndex() { c.enableLevelIndex(2) }

func (c *Config) enableLevelIndex(gap int) {
	if c.idx == nil {
		c.idx = newLevelIndex(c, gap)
		return
	}
	if c.idx.gap != gap {
		panic("loadvec: level index already enabled with a different tie rule")
	}
}

// LevelIndexed reports whether the level index is enabled.
func (c *Config) LevelIndexed() bool { return c.idx != nil }

// TieGap returns the enabled index's tie gap (1 = plain, 2 = strict), or
// 0 when no level index is enabled.
func (c *Config) TieGap() int {
	if c.idx == nil {
		return 0
	}
	return c.idx.gap
}

// MoveWeight returns W = Σ_v v·count[v]·C(v−gap), where C(w) is the
// number of bins with load ≤ w and gap is the index's tie rule (1 plain,
// 2 strict). W/(m·n) is exactly the probability that a uniform ball
// activation is a productive move under that rule; W = 0 iff no eligible
// (src, dst) pair exists — for gap 1 iff every bin holds the same load,
// for gap 2 iff max − min ≤ 1 (i.e. the configuration is perfect). It
// panics unless the level index is enabled.
func (c *Config) MoveWeight() int64 {
	if c.idx == nil {
		panic("loadvec: MoveWeight without EnableLevelIndex")
	}
	return c.idx.wTotal
}

// SampleMovePair draws a productive move (src, dst) with the exact law
// of the embedded jump chain under the index's tie rule: P(src at level
// v, dst at level w) ∝ v·count[v]·count[w] for w ≤ v−gap, uniform over
// the bins within each level. It panics if the index is disabled or no
// productive move exists (MoveWeight 0).
func (c *Config) SampleMovePair(r *rng.RNG) (src, dst int) {
	x := c.idx
	if x == nil {
		panic("loadvec: SampleMovePair without EnableLevelIndex")
	}
	if x.wTotal <= 0 {
		panic("loadvec: SampleMovePair with zero move weight")
	}
	v, _ := x.mvw.Find(r.Int63n(x.wTotal))
	lst := x.binsAt[v]
	src = int(lst[r.Intn(len(lst))])
	below := x.cnt.Prefix(v - x.gap) // ≥ 1: s[v] > 0 requires an eligible level
	w, rem := x.cnt.Find(r.Int63n(below))
	dst = int(x.binsAt[w][rem])
	return src, dst
}

// SetExternalPrefix installs (or, with nil, removes) an external
// destination population on the level index: ext(w) must return the
// number of external bins — bins outside this configuration, at whatever
// reference loads the caller fixes, e.g. another shard's stale snapshot —
// with load ≤ w, monotone in w and constant until the next call. The
// index then maintains X = Σ_v v·count[v]·ext(v−1) incrementally, the
// external analogue of the move weight W: X/(m·n_total) is the
// probability that a uniform activation proposes a move onto an external
// bin that passes the load filter. Installation costs one pass over the
// indexed levels; it panics unless the level index is enabled.
func (c *Config) SetExternalPrefix(ext func(w int) int64) {
	if c.idx == nil {
		panic("loadvec: SetExternalPrefix without EnableLevelIndex")
	}
	if ext != nil && c.idx.gap != 1 {
		// The sharded engines that consume the external extension run plain
		// RLS only; the x-tree hard-codes the ext(v−1) prefix shift.
		panic("loadvec: external prefix requires the plain tie rule")
	}
	c.idx.extP = ext
	if ext == nil {
		c.idx.xw = nil
		for i := range c.idx.xval {
			c.idx.xval[i] = 0
		}
		c.idx.xTotal = 0
		return
	}
	c.idx.rebuildExternal()
}

// ExternalPrefixUpdated tells the level index that the installed external
// prefix's values may have changed for arguments w ∈ [lo, hi] — and only
// there — and refreshes the affected external weights x[v] =
// v·count[v]·ext(v−1), i.e. v ∈ [lo+1, hi+1], in O((hi−lo)·log Δ). It is
// the delta counterpart of reinstalling the prefix with SetExternalPrefix,
// which pays a full pass over the indexed levels: when one external bin's
// reference load moves from a to b, ext changes only on
// [min(a,b), max(a,b)−1], so the sharded jump engine's barriers advertise
// exactly that window per reconciled bin instead of rebuilding every
// shard's external tree. The prefix function itself must already return
// the new values when this is called. With no external prefix installed it
// is a no-op; it panics unless the level index is enabled.
func (c *Config) ExternalPrefixUpdated(lo, hi int) {
	if c.idx == nil {
		panic("loadvec: ExternalPrefixUpdated without EnableLevelIndex")
	}
	x := c.idx
	if x.extP == nil {
		return
	}
	v0, v1 := lo+1, hi+1
	if v0 < 1 {
		v0 = 1
	}
	if v1 >= x.size {
		// Levels past the indexed range hold no bins (count 0 ⇒ x[v] = 0).
		v1 = x.size - 1
	}
	for v := v0; v <= v1; v++ {
		x.refreshExternal(v)
	}
}

// ExternalMoveWeight returns X = Σ_v v·count[v]·ext(v−1) for the
// installed external prefix, or 0 when none is installed. It panics
// unless the level index is enabled.
func (c *Config) ExternalMoveWeight() int64 {
	if c.idx == nil {
		panic("loadvec: ExternalMoveWeight without EnableLevelIndex")
	}
	return c.idx.xTotal
}

// SampleExternalMove draws a proposal onto the external population with
// the jump chain's law: P(src at level v) ∝ v·count[v]·ext(v−1), src
// uniform within the level, and j uniform over [0, ext(v−1)) — the
// caller maps j onto its concrete external bin with load ≤ v−1. It
// panics if no external prefix is installed or X = 0.
func (c *Config) SampleExternalMove(r *rng.RNG) (src int, j int64) {
	x := c.idx
	if x == nil || x.extP == nil {
		panic("loadvec: SampleExternalMove without an external prefix")
	}
	if x.xTotal <= 0 {
		panic("loadvec: SampleExternalMove with zero external weight")
	}
	v, rem := x.xw.Find(r.Int63n(x.xTotal))
	ext := x.extP(v - 1)
	cn := int64(len(x.binsAt[v]))
	// rem is uniform over [0, v·cn·ext); folding out the ball-multiplicity
	// factor v leaves a uniform (bin, external index) pair.
	q := rem % (cn * ext)
	return int(x.binsAt[v][q/ext]), q % ext
}

// SampleBallBin returns the bin of a uniformly random ball (bins sampled
// proportionally to load, uniform within a level) in O(log Δ) without any
// per-ball state. It panics if the index is disabled or no balls exist.
func (c *Config) SampleBallBin(r *rng.RNG) int {
	x := c.idx
	if x == nil {
		panic("loadvec: SampleBallBin without EnableLevelIndex")
	}
	if c.m == 0 {
		panic("loadvec: SampleBallBin with no balls")
	}
	v, rem := x.bal.Find(r.Int63n(int64(c.m)))
	return int(x.binsAt[v][rem/int64(v)])
}

// validateIndex cross-checks every piece of level-index state against a
// from-scratch recompute; part of Validate.
func (c *Config) validateIndex() error {
	x := c.idx
	if x == nil {
		return nil
	}
	if c.max >= x.size {
		return fmt.Errorf("loadvec: index covers %d levels, max load is %d", x.size, c.max)
	}
	for i, v := range c.loads {
		p := int(x.pos[i])
		if v >= len(x.binsAt) || p >= len(x.binsAt[v]) || x.binsAt[v][p] != int32(i) {
			return fmt.Errorf("loadvec: bin %d (load %d) not at binsAt[%d][%d]", i, v, v, p)
		}
	}
	var total int
	var wTotal, xTotal int64
	var cum, cumPrev int64 // C(v−1) and C(v−2), tracked independently
	for v := 0; v < x.size; v++ {
		cn := len(x.binsAt[v])
		total += cn
		if cn != c.CountAt(v) {
			return fmt.Errorf("loadvec: binsAt[%d] has %d bins, histogram says %d", v, cn, c.CountAt(v))
		}
		if got := x.cnt.Prefix(v) - x.cnt.Prefix(v-1); got != int64(cn) {
			return fmt.Errorf("loadvec: cnt tree at %d = %d, want %d", v, got, cn)
		}
		if got := x.bal.Prefix(v) - x.bal.Prefix(v-1); got != int64(v)*int64(cn) {
			return fmt.Errorf("loadvec: bal tree at %d = %d, want %d", v, got, int64(v)*int64(cn))
		}
		elig := cum // C(v−1) for plain, C(v−2) for strict
		if x.gap == 2 {
			elig = cumPrev
		}
		want := int64(v) * int64(cn) * elig // s[v] = v·count[v]·C(v−gap)
		if x.sval[v] != want {
			return fmt.Errorf("loadvec: sval[%d] = %d, want %d", v, x.sval[v], want)
		}
		if got := x.mvw.Prefix(v) - x.mvw.Prefix(v-1); got != want {
			return fmt.Errorf("loadvec: mvw tree at %d = %d, want %d", v, got, want)
		}
		if x.extP != nil {
			wantX := int64(0)
			if v > 0 && cn > 0 {
				wantX = int64(v) * int64(cn) * x.extP(v-1)
			}
			if x.xval[v] != wantX {
				return fmt.Errorf("loadvec: xval[%d] = %d, want %d", v, x.xval[v], wantX)
			}
			if got := x.xw.Prefix(v) - x.xw.Prefix(v-1); got != wantX {
				return fmt.Errorf("loadvec: xw tree at %d = %d, want %d", v, got, wantX)
			}
			xTotal += wantX
		}
		cumPrev = cum
		cum += int64(cn)
		wTotal += want
	}
	if total != c.n {
		return fmt.Errorf("loadvec: index holds %d bins, want %d", total, c.n)
	}
	if x.wTotal != wTotal {
		return fmt.Errorf("loadvec: cached W = %d, fresh %d", x.wTotal, wTotal)
	}
	if x.extP != nil && x.xTotal != xTotal {
		return fmt.Errorf("loadvec: cached X = %d, fresh %d", x.xTotal, xTotal)
	}
	return nil
}

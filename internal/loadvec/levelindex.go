package loadvec

import (
	"fmt"

	"repro/internal/rng"
)

// levelIndex is the opt-in structure behind the rejection-free jump
// engine. It organizes the bins by load level and maintains, under the
// same single-bin level transitions that drive the histogram, everything
// the jump chain needs to sample a *productive* RLS move exactly:
//
//   - binsAt[v] lists the bins currently at load v (swap-delete, O(1)),
//     so a uniform bin within a level is one array index;
//   - cnt is a Fenwick tree over count[v], giving the prefix bin count
//     C(v) = #{bins with load ≤ v} and weighted level sampling for the
//     destination side;
//   - bal is a Fenwick tree over v·count[v] (total weight m), giving
//     load-proportional — i.e. uniform-ball — bin sampling;
//   - mvw is a Fenwick tree over the per-level move weight
//     s[v] = v·count[v]·C(v−1), whose total W = Σ_v s[v] is exactly
//     (m·n)·P(a uniform activation is a productive move): the activated
//     ball sits at level v with probability v·count[v]/m and its uniform
//     destination accepts with probability C(v−1)/n.
//
// A level transition touches count at two adjacent levels and C at one,
// so only two s-entries change and every update is O(log Δ) in the
// indexed level range. The index is self-contained: it reads only its own
// lists and trees, never the Config histogram mid-update, so the two
// transitions of a Move may be applied sequentially.
type levelIndex struct {
	binsAt [][]int32 // level -> bins at that level (unordered)
	pos    []int32   // bin -> position within binsAt[load]
	cnt    *fenwick  // count[v]
	bal    *fenwick  // v·count[v]
	mvw    *fenwick  // s[v] = v·count[v]·C(v−1)
	sval   []int64   // current s[v] values (to derive Fenwick deltas)
	wTotal int64     // W = Σ_v s[v]
	size   int       // number of indexed levels (levels 0..size-1)
}

// fenwick is a 1-based Fenwick (binary indexed) tree over int64 values
// with the standard O(log n) point update, prefix sum, and weighted-find
// descend.
type fenwick struct {
	tree []int64
	n    int
	top  int // highest power of two ≤ n
}

func newFenwick(n int) *fenwick {
	f := &fenwick{tree: make([]int64, n+1), n: n, top: 1}
	for f.top*2 <= n {
		f.top *= 2
	}
	return f
}

// add adds delta to the value at 0-based index i.
func (f *fenwick) add(i int, delta int64) {
	for pos := i + 1; pos <= f.n; pos += pos & (-pos) {
		f.tree[pos] += delta
	}
}

// prefix returns the sum of values at 0-based indices 0..i (0 for i < 0).
func (f *fenwick) prefix(i int) int64 {
	var s int64
	for pos := i + 1; pos > 0; pos -= pos & (-pos) {
		s += f.tree[pos]
	}
	return s
}

// find returns the smallest 0-based index i with prefix(i) > target,
// plus the remainder target − prefix(i−1) ∈ [0, value(i)). The caller
// guarantees 0 ≤ target < total.
func (f *fenwick) find(target int64) (int, int64) {
	pos := 0
	for step := f.top; step > 0; step >>= 1 {
		if next := pos + step; next <= f.n && f.tree[next] <= target {
			pos = next
			target -= f.tree[next]
		}
	}
	return pos, target
}

// newLevelIndex builds the index for the configuration's current state.
func newLevelIndex(c *Config) *levelIndex {
	size := 4
	for size <= c.max+1 {
		size *= 2
	}
	x := &levelIndex{
		binsAt: make([][]int32, size),
		pos:    make([]int32, c.n),
		sval:   make([]int64, size),
		size:   size,
	}
	for i, v := range c.loads {
		x.pos[i] = int32(len(x.binsAt[v]))
		x.binsAt[v] = append(x.binsAt[v], int32(i))
	}
	x.rebuildTrees()
	return x
}

// rebuildTrees derives all three Fenwick trees (and sval/wTotal) from the
// binsAt lists alone. Used on construction and when the level range grows.
func (x *levelIndex) rebuildTrees() {
	x.cnt = newFenwick(x.size)
	x.bal = newFenwick(x.size)
	x.mvw = newFenwick(x.size)
	x.wTotal = 0
	for v, lst := range x.binsAt {
		if len(lst) == 0 {
			continue
		}
		x.cnt.add(v, int64(len(lst)))
		if v > 0 {
			x.bal.add(v, int64(v)*int64(len(lst)))
		}
	}
	for v := range x.sval {
		x.sval[v] = 0
		if v > 0 {
			if cn := int64(len(x.binsAt[v])); cn > 0 {
				x.sval[v] = int64(v) * cn * x.cnt.prefix(v-1)
			}
		}
		if x.sval[v] != 0 {
			x.mvw.add(v, x.sval[v])
			x.wTotal += x.sval[v]
		}
	}
}

// grow extends the indexed level range to cover `need` and rebuilds the
// trees from the lists (amortized O(1) per transition by doubling).
func (x *levelIndex) grow(need int) {
	size := x.size
	for size <= need {
		size *= 2
	}
	ext := make([][]int32, size-len(x.binsAt))
	x.binsAt = append(x.binsAt, ext...)
	x.sval = append(x.sval, make([]int64, size-len(x.sval))...)
	x.size = size
	x.rebuildTrees()
}

// transition records that bin moved from level `from` to level `to`
// (|from−to| = 1). It updates the lists, the count and ball-weight trees,
// and refreshes the move weight at exactly the two levels whose inputs
// changed: count at from/to, and C at min(from,to) which feeds
// s[min+1] = s[max].
func (x *levelIndex) transition(bin, from, to int) {
	if to >= x.size {
		x.grow(to)
	}
	lst := x.binsAt[from]
	p := x.pos[bin]
	last := lst[len(lst)-1]
	lst[p] = last
	x.pos[last] = p
	x.binsAt[from] = lst[:len(lst)-1]
	x.pos[bin] = int32(len(x.binsAt[to]))
	x.binsAt[to] = append(x.binsAt[to], int32(bin))

	x.cnt.add(from, -1)
	x.cnt.add(to, 1)
	if from > 0 {
		x.bal.add(from, int64(-from))
	}
	if to > 0 {
		x.bal.add(to, int64(to))
	}
	x.refreshWeight(from)
	x.refreshWeight(to)
}

// refreshWeight recomputes s[v] = v·count[v]·C(v−1) from the live trees
// and applies the difference as a point update.
func (x *levelIndex) refreshWeight(v int) {
	var s int64
	if v > 0 {
		if cn := int64(len(x.binsAt[v])); cn > 0 {
			s = int64(v) * cn * x.cnt.prefix(v-1)
		}
	}
	if d := s - x.sval[v]; d != 0 {
		x.mvw.add(v, d)
		x.sval[v] = s
		x.wTotal += d
	}
}

// clone returns an independent deep copy of the index.
func (x *levelIndex) clone() *levelIndex {
	cp := &levelIndex{
		binsAt: make([][]int32, len(x.binsAt)),
		pos:    append([]int32(nil), x.pos...),
		cnt:    &fenwick{tree: append([]int64(nil), x.cnt.tree...), n: x.cnt.n, top: x.cnt.top},
		bal:    &fenwick{tree: append([]int64(nil), x.bal.tree...), n: x.bal.n, top: x.bal.top},
		mvw:    &fenwick{tree: append([]int64(nil), x.mvw.tree...), n: x.mvw.n, top: x.mvw.top},
		sval:   append([]int64(nil), x.sval...),
		wTotal: x.wTotal,
		size:   x.size,
	}
	for v, lst := range x.binsAt {
		if len(lst) > 0 {
			cp.binsAt[v] = append([]int32(nil), lst...)
		}
	}
	return cp
}

// EnableLevelIndex builds the level index over the current configuration.
// Subsequent Move/AddBall/RemoveBall calls maintain it incrementally in
// O(log Δ); until enabled, Config carries no index and pays nothing.
// Enabling twice is a no-op.
func (c *Config) EnableLevelIndex() {
	if c.idx == nil {
		c.idx = newLevelIndex(c)
	}
}

// LevelIndexed reports whether the level index is enabled.
func (c *Config) LevelIndexed() bool { return c.idx != nil }

// MoveWeight returns W = Σ_v v·count[v]·C(v−1), where C(w) is the number
// of bins with load ≤ w. W/(m·n) is exactly the probability that a
// uniform ball activation is a productive RLS move, and W = 0 iff every
// bin holds the same load. It panics unless the level index is enabled.
func (c *Config) MoveWeight() int64 {
	if c.idx == nil {
		panic("loadvec: MoveWeight without EnableLevelIndex")
	}
	return c.idx.wTotal
}

// SampleMovePair draws a productive RLS move (src, dst) with the exact
// law of the embedded jump chain: P(src at level v, dst at level w) ∝
// v·count[v]·count[w] for w ≤ v−1, uniform over the bins within each
// level. It panics if the index is disabled or no productive move exists
// (MoveWeight 0).
func (c *Config) SampleMovePair(r *rng.RNG) (src, dst int) {
	x := c.idx
	if x == nil {
		panic("loadvec: SampleMovePair without EnableLevelIndex")
	}
	if x.wTotal <= 0 {
		panic("loadvec: SampleMovePair with zero move weight")
	}
	v, _ := x.mvw.find(r.Int63n(x.wTotal))
	lst := x.binsAt[v]
	src = int(lst[r.Intn(len(lst))])
	below := x.cnt.prefix(v - 1) // ≥ 1: s[v] > 0 requires a lower level
	w, rem := x.cnt.find(r.Int63n(below))
	dst = int(x.binsAt[w][rem])
	return src, dst
}

// SampleBallBin returns the bin of a uniformly random ball (bins sampled
// proportionally to load, uniform within a level) in O(log Δ) without any
// per-ball state. It panics if the index is disabled or no balls exist.
func (c *Config) SampleBallBin(r *rng.RNG) int {
	x := c.idx
	if x == nil {
		panic("loadvec: SampleBallBin without EnableLevelIndex")
	}
	if c.m == 0 {
		panic("loadvec: SampleBallBin with no balls")
	}
	v, rem := x.bal.find(r.Int63n(int64(c.m)))
	return int(x.binsAt[v][rem/int64(v)])
}

// validateIndex cross-checks every piece of level-index state against a
// from-scratch recompute; part of Validate.
func (c *Config) validateIndex() error {
	x := c.idx
	if x == nil {
		return nil
	}
	if c.max >= x.size {
		return fmt.Errorf("loadvec: index covers %d levels, max load is %d", x.size, c.max)
	}
	for i, v := range c.loads {
		p := int(x.pos[i])
		if v >= len(x.binsAt) || p >= len(x.binsAt[v]) || x.binsAt[v][p] != int32(i) {
			return fmt.Errorf("loadvec: bin %d (load %d) not at binsAt[%d][%d]", i, v, v, p)
		}
	}
	var total int
	var wTotal int64
	var cum int64
	for v := 0; v < x.size; v++ {
		cn := len(x.binsAt[v])
		total += cn
		if cn != c.CountAt(v) {
			return fmt.Errorf("loadvec: binsAt[%d] has %d bins, histogram says %d", v, cn, c.CountAt(v))
		}
		if got := x.cnt.prefix(v) - x.cnt.prefix(v-1); got != int64(cn) {
			return fmt.Errorf("loadvec: cnt tree at %d = %d, want %d", v, got, cn)
		}
		if got := x.bal.prefix(v) - x.bal.prefix(v-1); got != int64(v)*int64(cn) {
			return fmt.Errorf("loadvec: bal tree at %d = %d, want %d", v, got, int64(v)*int64(cn))
		}
		want := int64(v) * int64(cn) * cum // s[v] = v·count[v]·C(v−1)
		if x.sval[v] != want {
			return fmt.Errorf("loadvec: sval[%d] = %d, want %d", v, x.sval[v], want)
		}
		if got := x.mvw.prefix(v) - x.mvw.prefix(v-1); got != want {
			return fmt.Errorf("loadvec: mvw tree at %d = %d, want %d", v, got, want)
		}
		cum += int64(cn)
		wTotal += want
	}
	if total != c.n {
		return fmt.Errorf("loadvec: index holds %d bins, want %d", total, c.n)
	}
	if x.wTotal != wTotal {
		return fmt.Errorf("loadvec: cached W = %d, fresh %d", x.wTotal, wTotal)
	}
	return nil
}

package loadvec

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// scratchMoveWeight recomputes W = Σ_v v·count[v]·C(v−1) from the raw
// load vector, the definition the index must track.
func scratchMoveWeight(v Vector) int64 {
	maxLoad := 0
	for _, x := range v {
		if x > maxLoad {
			maxLoad = x
		}
	}
	count := make([]int64, maxLoad+1)
	for _, x := range v {
		count[x]++
	}
	var w, cum int64
	for lvl := 0; lvl <= maxLoad; lvl++ {
		w += int64(lvl) * count[lvl] * cum
		cum += count[lvl]
	}
	return w
}

// randomCfg builds an indexed Config over a random load vector.
func randomCfg(r *rng.RNG, n, maxLoad int) *Config {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.Intn(maxLoad + 1)
	}
	if v.Balls() == 0 {
		v[0] = 1
	}
	c := NewConfig(v)
	c.EnableLevelIndex()
	return c
}

// TestLevelIndexInterleavedProperty drives an indexed Config through long
// random interleavings of protocol moves, destructive moves, and churn,
// validating the full index state against a from-scratch recompute.
func TestLevelIndexInterleavedProperty(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(24)
		c := randomCfg(r, n, 8)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d setup: %v", trial, err)
		}
		for step := 0; step < 300; step++ {
			switch r.Intn(4) {
			case 0: // protocol-legal move
				src := r.Intn(n)
				dst := r.Intn(n)
				if src != dst && c.Load(src) >= c.Load(dst)+1 {
					c.Move(src, dst)
				}
			case 1: // destructive move (may raise the max arbitrarily)
				src := r.Intn(n)
				dst := r.Intn(n)
				if src != dst && c.Load(src) > 0 {
					c.Move(src, dst)
				}
			case 2:
				c.AddBall(r.Intn(n))
			case 3:
				if bin := r.Intn(n); c.Load(bin) > 0 && c.M() > 1 {
					c.RemoveBall(bin)
				}
			}
			if step%37 == 0 {
				if err := c.Validate(); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				if got, want := c.MoveWeight(), scratchMoveWeight(c.Loads()); got != want {
					t.Fatalf("trial %d step %d: W = %d, want %d", trial, step, got, want)
				}
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
	}
}

// TestLevelIndexGrowth pushes the max load far past the initial index
// capacity through destructive moves and checks the rebuild.
func TestLevelIndexGrowth(t *testing.T) {
	c := NewConfig(Vector{3, 3, 3, 3})
	c.EnableLevelIndex()
	for i := 0; i < 8; i++ { // pile everything onto bin 0
		for c.Load(1+i%3) > 0 {
			c.Move(1+i%3, 0)
		}
	}
	if c.Max() < 8 {
		t.Fatalf("max = %d, growth not exercised", c.Max())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.MoveWeight(), scratchMoveWeight(c.Loads()); got != want {
		t.Fatalf("W = %d, want %d", got, want)
	}
}

func TestMoveWeightZeroIffFlat(t *testing.T) {
	c := NewConfig(Vector{2, 2, 2})
	c.EnableLevelIndex()
	if c.MoveWeight() != 0 {
		t.Fatalf("flat config has W = %d", c.MoveWeight())
	}
	c.AddBall(0) // loads {3,2,2}: W = 3·1·2 (src level 3, two bins below)
	if c.MoveWeight() != 6 {
		t.Fatalf("W = %d, want 6", c.MoveWeight())
	}
	c.RemoveBall(0)
	if c.MoveWeight() != 0 {
		t.Fatalf("W back to flat = %d", c.MoveWeight())
	}
}

// TestSampleMovePairLaw checks both the hard validity constraint (every
// sampled pair is a productive RLS move) and the exact marginal law: a
// pair (src bin i, dst bin j) must appear with probability ℓ_i/W for each
// j with ℓ_j ≤ ℓ_i − 1.
func TestSampleMovePairLaw(t *testing.T) {
	r := rng.New(77)
	v := Vector{5, 3, 3, 1, 0}
	c := NewConfig(v)
	c.EnableLevelIndex()
	W := float64(c.MoveWeight())
	if int64(W) != scratchMoveWeight(v) {
		t.Fatalf("W = %g, want %d", W, scratchMoveWeight(v))
	}
	const draws = 200000
	counts := map[[2]int]int{}
	for i := 0; i < draws; i++ {
		src, dst := c.SampleMovePair(r)
		if c.Load(src) < c.Load(dst)+1 {
			t.Fatalf("illegal pair (%d,%d): loads %d,%d", src, dst, c.Load(src), c.Load(dst))
		}
		counts[[2]int{src, dst}]++
	}
	for src := range v {
		for dst := range v {
			if src == dst || v[src] < v[dst]+1 {
				continue
			}
			want := float64(v[src]) / W * draws
			got := float64(counts[[2]int{src, dst}])
			if sigma := math.Sqrt(want); math.Abs(got-want) > 5*sigma+1 {
				t.Errorf("pair (%d,%d): %g draws, want %g ± %g", src, dst, got, want, 5*sigma)
			}
		}
	}
}

// TestSampleBallBinLaw checks load-proportional bin sampling (the uniform
// ball draw the jump-mode session uses for churn departures).
func TestSampleBallBinLaw(t *testing.T) {
	r := rng.New(99)
	v := Vector{7, 1, 0, 4, 4}
	c := NewConfig(v)
	c.EnableLevelIndex()
	const draws = 160000
	counts := make([]int, len(v))
	for i := 0; i < draws; i++ {
		counts[c.SampleBallBin(r)]++
	}
	m := float64(v.Balls())
	for bin, load := range v {
		want := float64(load) / m * draws
		if sigma := math.Sqrt(want); math.Abs(float64(counts[bin])-want) > 5*sigma+1 {
			t.Errorf("bin %d: %d draws, want %g ± %g", bin, counts[bin], want, 5*sigma)
		}
	}
}

func TestLevelIndexCloneIndependent(t *testing.T) {
	c := randomCfg(rng.New(5), 12, 6)
	cp := c.Clone()
	if !cp.LevelIndexed() {
		t.Fatal("clone dropped the index")
	}
	r := rng.New(6)
	for i := 0; i < 100; i++ {
		if w := cp.MoveWeight(); w > 0 {
			src, dst := cp.SampleMovePair(r)
			cp.Move(src, dst)
		}
		c.AddBall(r.Intn(c.N()))
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("original after clone mutation: %v", err)
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone after mutation: %v", err)
	}
}

func TestLevelIndexPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MoveWeight without index":     func() { NewConfig(Vector{1, 0}).MoveWeight() },
		"SampleMovePair without index": func() { NewConfig(Vector{1, 0}).SampleMovePair(rng.New(1)) },
		"SampleBallBin without index":  func() { NewConfig(Vector{1, 0}).SampleBallBin(rng.New(1)) },
		"SampleMovePair flat": func() {
			c := NewConfig(Vector{1, 1})
			c.EnableLevelIndex()
			c.SampleMovePair(rng.New(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// scratchExternalWeight recomputes X = Σ_v v·count[v]·ext(v−1) from the
// raw load vector, the definition the external extension must track.
func scratchExternalWeight(v Vector, ext func(int) int64) int64 {
	var x int64
	for _, l := range v {
		if l > 0 {
			x += int64(l) * ext(l-1)
		}
	}
	return x
}

// TestExternalPrefixProperty drives an indexed Config with an installed
// external prefix through random moves and churn, validating the x-tree
// against a from-scratch recompute after every prefix swap.
func TestExternalPrefixProperty(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(16)
		c := randomCfg(r, n, 6)
		// A fresh random external population per round, as the sharded jump
		// engine installs per barrier.
		var extCum []int64
		newExt := func() func(int) int64 {
			levels := 1 + r.Intn(12)
			extCum = make([]int64, levels)
			run := int64(0)
			for u := range extCum {
				run += int64(r.Intn(5))
				extCum[u] = run
			}
			return func(w int) int64 {
				if w < 0 {
					return 0
				}
				if w >= len(extCum) {
					w = len(extCum) - 1
				}
				return extCum[w]
			}
		}
		for round := 0; round < 10; round++ {
			ext := newExt()
			c.SetExternalPrefix(ext)
			for step := 0; step < 60; step++ {
				switch r.Intn(3) {
				case 0:
					src, dst := r.Intn(n), r.Intn(n)
					if src != dst && c.Load(src) >= c.Load(dst)+1 {
						c.Move(src, dst)
					}
				case 1:
					c.AddBall(r.Intn(n))
				case 2:
					if bin := r.Intn(n); c.M() > 1 && c.Load(bin) > 0 {
						c.RemoveBall(bin)
					}
				}
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			if got, want := c.ExternalMoveWeight(), scratchExternalWeight(c.Loads(), ext); got != want {
				t.Fatalf("trial %d round %d: X = %d, want %d", trial, round, got, want)
			}
		}
		c.SetExternalPrefix(nil)
		if c.ExternalMoveWeight() != 0 {
			t.Fatal("X nonzero after removing the prefix")
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSampleExternalMoveLaw checks the marginal source-level law of
// SampleExternalMove against the exact x[v] weights, and that every
// returned index falls below the prefix at the source's level.
func TestSampleExternalMoveLaw(t *testing.T) {
	c := NewConfig(Vector{0, 1, 1, 2, 3})
	c.EnableLevelIndex()
	extCum := []int64{2, 3, 5, 7}
	ext := func(w int) int64 {
		if w < 0 {
			return 0
		}
		if w >= len(extCum) {
			w = len(extCum) - 1
		}
		return extCum[w]
	}
	c.SetExternalPrefix(ext)
	// x[1] = 1·2·ext(0) = 4, x[2] = 2·1·ext(1) = 6, x[3] = 3·1·ext(2) = 15.
	if got := c.ExternalMoveWeight(); got != 25 {
		t.Fatalf("X = %d, want 25", got)
	}
	r := rng.New(99)
	const draws = 200000
	byLevel := map[int]int{}
	for i := 0; i < draws; i++ {
		src, j := c.SampleExternalMove(r)
		v := c.Load(src)
		if j < 0 || j >= ext(v-1) {
			t.Fatalf("index %d outside [0, ext(%d)=%d)", j, v-1, ext(v-1))
		}
		byLevel[v]++
	}
	want := map[int]float64{1: 4.0 / 25, 2: 6.0 / 25, 3: 15.0 / 25}
	for v, w := range want {
		got := float64(byLevel[v]) / draws
		if math.Abs(got-w) > 0.01 {
			t.Errorf("P(src level %d) = %g, want %g", v, got, w)
		}
	}
}

package loadvec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewConfigStats(t *testing.T) {
	c := NewConfig(Vector{6, 5, 4, 4, 3, 2})
	if c.N() != 6 || c.M() != 24 {
		t.Fatalf("n/m = %d/%d", c.N(), c.M())
	}
	if c.Min() != 2 || c.Max() != 6 {
		t.Errorf("min/max = %d/%d", c.Min(), c.Max())
	}
	if c.Disc() != 2 {
		t.Errorf("disc = %g", c.Disc())
	}
	h, r, k := c.AboveBelow()
	if h != 2 || r != 2 || k != 2 {
		t.Errorf("h/r/k = %d/%d/%d", h, r, k)
	}
	if c.OverloadedBalls() != 3 {
		t.Errorf("A = %g", c.OverloadedBalls())
	}
	if c.Potential() != 3*3-2-2 {
		t.Errorf("potential = %g", c.Potential())
	}
}

func TestConfigMoveBasic(t *testing.T) {
	c := NewConfig(Vector{3, 1})
	c.Move(0, 1)
	if c.Load(0) != 2 || c.Load(1) != 2 {
		t.Fatalf("loads after move: %v", c.Loads())
	}
	if !c.IsPerfect() {
		t.Error("should be perfect after equalizing")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigMovePanics(t *testing.T) {
	c := NewConfig(Vector{1, 0})
	for _, tc := range []struct {
		name     string
		src, dst int
	}{
		{"same bin", 0, 0},
		{"empty source", 1, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			c.Move(tc.src, tc.dst)
		}()
	}
}

func TestConfigDestructiveGrowth(t *testing.T) {
	// Destructive moves can push a bin far above the initial max; the
	// histogram must grow. Stack everything into bin 0.
	v := make(Vector, 8)
	for i := range v {
		v[i] = 2
	}
	c := NewConfig(v)
	for i := 1; i < 8; i++ {
		for c.Load(i) > 0 {
			c.Move(i, 0)
		}
	}
	if c.Load(0) != 16 || c.Max() != 16 || c.Min() != 0 {
		t.Fatalf("after stacking: %v (min=%d max=%d)", c.Loads(), c.Min(), c.Max())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigSnapshotIndependent(t *testing.T) {
	c := NewConfig(Vector{2, 0})
	s := c.Snapshot()
	c.Move(0, 1)
	if s[0] != 2 {
		t.Error("snapshot not independent")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	c := NewConfig(Vector{3, 1})
	d := c.Clone()
	c.Move(0, 1)
	if d.Load(0) != 3 || d.Load(1) != 1 {
		t.Error("clone not independent")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigCountAt(t *testing.T) {
	c := NewConfig(Vector{2, 2, 0, 1})
	if c.CountAt(2) != 2 || c.CountAt(0) != 1 || c.CountAt(1) != 1 {
		t.Error("CountAt wrong")
	}
	if c.CountAt(-1) != 0 || c.CountAt(100) != 0 {
		t.Error("CountAt out-of-range should be 0")
	}
}

// The central property test: after any random legal move sequence
// (including destructive ones), all incrementally tracked statistics match
// a from-scratch recomputation.
func TestConfigIncrementalMatchesFresh(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(12)
		v := make(Vector, n)
		for i := range v {
			v[i] = r.Intn(6)
		}
		if v.Balls() == 0 {
			v[0] = 1
		}
		c := NewConfig(v)
		for step := 0; step < 200; step++ {
			src := r.Intn(n)
			if c.Load(src) == 0 {
				continue
			}
			dst := r.Intn(n)
			if dst == src {
				continue
			}
			c.Move(src, dst)
		}
		return c.Validate() == nil
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Discrepancy from Config must equal the Vector computation at all times.
func TestConfigDiscMatchesVector(t *testing.T) {
	r := rng.New(5)
	v := Vector{9, 0, 0, 3, 3, 3}
	c := NewConfig(v)
	for step := 0; step < 500; step++ {
		src := r.Intn(c.N())
		if c.Load(src) == 0 {
			continue
		}
		dst := r.Intn(c.N())
		if dst == src {
			continue
		}
		c.Move(src, dst)
		if math.Abs(c.Disc()-c.Loads().Disc()) > 1e-12 {
			t.Fatalf("disc mismatch at step %d: %g vs %g", step, c.Disc(), c.Loads().Disc())
		}
		if c.IsPerfect() != c.Loads().IsPerfect() {
			t.Fatalf("IsPerfect mismatch at step %d", step)
		}
	}
}

func TestConfigOverloadedScaled(t *testing.T) {
	c := NewConfig(Vector{3, 2, 2, 1}) // avg 2, A = 1
	if c.OverloadedBallsScaled() != 4*1 {
		t.Errorf("scaled A = %d, want 4", c.OverloadedBallsScaled())
	}
	if c.OverloadedBalls() != 1 {
		t.Errorf("A = %g, want 1", c.OverloadedBalls())
	}
	// Fractional average: avg 5/3, loads {3,1,1}: A = 3 - 5/3 = 4/3.
	c2 := NewConfig(Vector{3, 1, 1})
	if c2.OverloadedBallsScaled() != 3*3-1*5 {
		t.Errorf("scaled A = %d, want 4", c2.OverloadedBallsScaled())
	}
	if math.Abs(c2.OverloadedBalls()-4.0/3) > 1e-12 {
		t.Errorf("A = %g, want 4/3", c2.OverloadedBalls())
	}
}

func TestNewConfigPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    Vector
	}{
		{"empty", Vector{}},
		{"negative", Vector{1, -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewConfig(tc.v)
		}()
	}
}

func BenchmarkConfigMove(b *testing.B) {
	n := 1024
	v := make(Vector, n)
	for i := range v {
		v[i] = 16
	}
	c := NewConfig(v)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.Intn(n)
		if c.Load(src) == 0 {
			continue
		}
		dst := r.Intn(n)
		if dst == src {
			continue
		}
		c.Move(src, dst)
	}
}

func TestConfigAddRemoveBallBasics(t *testing.T) {
	c := NewConfig(Vector{2, 2, 2}) // avg 2
	c.AddBall(0)                    // {3,2,2}, avg 7/3
	if c.M() != 7 || c.Max() != 3 || c.Min() != 2 {
		t.Fatalf("after add: %v", c)
	}
	h, r, k := c.AboveBelow()
	if h != 1 || r != 0 || k != 2 {
		t.Errorf("h/r/k after add = %d/%d/%d, want 1/0/2", h, r, k)
	}
	c.RemoveBall(0) // back to {2,2,2}
	if c.M() != 6 || c.Max() != 2 || c.Min() != 2 {
		t.Fatalf("after remove: %v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigRemoveBallEmptyPanics(t *testing.T) {
	c := NewConfig(Vector{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveBall from empty bin did not panic")
		}
	}()
	c.RemoveBall(0)
}

func TestConfigRemoveToZeroBalls(t *testing.T) {
	c := NewConfig(Vector{1, 0, 0})
	c.RemoveBall(0)
	if c.M() != 0 || c.Min() != 0 || c.Max() != 0 {
		t.Fatalf("emptied config: %v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.AddBall(2)
	if c.M() != 1 || c.Max() != 1 {
		t.Fatalf("refilled config: %v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Interleaved churn and moves must keep every cached statistic identical
// to a freshly built Config — the invariant the churn-native engine
// depends on.
func TestConfigChurnProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(12)
		v := make(Vector, n)
		for i := range v {
			v[i] = r.Intn(6)
		}
		c := NewConfig(v)
		for op := 0; op < 200; op++ {
			switch r.Intn(3) {
			case 0:
				c.AddBall(r.Intn(n))
			case 1:
				if bin := randNonEmpty(c, r); bin >= 0 {
					c.RemoveBall(bin)
				}
			case 2:
				src := randNonEmpty(c, r)
				dst := r.Intn(n)
				if src >= 0 && dst != src {
					c.Move(src, dst)
				}
			}
			if err := c.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// randNonEmpty returns a uniformly random non-empty bin, or -1 if none.
func randNonEmpty(c *Config, r *rng.RNG) int {
	if c.M() == 0 {
		return -1
	}
	for {
		if bin := r.Intn(c.N()); c.Load(bin) > 0 {
			return bin
		}
	}
}

func BenchmarkConfigChurn(b *testing.B) {
	n := 1024
	v := make(Vector, n)
	for i := range v {
		v[i] = 16
	}
	c := NewConfig(v)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin := r.Intn(n)
		c.AddBall(bin)
		dst := r.Intn(n)
		if c.Load(dst) == 0 {
			dst = bin // long runs can drift a bin to zero
		}
		c.RemoveBall(dst)
	}
}

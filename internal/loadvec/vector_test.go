package loadvec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBallsAvg(t *testing.T) {
	v := Vector{3, 1, 2}
	if v.Balls() != 6 {
		t.Errorf("Balls = %d", v.Balls())
	}
	if v.Avg() != 2 {
		t.Errorf("Avg = %g", v.Avg())
	}
	var empty Vector
	if empty.Avg() != 0 {
		t.Error("empty Avg != 0")
	}
}

func TestMinMax(t *testing.T) {
	v := Vector{5, 0, 3}
	min, max := v.MinMax()
	if min != 0 || max != 5 {
		t.Errorf("MinMax = (%d, %d)", min, max)
	}
}

func TestDisc(t *testing.T) {
	cases := []struct {
		v    Vector
		want float64
	}{
		{Vector{2, 2, 2}, 0},
		{Vector{3, 2, 1}, 1},
		{Vector{6, 0, 0}, 4},     // avg 2, max dev 4
		{Vector{0, 6, 0}, 4},     // position-independent
		{Vector{1, 2}, 0.5},      // fractional avg 1.5
		{Vector{0, 0, 0, 4}, 3},  // avg 1
		{Vector{1, 1, 1, 1}, 0},  // perfect
		{Vector{2, 1, 1, 0}, 1},  // avg 1
		{Vector{5, 4}, 0.5},      // avg 4.5
		{Vector{10, 0, 5, 5}, 5}, // avg 5, below dev 5 dominates
	}
	for _, c := range cases {
		if got := c.v.Disc(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Disc(%v) = %g, want %g", c.v, got, c.want)
		}
	}
}

func TestIsPerfect(t *testing.T) {
	cases := []struct {
		v    Vector
		want bool
	}{
		{Vector{2, 2, 2}, true},
		{Vector{2, 1, 2}, true},  // n∤m, loads {1,2}, disc < 1
		{Vector{3, 1, 2}, false}, // disc = 1
		{Vector{1, 2}, true},     // avg 1.5
		{Vector{0, 3}, false},
		{Vector{7}, true}, // single bin is always perfect
	}
	for _, c := range cases {
		if got := c.v.IsPerfect(); got != c.want {
			t.Errorf("IsPerfect(%v) = %v, want %v (disc=%g)", c.v, got, c.want, c.v.Disc())
		}
	}
}

// IsPerfect must agree with the definition disc < 1 on random vectors.
func TestIsPerfectMatchesDefinition(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		v := make(Vector, n)
		for i := range v {
			v[i] = r.Intn(5)
		}
		return v.IsPerfect() == (v.Disc() < 1)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverloadedBallsEqualsHoles(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		v := make(Vector, n)
		for i := range v {
			v[i] = r.Intn(10)
		}
		return math.Abs(v.OverloadedBalls()-v.Holes()) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverloadedBallsFigure3Example(t *testing.T) {
	// The paper (§6.2) says the configuration of Figure 3 (left) has 6
	// overloaded balls. Reconstruct its shape: 16 bins, average 4,
	// loads: bins at 4±{2,1,...} — we use the stated x=2 reshaped version:
	// 8 bins at 6 and 8 bins at 2 would give 16... the *reshaped* right
	// side has overloaded balls 8·2=16. Instead verify a hand-computed
	// case: loads {6,5,4,4,3,2} avg 4 → overloaded = 2+1 = 3 = holes 1+2.
	v := Vector{6, 5, 4, 4, 3, 2}
	if got := v.OverloadedBalls(); got != 3 {
		t.Errorf("OverloadedBalls = %g, want 3", got)
	}
	if got := v.Holes(); got != 3 {
		t.Errorf("Holes = %g, want 3", got)
	}
}

func TestAboveBelow(t *testing.T) {
	v := Vector{6, 5, 4, 4, 3, 2} // avg 4
	h, r, k := v.AboveBelow()
	if h != 2 || r != 2 || k != 2 {
		t.Errorf("AboveBelow = (%d,%d,%d), want (2,2,2)", h, r, k)
	}
	// Fractional average: avg = 7/3; loads 3 above, 2 below, 2 below.
	v2 := Vector{3, 2, 2}
	h2, r2, k2 := v2.AboveBelow()
	if h2 != 1 || r2 != 0 || k2 != 2 {
		t.Errorf("AboveBelow = (%d,%d,%d), want (1,0,2)", h2, r2, k2)
	}
}

func TestSortedDesc(t *testing.T) {
	v := Vector{1, 3, 2}
	s := v.SortedDesc()
	if !s.Equal(Vector{3, 2, 1}) {
		t.Errorf("SortedDesc = %v", s)
	}
	if !v.Equal(Vector{1, 3, 2}) {
		t.Error("SortedDesc modified the receiver")
	}
}

func TestEqualAsMultiset(t *testing.T) {
	if !(Vector{1, 2, 3}).EqualAsMultiset(Vector{3, 1, 2}) {
		t.Error("permuted vectors should be multiset-equal")
	}
	if (Vector{1, 2, 3}).EqualAsMultiset(Vector{1, 2, 4}) {
		t.Error("different multisets reported equal")
	}
	if (Vector{1, 2}).EqualAsMultiset(Vector{1, 2, 0}) {
		t.Error("different lengths reported equal")
	}
}

func TestValidate(t *testing.T) {
	if err := (Vector{1, 2}).Validate(3); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	if err := (Vector{1, 2}).Validate(4); err == nil {
		t.Error("wrong ball count accepted")
	}
	if err := (Vector{-1, 5}).Validate(4); err == nil {
		t.Error("negative load accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares memory")
	}
}

package loadvec

// Shard-local state and global reconciliation for the sharded engine
// (internal/sim/sharded.go): each shard owns a contiguous bin range as its
// own Config, and the global stop-condition view — min/max load, ball
// count, discrepancy — is *folded* from the per-shard histograms instead
// of being recomputed from a concatenated load vector. Folding is O(P)
// for P shards because every input is already maintained incrementally:
// each Config tracks its own min/max/m per move, the level index tracks
// W_s in O(log Δ) per transition, and the external weight X_s follows the
// stale census through ExternalPrefixUpdated deltas (see StaleIndex) — so
// a barrier's whole FoldedStats refresh reads P structs and never rebuilds
// or rescans a load vector.

// Partition splits a load vector into parts contiguous, near-equal bin
// ranges (range i is [i·n/parts, (i+1)·n/parts)), each returned as an
// independent copy. It panics unless 1 ≤ parts ≤ len(v).
func Partition(v Vector, parts int) []Vector {
	if parts < 1 || parts > len(v) {
		panic("loadvec: Partition with parts outside [1, len(v)]")
	}
	out := make([]Vector, parts)
	for i := 0; i < parts; i++ {
		lo, hi := PartitionRange(len(v), parts, i)
		out[i] = v[lo:hi].Clone()
	}
	return out
}

// PartitionRange returns the half-open global bin range [lo, hi) owned by
// part i of a parts-way contiguous partition of n bins.
func PartitionRange(n, parts, i int) (lo, hi int) {
	return i * n / parts, (i + 1) * n / parts
}

// PartitionOwner returns the index of the part owning global bin `bin`
// under the same partition as PartitionRange, in O(1): the candidate
// bin·parts/n is exact up to the ±1 rounding of the range boundaries.
func PartitionOwner(n, parts, bin int) int {
	i := bin * parts / n
	for lo, _ := PartitionRange(n, parts, i); bin < lo; lo, _ = PartitionRange(n, parts, i) {
		i--
	}
	for _, hi := PartitionRange(n, parts, i); bin >= hi; _, hi = PartitionRange(n, parts, i) {
		i++
	}
	return i
}

// FoldedStats is the global view of a sharded configuration: the exact
// bin count, ball count, and extreme loads of the union of the per-shard
// configurations, from which the global discrepancy and the balance
// stop conditions follow. The zero value describes an empty system.
//
// W additionally folds the per-shard move weights for level-indexed
// shards (the sharded jump engine): each shard contributes its local
// productive-pair mass W_s = Σ_v v·count_s[v]·C_s(v−1) plus its external
// mass X_s against the stale cross-shard census (both maintained
// incrementally, X_s via ExternalPrefixUpdated at barriers). ΣW_s+X_s is
// the folded event rate driving the adaptive epoch policy; shards without
// a level index contribute 0.
type FoldedStats struct {
	N, M     int
	Min, Max int
	W        int64
}

// FoldStats folds per-shard Configs into the global stats in O(P). It
// panics on an empty shard list.
func FoldStats(parts ...*Config) FoldedStats {
	if len(parts) == 0 {
		panic("loadvec: FoldStats with no shards")
	}
	f := FoldedStats{Min: parts[0].Min(), Max: parts[0].Max()}
	for _, c := range parts {
		f.N += c.N()
		f.M += c.M()
		if c.Min() < f.Min {
			f.Min = c.Min()
		}
		if c.Max() > f.Max {
			f.Max = c.Max()
		}
		if c.LevelIndexed() {
			f.W += c.MoveWeight() + c.ExternalMoveWeight()
		}
	}
	return f
}

// Avg returns the global average load ∅ = M/N.
func (f FoldedStats) Avg() float64 {
	if f.N == 0 {
		return 0
	}
	return float64(f.M) / float64(f.N)
}

// Disc returns the global discrepancy max(Max−∅, ∅−Min).
func (f FoldedStats) Disc() float64 {
	avg := f.Avg()
	hi := float64(f.Max) - avg
	lo := avg - float64(f.Min)
	if hi > lo {
		return hi
	}
	return lo
}

// IsPerfect reports global perfect balance (disc < 1 ⟺ Max−Min ≤ 1).
func (f FoldedStats) IsPerfect() bool { return f.Max-f.Min <= 1 }

// IsBalanced reports global x-balancedness.
func (f FoldedStats) IsBalanced(x float64) bool { return f.Disc() <= x }

package loadvec

import "fmt"

// Shard-local state and global reconciliation for the sharded engine
// (internal/sim/sharded.go): each shard owns a contiguous bin range as its
// own Config, and the global stop-condition view — min/max load, ball
// count, discrepancy — is *folded* from the per-shard histograms instead
// of being recomputed from a concatenated load vector. Folding is O(P)
// for P shards because every input is already maintained incrementally:
// each Config tracks its own min/max/m per move, the level index tracks
// W_s in O(log Δ) per transition, and the external weight X_s follows the
// stale census through ExternalPrefixUpdated deltas (see StaleIndex) — so
// a barrier's whole FoldedStats refresh reads P structs and never rebuilds
// or rescans a load vector.

// Partition splits a load vector into parts contiguous, near-equal bin
// ranges (range i is [i·n/parts, (i+1)·n/parts)), each returned as an
// independent copy. It panics unless 1 ≤ parts ≤ len(v).
func Partition(v Vector, parts int) []Vector {
	if parts < 1 || parts > len(v) {
		panic("loadvec: Partition with parts outside [1, len(v)]")
	}
	out := make([]Vector, parts)
	for i := 0; i < parts; i++ {
		lo, hi := PartitionRange(len(v), parts, i)
		out[i] = v[lo:hi].Clone()
	}
	return out
}

// PartitionRange returns the half-open global bin range [lo, hi) owned by
// part i of a parts-way contiguous partition of n bins.
func PartitionRange(n, parts, i int) (lo, hi int) {
	return i * n / parts, (i + 1) * n / parts
}

// PartitionOwner returns the index of the part owning global bin `bin`
// under the same partition as PartitionRange, in O(1): the candidate
// bin·parts/n is exact up to the ±1 rounding of the range boundaries.
func PartitionOwner(n, parts, bin int) int {
	i := bin * parts / n
	for lo, _ := PartitionRange(n, parts, i); bin < lo; lo, _ = PartitionRange(n, parts, i) {
		i--
	}
	for _, hi := PartitionRange(n, parts, i); bin >= hi; _, hi = PartitionRange(n, parts, i) {
		i++
	}
	return i
}

// Cuts returns the boundary vector of the canonical parts-way contiguous
// partition of n bins: part i owns [cuts[i], cuts[i+1]) with the same
// boundaries as PartitionRange. Explicit cuts are the dynamic form of the
// partition — the sharded engine's repartitioning moves them at epoch
// barriers — so cuts[0] = 0, cuts[parts] = n, and the sequence is strictly
// increasing (every part owns at least one bin). It panics unless
// 1 ≤ parts ≤ n.
func Cuts(n, parts int) []int {
	if parts < 1 || parts > n {
		panic("loadvec: Cuts with parts outside [1, n]")
	}
	cuts := make([]int, parts+1)
	for i := 1; i <= parts; i++ {
		cuts[i] = i * n / parts
	}
	return cuts
}

// CutsOwner returns the index of the part owning global bin `bin` under
// the partition described by a strictly increasing boundary vector (as
// produced by Cuts or BalancedCuts), by binary search in O(log parts).
func CutsOwner(cuts []int, bin int) int {
	// Invariant: cuts[lo] <= bin < cuts[hi].
	lo, hi := 0, len(cuts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if cuts[mid] <= bin {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ValidateCuts checks that cuts describes a parts-way contiguous partition
// of n bins: length parts+1, endpoints 0 and n, strictly increasing.
func ValidateCuts(cuts []int, n int) error {
	if len(cuts) < 2 {
		return fmt.Errorf("loadvec: cuts %v too short", cuts)
	}
	if cuts[0] != 0 || cuts[len(cuts)-1] != n {
		return fmt.Errorf("loadvec: cuts %v do not span [0, %d)", cuts, n)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return fmt.Errorf("loadvec: cuts %v not strictly increasing at %d", cuts, i)
		}
	}
	return nil
}

// BalancedCuts places the parts−1 interior boundaries of a contiguous
// partition so that every part carries a near-equal share of the given
// per-bin weights: boundary j sits at the smallest bin where the weight
// prefix reaches j/parts of the total, subject to every part owning at
// least one bin. This is the repartitioning policy's placement step — the
// sharded engine passes per-bin ball counts (activation mass) or per-bin
// eventful-move weights, computes new cuts at an epoch barrier, and
// migrates the boundary bins. The result is a pure function of (weights,
// parts), which is what keeps repartitioned runs reproducible from a
// fixed seed. Weights must be nonnegative; it panics unless
// 1 ≤ parts ≤ len(weights).
func BalancedCuts(weights []int64, parts int) []int {
	n := len(weights)
	if parts < 1 || parts > n {
		panic("loadvec: BalancedCuts with parts outside [1, len(weights)]")
	}
	var total int64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("loadvec: BalancedCuts with negative weight at bin %d", i))
		}
		total += w
	}
	cuts := make([]int, parts+1)
	cuts[parts] = n
	var acc int64
	bin := 0
	for j := 1; j < parts; j++ {
		target := total * int64(j) / int64(parts)
		// Leave room so parts j..parts-1 each still get ≥ 1 bin, and take at
		// least one bin past the previous cut so the sequence stays strictly
		// increasing even through zero-weight stretches or one dominant bin.
		room := n - (parts - j)
		for bin < room && (acc < target || bin == cuts[j-1]) {
			acc += weights[bin]
			bin++
		}
		cuts[j] = bin
	}
	return cuts
}

// FoldedStats is the global view of a sharded configuration: the exact
// bin count, ball count, and extreme loads of the union of the per-shard
// configurations, from which the global discrepancy and the balance
// stop conditions follow. The zero value describes an empty system.
//
// W additionally folds the per-shard move weights for level-indexed
// shards (the sharded jump engine): each shard contributes its local
// productive-pair mass W_s = Σ_v v·count_s[v]·C_s(v−1) plus its external
// mass X_s against the stale cross-shard census (both maintained
// incrementally, X_s via ExternalPrefixUpdated at barriers). ΣW_s+X_s is
// the folded event rate driving the adaptive epoch policy; shards without
// a level index contribute 0.
type FoldedStats struct {
	N, M     int
	Min, Max int
	W        int64
}

// FoldStats folds per-shard Configs into the global stats in O(P). It
// panics on an empty shard list.
func FoldStats(parts ...*Config) FoldedStats {
	if len(parts) == 0 {
		panic("loadvec: FoldStats with no shards")
	}
	f := FoldedStats{Min: parts[0].Min(), Max: parts[0].Max()}
	for _, c := range parts {
		f.N += c.N()
		f.M += c.M()
		if c.Min() < f.Min {
			f.Min = c.Min()
		}
		if c.Max() > f.Max {
			f.Max = c.Max()
		}
		if c.LevelIndexed() {
			f.W += c.MoveWeight() + c.ExternalMoveWeight()
		}
	}
	return f
}

// Avg returns the global average load ∅ = M/N.
func (f FoldedStats) Avg() float64 {
	if f.N == 0 {
		return 0
	}
	return float64(f.M) / float64(f.N)
}

// Disc returns the global discrepancy max(Max−∅, ∅−Min).
func (f FoldedStats) Disc() float64 {
	avg := f.Avg()
	hi := float64(f.Max) - avg
	lo := avg - float64(f.Min)
	if hi > lo {
		return hi
	}
	return lo
}

// IsPerfect reports global perfect balance (disc < 1 ⟺ Max−Min ≤ 1).
func (f FoldedStats) IsPerfect() bool { return f.Max-f.Min <= 1 }

// IsBalanced reports global x-balancedness.
func (f FoldedStats) IsBalanced(x float64) bool { return f.Disc() <= x }

package loadvec

import (
	"repro/internal/persist"
)

// This file is loadvec's half of the snapshot codec. The byte-identical
// resume contract dictates what is serialized verbatim versus rebuilt:
// the per-level bin *lists* (binsAt, the census buckets) evolved under
// swap-deletes, so their element order is simulation state and ships
// verbatim; the Fenwick trees, position indices, and histogram stats
// are pure functions of those lists and are rederived on decode via the
// same rebuildTrees/rebuildCounts paths the live structures use — so a
// decoded index is indistinguishable from one that never left memory,
// with no rebuild-from-scratch divergence.

// EncodeState appends the configuration (and its level index, when
// enabled) to the payload.
func (c *Config) EncodeState(e *persist.Enc) {
	e.Ints(c.loads)
	if c.idx == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	x := c.idx
	e.Int(x.gap)
	e.Int(x.size)
	for v := 0; v < x.size; v++ {
		e.I32s(x.binsAt[v])
	}
}

// DecodeConfigState reads a Config written by EncodeState. The
// histogram and all trees are rebuilt from the loads and the verbatim
// level lists; an installed external prefix is not part of the payload
// (the sharded engine reinstalls it after restoring its census).
func DecodeConfigState(d *persist.Dec) (*Config, error) {
	loads := d.Ints()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(loads) == 0 {
		return nil, persist.Corruptf("config with no bins")
	}
	for i, l := range loads {
		if l < 0 {
			return nil, persist.Corruptf("config with negative load %d at bin %d", l, i)
		}
	}
	c := NewConfig(loads)
	indexed := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if !indexed {
		return c, nil
	}

	gap := d.Int()
	size := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if gap != 1 && gap != 2 {
		return nil, persist.Corruptf("level index tie gap %d (want 1 or 2)", gap)
	}
	// Every level costs at least one encoded byte (its list's length
	// prefix), which bounds size by the remaining payload — the same
	// guard Dec applies to slice lengths.
	if size < 4 || size&(size-1) != 0 || size <= c.max || size > d.Remaining() {
		return nil, persist.Corruptf("level index size %d (max level %d, %d bytes remain)", size, c.max, d.Remaining())
	}
	x := &levelIndex{
		gap:    gap,
		binsAt: make([][]int32, size),
		pos:    make([]int32, c.n),
		sval:   make([]int64, size),
		size:   size,
	}
	seen := 0
	for v := 0; v < size; v++ {
		lst := d.I32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		for p, bin := range lst {
			if bin < 0 || int(bin) >= c.n {
				return nil, persist.Corruptf("level list holds bin %d of %d", bin, c.n)
			}
			if c.loads[bin] != v {
				return nil, persist.Corruptf("bin %d listed at level %d but loaded %d", bin, v, c.loads[bin])
			}
			x.pos[bin] = int32(p)
			seen++
		}
		x.binsAt[v] = lst
	}
	// Each bin's load matched its list level, so n listings with no level
	// mismatch means every bin appeared exactly once.
	if seen != c.n {
		return nil, persist.Corruptf("level lists hold %d bins, config has %d", seen, c.n)
	}
	x.rebuildTrees()
	c.idx = x
	return c, nil
}

// Cuts returns a copy of the census's partition boundaries; the sharded
// engine cross-checks them against its own cuts when restoring a
// snapshot.
func (x *StaleIndex) Cuts() []int { return append([]int(nil), x.cuts...) }

// EncodeState appends the census to the payload: shape, cuts, and the
// verbatim bucket lists. The count trees are derived state and are
// rebuilt on decode.
func (x *StaleIndex) EncodeState(e *persist.Enc) {
	e.Int(x.n)
	e.Int(x.parts)
	e.Ints(x.cuts)
	e.Int(x.levels)
	for _, b := range x.at {
		e.I32s(b)
	}
}

// DecodeStaleIndex reads a census written by EncodeState, revalidating
// the partition and bucket membership so corrupt input can never build
// an index that panics later.
func DecodeStaleIndex(d *persist.Dec) (*StaleIndex, error) {
	n := d.Int()
	parts := d.Int()
	cuts := d.Ints()
	levels := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n < 1 || parts < 1 || parts > n {
		return nil, persist.Corruptf("stale census over %d bins in %d parts", n, parts)
	}
	if len(cuts) != parts+1 {
		return nil, persist.Corruptf("stale census with %d cuts for %d parts", len(cuts), parts)
	}
	if err := ValidateCuts(cuts, n); err != nil {
		return nil, persist.Corruptf("stale census cuts: %v", err)
	}
	if levels < 4 || levels&(levels-1) != 0 || levels*parts > d.Remaining() {
		return nil, persist.Corruptf("stale census with %d levels × %d parts in %d bytes", levels, parts, d.Remaining())
	}
	x := &StaleIndex{
		n:      n,
		parts:  parts,
		cuts:   cuts,
		levels: levels,
		at:     make([][]int32, levels*parts),
		pos:    make([]int32, n),
	}
	seen := make([]bool, n)
	total := 0
	for b := range x.at {
		lst := d.I32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		p := b % parts
		for i, bin := range lst {
			if bin < 0 || int(bin) >= n || seen[bin] {
				return nil, persist.Corruptf("census bucket holds invalid or duplicate bin %d", bin)
			}
			if CutsOwner(cuts, int(bin)) != p {
				return nil, persist.Corruptf("bin %d bucketed under part %d but owned by %d", bin, p, CutsOwner(cuts, int(bin)))
			}
			seen[bin] = true
			x.pos[bin] = int32(i)
			total++
		}
		x.at[b] = lst
	}
	if total != n {
		return nil, persist.Corruptf("census buckets hold %d bins, want %d", total, n)
	}
	x.rebuildCounts()
	return x, nil
}

package loadvec

import (
	"fmt"

	"repro/internal/rng"
)

// A Generator produces an initial configuration of m balls in n bins.
// Generators are the experiment workloads: the paper's analysis starts
// from arbitrary configurations, its lower bounds from two specific ones,
// and the §2 comparisons from one-choice and two-choice placements.
type Generator interface {
	// Generate returns a fresh load vector with n bins and m balls.
	Generate(n, m int, r *rng.RNG) Vector
	// Name identifies the generator in tables and logs.
	Name() string
}

// genFunc adapts a function to the Generator interface.
type genFunc struct {
	name string
	fn   func(n, m int, r *rng.RNG) Vector
}

func (g genFunc) Generate(n, m int, r *rng.RNG) Vector { return g.fn(n, m, r) }
func (g genFunc) Name() string                         { return g.name }

// AllInOne places every ball in bin 0 — the paper's worst case, used for
// the Ω(ln n) lower bound and as the canonical Phase-1 start (Lemma 2
// reduces arbitrary configurations to this one).
func AllInOne() Generator {
	return genFunc{"all-in-one", func(n, m int, _ *rng.RNG) Vector {
		v := make(Vector, n)
		v[0] = m
		return v
	}}
}

// OneChoice throws each ball into a uniformly random bin — the classical
// one-choice placement with Θ(ln n / ln ln n) discrepancy at m = n.
func OneChoice() Generator {
	return genFunc{"one-choice", func(n, m int, r *rng.RNG) Vector {
		v := make(Vector, n)
		for b := 0; b < m; b++ {
			v[r.Intn(n)]++
		}
		return v
	}}
}

// TwoChoice places each ball greedily in the lesser loaded of two uniform
// bins (Greedy[2], [17]); discrepancy O(ln ln n). This is the initial
// placement of the [9] comparison (experiment CMP1).
func TwoChoice() Generator { return DChoice(2) }

// DChoice generalizes to Greedy[d]: each ball samples d bins and joins the
// least loaded.
func DChoice(d int) Generator {
	if d < 1 {
		panic("loadvec: DChoice with d < 1")
	}
	return genFunc{fmt.Sprintf("%d-choice", d), func(n, m int, r *rng.RNG) Vector {
		v := make(Vector, n)
		for b := 0; b < m; b++ {
			best := r.Intn(n)
			for j := 1; j < d; j++ {
				cand := r.Intn(n)
				if v[cand] < v[best] {
					best = cand
				}
			}
			v[best]++
		}
		return v
	}}
}

// Balanced spreads balls as evenly as possible: every bin gets ⌊m/n⌋ and
// the first m mod n bins one extra. The result is perfectly balanced.
func Balanced() Generator {
	return genFunc{"balanced", func(n, m int, _ *rng.RNG) Vector {
		v := make(Vector, n)
		q, rem := m/n, m%n
		for i := range v {
			v[i] = q
			if i < rem {
				v[i]++
			}
		}
		return v
	}}
}

// DeltaPair starts from the balanced configuration and moves delta balls
// from bin 1 to bin 0, producing one bin at ∅+δ and one at ∅−δ.
// DeltaPair(1) is exactly the paper's Ω(n²/m) lower-bound instance
// (one bin at ∅+1, one at ∅−1, the rest at ∅).
func DeltaPair(delta int) Generator {
	if delta < 1 {
		panic("loadvec: DeltaPair with delta < 1")
	}
	return genFunc{fmt.Sprintf("delta-pair(%d)", delta), func(n, m int, r *rng.RNG) Vector {
		if n < 2 {
			panic("loadvec: DeltaPair needs n >= 2")
		}
		v := Balanced().Generate(n, m, r)
		if v[1] < delta {
			panic(fmt.Sprintf("loadvec: DeltaPair(%d) needs average load >= %d", delta, delta))
		}
		v[0] += delta
		v[1] -= delta
		return v
	}}
}

// ImbalancedPairs starts balanced, then creates `pairs` disjoint (+1, −1)
// bin pairs — the Phase-3 workload with exactly A = pairs overloaded
// balls (requires n ≥ 2·pairs and n | m for the clean interpretation).
func ImbalancedPairs(pairs int) Generator {
	if pairs < 1 {
		panic("loadvec: ImbalancedPairs with pairs < 1")
	}
	return genFunc{fmt.Sprintf("pairs(%d)", pairs), func(n, m int, r *rng.RNG) Vector {
		if n < 2*pairs {
			panic("loadvec: ImbalancedPairs needs n >= 2*pairs")
		}
		v := Balanced().Generate(n, m, r)
		for p := 0; p < pairs; p++ {
			hi, lo := 2*p, 2*p+1
			if v[lo] == 0 {
				panic("loadvec: ImbalancedPairs needs average load >= 1")
			}
			v[hi]++
			v[lo]--
		}
		return v
	}}
}

// HalfSpread produces the Lemma 13 shape: the first ⌊n/2⌋ bins at ∅+x,
// the rest at ∅−x (adjusted at bin 0 for parity/divisibility remainders
// so exactly m balls are placed). It requires x ≤ ∅.
func HalfSpread(x int) Generator {
	if x < 0 {
		panic("loadvec: HalfSpread with negative x")
	}
	return genFunc{fmt.Sprintf("half-spread(%d)", x), func(n, m int, r *rng.RNG) Vector {
		v := Balanced().Generate(n, m, r)
		half := n / 2
		for i := 0; i < half; i++ {
			heavy, light := i, n-1-i
			if v[light] < x {
				panic("loadvec: HalfSpread needs x <= average load")
			}
			v[heavy] += x
			v[light] -= x
		}
		return v
	}}
}

// ZipfSkew distributes balls over bins with Zipf(s) popularity — a
// realistic skewed workload (hot shards / hot channels).
func ZipfSkew(s float64) Generator {
	return genFunc{fmt.Sprintf("zipf(%.2g)", s), func(n, m int, r *rng.RNG) Vector {
		z := rng.NewZipf(n, s)
		v := make(Vector, n)
		for b := 0; b < m; b++ {
			v[z.Draw(r)-1]++
		}
		return v
	}}
}

// FromVector always returns a copy of a fixed vector; n and m arguments
// must match it.
func FromVector(fixed Vector) Generator {
	return genFunc{"fixed", func(n, m int, _ *rng.RNG) Vector {
		if n != len(fixed) || m != fixed.Balls() {
			panic("loadvec: FromVector with mismatched n or m")
		}
		return fixed.Clone()
	}}
}

package loadvec

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// scratchStrictMoveWeight recomputes W' = Σ_v v·count[v]·C(v−2) from the
// raw load vector, the definition the strict index must track.
func scratchStrictMoveWeight(v Vector) int64 {
	maxLoad := 0
	for _, x := range v {
		if x > maxLoad {
			maxLoad = x
		}
	}
	count := make([]int64, maxLoad+1)
	for _, x := range v {
		count[x]++
	}
	var w, cum, cumPrev int64
	for lvl := 0; lvl <= maxLoad; lvl++ {
		w += int64(lvl) * count[lvl] * cumPrev
		cumPrev = cum
		cum += count[lvl]
	}
	return w
}

// randomStrictCfg builds a strict-indexed Config over a random load
// vector.
func randomStrictCfg(r *rng.RNG, n, maxLoad int) *Config {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.Intn(maxLoad + 1)
	}
	if v.Balls() == 0 {
		v[0] = 1
	}
	c := NewConfig(v)
	c.EnableStrictLevelIndex()
	return c
}

// TestStrictLevelIndexInterleavedProperty mirrors the plain interleaved
// property test under the strict tie gap: long random interleavings of
// strict-legal moves, destructive moves, and churn, with the full index
// state validated against a from-scratch W' recompute.
func TestStrictLevelIndexInterleavedProperty(t *testing.T) {
	r := rng.New(4321)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(24)
		c := randomStrictCfg(r, n, 8)
		if c.TieGap() != 2 {
			t.Fatalf("TieGap = %d, want 2", c.TieGap())
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d setup: %v", trial, err)
		}
		for step := 0; step < 300; step++ {
			switch r.Intn(4) {
			case 0: // strict-legal move
				src := r.Intn(n)
				dst := r.Intn(n)
				if src != dst && c.Load(src) >= c.Load(dst)+2 {
					c.Move(src, dst)
				}
			case 1: // destructive move (may raise the max arbitrarily)
				src := r.Intn(n)
				dst := r.Intn(n)
				if src != dst && c.Load(src) > 0 {
					c.Move(src, dst)
				}
			case 2:
				c.AddBall(r.Intn(n))
			case 3:
				if bin := r.Intn(n); c.Load(bin) > 0 && c.M() > 1 {
					c.RemoveBall(bin)
				}
			}
			if step%37 == 0 {
				if err := c.Validate(); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				if got, want := c.MoveWeight(), scratchStrictMoveWeight(c.Loads()); got != want {
					t.Fatalf("trial %d step %d: W' = %d, want %d", trial, step, got, want)
				}
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
	}
}

// TestStrictMoveWeightZeroIffNearFlat pins the strict termination
// condition: W' = 0 exactly on configurations with max − min ≤ 1, i.e.
// exactly the perfectly balanced states — so a strict jump run targeting
// perfection never stalls on a flat-weight state it hasn't reached.
func TestStrictMoveWeightZeroIffNearFlat(t *testing.T) {
	c := NewConfig(Vector{2, 2, 1})
	c.EnableStrictLevelIndex()
	if !c.IsPerfect() || c.MoveWeight() != 0 {
		t.Fatalf("near-flat: perfect=%v W'=%d", c.IsPerfect(), c.MoveWeight())
	}
	c.AddBall(0) // loads {3,2,1}: W' = 3·1·1 (only level-1 bin is ≥2 below)
	if c.IsPerfect() || c.MoveWeight() != 3 {
		t.Fatalf("spread 2: perfect=%v W'=%d, want W'=3", c.IsPerfect(), c.MoveWeight())
	}
	c.RemoveBall(0)
	if c.MoveWeight() != 0 {
		t.Fatalf("W' back to near-flat = %d", c.MoveWeight())
	}
	// Exhaustive over small vectors: W' = 0 ⟺ IsPerfect.
	r := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		cc := randomStrictCfg(r, 2+r.Intn(6), 4)
		if (cc.MoveWeight() == 0) != cc.IsPerfect() {
			t.Fatalf("loads %v: W'=%d perfect=%v", cc.Loads(), cc.MoveWeight(), cc.IsPerfect())
		}
	}
}

// TestStrictSampleMovePairLaw checks validity (every sampled pair is a
// strict-legal move) and the exact marginal law under the shifted
// eligible prefix: pair (i, j) with ℓ_j ≤ ℓ_i − 2 appears with
// probability ℓ_i/W'.
func TestStrictSampleMovePairLaw(t *testing.T) {
	r := rng.New(177)
	v := Vector{5, 3, 3, 1, 0}
	c := NewConfig(v)
	c.EnableStrictLevelIndex()
	W := float64(c.MoveWeight())
	if int64(W) != scratchStrictMoveWeight(v) {
		t.Fatalf("W' = %g, want %d", W, scratchStrictMoveWeight(v))
	}
	const draws = 200000
	counts := map[[2]int]int{}
	for i := 0; i < draws; i++ {
		src, dst := c.SampleMovePair(r)
		if c.Load(src) < c.Load(dst)+2 {
			t.Fatalf("non-strict pair (%d,%d): loads %d,%d", src, dst, c.Load(src), c.Load(dst))
		}
		counts[[2]int{src, dst}]++
	}
	for src := range v {
		for dst := range v {
			if src == dst || v[src] < v[dst]+2 {
				continue
			}
			want := float64(v[src]) / W * draws
			got := float64(counts[[2]int{src, dst}])
			if sigma := math.Sqrt(want); math.Abs(got-want) > 5*sigma+1 {
				t.Errorf("pair (%d,%d): %g draws, want %g ± %g", src, dst, got, want, 5*sigma)
			}
		}
	}
}

// TestStrictLevelIndexRestrictions pins the API edges the tie gap adds:
// re-enabling with a different rule panics, and the external prefix (a
// plain-rule construct: the sharded jump engine) refuses a strict index.
func TestStrictLevelIndexRestrictions(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("re-enable with other gap", func() {
		c := NewConfig(Vector{1, 0})
		c.EnableLevelIndex()
		c.EnableStrictLevelIndex()
	})
	expectPanic("external prefix on strict index", func() {
		c := NewConfig(Vector{1, 0})
		c.EnableStrictLevelIndex()
		c.SetExternalPrefix(func(int) int64 { return 1 })
	})
	// Same-gap re-enable is an idempotent no-op, and the clone keeps the
	// gap.
	c := NewConfig(Vector{3, 1, 0})
	c.EnableStrictLevelIndex()
	c.EnableStrictLevelIndex()
	cp := c.Clone()
	if cp.TieGap() != 2 {
		t.Fatalf("clone TieGap = %d, want 2", cp.TieGap())
	}
	if got, want := cp.MoveWeight(), scratchStrictMoveWeight(cp.Loads()); got != want {
		t.Fatalf("clone W' = %d, want %d", got, want)
	}
}

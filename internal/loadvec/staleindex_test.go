package loadvec

import (
	"testing"

	"repro/internal/rng"
)

// bruteExternal recounts ext_p(w) from the snapshot directly.
func bruteExternal(stale []int, parts, part, w int) int64 {
	var c int64
	for bin, l := range stale {
		if PartitionOwner(len(stale), parts, bin) != part && l <= w {
			c++
		}
	}
	return c
}

func TestStaleIndexFreshMatchesBruteForce(t *testing.T) {
	r := rng.New(31)
	for _, parts := range []int{1, 2, 4, 7} {
		stale := make([]int, 37)
		for i := range stale {
			stale[i] = r.Intn(9)
		}
		x := NewStaleIndex(stale, parts)
		if err := x.Validate(stale); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		for p := 0; p < parts; p++ {
			for w := -1; w < x.Levels()+2; w++ {
				if got, want := x.External(p, w), bruteExternal(stale, parts, p, w); got != want {
					t.Fatalf("parts=%d External(%d, %d) = %d, want %d", parts, p, w, got, want)
				}
			}
		}
	}
}

// TestStaleIndexMoveMatchesRebuild is the loadvec half of the
// incremental-vs-full reconciliation property: after any sequence of Move
// deltas the census must agree with a from-scratch NewStaleIndex of the
// same snapshot — prefixes, buckets, and the index → bin mapping (as a
// set; the incremental bucket order may differ).
func TestStaleIndexMoveMatchesRebuild(t *testing.T) {
	const n, parts = 41, 4
	r := rng.New(99)
	stale := make([]int, n)
	for i := range stale {
		stale[i] = r.Intn(5)
	}
	x := NewStaleIndex(stale, parts)
	for step := 0; step < 600; step++ {
		bin := r.Intn(n)
		from := stale[bin]
		to := from + 1
		switch {
		case from > 0 && r.Intn(2) == 0:
			to = from - 1
		case r.Intn(20) == 0:
			to = from + 16 // force level growth mid-sequence
		}
		stale[bin] = to
		x.Move(bin, from, to)

		if step%37 != 0 {
			continue
		}
		if err := x.Validate(stale); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		fresh := NewStaleIndex(stale, parts)
		for p := 0; p < parts; p++ {
			for w := -1; w < x.Levels()+2; w++ {
				if got, want := x.External(p, w), fresh.External(p, w); got != want {
					t.Fatalf("step %d External(%d, %d) = %d, fresh rebuild says %d", step, p, w, got, want)
				}
			}
			// The mapped external population must be exactly the fresh one.
			w := x.Levels() - 1
			seen := map[int]bool{}
			for j := int64(0); j < x.External(p, w); j++ {
				bin := x.ExternalBinAt(p, w, j)
				if seen[bin] {
					t.Fatalf("step %d part %d: ExternalBinAt repeated bin %d", step, p, bin)
				}
				seen[bin] = true
				if PartitionOwner(n, parts, bin) == p {
					t.Fatalf("step %d part %d: ExternalBinAt returned own bin %d", step, p, bin)
				}
			}
			if int64(len(seen)) != fresh.External(p, w) {
				t.Fatalf("step %d part %d: mapped %d bins, fresh census counts %d",
					step, p, len(seen), fresh.External(p, w))
			}
		}
	}
}

func TestStaleIndexExternalBinAtLevels(t *testing.T) {
	// Three parts over 9 bins, distinct levels, so every (part, w, j) cell
	// is enumerable by hand through the brute-force census.
	stale := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	x := NewStaleIndex(stale, 3)
	for p := 0; p < 3; p++ {
		for w := 0; w < 3; w++ {
			want := bruteExternal(stale, 3, p, w)
			for j := int64(0); j < want; j++ {
				bin := x.ExternalBinAt(p, w, j)
				if stale[bin] > w {
					t.Fatalf("part %d w=%d j=%d: bin %d has stale %d", p, w, j, bin, stale[bin])
				}
				if PartitionOwner(9, 3, bin) == p {
					t.Fatalf("part %d w=%d j=%d: own bin %d", p, w, j, bin)
				}
			}
		}
	}
}

// TestExternalPrefixUpdated pins the delta entry point next to
// SetExternalPrefix: after the installed prefix's values change on a
// window [lo, hi], ExternalPrefixUpdated(lo, hi) must leave the external
// weights exactly as a full SetExternalPrefix reinstall would.
func TestExternalPrefixUpdated(t *testing.T) {
	r := rng.New(7)
	v := OneChoice().Generate(24, 120, r)
	c := NewConfig(v)
	c.EnableLevelIndex()

	ext := make([]int64, 64) // mutable prefix table the closure reads through
	reset := func() {
		run := int64(0)
		for w := range ext {
			run += int64(r.Intn(3))
			ext[w] = run
		}
	}
	reset()
	prefix := func(w int) int64 {
		if w < 0 {
			return 0
		}
		if w >= len(ext) {
			w = len(ext) - 1
		}
		return ext[w]
	}
	c.SetExternalPrefix(prefix)

	for step := 0; step < 200; step++ {
		// Mutate the prefix on a random window, keeping it monotone: add a
		// constant on a suffix starting inside the window and advertise the
		// changed cells.
		lo := r.Intn(len(ext))
		hi := lo + r.Intn(len(ext)-lo)
		d := int64(1 + r.Intn(3))
		for w := lo; w <= hi; w++ {
			ext[w] += d
		}
		for w := hi + 1; w < len(ext); w++ {
			ext[w] += d // keep monotone past the window
		}
		c.ExternalPrefixUpdated(lo, len(ext)-1)

		// Interleave level transitions so count[v] changes mix with prefix
		// deltas, as they do across a real barrier.
		if c.M() > 0 && step%3 == 0 {
			src := 0
			for c.Load(src) == 0 {
				src++
			}
			dst := (src + 1 + r.Intn(c.N()-1)) % c.N()
			if dst != src {
				c.Move(src, dst)
			}
		}

		got := c.ExternalMoveWeight()
		cp := c.Clone()
		cp.SetExternalPrefix(prefix) // full reinstall = reference
		if want := cp.ExternalMoveWeight(); got != want {
			t.Fatalf("step %d: delta-maintained X = %d, full reinstall says %d", step, got, want)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}

	// A window advertised wider than the indexed level range must clamp,
	// not panic; and a no-extP index must no-op.
	c.ExternalPrefixUpdated(-5, 1<<20)
	c.SetExternalPrefix(nil)
	c.ExternalPrefixUpdated(0, 3)
}

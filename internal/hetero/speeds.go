// Package hetero implements the two heterogeneous extensions that §7 of
// the paper poses as future directions:
//
//  1. bins with speeds — "the load of a bin is defined as its number of
//     balls divided by its speed. One can consider a similar protocol to
//     RLS: a ball chooses a random bin on activation, and moves there if
//     and only if doing so improves its load";
//  2. weighted balls — "can we obtain similar balancing times in the
//     weighted case as in the non-weighted case?".
//
// Both generalize the notion of balance: the natural fixed points are
// Nash equilibria (no single ball can improve its experienced load by
// moving), which for unit speeds and weights coincide with perfectly
// balanced configurations.
package hetero

import (
	"fmt"
	"math"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// SpeedRLS is the §7 speed extension as a sim.Mover: a ball in bin i
// (experienced load ℓ_i/s_i) samples a uniform destination i′ and moves
// iff its experienced load strictly improves: (ℓ_{i′}+1)/s_{i′} < ℓ_i/s_i.
// With all speeds equal this is StrictRLS; since balls remain identical,
// it runs on the standard engine.
type SpeedRLS struct {
	// Speeds holds s_i > 0 per bin.
	Speeds []float64
}

// NewSpeedRLS validates the speed vector.
func NewSpeedRLS(speeds []float64) (SpeedRLS, error) {
	for i, s := range speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return SpeedRLS{}, fmt.Errorf("hetero: invalid speed %g at bin %d", s, i)
		}
	}
	return SpeedRLS{Speeds: speeds}, nil
}

// Decide implements sim.Mover.
func (s SpeedRLS) Decide(cfg *loadvec.Config, src int, r *rng.RNG) (int, bool) {
	dst := r.Intn(cfg.N())
	if dst == src {
		return dst, false
	}
	cur := float64(cfg.Load(src)) / s.Speeds[src]
	next := float64(cfg.Load(dst)+1) / s.Speeds[dst]
	return dst, next < cur
}

// Name implements sim.Mover.
func (s SpeedRLS) Name() string { return "rls-speeds" }

// SpeedDisc returns the speed-normalized discrepancy
// max_i |ℓ_i/s_i − m/S| with S = Σ s_j — the natural generalization of
// disc(ℓ) (to which it reduces when all speeds are 1).
func SpeedDisc(v loadvec.Vector, speeds []float64) float64 {
	total := 0.0
	for _, s := range speeds {
		total += s
	}
	target := float64(v.Balls()) / total
	worst := 0.0
	for i, l := range v {
		if d := math.Abs(float64(l)/speeds[i] - target); d > worst {
			worst = d
		}
	}
	return worst
}

// IsSpeedNash reports whether no single ball can strictly improve its
// experienced load: for every non-empty bin i and every bin j,
// (ℓ_j+1)/s_j ≥ ℓ_i/s_i. These are the absorbing states of SpeedRLS.
func IsSpeedNash(v loadvec.Vector, speeds []float64) bool {
	maxCur := 0.0
	for i, l := range v {
		if l == 0 {
			continue
		}
		if c := float64(l) / speeds[i]; c > maxCur {
			maxCur = c
		}
	}
	minNext := math.Inf(1)
	for j, l := range v {
		if c := float64(l+1) / speeds[j]; c < minNext {
			minNext = c
		}
	}
	return minNext >= maxCur-1e-12
}

// SpeedNashStop adapts IsSpeedNash to a per-check function usable as an
// engine stop condition via closure over the live configuration.
func SpeedNashStop(speeds []float64) func(v loadvec.Vector) bool {
	return func(v loadvec.Vector) bool { return IsSpeedNash(v, speeds) }
}

// UniformSpeeds returns n speeds all equal to 1.
func UniformSpeeds(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// BimodalSpeeds returns n speeds where a fraction fracFast of bins run at
// `fast` and the rest at 1.
func BimodalSpeeds(n int, fast float64, fracFast float64) []float64 {
	s := UniformSpeeds(n)
	cut := int(float64(n) * fracFast)
	for i := 0; i < cut; i++ {
		s[i] = fast
	}
	return s
}

// PowerLawSpeeds returns n speeds s_i = (i+1)^(−alpha) scaled so the
// fastest bin has speed 1 — a heavy-tailed heterogeneity profile.
func PowerLawSpeeds(n int, alpha float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Pow(float64(i+1), -alpha)
	}
	return s
}

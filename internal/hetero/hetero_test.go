package hetero

import (
	"math"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestNewSpeedRLSValidation(t *testing.T) {
	if _, err := NewSpeedRLS([]float64{1, 0}); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := NewSpeedRLS([]float64{1, -2}); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := NewSpeedRLS([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN speed accepted")
	}
	if _, err := NewSpeedRLS([]float64{1, 2.5}); err != nil {
		t.Errorf("valid speeds rejected: %v", err)
	}
}

func TestSpeedRLSUnitSpeedsMatchesStrictRule(t *testing.T) {
	// With unit speeds the rule (ℓ_dst+1)/1 < ℓ_src/1 is exactly
	// StrictRLS's ℓ_src > ℓ_dst + 1.
	cfg := loadvec.NewConfig(loadvec.Vector{3, 2, 1})
	mover, _ := NewSpeedRLS(UniformSpeeds(3))
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		dst, move := mover.Decide(cfg, 0, r)
		if move && dst != 2 {
			t.Fatalf("unit-speed mover moved 0→%d (loads 3→%d)", dst, cfg.Load(dst))
		}
	}
}

func TestSpeedRLSReachesNash(t *testing.T) {
	n := 16
	speeds := BimodalSpeeds(n, 4, 0.25)
	mover, err := NewSpeedRLS(speeds)
	if err != nil {
		t.Fatal(err)
	}
	v := loadvec.AllInOne().Generate(n, 160, nil)
	e := sim.NewEngine(v, mover, nil, rng.New(2))
	stop := func(e *sim.Engine) bool { return IsSpeedNash(e.Cfg().Loads(), speeds) }
	res := e.Run(stop, 10_000_000)
	if !res.Stopped {
		t.Fatalf("no Nash reached; final %v", res.Final)
	}
	// Fast bins should carry more load: compare mean load of fast vs slow.
	fast, slow := 0.0, 0.0
	for i, l := range res.Final {
		if speeds[i] > 1 {
			fast += float64(l)
		} else {
			slow += float64(l)
		}
	}
	fast /= float64(n) * 0.25
	slow /= float64(n) * 0.75
	if fast <= slow {
		t.Errorf("fast bins carry %g mean load vs slow %g", fast, slow)
	}
}

func TestSpeedDisc(t *testing.T) {
	v := loadvec.Vector{4, 2}
	speeds := []float64{2, 1}
	// S = 3, target = 6/3 = 2; experienced: 4/2=2, 2/1=2 → disc 0.
	if d := SpeedDisc(v, speeds); d > 1e-12 {
		t.Fatalf("disc = %g, want 0", d)
	}
	// Unit speeds reduce to Vector.Disc.
	v2 := loadvec.Vector{5, 1, 3}
	if math.Abs(SpeedDisc(v2, UniformSpeeds(3))-v2.Disc()) > 1e-12 {
		t.Fatal("unit-speed disc mismatch")
	}
}

func TestIsSpeedNash(t *testing.T) {
	speeds := []float64{2, 1}
	// {4,2}: experienced 2 and 2; moving a ball: to bin0 → 5/2=2.5 ≥ 2;
	// to bin1 → 3/1 = 3 ≥ 2 → Nash.
	if !IsSpeedNash(loadvec.Vector{4, 2}, speeds) {
		t.Error("balanced speed config not Nash")
	}
	// {6,0}: ball at bin0 experiences 3; moving to bin1 → 1/1 = 1 < 3 →
	// improving move exists.
	if IsSpeedNash(loadvec.Vector{6, 0}, speeds) {
		t.Error("imbalanced config reported Nash")
	}
}

func TestSpeedGenerators(t *testing.T) {
	u := UniformSpeeds(4)
	for _, s := range u {
		if s != 1 {
			t.Fatal("uniform speeds not 1")
		}
	}
	b := BimodalSpeeds(8, 3, 0.5)
	if b[0] != 3 || b[3] != 3 || b[4] != 1 {
		t.Fatalf("bimodal speeds wrong: %v", b)
	}
	p := PowerLawSpeeds(5, 1)
	if p[0] != 1 {
		t.Fatal("power-law fastest speed should be 1")
	}
	for i := 1; i < 5; i++ {
		if p[i] >= p[i-1] {
			t.Fatal("power-law speeds should decrease")
		}
	}
}

func TestWeightedEngineValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewWeightedEngine(2, []float64{1}, []int{0, 1}, r); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWeightedEngine(2, []float64{-1}, []int{0}, r); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeightedEngine(2, []float64{1}, []int{5}, r); err == nil {
		t.Error("invalid bin accepted")
	}
	if _, err := NewWeightedEngine(0, nil, nil, r); err == nil {
		t.Error("empty system accepted")
	}
}

func TestWeightedEngineConservation(t *testing.T) {
	r := rng.New(2)
	m, n := 50, 8
	e, err := NewWeightedEngine(n, BimodalWeights(m, 5, 0.2), RandomPlacement(m, n, r), r)
	if err != nil {
		t.Fatal(err)
	}
	total := e.TotalWeight()
	for i := 0; i < 20000; i++ {
		e.Step()
	}
	sum := 0.0
	for _, l := range e.Loads() {
		sum += l
	}
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("weight not conserved: %g vs %g", sum, total)
	}
}

func TestWeightedUnitWeightsReachPerfectBalance(t *testing.T) {
	// Unit weights = StrictRLS: Nash states are perfectly balanced
	// configurations.
	r := rng.New(3)
	m, n := 64, 16
	e, err := NewWeightedEngine(n, UniformWeights(m), AllInBin(m, 0), r)
	if err != nil {
		t.Fatal(err)
	}
	if !e.RunUntilNash(5_000_000, 16) {
		t.Fatal("unit-weight engine did not reach Nash")
	}
	loads := e.Loads()
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1+1e-9 {
		t.Fatalf("unit-weight Nash not perfectly balanced: min %g max %g", min, max)
	}
}

func TestWeightedNashDiscBoundedByMaxWeight(t *testing.T) {
	// At any Nash equilibrium, disc ≤ max_b w_b: experiment X2's
	// theoretical floor.
	for seed := uint64(0); seed < 5; seed++ {
		r := rng.New(seed)
		m, n := 80, 10
		heavy := 7.0
		weights := BimodalWeights(m, heavy, 0.1)
		e, err := NewWeightedEngine(n, weights, AllInBin(m, 0), r)
		if err != nil {
			t.Fatal(err)
		}
		if !e.RunUntilNash(20_000_000, 32) {
			t.Fatal("did not reach Nash")
		}
		if e.Disc() > heavy+1e-6 {
			t.Fatalf("seed %d: Nash disc %g exceeds max weight %g", seed, e.Disc(), heavy)
		}
	}
}

func TestWeightedIsNashDetectsImprovingMove(t *testing.T) {
	r := rng.New(4)
	// Two balls of weight 1 in bin 0, bin 1 empty: ball can improve
	// (0 + 1 < 2).
	e, err := NewWeightedEngine(2, []float64{1, 1}, []int{0, 0}, r)
	if err != nil {
		t.Fatal(err)
	}
	if e.IsNash() {
		t.Fatal("improving move exists but Nash reported")
	}
	// One ball anywhere is Nash.
	e2, _ := NewWeightedEngine(3, []float64{5}, []int{1}, r)
	if !e2.IsNash() {
		t.Fatal("single ball must be Nash")
	}
}

func TestWeightGenerators(t *testing.T) {
	w := BimodalWeights(10, 4, 0.3)
	if w[0] != 4 || w[2] != 4 || w[3] != 1 {
		t.Fatalf("bimodal weights wrong: %v", w)
	}
	z := ZipfWeights(20, 1.5, rng.New(5))
	maxW := 0.0
	for _, x := range z {
		if x <= 0 || x > 1 {
			t.Fatalf("zipf weight %g outside (0,1]", x)
		}
		if x > maxW {
			maxW = x
		}
	}
	if maxW != 1 {
		t.Fatalf("largest zipf weight = %g, want 1", maxW)
	}
}

func TestWeightedTimeAccounting(t *testing.T) {
	r := rng.New(6)
	const m = 40
	e, _ := NewWeightedEngine(4, UniformWeights(m), AllInBin(m, 0), r)
	for i := 0; i < 20000; i++ {
		e.Step()
	}
	want := 20000.0 / m
	if math.Abs(e.Time()-want) > 0.1*want {
		t.Fatalf("time = %g, want ~%g", e.Time(), want)
	}
}

package hetero

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// WeightedEngine simulates the §7 weighted-balls extension. Ball b has
// weight w_b > 0; the load of a bin is the sum of the weights of its
// balls, and each ball experiences its bin's load. Every ball carries an
// independent rate-1 exponential clock (as in §3); on activation it
// samples a uniform destination bin and moves iff its experienced load
// strictly improves: ℓ_dst + w_b < ℓ_src.
//
// Ball identity matters here (moves depend on the mover's weight), so
// this engine tracks balls explicitly rather than reusing sim.Engine.
// With all weights equal to 1 it coincides with StrictRLS.
type WeightedEngine struct {
	weights []float64
	ballBin []int
	loads   []float64
	n       int
	r       *rng.RNG

	time        float64
	activations int64
	moves       int64
}

// NewWeightedEngine places ball b in bins[b] with weight weights[b].
func NewWeightedEngine(n int, weights []float64, bins []int, r *rng.RNG) (*WeightedEngine, error) {
	if len(weights) != len(bins) {
		return nil, fmt.Errorf("hetero: %d weights but %d placements", len(weights), len(bins))
	}
	if len(weights) == 0 || n <= 0 {
		return nil, fmt.Errorf("hetero: need at least one ball and one bin")
	}
	e := &WeightedEngine{
		weights: append([]float64(nil), weights...),
		ballBin: append([]int(nil), bins...),
		loads:   make([]float64, n),
		n:       n,
		r:       r,
	}
	for b, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("hetero: invalid weight %g for ball %d", w, b)
		}
		if bins[b] < 0 || bins[b] >= n {
			return nil, fmt.Errorf("hetero: ball %d placed in invalid bin %d", b, bins[b])
		}
		e.loads[bins[b]] += w
	}
	return e, nil
}

// M returns the number of balls.
func (e *WeightedEngine) M() int { return len(e.weights) }

// N returns the number of bins.
func (e *WeightedEngine) N() int { return e.n }

// Time returns elapsed continuous time.
func (e *WeightedEngine) Time() float64 { return e.time }

// Activations returns the activation count.
func (e *WeightedEngine) Activations() int64 { return e.activations }

// Moves returns the move count.
func (e *WeightedEngine) Moves() int64 { return e.moves }

// Loads returns a copy of the per-bin weight totals.
func (e *WeightedEngine) Loads() []float64 { return append([]float64(nil), e.loads...) }

// TotalWeight returns Σ w_b.
func (e *WeightedEngine) TotalWeight() float64 {
	t := 0.0
	for _, w := range e.weights {
		t += w
	}
	return t
}

// Disc returns max_i |ℓ_i − W/n|, the weighted discrepancy.
func (e *WeightedEngine) Disc() float64 {
	target := e.TotalWeight() / float64(e.n)
	worst := 0.0
	for _, l := range e.loads {
		if d := math.Abs(l - target); d > worst {
			worst = d
		}
	}
	return worst
}

// Step performs one activation; returns whether the ball moved.
func (e *WeightedEngine) Step() bool {
	e.time += e.r.Exp(float64(len(e.weights)))
	b := e.r.Intn(len(e.weights))
	src := e.ballBin[b]
	dst := e.r.Intn(e.n)
	e.activations++
	if dst == src {
		return false
	}
	w := e.weights[b]
	if e.loads[dst]+w >= e.loads[src]-1e-12 {
		return false
	}
	e.loads[src] -= w
	e.loads[dst] += w
	e.ballBin[b] = dst
	e.moves++
	return true
}

// IsNash reports whether no ball has a strictly improving move: for every
// ball b, min_j ℓ_j + w_b ≥ ℓ_{bin(b)} (within floating tolerance).
// These are the absorbing states; at a Nash equilibrium the discrepancy
// is at most max_b w_b (moving any witness ball to the min bin would
// otherwise improve it).
func (e *WeightedEngine) IsNash() bool {
	minLoad := math.Inf(1)
	for _, l := range e.loads {
		if l < minLoad {
			minLoad = l
		}
	}
	for b, w := range e.weights {
		if e.loads[e.ballBin[b]]-w > minLoad+1e-9 {
			return false
		}
	}
	return true
}

// RunUntilNash steps until a Nash equilibrium is reached or the
// activation budget is exhausted; the equilibrium check (O(m)) runs every
// checkEvery activations. Returns whether equilibrium was certified.
func (e *WeightedEngine) RunUntilNash(maxActivations, checkEvery int64) bool {
	if checkEvery <= 0 {
		checkEvery = 64
	}
	if e.IsNash() {
		return true
	}
	for e.activations < maxActivations {
		e.Step()
		if e.activations%checkEvery == 0 && e.IsNash() {
			return true
		}
	}
	return e.IsNash()
}

// UniformWeights returns m unit weights.
func UniformWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

// BimodalWeights returns m weights where a fraction fracHeavy are `heavy`
// and the rest are 1.
func BimodalWeights(m int, heavy float64, fracHeavy float64) []float64 {
	w := UniformWeights(m)
	cut := int(float64(m) * fracHeavy)
	for i := 0; i < cut; i++ {
		w[i] = heavy
	}
	return w
}

// ZipfWeights returns m weights w_b = rank^(−alpha) over a random
// permutation of ranks, scaled so the largest weight is 1.
func ZipfWeights(m int, alpha float64, r *rng.RNG) []float64 {
	w := make([]float64, m)
	perm := r.Perm(m)
	for i := range w {
		w[i] = math.Pow(float64(perm[i]+1), -alpha)
	}
	return w
}

// AllInBin returns a placement of m balls in bin 0 — the weighted
// analogue of the worst-case start.
func AllInBin(m, bin int) []int {
	p := make([]int, m)
	for i := range p {
		p[i] = bin
	}
	return p
}

// RandomPlacement places each of m balls in a uniform bin.
func RandomPlacement(m, n int, r *rng.RNG) []int {
	p := make([]int, m)
	for i := range p {
		p[i] = r.Intn(n)
	}
	return p
}

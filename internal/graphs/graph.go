// Package graphs provides the network topologies for the §7 extension of
// the paper ("analyze the protocol in network topologies other than the
// complete graph") and the mixing-time estimation used to relate the
// measured balancing times to the τ_mix·ln(m) behaviour that [6] proves
// for threshold protocols on graphs.
//
// A ball in bin i samples its destination uniformly from the neighborhood
// of i (for the complete topology: from all bins, matching §3 exactly).
package graphs

import (
	"fmt"
	"math"

	"repro/internal/loadvec"
	"repro/internal/rng"
)

// Graph is a vertex-transitive-friendly adjacency interface: bins are
// vertices, and a ball in bin i may sample destinations among i's
// neighbors.
type Graph interface {
	// N returns the number of vertices (bins).
	N() int
	// Degree returns the number of neighbors of vertex i.
	Degree(i int) int
	// Neighbor returns the k-th neighbor of vertex i, 0 ≤ k < Degree(i).
	Neighbor(i, k int) int
	// Name identifies the topology.
	Name() string
}

// Complete is the paper's original setting: every bin samples uniformly
// from all n bins (including itself; a self-sample never satisfies the
// move rule, exactly as in §3).
type Complete struct{ Vertices int }

// N implements Graph.
func (g Complete) N() int { return g.Vertices }

// Degree implements Graph.
func (g Complete) Degree(int) int { return g.Vertices }

// Neighbor implements Graph.
func (g Complete) Neighbor(_, k int) int { return k }

// Name implements Graph.
func (g Complete) Name() string { return "complete" }

// Ring is the n-cycle: neighbors i−1 and i+1 (mod n).
type Ring struct{ Vertices int }

// N implements Graph.
func (g Ring) N() int { return g.Vertices }

// Degree implements Graph.
func (g Ring) Degree(int) int { return 2 }

// Neighbor implements Graph.
func (g Ring) Neighbor(i, k int) int {
	if k == 0 {
		return (i + 1) % g.Vertices
	}
	return (i - 1 + g.Vertices) % g.Vertices
}

// Name implements Graph.
func (g Ring) Name() string { return "ring" }

// Torus2D is the √n×√n torus (4 neighbors). Side must satisfy
// Side·Side = n.
type Torus2D struct{ Side int }

// N implements Graph.
func (g Torus2D) N() int { return g.Side * g.Side }

// Degree implements Graph.
func (g Torus2D) Degree(int) int { return 4 }

// Neighbor implements Graph.
func (g Torus2D) Neighbor(i, k int) int {
	s := g.Side
	row, col := i/s, i%s
	switch k {
	case 0:
		col = (col + 1) % s
	case 1:
		col = (col - 1 + s) % s
	case 2:
		row = (row + 1) % s
	default:
		row = (row - 1 + s) % s
	}
	return row*s + col
}

// Name implements Graph.
func (g Torus2D) Name() string { return "torus" }

// Hypercube is the d-dimensional hypercube on n = 2^d vertices.
type Hypercube struct{ Dim int }

// N implements Graph.
func (g Hypercube) N() int { return 1 << g.Dim }

// Degree implements Graph.
func (g Hypercube) Degree(int) int { return g.Dim }

// Neighbor implements Graph.
func (g Hypercube) Neighbor(i, k int) int { return i ^ (1 << k) }

// Name implements Graph.
func (g Hypercube) Name() string { return "hypercube" }

// Expander is the Margulis–Gabber–Galil expander: an 8-regular multigraph
// on the Side×Side torus of vertices (x, y), with neighbor slots
//
//	(x±2y, y), (x±(2y+1), y), (x, y±2x), (x, y±(2x+1))   (mod Side)
//
// Its second eigenvalue is bounded away from 1 uniformly in n, so the
// spectral gap — and with it the RLS mixing behaviour — stays Θ(1) as the
// graph grows, unlike ring (Θ(1/n²)) or torus (Θ(1/n)). The slot list is
// symmetric as a multiset (the +shift slot at (x, y) is matched by the
// −shift slot at the image vertex), so GraphRLS and the jump engines see
// a well-defined undirected multigraph; coincidences like x = 0 produce
// parallel edges and self-loops, which the slot semantics of the engines
// handle exactly (a self-slot simply never admits a move).
//
// The degree is constant (8) but the family is the repo's stand-in for
// "dense mixing at scale": it is the primary beneficiary of the
// rejection-within-blocks jump sampler and the A8 gate at large n.
type Expander struct{ Side int }

// N implements Graph.
func (g Expander) N() int { return g.Side * g.Side }

// Degree implements Graph.
func (g Expander) Degree(int) int { return 8 }

// Neighbor implements Graph.
func (g Expander) Neighbor(i, k int) int {
	s := g.Side
	x, y := i/s, i%s
	mod := func(v int) int { return ((v % s) + s) % s }
	switch k {
	case 0:
		x = mod(x + 2*y)
	case 1:
		x = mod(x - 2*y)
	case 2:
		x = mod(x + 2*y + 1)
	case 3:
		x = mod(x - 2*y - 1)
	case 4:
		y = mod(y + 2*x)
	case 5:
		y = mod(y - 2*x)
	case 6:
		y = mod(y + 2*x + 1)
	default:
		y = mod(y - 2*x - 1)
	}
	return x*s + y
}

// Name implements Graph.
func (g Expander) Name() string { return "expander" }

// RandomRegular is a random d-regular multigraph built by the pairing
// (configuration) model: d·n half-edges matched uniformly; self-loops are
// re-rolled a bounded number of times. Multi-edges are kept (they only
// reweight sampling slightly), matching standard practice.
type RandomRegular struct {
	adj  [][]int
	name string
}

// NewRandomRegular builds a random d-regular multigraph on n vertices.
// n·d must be even.
func NewRandomRegular(n, d int, r *rng.RNG) (*RandomRegular, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graphs: n·d must be even (n=%d, d=%d)", n, d)
	}
	if d < 1 || n < 2 {
		return nil, fmt.Errorf("graphs: need d ≥ 1 and n ≥ 2")
	}
	// Pair half-edges; repair self-loops by switching. A dense matching
	// has ~d/2 expected self-loops, so rejecting whole matchings would
	// essentially never terminate for superconstant d — instead each bad
	// pair trades its second stub with a uniformly random pair's, which
	// fixes it with probability 1−O(d/n·d) per pass and converges in a
	// handful of passes. A loop-free shuffle draws nothing beyond the
	// shuffle itself, so sparse constructions (and their golden
	// adjacency pins) are byte-identical to the old rejection scheme.
	for attempt := 0; attempt < 100; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for j := 0; j < d; j++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		clean := false
		for pass := 0; pass < 50 && !clean; pass++ {
			clean = true
			for i := 0; i < len(stubs); i += 2 {
				if stubs[i] == stubs[i+1] {
					clean = false
					j := 2 * r.Intn(len(stubs)/2)
					stubs[i+1], stubs[j+1] = stubs[j+1], stubs[i+1]
				}
			}
		}
		if clean {
			adj := make([][]int, n)
			for i := 0; i < len(stubs); i += 2 {
				a, b := stubs[i], stubs[i+1]
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
			return &RandomRegular{adj: adj, name: fmt.Sprintf("random-%d-regular", d)}, nil
		}
	}
	return nil, fmt.Errorf("graphs: failed to build loop-free matching")
}

// NewRandomRegularSeed builds a random d-regular multigraph from a
// dedicated RNG stream derived from seed alone. Two calls with equal
// (n, d, seed) yield identical adjacency — the construction consumes no
// caller-owned randomness, so a simulation stream is unaffected by
// whether its topology was built inline or restored from a snapshot. The
// determinism is load-bearing for persistence: root snapshots record only
// (n, d, seed) and rebuild the adjacency on resume (graph_test.go pins a
// golden adjacency hash against construction-order drift).
func NewRandomRegularSeed(n, d int, seed uint64) (*RandomRegular, error) {
	return NewRandomRegular(n, d, rng.New(seed))
}

// N implements Graph.
func (g *RandomRegular) N() int { return len(g.adj) }

// Degree implements Graph.
func (g *RandomRegular) Degree(i int) int { return len(g.adj[i]) }

// Neighbor implements Graph.
func (g *RandomRegular) Neighbor(i, k int) int { return g.adj[i][k] }

// Name implements Graph.
func (g *RandomRegular) Name() string { return g.name }

// RegularDegree returns the common degree of a regular graph, or
// (0, false) if the graph is empty or has vertices of differing degree.
// The graph jump engine needs regularity: only then is the
// per-activation move probability the single ratio W_G/(m·Δ).
func RegularDegree(g Graph) (int, bool) {
	n := g.N()
	if n == 0 {
		return 0, false
	}
	d := g.Degree(0)
	for i := 1; i < n; i++ {
		if g.Degree(i) != d {
			return 0, false
		}
	}
	return d, true
}

// IsConnected reports whether the graph is connected (BFS).
func IsConnected(g Graph) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for k := 0; k < g.Degree(v); k++ {
			w := g.Neighbor(v, k)
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n
}

// SpectralGap estimates 1 − λ₂ of the lazy random-walk transition matrix
// P_lazy = (I + P)/2 (laziness removes periodicity, e.g. on even rings)
// by power iteration on the space orthogonal to the uniform vector. The
// estimated mixing time is ln(n)/gap, the standard τ_mix ≈ ln(n)/(1−λ₂)
// heuristic used to order topologies in experiment X3.
func SpectralGap(g Graph, iters int) float64 {
	n := g.N()
	if n < 2 {
		return 1
	}
	// Deterministic pseudo-random start vector, orthogonalized.
	x := make([]float64, n)
	r := rng.New(12345)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		// Remove the uniform component.
		mean := 0.0
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		norm := 0.0
		for i := range x {
			x[i] -= mean
			norm += x[i] * x[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 1
		}
		for i := range x {
			x[i] /= norm
		}
		// y = P_lazy x.
		for i := range y {
			sum := 0.0
			d := g.Degree(i)
			for k := 0; k < d; k++ {
				sum += x[g.Neighbor(i, k)]
			}
			y[i] = 0.5*x[i] + 0.5*sum/float64(d)
		}
		// Rayleigh quotient estimate of λ₂.
		dot := 0.0
		for i := range x {
			dot += x[i] * y[i]
		}
		lambda = dot
		x, y = y, x
	}
	return 1 - lambda
}

// MixingTimeEstimate returns ln(n)/SpectralGap, the τ_mix proxy for
// experiment X3.
func MixingTimeEstimate(g Graph) float64 {
	gap := SpectralGap(g, 300)
	if gap <= 0 {
		return math.Inf(1)
	}
	return math.Log(float64(g.N())) / gap
}

// GraphRLS is the §7 extension of RLS to a topology: a ball in bin i
// samples a destination uniformly among i's neighbors and moves iff
// ℓ_i ≥ ℓ_dst + 1.
type GraphRLS struct{ G Graph }

// Decide implements sim.Mover.
func (g GraphRLS) Decide(cfg *loadvec.Config, src int, r *rng.RNG) (int, bool) {
	dst := g.G.Neighbor(src, r.Intn(g.G.Degree(src)))
	return dst, cfg.Load(src) >= cfg.Load(dst)+1
}

// Name implements sim.Mover.
func (g GraphRLS) Name() string { return "rls@" + g.G.Name() }

package graphs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// checkSymmetric validates that the neighbor relation is symmetric: if w
// appears among v's neighbors, v appears among w's (with multiplicity for
// multigraphs, checked one-directionally here).
func checkSymmetric(t *testing.T, g Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		for k := 0; k < g.Degree(v); k++ {
			w := g.Neighbor(v, k)
			if w < 0 || w >= g.N() {
				t.Fatalf("%s: neighbor %d of %d out of range", g.Name(), w, v)
			}
			found := false
			for j := 0; j < g.Degree(w); j++ {
				if g.Neighbor(w, j) == v {
					found = true
					break
				}
			}
			if !found && g.Name() != "complete" { // complete includes self-sampling, asymmetric listing is fine
				t.Fatalf("%s: edge %d→%d not symmetric", g.Name(), v, w)
			}
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete{Vertices: 5}
	if g.N() != 5 || g.Degree(0) != 5 {
		t.Fatal("bad complete graph")
	}
	// Neighbor(i, k) = k: covers all bins including self.
	seen := map[int]bool{}
	for k := 0; k < 5; k++ {
		seen[g.Neighbor(2, k)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("complete neighbors = %v", seen)
	}
	if !IsConnected(g) {
		t.Fatal("complete graph disconnected")
	}
}

func TestRing(t *testing.T) {
	g := Ring{Vertices: 6}
	checkSymmetric(t, g)
	if g.Neighbor(0, 1) != 5 || g.Neighbor(5, 0) != 0 {
		t.Fatal("ring wraparound wrong")
	}
	if !IsConnected(g) {
		t.Fatal("ring disconnected")
	}
}

func TestTorus(t *testing.T) {
	g := Torus2D{Side: 4}
	if g.N() != 16 {
		t.Fatal("torus size")
	}
	checkSymmetric(t, g)
	if !IsConnected(g) {
		t.Fatal("torus disconnected")
	}
	// Vertex 0 = (0,0): neighbors (0,1), (0,3), (1,0), (3,0) = 1, 3, 4, 12.
	want := map[int]bool{1: true, 3: true, 4: true, 12: true}
	for k := 0; k < 4; k++ {
		if !want[g.Neighbor(0, k)] {
			t.Fatalf("unexpected torus neighbor %d", g.Neighbor(0, k))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube{Dim: 4}
	if g.N() != 16 || g.Degree(0) != 4 {
		t.Fatal("hypercube shape")
	}
	checkSymmetric(t, g)
	if !IsConnected(g) {
		t.Fatal("hypercube disconnected")
	}
	// Neighbors of 0 are the powers of two.
	for k := 0; k < 4; k++ {
		if g.Neighbor(0, k) != 1<<k {
			t.Fatalf("hypercube neighbor %d = %d", k, g.Neighbor(0, k))
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(3)
	g, err := NewRandomRegular(32, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
		for k := 0; k < 4; k++ {
			if g.Neighbor(v, k) == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
	}
	checkSymmetric(t, g)
	// 4-regular random graphs on 32 vertices are connected w.h.p.; if
	// this seed gives a disconnected one, pick another seed.
	if !IsConnected(g) {
		t.Log("random 4-regular graph disconnected for this seed")
	}
}

func TestExpander(t *testing.T) {
	g := Expander{Side: 5}
	if g.N() != 25 || g.Degree(0) != 8 {
		t.Fatal("expander shape")
	}
	checkSymmetric(t, g)
	if !IsConnected(g) {
		t.Fatal("expander disconnected")
	}
	if d, ok := RegularDegree(g); !ok || d != 8 {
		t.Fatalf("expander RegularDegree = %d, %v", d, ok)
	}
	// Vertex (1,2) = 7 on side 5: slot 0 is (x+2y, y) = (1+4, 2) = (0, 2).
	if got := g.Neighbor(7, 0); got != 2 {
		t.Fatalf("expander neighbor(7,0) = %d, want 2", got)
	}
	// Slot 3 is (x−2y−1, y) = (1−5, 2) = (−4 mod 5, 2) = (1, 2): a
	// self-loop — legal in the multigraph semantics, never admissible.
	if got := g.Neighbor(7, 3); got != 7 {
		t.Fatalf("expander neighbor(7,3) = %d, want self-loop 7", got)
	}
}

func TestExpanderGapUniform(t *testing.T) {
	// The point of the family: the spectral gap does not decay with n the
	// way the ring's (Θ(1/n²)) or torus's (Θ(1/n)) does. MGG's bound gives
	// a constant; empirically the lazy gap sits near 0.08–0.15 across
	// sizes. Check it stays above the torus gap at the same n, and above
	// an absolute floor, for two sizes an order of magnitude apart.
	for _, side := range []int{8, 32} {
		n := side * side
		exp := SpectralGap(Expander{Side: side}, 600)
		tor := SpectralGap(Torus2D{Side: side}, 600)
		if exp < 0.04 {
			t.Fatalf("side %d: expander gap %g below floor", side, exp)
		}
		if exp <= tor {
			t.Fatalf("side %d: expander gap %g not above torus gap %g (n=%d)", side, exp, tor, n)
		}
	}
}

// adjacencyHash folds the full (vertex, slot) → neighbor table through
// FNV-1a. Two graphs hash equal iff every slot list matches in order.
func adjacencyHash(g Graph) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	for v := 0; v < g.N(); v++ {
		for k := 0; k < g.Degree(v); k++ {
			mix(uint64(g.Neighbor(v, k)))
		}
	}
	return h
}

func TestRandomRegularGoldenAdjacency(t *testing.T) {
	// Snapshots persist a random-regular topology as (n, d, seed) and
	// rebuild the adjacency on resume, so construction must be a pure
	// function of the seed: no map iteration, no time, no Go-version
	// dependence (rng.Shuffle is our own Fisher–Yates, not math/rand).
	// This pin turns any accidental reordering — a future "optimization"
	// of the pairing loop, a stdlib shuffle — into a loud test failure
	// instead of a silent resume corruption.
	g, err := NewRandomRegularSeed(32, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	const golden = uint64(0xbbc3e595b6b9afe5)
	if h := adjacencyHash(g); h != golden {
		t.Fatalf("random-regular adjacency drifted: hash %#x, want %#x", h, golden)
	}
	// Seeded construction must equal the explicit-stream construction it
	// wraps, and repeat calls must agree with themselves.
	g2, err := NewRandomRegular(32, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if adjacencyHash(g2) != adjacencyHash(g) {
		t.Fatal("NewRandomRegularSeed disagrees with NewRandomRegular over the same seed")
	}
}

func TestRandomRegularOddProduct(t *testing.T) {
	if _, err := NewRandomRegular(5, 3, rng.New(1)); err == nil {
		t.Fatal("odd n·d accepted")
	}
	if _, err := NewRandomRegular(1, 2, rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// Complete graph mixes fastest, hypercube next, ring slowest. The
	// spectral gaps must reflect that ordering.
	n := 64
	complete := SpectralGap(Complete{Vertices: n}, 200)
	cube := SpectralGap(Hypercube{Dim: 6}, 200)
	ring := SpectralGap(Ring{Vertices: n}, 400)
	if !(complete > cube && cube > ring) {
		t.Fatalf("gap ordering wrong: complete %g, hypercube %g, ring %g", complete, cube, ring)
	}
	if ring <= 0 {
		t.Fatal("ring gap not positive")
	}
}

func TestSpectralGapKnownValues(t *testing.T) {
	// Lazy walk on K_n: P = J/n, eigenvalues of lazy: 1 and (1/2)(1-1/n)...
	// λ₂(P) = 0 for the J/n walk including self-loop, so lazy λ₂ = 1/2·(1+0) = 0.5
	// (complete graph here includes self-sampling, handled as neighbor).
	got := SpectralGap(Complete{Vertices: 32}, 300)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("complete-graph lazy gap = %g, want ~0.5", got)
	}
	// Ring on n vertices: λ₂(P) = cos(2π/n); lazy gap = (1−cos(2π/n))/2.
	n := 32
	want := (1 - math.Cos(2*math.Pi/float64(n))) / 2
	gotRing := SpectralGap(Ring{Vertices: n}, 3000)
	if math.Abs(gotRing-want) > 0.15*want {
		t.Errorf("ring gap = %g, want ~%g", gotRing, want)
	}
}

func TestMixingTimeEstimateOrdering(t *testing.T) {
	ringTau := MixingTimeEstimate(Ring{Vertices: 64})
	cubeTau := MixingTimeEstimate(Hypercube{Dim: 6})
	if ringTau <= cubeTau {
		t.Fatalf("ring should mix slower: ring %g vs cube %g", ringTau, cubeTau)
	}
}

func TestGraphRLSRespectsTopology(t *testing.T) {
	// On a ring, moves only happen between adjacent bins.
	g := Ring{Vertices: 8}
	mover := GraphRLS{G: g}
	v := loadvec.AllInOne().Generate(8, 64, nil)
	e := sim.NewEngine(v, mover, nil, rng.New(5))
	e.PostMove = func(e *sim.Engine, src, dst int) {
		diff := (src - dst + 8) % 8
		if diff != 1 && diff != 7 {
			t.Fatalf("non-adjacent move %d→%d on ring", src, dst)
		}
	}
	res := e.Run(sim.UntilPerfect(), 5_000_000)
	if !res.Stopped {
		t.Fatal("ring RLS did not balance")
	}
}

func TestGraphRLSBalancesOnAllTopologies(t *testing.T) {
	gs := []Graph{
		Complete{Vertices: 16}, Ring{Vertices: 16}, Torus2D{Side: 4}, Hypercube{Dim: 4},
	}
	for _, g := range gs {
		v := loadvec.AllInOne().Generate(g.N(), 8*g.N(), nil)
		e := sim.NewEngine(v, GraphRLS{G: g}, nil, rng.New(6))
		res := e.Run(sim.UntilPerfect(), 20_000_000)
		if !res.Stopped {
			t.Fatalf("%s: did not balance", g.Name())
		}
	}
}

func TestGraphRLSCompleteMatchesPlainRLS(t *testing.T) {
	// GraphRLS on the complete topology is the §3 protocol: identical
	// decisions for identical random draws. Compare a full run's move
	// count distributionally (coarse sanity, exact law equality is by
	// construction).
	err := quick.Check(func(seed uint64) bool {
		r1 := rng.New(seed)
		r2 := rng.New(seed)
		v := loadvec.OneChoice().Generate(8, 40, rng.New(seed+99))
		e1 := sim.NewEngine(v, GraphRLS{G: Complete{Vertices: 8}}, nil, r1)
		e2 := sim.NewEngine(v, rlsLocal{}, nil, r2)
		res1 := e1.Run(sim.UntilPerfect(), 200000)
		res2 := e2.Run(sim.UntilPerfect(), 200000)
		return res1.Activations == res2.Activations && res1.Final.Equal(res2.Final)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

// rlsLocal mirrors core.RLS without importing internal/core (avoiding a
// test-only dependency cycle risk).
type rlsLocal struct{}

func (rlsLocal) Decide(cfg *loadvec.Config, src int, r *rng.RNG) (int, bool) {
	dst := r.Intn(cfg.N())
	return dst, cfg.Load(src) >= cfg.Load(dst)+1
}
func (rlsLocal) Name() string { return "rls-local" }

// Package testutil provides the differential test harness: a reusable
// property test that runs two constructions of the same stochastic
// process and asserts the right flavour of agreement.
//
// Two engines that share every random draw (same seed, same draw order)
// must agree *byte for byte* — identical stop times to the last bit,
// identical move counts, identical final configurations. Two engines
// that consume randomness differently (an exact sampler against a
// rejection sampler, a direct run against its jump chain) can only agree
// *in law* — their balancing-time distributions must be statistically
// indistinguishable. The harness packages both checks over a common
// fingerprint type so every engine-equivalence test in the repo — the
// P = 1 sharded pins, the exact-vs-hybrid graph sampler pair, future
// engine modes — states its claim the same way instead of hand-rolling
// comparison loops.
package testutil

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// Fingerprint is one run's identity for differential comparison. Arms
// fill what their engines expose; the harness compares what is present.
type Fingerprint struct {
	// Time is the continuous stop time of the run.
	Time float64
	// Activations and Moves count ball activations and protocol moves.
	Activations, Moves int64
	// Final is the final load vector.
	Final []int
	// Extra holds any further float64 invariants (e.g. phase-crossing
	// times); compared bit-exactly by ByteIdentical, ignored by SameLaw.
	Extra []float64
	// MoveSeq, if recorded, is the ordered (src, dst) move sequence;
	// compared element-wise by ByteIdentical, ignored by SameLaw.
	MoveSeq [][2]int
}

// Arm produces one run's fingerprint from a seed. The two arms of a
// differential test must interpret the seed the same way (ByteIdentical)
// or independently (SameLaw — the harness decorrelates the streams
// itself, so arms may share an interpretation).
type Arm func(seed uint64) Fingerprint

// ByteIdentical asserts the two arms produce bit-identical fingerprints
// for every seed: equal Time under math.Float64bits (NaN-safe, no
// epsilon), equal counters, equal final loads, equal Extra words, equal
// move sequences. This is the claim behind the repo's "P = 1 sharded ≡
// direct" and "auto sampler ≡ exact sampler below threshold" pins: not
// just the same law, the same draws.
func ByteIdentical(t *testing.T, name string, seeds []uint64, a, b Arm) {
	t.Helper()
	for _, seed := range seeds {
		fa, fb := a(seed), b(seed)
		if math.Float64bits(fa.Time) != math.Float64bits(fb.Time) {
			t.Errorf("%s seed %d: time %v vs %v", name, seed, fa.Time, fb.Time)
		}
		if fa.Activations != fb.Activations || fa.Moves != fb.Moves {
			t.Errorf("%s seed %d: counters (%d, %d) vs (%d, %d)",
				name, seed, fa.Activations, fa.Moves, fb.Activations, fb.Moves)
		}
		if len(fa.Final) != len(fb.Final) {
			t.Errorf("%s seed %d: final over %d vs %d bins", name, seed, len(fa.Final), len(fb.Final))
		} else {
			for i := range fa.Final {
				if fa.Final[i] != fb.Final[i] {
					t.Errorf("%s seed %d: final[%d] = %d vs %d", name, seed, i, fa.Final[i], fb.Final[i])
					break
				}
			}
		}
		if len(fa.Extra) != len(fb.Extra) {
			t.Errorf("%s seed %d: %d vs %d extra invariants", name, seed, len(fa.Extra), len(fb.Extra))
		} else {
			for i := range fa.Extra {
				if math.Float64bits(fa.Extra[i]) != math.Float64bits(fb.Extra[i]) {
					t.Errorf("%s seed %d: extra[%d] = %v vs %v", name, seed, i, fa.Extra[i], fb.Extra[i])
					break
				}
			}
		}
		if len(fa.MoveSeq) != len(fb.MoveSeq) {
			t.Errorf("%s seed %d: %d vs %d moves recorded", name, seed, len(fa.MoveSeq), len(fb.MoveSeq))
		} else {
			for i := range fa.MoveSeq {
				if fa.MoveSeq[i] != fb.MoveSeq[i] {
					t.Errorf("%s seed %d: move %d is %v vs %v", name, seed, i, fa.MoveSeq[i], fb.MoveSeq[i])
					break
				}
			}
		}
	}
}

// armSeedSalt decorrelates the two arms' seed sequences so the KS test's
// independence assumption holds even when both arms feed the seed to the
// same RNG construction (correlated samples would bias the test toward
// agreement — a silently weakened gate).
const armSeedSalt = 0x9e3779b97f4a7c15

// SameLaw asserts the two arms' stop-time laws are KS-indistinguishable
// at level alpha over reps independent runs per arm: the claim for pairs
// that cannot share draws, like the exact admissible index against the
// rejection-within-blocks sampler. Seeds derive from seed0 with the two
// arms salted apart.
func SameLaw(t *testing.T, name string, seed0 uint64, reps int, alpha float64, a, b Arm) {
	t.Helper()
	ta := make([]float64, reps)
	tb := make([]float64, reps)
	for i := 0; i < reps; i++ {
		s := seed0 + uint64(i)*0x5851f42d4c957f2d
		ta[i] = a(s).Time
		tb[i] = b(s ^ armSeedSalt).Time
	}
	same, d := stats.SameDistribution(ta, tb, alpha)
	if !same {
		t.Errorf("%s: stop-time laws differ (KS D = %.4f at α = %g over %d reps)", name, d, alpha, reps)
	}
}

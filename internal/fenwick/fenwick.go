// Package fenwick is the one Fenwick (binary indexed) tree shared by
// every layer that needs prefix sums with point updates: the level
// index's per-level count/ball/move-weight trees, the stale census's
// global and per-part counts, the jump engine's graph move-weight
// index, and the Fenwick activation sampler. Deduplicating the three
// historical copies means the persist codec serializes exactly one
// tree shape, and a tree's array form is a pure function of its leaf
// values — so encode(leaves) → From(leaves) round-trips bit-exactly
// regardless of the Add history that produced it.
//
// The API is 0-based on the outside (leaf i ∈ [0, n)) and 1-based
// internally, as usual for Fenwick trees. All operations are O(log n)
// except From and Leaves, which are O(n).
package fenwick

// Tree holds cumulative sums over n int64 leaves.
type Tree struct {
	tree []int64 // 1-based implicit tree; tree[0] unused
	n    int
	top  int // highest power of two <= n, the descend start for Find
}

// New returns a zeroed tree over n leaves (n >= 0).
func New(n int) *Tree {
	t := &Tree{tree: make([]int64, n+1), n: n, top: 1}
	for t.top<<1 <= n {
		t.top <<= 1
	}
	return t
}

// From builds a tree holding the given leaf values in O(n): each node
// pushes its accumulated sum up to its parent exactly once.
func From(vals []int64) *Tree {
	t := New(len(vals))
	copy(t.tree[1:], vals)
	for i := 1; i <= t.n; i++ {
		if j := i + i&(-i); j <= t.n {
			t.tree[j] += t.tree[i]
		}
	}
	return t
}

// N returns the number of leaves.
func (t *Tree) N() int { return t.n }

// Add adds delta to leaf i.
func (t *Tree) Add(i int, delta int64) {
	for pos := i + 1; pos <= t.n; pos += pos & (-pos) {
		t.tree[pos] += delta
	}
}

// Prefix returns the sum of leaves [0, i]; i < 0 yields 0.
func (t *Tree) Prefix(i int) int64 {
	var s int64
	for pos := i + 1; pos > 0; pos -= pos & (-pos) {
		s += t.tree[pos]
	}
	return s
}

// Value returns leaf i with a single O(log n) traversal: starting from
// tree[i+1] (the range sum ending at i+1), subtract the sibling ranges
// down to the common ancestor of i+1 and i instead of computing two
// full prefix sums.
func (t *Tree) Value(i int) int64 {
	pos := i + 1
	s := t.tree[pos]
	stop := pos - pos&(-pos)
	for pos--; pos != stop; pos -= pos & (-pos) {
		s -= t.tree[pos]
	}
	return s
}

// Find returns the smallest leaf i with Prefix(i) > target, plus the
// residual target - Prefix(i-1), by descending power-of-two strides.
// target must satisfy 0 <= target < Prefix(n-1); out-of-range targets
// return the last leaf.
func (t *Tree) Find(target int64) (int, int64) {
	pos := 0
	for step := t.top; step > 0; step >>= 1 {
		if next := pos + step; next <= t.n && t.tree[next] <= target {
			pos = next
			target -= t.tree[next]
		}
	}
	return pos, target // pos is the 1-based predecessor == 0-based answer
}

// FindDiff is Find over the pointwise difference a − b of two
// same-shape trees, without materializing it: the smallest leaf i with
// a.Prefix(i) − b.Prefix(i) > target, plus the residual. The stale
// census uses this to index "global minus own" counts directly.
func FindDiff(a, b *Tree, target int64) (int, int64) {
	pos := 0
	for step := a.top; step > 0; step >>= 1 {
		if next := pos + step; next <= a.n {
			if d := a.tree[next] - b.tree[next]; d <= target {
				pos = next
				target -= d
			}
		}
	}
	return pos, target
}

// Leaves returns a fresh slice of the n leaf values in O(n) by
// unwinding the push-up of From.
func (t *Tree) Leaves() []int64 {
	vals := make([]int64, t.n)
	copy(vals, t.tree[1:])
	for i := t.n; i >= 1; i-- {
		if j := i + i&(-i); j <= t.n {
			vals[j-1] -= vals[i-1]
		}
	}
	return vals
}

// Clone deep-copies the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{tree: append([]int64(nil), t.tree...), n: t.n, top: t.top}
}

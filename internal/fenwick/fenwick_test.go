package fenwick

import (
	"math/rand"
	"testing"
)

// naive mirrors a Tree with a plain slice.
type naive []int64

func (v naive) prefix(i int) int64 {
	var s int64
	for j := 0; j <= i && j < len(v); j++ {
		s += v[j]
	}
	return s
}

func (v naive) find(target int64) (int, int64) {
	for i := range v {
		if target < v[i] {
			return i, target
		}
		target -= v[i]
	}
	return len(v) - 1, target
}

func TestTreeAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 8, 9, 64, 100} {
		vals := make(naive, n)
		for i := range vals {
			vals[i] = int64(r.Intn(5))
		}
		tr := From(vals)
		for step := 0; step < 200; step++ {
			i := r.Intn(n)
			d := int64(r.Intn(7) - 2)
			if vals[i]+d < 0 {
				d = -vals[i]
			}
			vals[i] += d
			tr.Add(i, d)

			j := r.Intn(n)
			if got, want := tr.Prefix(j), vals.prefix(j); got != want {
				t.Fatalf("n=%d Prefix(%d) = %d, want %d", n, j, got, want)
			}
			if got, want := tr.Value(j), vals[j]; got != want {
				t.Fatalf("n=%d Value(%d) = %d, want %d", n, j, got, want)
			}
			if total := vals.prefix(n - 1); total > 0 {
				target := int64(r.Intn(int(total)))
				gi, grem := tr.Find(target)
				wi, wrem := vals.find(target)
				if gi != wi || grem != wrem {
					t.Fatalf("n=%d Find(%d) = (%d,%d), want (%d,%d)", n, target, gi, grem, wi, wrem)
				}
			}
		}
		if tr.Prefix(-1) != 0 {
			t.Fatalf("Prefix(-1) = %d, want 0", tr.Prefix(-1))
		}
		got := tr.Leaves()
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d Leaves()[%d] = %d, want %d", n, i, got[i], vals[i])
			}
		}
		cl := tr.Clone()
		cl.Add(0, 100)
		if tr.Prefix(0) == cl.Prefix(0) {
			t.Fatal("Clone shares state with the original")
		}
	}
}

func TestFindDiff(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const n = 50
	av := make(naive, n)
	bv := make(naive, n)
	for i := range av {
		bv[i] = int64(r.Intn(3))
		av[i] = bv[i] + int64(r.Intn(4)) // a >= b pointwise, as in the stale census
	}
	a, b := From(av), From(bv)
	diff := make(naive, n)
	for i := range diff {
		diff[i] = av[i] - bv[i]
	}
	total := diff.prefix(n - 1)
	for target := int64(0); target < total; target++ {
		gi, grem := FindDiff(a, b, target)
		wi, wrem := diff.find(target)
		if gi != wi || grem != wrem {
			t.Fatalf("FindDiff(%d) = (%d,%d), want (%d,%d)", target, gi, grem, wi, wrem)
		}
	}
}

package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/hetero"
	"repro/internal/loadvec"
	"repro/internal/opensys"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "X1",
		Title:    "bins with speeds: convergence to speed-proportional balance",
		PaperRef: "§7 direction 1",
		Claim: "RLS-with-speeds reaches a Nash state (no ball can improve) from the " +
			"worst-case start; time grows with speed skew, final normalized disc is small.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("X1", "speed heterogeneity",
				"profile", "n", "m", "E[T to Nash]", "ci95", "mean final speed-disc")
			n := 32
			if cfg.Scale == Full {
				n = 128
			}
			m := 16 * n
			reps := sweepReps(cfg.Scale)
			profiles := []struct {
				name   string
				speeds []float64
			}{
				{"uniform", hetero.UniformSpeeds(n)},
				{"bimodal 4x/25%", hetero.BimodalSpeeds(n, 4, 0.25)},
				{"power-law α=0.5", hetero.PowerLawSpeeds(n, 0.5)},
			}
			for _, p := range profiles {
				speeds := p.speeds
				times, discs := Replicate2(cfg.Seed^uint64(len(p.name)), reps, func(r *rng.RNG) (float64, float64) {
					mover, err := hetero.NewSpeedRLS(speeds)
					if err != nil {
						panic(err)
					}
					v := loadvec.AllInOne().Generate(n, m, r)
					e := sim.NewEngine(v, mover, sim.NewFenwick(), r)
					stop := func(e *sim.Engine) bool {
						return hetero.IsSpeedNash(e.Cfg().Loads(), speeds)
					}
					res := e.Run(stop, 0)
					return res.Time, hetero.SpeedDisc(res.Final, speeds)
				})
				var s stats.Summary
				s.AddAll(times)
				t.Addf(p.name, n, m, s.Mean(), s.CI95(), stats.Mean(discs))
			}
			t.Note("Nash = no single ball can strictly improve its experienced load ℓ_i/s_i")
			return t
		},
	})

	register(Experiment{
		ID:       "X2",
		Title:    "weighted balls: Nash convergence and the max-weight disc floor",
		PaperRef: "§7 direction 2",
		Claim: "Weighted RLS converges to a Nash state whose discrepancy is at most " +
			"max_b w_b; heavier tails converge slower.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("X2", "weight heterogeneity",
				"profile", "n", "m", "E[T to Nash]", "ci95", "mean final disc", "max weight")
			n := 16
			m := 8 * n
			if cfg.Scale == Full {
				n = 64
				m = 8 * n
			}
			reps := sweepReps(cfg.Scale)
			profiles := []struct {
				name    string
				weights func(r *rng.RNG) []float64
				maxW    float64
			}{
				{"unit", func(*rng.RNG) []float64 { return hetero.UniformWeights(m) }, 1},
				{"bimodal 5x/10%", func(*rng.RNG) []float64 { return hetero.BimodalWeights(m, 5, 0.1) }, 5},
				{"zipf α=1", func(r *rng.RNG) []float64 { return hetero.ZipfWeights(m, 1, r) }, 1},
			}
			for _, p := range profiles {
				pw := p
				times, discs := Replicate2(cfg.Seed^uint64(m+len(p.name)), reps, func(r *rng.RNG) (float64, float64) {
					e, err := hetero.NewWeightedEngine(n, pw.weights(r), hetero.AllInBin(m, 0), r)
					if err != nil {
						panic(err)
					}
					if !e.RunUntilNash(500_000_000, 64) {
						panic("weighted run exhausted budget")
					}
					return e.Time(), e.Disc()
				})
				var s stats.Summary
				s.AddAll(times)
				t.Addf(pw.name, n, m, s.Mean(), s.CI95(), stats.Mean(discs), pw.maxW)
			}
			t.Note("final disc ≤ max weight in every profile (Nash floor)")
			return t
		},
	})

	register(Experiment{
		ID:       "X3",
		Title:    "topologies: balancing time vs estimated mixing time",
		PaperRef: "§7 direction 3 (cf. [6])",
		Claim: "Balancing time orders with the topology's mixing time: " +
			"complete < hypercube < torus < ring at equal n and m.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("X3", "topology sweep",
				"topology", "n", "τ_mix estimate", "E[T]", "ci95", "E[T]/complete")
			// n is a power of four so the torus side and hypercube dimension
			// describe exactly the same bin count.
			side, dim := 8, 6
			reps := sweepReps(cfg.Scale)
			if cfg.Scale == Full {
				side, dim = 16, 8
				reps = 12 // the ring's diffusive timescale dominates cost
			}
			n := side * side
			m := 8 * n
			gs := []graphs.Graph{
				graphs.Complete{Vertices: n},
				graphs.Hypercube{Dim: dim},
				graphs.Torus2D{Side: side},
				graphs.Ring{Vertices: n},
			}
			var completeMean float64
			for i, g := range gs {
				gg := g
				times := Replicate(cfg.Seed^uint64(i*17), reps, func(r *rng.RNG) float64 {
					v := loadvec.AllInOne().Generate(n, m, r)
					e := sim.NewEngine(v, graphs.GraphRLS{G: gg}, sim.NewFenwick(), r)
					res := e.Run(sim.UntilPerfect(), 0)
					if !res.Stopped {
						panic(fmt.Sprintf("graph run on %s exhausted budget", gg.Name()))
					}
					return res.Time
				})
				var s stats.Summary
				s.AddAll(times)
				if i == 0 {
					completeMean = s.Mean()
				}
				t.Addf(g.Name(), n, graphs.MixingTimeEstimate(g), s.Mean(), s.CI95(), s.Mean()/completeMean)
			}
			t.Note("τ_mix estimated as ln(n)/(lazy spectral gap); [6] proves τ_mix·ln m for threshold protocols")
			return t
		},
	})

	register(Experiment{
		ID:       "O1",
		Title:    "open system ([11]): RLS migration collapses the max queue",
		PaperRef: "§2 discussion of [11] (open systems)",
		Claim: "With Poisson(λn) arrivals and rate-μ M/M/1 servers, the " +
			"no-migration maximum queue follows the log_{1/ρ}(n) extreme-value " +
			"scale; adding rate-1 RLS migration clocks collapses the time-averaged " +
			"maximum and discrepancy to O(1) and reduces mean jobs (idle servers " +
			"get work — behaviour approaching the pooled M/M/n queue).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("O1", "open-system steady state",
				"ρ", "β", "mean jobs/server", "M/M/1 pred", "mean max queue",
				"log_{1/ρ}n scale", "mean disc", "frac perfect")
			n := 64
			warm, window := 2000.0, 15000.0
			if cfg.Scale == Full {
				n, warm, window = 128, 5000, 60000
			}
			for _, rho := range []float64{0.5, 0.8, 0.9} {
				for _, beta := range []float64{0, 1} {
					s, err := opensys.New(opensys.Params{N: n, Lambda: rho, Mu: 1, Beta: beta},
						rng.New(cfg.Seed^uint64(1000*rho)+uint64(beta)))
					if err != nil {
						panic(err)
					}
					st := s.Run(warm, window)
					t.Addf(rho, beta, st.MeanJobs/float64(n), opensys.MM1MeanJobs(rho),
						st.MeanMax, opensys.MM1MaxQueueScale(n, rho), st.MeanDisc, st.FracPerfect)
				}
			}
			t.Note("n=%d servers, warmup %g, window %g time units", n, warm, window)
			t.Note("β=0 rows are the n-independent-M/M/1 baseline; β=1 adds the paper's migration clocks")
			return t
		},
	})

	register(Experiment{
		ID:       "A1",
		Title:    "ablation: ball-list vs Fenwick activation samplers",
		PaperRef: "DESIGN.md §4 choice 1",
		Claim: "Both samplers induce the same law on balancing time (means agree " +
			"within CI); they trade O(m) memory/O(1) step vs O(n) memory/O(log n) step.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A1", "engine ablation",
				"sampler", "n", "m", "E[T]", "ci95")
			n, m := 64, 1024
			if cfg.Scale == Full {
				n, m = 256, 16384
			}
			reps := 3 * sweepReps(cfg.Scale)
			type mk struct {
				name string
				make func() sim.ActivationSampler
			}
			for _, s := range []mk{
				{"ball-list", func() sim.ActivationSampler { return sim.NewBallList() }},
				{"fenwick", func() sim.ActivationSampler { return sim.NewFenwick() }},
			} {
				maker := s.make
				times := Replicate(cfg.Seed^uint64(len(s.name)), reps, func(r *rng.RNG) float64 {
					v := loadvec.AllInOne().Generate(n, m, r)
					e := sim.NewEngine(v, core.RLS{}, maker(), r)
					return e.Run(sim.UntilPerfect(), 0).Time
				})
				var sm stats.Summary
				sm.AddAll(times)
				t.Addf(s.name, n, m, sm.Mean(), sm.CI95())
			}
			t.Note("per-step cost is compared by BenchmarkEngineStep* in internal/sim")
			return t
		},
	})

	register(Experiment{
		ID:       "A3",
		Title:    "ablation: literal per-ball clocks vs Poisson superposition",
		PaperRef: "§3 model / DESIGN.md §4 choice 4",
		Claim: "Driving activations from an event heap of m independent Exp(1) " +
			"clocks (the literal §3 model) yields the same balancing-time law as " +
			"Exp(m) gaps with uniform ball choice (two-sample KS test).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A3", "time-model ablation",
				"sampler", "n", "m", "E[T]", "ci95", "KS D vs ball-list", "same law?")
			n, m := 32, 256
			reps := 10 * sweepReps(cfg.Scale)
			if cfg.Scale == Full {
				n, m = 64, 1024
			}
			collect := func(mk func() sim.ActivationSampler, seed uint64) []float64 {
				return Replicate(seed, reps, func(r *rng.RNG) float64 {
					v := loadvec.AllInOne().Generate(n, m, nil)
					e := sim.NewEngine(v, core.RLS{}, mk(), r)
					return e.Run(sim.UntilPerfect(), 0).Time
				})
			}
			base := collect(func() sim.ActivationSampler { return sim.NewBallList() }, cfg.Seed+1)
			var bs stats.Summary
			bs.AddAll(base)
			t.Addf("ball-list (Exp(m) gaps)", n, m, bs.Mean(), bs.CI95(), 0.0, "-")
			for _, s := range []struct {
				name string
				mk   func() sim.ActivationSampler
			}{
				{"fenwick (Exp(m) gaps)", func() sim.ActivationSampler { return sim.NewFenwick() }},
				{"event-heap (per-ball clocks)", func() sim.ActivationSampler { return sim.NewEventHeap() }},
			} {
				times := collect(s.mk, cfg.Seed+uint64(7*len(s.name)))
				var sm stats.Summary
				sm.AddAll(times)
				same, d := stats.SameDistribution(base, times, 0.001)
				t.Addf(s.name, n, m, sm.Mean(), sm.CI95(), d, fmt.Sprintf("%v", same))
			}
			t.Note("reps per sampler: %d; KS significance 0.001", reps)
			return t
		},
	})

	register(Experiment{
		ID:       "A2",
		Title:    "ablation: ≥ tie rule (paper) vs > rule ([12]/[11])",
		PaperRef: "§3 remark",
		Claim: "Both variants have precisely the same balancing-time law for " +
			"identical balls and bins.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A2", "tie-rule ablation",
				"rule", "n", "m", "E[T]", "ci95")
			n, m := 64, 1024
			if cfg.Scale == Full {
				n, m = 256, 16384
			}
			reps := 3 * sweepReps(cfg.Scale)
			for _, mv := range []sim.Mover{core.RLS{}, core.StrictRLS{}} {
				mover := mv
				times := Replicate(cfg.Seed^uint64(len(mover.Name())), reps, func(r *rng.RNG) float64 {
					v := loadvec.AllInOne().Generate(n, m, r)
					e := sim.NewEngine(v, mover, sim.NewFenwick(), r)
					return e.Run(sim.UntilPerfect(), 0).Time
				})
				var sm stats.Summary
				sm.AddAll(times)
				t.Addf(mover.Name(), n, m, sm.Mean(), sm.CI95())
			}
			t.Note("means agreeing within CI reproduces the §3 equivalence remark")
			return t
		},
	})
}

package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "A5",
		Title:    "ablation: direct engine vs goroutine-sharded engine",
		PaperRef: "§3 (m independent Poisson clocks — a naturally parallel process)",
		Claim: "Partitioning the bins across concurrent shard workers — local " +
			"activations applied immediately, cross-shard moves deferred to " +
			"epoch barriers behind a stale-snapshot filter — preserves the " +
			"balancing-time law of the sequential direct engine (two-sample KS " +
			"test) when epochs are fine relative to the balancing time, while " +
			"cross-shard traffic stays a bounded share of activations.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A5", "sharded-engine ablation",
				"regime", "n", "m", "P", "E[T] direct", "E[T] sharded",
				"x-moves/act", "KS D", "crit(α=0.01)", "same law?")
			regimes := []struct {
				name string
				n, m int
				p    int
			}{
				{"all-in-one m=8n", 24, 192, 2},
				{"dense one-choice m=8n", 32, 256, 4},
			}
			reps := 8 * sweepReps(cfg.Scale)
			if cfg.Scale == Full {
				regimes[0].n, regimes[0].m = 48, 384
				regimes[1].n, regimes[1].m = 64, 512
			}
			for ri, rg := range regimes {
				n, m, p := rg.n, rg.m, rg.p
				gen := loadvec.Generator(loadvec.AllInOne())
				if ri == 1 {
					gen = loadvec.OneChoice()
				}
				// Fine epochs: about one activation per shard between
				// barriers, so deferral delays are ~1/m of a time unit —
				// negligible against balancing times of a few units.
				epoch := float64(p) / float64(m)
				seed := cfg.Seed ^ uint64(1+ri*524287)
				directT := Replicate(seed, reps, func(r *rng.RNG) float64 {
					v := gen.Generate(n, m, r)
					return sim.NewEngine(v, core.RLS{}, nil, r).Run(sim.UntilPerfect(), 0).Time
				})
				// Replicate2 keeps the per-rep cross-move share out of shared
				// state: replications run on parallel workers.
				shardedT, crossPerAct := Replicate2(seed^0x9e3779b97f4a7c15, reps, func(r *rng.RNG) (float64, float64) {
					v := gen.Generate(n, m, r)
					e := sim.NewSharded(v, p, epoch, r)
					res := e.Run(sim.ShardedUntilPerfect(), 0)
					return res.Time, float64(e.CrossApplied()) / float64(res.Activations)
				})
				crossFrac := stats.Mean(crossPerAct)
				same, d := stats.SameDistribution(directT, shardedT, 0.01)
				t.Addf(rg.name, n, m, p,
					stats.Mean(directT), stats.Mean(shardedT),
					crossFrac, d, stats.KSCritical(reps, reps, 0.01),
					fmt.Sprintf("%v", same))
			}
			t.Note("reps per engine per regime: %d; KS significance 0.01", reps)
			t.Note("x-moves/act: applied cross-shard moves per activation — the queue-drained minority")
			return t
		},
	})
}

package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "A6",
		Title:    "ablation: direct engine vs sharded rejection-free jump engine",
		PaperRef: "Theorem 1 / Lemmas 15–16 (jump chain) + §3 (independent Poisson clocks)",
		Claim: "Composing the two accelerations — per-shard level indices skip " +
			"each worker's null activations in geometric blocks (local move " +
			"weight W_s plus an external weight X_s against the stale " +
			"cross-shard snapshot), while cross-shard moves still queue " +
			"through bounded channels and land at epoch barriers — preserves " +
			"the balancing-time law of the sequential direct engine " +
			"(two-sample KS test) when epochs are fine relative to the " +
			"balancing time, at O(events) instead of O(activations) cost.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A6", "sharded-jump ablation",
				"regime", "n", "m", "P", "E[T] direct", "E[T] shardedjump",
				"x-moves/act", "KS D", "crit(α=0.01)", "same law?")
			regimes := []struct {
				name string
				n, m int
				p    int
			}{
				{"end-game n=m all-in-one", 48, 48, 4},
				{"dense one-choice m=8n", 24, 192, 2},
			}
			reps := 8 * sweepReps(cfg.Scale)
			if cfg.Scale == Full {
				regimes[0].n, regimes[0].m = 96, 96
				regimes[1].n, regimes[1].m = 48, 384
			}
			for ri, rg := range regimes {
				n, m, p := rg.n, rg.m, rg.p
				gen := loadvec.Generator(loadvec.AllInOne())
				if ri == 1 {
					gen = loadvec.OneChoice()
				}
				// Fine epochs, as in A5: about one activation per shard between
				// barriers, so cross-move deferrals are ~1/m of a time unit —
				// negligible against balancing times of a few units. (The
				// adaptive auto epoch is the throughput policy; fidelity runs
				// pick their epoch explicitly.)
				epoch := float64(p) / float64(m)
				seed := cfg.Seed ^ uint64(1+ri*131071)
				directT := Replicate(seed, reps, func(r *rng.RNG) float64 {
					v := gen.Generate(n, m, r)
					return sim.NewEngine(v, core.RLS{}, nil, r).Run(sim.UntilPerfect(), 0).Time
				})
				shardedT, crossPerAct := Replicate2(seed^0x9e3779b97f4a7c15, reps, func(r *rng.RNG) (float64, float64) {
					v := gen.Generate(n, m, r)
					e := sim.NewShardedJump(v, p, epoch, r)
					res := e.Run(sim.ShardedUntilPerfect(), 0)
					return res.Time, float64(e.CrossApplied()) / float64(res.Activations)
				})
				crossFrac := stats.Mean(crossPerAct)
				same, d := stats.SameDistribution(directT, shardedT, 0.01)
				t.Addf(rg.name, n, m, p,
					stats.Mean(directT), stats.Mean(shardedT),
					crossFrac, d, stats.KSCritical(reps, reps, 0.01),
					fmt.Sprintf("%v", same))
			}
			t.Note("reps per engine per regime: %d; KS significance 0.01", reps)
			t.Note("x-moves/act: applied cross-shard moves per activation — the geometric blocks count the skipped nulls in the denominator")
			return t
		},
	})
}

package harness

// Verdict tests: quick-scale experiments must reproduce the *shape* of
// each paper claim, with windows generous enough for quick-scale noise.
// If a code change breaks the science (not just the plumbing), these
// fail. All are skipped under -short.

import (
	"strings"
	"testing"
)

func TestT1RatioBandQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("T1")
	tb := e.Run(RunConfig{Seed: 21, Scale: Quick})
	col := colIndex(t, tb, "ratio")
	for _, row := range tb.Rows {
		ratio := parseF(t, row[col])
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("T1 ratio %g outside the Θ band (row %v)", ratio, row)
		}
	}
}

func TestP3RatioNearLemma17Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("P3")
	tb := e.Run(RunConfig{Seed: 22, Scale: Quick})
	col := colIndex(t, tb, "ratio")
	for _, row := range tb.Rows {
		ratio := parseF(t, row[col])
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("P3 ratio %g far from the Lemma 17 sum (row %v)", ratio, row)
		}
	}
}

func TestL16RateAboveBoundQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("L16")
	tb := e.Run(RunConfig{Seed: 23, Scale: Quick})
	col := colIndex(t, tb, "rate/bound")
	for _, row := range tb.Rows {
		if parseF(t, row[col]) < 1 {
			t.Errorf("L16 drift below the ∅/3 bound: %v", row)
		}
	}
}

func TestX3TopologyOrderingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("X3")
	tb := e.Run(RunConfig{Seed: 24, Scale: Quick})
	col := colIndex(t, tb, "E[T]")
	byName := map[string]float64{}
	for _, row := range tb.Rows {
		byName[row[0]] = parseF(t, row[col])
	}
	// The robust part of the claim at quick scale: the ring (τ_mix ~ n²)
	// is far slower than every expander-like topology. The full ordering
	// complete < hypercube < torus < ring emerges at full scale (see
	// EXPERIMENTS.md); at n=64 the hypercube's focused neighborhoods can
	// edge out the complete graph within noise.
	for name, v := range byName {
		if name != "ring" && byName["ring"] < 5*v {
			t.Errorf("ring (%g) not ≫ %s (%g)", byName["ring"], name, v)
		}
	}
	if byName["torus"] < byName["complete"] {
		t.Errorf("torus (%g) faster than complete (%g)", byName["torus"], byName["complete"])
	}
}

func TestCMP2ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("CMP2")
	tb := e.Run(RunConfig{Seed: 25, Scale: Quick})
	rlsCol := colIndex(t, tb, "RLS E[T] (perfect)")
	edmCol := colIndex(t, tb, "EDM rounds (perfect)")
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if parseF(t, last[rlsCol]) >= parseF(t, first[rlsCol]) {
		t.Errorf("RLS time did not fall with m: %v -> %v", first[rlsCol], last[rlsCol])
	}
	if parseF(t, last[edmCol]) < parseF(t, first[edmCol]) {
		t.Errorf("EDM rounds fell with m: %v -> %v", first[edmCol], last[edmCol])
	}
}

func TestO1MigrationCollapsesMaxQueueQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("O1")
	tb := e.Run(RunConfig{Seed: 26, Scale: Quick})
	maxCol := colIndex(t, tb, "mean max queue")
	// Rows alternate β=0, β=1 per ρ.
	for i := 0; i+1 < len(tb.Rows); i += 2 {
		off := parseF(t, tb.Rows[i][maxCol])
		on := parseF(t, tb.Rows[i+1][maxCol])
		if on >= off {
			t.Errorf("migration did not reduce max queue at rows %d/%d: %g vs %g", i, i+1, off, on)
		}
	}
}

func TestA3SameLawQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("A3")
	tb := e.Run(RunConfig{Seed: 27, Scale: Quick})
	col := colIndex(t, tb, "same law?")
	for _, row := range tb.Rows {
		if row[col] != "-" && row[col] != "true" {
			t.Errorf("sampler law mismatch: %v", row)
		}
	}
}

func TestCMP3ThresholdNeverPerfectQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("CMP3")
	tb := e.Run(RunConfig{Seed: 28, Scale: Quick})
	col := colIndex(t, tb, "thr final disc")
	for _, row := range tb.Rows {
		if parseF(t, row[col]) < 1 {
			t.Errorf("threshold protocol reached perfection, contradicting the freeze: %v", row)
		}
	}
}

func TestExperimentTitlesMentionPaperArtifacts(t *testing.T) {
	for _, e := range All() {
		ref := strings.ToLower(e.PaperRef)
		if !strings.Contains(ref, "lemma") && !strings.Contains(ref, "theorem") &&
			!strings.Contains(ref, "figure") && !strings.Contains(ref, "§") &&
			!strings.Contains(ref, "design") {
			t.Errorf("experiment %s has unanchored PaperRef %q", e.ID, e.PaperRef)
		}
	}
}

package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is an experiment's output: a titled grid of cells plus free-form
// notes (measurement conditions, verdicts).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given identity and column headers.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// Add appends a row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row with %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values: each value is rendered with %v
// for strings/ints and %.4g for floats.
func (t *Table) Addf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(cells...)
}

// Note appends a free-form note rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// RenderCSV writes an RFC-4180-ish CSV rendering (cells are quoted when
// they contain commas or quotes).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

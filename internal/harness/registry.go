package harness

import (
	"fmt"
	"sort"
)

// Scale selects the experiment size. Quick keeps every experiment under a
// couple of seconds for tests and benchmarks; Full is the scale recorded
// in EXPERIMENTS.md.
type Scale int

const (
	// Quick runs reduced sweeps suitable for go test / go bench.
	Quick Scale = iota
	// Full runs the sweeps reported in EXPERIMENTS.md.
	Full
)

// RunConfig parameterizes an experiment run.
type RunConfig struct {
	// Seed is the root seed; all replication streams split from it.
	Seed uint64
	// Scale selects Quick or Full sweeps.
	Scale Scale
}

// Experiment couples a DESIGN.md experiment ID with the code regenerating
// its table.
type Experiment struct {
	// ID is the DESIGN.md identifier (T1, LB2, DML, ...).
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef names the paper artifact (theorem/lemma/figure/section).
	PaperRef string
	// Claim states what the paper asserts and this experiment checks.
	Claim string
	// Run executes the experiment and returns its table.
	Run func(cfg RunConfig) *Table
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs panic at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

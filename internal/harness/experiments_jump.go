package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "A4",
		Title:    "ablation: direct engine vs rejection-free jump engine",
		PaperRef: "Theorem 1 / Lemmas 15–16 (the embedded jump chain)",
		Claim: "Simulating only the jump chain of productive moves — geometric " +
			"activation blocks, Gamma(k, m) time gaps, exact (src, dst) sampling " +
			"from the level index — yields the same balancing-time law as the " +
			"per-activation engine (two-sample KS test), at O(moves) instead of " +
			"O(activations) cost.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A4", "jump-chain ablation",
				"regime", "n", "m", "E[T] direct", "E[T] jump", "acts ratio",
				"moves ratio", "KS D", "crit(α=0.01)", "same law?")
			regimes := []struct {
				name string
				n, m int
			}{
				{"end-game n=m", 48, 48},
				{"dense m=8n", 24, 192},
			}
			reps := 12 * sweepReps(cfg.Scale)
			if cfg.Scale == Full {
				regimes[0].n, regimes[0].m = 128, 128
				regimes[1].n, regimes[1].m = 64, 512
			}
			type runStats struct{ time, acts, moves float64 }
			for ri, rg := range regimes {
				n, m := rg.n, rg.m
				collect := func(seed uint64, jump bool) (times []float64, acts, moves float64) {
					rs := replicate(seed, reps, func(r *rng.RNG) runStats {
						v := loadvec.AllInOne().Generate(n, m, nil)
						var res sim.Result
						if jump {
							res = sim.NewJumpEngine(v, r).Run(sim.UntilPerfect(), 0)
						} else {
							res = sim.NewEngine(v, core.RLS{}, nil, r).Run(sim.UntilPerfect(), 0)
						}
						return runStats{res.Time, float64(res.Activations), float64(res.Moves)}
					})
					times = make([]float64, len(rs))
					for i, s := range rs {
						times[i] = s.time
						acts += s.acts / float64(reps)
						moves += s.moves / float64(reps)
					}
					return times, acts, moves
				}
				seed := cfg.Seed ^ uint64(1+ri*8191)
				directT, directActs, directMoves := collect(seed, false)
				jumpT, jumpActs, jumpMoves := collect(seed^0x9e3779b97f4a7c15, true)
				same, d := stats.SameDistribution(directT, jumpT, 0.01)
				t.Addf(rg.name, n, m,
					stats.Mean(directT), stats.Mean(jumpT),
					jumpActs/directActs, jumpMoves/directMoves,
					d, stats.KSCritical(reps, reps, 0.01), fmt.Sprintf("%v", same))
			}
			t.Note("reps per engine per regime: %d; KS significance 0.01", reps)
			t.Note("acts ratio ≈ 1: the geometric blocks tally the skipped nulls faithfully; moves ratio ≈ 1: same jump chain")
			return t
		},
	})
}

package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// rlsRun runs plain RLS from gen to perfect balance and returns
// (continuous time, activations).
func rlsRun(n, m int, gen loadvec.Generator, r *rng.RNG) (float64, float64) {
	v := gen.Generate(n, m, r)
	e := sim.NewEngine(v, core.RLS{}, sim.NewFenwick(), r)
	res := e.Run(sim.UntilPerfect(), 0)
	if !res.Stopped {
		panic(fmt.Sprintf("harness: RLS run exhausted budget at n=%d m=%d", n, m))
	}
	return res.Time, float64(res.Activations)
}

// regime describes one m(n) scaling used in the Theorem 1 sweeps.
type regime struct {
	name string
	m    func(n int) int
}

func theoremRegimes() []regime {
	return []regime{
		{"m=n", func(n int) int { return n }},
		{"m=n·ln n", func(n int) int { return n * int(math.Ceil(math.Log(float64(n)))) }},
		{"m=n^1.5", func(n int) int { return n * int(math.Ceil(math.Sqrt(float64(n)))) }},
		{"m=n²/4", func(n int) int { return n * n / 4 }},
	}
}

func sweepNs(s Scale) []int {
	if s == Full {
		return []int{64, 128, 256, 512, 1024}
	}
	return []int{64, 128, 256}
}

func sweepReps(s Scale) int {
	if s == Full {
		return 32
	}
	return 12
}

func init() {
	register(Experiment{
		ID:       "T1",
		Title:    "E[T] = Θ(ln n + n²/m) across regimes (worst-case start)",
		PaperRef: "Theorem 1 (expectation)",
		Claim: "The mean time to perfect balance from the all-in-one-bin start, " +
			"divided by ln(n) + n²/m, stays within a constant band across n and m regimes.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("T1", "Theorem 1 expectation bound",
				"regime", "n", "m", "E[T]", "ci95", "ln n + n²/m", "ratio")
			reps := sweepReps(cfg.Scale)
			var ratios []float64
			for _, reg := range theoremRegimes() {
				for _, n := range sweepNs(cfg.Scale) {
					m := reg.m(n)
					times := Replicate(cfg.Seed^uint64(n*31+m), reps, func(r *rng.RNG) float64 {
						tt, _ := rlsRun(n, m, loadvec.AllInOne(), r)
						return tt
					})
					var s stats.Summary
					s.AddAll(times)
					pred := core.Theorem1Expectation(n, m)
					ratio := s.Mean() / pred
					ratios = append(ratios, ratio)
					t.Addf(reg.name, n, m, s.Mean(), s.CI95(), pred, ratio)
				}
			}
			lo, hi := stats.RatioSpread(ones(len(ratios)), ratios)
			t.Note("ratio spread across all cells: [%.3g, %.3g] (Θ means this stays bounded)", lo, hi)
			t.Note("reps per cell: %d", reps)
			return t
		},
	})

	register(Experiment{
		ID:       "T2",
		Title:    "w.h.p. bound: tail quantiles scale with ln n · (1 + n²/m)",
		PaperRef: "Theorem 1 (w.h.p.)",
		Claim: "The 90th and 99th percentile balancing times, divided by " +
			"ln(n) + ln(n)·n²/m, stay within a constant band.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("T2", "Theorem 1 w.h.p. bound",
				"regime", "n", "m", "p50", "p90", "p99", "whp-pred", "p99/pred")
			reps := 4 * sweepReps(cfg.Scale)
			regimes := []regime{theoremRegimes()[0], theoremRegimes()[1]}
			ns := sweepNs(cfg.Scale)
			for _, reg := range regimes {
				for _, n := range ns {
					m := reg.m(n)
					times := Replicate(cfg.Seed^uint64(n*77+m), reps, func(r *rng.RNG) float64 {
						tt, _ := rlsRun(n, m, loadvec.AllInOne(), r)
						return tt
					})
					pred := core.Theorem1WHP(n, m)
					t.Addf(reg.name, n, m,
						stats.Quantile(times, 0.5), stats.Quantile(times, 0.9),
						stats.Quantile(times, 0.99), pred, stats.Quantile(times, 0.99)/pred)
				}
			}
			t.Note("reps per cell: %d", reps)
			return t
		},
	})

	register(Experiment{
		ID:       "LB1",
		Title:    "Ω(ln n) lower bound: all balls in one bin",
		PaperRef: "§4 lower bound 1",
		Claim: "From the single-bin start, E[T] ≥ H_m − H_∅ (at least m−∅ " +
			"activations are needed; their expected duration telescopes to the " +
			"harmonic gap). With m = n² the n²/m term is O(1), so the harmonic " +
			"bound is also tight: the ratio stays bounded.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("LB1", "harmonic lower bound",
				"n", "m", "E[T]", "ci95", "H_m−H_∅", "E[T]/bound")
			reps := 2 * sweepReps(cfg.Scale)
			for _, n := range sweepNs(cfg.Scale) {
				m := n * n // dense: Theorem 1 collapses to Θ(ln n), the binding term
				times := Replicate(cfg.Seed^uint64(n*13), reps, func(r *rng.RNG) float64 {
					tt, _ := rlsRun(n, m, loadvec.AllInOne(), r)
					return tt
				})
				var s stats.Summary
				s.AddAll(times)
				lb := core.LowerBoundAllInOne(n, m)
				t.Addf(n, m, s.Mean(), s.CI95(), lb, s.Mean()/lb)
			}
			t.Note("every ratio must be ≥ 1 (it is a lower bound) and stay bounded (it is tight at m=n²)")
			return t
		},
	})

	register(Experiment{
		ID:       "LB2",
		Title:    "Ω(n²/m) lower bound: one bin at ∅+1, one at ∅−1",
		PaperRef: "§4 lower bound 2",
		Claim: "From the ±1 configuration, T is exactly Exp((∅+1)/n): the measured " +
			"mean matches n/(∅+1) (not merely its order) and the measured p50/mean " +
			"matches ln 2 (exponential law).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("LB2", "exact exponential lower-bound instance",
				"n", "∅", "E[T]", "ci95", "n/(∅+1)", "ratio", "p50/mean")
			reps := 8 * sweepReps(cfg.Scale)
			for _, n := range sweepNs(cfg.Scale) {
				for _, avg := range []int{4, 16} {
					m := n * avg
					times := Replicate(cfg.Seed^uint64(n*7+avg), reps, func(r *rng.RNG) float64 {
						tt, _ := rlsRun(n, m, loadvec.DeltaPair(1), r)
						return tt
					})
					var s stats.Summary
					s.AddAll(times)
					exact := core.LowerBoundDeltaPair(n, m)
					t.Addf(n, avg, s.Mean(), s.CI95(), exact, s.Mean()/exact,
						stats.Quantile(times, 0.5)/s.Mean())
				}
			}
			t.Note("ratio ≈ 1 and p50/mean ≈ ln 2 ≈ 0.693 confirm the exact exponential law")
			return t
		},
	})
}

// ones returns a slice of k ones (denominators for RatioSpread).
func ones(k int) []float64 {
	o := make([]float64, k)
	for i := range o {
		o[i] = 1
	}
	return o
}

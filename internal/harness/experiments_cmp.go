package harness

import (
	"fmt"

	"repro/internal/loadvec"
	"repro/internal/protocols"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "CMP1",
		Title:    "RLS vs Czumaj–Riley–Scheideler from two-choice placements",
		PaperRef: "§2 class 1 ([9])",
		Claim: "From a Greedy[2] placement, RLS reaches perfect balance within " +
			"O(n²) activations; CRS needs polynomially many pair-draws with a larger " +
			"exponent (n^Θ(1), exponent ≥ 4 per [9]) and can even be structurally stuck.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("CMP1", "activations to perfect balance",
				"n", "m", "RLS acts (mean)", "RLS acts/n²", "CRS draws (median)", "CRS success", "CRS draws/n²")
			ns := []int{8, 16, 32}
			budgetFactor := int64(64) // draws budget: 64·n³ ≈ n⁴ at these sizes
			crsReps := 8
			if cfg.Scale == Full {
				ns = []int{16, 32, 64}
				budgetFactor = 256
			}
			reps := sweepReps(cfg.Scale)
			for _, n := range ns {
				m := 8 * n // density at which CRS's equitable orientation exists w.h.p.
				_, acts := meanRLS(cfg.Seed^uint64(n), reps, n, m, loadvec.TwoChoice())
				crsDraws := make([]float64, 0, crsReps)
				success := 0
				root := rng.New(cfg.Seed ^ uint64(n*999))
				budget := int64(n) * int64(n) * int64(n) * budgetFactor
				for i := 0; i < crsReps; i++ {
					r := root.Split()
					c := protocols.NewCRS(n, m, r)
					stepsTaken, ok := c.RunUntilPerfect(r, budget)
					if ok {
						success++
						crsDraws = append(crsDraws, float64(stepsTaken))
					}
				}
				med := 0.0
				if len(crsDraws) > 0 {
					med = stats.Quantile(crsDraws, 0.5)
				}
				n2 := float64(n) * float64(n)
				t.Addf(n, m, acts, acts/n2, med, fmt.Sprintf("%d/%d", success, crsReps), med/n2)
			}
			t.Note("CRS budget: %d·n³ draws; unfinished runs counted as failures", budgetFactor)
			t.Note("the growing CRS draws/n² column vs the flat RLS acts/n² column is the §2 comparison")
			return t
		},
	})

	register(Experiment{
		ID:       "CMP2",
		Title:    "selfish protocols depend on m; RLS does not",
		PaperRef: "§2 class 2 ([10], [4])",
		Claim: "At fixed n, as m grows, RLS's balancing time falls (the n²/m term) " +
			"while the synchronous selfish protocols' round counts do not improve " +
			"comparably (inherent m-dependency; one round ≈ one RLS time unit).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("CMP2", "time (RLS) vs rounds (selfish) at fixed n",
				"n", "m", "RLS E[T] (perfect)", "EDM rounds (perfect)", "DS rounds (disc≤2)", "DS perfect?")
			n := 32
			ms := []int{64, 256, 1024}
			dsCap := 3000
			if cfg.Scale == Full {
				n = 64
				ms = []int{128, 512, 2048, 8192}
				dsCap = 20000
			}
			reps := sweepReps(cfg.Scale)
			for _, m := range ms {
				rlsT, _ := meanRLS(cfg.Seed^uint64(m), reps, n, m, loadvec.OneChoice())
				edm := meanRounds(cfg.Seed^uint64(m*3), reps, n, m,
					protocols.EvenDarMansour{}, protocols.Perfect, 200000)
				ds := meanRounds(cfg.Seed^uint64(m*7), reps, n, m,
					protocols.DistributedSelfish{}, protocols.BalancedWithin(2), dsCap)
				// DS to *perfect* balance takes n⁴-scale rounds ([4]);
				// probe one replication against a modest cap to record
				// the qualitative gap without burning hours.
				dsPerfect := "≤cap"
				probe := Replicate(cfg.Seed^uint64(m*13), 1, func(r *rng.RNG) float64 {
					cfgv := loadvec.NewConfig(loadvec.OneChoice().Generate(n, m, r))
					_, ok := protocols.RunRounds(protocols.DistributedSelfish{}, cfgv, r, protocols.Perfect, dsCap)
					if ok {
						return 1
					}
					return 0
				})
				if probe[0] == 0 {
					dsPerfect = fmt.Sprintf(">%d rounds", dsCap)
				}
				t.Addf(n, m, rlsT, edm, ds, dsPerfect)
			}
			t.Note("one-choice starts; EDM = Even-Dar–Mansour (global average known), DS = distributed selfish [4]")
			t.Note("the EDM/DS round columns grow with m while RLS E[T] falls — §2's inherent m-dependency")
			return t
		},
	})

	register(Experiment{
		ID:       "CMP3",
		Title:    "threshold balancing reaches O(1)-factor fast but never perfection",
		PaperRef: "§2 class 3 ([1])",
		Claim: "The threshold protocol reaches disc ≤ ∅ quickly (O(ln m)-ish rounds) " +
			"but freezes above perfect balance; RLS reaches disc < 1.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("CMP3", "threshold vs RLS final quality",
				"n", "m", "thr rounds to ∅-balance", "thr final disc", "RLS E[T]", "RLS final disc")
			n := 32
			if cfg.Scale == Full {
				n = 64
			}
			reps := sweepReps(cfg.Scale)
			for _, avg := range []int{16, 64} {
				m := n * avg
				thr := protocols.Threshold{Factor: 2, MoveProb: 0.5}
				rounds, finalDisc := Replicate2(cfg.Seed^uint64(avg), reps, func(r *rng.RNG) (float64, float64) {
					cfgv := loadvec.NewConfig(loadvec.AllInOne().Generate(n, m, r))
					rd, _ := protocols.RunRounds(thr, cfgv, r, protocols.BalancedWithin(cfgv.Avg()), 100000)
					// Keep running a while longer to show the freeze.
					for i := 0; i < 50; i++ {
						thr.Round(cfgv, r)
					}
					return float64(rd), cfgv.Disc()
				})
				rlsT, _ := meanRLS(cfg.Seed^uint64(avg*11), reps, n, m, loadvec.AllInOne())
				t.Addf(n, m, stats.Mean(rounds), stats.Mean(finalDisc), rlsT, 0.0)
			}
			t.Note("threshold factor 2, move prob 1/2; RLS final disc < 1 by definition of its stop")
			return t
		},
	})
}

// meanRLS returns the mean (time, activations) of RLS runs to perfection.
func meanRLS(seed uint64, reps, n, m int, gen loadvec.Generator) (float64, float64) {
	times, acts := Replicate2(seed, reps, func(r *rng.RNG) (float64, float64) {
		return rlsRun(n, m, gen, r)
	})
	return stats.Mean(times), stats.Mean(acts)
}

// meanRounds returns the mean number of rounds a synchronous protocol
// needs to reach the given target from a one-choice start.
func meanRounds(seed uint64, reps, n, m int, p protocols.RoundProtocol, target func(*loadvec.Config) bool, maxRounds int) float64 {
	rounds := Replicate(seed, reps, func(r *rng.RNG) float64 {
		cfgv := loadvec.NewConfig(loadvec.OneChoice().Generate(n, m, r))
		rd, _ := protocols.RunRounds(p, cfgv, r, target, maxRounds)
		return float64(rd)
	})
	return stats.Mean(rounds)
}

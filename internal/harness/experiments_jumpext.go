package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:       "A7",
		Title:    "ablation: strict-rule direct engine vs strict-rule jump engine",
		PaperRef: "§3 remark / [12],[11] (the strict tie rule)",
		Claim: "The strict rule's jump chain — move weight W' = Σ v·count[v]·C(v−2), " +
			"the eligible-destination prefix shifted one level down — yields the " +
			"same balancing-time law as the per-activation strict engine " +
			"(two-sample KS test), at O(moves) instead of O(activations) cost.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A7", "strict-rule jump-chain ablation",
				"regime", "n", "m", "E[T] direct", "E[T] jump", "acts ratio",
				"moves ratio", "KS D", "crit(α=0.01)", "same law?")
			regimes := []struct {
				name string
				n, m int
			}{
				{"end-game n=m", 48, 48},
				{"dense m=8n", 24, 192},
			}
			reps := 12 * sweepReps(cfg.Scale)
			if cfg.Scale == Full {
				regimes[0].n, regimes[0].m = 128, 128
				regimes[1].n, regimes[1].m = 64, 512
			}
			type runStats struct{ time, acts, moves float64 }
			for ri, rg := range regimes {
				n, m := rg.n, rg.m
				collect := func(seed uint64, jump bool) (times []float64, acts, moves float64) {
					rs := replicate(seed, reps, func(r *rng.RNG) runStats {
						v := loadvec.AllInOne().Generate(n, m, nil)
						var res sim.Result
						if jump {
							res = sim.NewStrictJumpEngine(v, r).Run(sim.UntilPerfect(), 0)
						} else {
							res = sim.NewEngine(v, core.StrictRLS{}, nil, r).Run(sim.UntilPerfect(), 0)
						}
						return runStats{res.Time, float64(res.Activations), float64(res.Moves)}
					})
					times = make([]float64, len(rs))
					for i, s := range rs {
						times[i] = s.time
						acts += s.acts / float64(reps)
						moves += s.moves / float64(reps)
					}
					return times, acts, moves
				}
				seed := cfg.Seed ^ uint64(1+ri*8191)
				directT, directActs, directMoves := collect(seed, false)
				jumpT, jumpActs, jumpMoves := collect(seed^0x9e3779b97f4a7c15, true)
				same, d := stats.SameDistribution(directT, jumpT, 0.01)
				t.Addf(rg.name, n, m,
					stats.Mean(directT), stats.Mean(jumpT),
					jumpActs/directActs, jumpMoves/directMoves,
					d, stats.KSCritical(reps, reps, 0.01), fmt.Sprintf("%v", same))
			}
			t.Note("reps per engine per regime: %d; KS significance 0.01", reps)
			t.Note("strict stop: W' = 0 ⟺ max−min ≤ 1 ⟺ perfect balance, so neither engine stalls short of the target")
			return t
		},
	})

	register(Experiment{
		ID:       "A8",
		Title:    "ablation: graph-restricted direct engine vs graph jump engine",
		PaperRef: "§7 (graph-restricted sampling) / Bogdan et al. local search",
		Claim: "On a Δ-regular topology the jump chain with exact per-source " +
			"admissible-slot counts — W_G = Σ load(i)·adm[i], per-activation move " +
			"probability W_G/(m·Δ) — yields the same balancing-time law as the " +
			"per-activation GraphRLS engine (two-sample KS test), with zero " +
			"rejected samples. On the dense families (random 8-regular, MGG " +
			"expander) the rejection-within-blocks hybrid — blocks sized by the " +
			"lazy bound Ŵ_G ≥ W_G, flagged events accepted w.p. adm/admUB — " +
			"matches the exact jump engine's law in turn.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("A8", "graph jump-chain ablation",
				"topology", "n", "m", "E[T] direct", "E[T] jump", "acts ratio",
				"moves ratio", "KS D", "crit(α=0.01)", "same law?")
			ring, side, dim := 16, 4, 4
			if cfg.Scale == Full {
				ring, side, dim = 64, 8, 6
			}
			topos := []struct {
				name string
				g    graphs.Graph
			}{
				{"ring", graphs.Ring{Vertices: ring}},
				{"torus", graphs.Torus2D{Side: side}},
				{"hypercube", graphs.Hypercube{Dim: dim}},
			}
			reps := 12 * sweepReps(cfg.Scale)
			type runStats struct{ time, acts, moves float64 }
			for ti, tp := range topos {
				g := tp.g
				n := g.N()
				m := 2 * n
				collect := func(seed uint64, jump bool) (times []float64, acts, moves float64) {
					rs := replicate(seed, reps, func(r *rng.RNG) runStats {
						v := loadvec.AllInOne().Generate(n, m, nil)
						var res sim.Result
						if jump {
							res = sim.NewGraphJumpEngine(v, g, r).Run(sim.UntilPerfect(), 0)
						} else {
							res = sim.NewEngine(v, graphs.GraphRLS{G: g}, nil, r).Run(sim.UntilPerfect(), 0)
						}
						return runStats{res.Time, float64(res.Activations), float64(res.Moves)}
					})
					times = make([]float64, len(rs))
					for i, s := range rs {
						times[i] = s.time
						acts += s.acts / float64(reps)
						moves += s.moves / float64(reps)
					}
					return times, acts, moves
				}
				seed := cfg.Seed ^ uint64(1+ti*8191)
				directT, directActs, directMoves := collect(seed, false)
				jumpT, jumpActs, jumpMoves := collect(seed^0x9e3779b97f4a7c15, true)
				same, d := stats.SameDistribution(directT, jumpT, 0.01)
				t.Addf(tp.name, n, m,
					stats.Mean(directT), stats.Mean(jumpT),
					jumpActs/directActs, jumpMoves/directMoves,
					d, stats.KSCritical(reps, reps, 0.01), fmt.Sprintf("%v", same))
			}
			// PR 10 extension: the dense families where the auto sampler
			// switches to rejection-within-blocks. Direct simulation at the
			// Full sizes is out of reach, so these rows hold the hybrid to
			// the exact jump engine — whose law the rows above pin to the
			// direct engine — closing the chain direct ≡ exact ≡ hybrid.
			// The one-choice start keeps the Full size (n = 65536) feasible.
			denseSide := 16
			if cfg.Scale == Full {
				denseSide = 256
			}
			denseN := denseSide * denseSide
			rr, err := graphs.NewRandomRegularSeed(denseN, 8, cfg.Seed|1)
			if err != nil {
				panic(fmt.Sprintf("harness: A8 random-regular build: %v", err))
			}
			dense := []struct {
				name string
				g    graphs.Graph
			}{
				{"random-8-regular", rr},
				{"expander", graphs.Expander{Side: denseSide}},
			}
			const denseReps = 8
			for di, tp := range dense {
				g := tp.g
				n := g.N()
				m := 2 * n
				collect := func(seed uint64, mode sim.GraphSamplerMode) (times []float64, acts, moves float64) {
					rs := replicate(seed, denseReps, func(r *rng.RNG) runStats {
						v := loadvec.OneChoice().Generate(n, m, r)
						res := sim.NewGraphJumpEngineMode(v, g, mode, r).Run(sim.UntilPerfect(), 0)
						return runStats{res.Time, float64(res.Activations), float64(res.Moves)}
					})
					times = make([]float64, len(rs))
					for i, s := range rs {
						times[i] = s.time
						acts += s.acts / float64(denseReps)
						moves += s.moves / float64(denseReps)
					}
					return times, acts, moves
				}
				seed := cfg.Seed ^ uint64(31+di*8191)
				exactT, exactActs, exactMoves := collect(seed, sim.GraphSamplerExact)
				hybT, hybActs, hybMoves := collect(seed^0x9e3779b97f4a7c15, sim.GraphSamplerRejection)
				same, d := stats.SameDistribution(exactT, hybT, 0.01)
				t.Addf(tp.name, n, m,
					stats.Mean(exactT), stats.Mean(hybT),
					hybActs/exactActs, hybMoves/exactMoves,
					d, stats.KSCritical(denseReps, denseReps, 0.01), fmt.Sprintf("%v", same))
			}
			t.Note("reps per engine per topology: %d; KS significance 0.01; m = 2n from the single-bin start", reps)
			t.Note("dense rows (random-8-regular, expander): exact jump vs forced-rejection hybrid, %d reps each, one-choice start", denseReps)
			t.Note("diffusion on a graph is slow: E[T] grows with the mixing time, and the jump engine's advantage grows with it")
			return t
		},
	})
}

package harness

import (
	"bytes"
	"testing"
	"time"
)

// TestAllExperimentsQuick runs every registered experiment at Quick scale:
// the end-to-end gate that the whole reproduction pipeline — substrates,
// protocols, extensions, statistics — works together. Runtime-heavy, so
// skipped under -short.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			start := time.Now()
			tb := e.Run(RunConfig{Seed: 7, Scale: Quick})
			if tb == nil {
				t.Fatal("nil table")
			}
			if tb.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 {
				t.Error("empty table")
			}
			var buf bytes.Buffer
			tb.Render(&buf)
			if buf.Len() == 0 {
				t.Error("empty rendering")
			}
			t.Logf("%s: %d rows in %v", e.ID, len(tb.Rows), time.Since(start))
		})
	}
}

package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// The scaling study: wall-clock speedup-vs-P curves for the parallel
// engines, the measurement ROADMAP item 2 calls for. Three workloads
// bracket the regimes the sharded engines were built for:
//
//   - dense: n = m from a one-choice start over a fixed time horizon with
//     coarse explicit epochs — every bin busy, a large share of
//     activations productive, barriers amortized. The regime where
//     parallel shards should approach linear speedup.
//   - endgame: UntilPerfect from a one-choice start at m = 4n — dominated
//     by the sparse tail where the jump engines skip null blocks and the
//     sharded variant pays per-move barriers. The regime where
//     shardedjump must hold its own against sequential jump.
//   - churnstorm: a balanced system hit by alternating churn bursts
//     (batched arrivals/departures) and short re-balancing runs — the
//     open-system Session pattern, exercising the churn fast path and
//     repeated short Runs.
//
// Every (workload, engine, P) cell is timed as best-of-Reps full passes
// (construction excluded, Run only); speedup is the same engine's P = 1
// time over the cell's time, so the curves answer "does adding shards
// help this engine" — the direct/jump baselines are reported alongside so
// the absolute cost of sharding at P = 1 stays visible. Speedups depend
// on hardware parallelism: interpret curves against the recorded NumCPU
// and GOMAXPROCS (a P = 4 sweep on a 1-core box measures scheduling
// overhead, not scaling).

// ScalingPoint is one cell of the scaling study.
type ScalingPoint struct {
	Workload string  // dense | endgame | churnstorm
	Engine   string  // direct | jump | sharded | shardedjump
	P        int     // shard count (1 for the sequential baselines)
	NsPerOp  float64 // best-of-reps wall time for one workload pass
	Speedup  float64 // same engine's P=1 time / this cell's time
}

// Name returns the cell's benchmark-style identifier as recorded in the
// BENCH json files, e.g. "ScalingDense/sharded/P4" or
// "ScalingEndgame/jump".
func (pt ScalingPoint) Name() string {
	base := "Scaling" + map[string]string{
		"dense":      "Dense",
		"endgame":    "Endgame",
		"churnstorm": "Churnstorm",
	}[pt.Workload]
	if pt.Engine == "direct" || pt.Engine == "jump" {
		return fmt.Sprintf("%s/%s", base, pt.Engine)
	}
	return fmt.Sprintf("%s/%s/P%d", base, pt.Engine, pt.P)
}

// ScalingConfig parameterizes RunScaling.
type ScalingConfig struct {
	// N is the dense workload's bin count (= ball count); the endgame and
	// churnstorm workloads derive smaller systems from it (they do far
	// more sequential work per bin). Defaults to 1<<15.
	N int
	// Reps is the timing repetitions per cell (best-of). Defaults to 3.
	Reps int
	// MaxP bounds the shard sweep: P runs over the powers of two up to
	// MaxP, plus MaxP itself. Defaults to GOMAXPROCS.
	MaxP int
	// Seed fixes every workload's initial vectors and engine streams, so
	// two invocations time identical work.
	Seed uint64
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.N <= 0 {
		c.N = 1 << 15
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.MaxP <= 0 {
		c.MaxP = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// sweepP returns the shard counts of the study: powers of two up to MaxP,
// plus MaxP itself when it is not a power of two.
func sweepP(maxP int) []int {
	var ps []int
	for p := 1; p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	if last := ps[len(ps)-1]; last != maxP {
		ps = append(ps, maxP)
	}
	return ps
}

// scalingWorkload runs one full pass of a workload on one engine variant
// and must do identical simulated work for every (engine, P) at a fixed
// seed — only wall-clock may differ. The run function receives a fresh
// engine per rep.
type scalingWorkload struct {
	name string
	// run executes one timed pass for the given engine ("direct", "jump",
	// "sharded", "shardedjump") at shard count p.
	run func(engine string, p int, seed uint64)
}

func buildWorkloads(cfg ScalingConfig) []scalingWorkload {
	dense := scalingWorkload{name: "dense"}
	dense.run = func(engine string, p int, seed uint64) {
		const horizon, epoch = 2.0, 0.125
		r := rng.New(seed)
		v := loadvec.OneChoice().Generate(cfg.N, cfg.N, r)
		switch engine {
		case "direct":
			e := sim.NewEngine(v, core.RLS{}, sim.NewBallList(), r)
			e.Run(sim.UntilTime(horizon), 0)
		case "sharded":
			s := sim.NewSharded(v, p, epoch, r)
			s.Run(sim.ShardedUntilTime(horizon), 0)
		case "shardedjump":
			s := sim.NewShardedJump(v, p, epoch, r)
			s.SetHorizon(horizon)
			s.Run(sim.ShardedUntilTime(horizon), 0)
		case "jump":
			e := sim.NewJumpEngine(v, r)
			e.SetHorizon(horizon)
			e.Run(sim.UntilTime(horizon), 0)
		}
	}

	// Endgame: smaller n — UntilPerfect's sparse tail costs many sequential
	// jump steps per bin.
	en := cfg.N / 8
	if en < 512 {
		en = 512
	}
	endgame := scalingWorkload{name: "endgame"}
	endgame.run = func(engine string, p int, seed uint64) {
		r := rng.New(seed)
		v := loadvec.OneChoice().Generate(en, 4*en, r)
		switch engine {
		case "direct":
			e := sim.NewEngine(v, core.RLS{}, sim.NewBallList(), r)
			e.Run(sim.UntilPerfect(), 0)
		case "jump":
			e := sim.NewJumpEngine(v, r)
			e.Run(sim.UntilPerfect(), 0)
		case "sharded":
			s := sim.NewSharded(v, p, 0, r)
			s.Run(sim.ShardedUntilPerfect(), 0)
		case "shardedjump":
			s := sim.NewShardedJump(v, p, 0, r)
			s.Run(sim.ShardedUntilPerfect(), 0)
		}
	}

	// Churnstorm: balanced start, then bursts of arrivals/departures
	// alternating with short re-balancing runs.
	cn := cfg.N / 4
	if cn < 1024 {
		cn = 1024
	}
	const rounds = 6
	churnstorm := scalingWorkload{name: "churnstorm"}
	churnstorm.run = func(engine string, p int, seed uint64) {
		r := rng.New(seed)
		v := loadvec.Balanced().Generate(cn, 2*cn, r)
		burst := cn / 4
		churn := rng.New(seed ^ 0x9e3779b97f4a7c15)
		switch engine {
		case "direct", "jump":
			var e *sim.Engine
			if engine == "direct" {
				e = sim.NewEngine(v, core.RLS{}, sim.NewBallList(), r)
			} else {
				e = sim.NewJumpEngine(v, r)
			}
			for round := 0; round < rounds; round++ {
				for i := 0; i < burst; i++ {
					e.AddBall(churn.Intn(cn))
					e.RemoveBall(e.RandomBin())
				}
				end := e.Time() + 0.5
				if engine == "jump" {
					e.SetHorizon(end)
				}
				e.Run(sim.UntilTime(end), 0)
				if engine == "jump" {
					e.SetHorizon(0)
				}
			}
		case "sharded", "shardedjump":
			var s *sim.Sharded
			if engine == "sharded" {
				s = sim.NewSharded(v, p, 0, r)
			} else {
				s = sim.NewShardedJump(v, p, 0, r)
			}
			for round := 0; round < rounds; round++ {
				for i := 0; i < burst; i++ {
					s.AddBall(churn.Intn(cn))
					s.RemoveBall(s.RandomBin())
				}
				end := s.Time() + 0.5
				if s.Jump() {
					s.SetHorizon(end)
				}
				s.Run(sim.ShardedUntilTime(end), 0)
				if s.Jump() {
					s.SetHorizon(0)
				}
			}
		}
	}
	return []scalingWorkload{dense, endgame, churnstorm}
}

// RunScaling executes the scaling study and returns its cells in a stable
// order (workload, then engine family, then P). Timing is wall-clock
// best-of-Reps; everything else about each cell is deterministic in
// cfg.Seed.
func RunScaling(cfg ScalingConfig) []ScalingPoint {
	cfg = cfg.withDefaults()
	ps := sweepP(cfg.MaxP)
	var out []ScalingPoint

	timeCell := func(w scalingWorkload, engine string, p int) float64 {
		best := 0.0
		for rep := 0; rep < cfg.Reps; rep++ {
			start := time.Now()
			w.run(engine, p, cfg.Seed+uint64(rep))
			if d := float64(time.Since(start).Nanoseconds()); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}

	for _, w := range buildWorkloads(cfg) {
		for _, family := range []struct {
			baseline string
			sharded  string
		}{
			{"direct", "sharded"},
			{"jump", "shardedjump"},
		} {
			base := timeCell(w, family.baseline, 1)
			out = append(out, ScalingPoint{
				Workload: w.name, Engine: family.baseline, P: 1,
				NsPerOp: base, Speedup: 1,
			})
			var p1 float64
			for _, p := range ps {
				ns := timeCell(w, family.sharded, p)
				if p == 1 {
					p1 = ns
				}
				out = append(out, ScalingPoint{
					Workload: w.name, Engine: family.sharded, P: p,
					NsPerOp: ns, Speedup: p1 / ns,
				})
			}
		}
	}
	return out
}

// ScalingTable renders the study as a harness table for the text output.
func ScalingTable(points []ScalingPoint, cfg ScalingConfig) *Table {
	cfg = cfg.withDefaults()
	tb := NewTable("SCALE", "speedup vs shard count P",
		"workload", "engine", "P", "ms/op", "speedup")
	for _, pt := range points {
		tb.Addf(pt.Workload, pt.Engine, pt.P, pt.NsPerOp/1e6,
			fmt.Sprintf("%.2fx", pt.Speedup))
	}
	tb.Note("N=%d reps=%d seed=%d; NumCPU=%d GOMAXPROCS=%d — speedup is same-engine P=1 time over the cell's time",
		cfg.N, cfg.Reps, cfg.Seed, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	tb.Note("P > NumCPU measures scheduling overhead, not scaling; record curves on multi-core hosts")
	return tb
}

package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised in DESIGN.md §3 must be registered.
	want := []string{
		"F1", "F2", "F3", "T1", "T2", "LB1", "LB2", "DML",
		"P1", "P2", "P3", "L8", "L9", "L16", "CMP1", "CMP2", "CMP3",
		"X1", "X2", "X3", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "O1",
	}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Errorf("experiment %s not registered", id)
			continue
		}
		if e.Title == "" || e.PaperRef == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely described", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, DESIGN.md lists %d", len(All()), len(want))
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("X", "demo", "a", "b")
	tb.Add("1", "hello")
	tb.Addf(2, 3.14159)
	tb.Note("a note with %d", 42)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "hello", "3.142", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tb := NewTable("X", "demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tb.Add("only one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("X", "demo", "a", "b")
	tb.Add("plain", "with,comma")
	tb.Add("quote\"inside", "fine")
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "plain,\"with,comma\"" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "\"quote\"\"inside\",fine" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestReplicateDeterministicAndParallelSafe(t *testing.T) {
	fn := func(r *rng.RNG) float64 { return float64(r.Intn(1000000)) }
	a := Replicate(42, 50, fn)
	b := Replicate(42, 50, fn)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replication %d differs: %g vs %g", i, a[i], b[i])
		}
	}
	c := Replicate(43, 50, fn)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/50 equal results", same)
	}
}

func TestReplicate2Deterministic(t *testing.T) {
	fn := func(r *rng.RNG) (float64, float64) {
		x := r.Float64()
		return x, 2 * x
	}
	a1, a2 := Replicate2(7, 20, fn)
	b1, b2 := Replicate2(7, 20, fn)
	for i := range a1 {
		if a1[i] != b1[i] || a2[i] != b2[i] {
			t.Fatal("Replicate2 not deterministic")
		}
		if a2[i] != 2*a1[i] {
			t.Fatal("Replicate2 pairing broken")
		}
	}
}

func TestExhaustiveCouplingScanClean(t *testing.T) {
	instances, steps, violations := exhaustiveCouplingScan(3, 6)
	if instances == 0 || steps == 0 {
		t.Fatal("scan did nothing")
	}
	if violations != 0 {
		t.Fatalf("%d coupling violations", violations)
	}
}

// Focused verdict checks on the cheapest experiments.

func TestLB2RatiosNearOne(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("LB2")
	tb := e.Run(RunConfig{Seed: 11, Scale: Quick})
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	ratioCol := colIndex(t, tb, "ratio")
	for _, row := range tb.Rows {
		ratio := parseF(t, row[ratioCol])
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("LB2 ratio %g far from 1 (row %v)", ratio, row)
		}
	}
}

func TestDMLDominanceHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("DML")
	tb := e.Run(RunConfig{Seed: 12, Scale: Quick})
	domCol := colIndex(t, tb, "dominates?")
	for _, row := range tb.Rows {
		if row[domCol] != "true" {
			t.Errorf("dominance failed: %v", row)
		}
	}
}

// TestA6SameLaw gates the sharded-jump composition's law fidelity: the
// KS verdict against the direct engine must hold in both regimes (the
// builder's acceptance run checks 8 further seeds by hand via rlsweep).
func TestA6SameLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("A6")
	tb := e.Run(RunConfig{Seed: 15, Scale: Quick})
	sameCol := colIndex(t, tb, "same law?")
	for _, row := range tb.Rows {
		if row[sameCol] != "true" {
			t.Errorf("sharded-jump law mismatch: %v", row)
		}
	}
}

// TestA7SameLaw gates the strict-rule jump engine's law fidelity against
// the strict direct engine in both regimes (the builder's acceptance run
// checks 8 further seeds by hand via rlsweep).
func TestA7SameLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("A7")
	tb := e.Run(RunConfig{Seed: 15, Scale: Quick})
	sameCol := colIndex(t, tb, "same law?")
	for _, row := range tb.Rows {
		if row[sameCol] != "true" {
			t.Errorf("strict-jump law mismatch: %v", row)
		}
	}
}

// TestA8SameLaw gates the graph jump engine's law fidelity against the
// direct GraphRLS engine on ring, torus, and hypercube, plus the exact
// vs rejection-hybrid pair on the dense families (random-8-regular,
// expander, 8 reps per arm); the builder's acceptance run checks further
// seeds by hand via rlsweep.
func TestA8SameLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	e, _ := Get("A8")
	tb := e.Run(RunConfig{Seed: 15, Scale: Quick})
	sameCol := colIndex(t, tb, "same law?")
	for _, row := range tb.Rows {
		if row[sameCol] != "true" {
			t.Errorf("graph-jump law mismatch: %v", row)
		}
	}
}

func TestF2NoViolations(t *testing.T) {
	e, _ := Get("F2")
	tb := e.Run(RunConfig{Seed: 13, Scale: Quick})
	vCol := colIndex(t, tb, "violations")
	for _, row := range tb.Rows {
		if row[vCol] != "0" {
			t.Errorf("coupling violations: %v", row)
		}
	}
}

func TestF1Counts(t *testing.T) {
	e, _ := Get("F1")
	tb := e.Run(RunConfig{Seed: 14, Scale: Quick})
	// 16 bins: 240 ordered pairs total; 15 involve the empty source
	// (illegal). The rest partition into the three kinds.
	counts := map[string]int{}
	for _, row := range tb.Rows {
		counts[row[0]] = int(parseF(t, row[1]))
	}
	total := counts["rls"] + counts["neutral"] + counts["destructive"] + counts["illegal"]
	if total != 240 {
		t.Fatalf("total pairs = %d, want 240", total)
	}
	if counts["illegal"] != 15 {
		t.Errorf("illegal = %d, want 15 (moves out of the empty bin)", counts["illegal"])
	}
	if counts["neutral"] == 0 || counts["rls"] == 0 || counts["destructive"] == 0 {
		t.Errorf("degenerate classification: %v", counts)
	}
}

// colIndex locates a column by header name.
func colIndex(t *testing.T, tb *Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tb.ID, name, tb.Columns)
	return -1
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

package harness

import (
	"math"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// conditionA reports Lemma 16's drift condition A > min{h, k}.
func conditionA(e *sim.Engine) bool {
	h, _, k := e.Cfg().AboveBelow()
	min := h
	if k < min {
		min = k
	}
	return e.Cfg().OverloadedBalls() > float64(min)
}

func init() {
	register(Experiment{
		ID:       "P1",
		Title:    "Phase 1: O(ln n) time to an O(ln n)-balanced configuration",
		PaperRef: "§6.1, Lemmas 10–12",
		Claim: "From the worst-case start, the time to reach disc ≤ 96·ln n scales " +
			"like ln n, in both the small-∅ (Lemma 10) and large-∅ (Lemmas 11+12) branches.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("P1", "Phase 1 duration",
				"branch", "n", "m", "E[T₁]", "ci95", "ln n", "ratio")
			reps := 2 * sweepReps(cfg.Scale)
			for _, n := range sweepNs(cfg.Scale) {
				// Small ∅ branch: ∅ = 4 ≤ 16 ln n.
				// Large ∅ branch: ∅ = 32·⌈ln n⌉ > 16 ln n.
				branches := []struct {
					name string
					m    int
				}{
					{"∅ ≤ 16 ln n", 4 * n},
					{"∅ > 16 ln n", 32 * n * int(math.Ceil(logf(n)))},
				}
				for _, br := range branches {
					target := 96 * logf(n)
					m := br.m
					times := Replicate(cfg.Seed^uint64(n+m), reps, func(r *rng.RNG) float64 {
						v := loadvec.AllInOne().Generate(n, m, r)
						e := sim.NewEngine(v, core.RLS{}, sim.NewFenwick(), r)
						res := e.Run(sim.UntilBalanced(target), 0)
						return res.Time
					})
					var s stats.Summary
					s.AddAll(times)
					t.Addf(br.name, n, m, s.Mean(), s.CI95(), logf(n), s.Mean()/logf(n))
				}
			}
			t.Note("ratio staying bounded across n reproduces T₁ = O(ln n)")
			return t
		},
	})

	register(Experiment{
		ID:       "P2",
		Title:    "Phase 2: O(n/∅) from O(ln n)-balanced to 1-balanced",
		PaperRef: "§6.2, Lemmas 14–16",
		Claim: "From a log-balanced start, the time to disc ≤ 1 scales like n/∅; " +
			"the potential 3A−k−h never increases along the way (Lemma 16).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("P2", "Phase 2 duration",
				"n", "∅", "E[T₂]", "ci95", "n/∅", "ratio", "potential increases")
			reps := 2 * sweepReps(cfg.Scale)
			for _, n := range sweepNs(cfg.Scale) {
				for _, avg := range []int{8, 32} {
					m := n * avg
					x := int(logf(n))
					if x >= avg {
						x = avg - 1
					}
					xx := x
					times, potInc := Replicate2(cfg.Seed^uint64(n*3+avg), reps, func(r *rng.RNG) (float64, float64) {
						v := loadvec.HalfSpread(xx).Generate(n, m, r)
						e := sim.NewEngine(v, core.RLS{}, sim.NewFenwick(), r)
						tr := core.NewPhaseTracker(e)
						res := e.Run(sim.UntilBalanced(1), 0)
						return res.Time, float64(tr.PotentialIncreases)
					})
					var s stats.Summary
					s.AddAll(times)
					totalPotInc := 0.0
					for _, p := range potInc {
						totalPotInc += p
					}
					ratio := s.Mean() / (float64(n) / float64(avg))
					t.Addf(n, avg, s.Mean(), s.CI95(), float64(n)/float64(avg), ratio, totalPotInc)
				}
			}
			t.Note("start: half-spread(ln n) — an O(ln n)-balanced configuration")
			return t
		},
	})

	register(Experiment{
		ID:       "P3",
		Title:    "Phase 3: O(n/∅) from 1-balanced to perfect",
		PaperRef: "§6.3, Lemma 17",
		Claim: "With A imbalanced (+1/−1) pairs, the mean time to perfect balance " +
			"tracks Σ_{a≤A} n/(∅·a²).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("P3", "Phase 3 duration vs pair count",
				"n", "∅", "A", "E[T₃]", "ci95", "Σ n/(∅a²)", "ratio")
			reps := 4 * sweepReps(cfg.Scale)
			n := 128
			if cfg.Scale == Full {
				n = 512
			}
			for _, avg := range []int{8, 32} {
				m := n * avg
				for _, pairs := range []int{1, 2, 4, 8} {
					pp := pairs
					times := Replicate(cfg.Seed^uint64(avg*100+pairs), reps, func(r *rng.RNG) float64 {
						tt, _ := rlsRun(n, m, loadvec.ImbalancedPairs(pp), r)
						return tt
					})
					var s stats.Summary
					s.AddAll(times)
					pred := 0.0
					for a := 1; a <= pairs; a++ {
						pred += float64(n) / (float64(avg) * float64(a*a))
					}
					t.Addf(n, avg, pairs, s.Mean(), s.CI95(), pred, s.Mean()/pred)
				}
			}
			t.Note("prediction follows the Lemma 17 telescoping sum; A decreases one by one")
			return t
		},
	})

	register(Experiment{
		ID:       "L16",
		Title:    "Lemma 16 drift: potential 3A−k−h drops at rate ≥ ∅/3",
		PaperRef: "Lemma 16 (claim)",
		Claim: "While A > min{h,k}, the expected time to decrease the potential " +
			"3A−k−h by 1 is at most 3/∅, i.e. the drop rate is at least ∅/3.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("L16", "potential drift while A > min{h,k}",
				"n", "∅", "time in condition", "potential drop", "rate", "∅/3 bound", "rate/bound")
			reps := sweepReps(cfg.Scale)
			ns := []int{64, 128}
			if cfg.Scale == Full {
				ns = []int{128, 256, 512}
			}
			for _, n := range ns {
				for _, avg := range []int{8, 32} {
					m := n * avg
					x := int(logf(n))
					if x >= avg {
						x = avg - 1
					}
					xx := x
					timeIn, drop := Replicate2(cfg.Seed^uint64(n+avg*3), reps, func(r *rng.RNG) (float64, float64) {
						v := loadvec.HalfSpread(xx).Generate(n, m, r)
						e := sim.NewEngine(v, core.RLS{}, sim.NewFenwick(), r)
						var tIn, dPot float64
						prevT := 0.0
						prevPot := e.Cfg().Potential()
						prevCond := conditionA(e)
						e.PostMove = func(e *sim.Engine, _, _ int) {
							now := e.Time()
							pot := e.Cfg().Potential()
							if prevCond {
								tIn += now - prevT
								if prevPot > pot {
									dPot += prevPot - pot
								}
							}
							prevT, prevPot = now, pot
							prevCond = conditionA(e)
						}
						e.Run(sim.UntilBalanced(1), 0)
						return tIn, dPot
					})
					totalT := 0.0
					totalD := 0.0
					for i := range timeIn {
						totalT += timeIn[i]
						totalD += drop[i]
					}
					if totalT == 0 {
						continue
					}
					rate := totalD / totalT
					bound := float64(avg) / 3
					t.Addf(n, avg, totalT, totalD, rate, bound, rate/bound)
				}
			}
			t.Note("rate/bound ≥ 1 everywhere reproduces the Lemma 16 claim")
			t.Note("start: half-spread(ln n); condition re-evaluated after every move")
			return t
		},
	})

	register(Experiment{
		ID:       "L8",
		Title:    "m ≤ n: E[T] = O(n)",
		PaperRef: "Lemma 8",
		Claim: "With at most one ball per bin available, time to perfect balance is " +
			"O(n), bounded by the Lemma 8 sum Σ n/(r(r−1)) = n(1−1/m).",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("L8", "sparse regime",
				"n", "m", "E[T]", "ci95", "Lemma 8 bound", "E[T]/n")
			reps := 2 * sweepReps(cfg.Scale)
			for _, n := range sweepNs(cfg.Scale) {
				for _, m := range []int{n / 4, n / 2, n} {
					mm := m
					times := Replicate(cfg.Seed^uint64(n*5+m), reps, func(r *rng.RNG) float64 {
						tt, _ := rlsRun(n, mm, loadvec.AllInOne(), r)
						return tt
					})
					var s stats.Summary
					s.AddAll(times)
					t.Addf(n, m, s.Mean(), s.CI95(), core.Lemma8Bound(n, m), s.Mean()/float64(n))
				}
			}
			t.Note("E[T]/n staying bounded reproduces E[T] = O(n); the bound column is Lemma 8's explicit sum")
			return t
		},
	})

	register(Experiment{
		ID:       "L9",
		Title:    "divisibility reduction: E[T(kn+r)] ≤ E[T(kn)] + O(ln n)",
		PaperRef: "Lemma 9",
		Claim: "The non-divisible case costs at most an additive O(ln n) over the " +
			"divisible case: the lemma's initial phase spreads the r extra balls in " +
			"O(ln n) time, then runs the kn-ball protocol. (The reverse is NOT " +
			"claimed: at r=0 perfect balance requires exact equality and carries an " +
			"extra Θ(n²/m) tail — visible as the elevated r≈0 rows.)",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("L9", "remainder sweep",
				"n", "m", "r=m mod n", "E[T]", "ci95", "E[T]−E[T(r=0)]", "(diff)/ln n")
			reps := 2 * sweepReps(cfg.Scale)
			n := 128
			if cfg.Scale == Full {
				n = 512
			}
			k := 8
			var base float64
			for i, rr := range []int{0, 1, n / 4, n / 2, 3 * n / 4, n - 1} {
				m := k*n + rr
				times := Replicate(cfg.Seed^uint64(m), reps, func(r *rng.RNG) float64 {
					tt, _ := rlsRun(n, m, loadvec.AllInOne(), r)
					return tt
				})
				var s stats.Summary
				s.AddAll(times)
				if i == 0 {
					base = s.Mean()
				}
				diff := s.Mean() - base
				t.Addf(n, m, rr, s.Mean(), s.CI95(), diff, diff/logf(n))
			}
			t.Note("Lemma 9 is the one-sided bound T(kn+r) ≤ O(ln n) + T(kn): every diff must be ≤ c·ln n")
			return t
		},
	})
}

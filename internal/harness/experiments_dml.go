package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// discAtCheckpoints runs RLS (optionally with an adversary) and samples
// the discrepancy at the given times.
func discAtCheckpoints(n, m int, gen loadvec.Generator, adv core.Adversary, checkpoints []float64, r *rng.RNG) []float64 {
	v := gen.Generate(n, m, r)
	e := sim.NewEngine(v, core.RLS{}, sim.NewFenwick(), r)
	if adv != nil {
		core.Attach(e, adv)
	}
	out := make([]float64, len(checkpoints))
	for i, tc := range checkpoints {
		e.Run(sim.UntilTime(tc), 200_000_000)
		out[i] = e.Cfg().Disc()
	}
	return out
}

func init() {
	register(Experiment{
		ID:       "DML",
		Title:    "Destructive Majorization Lemma: adversaries cannot help",
		PaperRef: "Lemma 2",
		Claim: "disc under any destructive-move adversary stochastically dominates " +
			"disc under plain RLS at every time, and mean balancing time only increases.",
		Run: func(cfg RunConfig) *Table {
			n, m, reps := 32, 160, 150
			if cfg.Scale == Full {
				n, m, reps = 64, 640, 400
			}
			pred := core.Theorem1Expectation(n, m)
			checkpoints := []float64{0.25 * pred, 0.5 * pred, pred}
			t := NewTable("DML", "stochastic dominance of adversarial discrepancy",
				"adversary", "checkpoint t", "mean disc plain", "mean disc adv",
				"dominates?", "max CDF violation")
			adversaries := []core.Adversary{
				core.RandomAdversary{Attempts: 1},
				core.ReverseAdversary{P: 0.3},
				core.ConcentratorAdversary{Budget: 1},
			}
			gen := loadvec.AllInOne()
			// Plain baseline once.
			plainByCk := make([][]float64, len(checkpoints))
			for i := range plainByCk {
				plainByCk[i] = make([]float64, reps)
			}
			plainRows := replicateVec(cfg.Seed, reps, func(r *rng.RNG) []float64 {
				return discAtCheckpoints(n, m, gen, nil, checkpoints, r)
			})
			for rep, row := range plainRows {
				for i := range checkpoints {
					plainByCk[i][rep] = row[i]
				}
			}
			eps := 2 * stats.DKWEps(reps, 0.001)
			for _, adv := range adversaries {
				advRows := replicateVec(cfg.Seed^0xabc, reps, func(r *rng.RNG) []float64 {
					return discAtCheckpoints(n, m, gen, adv, checkpoints, r)
				})
				for i, tc := range checkpoints {
					advCk := make([]float64, reps)
					for rep, row := range advRows {
						advCk[rep] = row[i]
					}
					ok, rep := stats.Dominates(plainByCk[i], advCk, eps)
					t.Addf(adv.Name(), tc, stats.Mean(plainByCk[i]), stats.Mean(advCk),
						fmt.Sprintf("%v", ok), rep.MaxViolation)
				}
			}
			t.Note("n=%d m=%d reps=%d; dominance tested with DKW noise band eps=%.3g", n, m, reps, eps)
			t.Note("the coupling proof of Lemma 2 is verified exhaustively by experiment F2")
			return t
		},
	})

	register(Experiment{
		ID:       "F1",
		Title:    "move classification on the Figure 1 staircase",
		PaperRef: "Figure 1",
		Claim: "every ordered bin pair is classified as RLS / neutral / destructive " +
			"exactly as §4 defines; neutral = intersection of both.",
		Run: func(cfg RunConfig) *Table {
			v := loadvec.Vector{7, 6, 6, 5, 4, 4, 3, 2, 2, 2, 1, 1, 1, 1, 1, 0}
			counts := map[core.MoveKind]int{}
			for src := range v {
				for dst := range v {
					if src == dst {
						continue
					}
					counts[core.Classify(v, src, dst)]++
				}
			}
			t := NewTable("F1", "move kinds over all ordered bin pairs",
				"kind", "count")
			for _, k := range []core.MoveKind{core.RLSMove, core.Neutral, core.Destructive, core.Illegal} {
				t.Addf(k.String(), counts[k])
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			t.Note("configuration: %v (16 bins as in the paper's figure)", v)
			t.Note("total ordered pairs: %d; ASCII rendering: cmd/rlsfigs -fig 1", total)
			return t
		},
	})

	register(Experiment{
		ID:       "F2",
		Title:    "Lemma 2 coupling invariant verification",
		PaperRef: "Figure 2 / Lemma 2 proof",
		Claim: "the coupled step keeps ℓ′ close to ℓ (≤ 1 destructive move apart) " +
			"and disc(ℓ) ≤ disc(ℓ′), over exhaustive small cases and random trajectories.",
		Run: func(cfg RunConfig) *Table {
			t := NewTable("F2", "coupling verification",
				"mode", "instances", "steps checked", "violations")
			// Exhaustive: all sorted configs of ≤ 8 balls in 3 bins, all
			// destructive moves, all coupled choices.
			exInstances, exSteps, exViol := exhaustiveCouplingScan(3, 8)
			t.Addf("exhaustive (n=3, m≤8)", exInstances, exSteps, exViol)
			// Randomized long runs.
			trials := 60
			steps := 400
			if cfg.Scale == Full {
				trials, steps = 200, 1000
			}
			viol := 0
			root := rng.New(cfg.Seed + 5)
			for i := 0; i < trials; i++ {
				r := root.Split()
				nn := 4 + r.Intn(8)
				l := make(loadvec.Vector, nn)
				for j := range l {
					l[j] = r.Intn(10)
				}
				if l.Balls() == 0 {
					l[0] = 5
				}
				l = l.SortedDesc()
				srcRank := 1 + r.Intn(nn-1)
				lp, err := core.DestructiveMoveOnSorted(l, srcRank, r.Intn(srcRank))
				if err != nil {
					continue
				}
				if _, _, err := core.CoupledRun(l, lp, steps, r); err != nil {
					viol++
				}
			}
			t.Addf("randomized trajectories", trials, trials*steps, viol)
			t.Note("0 violations reproduces Lemma 2's inductive invariant")
			return t
		},
	})

	register(Experiment{
		ID:       "F3",
		Title:    "Lemma 13 reshaping and one-epoch shrinkage",
		PaperRef: "Figure 3 / Lemma 13",
		Claim: "from the half-spread(x) shape, after one epoch of length " +
			"ln((∅+x)/(∅−x)) the discrepancy drops to ≤ 2√(x·ln n) w.h.p.",
		Run: func(cfg RunConfig) *Table {
			n := 64
			reps := 40
			if cfg.Scale == Full {
				n, reps = 256, 100
			}
			avg := int(16 * logf(n))
			m := n * avg
			t := NewTable("F3", "Lemma 13 epoch shrinkage",
				"x", "epoch len", "mean disc after", "p95 disc after", "target 2√(x ln n)", "p95 ≤ target?")
			x := avg / 2
			for epoch := 0; epoch < 3 && float64(x) >= 4*logf(n); epoch++ {
				epochLen := core.Lemma13EpochLength(float64(avg), float64(x))
				xx := x
				discs := Replicate(cfg.Seed+uint64(epoch), reps, func(r *rng.RNG) float64 {
					v := loadvec.HalfSpread(xx).Generate(n, m, r)
					e := sim.NewEngine(v, core.RLS{}, sim.NewFenwick(), r)
					e.Run(sim.UntilTime(epochLen), 200_000_000)
					return e.Cfg().Disc()
				})
				target := core.Lemma13Shrink(float64(x), n)
				p95 := stats.Quantile(discs, 0.95)
				t.Addf(x, epochLen, stats.Mean(discs), p95, target,
					fmt.Sprintf("%v", p95 <= target))
				x = int(target)
			}
			t.Note("n=%d ∅=%d reps=%d; x iterates as in the Lemma 12 chaining", n, avg, reps)
			return t
		},
	})
}

// replicateVec is Replicate for vector-valued replications (sequential;
// the vector experiments are cheap relative to the scalar sweeps).
func replicateVec(seed uint64, reps int, fn func(r *rng.RNG) []float64) [][]float64 {
	root := rng.New(seed)
	out := make([][]float64, reps)
	for i := range out {
		out[i] = fn(root.Split())
	}
	return out
}

func logf(n int) float64 { return math.Log(float64(n)) }

// exhaustiveCouplingScan enumerates every sorted configuration of at most
// maxBalls balls in n bins, every destructive move on it, and every
// coupled random choice, checking the Lemma 2 invariant. It returns the
// number of (ℓ, ℓ′) instances, coupled steps checked, and violations.
func exhaustiveCouplingScan(n, maxBalls int) (instances, steps, violations int) {
	var configs []loadvec.Vector
	var gen func(prefix loadvec.Vector, remaining, maxNext int)
	gen = func(prefix loadvec.Vector, remaining, maxNext int) {
		if len(prefix) == n {
			if remaining == 0 && prefix.Balls() > 0 {
				configs = append(configs, prefix.Clone())
			}
			return
		}
		limit := remaining
		if maxNext < limit {
			limit = maxNext
		}
		for v := limit; v >= 0; v-- {
			gen(append(prefix, v), remaining-v, v)
		}
	}
	for m := 1; m <= maxBalls; m++ {
		gen(loadvec.Vector{}, m, m)
	}
	for _, l := range configs {
		m := l.Balls()
		for srcRank := 1; srcRank < n; srcRank++ {
			for dstRank := 0; dstRank < srcRank; dstRank++ {
				lp, err := core.DestructiveMoveOnSorted(l, srcRank, dstRank)
				if err != nil {
					continue
				}
				instances++
				for ball := 0; ball < m; ball++ {
					for dr := 0; dr < n; dr++ {
						nl, nlp := core.CoupledStep(l, lp, ball, dr)
						steps++
						if !core.CloseTo(nl, nlp) || nl.Disc() > nlp.Disc()+1e-9 {
							violations++
						}
					}
				}
			}
		}
	}
	return
}

package rls

import (
	"testing"

	"repro/internal/testutil"
)

// This file adapts the Runner to internal/testutil's differential
// harness and hosts the shared placement × target grid every
// byte-identical engine pair is pinned over. The P = 1 sharded pins in
// sharded_test.go / shardedjump_test.go and the graph-sampler pins below
// all instantiate the same grid instead of hand-rolling comparison
// loops.

// runnerArm builds a harness arm from a Runner configuration: the seed
// becomes WithSeed, and the fingerprint carries the §6 phase-crossing
// times as bit-compared Extra invariants.
func runnerArm(t *testing.T, n, m int, opts ...Option) testutil.Arm {
	return func(seed uint64) testutil.Fingerprint {
		t.Helper()
		res, err := New(n, m, append([]Option{WithSeed(seed)}, opts...)...).Run()
		if err != nil {
			t.Fatalf("arm run (n=%d m=%d seed=%d): %v", n, m, seed, err)
		}
		return testutil.Fingerprint{
			Time:        res.Time,
			Activations: res.Activations,
			Moves:       res.Moves,
			Final:       res.Final,
			Extra:       []float64{res.Phases.LogBalanced, res.Phases.OneBalanced, res.Phases.Perfect},
		}
	}
}

// enginePairCase is one cell of the shared grid: a shape, a pinned seed,
// and the placement/target options both arms run under.
type enginePairCase struct {
	name string
	n, m int
	seed uint64
	opts []Option
}

func enginePairCases() []enginePairCase {
	return []enginePairCase{
		{"all-in-one/n=32,m=256,seed=42", 32, 256, 42, nil},
		{"random/n=128,m=1024,seed=11", 128, 1024, 11, []Option{WithPlacement(Random())}},
		{"two-choice/disc-target/n=16,m=160,seed=7", 16, 160,
			7, []Option{WithPlacement(TwoChoice()), WithTarget(UntilBalanced(2))}},
		{"time-target/n=64,m=640,seed=3", 64, 640,
			3, []Option{WithTarget(UntilTime(2.5))}},
		{"delta-pair/n=48,m=480,seed=9", 48, 480,
			9, []Option{WithPlacement(DeltaPair(3))}},
	}
}

// testEnginePairByteIdentical runs the reference configuration against
// the candidate configuration over the whole grid, requiring bit-equal
// fingerprints per case.
func testEnginePairByteIdentical(t *testing.T, ref, cand []Option) {
	for _, c := range enginePairCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			refOpts := append(append([]Option{}, ref...), c.opts...)
			candOpts := append(append([]Option{}, cand...), c.opts...)
			testutil.ByteIdentical(t, c.name, []uint64{c.seed},
				runnerArm(t, c.n, c.m, refOpts...),
				runnerArm(t, c.n, c.m, candOpts...))
		})
	}
}

// TestGraphSamplerRunnerByteIdentical pins auto ≡ exact at the Runner
// level on a bounded-degree graph (the ring adapts to every grid shape):
// below the degree threshold the auto choice must be the very same
// sampler, draw for draw, across every placement and target kind.
func TestGraphSamplerRunnerByteIdentical(t *testing.T) {
	testEnginePairByteIdentical(t,
		[]Option{WithEngineMode(JumpEngine), WithTopology(RingTopology())},
		[]Option{WithEngineMode(JumpEngine), WithTopology(RingTopology()), WithGraphSampler(GraphSamplerExact)})
}

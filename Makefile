# Convenience entry points; CI runs the same commands.

.PHONY: test vet lint race bench

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# lint mirrors the CI lint job: formatting gates the build, then vet.
lint:
	@diff=$$(gofmt -l .); if [ -n "$$diff" ]; then \
		echo "gofmt needed on:"; echo "$$diff"; exit 1; fi
	go vet ./...

# race mirrors the CI race job; the sharded engine makes it load-bearing.
race:
	go test -race ./...

# bench records the perf trajectory tracked per PR into the next
# BENCH_PR<k>.json (auto-numbered from the highest tracked file):
# balancing runs, direct-vs-jump end-game — plain, strict tie rule, and
# graph topologies — session churn, direct-vs-sharded dense regime, the
# sharded-jump composition benches, the allocation-free epoch-loop
# floor, the rlsweep -scaling speedup-vs-P cells, and the rlsweep
# -serviceload ServiceLoad* cells (multi-tenant rlsd event→apply p50/p99
# and throughput). compare_bench.sh diffs the two latest tracked files.
bench:
	./scripts/bench.sh

# scaling prints the speedup-vs-P table for the parallel engines on this
# machine (see the JSON header for cores/GOMAXPROCS caveats).
.PHONY: scaling
scaling:
	go run ./cmd/rlsweep -scaling

# serviceload prints the multi-tenant service load table for this machine
# (CI's service job runs the full 1000x50x30s study and gates it with
# scripts/check_service.sh).
.PHONY: serviceload
serviceload:
	go run ./cmd/rlsweep -serviceload

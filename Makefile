# Convenience entry points; CI runs the same commands.

.PHONY: test vet bench

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# bench regenerates BENCH_PR2.json, the perf trajectory tracked per PR
# (balancing runs, direct-vs-jump end-game, session churn).
bench:
	./scripts/bench.sh

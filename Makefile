# Convenience entry points; CI runs the same commands.

.PHONY: test vet lint race bench

test:
	go build ./... && go test ./...

vet:
	go vet ./...

# lint mirrors the CI lint job: formatting gates the build, then vet.
lint:
	@diff=$$(gofmt -l .); if [ -n "$$diff" ]; then \
		echo "gofmt needed on:"; echo "$$diff"; exit 1; fi
	go vet ./...

# race mirrors the CI race job; the sharded engine makes it load-bearing.
race:
	go test -race ./...

# bench regenerates BENCH_PR6.json, the perf trajectory tracked per PR
# (balancing runs, direct-vs-jump end-game — plain, strict tie rule, and
# graph topologies — session churn, direct-vs-sharded dense regime, and
# the sharded-jump composition benches). compare_bench.sh diffs the two
# latest tracked files.
bench:
	./scripts/bench.sh

package rls

import (
	"math"
	"testing"
)

func TestRunBasic(t *testing.T) {
	r := New(16, 64, WithSeed(1))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not reach perfect balance")
	}
	if !IsPerfect(res.Final) {
		t.Fatalf("final not perfect: %v", res.Final)
	}
	if res.Disc >= 1 {
		t.Errorf("disc = %g", res.Disc)
	}
	if res.Time <= 0 || res.Activations <= 0 || res.Moves <= 0 {
		t.Errorf("degenerate counters: %+v", res)
	}
	sum := 0
	for _, l := range res.Final {
		sum += l
	}
	if sum != 64 {
		t.Errorf("ball conservation: %d", sum)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := New(16, 64, WithSeed(42)).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(16, 64, WithSeed(42)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Activations != b.Activations {
		t.Fatal("same seed, different run")
	}
	c, _ := New(16, 64, WithSeed(43)).Run()
	if a.Time == c.Time && a.Activations == c.Activations {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestPlacements(t *testing.T) {
	for _, p := range []Placement{AllInOne(), Random(), TwoChoice(), Spread(), DeltaPair(1)} {
		res, err := New(8, 32, WithPlacement(p), WithSeed(7)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			t.Fatalf("placement did not balance")
		}
	}
	res, err := New(3, 6, WithPlacement(FromLoads([]int{6, 0, 0})), WithSeed(7)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("FromLoads did not balance")
	}
}

func TestPhaseTimesOrdered(t *testing.T) {
	res, err := New(64, 640, WithSeed(5)).Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases
	if p.LogBalanced < 0 || p.OneBalanced < 0 || p.Perfect < 0 {
		t.Fatalf("missing phases: %+v", p)
	}
	if !(p.LogBalanced <= p.OneBalanced && p.OneBalanced <= p.Perfect) {
		t.Fatalf("phases out of order: %+v", p)
	}
	if math.Abs(p.Perfect-res.Time) > 1e-9 {
		t.Errorf("Perfect %g != total time %g", p.Perfect, res.Time)
	}
}

func TestTargets(t *testing.T) {
	res, err := New(32, 320, WithTarget(UntilBalanced(5)), WithSeed(3)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if Disc(res.Final) > 5 {
		t.Errorf("disc %g > 5", Disc(res.Final))
	}
	res2, err := New(32, 320, WithTarget(UntilTime(0.5)), WithSeed(3)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Time < 0.5 {
		t.Errorf("stopped early: %g", res2.Time)
	}
}

func TestStrictTieRule(t *testing.T) {
	res, err := New(16, 64, WithStrictTieRule(), WithSeed(9)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("strict variant did not balance")
	}
}

func TestTopologies(t *testing.T) {
	cases := []struct {
		name string
		n    int
		topo Topology
	}{
		{"complete", 16, CompleteTopology()},
		{"ring", 16, RingTopology()},
		{"torus", 16, TorusTopology(4)},
		{"hypercube", 16, HypercubeTopology(4)},
	}
	for _, c := range cases {
		res, err := New(c.n, 8*c.n, WithTopology(c.topo), WithSeed(11)).Run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !res.Reached {
			t.Fatalf("%s: did not balance", c.name)
		}
	}
}

func TestTopologyMismatchErrors(t *testing.T) {
	if _, err := New(10, 100, WithTopology(TorusTopology(4))).Run(); err == nil {
		t.Error("torus mismatch accepted")
	}
	if _, err := New(10, 100, WithTopology(HypercubeTopology(3))).Run(); err == nil {
		t.Error("hypercube mismatch accepted")
	}
}

func TestSpeeds(t *testing.T) {
	speeds := make([]float64, 8)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[0] = 4
	res, err := New(8, 80, WithSpeeds(speeds), WithSeed(13)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("speed run did not reach Nash")
	}
	// The fast bin should end with more balls than any unit-speed bin.
	for i := 1; i < 8; i++ {
		if res.Final[0] < res.Final[i] {
			t.Fatalf("fast bin has %d, slow bin %d has %d", res.Final[0], i, res.Final[i])
		}
	}
}

func TestSpeedsValidation(t *testing.T) {
	if _, err := New(4, 16, WithSpeeds([]float64{1, 2})).Run(); err == nil {
		t.Error("speed length mismatch accepted")
	}
	if _, err := New(2, 4, WithSpeeds([]float64{1, -1})).Run(); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestFenwickEngineOption(t *testing.T) {
	res, err := New(16, 64, WithFenwickEngine(), WithSeed(15)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("fenwick engine did not balance")
	}
}

func TestActivationBudget(t *testing.T) {
	res, err := New(64, 64, WithActivationBudget(5), WithSeed(17)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("5 activations cannot balance 64 balls from one bin")
	}
	if res.Activations != 5 {
		t.Errorf("activations = %d", res.Activations)
	}
}

func TestRunTraced(t *testing.T) {
	res, trace, err := New(16, 128, WithSeed(19)).RunTraced(25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("did not balance")
	}
	if len(trace) < 3 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	if trace[0].Disc <= trace[len(trace)-1].Disc {
		// from all-in-one the discrepancy must strictly fall
		t.Errorf("disc did not fall: %g -> %g", trace[0].Disc, trace[len(trace)-1].Disc)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Disc > trace[i-1].Disc+1e-9 {
			t.Fatal("discrepancy increased along an RLS trace")
		}
	}
}

func TestHelpers(t *testing.T) {
	if Disc([]int{2, 2, 2}) != 0 {
		t.Error("Disc of balanced != 0")
	}
	if !IsPerfect([]int{2, 1, 2}) {
		t.Error("IsPerfect wrong")
	}
	if MaxLatency([]int{3, 7, 1}) != 7 {
		t.Error("MaxLatency wrong")
	}
	if NashGap([]int{3, 3, 3}) != 0 || NashGap([]int{4, 2, 3}) != 1 || NashGap([]int{5, 1, 3}) != 3 {
		t.Error("NashGap wrong")
	}
	if ExpectedBalanceTime(10, 100) <= 0 || WHPBalanceTime(10, 100) <= 0 {
		t.Error("predictors non-positive")
	}
	if HarmonicLowerBound(10, 100) <= 0 {
		t.Error("harmonic bound non-positive")
	}
	if math.Abs(PairLowerBound(10, 90)-1) > 1e-12 {
		t.Errorf("PairLowerBound = %g, want 1", PairLowerBound(10, 90))
	}
}

func TestNewPanics(t *testing.T) {
	for _, nm := range [][2]int{{0, 5}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", nm[0], nm[1])
				}
			}()
			New(nm[0], nm[1])
		}()
	}
}

func TestSessionChurn(t *testing.T) {
	s := NewSession(8, 21)
	for i := 0; i < 40; i++ {
		s.AddBallRandom()
	}
	if s.M() != 40 {
		t.Fatalf("M = %d", s.M())
	}
	ok, err := s.RunUntilPerfect(1_000_000)
	if err != nil || !ok {
		t.Fatalf("initial balance failed: %v", err)
	}
	// Churn: 10 leave, 20 join (all into bin 0 — worst case).
	for i := 0; i < 10; i++ {
		if _, err := s.RemoveRandomBall(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := s.AddBall(0); err != nil {
			t.Fatal(err)
		}
	}
	if s.M() != 50 {
		t.Fatalf("M after churn = %d", s.M())
	}
	ok, err = s.RunUntilPerfect(1_000_000)
	if err != nil || !ok {
		t.Fatalf("re-balance failed: %v", err)
	}
	if s.Disc() >= 1 {
		t.Errorf("disc after re-balance = %g", s.Disc())
	}
	if s.Time() <= 0 || s.Activations() <= 0 {
		t.Error("session counters not accumulated")
	}
}

func TestSessionErrors(t *testing.T) {
	s := NewSession(2, 1)
	if err := s.AddBall(5); err == nil {
		t.Error("out-of-range AddBall accepted")
	}
	if err := s.RemoveBall(0); err == nil {
		t.Error("RemoveBall from empty accepted")
	}
	if _, err := s.RemoveRandomBall(); err == nil {
		t.Error("RemoveRandomBall from empty session accepted")
	}
	if err := s.RunFor(1); err == nil {
		t.Error("RunFor with no balls accepted")
	}
	if s.Disc() != 0 {
		t.Error("empty session disc != 0")
	}
}

func TestSessionRunFor(t *testing.T) {
	s := NewSession(4, 33)
	for i := 0; i < 16; i++ {
		s.AddBall(0)
	}
	if err := s.RunFor(2.5); err != nil {
		t.Fatal(err)
	}
	if s.Time() < 2.5 {
		t.Errorf("time = %g, want >= 2.5", s.Time())
	}
}

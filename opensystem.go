package rls

import (
	"repro/internal/opensys"
	"repro/internal/rng"
)

// OpenSystem exposes the open-system variant of RLS studied by [11]
// (Ganesh et al., the work whose closed-system bound the paper
// tightens): jobs arrive as a Poisson process of rate Lambda·n, each
// server completes one job at rate Mu while busy, and every waiting job
// carries an RLS migration clock of rate Beta. Stability requires
// Lambda < Mu.
type OpenSystem struct {
	sys *opensys.System
}

// OpenSystemStats are time-averaged steady-state observables.
type OpenSystemStats struct {
	// MeanJobsPerServer is the time-averaged jobs per server (the
	// independent-M/M/1 prediction is ρ/(1−ρ)).
	MeanJobsPerServer float64
	// MeanMaxQueue is the time-averaged maximum queue length.
	MeanMaxQueue float64
	// MeanDisc is the time-averaged discrepancy.
	MeanDisc float64
	// FracPerfect is the fraction of time the queue vector was perfectly
	// balanced.
	FracPerfect float64
}

// NewOpenSystem creates an empty open system with n servers, per-server
// arrival rate lambda, service rate mu, and per-job migration rate beta.
func NewOpenSystem(n int, lambda, mu, beta float64, seed uint64) (*OpenSystem, error) {
	sys, err := opensys.New(opensys.Params{N: n, Lambda: lambda, Mu: mu, Beta: beta}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &OpenSystem{sys: sys}, nil
}

// Observe warms the system up for `warmup` time units and then returns
// statistics time-averaged over the next `window` units.
func (o *OpenSystem) Observe(warmup, window float64) OpenSystemStats {
	st := o.sys.Run(warmup, window)
	n := float64(len(o.sys.Loads()))
	return OpenSystemStats{
		MeanJobsPerServer: st.MeanJobs / n,
		MeanMaxQueue:      st.MeanMax,
		MeanDisc:          st.MeanDisc,
		FracPerfect:       st.FracPerfect,
	}
}

// Queues returns the current queue-length vector.
func (o *OpenSystem) Queues() []int { return o.sys.Loads() }

// Jobs returns the number of jobs currently in the system.
func (o *OpenSystem) Jobs() int { return o.sys.Jobs() }

// MM1MeanJobs returns ρ/(1−ρ), the stationary per-server job count of
// an M/M/1 queue at utilization ρ — the no-migration baseline.
func MM1MeanJobs(rho float64) float64 { return opensys.MM1MeanJobs(rho) }

// MM1MaxQueueScale returns log_{1/ρ}(n), the extreme-value scale of the
// maximum across n independent M/M/1 queues.
func MM1MaxQueueScale(n int, rho float64) float64 { return opensys.MM1MaxQueueScale(n, rho) }

package rls

import (
	"bytes"
	"testing"
)

// benchSession builds a warmed session for the persistence benchmarks:
// n bins, 4n balls, run long enough that the samplers and indices carry
// non-trivial state.
func benchSession(b *testing.B, n int, opts ...SessionOption) *Session {
	b.Helper()
	s := NewSession(n, 42, opts...)
	for i := 0; i < 4*n; i++ {
		s.AddBallRandom()
	}
	if err := s.RunFor(2); err != nil {
		b.Fatal(err)
	}
	return s
}

var persistBenchModes = []struct {
	name string
	opts []SessionOption
}{
	{"direct", nil},
	{"jump", []SessionOption{WithSessionEngineMode(JumpEngine)}},
	{"shardedjump", []SessionOption{WithSessionEngineMode(ShardedJumpEngine), WithSessionShards(4)}},
}

// BenchmarkSnapshot measures serializing a full session, with the
// artifact's compactness reported as bytes/ball.
func BenchmarkSnapshot(b *testing.B) {
	const n = 4096
	for _, mode := range persistBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			s := benchSession(b, n, mode.opts...)
			var buf bytes.Buffer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := s.Snapshot(&buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len())/float64(s.M()), "bytes/ball")
		})
	}
}

// BenchmarkRestore measures decoding a snapshot back into a live
// session, validation and index rebuilds included.
func BenchmarkRestore(b *testing.B) {
	const n = 4096
	for _, mode := range persistBenchModes {
		b.Run(mode.name, func(b *testing.B) {
			s := benchSession(b, n, mode.opts...)
			var buf bytes.Buffer
			if err := s.Snapshot(&buf); err != nil {
				b.Fatal(err)
			}
			raw := buf.Bytes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ResumeSession(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(raw))/float64(s.M()), "bytes/ball")
		})
	}
}

// countingWriter tallies archive bytes without retaining them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// BenchmarkTraceAppend measures the per-record cost of streaming a trace
// archive (no embedded snapshots), with the record size as bytes/op.
func BenchmarkTraceAppend(b *testing.B) {
	s := benchSession(b, 1024, WithSessionEngineMode(JumpEngine))
	var cw countingWriter
	tw, err := s.NewTraceWriter(&cw, 0)
	if err != nil {
		b.Fatal(err)
	}
	base := cw.n // header + meta + initial snapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tw.Point(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cw.n-base)/float64(b.N), "bytes/op")
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
}

package rls_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	rls "repro"
	"repro/internal/service"
)

// The 30-second quickstart: build a Runner for n bins and m balls,
// run RLS to perfect balance, read the result. Every knob has a default —
// all-in-one placement (the paper's worst case), the UntilPerfect target,
// the direct engine, seed 1.
func Example_quickstart() {
	res, err := rls.New(16, 128, rls.WithSeed(1)).Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("perfectly balanced: %v (discrepancy %.2f)\n", res.Reached, res.Disc)
	fmt.Printf("continuous time:    %.1f (Theorem 1 predicts Θ(ln n + n²/m) = Θ(%.1f))\n",
		res.Time, rls.ExpectedBalanceTime(16, 128))
	fmt.Printf("protocol moves:     %d\n", res.Moves)
	// Output:
	// perfectly balanced: true (discrepancy 0.00)
	// continuous time:    4.8 (Theorem 1 predicts Θ(ln n + n²/m) = Θ(4.8))
	// protocol moves:     238
}

// Engine modes change how a run is simulated, never what it computes: the
// jump engine simulates only the embedded chain of productive moves, so
// the sparse end-game — where the direct engine burns almost every
// activation on rejected null moves — costs O(moves·log Δ) instead of
// O(activations). Both runs below balance n = m = 512 from the
// all-in-one start. The trajectories differ (the jump engine draws
// different random numbers) but follow the same law; the difference is
// that the direct engine simulates its hundreds of thousands of
// activations one by one, while the jump engine tallies all the null ones
// in geometric blocks and only ever executes its ~7400 moves.
func ExampleWithEngineMode() {
	direct, err := rls.New(512, 512, rls.WithSeed(7)).Run()
	if err != nil {
		panic(err)
	}
	jump, err := rls.New(512, 512, rls.WithSeed(7), rls.WithEngineMode(rls.JumpEngine)).Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("direct: balanced=%v after %d activations, %d moves\n",
		direct.Reached, direct.Activations, direct.Moves)
	fmt.Printf("jump:   balanced=%v after %d activations, %d moves\n",
		jump.Reached, jump.Activations, jump.Moves)
	// Output:
	// direct: balanced=true after 328771 activations, 6095 moves
	// jump:   balanced=true after 693756 activations, 7396 moves
}

// A Session is the long-running form: balls join and leave (churn) between
// stretches of protocol time, absorbed in place by one persistent engine —
// no rebuild per event. Here a burst of joins lands in bin 0, the protocol
// re-balances, and a few leaves later the discrepancy is still under
// control.
func ExampleSession() {
	s := rls.NewSession(8, 42)
	for i := 0; i < 64; i++ {
		s.AddBallRandom()
	}
	ok, err := s.RunUntilPerfect(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after 64 joins:  balanced=%v (m=%d, disc %.2f)\n", ok, s.M(), s.Disc())

	for i := 0; i < 8; i++ {
		if err := s.AddBall(0); err != nil { // a hot spot: every join hits bin 0
			panic(err)
		}
	}
	fmt.Printf("after a hot burst: m=%d, disc %.2f\n", s.M(), s.Disc())
	ok, err = s.RunUntilPerfect(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-balanced:     balanced=%v (m=%d, disc %.2f)\n", ok, s.M(), s.Disc())
	// Output:
	// after 64 joins:  balanced=true (m=64, disc 0.00)
	// after a hot burst: m=72, disc 7.00
	// re-balanced:     balanced=true (m=72, disc 0.00)
}

// Targets other than perfect balance: UntilTime stops at a continuous-time
// horizon — and in the jump modes the final geometric block is clamped so
// the reported time is exactly the horizon, never past it.
func ExampleWithTarget() {
	res, err := rls.New(64, 640,
		rls.WithSeed(3),
		rls.WithEngineMode(rls.JumpEngine),
		rls.WithTarget(rls.UntilTime(2)),
	).Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("stopped at exactly t=%v: %v\n", res.Time, res.Reached)
	fmt.Printf("discrepancy after 2 time units: %.2f\n", res.Disc)
	// Output:
	// stopped at exactly t=2: true
	// discrepancy after 2 time units: 64.00
}

// The service form: cmd/rlsd hosts many concurrent Sessions as tenants
// behind an HTTP/JSON control plane with an SSE telemetry plane —
// internal/service is the embeddable core the daemon wraps. A client
// creates a session (the JSON config maps onto the WithSession* options),
// streams churn batches in, and watches convergence frames stream out.
// Subscribing before posting guarantees the batch's frame follows the
// initial snapshot, which is what makes this example deterministic.
func Example_serviceClient() {
	svc := service.New(service.Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	}()

	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"bins": 8, "balls": 64, "seed": 42, "engine": "jump"}`))
	if err != nil {
		panic(err)
	}
	var created struct {
		ID    string `json:"id"`
		Balls int    `json:"balls"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("created %s: %d balls in 8 bins\n", created.ID, created.Balls)

	stream, err := http.Get(srv.URL + "/v1/sessions/" + created.ID + "/stream")
	if err != nil {
		panic(err)
	}
	defer stream.Body.Close()
	frames := bufio.NewScanner(stream.Body)
	next := func() (t struct {
		Balls   int     `json:"balls"`
		Disc    float64 `json:"disc"`
		Phase   string  `json:"phase"`
		Applied int64   `json:"applied"`
	}) {
		for frames.Scan() {
			if data, ok := strings.CutPrefix(frames.Text(), "data: "); ok {
				if err := json.Unmarshal([]byte(data), &t); err != nil {
					panic(err)
				}
				return
			}
		}
		panic("stream ended early")
	}
	snap := next()
	fmt.Printf("snapshot: %d balls\n", snap.Balls)

	// A hot burst on bin 0, then re-balance to perfection — the service
	// applies the batch in order and publishes one telemetry frame for it.
	resp, err = http.Post(srv.URL+"/v1/sessions/"+created.ID+"/events", "application/json",
		strings.NewReader(`{"events": [
			{"op": "add", "bin": 0}, {"op": "add", "bin": 0}, {"op": "add", "bin": 0},
			{"op": "add", "bin": 0}, {"op": "add", "bin": 0}, {"op": "add", "bin": 0},
			{"op": "add", "bin": 0}, {"op": "add", "bin": 0},
			{"op": "run_to_perfect"}]}`))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()

	tel := next()
	fmt.Printf("after churn: %d balls, disc %.2f, phase %s (%d events applied)\n",
		tel.Balls, tel.Disc, tel.Phase, tel.Applied)
	// Output:
	// created s-1: 64 balls in 8 bins
	// snapshot: 64 balls
	// after churn: 72 balls, disc 0.00, phase perfect (9 events applied)
}

package rls

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/persist"
)

// snapshotCase is one cell of the resume property matrix: an engine mode
// with its rule/topology/shard configuration.
type snapshotCase struct {
	name string
	opts []SessionOption
}

func snapshotMatrix() []snapshotCase {
	return []snapshotCase{
		{"direct", nil},
		{"direct-strict", []SessionOption{WithSessionStrictTieRule()}},
		{"direct-ring", []SessionOption{WithSessionTopology(RingTopology())}},
		{"jump", []SessionOption{WithSessionEngineMode(JumpEngine)}},
		{"jump-strict", []SessionOption{WithSessionEngineMode(JumpEngine), WithSessionStrictTieRule()}},
		{"jump-ring", []SessionOption{WithSessionEngineMode(JumpEngine), WithSessionTopology(RingTopology())}},
		// Both graph-sampler paths (and both new topology codes): the
		// expander resolves to exact under auto at these sizes, the forced
		// rejection cells serialize the hybrid's admissible bounds. Matrix
		// sizes (16 and 64 bins) are perfect squares by design.
		{"jump-expander", []SessionOption{WithSessionEngineMode(JumpEngine), WithSessionTopology(ExpanderTopology())}},
		{"jump-expander-hybrid", []SessionOption{WithSessionEngineMode(JumpEngine), WithSessionTopology(ExpanderTopology()), WithSessionGraphSampler(GraphSamplerRejection)}},
		{"jump-rr-hybrid", []SessionOption{WithSessionEngineMode(JumpEngine), WithSessionTopology(RandomRegularTopology(6, 99)), WithSessionGraphSampler(GraphSamplerRejection)}},
		{"sharded-p1", []SessionOption{WithSessionEngineMode(ShardedEngine), WithSessionShards(1)}},
		{"sharded-p3", []SessionOption{WithSessionEngineMode(ShardedEngine), WithSessionShards(3)}},
		{"shardedjump-p1", []SessionOption{WithSessionEngineMode(ShardedJumpEngine), WithSessionShards(1)}},
		{"shardedjump-p3", []SessionOption{WithSessionEngineMode(ShardedJumpEngine), WithSessionShards(3)}},
	}
}

// churnPhase drives a session through a deterministic mix of runs and
// churn — the same script the resume test replays on both arms. Every
// Run boundary is an epoch barrier for the sharded engines, so the
// mid-script snapshot in the property test lands exactly where the
// contract requires.
func churnPhase(t *testing.T, s *Session, rounds int) []int {
	t.Helper()
	var picks []int
	for i := 0; i < rounds; i++ {
		picks = append(picks, s.AddBallRandom())
		if i%3 == 2 {
			bin, err := s.RemoveRandomBall()
			if err != nil {
				t.Fatalf("remove: %v", err)
			}
			picks = append(picks, bin)
		}
		if err := s.RunFor(0.5); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	return picks
}

func sessionSnapshotBytes(t *testing.T, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestResumeByteIdentical is the keystone gate of the persistence layer:
// for every engine mode × rule × topology cell, a session snapshotted
// mid-run, restored, and continued must be indistinguishable — same
// churn placements, same stats, and byte-identical final snapshot
// (which covers loads, index internals, clocks, and RNG streams) — from
// a session that was never interrupted.
func TestResumeByteIdentical(t *testing.T) {
	const n, seed = 64, 0xA11CE
	for _, tc := range snapshotMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			a := NewSession(n, seed, tc.opts...)
			b := NewSession(n, seed, tc.opts...)

			// Phase 1: identical prefix on both arms, with churn.
			for i := 0; i < 3*n; i++ {
				a.AddBallRandom()
				b.AddBallRandom()
			}
			pa := churnPhase(t, a, 12)
			pb := churnPhase(t, b, 12)
			if fmt.Sprint(pa) != fmt.Sprint(pb) {
				t.Fatalf("same-seed sessions diverged before any snapshot:\n%v\n%v", pa, pb)
			}

			// Interrupt arm B: snapshot at the run barrier, restore, and
			// throw the original away.
			raw := sessionSnapshotBytes(t, b)
			b2, err := ResumeSession(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := sessionSnapshotBytes(t, b2); !bytes.Equal(raw, got) {
				t.Fatalf("re-snapshotting a freshly resumed session changed the artifact (%d vs %d bytes)", len(raw), len(got))
			}

			// Phase 2: identical continuation on A (uninterrupted) and the
			// resumed B2, compared draw by draw.
			pa = churnPhase(t, a, 10)
			pb = churnPhase(t, b2, 10)
			if fmt.Sprint(pa) != fmt.Sprint(pb) {
				t.Fatalf("resumed session diverged from uninterrupted run:\n%v\n%v", pa, pb)
			}
			sa, sb := a.Stats(), b2.Stats()
			if sa != sb {
				t.Fatalf("stats diverged after resume:\n%+v\n%+v", sa, sb)
			}
			if fmt.Sprint(a.Loads()) != fmt.Sprint(b2.Loads()) {
				t.Fatalf("loads diverged after resume")
			}
			if fa, fb := sessionSnapshotBytes(t, a), sessionSnapshotBytes(t, b2); !bytes.Equal(fa, fb) {
				t.Fatalf("final snapshots differ (%d vs %d bytes): resume is not byte-identical", len(fa), len(fb))
			}
		})
	}
}

// TestResumePreservesShape checks the restored session reports the same
// shape the original was built with.
func TestResumePreservesShape(t *testing.T) {
	s := NewSession(16, 7, WithSessionEngineMode(ShardedJumpEngine), WithSessionShards(3))
	for i := 0; i < 64; i++ {
		s.AddBallRandom()
	}
	if err := s.RunFor(1); err != nil {
		t.Fatal(err)
	}
	raw := sessionSnapshotBytes(t, s)
	s2, err := ResumeSession(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Mode() != ShardedJumpEngine || s2.N() != 16 || s2.M() != 64 {
		t.Fatalf("restored shape mode=%v n=%d m=%d", s2.Mode(), s2.N(), s2.M())
	}
}

func TestSnapshotNoteRoundTrip(t *testing.T) {
	s := NewSession(8, 1)
	s.AddBallRandom()
	var buf bytes.Buffer
	note := []byte(`{"id":"s-7"}`)
	if err := s.SnapshotWithNote(&buf, note); err != nil {
		t.Fatal(err)
	}
	_, got, err := ResumeSessionWithNote(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, note) {
		t.Fatalf("note round-trip: got %q want %q", got, note)
	}
}

// TestDecodeSnapshotMalformed table-tests the typed-error contract:
// truncation, bit flips, version skew, and wrong magic must all surface
// as persist's errors — never as a panic or a silently wrong session.
func TestDecodeSnapshotMalformed(t *testing.T) {
	s := NewSession(16, 3, WithSessionEngineMode(JumpEngine))
	for i := 0; i < 48; i++ {
		s.AddBallRandom()
	}
	if err := s.RunFor(2); err != nil {
		t.Fatal(err)
	}
	good := sessionSnapshotBytes(t, s)
	if _, err := ResumeSession(bytes.NewReader(good)); err != nil {
		t.Fatalf("control artifact does not decode: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 1, 3, 4, 5, len(good) / 3, len(good) - 1} {
			_, err := ResumeSession(bytes.NewReader(good[:cut]))
			if err == nil {
				t.Fatalf("cut at %d decoded", cut)
			}
			if !errors.Is(err, persist.ErrTruncated) && !errors.Is(err, persist.ErrBadMagic) {
				t.Fatalf("cut at %d: %v (want ErrTruncated or ErrBadMagic)", cut, err)
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		// Flip one byte at a spread of offsets past the header. Every
		// flip must be caught — by the section CRC, or (if it lands in a
		// length prefix) by the bounds validation behind it.
		for off := 5; off < len(good); off += 7 {
			mut := append([]byte(nil), good...)
			mut[off] ^= 0x41
			s2, err := ResumeSession(bytes.NewReader(mut))
			if err == nil {
				// A flip in a section length can reframe the stream so a
				// stale CRC happens to match only if the artifact still
				// parses identically; reject any silent acceptance that
				// changed state.
				if !bytes.Equal(sessionSnapshotBytes(t, s2), good) {
					t.Fatalf("flip at %d silently decoded to different state", off)
				}
				continue
			}
			var verr *persist.VersionError
			switch {
			case errors.Is(err, persist.ErrChecksum),
				errors.Is(err, persist.ErrCorrupt),
				errors.Is(err, persist.ErrTruncated),
				errors.Is(err, persist.ErrBadMagic),
				errors.As(err, &verr):
			default:
				t.Fatalf("flip at %d: untyped error %v", off, err)
			}
		}
	})

	t.Run("version-skew", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[4] = byte(persist.Version + 9) // version uvarint follows the 4-byte magic
		_, err := ResumeSession(bytes.NewReader(mut))
		var verr *persist.VersionError
		if !errors.As(err, &verr) {
			t.Fatalf("got %v, want VersionError", err)
		}
		if verr.Got != persist.Version+9 || verr.Want != persist.Version {
			t.Fatalf("VersionError %+v", verr)
		}
	})

	t.Run("hybrid-section", func(t *testing.T) {
		// The rejection sampler's persisted bounds get their own artifact:
		// every flip and cut over it must still surface typed errors (the
		// bounds validation behind the CRC rejects out-of-range admUB).
		h := NewSession(16, 3, WithSessionEngineMode(JumpEngine),
			WithSessionTopology(RandomRegularTopology(6, 21)),
			WithSessionGraphSampler(GraphSamplerRejection))
		for i := 0; i < 48; i++ {
			h.AddBallRandom()
		}
		if err := h.RunFor(2); err != nil {
			t.Fatal(err)
		}
		art := sessionSnapshotBytes(t, h)
		if _, err := ResumeSession(bytes.NewReader(art)); err != nil {
			t.Fatalf("hybrid control artifact does not decode: %v", err)
		}
		for _, cut := range []int{len(art) / 3, len(art) - 1} {
			if _, err := ResumeSession(bytes.NewReader(art[:cut])); !errors.Is(err, persist.ErrTruncated) {
				t.Fatalf("hybrid cut at %d: %v (want ErrTruncated)", cut, err)
			}
		}
		for off := 5; off < len(art); off += 7 {
			mut := append([]byte(nil), art...)
			mut[off] ^= 0x41
			s2, err := ResumeSession(bytes.NewReader(mut))
			if err == nil {
				if !bytes.Equal(sessionSnapshotBytes(t, s2), art) {
					t.Fatalf("hybrid flip at %d silently decoded to different state", off)
				}
				continue
			}
			var verr *persist.VersionError
			switch {
			case errors.Is(err, persist.ErrChecksum),
				errors.Is(err, persist.ErrCorrupt),
				errors.Is(err, persist.ErrTruncated),
				errors.Is(err, persist.ErrBadMagic),
				errors.As(err, &verr):
			default:
				t.Fatalf("hybrid flip at %d: untyped error %v", off, err)
			}
		}
	})

	t.Run("wrong-magic", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		copy(mut, persist.MagicTrace)
		if _, err := ResumeSession(bytes.NewReader(mut)); !errors.Is(err, persist.ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
		if _, err := OpenTrace(bytes.NewReader(good)); !errors.Is(err, persist.ErrBadMagic) {
			t.Fatalf("trace reader accepted a snapshot: %v", err)
		}
	})
}

// TestTraceArchiveRoundTrip writes an archive with embedded snapshots
// and reads it back: meta, record sequence, and the resumability of
// every embedded seek point.
func TestTraceArchiveRoundTrip(t *testing.T) {
	s := NewSession(32, 11, WithSessionEngineMode(JumpEngine))
	for i := 0; i < 96; i++ {
		s.AddBallRandom()
	}
	var buf bytes.Buffer
	tw, err := s.NewTraceWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want []TraceRecord
	snapAt := []int{0} // initial snapshot precedes all records
	recs := 0
	for i := 0; i < 10; i++ {
		if err := s.RunFor(0.25); err != nil {
			t.Fatal(err)
		}
		if err := tw.Point(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		want = append(want, TraceRecord{Kind: "point", Bin: -1, Time: st.Time, Activations: st.Activations, Moves: st.Moves, Balls: st.Balls, Disc: st.Disc})
		recs++
		if recs%4 == 0 {
			snapAt = append(snapAt, recs)
		}
		if i == 5 {
			bin := s.AddBallRandom()
			if err := tw.Churn("add", bin); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			want = append(want, TraceRecord{Kind: "add", Bin: bin, Time: st.Time, Activations: st.Activations, Moves: st.Moves, Balls: st.Balls, Disc: st.Disc})
			recs++
			if recs%4 == 0 {
				snapAt = append(snapAt, recs)
			}
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := OpenTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	meta := tr.Meta()
	if meta.Bins != 32 || meta.Mode != JumpEngine || meta.Topology != "complete" {
		t.Fatalf("meta %+v", meta)
	}
	var got []TraceRecord
	snaps := 0
	for {
		item, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if item.Snapshot != nil {
			snaps++
			if _, err := ResumeSession(bytes.NewReader(item.Snapshot)); err != nil {
				t.Fatalf("embedded snapshot %d does not resume: %v", snaps, err)
			}
			continue
		}
		got = append(got, *item.Record)
	}
	if snaps != len(snapAt) {
		t.Fatalf("%d embedded snapshots, want %d", snaps, len(snapAt))
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestTraceArchiveCrashTail: an archive cut off mid-stream (no end
// section) reads cleanly to its last complete section.
func TestTraceArchiveCrashTail(t *testing.T) {
	s := NewSession(8, 2)
	for i := 0; i < 16; i++ {
		s.AddBallRandom()
	}
	var buf bytes.Buffer
	tw, err := s.NewTraceWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.RunFor(0.5); err != nil {
			t.Fatal(err)
		}
		if err := tw.Point(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Drop the end section entirely: still a clean EOF after 5 records.
	cut := full[:len(full)-6] // end section = kind uvarint + len uvarint + 4 CRC bytes
	tr, err := OpenTrace(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		item, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("crash tail after %d items: %v", n, err)
		}
		if item.Record != nil {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("read %d records from crash-cut archive, want 5", n)
	}

	// Cut mid-record: the partial section is a typed truncation error.
	tr, err = OpenTrace(bytes.NewReader(full[:len(full)-9]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := tr.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, persist.ErrTruncated) {
			t.Fatalf("mid-section cut: %v, want ErrTruncated", err)
		}
		break
	}
}

// TestTraceMetaGraphFamilies pins the archive header strings for the
// PR 10 topology codes and the graph-sampler field.
func TestTraceMetaGraphFamilies(t *testing.T) {
	cases := []struct {
		opts     []SessionOption
		topology string
		sampler  string
	}{
		{[]SessionOption{WithSessionEngineMode(JumpEngine), WithSessionTopology(ExpanderTopology())},
			"expander", "auto"},
		{[]SessionOption{WithSessionEngineMode(JumpEngine), WithSessionTopology(RandomRegularTopology(6, 5)),
			WithSessionGraphSampler(GraphSamplerRejection)},
			"random-6-regular", "rejection"},
	}
	for _, c := range cases {
		s := NewSession(16, 9, c.opts...)
		for i := 0; i < 32; i++ {
			s.AddBallRandom()
		}
		var buf bytes.Buffer
		tw, err := s.NewTraceWriter(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.Point(); err != nil {
			t.Fatal(err)
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := OpenTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		meta := tr.Meta()
		if meta.Topology != c.topology || meta.Sampler != c.sampler {
			t.Fatalf("trace meta %+v, want topology %q sampler %q", meta, c.topology, c.sampler)
		}
	}
}

// FuzzDecodeSnapshot: no input, however mangled, may panic the decoder.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, tc := range snapshotMatrix() {
		s := NewSession(16, 5, tc.opts...)
		for i := 0; i < 32; i++ {
			s.AddBallRandom()
		}
		if err := s.RunFor(1); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ResumeSession(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be a live, runnable session.
		s.AddBallRandom()
		if err := s.RunFor(0.1); err != nil {
			t.Fatalf("resumed session cannot run: %v", err)
		}
	})
}

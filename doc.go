// Package rls is a Go reproduction of "Tight Load Balancing via Randomized
// Local Search" by Berenbrink, Kling, Liaw and Mehrabian (IPDPS 2017;
// arXiv:1706.09997).
//
// The paper analyzes the Randomized Local Search (RLS) protocol: n bins, m
// balls, each ball carrying an independent rate-1 exponential clock; when
// a ball's clock rings it samples a uniformly random bin and moves there
// iff the sampled bin holds strictly fewer balls. The paper's main result
// (Theorem 1) is that the expected time to perfect balance (discrepancy
// below 1) is Θ(ln n + n²/m) from any initial configuration.
//
// This package is the public API: construct a Runner with New, configure
// it with options (initial placement, tie rule, topology, bin speeds,
// stop target, engine choice), and Run it. Session is the long-running
// service core: it supports dynamic ball churn (joins and leaves) for
// self-stabilization scenarios, absorbing each event incrementally into
// one persistent engine — O(1) per join/leave, with the activation rate
// tracking the live population — instead of rebuilding O(m) state.
// Quantities from the paper's analysis (harmonic bounds, Theorem 1
// predictors) are exposed as plain functions.
//
// The experiment suite reproducing every figure and claim of the paper
// lives in internal/harness and is driven by cmd/rlsweep, cmd/rlsfigs and
// the benchmarks in bench_test.go; see DESIGN.md and EXPERIMENTS.md.
package rls

// Package rls is a Go reproduction of "Tight Load Balancing via Randomized
// Local Search" by Berenbrink, Kling, Liaw and Mehrabian (IPDPS 2017;
// arXiv:1706.09997).
//
// The paper analyzes the Randomized Local Search (RLS) protocol: n bins, m
// balls, each ball carrying an independent rate-1 exponential clock; when
// a ball's clock rings it samples a uniformly random bin and moves there
// iff the sampled bin holds strictly fewer balls. The paper's main result
// (Theorem 1) is that the expected time to perfect balance (discrepancy
// below 1) is Θ(ln n + n²/m) from any initial configuration.
//
// This package is the public API: construct a Runner with New, configure
// it with options (initial placement, tie rule, topology, bin speeds,
// stop target, engine choice), and Run it. Session is the long-running
// service core: it supports dynamic ball churn (joins and leaves) for
// self-stabilization scenarios, absorbing each event incrementally into
// one persistent engine — with the activation rate tracking the live
// population — instead of rebuilding O(m) state. Quantities from the
// paper's analysis (harmonic bounds, Theorem 1 predictors) are exposed as
// plain functions.
//
// # Engine modes
//
// Runs execute in one of four modes, selected with WithEngineMode (and
// WithSessionEngineMode for sessions):
//
//   - DirectEngine (default) simulates every activation: an Exp(m) time
//     gap, a uniform ball, a uniform destination, the protocol's accept
//     test. Cost is O(1) per activation — but near balance almost every
//     activation is a rejected null move, so whole runs cost
//     O(activations) ≈ O(m·n/W) per move.
//   - JumpEngine simulates only the embedded jump chain of productive
//     moves, the object the paper's analysis is phrased over (Theorem 1,
//     Lemmas 15–16). A level index over the load histogram maintains the
//     total move weight W = Σ_v v·count[v]·C(v−1) in O(log Δ) per move;
//     each step skips a Geometric(W/(m·n)) block of null activations,
//     advances time by the matching Gamma(k, m) gap, and samples the
//     productive (src, dst) pair exactly. Cost is O(log Δ) per move.
//     Two protocol variants ride the same machinery: the strict (>) tie
//     rule swaps in the shifted move weight W′ = Σ_v v·count[v]·C(v−2)
//     (same index, eligible destinations two levels down; gate A7), and
//     regular graph topologies run a hybrid sampler chosen by degree.
//     Below the threshold max(8, log₂ n) — ring, torus, hypercube, the
//     8-regular expander — an exact per-source admissible-neighbor
//     count makes the eventful probability W_G/(m·Δ_G) and pair
//     sampling walks a bin-indexed Fenwick tree plus one neighborhood
//     scan, O(Δ_G² + Δ_G·log n) per move. Above it (random d-regular
//     with large d) that quadratic neighborhood maintenance dominates,
//     so the engine switches to rejection-within-blocks against the
//     lazy upper bound Ŵ_G = Σ_i load(i)·admUB(i) ≥ W_G: block
//     skipping runs Geometric/Erlang draws at rate Ŵ_G/(m·Δ_G) off a
//     load-only Fenwick tree, each eventful activation samples a
//     source ∝ load·bound plus a uniform neighbor slot and accepts iff
//     the move is admissible, and a rejection refreshes that source's
//     cached bound to its exact admissible count — retries tighten the
//     bound, so the expected retries per event stay O(Ŵ_G/W_G). A
//     flag-thinning coupling makes the two paths the same
//     per-activation move law (gate A8, including dense KS rows);
//     WithGraphSampler forces either path, and the default auto choice
//     is a pure function of (Δ_G, n) so runs stay reproducible.
//     Strict + topology together is rejected: the graph processes in
//     the literature use the plain rule.
//   - ShardedEngine partitions the bins into WithShards contiguous
//     ranges, each simulated by its own goroutine worker with a private
//     configuration, sampler, and deterministically split RNG stream —
//     the m per-ball Poisson clocks superpose into independent per-shard
//     streams, so shards advance the same continuous-time process
//     concurrently. Workers draw activations in batches (one Poisson
//     count per epoch, destinations and ball ids filled into flat
//     scratch arrays) so the steady-state epoch loop allocates nothing.
//     Local moves apply immediately; cross-shard moves append to
//     per-shard outbox slices, pre-filtered against a stale load
//     snapshot, and drain at epoch barriers in deterministic parallel
//     phases that re-check the RLS rule against live loads. A per-barrier
//     reconciliation folds the shard histograms into the global min/max/
//     discrepancy view serving the stop conditions.
//   - ShardedJumpEngine composes the two accelerations: the shard/epoch/
//     barrier structure of ShardedEngine with per-shard level indices, so
//     each worker skips its null activations in geometric blocks. A
//     shard's eventful-activation weight is its local move weight W_s
//     plus an external weight X_s = Σ_v v·count_s[v]·S_s(v−1), where
//     S_s(w) counts other shards' bins at stale-snapshot load ≤ w —
//     exactly the population the cross-shard proposal filter admits — so
//     each drawn event is either a local move (applied immediately) or a
//     queued proposal, and everything in between is one Geometric/Erlang
//     draw. Epochs adapt to the folded move weight (FoldedStats.W):
//     activation-sized when dense, shrinking with the move rate, floored
//     at ~one expected event — so one run covers the dense regime
//     (parallel wins) and the end-game (jump wins) without picking a
//     mode per regime; WithShardEpoch overrides the policy with a fixed
//     length. Blocks are truncated exactly at epoch and time horizons
//     (the remaining nulls are one thinned Poisson draw), so
//     time-targeted runs stop at exactly the target. Barriers reconcile
//     the stale snapshot and the external tables *incrementally*: shards
//     journal the bins they mutate, and each barrier replays the
//     journals as deltas (loadvec.StaleIndex bucket moves plus an
//     ExternalPrefixUpdated window per peer shard) in O(changed·P·Δ)
//     instead of an O(n + P·Δ) rebuild — so the end-game's per-move
//     barriers cost O(P·Δ), not O(n), and the mode stays competitive in
//     the sparse regime rather than being a dense-only trick.
//
// Direct and jump induce the identical law on every quantity observed at
// moves — balancing times, phase-crossing times, move counts, final
// configurations, and the activation counter (experiments A4/A7/A8
// KS-test the balancing-time distributions for the plain, strict, and
// graph variants; run `go test -bench ExpA4`). They are not
// byte-identical streams: the jump engine draws different random numbers.
// The only observable difference is granularity between moves: direct
// runs can trace or stop at any activation, jump runs only at moves, so
// per-activation traces coarsen to per-move blocks and time- or
// activation-targeted stops may overshoot by one block.
//
// The sharded engines' law matches the sequential process up to their
// epoch granularity: cross-shard moves land at barriers rather than
// mid-epoch, so stop conditions, traces, and the phase times coarsen to
// epochs (WithShardEpoch tunes the fidelity/throughput trade-off), and
// experiments A5 (sharded) and A6 (sharded jump) KS-validate the
// balancing-time laws against DirectEngine at fine epochs. With one
// shard there is no deferral at all: P = 1 runs the corresponding
// sequential engine's exact loop on the root stream and its fixed-seed
// output is byte-identical — direct for ShardedEngine, jump for
// ShardedJumpEngine; the equivalence tests pin both.
//
// # Shard repartitioning
//
// A static contiguous partition load-imbalances as mass drains toward a
// few bins: the shard owning them ends up with nearly all the event
// weight while its peers idle at the barrier. The sharded engines
// therefore rebalance their range boundaries at epoch barriers,
// work-stealing style. The policy is cheap-by-default: an O(P) trigger
// fires only when the heaviest shard's event-weight share exceeds 3/2
// of fair (weights: ball mass for ShardedEngine; W_s + X_s, the
// jump-chain event rate, for ShardedJumpEngine), a full O(n)
// weighted-prefix split (loadvec.BalancedCuts over per-bin weights) is
// further gated by exponential backoff (8 → 1024 barriers) and only
// adopted when it shaves at least 1/8 off the maximum shard weight, and
// a migration rebuilds only the shards whose range changed — from the
// stale snapshot, which equals the live loads at every barrier.
//
// Repartitioning never breaks reproducibility: the new cuts are a pure
// function of the folded barrier statistics, so a fixed (seed, P)
// replays the identical sequence of migrations and the identical
// trajectory. At P = 1 the trigger can never fire (one shard always
// holds exactly its fair share), so the byte-identical sequential
// equivalences above are untouched.
//
// Time targets: DirectEngine stops at the first activation on or past
// the target (a ~Exp(m) overshoot); the jump modes clamp their final
// block so UntilTime runs report exactly the target time, with the
// truncated block's null activations tallied by an exact thinned Poisson
// draw.
//
// Choosing a mode by regime:
//
//   - dense (m ≫ n, many productive moves): ShardedEngine — per-move
//     work dominates and parallelizes across P workers (≥ P hardware
//     threads needed; BenchmarkShardedDense tracks the speedup).
//   - sparse/end-game (m ≈ n, mostly null activations): JumpEngine —
//     nothing to parallelize, everything to skip. This now includes
//     strict-tie and graph end-games on every supported topology,
//     dense degrees included (BenchmarkStrictEndGame,
//     BenchmarkGraphEndGame, BenchmarkGraphDense).
//   - whole runs crossing regimes (dense start, converged tail), or
//     long-lived sessions alternating churn bursts with quiet stretches:
//     ShardedJumpEngine — adaptive epochs slide between the two
//     (BenchmarkShardedJumpDenseToSparse tracks it; it simulates fewer
//     activations than ShardedEngine on the same span and its event
//     work parallelizes across the shards).
//   - heterogeneous speeds or exact per-activation trajectories:
//     DirectEngine, the only mode that supports every option.
//
// Shards × engine-mode composition matrix: WithShards composes with
// ShardedEngine (per-activation shards) and ShardedJumpEngine
// (rejection-free shards); DirectEngine and JumpEngine are their P = 1
// sequential bases. Every cell of the matrix is now filled. Along the
// protocol-variant axis, DirectEngine accepts everything (strict tie
// rule, topologies, speeds); JumpEngine accepts the strict tie rule
// and regular topologies (not together, and not speeds); the sharded
// modes run plain RLS on the complete topology only.
//
// Every cell of that matrix is also checkpointable: Session.Snapshot
// writes the full engine state — loads, per-ball structures, level
// indices, shard partitions, and the exact RNG stream positions — as a
// versioned, CRC-framed binary artifact, and ResumeSession rebuilds a
// Session that continues *byte-identically*: the resumed run draws the
// same random numbers, makes the same moves, and re-snapshots to the
// same bytes as the uninterrupted original. Sharded snapshots are taken
// at epoch barriers, where the stale snapshot equals the live loads, so
// the contract holds at every P. State whose in-memory order evolved
// under simulation is serialized verbatim; derived structures (Fenwick
// trees, position indices) are rebuilt on decode — internal/persist
// documents the wire format and the split, and TestResumeByteIdentical
// gates the contract over the whole mode × strict × topology × churn
// matrix. NewTraceWriter/OpenTrace stream the same machinery into trace
// archives with embedded snapshots as seek points (cmd/rlsdump decodes
// both artifact kinds).
//
// Concurrency: a Runner is single-use single-goroutine, but a Session —
// in every cell of the matrix — is safe for concurrent callers. Each
// Session method serializes on one internal mutex; the Run* methods hold
// it for the whole simulated stretch, so concurrent churn and stats
// calls block until the run returns (split long horizons into short
// RunFor slices to interleave). This is the contract the serving layer
// builds on: cmd/rlsd hosts thousands of Sessions as tenants behind an
// HTTP/JSON control plane and an SSE telemetry plane, with one applier
// goroutine per tenant and concurrent readers on the same Session (see
// internal/service and cmd/rlsd/README.md).
//
// The experiment suite reproducing every figure and claim of the paper
// lives in internal/harness and is driven by cmd/rlsweep, cmd/rlsfigs and
// the benchmarks in bench_test.go (`go run ./cmd/rlsweep -list`
// enumerates it; cmd/README.md documents the tools). README.md is the
// project front door — quickstart, the engine-mode matrix, the examples
// tour, and the benchmark methodology. `make bench` records the tracked
// perf trajectory into the next BENCH_PR*.json, including the `rlsweep
// -scaling` speedup-vs-P study (`make scaling` prints it standalone);
// shard ratios need as many hardware threads as shards, and the JSON
// headers record the machine's core count and GOMAXPROCS.
package rls

// Package rls is a Go reproduction of "Tight Load Balancing via Randomized
// Local Search" by Berenbrink, Kling, Liaw and Mehrabian (IPDPS 2017;
// arXiv:1706.09997).
//
// The paper analyzes the Randomized Local Search (RLS) protocol: n bins, m
// balls, each ball carrying an independent rate-1 exponential clock; when
// a ball's clock rings it samples a uniformly random bin and moves there
// iff the sampled bin holds strictly fewer balls. The paper's main result
// (Theorem 1) is that the expected time to perfect balance (discrepancy
// below 1) is Θ(ln n + n²/m) from any initial configuration.
//
// This package is the public API: construct a Runner with New, configure
// it with options (initial placement, tie rule, topology, bin speeds,
// stop target, engine choice), and Run it. Session is the long-running
// service core: it supports dynamic ball churn (joins and leaves) for
// self-stabilization scenarios, absorbing each event incrementally into
// one persistent engine — with the activation rate tracking the live
// population — instead of rebuilding O(m) state. Quantities from the
// paper's analysis (harmonic bounds, Theorem 1 predictors) are exposed as
// plain functions.
//
// # Engine modes
//
// Runs execute in one of two modes, selected with WithEngineMode (and
// WithSessionEngineMode for sessions):
//
//   - DirectEngine (default) simulates every activation: an Exp(m) time
//     gap, a uniform ball, a uniform destination, the protocol's accept
//     test. Cost is O(1) per activation — but near balance almost every
//     activation is a rejected null move, so whole runs cost
//     O(activations) ≈ O(m·n/W) per move.
//   - JumpEngine simulates only the embedded jump chain of productive
//     moves, the object the paper's analysis is phrased over (Theorem 1,
//     Lemmas 15–16). A level index over the load histogram maintains the
//     total move weight W = Σ_v v·count[v]·C(v−1) in O(log Δ) per move;
//     each step skips a Geometric(W/(m·n)) block of null activations,
//     advances time by the matching Gamma(k, m) gap, and samples the
//     productive (src, dst) pair exactly. Cost is O(log Δ) per move.
//
// The two modes induce the identical law on every quantity observed at
// moves — balancing times, phase-crossing times, move counts, final
// configurations, and the activation counter (experiment A4 KS-tests the
// balancing-time distributions; run `go test -bench ExpA4`). They are not
// byte-identical streams: the jump engine draws different random numbers.
// The only observable difference is granularity between moves: direct
// runs can trace or stop at any activation, jump runs only at moves, so
// per-activation traces coarsen to per-move blocks and time- or
// activation-targeted stops may overshoot by one block. Choose JumpEngine
// for balancing-time experiments, end-game-heavy workloads (m ≈ n), and
// long-lived sessions near balance; choose DirectEngine for strict tie
// rules, graph topologies, heterogeneous speeds, or exact per-activation
// trajectories.
//
// The experiment suite reproducing every figure and claim of the paper
// lives in internal/harness and is driven by cmd/rlsweep, cmd/rlsfigs and
// the benchmarks in bench_test.go; see DESIGN.md and EXPERIMENTS.md.
// `make bench` regenerates BENCH_PR2.json, the tracked perf trajectory.
package rls

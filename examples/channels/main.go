// Channel allocation: access points (balls) pick wireless channels (bins)
// — the balls-into-bins load-balancing application of [19] cited in the
// paper's related work. An AP's interference grows with the number of
// APs sharing its channel, so each AP selfishly resamples channels via
// RLS.
//
// The example compares three allocation strategies on the same workload:
// one-choice (each AP picks a random channel), two-choice (power of two
// choices at arrival), and RLS migration on top of the one-choice start.
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	const channels = 48  // e.g. 5 GHz band
	const aps = 48 * 100 // dense deployment: 100 APs per channel on average

	fmt.Printf("%d access points over %d channels (average %d per channel)\n\n",
		aps, channels, aps/channels)

	// Strategy 1: one-choice — random static assignment.
	oneChoice, err := rls.New(channels, aps,
		rls.WithSeed(7),
		rls.WithPlacement(rls.Random()),
		rls.WithTarget(rls.UntilTime(0)), // no migration: measure the placement itself
	).Run()
	must(err)

	// Strategy 2: two-choice at arrival, still static afterwards.
	twoChoice, err := rls.New(channels, aps,
		rls.WithSeed(7),
		rls.WithPlacement(rls.TwoChoice()),
		rls.WithTarget(rls.UntilTime(0)),
	).Run()
	must(err)

	// Strategy 3: one-choice start, then RLS migration to perfection.
	migrated, err := rls.New(channels, aps,
		rls.WithSeed(7),
		rls.WithPlacement(rls.Random()),
	).Run()
	must(err)

	fmt.Println("strategy                   worst channel  discrepancy  migrations")
	fmt.Printf("one-choice (static)        %-14d %-12.2f %d\n",
		rls.MaxLatency(oneChoice.Final), oneChoice.Disc, oneChoice.Moves)
	fmt.Printf("two-choice (static)        %-14d %-12.2f %d\n",
		rls.MaxLatency(twoChoice.Final), twoChoice.Disc, twoChoice.Moves)
	fmt.Printf("one-choice + RLS           %-14d %-12.2f %d\n",
		rls.MaxLatency(migrated.Final), migrated.Disc, migrated.Moves)

	fmt.Printf("\nRLS migration time: %.3f (Theorem 1 predictor %.3f); every channel ends with exactly %d APs\n",
		migrated.Time, rls.ExpectedBalanceTime(channels, aps), aps/channels)
	fmt.Println("static placements leave Θ(√(m/n·ln n))-scale imbalance; migration removes it entirely.")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

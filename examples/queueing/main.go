// Queueing: the open-system setting of Ganesh et al. [11] — the line of
// work whose closed-system analysis this paper tightens. Jobs arrive as
// a Poisson stream, n servers drain them as M/M/1 queues, and waiting
// jobs optionally run RLS migration clocks.
//
// Without migration the maximum queue scales like log_{1/ρ}(n); with the
// paper's rate-1 clocks the queue vector hugs the mean. This is the
// operational payoff of the balancing result: tail latency collapses.
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	const (
		servers = 64
		mu      = 1.0
		warmup  = 2000.0
		window  = 15000.0
	)

	fmt.Printf("%d servers, M/M/1 service (μ=1), observation window %.0f time units\n\n", servers, window)
	header := "rho   migration  jobs/server (M/M/1 pred)  mean max queue (EV scale)  mean disc  pct-time perfect"
	fmt.Println(header)

	for _, rho := range []float64{0.5, 0.8, 0.9} {
		for _, beta := range []float64{0, 1} {
			sys, err := rls.NewOpenSystem(servers, rho*mu, mu, beta, 42)
			if err != nil {
				panic(err)
			}
			st := sys.Observe(warmup, window)
			mig := "off"
			if beta > 0 {
				mig = "RLS"
			}
			fmt.Printf("%.2f  %-9s  %-11.2f (%.2f)%-7s %-15.2f (%.1f)%-5s %-9.2f %.0f%%\n",
				rho, mig,
				st.MeanJobsPerServer, rls.MM1MeanJobs(rho), "",
				st.MeanMaxQueue, rls.MM1MaxQueueScale(servers, rho), "",
				st.MeanDisc, 100*st.FracPerfect)
		}
	}

	fmt.Println("\nreading: RLS migration keeps servers busy whenever work exists anywhere")
	fmt.Println("(approaching pooled M/M/n behaviour), so the mean job count falls AND the")
	fmt.Println("maximum queue — the tail latency — collapses toward the mean.")
}

// Sharded scaling on the dense regime — every bin busy, a double-digit
// share of activations productive — where per-move work, not null
// activations, dominates the wall clock. The sharded engine partitions
// the bins across P goroutine workers; this example sweeps P and shows
//
//   - the balancing law is preserved: final discrepancy and move counts
//     stay in family across P while only the partitioning changes;
//   - fixed (seed, P) is exactly reproducible: two runs agree to the bit;
//   - cross-shard traffic is the minority: most activations resolve
//     entirely inside one shard, which is why the mode scales.
//
// Wall-clock speedup needs at least P hardware threads (GOMAXPROCS is
// printed for context); on a single core the same sweep still runs, just
// serialized.
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	rls "repro"
)

func main() {
	const n, m = 1 << 14, 1 << 14
	const horizon = 4.0

	fmt.Printf("dense sweep: n=m=%d, one-choice start, horizon t=%g, GOMAXPROCS=%d\n\n",
		n, horizon, runtime.GOMAXPROCS(0))
	fmt.Printf("%-10s %-10s %-12s %-8s %-10s\n", "engine", "wall", "activations", "moves", "final disc")

	run := func(name string, opts ...rls.Option) rls.Result {
		opts = append([]rls.Option{
			rls.WithSeed(7),
			rls.WithPlacement(rls.Random()),
			rls.WithTarget(rls.UntilTime(horizon)),
		}, opts...)
		start := time.Now()
		res, err := rls.New(n, m, opts...).Run()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %-10s %-12d %-8d %-10.2f\n",
			name, time.Since(start).Round(time.Millisecond), res.Activations, res.Moves, res.Disc)
		return res
	}

	run("direct")
	for _, p := range []int{1, 2, 4} {
		res := run(fmt.Sprintf("P=%d", p),
			rls.WithEngineMode(rls.ShardedEngine), rls.WithShards(p), rls.WithShardEpoch(0.125))
		if p == 4 {
			// Fixed (seed, P) reproduces the run exactly, scheduling aside.
			again := run("P=4 again",
				rls.WithEngineMode(rls.ShardedEngine), rls.WithShards(4), rls.WithShardEpoch(0.125))
			if math.Float64bits(res.Time) != math.Float64bits(again.Time) ||
				res.Activations != again.Activations || res.Moves != again.Moves {
				panic("sharded run not reproducible")
			}
			fmt.Println("\nP=4 rerun is bit-identical: deterministic per-shard streams + barrier draining.")
		}
	}
}

// P2P churn: data items (balls) balanced across peers (bins) under
// continuous churn — the self-stabilization setting that motivates simple
// distributed protocols in the paper's introduction (cf. [20]).
//
// The Session API lets items join and leave between stretches of RLS
// execution; after every churn burst, RLS restores perfect balance with
// no restart, reset, or global coordination.
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	const peers = 24
	s := rls.NewSession(peers, 99)

	// Bootstrap: 480 items arrive at a single seed peer (worst case —
	// e.g. a bulk import).
	for i := 0; i < 480; i++ {
		if err := s.AddBall(0); err != nil {
			panic(err)
		}
	}
	fmt.Printf("bootstrap: %d items on peer 0 of %d peers; disc = %.1f\n", s.M(), peers, s.Disc())
	mustBalance(s)

	// Ten churn epochs: a burst of joins/leaves, then RLS re-balances.
	for epoch := 1; epoch <= 10; epoch++ {
		// 40 random items leave (peers crash / objects deleted) and 55
		// new items arrive at a hotspot peer.
		for i := 0; i < 40; i++ {
			if _, err := s.RemoveRandomBall(); err != nil {
				panic(err)
			}
		}
		hotspot := epoch % peers
		for i := 0; i < 55; i++ {
			if err := s.AddBall(hotspot); err != nil {
				panic(err)
			}
		}
		preDisc := s.Disc()
		preTime := s.Time()
		mustBalance(s)
		fmt.Printf("epoch %2d: %4d items, churn disc %.1f → rebalanced in %.3f time units\n",
			epoch, s.M(), preDisc, s.Time()-preTime)
	}

	fmt.Printf("\nsession totals: time %.2f, activations %d, moves %d, final disc %.2f\n",
		s.Time(), s.Activations(), s.Moves(), s.Disc())
	fmt.Println("RLS is self-stabilizing here: every epoch ends perfectly balanced.")
}

func mustBalance(s *rls.Session) {
	ok, err := s.RunUntilPerfect(50_000_000)
	if err != nil {
		panic(err)
	}
	if !ok {
		panic("did not rebalance within budget")
	}
}

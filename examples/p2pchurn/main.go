// P2P churn: data items (balls) balanced across peers (bins) under
// continuous churn — the self-stabilization setting that motivates simple
// distributed protocols in the paper's introduction (cf. [20]).
//
// The Session API is churn-native: one engine persists for the whole
// session, and every join/leave is absorbed incrementally in O(1) — no
// rebuild, restart, or global coordination. That makes fine-grained
// interleaving cheap: here churn events land *during* live execution
// (join, leave, run a sliver of protocol time, repeat), not just between
// balancing epochs.
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	const peers = 24
	s := rls.NewSession(peers, 99)

	// Bootstrap: 480 items arrive at a single seed peer (worst case —
	// e.g. a bulk import).
	for i := 0; i < 480; i++ {
		if err := s.AddBall(0); err != nil {
			panic(err)
		}
	}
	fmt.Printf("bootstrap: %d items on peer 0 of %d peers; disc = %.1f\n", s.M(), peers, s.Disc())
	mustBalance(s)

	// Ten churn epochs. Each epoch interleaves joins, leaves, and short
	// stretches of live RLS execution — the protocol keeps absorbing
	// events while it runs, then finishes re-balancing.
	for epoch := 1; epoch <= 10; epoch++ {
		// 40 random items leave (peers crash / objects deleted) and 55
		// new items arrive at a hotspot peer, a few at a time between
		// slivers of protocol execution.
		hotspot := epoch % peers
		for burst := 0; burst < 5; burst++ {
			for i := 0; i < 8; i++ {
				if _, err := s.RemoveRandomBall(); err != nil {
					panic(err)
				}
			}
			for i := 0; i < 11; i++ {
				if err := s.AddBall(hotspot); err != nil {
					panic(err)
				}
			}
			if err := s.RunFor(0.05); err != nil { // live absorption
				panic(err)
			}
		}
		preDisc := s.Disc()
		preTime := s.Time()
		mustBalance(s)
		fmt.Printf("epoch %2d: %4d items, post-churn disc %.1f → rebalanced in %.3f time units\n",
			epoch, s.M(), preDisc, s.Time()-preTime)
	}

	fmt.Printf("\nsession totals: time %.2f, activations %d, moves %d, final disc %.2f\n",
		s.Time(), s.Activations(), s.Moves(), s.Disc())
	fmt.Println("RLS is self-stabilizing here: every epoch ends perfectly balanced,")
	fmt.Println("with every join/leave absorbed in O(1) by the live engine.")
}

func mustBalance(s *rls.Session) {
	ok, err := s.RunUntilPerfect(50_000_000)
	if err != nil {
		panic(err)
	}
	if !ok {
		panic("did not rebalance within budget")
	}
}

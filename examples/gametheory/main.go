// Game-theoretic view: RLS as randomized better-response dynamics in the
// KP-model with unit weights and identical links ([16], as framed in the
// paper's §1/§3). Each user (ball) on a link (bin) occasionally samples
// another link and switches whenever that does not worsen its latency.
//
// Pure Nash equilibria of this game are exactly the perfectly balanced
// configurations, the social cost is the maximum link latency, and the
// paper's Theorem 1 bounds the expected convergence time to Nash by
// O(ln n + n²/m). The example tracks social cost and the Nash gap along
// the trajectory.
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	const links, users = 20, 240

	fmt.Printf("KP-model: %d unit-weight users on %d identical links\n", users, links)
	fmt.Printf("optimal social cost (max latency) = %d; Nash ⇔ perfectly balanced\n\n", users/links)

	// Adversarial start: everyone on one link.
	res, trace, err := rls.New(links, users,
		rls.WithSeed(31),
		rls.WithPlacement(rls.AllInOne()),
	).RunTraced(150)
	if err != nil {
		panic(err)
	}

	fmt.Println("  time      social cost (max latency)  Nash gap")
	for _, p := range trace {
		// Social cost = max load; Nash gap = how far from equilibrium.
		gap := p.MaxLoad - p.MinLoad - 1
		if gap < 0 {
			gap = 0
		}
		fmt.Printf("  %-9.3f %-27d %d\n", p.Time, p.MaxLoad, gap)
	}

	fmt.Printf("\nreached pure Nash: %v (social cost %d, Nash gap %d)\n",
		res.Reached, rls.MaxLatency(res.Final), rls.NashGap(res.Final))
	fmt.Printf("convergence time %.3f vs Theorem 1 scale %.3f\n",
		res.Time, rls.ExpectedBalanceTime(links, users))
	fmt.Printf("better-response moves performed: %d (each strictly improves or keeps a user's latency)\n", res.Moves)
}

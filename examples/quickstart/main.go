// Quickstart: balance m balls into n bins with RLS and watch the
// discrepancy fall to perfect balance, comparing the measured time with
// the paper's Theorem 1 predictor Θ(ln n + n²/m).
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	const n, m = 32, 512

	fmt.Printf("Randomized Local Search: %d balls into %d bins (average load %.1f)\n",
		m, n, float64(m)/float64(n))
	fmt.Printf("Theorem 1 says E[T] = Θ(ln n + n²/m) = Θ(%.2f)\n\n", rls.ExpectedBalanceTime(n, m))

	// Worst case: every ball starts in bin 0. Trace the trajectory.
	runner := rls.New(n, m,
		rls.WithSeed(2024),
		rls.WithPlacement(rls.AllInOne()),
	)
	res, trace, err := runner.RunTraced(400)
	if err != nil {
		panic(err)
	}

	fmt.Println("  time      activations  discrepancy")
	for _, p := range trace {
		fmt.Printf("  %-9.3f %-12d %.2f\n", p.Time, p.Activations, p.Disc)
	}

	fmt.Printf("\nperfect balance (disc < 1) reached: %v\n", res.Reached)
	fmt.Printf("  continuous time : %.3f  (predictor %.2f)\n", res.Time, rls.ExpectedBalanceTime(n, m))
	fmt.Printf("  ball activations: %d\n", res.Activations)
	fmt.Printf("  actual moves    : %d  (≥ m−∅ = %d necessarily)\n", res.Moves, m-m/n)
	fmt.Printf("  phase crossings : O(ln n)-balanced %.3f → 1-balanced %.3f → perfect %.3f\n",
		res.Phases.LogBalanced, res.Phases.OneBalanced, res.Phases.Perfect)
}

// Multicore scheduling with heterogeneous cores — the paper's §7 future
// direction 1: bins (cores) have speeds, the load a task experiences is
// (tasks on core)/speed, and each task migrates via RLS iff migrating
// strictly improves its experienced load.
//
// The run stops at a Nash state: no task can improve by moving. The
// example shows the resulting allocation is speed-proportional.
package main

import (
	"fmt"

	rls "repro"
)

func main() {
	// A big.LITTLE-style machine: 4 performance cores (speed 3), 4 mid
	// cores (speed 2), 8 efficiency cores (speed 1).
	speeds := []float64{3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1}
	n := len(speeds)
	const tasks = 480

	totalSpeed := 0.0
	for _, s := range speeds {
		totalSpeed += s
	}

	fmt.Printf("%d tasks on %d cores (speeds: 4×3, 4×2, 8×1; total %.0f)\n", tasks, n, totalSpeed)
	fmt.Printf("speed-proportional target: core of speed s gets ≈ %.1f·s tasks\n\n", tasks/totalSpeed)

	res, err := rls.New(n, tasks,
		rls.WithSeed(5),
		rls.WithPlacement(rls.AllInOne()), // all tasks dumped on core 0
		rls.WithSpeeds(speeds),
	).Run()
	if err != nil {
		panic(err)
	}
	if !res.Reached {
		panic("did not reach a Nash allocation")
	}

	fmt.Println("core  speed  tasks  experienced load (tasks/speed)")
	for i, s := range speeds {
		fmt.Printf("%-5d %-6.0f %-6d %.2f\n", i, s, res.Final[i], float64(res.Final[i])/s)
	}
	fmt.Printf("\nconverged to a Nash state in time %.3f (%d activations, %d migrations)\n",
		res.Time, res.Activations, res.Moves)
	fmt.Println("no task can improve its experienced load by migrating — and the")
	fmt.Println("experienced loads above are equal up to one task's worth of granularity.")
}

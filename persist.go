package rls

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/graphs"
	"repro/internal/persist"
)

// This file is the top of the snapshot stack: Session gains
// Snapshot/ResumeSession (full engine state, resumable byte-identically)
// and a binary trace archive (streamed trajectory records with embedded
// snapshots as seek points). internal/persist owns the wire format;
// the layers below own their own payloads.
//
// Byte-identical resume contract: for every engine mode × strict ×
// topology × shard count, a session restored from a snapshot produces
// exactly the bytes the uninterrupted session would have — the same
// run results, the same traced points, and the same stream of random
// draws (churn placement included). The property test in
// persist_test.go pins this across the full mode matrix; sharded
// snapshots are taken between Runs, i.e. at epoch barriers, which is
// the only point their cross-shard machinery is quiescent.

// Snapshot artifact section kinds (trace archives reuse meta and add
// their own).
const (
	sectMeta          = 1 // session shape + optional caller note
	sectEngine        = 2 // sequential engine payload (direct/jump)
	sectSharded       = 3 // sharded engine payload
	sectTraceRecord   = 4 // one trajectory record
	sectTraceSnapshot = 5 // embedded full snapshot artifact (seek point)
)

// Snapshot writes the session's complete state — loads, sampler and
// index internals, clocks, counters, and RNG stream positions — as a
// binary snapshot artifact. A session resumed from it (ResumeSession)
// continues byte-identically to one that was never serialized. Sharded
// sessions snapshot between runs, which is an epoch barrier: the
// cross-shard machinery is empty there, so the artifact captures the
// full engine state.
func (s *Session) Snapshot(w io.Writer) error { return s.SnapshotWithNote(w, nil) }

// SnapshotWithNote is Snapshot with an opaque caller note stored in the
// artifact header — the service keeps each tenant's identity and config
// there, so one tenant is one self-describing file.
func (s *Session) SnapshotWithNote(w io.Writer, note []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(w, note)
}

func (s *Session) snapshotLocked(w io.Writer, note []byte) error {
	topoKind, topoArg, err := s.topologyCode()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := persist.WriteHeader(bw, persist.MagicSnapshot); err != nil {
		return err
	}
	var meta persist.Enc
	meta.Int(s.engine.Bins())
	meta.Int(int(s.mode))
	meta.Int(s.shards)
	meta.Bool(s.strict)
	meta.Int(topoKind)
	meta.Int(topoArg)
	meta.U64(s.topology.rrSeed)
	meta.Int(int(s.graphSampler))
	meta.Bytes8(note)
	if err := persist.WriteSection(bw, sectMeta, meta.Bytes()); err != nil {
		return err
	}
	var enc persist.Enc
	kind := uint64(sectEngine)
	switch eng := s.engine.(type) {
	case sequentialSession:
		eng.e.EncodeState(&enc)
	case shardedSession:
		kind = sectSharded
		eng.e.EncodeState(&enc)
	default:
		return fmt.Errorf("rls: session engine %T has no snapshot codec", s.engine)
	}
	if err := persist.WriteSection(bw, kind, enc.Bytes()); err != nil {
		return err
	}
	if err := persist.WriteSection(bw, persist.KindEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// topologyCode maps the session topology onto the (kind, arg) pair the
// snapshot header stores: 0 complete, 1 ring, 2 torus(side),
// 3 hypercube(dim), 4 expander (the side adapts to √n on resume),
// 5 random-regular(d) — whose construction seed rides in the meta
// section's topoSeed field so resume rebuilds the identical adjacency.
func (s *Session) topologyCode() (kind, arg int, err error) {
	if s.topology.rrD > 0 {
		return 5, s.topology.rrD, nil
	}
	switch g := s.topology.g.(type) {
	case nil:
		return 0, 0, nil
	case graphs.Ring:
		return 1, 0, nil
	case graphs.Torus2D:
		return 2, g.Side, nil
	case graphs.Hypercube:
		return 3, g.Dim, nil
	case graphs.Expander:
		return 4, 0, nil
	default:
		return 0, 0, fmt.Errorf("rls: topology %T has no snapshot code", g)
	}
}

// sessionOptsFromMeta validates a decoded header and rebuilds the
// NewSession options that reconstruct the engine shape. Every NewSession
// panic path is checked here first, so corrupt artifacts surface as
// typed errors.
func sessionOptsFromMeta(n, mode, shards int, strict bool, topoKind, topoArg int, topoSeed uint64, gsampler int) ([]SessionOption, error) {
	if n < 1 {
		return nil, persist.Corruptf("session over %d bins", n)
	}
	if mode < int(DirectEngine) || mode > int(ShardedJumpEngine) {
		return nil, persist.Corruptf("unknown engine mode %d", mode)
	}
	if shards < 0 {
		return nil, persist.Corruptf("session with %d shards", shards)
	}
	m := EngineMode(mode)
	sharded := m == ShardedEngine || m == ShardedJumpEngine
	if sharded && (strict || topoKind != 0) {
		return nil, persist.Corruptf("sharded session with strict rule or topology")
	}
	if gsampler < int(GraphSamplerAuto) || gsampler > int(GraphSamplerRejection) {
		return nil, persist.Corruptf("unknown graph sampler %d", gsampler)
	}
	if gsampler != int(GraphSamplerAuto) && (m != JumpEngine || topoKind == 0) {
		return nil, persist.Corruptf("graph sampler override without a graph jump engine")
	}
	opts := []SessionOption{WithSessionEngineMode(m)}
	if shards > 0 {
		opts = append(opts, WithSessionShards(shards))
	}
	if strict {
		if topoKind != 0 {
			return nil, persist.Corruptf("strict tie rule on a topology")
		}
		opts = append(opts, WithSessionStrictTieRule())
	}
	switch topoKind {
	case 0:
	case 1:
		opts = append(opts, WithSessionTopology(RingTopology()))
	case 2:
		if topoArg < 1 || topoArg*topoArg != n {
			return nil, persist.Corruptf("torus side %d against %d bins", topoArg, n)
		}
		opts = append(opts, WithSessionTopology(TorusTopology(topoArg)))
	case 3:
		if topoArg < 0 || topoArg > 30 || 1<<topoArg != n {
			return nil, persist.Corruptf("hypercube dim %d against %d bins", topoArg, n)
		}
		opts = append(opts, WithSessionTopology(HypercubeTopology(topoArg)))
	case 4:
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, persist.Corruptf("expander over non-square %d bins", n)
		}
		opts = append(opts, WithSessionTopology(ExpanderTopology()))
	case 5:
		if topoArg < 1 || topoArg >= n || (n*topoArg)%2 != 0 {
			return nil, persist.Corruptf("random-regular degree %d against %d bins", topoArg, n)
		}
		opts = append(opts, WithSessionTopology(RandomRegularTopology(topoArg, topoSeed)))
	default:
		return nil, persist.Corruptf("unknown topology code %d", topoKind)
	}
	if gsampler != int(GraphSamplerAuto) {
		opts = append(opts, WithSessionGraphSampler(GraphSampler(gsampler)))
	}
	return opts, nil
}

// decodeMeta reads the session-shape section shared by snapshots and
// trace archives.
func decodeMeta(payload []byte) (n, mode, shards int, strict bool, topoKind, topoArg int, topoSeed uint64, gsampler int, note []byte, err error) {
	d := persist.NewDec(payload)
	n = d.Int()
	mode = d.Int()
	shards = d.Int()
	strict = d.Bool()
	topoKind = d.Int()
	topoArg = d.Int()
	topoSeed = d.U64()
	gsampler = d.Int()
	note = d.Bytes8()
	return n, mode, shards, strict, topoKind, topoArg, topoSeed, gsampler, note, d.Err()
}

// ResumeSession reads a snapshot artifact and returns a session that
// continues byte-identically from the captured state. It never panics
// on malformed input: truncation, corruption, checksum mismatches, and
// version skew surface as persist's typed errors.
func ResumeSession(r io.Reader) (*Session, error) {
	s, _, err := ResumeSessionWithNote(r)
	return s, err
}

// ResumeSessionWithNote is ResumeSession returning the caller note the
// artifact was written with (nil when absent).
func ResumeSessionWithNote(r io.Reader) (*Session, []byte, error) {
	br := bufio.NewReader(r)
	if err := persist.ReadHeader(br, persist.MagicSnapshot); err != nil {
		return nil, nil, err
	}
	sr := persist.NewSectionReader(br)
	kind, payload, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return nil, nil, fmt.Errorf("%w: missing header section", persist.ErrTruncated)
		}
		return nil, nil, err
	}
	if kind != sectMeta {
		return nil, nil, persist.Corruptf("snapshot leads with section %d, want meta", kind)
	}
	n, mode, shards, strict, topoKind, topoArg, topoSeed, gsampler, note, err := decodeMeta(payload)
	if err != nil {
		return nil, nil, err
	}
	opts, err := sessionOptsFromMeta(n, mode, shards, strict, topoKind, topoArg, topoSeed, gsampler)
	if err != nil {
		return nil, nil, err
	}
	s := NewSession(n, 0, opts...)

	kind, payload, err = sr.Next()
	if err != nil {
		if err == io.EOF {
			return nil, nil, fmt.Errorf("%w: missing engine section", persist.ErrTruncated)
		}
		return nil, nil, err
	}
	d := persist.NewDec(payload)
	switch eng := s.engine.(type) {
	case sequentialSession:
		if kind != sectEngine {
			return nil, nil, persist.Corruptf("snapshot engine section kind %d, want %d", kind, sectEngine)
		}
		if err := eng.e.DecodeState(d); err != nil {
			return nil, nil, err
		}
	case shardedSession:
		if kind != sectSharded {
			return nil, nil, persist.Corruptf("snapshot engine section kind %d, want %d", kind, sectSharded)
		}
		if err := eng.e.DecodeState(d); err != nil {
			return nil, nil, err
		}
	}
	if kind, _, err = sr.Next(); err != nil {
		if err == io.EOF {
			return nil, nil, fmt.Errorf("%w: missing end section", persist.ErrTruncated)
		}
		return nil, nil, err
	}
	if kind != persist.KindEnd {
		return nil, nil, persist.Corruptf("trailing section %d after the engine state", kind)
	}
	return s, note, nil
}

// TraceRecord is one row of a trace archive: the session's cumulative
// clocks and balance at a trajectory point or a churn event.
type TraceRecord struct {
	// Kind is "point" (a sampled trajectory point), "add", or "remove"
	// (a churn event, recorded after it applied).
	Kind string
	// Bin is the churned bin (-1 for points).
	Bin         int
	Time        float64
	Activations int64
	Moves       int64
	Balls       int
	Disc        float64
}

// Trace record kind codes on the wire.
const (
	traceKindPoint = iota
	traceKindAdd
	traceKindRemove
)

// TraceWriter streams a session's trajectory into a binary trace
// archive: one record per Point/Churn call, with a full snapshot
// embedded at the start and (optionally) every snapEvery records — the
// seek points a reader can resume simulation from. Not safe for
// concurrent use; the session itself may keep serving other callers.
type TraceWriter struct {
	s         *Session
	bw        *bufio.Writer
	snapEvery int
	sinceSnap int
	err       error
}

// NewTraceWriter starts a trace archive for the session on w: header,
// shape metadata, and the initial embedded snapshot. snapEvery > 0
// embeds an additional snapshot after every snapEvery records; 0 keeps
// only the initial one.
func (s *Session) NewTraceWriter(w io.Writer, snapEvery int) (*TraceWriter, error) {
	if snapEvery < 0 {
		return nil, fmt.Errorf("rls: NewTraceWriter with negative snapshot interval %d", snapEvery)
	}
	s.mu.Lock()
	topoKind, topoArg, err := s.topologyCode()
	bins := s.engine.Bins()
	mode, shards, strict := s.mode, s.shards, s.strict
	topoSeed, gsampler := s.topology.rrSeed, s.graphSampler
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	if err := persist.WriteHeader(bw, persist.MagicTrace); err != nil {
		return nil, err
	}
	var meta persist.Enc
	meta.Int(bins)
	meta.Int(int(mode))
	meta.Int(shards)
	meta.Bool(strict)
	meta.Int(topoKind)
	meta.Int(topoArg)
	meta.U64(topoSeed)
	meta.Int(int(gsampler))
	meta.Bytes8(nil)
	if err := persist.WriteSection(bw, sectMeta, meta.Bytes()); err != nil {
		return nil, err
	}
	tw := &TraceWriter{s: s, bw: bw, snapEvery: snapEvery}
	if err := tw.embedSnapshot(); err != nil {
		return nil, err
	}
	return tw, nil
}

func (tw *TraceWriter) embedSnapshot() error {
	var buf bytes.Buffer
	if err := tw.s.Snapshot(&buf); err != nil {
		tw.err = err
		return err
	}
	if err := persist.WriteSection(tw.bw, sectTraceSnapshot, buf.Bytes()); err != nil {
		tw.err = err
		return err
	}
	tw.sinceSnap = 0
	return nil
}

// Point records the session's current clocks and balance as a
// trajectory point.
func (tw *TraceWriter) Point() error { return tw.record(traceKindPoint, -1) }

// Churn records a just-applied churn event ("add" or "remove") against
// the given bin (pass -1 for a random-bin event).
func (tw *TraceWriter) Churn(kind string, bin int) error {
	switch kind {
	case "add":
		return tw.record(traceKindAdd, bin)
	case "remove":
		return tw.record(traceKindRemove, bin)
	}
	return fmt.Errorf("rls: unknown churn kind %q (want add|remove)", kind)
}

func (tw *TraceWriter) record(kind, bin int) error {
	if tw.err != nil {
		return tw.err
	}
	st := tw.s.Stats()
	var enc persist.Enc
	enc.Int(kind)
	enc.Int(bin)
	enc.F64(st.Time)
	enc.I64(st.Activations)
	enc.I64(st.Moves)
	enc.Int(st.Balls)
	enc.F64(st.Disc)
	if err := persist.WriteSection(tw.bw, sectTraceRecord, enc.Bytes()); err != nil {
		tw.err = err
		return err
	}
	tw.sinceSnap++
	if tw.snapEvery > 0 && tw.sinceSnap >= tw.snapEvery {
		return tw.embedSnapshot()
	}
	return nil
}

// Close terminates the archive with an end section and flushes. The
// writer is unusable afterwards.
func (tw *TraceWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if err := persist.WriteSection(tw.bw, persist.KindEnd, nil); err != nil {
		tw.err = err
		return err
	}
	tw.err = fmt.Errorf("rls: trace writer is closed")
	return tw.bw.Flush()
}

// TraceMeta is the shape header of a trace archive.
type TraceMeta struct {
	Bins     int
	Mode     EngineMode
	Shards   int
	Strict   bool
	Topology string // complete|ring|torus|hypercube|expander|random-<d>-regular
	// Sampler is the jump engine's graph-sampler choice the archive was
	// recorded under ("auto" when unset or not applicable).
	Sampler string
}

// TraceItem is one archive entry: exactly one of Record (a trajectory
// or churn record) and Snapshot (an embedded snapshot artifact, which
// ResumeSession can decode) is set.
type TraceItem struct {
	Record   *TraceRecord
	Snapshot []byte
}

// TraceReader iterates a trace archive.
type TraceReader struct {
	sr   *persist.SectionReader
	meta TraceMeta
	done bool
}

// OpenTrace reads a trace archive header and returns an iterator over
// its records and embedded snapshots.
func OpenTrace(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	if err := persist.ReadHeader(br, persist.MagicTrace); err != nil {
		return nil, err
	}
	sr := persist.NewSectionReader(br)
	kind, payload, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing header section", persist.ErrTruncated)
		}
		return nil, err
	}
	if kind != sectMeta {
		return nil, persist.Corruptf("trace leads with section %d, want meta", kind)
	}
	n, mode, shards, strict, topoKind, topoArg, _, gsampler, _, err := decodeMeta(payload)
	if err != nil {
		return nil, err
	}
	if mode < int(DirectEngine) || mode > int(ShardedJumpEngine) {
		return nil, persist.Corruptf("unknown engine mode %d", mode)
	}
	if gsampler < int(GraphSamplerAuto) || gsampler > int(GraphSamplerRejection) {
		return nil, persist.Corruptf("unknown graph sampler %d", gsampler)
	}
	topo := ""
	switch topoKind {
	case 0:
		topo = "complete"
	case 1:
		topo = "ring"
	case 2:
		topo = "torus"
	case 3:
		topo = "hypercube"
	case 4:
		topo = "expander"
	case 5:
		topo = fmt.Sprintf("random-%d-regular", topoArg)
	default:
		return nil, persist.Corruptf("unknown topology code %d", topoKind)
	}
	return &TraceReader{
		sr: sr,
		meta: TraceMeta{
			Bins: n, Mode: EngineMode(mode), Shards: shards, Strict: strict,
			Topology: topo, Sampler: GraphSampler(gsampler).String(),
		},
	}, nil
}

// Meta returns the archive's session shape.
func (tr *TraceReader) Meta() TraceMeta { return tr.meta }

// Next returns the next archive entry, or io.EOF past the last one. An
// archive cut off by a crash ends cleanly at its last complete record
// (the end section is simply absent); a partially written section
// returns ErrTruncated.
func (tr *TraceReader) Next() (TraceItem, error) {
	if tr.done {
		return TraceItem{}, io.EOF
	}
	kind, payload, err := tr.sr.Next()
	if err != nil {
		if err == io.EOF {
			tr.done = true
			return TraceItem{}, io.EOF
		}
		return TraceItem{}, err
	}
	switch kind {
	case persist.KindEnd:
		tr.done = true
		return TraceItem{}, io.EOF
	case sectTraceSnapshot:
		return TraceItem{Snapshot: payload}, nil
	case sectTraceRecord:
		d := persist.NewDec(payload)
		code := d.Int()
		rec := &TraceRecord{
			Bin:         d.Int(),
			Time:        d.F64(),
			Activations: d.I64(),
			Moves:       d.I64(),
			Balls:       d.Int(),
			Disc:        d.F64(),
		}
		if d.Err() != nil {
			return TraceItem{}, d.Err()
		}
		switch code {
		case traceKindPoint:
			rec.Kind = "point"
		case traceKindAdd:
			rec.Kind = "add"
		case traceKindRemove:
			rec.Kind = "remove"
		default:
			return TraceItem{}, persist.Corruptf("unknown trace record kind %d", code)
		}
		return TraceItem{Record: rec}, nil
	default:
		return TraceItem{}, persist.Corruptf("unknown trace section kind %d", kind)
	}
}

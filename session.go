package rls

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Session is a long-lived balancing system supporting dynamic churn:
// balls may join and leave between stretches of RLS execution. It models
// the self-stabilization settings from the paper's motivation (P2P
// networks, channel allocation) where the population changes over time
// and the protocol keeps re-balancing; RLS needs no restart or global
// coordination after churn — exactly its selling point in §1.
//
// Churn events invalidate the running engine (the number of balls
// changes the activation rate), so the engine is rebuilt lazily on the
// next Run* call; accumulated time and activation counts persist.
type Session struct {
	loads  loadvec.Vector
	stream *rng.RNG

	engine *sim.Engine // nil when invalidated by churn

	time        float64
	activations int64
	moves       int64
}

// NewSession creates a session with n empty bins.
func NewSession(n int, seed uint64) *Session {
	if n < 1 {
		panic("rls: NewSession needs at least one bin")
	}
	return &Session{
		loads:  make(loadvec.Vector, n),
		stream: rng.New(seed),
	}
}

// N returns the number of bins.
func (s *Session) N() int { return len(s.loads) }

// M returns the current number of balls.
func (s *Session) M() int { return s.currentLoads().Balls() }

// Loads returns a copy of the current load vector.
func (s *Session) Loads() []int { return s.currentLoads().Clone() }

// Disc returns the current discrepancy.
func (s *Session) Disc() float64 {
	if s.M() == 0 {
		return 0
	}
	return s.currentLoads().Disc()
}

// Time returns the total elapsed continuous time across the session.
func (s *Session) Time() float64 { return s.time }

// Activations returns the total ball activations across the session.
func (s *Session) Activations() int64 { return s.activations }

// Moves returns the total protocol moves across the session.
func (s *Session) Moves() int64 { return s.moves }

// currentLoads returns the authoritative load vector (from the live
// engine if one exists).
func (s *Session) currentLoads() loadvec.Vector {
	if s.engine != nil {
		return s.engine.Cfg().Loads()
	}
	return s.loads
}

// AddBall inserts one ball into the given bin (a user joining).
func (s *Session) AddBall(bin int) error {
	if bin < 0 || bin >= len(s.loads) {
		return fmt.Errorf("rls: bin %d out of range", bin)
	}
	s.invalidate()
	s.loads[bin]++
	return nil
}

// AddBallRandom inserts one ball into a uniformly random bin and returns
// the bin.
func (s *Session) AddBallRandom() int {
	s.invalidate()
	bin := s.stream.Intn(len(s.loads))
	s.loads[bin]++
	return bin
}

// RemoveBall removes one ball from the given bin (a user leaving).
func (s *Session) RemoveBall(bin int) error {
	if bin < 0 || bin >= len(s.loads) {
		return fmt.Errorf("rls: bin %d out of range", bin)
	}
	s.invalidate()
	if s.loads[bin] == 0 {
		return fmt.Errorf("rls: bin %d is empty", bin)
	}
	s.loads[bin]--
	return nil
}

// RemoveRandomBall removes a uniformly random ball and returns the bin it
// left.
func (s *Session) RemoveRandomBall() (int, error) {
	s.invalidate()
	m := s.loads.Balls()
	if m == 0 {
		return 0, fmt.Errorf("rls: no balls to remove")
	}
	k := s.stream.Intn(m)
	for bin, l := range s.loads {
		if k < l {
			s.loads[bin]--
			return bin, nil
		}
		k -= l
	}
	panic("rls: unreachable")
}

// invalidate folds the live engine's state back into the session.
func (s *Session) invalidate() {
	if s.engine == nil {
		return
	}
	s.loads = s.engine.Cfg().Snapshot()
	s.engine = nil
}

// ensureEngine (re)builds the engine after churn.
func (s *Session) ensureEngine() error {
	if s.engine != nil {
		return nil
	}
	if s.loads.Balls() == 0 {
		return fmt.Errorf("rls: session has no balls")
	}
	s.engine = sim.NewEngine(s.loads, core.RLS{}, sim.NewBallList(), s.stream)
	return nil
}

// RunFor advances the protocol by duration d of continuous time.
func (s *Session) RunFor(d float64) error {
	if err := s.ensureEngine(); err != nil {
		return err
	}
	before := s.engine.Time()
	beforeActs := s.engine.Activations()
	beforeMoves := s.engine.Moves()
	s.engine.Run(sim.UntilTime(before+d), 0)
	s.time += s.engine.Time() - before
	s.activations += s.engine.Activations() - beforeActs
	s.moves += s.engine.Moves() - beforeMoves
	return nil
}

// RunUntilPerfect advances until perfect balance (or the activation
// budget is exhausted) and reports whether balance was reached.
func (s *Session) RunUntilPerfect(budget int64) (bool, error) {
	if err := s.ensureEngine(); err != nil {
		return false, err
	}
	before := s.engine.Time()
	beforeActs := s.engine.Activations()
	beforeMoves := s.engine.Moves()
	absBudget := int64(0) // engine default
	if budget > 0 {
		absBudget = beforeActs + budget
	}
	res := s.engine.Run(sim.UntilPerfect(), absBudget)
	s.time += s.engine.Time() - before
	s.activations += s.engine.Activations() - beforeActs
	s.moves += s.engine.Moves() - beforeMoves
	return res.Stopped, nil
}
